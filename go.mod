module ffmr

go 1.22
