// Command augproc runs the FF2 stateful accumulator service standalone
// and exercises it, demonstrating the external-process architecture of
// the paper's Section IV-A (in the paper, aug_proc runs on the master
// node beside the Hadoop JobTracker).
//
// In -demo mode it starts a server, connects the given number of clients
// (standing in for reducers), submits random candidate augmenting paths
// over unit-capacity edges, and reports acceptance statistics and
// throughput.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/graph"
	"ffmr/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("augproc: ")

	var (
		clients = flag.Int("clients", 8, "demo: concurrent clients (stand-ins for reducers)")
		paths   = flag.Int("paths", 20000, "demo: candidate paths per client")
		hops    = flag.Int("hops", 8, "demo: hops per candidate path")
		edges   = flag.Int("edges", 50000, "demo: distinct unit-capacity edges")
		seed    = flag.Int64("seed", 1, "demo: random seed")
	)
	flag.Parse()

	srv, err := core.NewAugProcServer()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("aug_proc listening on %s\n", srv.Addr())

	srv.BeginRound(0)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < *clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(ci)))
			client, err := core.DialAugProc(srv.Addr())
			if err != nil {
				log.Print(err)
				return
			}
			defer client.Close()
			batch := make([]graph.ExcessPath, 0, 16)
			for i := 0; i < *paths; i++ {
				var p graph.ExcessPath
				for h := 0; h < *hops; h++ {
					id := graph.EdgeID(rng.Intn(*edges))
					p.Edges = append(p.Edges, graph.PathEdge{
						ID: id, From: graph.VertexID(h), To: graph.VertexID(h + 1),
						Cap: 1, Fwd: true,
					})
				}
				batch = append(batch, p)
				if len(batch) == cap(batch) {
					if err := client.Submit(0, ci, 0, batch); err != nil {
						log.Print(err)
						return
					}
					batch = batch[:0]
				}
			}
			if err := client.Submit(0, ci, 0, batch); err != nil {
				log.Print(err)
			}
		}(ci)
	}
	wg.Wait()
	st, deltas := srv.EndRound()
	elapsed := time.Since(start)

	fmt.Printf("submitted:  %s candidate paths\n", stats.FormatCount(st.Submitted))
	fmt.Printf("accepted:   %s (A-Paths)\n", stats.FormatCount(st.Accepted))
	fmt.Printf("max queue:  %s (MaxQ)\n", stats.FormatCount(st.MaxQueue))
	fmt.Printf("flow delta: %s over %s distinct edges\n",
		stats.FormatCount(st.TotalDelta), stats.FormatCount(int64(len(deltas))))
	fmt.Printf("throughput: %.0f paths/sec over RPC (%s elapsed)\n",
		float64(st.Submitted)/elapsed.Seconds(), stats.FormatDuration(elapsed))
}
