// Command gengraph generates small-world graphs and writes them as text
// edge lists for use with the ffmr command or external tools.
//
// Examples:
//
//	# A 100K-vertex scale-free graph with 8 super source/sink taps.
//	gengraph -gen ba -n 100000 -m 4 -w 8 -o fb.txt
//
//	# The nested FB1..FB6 chain (scaled), one file per member.
//	gengraph -chain tiny -o fb
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")

	var (
		gen    = flag.String("gen", "ba", "generator: ba|ws|rmat|er")
		n      = flag.Int("n", 10000, "vertices")
		m      = flag.Int("m", 4, "attachment count (ba) / edge factor (rmat) / edges (er)")
		k      = flag.Int("k", 6, "ring neighbours (ws)")
		beta   = flag.Float64("beta", 0.1, "rewire probability (ws)")
		scale  = flag.Int("rmat-scale", 12, "log2 vertices (rmat)")
		seed   = flag.Int64("seed", 1, "generator seed")
		w      = flag.Int("w", 0, "attach super source/sink with w taps")
		minDeg = flag.Int("min-degree", 8, "tap eligibility threshold")
		maxCap = flag.Int64("max-cap", 0, "randomize capacities in [1, max-cap] (0 = unit)")
		chain  = flag.String("chain", "", "generate the nested FB chain instead: tiny|default")
		attach = flag.Int("attach", 4, "chain master-graph attachment count")
		out    = flag.String("o", "", "output file (chain: prefix, one file per member); default stdout")
		show   = flag.Bool("stats", false, "print small-world metrics for the generated graph")
	)
	flag.Parse()

	if *chain != "" {
		if err := writeChain(*chain, *attach, *seed, *out); err != nil {
			log.Fatal(err)
		}
		return
	}

	var in *graph.Input
	var err error
	switch *gen {
	case "ba":
		in, err = graphgen.BarabasiAlbert(*n, *m, *seed)
	case "ws":
		in, err = graphgen.WattsStrogatz(*n, *k, *beta, *seed)
	case "rmat":
		in, err = graphgen.RMAT(*scale, *m, *seed)
	case "er":
		in, err = graphgen.ErdosRenyi(*n, *m, *seed)
	default:
		log.Fatalf("unknown generator %q", *gen)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *maxCap > 0 {
		graphgen.RandomCapacities(in, *maxCap, *seed+1)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	if *w > 0 {
		in, err = graphgen.AttachSuperSourceSink(in, *w, *minDeg, *seed+100)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := writeGraph(in, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d vertices, %d edges (s=%d t=%d)\n",
		in.NumVertices, len(in.Edges), in.Source, in.Sink)
	if *show {
		m := graphgen.Measure(in, 16, *seed)
		fmt.Fprintf(os.Stderr,
			"avg degree %.1f, max degree %d, est. diameter %d, avg path %.2f, clustering %.3f, giant component %.1f%%\n",
			m.AverageDegree, m.MaxDegree, m.EstimatedDiameter,
			m.AveragePathLength, m.Clustering, 100*m.LargestComponent)
	}
}

func writeChain(name string, attach int, seed int64, prefix string) error {
	var specs []graphgen.FBSpec
	switch name {
	case "tiny":
		specs = graphgen.TinyFBChain()
	case "default":
		specs = graphgen.DefaultFBChain()
	default:
		return fmt.Errorf("unknown chain %q (want tiny or default)", name)
	}
	chain, err := graphgen.CrawlChain(specs, attach, seed)
	if err != nil {
		return err
	}
	if prefix == "" {
		prefix = "fb"
	}
	for i, in := range chain {
		in.Source, in.Sink = graphgen.PickEndpoints(in)
		name := fmt.Sprintf("%s-%s.txt", prefix, specs[i].Name)
		if err := writeGraph(in, name); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: %d vertices, %d edges\n", name, in.NumVertices, len(in.Edges))
	}
	return nil
}

func writeGraph(in *graph.Input, out string) error {
	if out == "" {
		return graphgen.WriteEdgeList(os.Stdout, in)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := graphgen.WriteEdgeList(f, in); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
