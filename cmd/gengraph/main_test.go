package main

import (
	"os"
	"path/filepath"
	"testing"

	"ffmr/internal/graphgen"
)

func TestWriteChain(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "fb")
	// A custom tiny chain via the "tiny" preset would be slow; exercise
	// the error paths and then the success path with the real preset but
	// a reduced expectation: only verify the files land on disk.
	if err := writeChain("bogus", 3, 1, prefix); err == nil {
		t.Error("unknown chain accepted")
	}
	if err := writeChain("tiny", 3, 1, prefix); err != nil {
		t.Fatal(err)
	}
	for _, spec := range graphgen.TinyFBChain() {
		name := prefix + "-" + spec.Name + ".txt"
		fi, err := os.Stat(name)
		if err != nil {
			t.Fatalf("chain member %s not written: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("chain member %s empty", name)
		}
	}
	// The written files must parse back.
	f, err := os.Open(prefix + "-FB1.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := graphgen.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumVertices != graphgen.TinyFBChain()[0].Vertices {
		t.Errorf("FB1 has %d vertices", in.NumVertices)
	}
}

func TestWriteGraphToFileAndStdout(t *testing.T) {
	in, err := graphgen.ErdosRenyi(20, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := writeGraph(in, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty output file")
	}
	if err := writeGraph(in, filepath.Join(t.TempDir(), "missing-dir", "x")); err == nil {
		t.Error("unwritable path accepted")
	}
}
