// Command ffmr-service runs the resident multi-tenant flow service: one
// long-lived process owning a cluster (simulated engine or a distmr
// master with in-process TCP workers), a fair-share scheduler
// multiplexing client jobs over it, and a query API serving flow-value,
// min-cut and residual-capacity reads from resident generation-tagged
// snapshots.
//
// Examples:
//
//	# Simulated engine, 2 concurrent jobs, API on an ephemeral port.
//	ffmr-service -listen 127.0.0.1:7400 -admin 127.0.0.1:7401
//
//	# Distributed backend with 3 in-process workers.
//	ffmr-service -workers 3 -listen 127.0.0.1:7400
//
//	# Submit work from another terminal.
//	ffmr -submit 127.0.0.1:7400 -tenant acme -handle social -gen ba -n 20000 -w 16
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/distmr"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/service"
	"ffmr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ffmr-service: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "client API listen address")
		admin    = flag.String("admin", "", "admin HTTP address (/metrics, /status, /healthz, pprof)")
		workers  = flag.Int("workers", 0, "in-process distributed workers (0 = simulated engine)")
		nodes    = flag.Int("nodes", 4, "simulated cluster nodes")
		slots    = flag.Int("slots", 4, "worker slots per node")
		conc     = flag.Int("concurrency", 2, "jobs run concurrently against the shared pool")
		tQueue   = flag.Int("tenant-queue", 64, "per-tenant queued-job quota")
		tRun     = flag.Int("tenant-running", 0, "per-tenant running-job cap (0 = up to -concurrency)")
		variant  = flag.Int("variant", 5, "default algorithm variant 1..5 (FF1..FF5)")
		kPaths   = flag.Int("excess-paths", 4, "per-vertex excess path limit (FF1..FF4)")
		real     = flag.Bool("realistic", false, "charge Hadoop-like per-round overhead in simulated time")
		logFmt   = flag.String("log", "text", "structured logs to stderr: text|json|off")
		logLevel = flag.String("log-level", "info", "log level: debug|info|warn|error")
		trOut    = flag.String("trace", "", "write a Chrome trace_event JSON file of the service's lifetime on shutdown")
	)
	flag.Parse()

	var logger *slog.Logger
	if *logFmt != "" && *logFmt != "off" {
		logger = obsv.NewLogger(os.Stderr, *logFmt, obsv.ParseLevel(*logLevel))
	}
	tracer := trace.New()
	if *trOut != "" {
		// Deferred immediately so the trace survives startup failures and
		// drain errors, not just clean shutdowns.
		defer func() {
			f, err := os.Create(*trOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ffmr-service: write trace: %v\n", err)
				return
			}
			if err := tracer.WriteChromeTrace(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "ffmr-service: write trace: %v\n", err)
				return
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ffmr-service: write trace: %v\n", err)
				return
			}
			fmt.Printf("trace written to %s\n", *trOut)
		}()
	}

	fs := dfs.New(dfs.Config{Nodes: *nodes, BlockSize: 4 << 20, Replication: 2})
	cluster := mapreduce.NewCluster(*nodes, *slots, fs)
	if *real {
		cluster.Cost = mapreduce.DefaultCostModel()
	} else {
		cluster.Cost = mapreduce.ZeroCostModel()
	}

	var masterStatus func() *obsv.ClusterStatus
	if *workers > 0 {
		h, err := distmr.StartHarness(distmr.HarnessConfig{
			Workers: *workers,
			Tracer:  tracer,
			Master:  distmr.Config{Obsv: obsv.Options{Logger: logger}},
		})
		if err != nil {
			return err
		}
		defer h.Close()
		cluster.Distributed = h.Master
		masterStatus = h.Master.Status
		fmt.Printf("distributed: %d workers registered with master %s\n",
			h.Master.LiveWorkers(), h.Master.Addr())
	}

	svc, err := service.Start(service.Config{
		Cluster: cluster,
		Quotas: service.Quotas{
			MaxConcurrent:       *conc,
			MaxQueuedPerTenant:  *tQueue,
			MaxRunningPerTenant: *tRun,
		},
		Addr:      *listen,
		AdminAddr: *admin,
		DefaultOpts: core.Options{
			Variant: core.Variant(*variant),
			K:       *kPaths,
		},
		MasterStatus: masterStatus,
		Tracer:       tracer,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	fmt.Printf("service: API on http://%s/v1\n", svc.Addr())
	if a := svc.AdminAddr(); a != "" {
		fmt.Printf("admin: http://%s/{metrics,healthz,status,debug/pprof}\n", a)
	}

	// Block until asked to stop, then drain: admission closes, queued
	// jobs fail fast, running jobs complete, listeners shut down.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	fmt.Printf("service: %v — draining\n", sig)
	return svc.Close()
}
