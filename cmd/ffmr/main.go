// Command ffmr computes a maximum flow on a graph using the FFMR
// MapReduce algorithms and prints per-round statistics.
//
// Examples:
//
//	# Generate a Barabási-Albert graph with super source/sink taps and
//	# run FF5 on a 8-node simulated cluster.
//	ffmr -gen ba -n 20000 -m 4 -w 16 -variant 5 -nodes 8
//
//	# Load an edge list, run FF2, cross-check against sequential Dinic.
//	ffmr -input graph.txt -variant 2 -check
//
//	# Let the portfolio probe the instance and pick the solver, or force
//	# the synchronous push-relabel engine on a high-diameter lattice.
//	ffmr -gen ba -n 20000 -m 2 -engine auto -check
//	ffmr -gen grid -n 64 -engine prflow -check
//
//	# Compare against the MR-BFS baseline.
//	ffmr -gen ws -n 5000 -k 6 -beta 0.1 -bfs
//
//	# Run on the distributed backend with 3 in-process TCP workers and
//	# verify per-round counters against the simulated engine.
//	ffmr -gen ws -n 2000 -variant 5 -distributed -dist-verify
//
//	# Serve external worker processes (see cmd/ffmr-worker).
//	ffmr -gen ws -n 2000 -distributed -dist-workers 0 \
//	     -dist-listen 127.0.0.1:7350 -dist-wait 3
//
//	# Watch a distributed run live: structured logs, a dashboard, an
//	# admin server (/metrics, /healthz, /status, /debug/pprof) and crash
//	# flight recorders.
//	ffmr -gen ws -n 5000 -distributed -worker-crash 0.05 \
//	     -watch -log json -admin 127.0.0.1:8080 -flight-dir ./flight
//
//	# Render the merged crash timeline afterwards.
//	ffmr -postmortem ./flight
//
//	# Analyze a recorded trace: per-round critical path, wall-time
//	# attribution (map/shuffle/reduce/rpc/idle) and straggler report.
//	ffmr -gen ws -n 5000 -distributed -trace run.json
//	ffmr -analyze run.json
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/distmr"
	"ffmr/internal/dynamic"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/maxflow"
	"ffmr/internal/obsv"
	_ "ffmr/internal/portfolio" // registers the "prflow" and "auto" engines
	"ffmr/internal/stats"
	"ffmr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ffmr: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		gen     = flag.String("gen", "", "generate a graph: ba|ws|rmat|er|grid|bip (mutually exclusive with -input)")
		input   = flag.String("input", "", "read an edge-list file instead of generating")
		n       = flag.Int("n", 10000, "vertices (ba, ws, er) / side length (grid) / per-side vertices (bip)")
		m       = flag.Int("m", 4, "attachment count (ba) / edges factor (rmat) / edges (er, absolute)")
		k       = flag.Int("k", 6, "ring neighbours (ws)")
		beta    = flag.Float64("beta", 0.1, "rewire probability (ws) / edge density (bip)")
		scale   = flag.Int("rmat-scale", 12, "log2 vertices (rmat)")
		seed    = flag.Int64("seed", 1, "generator seed")
		w       = flag.Int("w", 0, "attach a super source/sink with w taps (0 = use highest-degree endpoints)")
		minDeg  = flag.Int("min-degree", 8, "tap eligibility threshold for -w")
		variant = flag.Int("variant", 5, "algorithm variant 1..5 (FF1..FF5)")
		engine  = flag.String("engine", "", "solver engine: ffmr|prflow|auto (empty: ffmr)")
		nodes   = flag.Int("nodes", 4, "simulated cluster nodes")
		slots   = flag.Int("slots", 4, "worker slots per node")
		kPaths  = flag.Int("excess-paths", 4, "per-vertex excess path limit (FF1..FF4)")
		maxR    = flag.Int("max-rounds", 1000, "abort after this many rounds")
		paperT  = flag.Bool("paper-termination", false, "terminate exactly per the paper's Fig. 2 rule")
		check   = flag.Bool("check", false, "cross-check the result against sequential Dinic")
		bfs     = flag.Bool("bfs", false, "also run the MR-BFS baseline")
		bsp     = flag.Bool("bsp", false, "also run the Pregel/BSP translation")
		real    = flag.Bool("realistic", true, "charge Hadoop-like per-round overhead in simulated time")
		rounds  = flag.Bool("rounds", true, "print the per-round statistics table")
		live    = flag.Bool("progress", false, "print each round's statistics as it completes")
		trOut   = flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
		budget  = flag.Int64("memory-budget", 0, "per-map-task shuffle buffer bytes; >0 spills sorted runs to disk (0 = unbounded in-memory shuffle)")
		spillTo = flag.String("spill-dir", "", "directory for spill segments (default: system temp dir)")
		comp    = flag.Bool("compress", false, "DEFLATE-compress spill segments")

		updates  = flag.Int("updates", 0, "after solving, apply this many randomized edge-update batches (dynamic max-flow)")
		updBatch = flag.Int("update-batch", 20, "updates per batch for -updates (inserts, deletes, capacity changes)")
		warm     = flag.Bool("warm", true, "solve update batches by warm restart from persisted state (false: cold recompute per batch)")

		dist       = flag.Bool("distributed", false, "run jobs on the distributed master/worker backend instead of the simulated engine")
		distWork   = flag.Int("dist-workers", 3, "in-process workers to start (0 = external ffmr-worker processes only)")
		distListen = flag.String("dist-listen", "", "master listen address for external workers (default: ephemeral loopback port)")
		distWait   = flag.Int("dist-wait", 0, "wait for this many registered workers before starting (counts in-process and external)")
		distVerify = flag.Bool("dist-verify", false, "also run the simulated engine and require identical per-round counters")
		distNoPre  = flag.Bool("dist-no-prefetch", false, "disable pipelined shuffle prefetch (A/B knob; counters are identical either way)")
		crash      = flag.Float64("worker-crash", 0, "injected probability a worker dies at task start (distributed only)")

		submitTo = flag.String("submit", "", "submit the job to a running ffmr-service at this address instead of solving locally")
		tenant   = flag.String("tenant", "default", "tenant ID for -submit")
		priority = flag.Int("priority", 0, "job priority for -submit (higher dispatches first within the tenant)")
		handle   = flag.String("handle", "graph", "resident snapshot handle for -submit")

		logFmt    = flag.String("log", "", "emit structured logs to stderr: text|json (default: off)")
		logLevel  = flag.String("log-level", "info", "log level for -log: debug|info|warn|error")
		admin     = flag.String("admin", "", "serve /metrics, /healthz, /status and /debug/pprof on this HTTP address")
		watch     = flag.Bool("watch", false, "render a live dashboard of round progress, counters and worker state")
		flightDir = flag.String("flight-dir", "", "arm flight recorders; crashed workers dump their recent events here")
		postmort  = flag.String("postmortem", "", "render a merged timeline from the flight dumps in this directory and exit")
		analyze   = flag.String("analyze", "", "analyze a Chrome trace file written with -trace: per-round critical path, wall-time attribution and stragglers; then exit")
	)
	flag.Parse()

	if *postmort != "" {
		dumps, err := obsv.ReadDumpDir(*postmort)
		if err != nil {
			return err
		}
		return obsv.RenderPostmortem(os.Stdout, dumps)
	}
	if *analyze != "" {
		data, err := os.ReadFile(*analyze)
		if err != nil {
			return err
		}
		events, err := trace.ParseChromeTrace(data)
		if err != nil {
			return fmt.Errorf("parse %s: %w", *analyze, err)
		}
		rep, err := trace.Analyze(events)
		if err != nil {
			return err
		}
		rep.Format(os.Stdout)
		return nil
	}

	var logger *slog.Logger
	if *logFmt != "" {
		logger = obsv.NewLogger(os.Stderr, *logFmt, obsv.ParseLevel(*logLevel))
	}
	obsvOpts := obsv.Options{Logger: logger, AdminAddr: *admin, FlightDir: *flightDir}

	in, err := buildGraph(*gen, *input, *n, *m, *k, *beta, *scale, *seed)
	if err != nil {
		return err
	}
	if *w > 0 {
		in, err = graphgen.AttachSuperSourceSink(in, *w, *minDeg, *seed+100)
		if err != nil {
			return err
		}
	}
	fmt.Printf("graph: %d vertices, %d edges, s=%d, t=%d\n",
		in.NumVertices, len(in.Edges), in.Source, in.Sink)

	// Client mode: hand the job to a resident flow service and verify
	// its answers instead of running a cluster in this process.
	if *submitTo != "" {
		return submitRun(*submitTo, *tenant, *handle, *priority, *variant, *engine, in, *check)
	}

	tracer := trace.New()
	// Deferred immediately so the trace survives run errors and early
	// termination — a failed run is exactly when the trace matters most.
	if *trOut != "" {
		defer func() {
			if err := writeTrace(tracer, *trOut); err != nil {
				log.Printf("trace: %v", err)
			} else {
				fmt.Printf("trace written to %s\n", *trOut)
			}
		}()
	}
	cluster := newCluster(*nodes, *slots, *real, *budget, *spillTo, *comp)

	// Distributed mode: boot a master (plus optional in-process workers),
	// wait for registrations, and point the cluster's job execution at it.
	var master *distmr.Master
	if *dist {
		if *distWork > 0 {
			h, err := distmr.StartHarness(distmr.HarnessConfig{
				Workers:    *distWork,
				Replace:    *crash > 0,
				Master:     distmr.Config{Addr: *distListen, Obsv: obsvOpts, DisablePrefetch: *distNoPre},
				Tracer:     tracer,
				WorkerObsv: obsv.Options{Logger: logger, FlightDir: *flightDir},
			})
			if err != nil {
				return err
			}
			defer h.Close()
			master = h.Master
		} else {
			m, err := distmr.NewMaster(distmr.Config{Addr: *distListen, Tracer: tracer, Obsv: obsvOpts, DisablePrefetch: *distNoPre})
			if err != nil {
				return err
			}
			defer m.Shutdown()
			master = m
		}
		if a := master.AdminAddr(); a != "" {
			fmt.Printf("admin: http://%s/{metrics,healthz,status,debug/pprof}\n", a)
		}
		if *distWait > 0 {
			fmt.Printf("distributed: master on %s, waiting for %d workers\n", master.Addr(), *distWait)
			if err := master.WaitForWorkers(*distWait, 5*time.Minute); err != nil {
				return err
			}
		}
		fmt.Printf("distributed: %d workers registered with master %s\n",
			master.LiveWorkers(), master.Addr())
		distribute(cluster, master, *crash, *seed)
	} else if *admin != "" {
		// Simulated mode still gets the admin surface: /metrics serves the
		// tracer's live registry, pprof the in-process engine.
		a, err := obsv.StartAdmin(obsv.AdminConfig{
			Addr:    *admin,
			Metrics: tracer.Registry,
			Logger:  logger,
		})
		if err != nil {
			return err
		}
		defer a.Close()
		fmt.Printf("admin: http://%s/{metrics,healthz,status,debug/pprof}\n", a.Addr())
	}

	opts := core.Options{
		Variant:   core.Variant(*variant),
		Engine:    *engine,
		K:         *kPaths,
		MaxRounds: *maxR,
		Tracer:    tracer,
		Log:       logger,
	}
	if *paperT {
		opts.Termination = core.TerminationPaper
	}
	if *distVerify {
		// Counter parity across backends needs deterministic acceptance;
		// without it FF2+ per-round A-Paths depend on arrival order.
		opts.DeterministicAccept = true
	}
	if *live {
		opts.RoundCallback = func(rs core.RoundStat) {
			fmt.Printf("round %d: %s paths accepted (+%s flow), %s records out, %s shuffled, %s active\n",
				rs.Round, stats.FormatCount(rs.APaths), stats.FormatCount(rs.FlowDelta),
				stats.FormatCount(rs.MapOutRecords), stats.FormatBytes(rs.ShuffleBytes),
				stats.FormatCount(rs.ActiveVertices))
		}
	}

	var dash *obsv.Dashboard
	stopDash := func() {
		if dash != nil {
			dash.Close()
			dash = nil
		}
	}
	if *watch {
		var statusFn func() *obsv.ClusterStatus
		if master != nil {
			statusFn = master.Status
		}
		dash = obsv.StartDashboard(obsv.DashConfig{
			Out:     os.Stdout,
			Metrics: tracer.Registry,
			Status:  statusFn,
			Title:   fmt.Sprintf("ffmr %s on %d vertices", opts.Variant, in.NumVertices),
			ANSI:    true,
		})
		defer stopDash()
	}

	// With -updates the base solve goes through dynamic.Solve, which keeps
	// the final records in the DFS so batches can warm-restart from them.
	var res *core.Result
	var snap *dynamic.Snapshot
	if *updates > 0 {
		snap, err = dynamic.Solve(cluster, in, opts)
		if err != nil {
			return err
		}
		res = snap.Result
	} else {
		res, err = core.Run(cluster, in, opts)
		if err != nil {
			return err
		}
	}
	stopDash()

	fmt.Printf("\n%s max-flow: %d in %d rounds (sim %s, wall %s)\n",
		res.Variant, res.MaxFlow, res.Rounds,
		stats.FormatDuration(res.TotalSimTime), stats.FormatDuration(res.TotalWallTime))
	fmt.Printf("graph size: %s, max size during run: %s\n",
		stats.FormatBytes(res.InputGraphBytes), stats.FormatBytes(res.MaxGraphBytes))
	if *budget > 0 {
		reg := tracer.Registry()
		fmt.Printf("out-of-core shuffle: %s spills (%s), %s merge passes, max fan-in %d\n",
			stats.FormatCount(reg.Counter(trace.CounterSpills).Value()),
			stats.FormatBytes(reg.Counter(trace.CounterSpilledBytes).Value()),
			stats.FormatCount(reg.Counter(trace.CounterMergePasses).Value()),
			reg.Gauge(trace.GaugeMergeFanIn).Max())
	}

	if *rounds {
		fmt.Println(stats.RoundTable("\nPer-round statistics",
			trace.RoundSummariesUnder(res.RunSpan)))
	}

	if *updates > 0 {
		mode := "warm"
		if !*warm {
			mode = "cold"
		}
		tbl := stats.NewTable(fmt.Sprintf("\nDynamic updates (%s, %d batches x %d updates)", mode, *updates, *updBatch),
			"Gen", "Violations", "Cancelled", "Rounds", "SimTime", "|f*|")
		profile := graphgen.DefaultUpdateProfile()
		cur := in
		for g := 1; g <= *updates; g++ {
			batch, err := graphgen.GenerateUpdates(cur, *updBatch, profile, *seed+int64(1000*g))
			if err != nil {
				return err
			}
			var (
				flow    int64
				nrounds int
				simTime time.Duration
				viol    int
				cancel  int64
			)
			if *warm {
				out, err := dynamic.Apply(cluster, snap, batch)
				if err != nil {
					return err
				}
				snap, cur = out.Snapshot, out.Snapshot.Input
				flow, nrounds = out.Warm.MaxFlow, out.Warm.Rounds
				simTime = out.Warm.TotalSimTime + out.RepairSimTime
				viol, cancel = out.Violations, out.CancelledFlow
			} else {
				cur, err = graph.ApplyUpdates(cur, batch)
				if err != nil {
					return err
				}
				coldC := newCluster(*nodes, *slots, *real, *budget, *spillTo, *comp)
				if master != nil {
					distribute(coldC, master, *crash, *seed)
				}
				coldOpts := opts
				coldOpts.Tracer = nil
				coldRes, err := core.Run(coldC, cur, coldOpts)
				if err != nil {
					return err
				}
				flow, nrounds, simTime = coldRes.MaxFlow, coldRes.Rounds, coldRes.TotalSimTime
			}
			if *check {
				net, err := maxflow.FromInput(cur)
				if err != nil {
					return err
				}
				if want := maxflow.Dinic(net, int(cur.Source), int(cur.Sink)); want != flow {
					return fmt.Errorf("check: MISMATCH at batch %d — %s computed %d, Dinic says %d",
						g, mode, flow, want)
				}
			}
			tbl.AddRow(g, viol, stats.FormatCount(cancel), nrounds,
				stats.FormatDuration(simTime), stats.FormatCount(flow))
		}
		fmt.Println(tbl.String())
		if *check {
			fmt.Printf("check: sequential Dinic agrees after every batch\n")
		}
	}

	if *distVerify {
		simOpts := opts
		simOpts.Tracer = trace.New()
		simOpts.RoundCallback = nil
		simRes, err := core.Run(newCluster(*nodes, *slots, *real, *budget, *spillTo, *comp), in, simOpts)
		if err != nil {
			return err
		}
		if msg := diffRuns(simRes, res); msg != "" {
			return fmt.Errorf("dist-verify: MISMATCH — %s", msg)
		}
		if *budget > 0 {
			// Spill accounting must also agree: both backends publish
			// their out-of-core stats into their tracer's registry.
			sreg, dreg := simOpts.Tracer.Registry(), tracer.Registry()
			for _, name := range []string{trace.CounterSpills, trace.CounterSpilledBytes, trace.CounterMergePasses} {
				if s, d := sreg.Counter(name).Value(), dreg.Counter(name).Value(); s != d {
					return fmt.Errorf("dist-verify: MISMATCH — %s: simulated %d, distributed %d", name, s, d)
				}
			}
		}
		fmt.Printf("dist-verify: simulated engine agrees (flow %d, %d rounds, identical per-round counters)\n",
			simRes.MaxFlow, simRes.Rounds)
	}

	if *check {
		net, err := maxflow.FromInput(in)
		if err != nil {
			return err
		}
		want := maxflow.Dinic(net, int(in.Source), int(in.Sink))
		if want == res.MaxFlow {
			fmt.Printf("check: sequential Dinic agrees (%d)\n", want)
		} else {
			return fmt.Errorf("check: MISMATCH — Dinic computed %d", want)
		}
	}

	if *bfs {
		bc := newCluster(*nodes, *slots, *real, *budget, *spillTo, *comp)
		if master != nil {
			distribute(bc, master, *crash, *seed)
		}
		bres, err := core.RunBFS(bc, in, 0, "")
		if err != nil {
			return err
		}
		fmt.Printf("BFS baseline: %d rounds, s-t distance %d, visited %d (sim %s)\n",
			bres.Rounds, bres.SinkDist, bres.Visited, stats.FormatDuration(bres.TotalSimTime))
	}

	if *bsp {
		bres, err := core.RunBSP(in, core.BSPOptions{Workers: *nodes * *slots, Tracer: tracer})
		if err != nil {
			return err
		}
		fmt.Printf("BSP translation: max-flow %d in %d supersteps, %s messages, %s moved (wall %s)\n",
			bres.MaxFlow, bres.Supersteps, stats.FormatCount(bres.Messages),
			stats.FormatBytes(bres.MessageBytes), stats.FormatDuration(bres.WallTime))
		if bres.MaxFlow != res.MaxFlow {
			return fmt.Errorf("BSP and MR flows disagree (BSP %d, MR %d)", bres.MaxFlow, res.MaxFlow)
		}
	}
	return nil
}

// writeTrace flushes the tracer to a Chrome trace_event JSON file.
func writeTrace(tracer *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// distribute points a cluster's job execution at the distributed
// backend and arms worker-crash injection.
func distribute(c *mapreduce.Cluster, m *distmr.Master, crash float64, seed int64) {
	c.Distributed = m
	if crash > 0 {
		c.Fault.WorkerCrashRate = crash
		c.Fault.Seed = seed
	}
}

// diffRuns compares two runs' results and per-round counters, ignoring
// the fields that legitimately differ across backends: SimTime and
// WallTime (measured durations differ between one-process simulation
// and real workers) and MaxQueue (aug_proc queue depth is
// timing-dependent even with deterministic acceptance).
func diffRuns(sim, dist *core.Result) string {
	if sim.MaxFlow != dist.MaxFlow {
		return fmt.Sprintf("max flow: simulated %d, distributed %d", sim.MaxFlow, dist.MaxFlow)
	}
	if sim.Rounds != dist.Rounds || len(sim.RoundStats) != len(dist.RoundStats) {
		return fmt.Sprintf("rounds: simulated %d (%d stats), distributed %d (%d stats)",
			sim.Rounds, len(sim.RoundStats), dist.Rounds, len(dist.RoundStats))
	}
	for i := range sim.RoundStats {
		a, b := comparableStat(sim.RoundStats[i]), comparableStat(dist.RoundStats[i])
		if a != b {
			return fmt.Sprintf("round %d counters differ:\n  simulated:   %+v\n  distributed: %+v", i, a, b)
		}
	}
	return ""
}

func comparableStat(rs core.RoundStat) core.RoundStat {
	rs.SimTime, rs.WallTime, rs.MaxQueue = 0, 0, 0
	return rs
}

func newCluster(nodes, slots int, realistic bool, budget int64, spillDir string, compress bool) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{Nodes: nodes, BlockSize: 4 << 20, Replication: 2})
	c := mapreduce.NewCluster(nodes, slots, fs)
	if realistic {
		c.Cost = mapreduce.DefaultCostModel()
	} else {
		c.Cost = mapreduce.ZeroCostModel()
	}
	c.MemoryBudget = budget
	c.SpillDir = spillDir
	c.SpillCompress = compress
	return c
}

func buildGraph(gen, input string, n, m, k int, beta float64, scale int, seed int64) (*graph.Input, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graphgen.ReadEdgeList(f)
	}
	var in *graph.Input
	var err error
	switch gen {
	case "ba", "":
		in, err = graphgen.BarabasiAlbert(n, m, seed)
	case "ws":
		in, err = graphgen.WattsStrogatz(n, k, beta, seed)
	case "rmat":
		in, err = graphgen.RMAT(scale, m, seed)
	case "er":
		in, err = graphgen.ErdosRenyi(n, m, seed)
	case "grid":
		// Grid and bip pick their own corner/super endpoints: rerouting
		// them through PickEndpoints (or tapping a super source/sink with
		// -w) would collapse the diameter these families exist to provide.
		in, err = graphgen.Grid(n, n)
		if err != nil {
			return nil, err
		}
		graphgen.RandomCapacities(in, 16, seed)
		return in, nil
	case "bip":
		return graphgen.DenseBipartite(n, n, beta, seed)
	default:
		return nil, fmt.Errorf("unknown generator %q (want ba, ws, rmat, er, grid or bip)", gen)
	}
	if err != nil {
		return nil, err
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	return in, nil
}
