package main

import (
	"fmt"
	"time"

	"ffmr/internal/graph"
	"ffmr/internal/maxflow"
	"ffmr/internal/service"
)

// submitRun is the -submit client path: instead of solving locally, ship
// the graph to a running ffmr-service, wait for the result, and verify
// the query API answers about the now-resident snapshot are consistent
// with it.
func submitRun(addr, tenant, handle string, priority, variant int, engine string, in *graph.Input, check bool) error {
	c := service.NewClient(addr)
	defer c.Close()

	ji, err := c.Submit(&service.SubmitRequest{
		Tenant:   tenant,
		Handle:   handle,
		Priority: priority,
		Variant:  variant,
		Engine:   engine,
		Graph:    toGraphSpec(in),
	})
	if err != nil {
		return err
	}
	fmt.Printf("submitted: job %s (tenant %q, handle %q, state %s)\n",
		ji.ID, ji.Tenant, ji.Handle, ji.State)

	res, err := c.Wait(ji.ID, 30*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("service max-flow: %d in %d rounds (handle %q, generation %d)\n",
		res.Flow, res.Rounds, res.Handle, res.Gen)

	// Exercise the read path against the snapshot the job left resident:
	// the flow query must agree with the job result, and the min-cut
	// capacity must equal the flow (max-flow min-cut theorem).
	fr, err := c.Flow(handle)
	if err != nil {
		return err
	}
	if fr.Flow != res.Flow || fr.Gen != res.Gen {
		return fmt.Errorf("query/flow answered %d@gen%d, job result was %d@gen%d",
			fr.Flow, fr.Gen, res.Flow, res.Gen)
	}
	cut, err := c.Cut(handle)
	if err != nil {
		return err
	}
	if cut.CutCapacity != res.Flow {
		return fmt.Errorf("query/cut capacity %d != max flow %d", cut.CutCapacity, res.Flow)
	}
	fmt.Printf("query check: flow and min-cut (%d edges, capacity %d) consistent at generation %d\n",
		cut.CutEdges, cut.CutCapacity, fr.Gen)

	if check {
		net, err := maxflow.FromInput(in)
		if err != nil {
			return err
		}
		want := maxflow.Dinic(net, int(in.Source), int(in.Sink))
		if want != res.Flow {
			return fmt.Errorf("check: MISMATCH — service computed %d, Dinic says %d", res.Flow, want)
		}
		fmt.Printf("check: sequential Dinic agrees (%d)\n", want)
	}
	return nil
}

func toGraphSpec(in *graph.Input) *service.GraphSpec {
	g := &service.GraphSpec{
		NumVertices: in.NumVertices,
		Source:      int64(in.Source),
		Sink:        int64(in.Sink),
		Edges:       make([][]int64, 0, len(in.Edges)),
	}
	for _, e := range in.Edges {
		row := []int64{int64(e.U), int64(e.V), e.Cap, 0}
		if e.Directed {
			row[3] = 1
		}
		g.Edges = append(g.Edges, row)
	}
	return g
}
