package main

import (
	"os"
	"path/filepath"
	"testing"

	"ffmr/internal/graphgen"
)

func TestBuildGraphGenerators(t *testing.T) {
	tests := []struct {
		name string
		gen  string
	}{
		{"barabasi-albert", "ba"},
		{"default is ba", ""},
		{"watts-strogatz", "ws"},
		{"rmat", "rmat"},
		{"erdos-renyi", "er"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in, err := buildGraph(tc.gen, "", 200, 3, 4, 0.1, 7, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("generated graph invalid: %v", err)
			}
		})
	}
	if _, err := buildGraph("bogus", "", 100, 3, 4, 0.1, 7, 1); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestBuildGraphFromFile(t *testing.T) {
	gen, err := graphgen.BarabasiAlbert(100, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen.Source, gen.Sink = graphgen.PickEndpoints(gen)
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphgen.WriteEdgeList(f, gen); err != nil {
		t.Fatal(err)
	}
	f.Close()

	in, err := buildGraph("", path, 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumVertices != gen.NumVertices || len(in.Edges) != len(gen.Edges) {
		t.Errorf("loaded %d/%d, want %d/%d",
			in.NumVertices, len(in.Edges), gen.NumVertices, len(gen.Edges))
	}
	if _, err := buildGraph("", filepath.Join(t.TempDir(), "missing"), 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNewClusterModes(t *testing.T) {
	real := newCluster(3, 2, true, 0, "", false)
	if real.Nodes != 3 || real.SlotsPerNode != 2 {
		t.Errorf("cluster shape: %d/%d", real.Nodes, real.SlotsPerNode)
	}
	if real.Cost.RoundOverhead == 0 {
		t.Error("realistic cluster has no round overhead")
	}
	fast := newCluster(1, 1, false, 0, "", false)
	if fast.Cost.RoundOverhead != 0 {
		t.Error("zero-cost cluster has round overhead")
	}
	spill := newCluster(2, 2, false, 4096, t.TempDir(), true)
	if spill.MemoryBudget != 4096 || spill.SpillDir == "" || !spill.SpillCompress {
		t.Errorf("spill knobs not threaded: budget=%d dir=%q compress=%v",
			spill.MemoryBudget, spill.SpillDir, spill.SpillCompress)
	}
}
