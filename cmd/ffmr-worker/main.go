// Command ffmr-worker runs one distributed MapReduce worker: it
// registers with an ffmr master (started with -distributed
// -dist-listen), heartbeats, executes leased map and reduce tasks, and
// serves its map outputs to reducers on other workers. Linking
// internal/core registers every job kind the driver schedules, so this
// binary can run any FFMR or MR-BFS job.
//
// Example (three workers against a waiting master):
//
//	ffmr -distributed -dist-workers 0 -dist-listen 127.0.0.1:7350 -dist-wait 3 ... &
//	for i in 1 2 3; do ffmr-worker -master 127.0.0.1:7350 & done
//
// The worker exits when the master shuts down (signalled on a
// heartbeat), when its lease on life ends via injected WorkerCrashRate
// (exit status 3), or on SIGINT/SIGTERM.
package main

import (
	"flag"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	_ "ffmr/internal/core" // registers the FFMR and MR-BFS job kinds
	"ffmr/internal/distmr"
	"ffmr/internal/obsv"
	"ffmr/internal/spill"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ffmr-worker: ")

	var (
		master    = flag.String("master", "", "master address to register with (required)")
		listen    = flag.String("listen", "", "address to serve tasks and segment fetches on (default: ephemeral loopback port)")
		dir       = flag.String("dir", "", "directory for map-output segments (default: hold segments in memory)")
		logFmt    = flag.String("log", "", "emit structured logs to stderr: text|json (default: off)")
		logLevel  = flag.String("log-level", "info", "log level for -log: debug|info|warn|error")
		admin     = flag.String("admin", "", "serve /metrics, /healthz, /status and /debug/pprof on this HTTP address")
		flightDir = flag.String("flight-dir", "", "arm the flight recorder; an injected crash dumps recent events here")
		drain     = flag.Bool("drain", false, "on SIGINT/SIGTERM, drain gracefully: finish running attempts, hand completed map outputs off through the master, then deregister and exit (a second signal forces immediate shutdown)")
		prefetch  = flag.Int("prefetch-depth", 0, "concurrent shuffle-segment fetches per reduce and background prefetch workers (default 4)")
		batchWin  = flag.Duration("batch-window", 0, "how long a finished task waits for companions before its completion rides a heartbeat (default: send immediately; the beat still batches everything queued at send time)")
	)
	flag.Parse()
	if *master == "" {
		log.Fatal("-master is required")
	}

	var logger *slog.Logger
	if *logFmt != "" {
		logger = obsv.NewLogger(os.Stderr, *logFmt, obsv.ParseLevel(*logLevel))
	}
	// The worker always owns a private tracer: task/spill/shuffle spans
	// ship to the master on heartbeats, and the -admin /metrics endpoint
	// (when enabled) scrapes the same registry.
	cfg := distmr.WorkerConfig{
		MasterAddr:            *master,
		ListenAddr:            *listen,
		PrefetchDepth:         *prefetch,
		CompletionBatchWindow: *batchWin,
		Obsv:                  obsv.Options{Logger: logger, AdminAddr: *admin, FlightDir: *flightDir},
	}
	if *dir != "" {
		store, err := spill.NewDiskRunStore(*dir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = store
	}

	w, err := distmr.StartWorker(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("worker %d serving on %s (master %s)", w.ID(), w.Addr(), *master)
	if a := w.AdminAddr(); a != "" {
		log.Printf("admin: http://%s/{metrics,healthz,status,debug/pprof}", a)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		if *drain {
			// Graceful retirement: the master stops leasing to this
			// worker, lets running attempts finish, pulls the winning map
			// outputs into DFS, and only then deregisters — at which point
			// the draining worker's next heartbeat ends it and Wait
			// returns. A second signal skips all that.
			log.Print("draining (send signal again to force shutdown)")
			w.Drain()
			<-sigs
		}
		w.Close()
	}()

	w.Wait()
	if w.Crashed() {
		log.Print("terminated by injected crash")
		os.Exit(3)
	}
	log.Print("shut down")
}
