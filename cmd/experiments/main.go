// Command experiments regenerates the paper's evaluation: the graph
// table, Fig. 5 through Fig. 8, Table I, and the design-choice ablations,
// printing each in a form directly comparable to the published results.
//
// Examples:
//
//	experiments -exp all -scale tiny
//	experiments -exp fig6 -scale default
//	experiments -exp table1 -w 32
//	experiments -exp table1 -trace table1.json   # Chrome trace of the runs
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ffmr/internal/distmr"
	"ffmr/internal/experiments"
	"ffmr/internal/obsv"
	"ffmr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command: it parses args, executes the
// selected experiments and writes all human-readable output to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: graphs|fig5|fig6|table1|fig7|fig8|ablation|mrbsp|warmcold|portfolio|all")
		scale    = fs.String("scale", "tiny", "scale: tiny (10000x down) or default (1000x down)")
		w        = fs.Int("w", 0, "override super source/sink tap count")
		seed     = fs.Int64("seed", 0, "override generation seed")
		nodes    = fs.Int("nodes", 0, "override cluster node count")
		csv      = fs.String("csv", "", "also write each artifact as CSV into this directory")
		traceOut = fs.String("trace", "", "write a Chrome trace_event JSON file covering every run")
		budget   = fs.Int64("memory-budget", 0, "per-map-task shuffle buffer bytes; >0 spills sorted runs to disk (0 = unbounded)")
		spillTo  = fs.String("spill-dir", "", "directory for spill segments (default: system temp dir)")
		comp     = fs.Bool("compress", false, "DEFLATE-compress spill segments")
		dist     = fs.Bool("distributed", false, "run every job on an in-process distributed master/worker cluster")
		distWork = fs.Int("dist-workers", 3, "workers in the distributed cluster (with -distributed)")
		watch    = fs.Bool("watch", false, "render a live dashboard (to stderr) of counters and cluster state")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	saveCSV := func(name string, c interface{ CSV(io.Writer) error }) error {
		if *csv == "" {
			return nil
		}
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csv, name+".csv"))
		if err != nil {
			return err
		}
		if err := c.CSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	var sc experiments.Scale
	switch *scale {
	case "tiny":
		sc = experiments.Tiny()
	case "default":
		sc = experiments.Default()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *w > 0 {
		sc.W = *w
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *nodes > 0 {
		sc.Nodes = *nodes
	}
	sc.MemoryBudget = *budget
	sc.SpillDir = *spillTo
	sc.SpillCompress = *comp
	var tracer *trace.Tracer
	if *traceOut != "" || *watch {
		tracer = trace.New()
		sc.Tracer = tracer
	}
	if *traceOut != "" {
		// Deferred immediately so the trace survives a failed or
		// interrupted experiment — exactly when it matters most.
		defer func() {
			if err := writeTrace(tracer, *traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write trace: %v\n", err)
				return
			}
			fmt.Fprintf(stdout, "trace written to %s\n", *traceOut)
		}()
	}
	var master *distmr.Master
	if *dist {
		h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: *distWork, Tracer: tracer})
		if err != nil {
			return err
		}
		defer h.Close()
		master = h.Master
		sc.Distributed = h.Master
		fmt.Fprintf(stdout, "distributed: %d workers registered with master %s\n\n",
			h.Master.LiveWorkers(), h.Master.Addr())
	}
	if *watch {
		// The dashboard repaints on stderr so the experiment tables on
		// stdout stay clean (and redirectable).
		var statusFn func() *obsv.ClusterStatus
		if master != nil {
			statusFn = master.Status
		}
		dash := obsv.StartDashboard(obsv.DashConfig{
			Out:     os.Stderr,
			Metrics: tracer.Registry,
			Status:  statusFn,
			Title:   fmt.Sprintf("experiments -exp %s -scale %s", *exp, *scale),
			ANSI:    true,
		})
		defer dash.Close()
	}

	run := func(name string, f func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		fmt.Fprintf(stdout, "==== %s ====\n\n", strings.ToUpper(name))
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(stdout)
		return nil
	}

	steps := []struct {
		name string
		f    func() error
	}{
		{"graphs", func() error {
			_, tbl, err := experiments.GraphsTable(sc)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, tbl)
			return saveCSV("graphs", tbl)
		}},
		{"fig5", func() error {
			_, fig, err := experiments.Fig5(sc, []int{1, 2, 4, 8, 16, 32})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, fig)
			return saveCSV("fig5", fig)
		}},
		{"fig6", func() error {
			_, tbl, err := experiments.Fig6(sc)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, tbl)
			return saveCSV("fig6", tbl)
		}},
		{"table1", func() error {
			_, tbl, err := experiments.Table1(sc, sc.W)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, tbl)
			return saveCSV("table1", tbl)
		}},
		{"fig7", func() error {
			_, fig, err := experiments.Fig7(sc)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, fig)
			return saveCSV("fig7", fig)
		}},
		{"fig8", func() error {
			_, fig, err := experiments.Fig8(sc, []int{5, 10, 20})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, fig)
			return saveCSV("fig8", fig)
		}},
		{"ablation", func() error {
			_, tbl, err := experiments.AblationTechniques(sc)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, tbl)
			_, tbl2, err := experiments.AblationK(sc, []int{1, 2, 4, 8, 16})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, tbl2)
			_, tbl3, err := experiments.AblationCombiner(sc)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, tbl3)
			if err := saveCSV("ablation-techniques", tbl); err != nil {
				return err
			}
			if err := saveCSV("ablation-k", tbl2); err != nil {
				return err
			}
			return saveCSV("ablation-combiner", tbl3)
		}},
		{"mrbsp", func() error {
			_, tbl, err := experiments.CompareMRBSP(sc)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, tbl)
			return saveCSV("mrbsp", tbl)
		}},
		{"warmcold", func() error {
			_, tbl, err := experiments.WarmVsCold(sc, []int{5, 20, 80}, 2)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, tbl)
			return saveCSV("warmcold", tbl)
		}},
		{"portfolio", func() error {
			_, tbl, err := experiments.Portfolio(sc)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, tbl)
			return saveCSV("portfolio", tbl)
		}},
	}
	if *exp != "all" {
		known := false
		for _, s := range steps {
			known = known || s.name == *exp
		}
		if !known {
			return fmt.Errorf("unknown experiment %q (want graphs, fig5, fig6, table1, fig7, fig8, ablation, mrbsp, warmcold, portfolio or all)", *exp)
		}
	}
	for _, s := range steps {
		if err := run(s.name, s.f); err != nil {
			return err
		}
	}

	return nil
}

// writeTrace flushes the tracer's Chrome trace to path.
func writeTrace(tracer *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
