// Command experiments regenerates the paper's evaluation: the graph
// table, Fig. 5 through Fig. 8, Table I, and the design-choice ablations,
// printing each in a form directly comparable to the published results.
//
// Examples:
//
//	experiments -exp all -scale tiny
//	experiments -exp fig6 -scale default
//	experiments -exp table1 -w 32
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ffmr/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		exp   = flag.String("exp", "all", "experiment: graphs|fig5|fig6|table1|fig7|fig8|ablation|all")
		scale = flag.String("scale", "tiny", "scale: tiny (10000x down) or default (1000x down)")
		w     = flag.Int("w", 0, "override super source/sink tap count")
		seed  = flag.Int64("seed", 0, "override generation seed")
		nodes = flag.Int("nodes", 0, "override cluster node count")
		csv   = flag.String("csv", "", "also write each artifact as CSV into this directory")
	)
	flag.Parse()

	saveCSV := func(name string, c interface{ CSV(io.Writer) error }) error {
		if *csv == "" {
			return nil
		}
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csv, name+".csv"))
		if err != nil {
			return err
		}
		if err := c.CSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	var sc experiments.Scale
	switch *scale {
	case "tiny":
		sc = experiments.Tiny()
	case "default":
		sc = experiments.Default()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	if *w > 0 {
		sc.W = *w
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *nodes > 0 {
		sc.Nodes = *nodes
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n\n", strings.ToUpper(name))
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("graphs", func() error {
		_, tbl, err := experiments.GraphsTable(sc)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return saveCSV("graphs", tbl)
	})
	run("fig5", func() error {
		_, fig, err := experiments.Fig5(sc, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		fmt.Println(fig)
		return saveCSV("fig5", fig)
	})
	run("fig6", func() error {
		_, tbl, err := experiments.Fig6(sc)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return saveCSV("fig6", tbl)
	})
	run("table1", func() error {
		_, tbl, err := experiments.Table1(sc, sc.W)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return saveCSV("table1", tbl)
	})
	run("fig7", func() error {
		_, fig, err := experiments.Fig7(sc)
		if err != nil {
			return err
		}
		fmt.Println(fig)
		return saveCSV("fig7", fig)
	})
	run("fig8", func() error {
		_, fig, err := experiments.Fig8(sc, []int{5, 10, 20})
		if err != nil {
			return err
		}
		fmt.Println(fig)
		return saveCSV("fig8", fig)
	})
	run("ablation", func() error {
		_, tbl, err := experiments.AblationTechniques(sc)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		_, tbl2, err := experiments.AblationK(sc, []int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		fmt.Println(tbl2)
		_, tbl3, err := experiments.AblationCombiner(sc)
		if err != nil {
			return err
		}
		fmt.Println(tbl3)
		if err := saveCSV("ablation-techniques", tbl); err != nil {
			return err
		}
		if err := saveCSV("ablation-k", tbl2); err != nil {
			return err
		}
		return saveCSV("ablation-combiner", tbl3)
	})
	run("mrbsp", func() error {
		_, tbl, err := experiments.CompareMRBSP(sc)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return saveCSV("mrbsp", tbl)
	})

	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "unexpected arguments:", flag.Args())
		os.Exit(2)
	}
}
