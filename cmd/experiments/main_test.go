package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ffmr/internal/stats"
	"ffmr/internal/trace"
)

// TestTable1MatchesTrace is the acceptance check for the unified
// instrumentation: running `-exp table1 -trace out.json` must emit a
// Chrome trace whose per-round A-Paths, MaxQ, Map Out and Shuffle(KB)
// values exactly match the rendered Table I — both views are projections
// of the same round spans, so any disagreement means a second
// bookkeeping path crept back in.
func TestTable1MatchesTrace(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-trace", traceFile}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}

	tableRows := parseTable1(t, out.String())
	if len(tableRows) == 0 {
		t.Fatalf("no Table I rows parsed from output:\n%s", out.String())
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	events, err := trace.ParseChromeTrace(data)
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}

	// Collect the round spans; -exp table1 runs exactly one FFMR job, so
	// every round event in the trace belongs to the rendered table.
	traceRows := map[int64][5]string{}
	for _, ev := range events {
		if ev.Cat != trace.CatRound {
			continue
		}
		round, ok := ev.Int(trace.AttrRound)
		if !ok {
			t.Fatalf("round span %q has no %s arg", ev.Name, trace.AttrRound)
		}
		get := func(key string) int64 {
			v, ok := ev.Int(key)
			if !ok {
				t.Fatalf("round %d span has no %s arg", round, key)
			}
			return v
		}
		traceRows[round] = [5]string{
			stats.FormatCount(get(trace.AttrAPaths)),
			stats.FormatCount(get(trace.AttrMaxQueue)),
			stats.FormatCount(get(trace.AttrMapOutRecords)),
			stats.FormatCount(get(trace.AttrShuffleBytes) / 1024),
			stats.FormatCount(get(trace.AttrActiveVertices)),
		}
	}
	if len(traceRows) != len(tableRows) {
		t.Fatalf("trace has %d round spans, Table I has %d rows", len(traceRows), len(tableRows))
	}
	for round, want := range tableRows {
		got, ok := traceRows[round]
		if !ok {
			t.Errorf("round %d in Table I but not in trace", round)
			continue
		}
		if got != want {
			t.Errorf("round %d mismatch:\n  table [A-Paths MaxQ MapOut ShuffleKB Active] = %v\n  trace                                       = %v",
				round, want, got)
		}
	}
}

// parseTable1 extracts the [A-Paths, MaxQ, Map Out, Shuffle(KB), Active]
// cells of each rendered Table I row, keyed by round number.
func parseTable1(t *testing.T, output string) map[int64][5]string {
	t.Helper()
	lines := strings.Split(output, "\n")
	start := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "Table I:") {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("no Table I in output:\n%s", output)
	}
	header := lines[start+1]
	for _, col := range []string{"R", "A-Paths", "MaxQ", "Map Out", "Shuffle(KB)", "Active"} {
		if !strings.Contains(header, col) {
			t.Fatalf("Table I header missing column %q: %s", col, header)
		}
	}
	// Rows follow the dashed rule; columns are separated by 2+ spaces
	// (cells themselves never contain runs of spaces).
	sep := regexp.MustCompile(`\s{2,}`)
	rows := map[int64][5]string{}
	for _, l := range lines[start+3:] {
		if strings.TrimSpace(l) == "" {
			break
		}
		cells := sep.Split(strings.TrimSpace(l), -1)
		if len(cells) < 7 {
			t.Fatalf("short Table I row %q", l)
		}
		var round int64
		if _, err := fmt.Sscanf(cells[0], "%d", &round); err != nil {
			t.Fatalf("bad round cell %q in row %q", cells[0], l)
		}
		rows[round] = [5]string{cells[1], cells[2], cells[3], cells[4], cells[5]}
	}
	return rows
}
