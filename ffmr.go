// Package ffmr is a Go implementation of the MapReduce-based maximum-flow
// algorithms for large small-world network graphs of Halim, Yap and Wu
// (ICDCS 2011), together with everything needed to run them: an embedded
// multi-round MapReduce engine with a simulated cluster and distributed
// file system, the FF1..FF5 algorithm variants, the external stateful
// accumulator process (aug_proc), an MR-BFS baseline, sequential max-flow
// baselines (Ford-Fulkerson, Edmonds-Karp, Dinic, Push-Relabel), and
// small-world graph generators.
//
// # Quick start
//
//	g := ffmr.NewGraph(4)
//	g.AddEdge(0, 1, 1) // undirected, capacity 1
//	g.AddEdge(1, 3, 1)
//	g.AddEdge(0, 2, 1)
//	g.AddEdge(2, 3, 1)
//	g.SetSource(0)
//	g.SetSink(3)
//	res, err := ffmr.Compute(g, ffmr.WithVariant(ffmr.FF5), ffmr.WithNodes(4))
//
// Compute runs the full multi-round MapReduce pipeline: round #0 converts
// the edge list into vertex records, then max-flow rounds run until the
// movement-counter termination rule fires. The result carries the flow
// value plus the per-round statistics the paper reports (accepted
// augmenting paths, shuffle bytes, simulated cluster runtime).
package ffmr

import (
	"fmt"

	"ffmr/internal/graph"
)

// Variant selects an algorithm version; see the package documentation of
// internal/core for what each adds.
type Variant int

// The five algorithm variants of the paper, in cumulative order, plus
// names for the termination rules.
const (
	FF1 Variant = 1 + iota
	FF2
	FF3
	FF4
	FF5
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	if v >= FF1 && v <= FF5 {
		return fmt.Sprintf("FF%d", int(v))
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Graph is a flow network under construction: a vertex count, an edge
// list, and designated source and sink vertices. The zero value is not
// usable; create instances with NewGraph.
type Graph struct {
	in graph.Input
	// den is the common capacity denominator for rational capacities
	// (see AddEdgeRational); 0 means 1.
	den int64
}

// NewGraph creates a graph with n vertices, numbered 0..n-1. The source
// defaults to vertex 0 and the sink to vertex n-1.
func NewGraph(n int) *Graph {
	return &Graph{in: graph.Input{
		NumVertices: n,
		Sink:        graph.VertexID(maxInt(n-1, 0)),
	}}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AddEdge adds an undirected edge with the given capacity in both
// directions, the form the paper's experiments use (round #0 "makes the
// edges bi-directional").
func (g *Graph) AddEdge(u, v int, capacity int64) {
	g.in.Edges = append(g.in.Edges, graph.InputEdge{
		U: graph.VertexID(u), V: graph.VertexID(v), Cap: capacity,
	})
}

// AddArc adds a directed edge u -> v with the given capacity (and zero
// reverse capacity).
func (g *Graph) AddArc(u, v int, capacity int64) {
	g.in.Edges = append(g.in.Edges, graph.InputEdge{
		U: graph.VertexID(u), V: graph.VertexID(v), Cap: capacity, Directed: true,
	})
}

// SetSource designates the source vertex s.
func (g *Graph) SetSource(v int) { g.in.Source = graph.VertexID(v) }

// SetSink designates the sink vertex t.
func (g *Graph) SetSink(v int) { g.in.Sink = graph.VertexID(v) }

// Source returns the designated source vertex.
func (g *Graph) Source() int { return int(g.in.Source) }

// Sink returns the designated sink vertex.
func (g *Graph) Sink() int { return int(g.in.Sink) }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.in.NumVertices }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.in.Edges) }

// Validate checks the graph for structural problems (out-of-range
// endpoints, self-loops, negative capacities, source equal to sink).
func (g *Graph) Validate() error { return g.in.Validate() }

// Input exposes the internal representation for the command-line tools
// and benchmarks living in this module.
func (g *Graph) input() *graph.Input { return &g.in }

// fromInput wraps an internal input (sharing its storage).
func fromInput(in *graph.Input) *Graph { return &Graph{in: *in} }
