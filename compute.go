package ffmr

import (
	"fmt"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/mapreduce"
	"ffmr/internal/maxflow"
)

// RoundStat reports one MapReduce round of a Compute run; the fields
// correspond to the columns of the paper's Table I.
type RoundStat struct {
	Round          int
	AcceptedPaths  int64 // A-Paths
	SubmittedPaths int64
	MaxQueue       int64 // MaxQ of aug_proc
	FlowDelta      int64
	MapOutRecords  int64 // Map Out
	ShuffleBytes   int64 // Shuffle
	MaxRecordBytes int64
	OutputBytes    int64
	SimTime        time.Duration
	WallTime       time.Duration
}

// Result is the outcome of a Compute run.
type Result struct {
	// MaxFlow is the computed maximum flow value.
	MaxFlow int64
	// Variant is the algorithm version that ran.
	Variant Variant
	// Rounds is the number of max-flow rounds (excluding the round #0
	// graph conversion), the paper's primary complexity measure.
	Rounds int
	// RoundStats has one entry per round; index 0 is round #0.
	RoundStats []RoundStat
	// SimTime is the modelled cluster runtime summed over rounds;
	// WallTime is the measured host time.
	SimTime  time.Duration
	WallTime time.Duration
	// GraphBytes is the converted graph's size in the simulated DFS; the
	// paper's "Size" column. MaxGraphBytes is the largest per-round size
	// ("Max Size"), which grows as excess paths accumulate.
	GraphBytes    int64
	MaxGraphBytes int64
}

// Compute runs an FFMR maximum-flow computation on a simulated MapReduce
// cluster and returns the flow value with per-round statistics.
func Compute(g *Graph, options ...Option) (*Result, error) {
	cfg := defaultConfig()
	for _, opt := range options {
		opt(&cfg)
	}
	cluster := newCluster(&cfg)
	res, err := core.Run(cluster, g.input(), cfg.opts)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

func newCluster(cfg *config) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{
		Nodes:       cfg.nodes,
		BlockSize:   cfg.blockSize,
		Replication: cfg.replication,
	})
	cluster := mapreduce.NewCluster(cfg.nodes, cfg.slotsPerNode, fs)
	switch {
	case cfg.costModel != nil:
		cluster.Cost = *cfg.costModel
	case cfg.realistic:
		cluster.Cost = mapreduce.DefaultCostModel()
	default:
		cluster.Cost = mapreduce.ZeroCostModel()
	}
	return cluster
}

func convertResult(res *core.Result) *Result {
	out := &Result{
		MaxFlow:       res.MaxFlow,
		Variant:       Variant(res.Variant),
		Rounds:        res.Rounds,
		SimTime:       res.TotalSimTime,
		WallTime:      res.TotalWallTime,
		GraphBytes:    res.InputGraphBytes,
		MaxGraphBytes: res.MaxGraphBytes,
	}
	for _, rs := range res.RoundStats {
		out.RoundStats = append(out.RoundStats, RoundStat{
			Round:          rs.Round,
			AcceptedPaths:  rs.APaths,
			SubmittedPaths: rs.Submitted,
			MaxQueue:       rs.MaxQueue,
			FlowDelta:      rs.FlowDelta,
			MapOutRecords:  rs.MapOutRecords,
			ShuffleBytes:   rs.ShuffleBytes,
			MaxRecordBytes: rs.MaxRecordBytes,
			OutputBytes:    rs.OutputBytes,
			SimTime:        rs.SimTime,
			WallTime:       rs.WallTime,
		})
	}
	return out
}

// BFSResult reports a multi-round MapReduce BFS (the paper's baseline).
type BFSResult struct {
	// Rounds is the number of expansion rounds executed.
	Rounds int
	// SourceSinkDistance is the hop distance from source to sink, or -1
	// if the sink is unreachable.
	SourceSinkDistance int
	// Visited is the number of vertices reached from the source.
	Visited  int64
	SimTime  time.Duration
	WallTime time.Duration
}

// BFS runs the multi-round MapReduce breadth-first search the paper uses
// to estimate graph diameter and as a lower-bound baseline.
func BFS(g *Graph, options ...Option) (*BFSResult, error) {
	cfg := defaultConfig()
	for _, opt := range options {
		opt(&cfg)
	}
	cluster := newCluster(&cfg)
	res, err := core.RunBFS(cluster, g.input(), cfg.opts.Reducers, "")
	if err != nil {
		return nil, err
	}
	return &BFSResult{
		Rounds:             res.Rounds,
		SourceSinkDistance: res.SinkDist,
		Visited:            res.Visited,
		SimTime:            res.TotalSimTime,
		WallTime:           res.TotalWallTime,
	}, nil
}

// BSPResult reports a run of the Pregel/BSP translation of the
// algorithm (the paper's Section II-B conjecture that the ideas
// "translate to Pregel", implemented over the embedded BSP engine).
type BSPResult struct {
	MaxFlow    int64
	Supersteps int
	// Messages and MessageBytes are the BSP analogue of the MapReduce
	// version's intermediate records and shuffle bytes.
	Messages     int64
	MessageBytes int64
	WallTime     time.Duration
}

// ComputeBSP runs the bulk-synchronous-parallel (Pregel-style)
// translation of the max-flow algorithm. Relevant options:
// WithoutBidirectionalSearch, WithoutMultiplePaths, WithK,
// WithSlotsPerNode (worker partitions), WithMaxRounds (supersteps).
func ComputeBSP(g *Graph, options ...Option) (*BSPResult, error) {
	cfg := defaultConfig()
	for _, opt := range options {
		opt(&cfg)
	}
	bopts := core.BSPOptions{
		K:                    cfg.opts.K,
		DisableBidirectional: cfg.opts.DisableBidirectional,
		Workers:              cfg.nodes * cfg.slotsPerNode,
		MaxSupersteps:        cfg.opts.MaxRounds,
	}
	if cfg.opts.DisableMultiPaths {
		bopts.K = 1
	}
	res, err := core.RunBSP(g.input(), bopts)
	if err != nil {
		return nil, err
	}
	return &BSPResult{
		MaxFlow:      res.MaxFlow,
		Supersteps:   res.Supersteps,
		Messages:     res.Messages,
		MessageBytes: res.MessageBytes,
		WallTime:     res.WallTime,
	}, nil
}

// Sequential algorithm names accepted by ComputeSequential.
const (
	AlgoFordFulkerson = "ford-fulkerson-dfs"
	AlgoEdmondsKarp   = "edmonds-karp"
	AlgoDinic         = "dinic"
	AlgoPushRelabel   = "push-relabel"
	AlgoCapScaling    = "capacity-scaling"
)

// ComputeSequential runs a classical memory-resident max-flow algorithm
// on the graph — the baselines the paper contrasts with (Section II-A) —
// and returns the flow value. Accepted names are AlgoFordFulkerson,
// AlgoEdmondsKarp, AlgoDinic, AlgoPushRelabel and AlgoCapScaling.
func ComputeSequential(g *Graph, algorithm string) (int64, error) {
	net, err := maxflow.FromInput(g.input())
	if err != nil {
		return 0, err
	}
	for _, s := range maxflow.Solvers() {
		if s.Name == algorithm {
			return s.Run(net, g.Source(), g.Sink()), nil
		}
	}
	return 0, fmt.Errorf("ffmr: unknown sequential algorithm %q", algorithm)
}

// MinCut computes a minimum s-t cut: it returns the set of vertices on
// the source side (as a boolean slice indexed by vertex) and the cut
// capacity, which equals the maximum flow. The paper's motivating
// applications — community identification, link-spam detection, Sybil
// defense — all consume the cut rather than the flow value.
func MinCut(g *Graph) ([]bool, int64, error) {
	net, err := maxflow.FromInput(g.input())
	if err != nil {
		return nil, 0, err
	}
	flow := maxflow.Dinic(net, g.Source(), g.Sink())
	return net.MinCut(g.Source()), flow, nil
}
