package ffmr_test

import (
	"fmt"

	"ffmr"
)

// The CLRS Figure 26.1 network, computed with the FF5 MapReduce
// algorithm on a simulated 4-node cluster.
func ExampleCompute() {
	g := ffmr.NewGraph(6)
	g.SetSource(0)
	g.SetSink(5)
	g.AddArc(0, 1, 16)
	g.AddArc(0, 2, 13)
	g.AddArc(1, 2, 10)
	g.AddArc(2, 1, 4)
	g.AddArc(1, 3, 12)
	g.AddArc(3, 2, 9)
	g.AddArc(2, 4, 14)
	g.AddArc(4, 3, 7)
	g.AddArc(3, 5, 20)
	g.AddArc(4, 5, 4)

	res, err := ffmr.Compute(g, ffmr.WithVariant(ffmr.FF5), ffmr.WithNodes(4))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("max flow:", res.MaxFlow)
	// Output: max flow: 23
}

// A minimum cut separates two planted clusters joined by two bridges.
func ExampleMinCut() {
	g := ffmr.NewGraph(6)
	g.SetSource(0)
	g.SetSink(3)
	// Cluster A: 0-1-2 triangle; cluster B: 3-4-5 triangle. In-cluster
	// edges are heavy so the bridges are the unique bottleneck.
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	g.AddEdge(0, 2, 5)
	g.AddEdge(3, 4, 5)
	g.AddEdge(4, 5, 5)
	g.AddEdge(3, 5, 5)
	// Two bridges.
	g.AddEdge(2, 3, 1)
	g.AddEdge(1, 4, 1)

	side, capacity, err := ffmr.MinCut(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cut capacity:", capacity)
	fmt.Println("source side:", side[0], side[1], side[2])
	fmt.Println("sink side:", !side[3], !side[4], !side[5])
	// Output:
	// cut capacity: 2
	// source side: true true true
	// sink side: true true true
}

// Rational capacities reduce to exact integer arithmetic internally.
func ExampleGraph_AddEdgeRational() {
	g := ffmr.NewGraph(3)
	g.SetSource(0)
	g.SetSink(2)
	_ = g.AddEdgeRational(0, 1, 3, 2) // capacity 3/2
	_ = g.AddEdgeRational(1, 2, 4, 5) // capacity 4/5

	flow, _ := ffmr.ComputeSequential(g, ffmr.AlgoDinic)
	num, den := g.FlowRational(flow)
	fmt.Printf("max flow: %d/%d\n", num, den)
	// Output: max flow: 4/5
}

// The BSP (Pregel-style) translation computes the same flows.
func ExampleComputeBSP() {
	g := ffmr.NewGraph(4)
	g.SetSource(0)
	g.SetSink(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 1)

	res, err := ffmr.ComputeBSP(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("max flow:", res.MaxFlow)
	// Output: max flow: 3
}
