package ffmr_test

import (
	"strings"
	"testing"

	"ffmr"
)

func diamond() *ffmr.Graph {
	g := ffmr.NewGraph(4)
	g.SetSource(0)
	g.SetSink(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	return g
}

func TestComputeDefaults(t *testing.T) {
	res, err := ffmr.Compute(diamond())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != 2 {
		t.Fatalf("max flow = %d, want 2", res.MaxFlow)
	}
	if res.Variant != ffmr.FF5 {
		t.Errorf("default variant = %v, want FF5", res.Variant)
	}
	if res.Rounds < 1 || len(res.RoundStats) != res.Rounds+1 {
		t.Errorf("rounds = %d, stats = %d", res.Rounds, len(res.RoundStats))
	}
	if res.GraphBytes <= 0 || res.MaxGraphBytes < res.GraphBytes {
		t.Errorf("graph bytes %d / max %d", res.GraphBytes, res.MaxGraphBytes)
	}
}

func TestComputeAllVariantsAgree(t *testing.T) {
	g, err := ffmr.WattsStrogatzGraph(400, 6, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ffmr.ComputeSequential(g, ffmr.AlgoDinic)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []ffmr.Variant{ffmr.FF1, ffmr.FF2, ffmr.FF3, ffmr.FF4, ffmr.FF5} {
		res, err := ffmr.Compute(g, ffmr.WithVariant(v), ffmr.WithNodes(3))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.MaxFlow != want {
			t.Errorf("%v computed %d, dinic %d", v, res.MaxFlow, want)
		}
	}
}

func TestComputeOptions(t *testing.T) {
	g := diamond()
	res, err := ffmr.Compute(g,
		ffmr.WithVariant(ffmr.FF2),
		ffmr.WithNodes(2),
		ffmr.WithSlotsPerNode(2),
		ffmr.WithK(2),
		ffmr.WithReducers(3),
		ffmr.WithMaxRounds(50),
		ffmr.WithBlockSize(1024),
		ffmr.WithTermination(ffmr.TerminationStrict),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != 2 {
		t.Fatalf("max flow = %d", res.MaxFlow)
	}
}

func TestComputeAblationOptions(t *testing.T) {
	g, err := ffmr.BarabasiAlbertGraph(300, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ffmr.ComputeSequential(g, ffmr.AlgoDinic)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]ffmr.Option{
		{ffmr.WithoutBidirectionalSearch()},
		{ffmr.WithoutMultiplePaths()},
		{ffmr.WithoutBidirectionalSearch(), ffmr.WithoutMultiplePaths()},
	} {
		res, err := ffmr.Compute(g, append(opts, ffmr.WithVariant(ffmr.FF2))...)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxFlow != want {
			t.Errorf("ablation run computed %d, want %d", res.MaxFlow, want)
		}
	}
}

func TestComputeRealisticCost(t *testing.T) {
	fast, err := ffmr.Compute(diamond())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ffmr.Compute(diamond(), ffmr.WithRealisticCost())
	if err != nil {
		t.Fatal(err)
	}
	if slow.SimTime <= fast.SimTime {
		t.Errorf("realistic sim time %v not larger than zero-cost %v", slow.SimTime, fast.SimTime)
	}
}

func TestComputeInvalidGraph(t *testing.T) {
	g := ffmr.NewGraph(2)
	g.AddEdge(0, 5, 1) // out of range
	if _, err := ffmr.Compute(g); err == nil {
		t.Fatal("invalid graph accepted")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed out-of-range edge")
	}
}

func TestBFSFacade(t *testing.T) {
	g := ffmr.NewGraph(5)
	g.SetSource(0)
	g.SetSink(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	res, err := ffmr.BFS(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceSinkDistance != 4 {
		t.Errorf("distance = %d, want 4", res.SourceSinkDistance)
	}
	if res.Visited != 5 {
		t.Errorf("visited = %d, want 5", res.Visited)
	}
}

func TestComputeBSP(t *testing.T) {
	g, err := ffmr.BarabasiAlbertGraph(400, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ffmr.ComputeSequential(g, ffmr.AlgoDinic)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ffmr.ComputeBSP(g, ffmr.WithSlotsPerNode(2), ffmr.WithNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != want {
		t.Fatalf("BSP flow %d, dinic %d", res.MaxFlow, want)
	}
	if res.Supersteps < 2 || res.Messages == 0 {
		t.Errorf("implausible BSP stats: %+v", res)
	}
	// Ablation options must not change the value.
	res2, err := ffmr.ComputeBSP(g, ffmr.WithoutBidirectionalSearch(), ffmr.WithoutMultiplePaths())
	if err != nil {
		t.Fatal(err)
	}
	if res2.MaxFlow != want {
		t.Fatalf("BSP ablation flow %d, want %d", res2.MaxFlow, want)
	}
}

func TestComputeSequentialNames(t *testing.T) {
	g := diamond()
	for _, algo := range []string{
		ffmr.AlgoFordFulkerson, ffmr.AlgoEdmondsKarp, ffmr.AlgoDinic,
		ffmr.AlgoPushRelabel, ffmr.AlgoCapScaling,
	} {
		got, err := ffmr.ComputeSequential(g, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if got != 2 {
			t.Errorf("%s = %d, want 2", algo, got)
		}
	}
	if _, err := ffmr.ComputeSequential(g, "bogus"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestMinCutFacade(t *testing.T) {
	g := diamond()
	side, cut, err := ffmr.MinCut(g)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 2 {
		t.Errorf("cut = %d, want 2", cut)
	}
	if !side[0] || side[3] {
		t.Errorf("cut sides wrong: %v", side)
	}
}

func TestGeneratorsFacade(t *testing.T) {
	tests := []struct {
		name string
		gen  func() (*ffmr.Graph, error)
	}{
		{"watts-strogatz", func() (*ffmr.Graph, error) { return ffmr.WattsStrogatzGraph(100, 4, 0.1, 1) }},
		{"barabasi-albert", func() (*ffmr.Graph, error) { return ffmr.BarabasiAlbertGraph(100, 3, 1) }},
		{"rmat", func() (*ffmr.Graph, error) { return ffmr.RMATGraph(7, 4, 1) }},
		{"erdos-renyi", func() (*ffmr.Graph, error) { return ffmr.ErdosRenyiGraph(100, 200, 1) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("generated graph invalid: %v", err)
			}
			if g.NumEdges() == 0 {
				t.Fatal("no edges generated")
			}
			if g.Source() == g.Sink() {
				t.Fatal("source equals sink")
			}
		})
	}
}

func TestFacebookChainFacade(t *testing.T) {
	chain, err := ffmr.FacebookChain([]ffmr.FacebookChainSpec{
		{Name: "A", Vertices: 200},
		{Name: "B", Vertices: 500},
	}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain length %d", len(chain))
	}
	if chain[0].NumVertices() != 200 || chain[1].NumVertices() != 500 {
		t.Errorf("sizes: %d, %d", chain[0].NumVertices(), chain[1].NumVertices())
	}
	if chain[0].NumEdges() >= chain[1].NumEdges() {
		t.Error("edges not nested-increasing")
	}
}

func TestDecomposeHighDegreeFacade(t *testing.T) {
	g, err := ffmr.BarabasiAlbertGraph(400, 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ffmr.ComputeSequential(g, ffmr.AlgoDinic)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := g.DecomposeHighDegree(10)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumVertices() <= g.NumVertices() {
		t.Error("no clones added")
	}
	got, err := ffmr.ComputeSequential(dec, ffmr.AlgoDinic)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decomposition changed flow: %d, want %d", got, want)
	}
	// The distributed algorithm works on the decomposed graph too.
	res, err := ffmr.Compute(dec, ffmr.WithVariant(ffmr.FF5))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != want {
		t.Fatalf("FF5 on decomposed graph: %d, want %d", res.MaxFlow, want)
	}
}

func TestVariantString(t *testing.T) {
	if ffmr.FF3.String() != "FF3" {
		t.Errorf("FF3 prints as %q", ffmr.FF3)
	}
	if !strings.Contains(ffmr.Variant(99).String(), "99") {
		t.Errorf("unknown variant prints as %q", ffmr.Variant(99))
	}
}

func TestGraphAccessors(t *testing.T) {
	g := ffmr.NewGraph(10)
	if g.Source() != 0 || g.Sink() != 9 {
		t.Errorf("defaults: s=%d t=%d", g.Source(), g.Sink())
	}
	g.AddArc(1, 2, 5)
	if g.NumVertices() != 10 || g.NumEdges() != 1 {
		t.Errorf("counts: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	deg := g.Degrees()
	if deg[1] != 1 || deg[2] != 1 || deg[0] != 0 {
		t.Errorf("degrees: %v", deg)
	}
	g.RandomizeCapacities(7, 1)
}
