package ffmr

import (
	"ffmr/internal/graphgen"
)

// Graph generators re-exported from the internal graphgen package. All
// generators take a seed and are deterministic given it.

// WattsStrogatzGraph generates a Watts-Strogatz small-world graph: a ring
// lattice of n vertices with k nearest neighbours each (k even), rewired
// with probability beta. Source and sink default to the two
// highest-degree non-adjacent vertices; override with SetSource/SetSink
// or AttachSuperSourceSink.
func WattsStrogatzGraph(n, k int, beta float64, seed int64) (*Graph, error) {
	in, err := graphgen.WattsStrogatz(n, k, beta, seed)
	if err != nil {
		return nil, err
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	return fromInput(in), nil
}

// BarabasiAlbertGraph generates a scale-free preferential-attachment
// graph with n vertices, each new vertex attaching to m existing ones.
func BarabasiAlbertGraph(n, m int, seed int64) (*Graph, error) {
	in, err := graphgen.BarabasiAlbert(n, m, seed)
	if err != nil {
		return nil, err
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	return fromInput(in), nil
}

// RMATGraph generates a Graph500-style R-MAT graph with 2^scale vertices
// and about edgeFactor*2^scale edges.
func RMATGraph(scale, edgeFactor int, seed int64) (*Graph, error) {
	in, err := graphgen.RMAT(scale, edgeFactor, seed)
	if err != nil {
		return nil, err
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	return fromInput(in), nil
}

// ErdosRenyiGraph generates a uniform G(n, m) random graph — the
// non-small-world control used in tests and benchmarks.
func ErdosRenyiGraph(n, m int, seed int64) (*Graph, error) {
	in, err := graphgen.ErdosRenyi(n, m, seed)
	if err != nil {
		return nil, err
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	return fromInput(in), nil
}

// FacebookChainSpec names one member of a nested crawl chain.
type FacebookChainSpec struct {
	Name     string
	Vertices int
}

// FacebookChain generates the nested FB1 ⊂ FB2 ⊂ ... subgraph chain that
// emulates the paper's Facebook crawl (scaled to the given vertex
// counts). Pass nil to use the default chain, the paper's FB1..FB6
// vertex counts scaled down by 1000x. attach is the preferential-
// attachment parameter of the master graph (half the average degree).
func FacebookChain(specs []FacebookChainSpec, attach int, seed int64) ([]*Graph, error) {
	gspecs := make([]graphgen.FBSpec, 0, len(specs))
	if specs == nil {
		gspecs = graphgen.DefaultFBChain()
	} else {
		for _, s := range specs {
			gspecs = append(gspecs, graphgen.FBSpec{Name: s.Name, Vertices: s.Vertices})
		}
	}
	chain, err := graphgen.CrawlChain(gspecs, attach, seed)
	if err != nil {
		return nil, err
	}
	out := make([]*Graph, len(chain))
	for i, in := range chain {
		in.Source, in.Sink = graphgen.PickEndpoints(in)
		out[i] = fromInput(in)
	}
	return out, nil
}

// AttachSuperSourceSink implements the paper's Section V-A1 workload
// construction: w random vertices with degree >= minDegree are wired to a
// new super source, another disjoint w to a new super sink, with infinite
// capacity. The returned graph has two extra vertices with source and
// sink set accordingly; the receiver is unchanged.
func (g *Graph) AttachSuperSourceSink(w, minDegree int, seed int64) (*Graph, error) {
	in, err := graphgen.AttachSuperSourceSink(g.input(), w, minDegree, seed)
	if err != nil {
		return nil, err
	}
	return fromInput(in), nil
}

// RandomizeCapacities replaces all edge capacities with values drawn
// uniformly from [1, maxCap].
func (g *Graph) RandomizeCapacities(maxCap int64, seed int64) {
	graphgen.RandomCapacities(&g.in, maxCap, seed)
}

// Degrees returns the undirected degree of every vertex.
func (g *Graph) Degrees() []int { return graphgen.Degrees(&g.in) }

// DecomposeHighDegree splits every vertex with degree above maxDegree
// into a chain of infinite-capacity-linked clones, per the paper's
// Section V remark that a vertex with too many edges "can be decomposed
// into several vertices of smaller degree" without loss of generality.
// Max-flow values are preserved; the receiver is unchanged.
func (g *Graph) DecomposeHighDegree(maxDegree int) (*Graph, error) {
	dec, err := graphgen.DecomposeHighDegree(g.input(), maxDegree)
	if err != nil {
		return nil, err
	}
	out := fromInput(dec)
	out.den = g.den
	return out, nil
}

// GraphMetrics summarizes a graph's small-world statistics — the
// structural properties (low diameter, heavy-tailed degrees, high
// clustering) the paper's algorithm exploits.
type GraphMetrics struct {
	Vertices          int
	Edges             int
	AverageDegree     float64
	MaxDegree         int
	EstimatedDiameter int
	AveragePathLength float64
	Clustering        float64
	LargestComponent  float64
}

// Measure computes sampled small-world metrics for the graph. samples
// controls how many BFS sweeps are used (<=0 selects a default).
func (g *Graph) Measure(samples int, seed int64) GraphMetrics {
	m := graphgen.Measure(&g.in, samples, seed)
	return GraphMetrics{
		Vertices:          m.Vertices,
		Edges:             m.Edges,
		AverageDegree:     m.AverageDegree,
		MaxDegree:         m.MaxDegree,
		EstimatedDiameter: m.EstimatedDiameter,
		AveragePathLength: m.AveragePathLength,
		Clustering:        m.Clustering,
		LargestComponent:  m.LargestComponent,
	}
}
