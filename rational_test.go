package ffmr_test

import (
	"testing"

	"ffmr"
)

func TestRationalCapacities(t *testing.T) {
	// Two parallel paths with capacities 1/2 and 1/3: max flow 5/6.
	g := ffmr.NewGraph(4)
	g.SetSource(0)
	g.SetSink(3)
	if err := g.AddEdgeRational(0, 1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeRational(1, 3, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeRational(0, 2, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeRational(2, 3, 1, 3); err != nil {
		t.Fatal(err)
	}
	if g.CapacityDenominator() != 6 {
		t.Fatalf("common denominator = %d, want 6", g.CapacityDenominator())
	}
	res, err := ffmr.Compute(g, ffmr.WithVariant(ffmr.FF2))
	if err != nil {
		t.Fatal(err)
	}
	num, den := g.FlowRational(res.MaxFlow)
	if num != 5 || den != 6 {
		t.Fatalf("flow = %d/%d, want 5/6", num, den)
	}
	// Sequential oracle agrees at the integer scale.
	seq, err := ffmr.ComputeSequential(g, ffmr.AlgoDinic)
	if err != nil {
		t.Fatal(err)
	}
	if seq != res.MaxFlow {
		t.Fatalf("distributed %d, sequential %d", res.MaxFlow, seq)
	}
}

func TestRationalRescalingPreservesEarlierEdges(t *testing.T) {
	// Adding a finer-grained capacity later must rescale earlier edges.
	g := ffmr.NewGraph(3)
	g.SetSource(0)
	g.SetSink(2)
	if err := g.AddEdgeRational(0, 1, 3, 2); err != nil { // 3/2
		t.Fatal(err)
	}
	if err := g.AddEdgeRational(1, 2, 4, 5); err != nil { // 4/5
		t.Fatal(err)
	}
	// Bottleneck is 4/5.
	flow, err := ffmr.ComputeSequential(g, ffmr.AlgoDinic)
	if err != nil {
		t.Fatal(err)
	}
	num, den := g.FlowRational(flow)
	if num != 4 || den != 5 {
		t.Fatalf("flow = %d/%d, want 4/5", num, den)
	}
}

func TestRationalValidation(t *testing.T) {
	g := ffmr.NewGraph(2)
	if err := g.AddEdgeRational(0, 1, 1, 0); err == nil {
		t.Error("zero denominator accepted")
	}
	if err := g.AddEdgeRational(0, 1, -1, 2); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := g.AddArcRational(0, 1, 1, 1<<31); err == nil {
		t.Error("huge denominator accepted")
	}
}

func TestFlowRationalReduction(t *testing.T) {
	g := ffmr.NewGraph(2)
	if err := g.AddEdgeRational(0, 1, 1, 4); err != nil {
		t.Fatal(err)
	}
	num, den := g.FlowRational(2) // 2 units of 1/4 = 1/2
	if num != 1 || den != 2 {
		t.Errorf("reduced flow = %d/%d, want 1/2", num, den)
	}
	num, den = g.FlowRational(0)
	if num != 0 || den != 1 {
		t.Errorf("zero flow = %d/%d, want 0/1", num, den)
	}
}
