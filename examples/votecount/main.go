// Sybil-resilient online content voting via maximum flow, after Tran,
// Min, Li and Subramanian ("Sybil-resilient online content voting", NSDI
// 2009, the SumUp system) — another application the paper's introduction
// cites.
//
// The principle: votes are collected as unit flows from voters to a
// trusted vote collector over the social network's edges. An attacker
// can create unlimited sybil identities, but all of them attach to the
// honest region through a limited number of attack edges, so the max
// flow from the sybil region — and therefore the number of bogus votes
// accepted — is bounded by the attack-edge count regardless of the
// sybil region's size.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ffmr"
)

const (
	honestUsers = 2000
	sybilNodes  = 800
	attackEdges = 7
	honestVotes = 40
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(23))

	// The social graph: honest users form a small-world network; the
	// vote collector is user 0. Vertex n-2 is the "voting super source"
	// on the honest side, n-1 the one on the sybil side.
	n := honestUsers + sybilNodes + 3
	collector := 0
	honestSrc := n - 2
	sybilSrc := n - 1

	g := ffmr.NewGraph(n)
	// Honest region: ring + random chords (Watts-Strogatz-like).
	for v := 0; v < honestUsers; v++ {
		g.AddEdge(v, (v+1)%honestUsers, 1)
		g.AddEdge(v, (v+7)%honestUsers, 1)
		if rng.Intn(4) == 0 {
			if u := rng.Intn(honestUsers); u != v {
				g.AddEdge(v, u, 1)
			}
		}
	}
	// Sybil region: arbitrarily dense (the attacker controls it).
	for v := honestUsers; v < honestUsers+sybilNodes; v++ {
		for l := 0; l < 4; l++ {
			u := honestUsers + rng.Intn(sybilNodes)
			if u != v {
				g.AddEdge(v, u, 1)
			}
		}
	}
	// The vote collector is a well-connected account (SumUp gives the
	// collector high capacity so honest votes are not choked by its own
	// degree; a popular hub models the same thing).
	for i := 0; i < 200; i++ {
		if u := 1 + rng.Intn(honestUsers-1); u != collector {
			g.AddEdge(collector, u, 1)
		}
	}
	// The few attack edges linking the sybil region to honest users.
	for i := 0; i < attackEdges; i++ {
		g.AddEdge(honestUsers+rng.Intn(sybilNodes), rng.Intn(honestUsers), 1)
	}

	countVotes := func(src int, voters []int) int64 {
		// Each voter gets one unit of voting capacity from the super
		// source; the flow that reaches the collector is the vote count.
		for _, v := range voters {
			g.AddArc(src, v, 1)
		}
		g.SetSource(src)
		g.SetSink(collector)
		res, err := ffmr.Compute(g, ffmr.WithVariant(ffmr.FF5), ffmr.WithNodes(4))
		if err != nil {
			log.Fatal(err)
		}
		return res.MaxFlow
	}

	// Honest voters: random honest users cast one vote each.
	voters := make([]int, honestVotes)
	for i := range voters {
		voters[i] = 1 + rng.Intn(honestUsers-1)
	}
	accepted := countVotes(honestSrc, voters)

	// Sybil voters: every sybil identity votes.
	sybilVoters := make([]int, sybilNodes)
	for i := range sybilVoters {
		sybilVoters[i] = honestUsers + i
	}
	bogus := countVotes(sybilSrc, sybilVoters)

	fmt.Printf("social graph: %d honest users, %d sybil identities, %d attack edges\n",
		honestUsers, sybilNodes, attackEdges)
	fmt.Printf("honest votes cast: %d, accepted: %d (%.0f%%)\n",
		honestVotes, accepted, 100*float64(accepted)/float64(honestVotes))
	fmt.Printf("sybil votes cast: %d, accepted: %d (bounded by %d attack edges)\n",
		sybilNodes, bogus, attackEdges)
	if bogus > int64(attackEdges) {
		log.Fatalf("sybil votes (%d) exceeded the attack-edge bound (%d)", bogus, attackEdges)
	}
	if accepted < int64(honestVotes*3/4) {
		log.Fatalf("too few honest votes accepted: %d of %d", accepted, honestVotes)
	}
}
