// Link-spam detection via maximum flow, after Saito, Toyoda, Kitsuregawa
// and Aihara ("A Large-Scale Study of Link Spam Detection by Graph
// Algorithms", AIRWeb 2007) — the first application the paper's abstract
// names.
//
// Spam farms are densely interlinked page clusters that funnel rank into
// a few target pages through a thin layer of boost links. Because the
// farm connects to the honest web through few edges, the minimum cut
// between a known spam seed and a trusted core is small and isolates the
// farm. This example builds a synthetic web graph (honest scale-free
// core + planted farm), runs max-flow from the spam seed to a trusted
// hub, and classifies the source side of the min cut as the farm.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ffmr"
)

const (
	honestPages = 3000
	farmPages   = 120
	boostLinks  = 5 // links from the farm into the honest web
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(11))

	// Honest web: scale-free, as link graphs are. Generated directly with
	// a simplified preferential-attachment process (random attachment to
	// earlier vertices, biased to low IDs, so hubs emerge at the oldest
	// pages).
	n := honestPages + farmPages
	g := ffmr.NewGraph(n)
	for v := 1; v < honestPages; v++ {
		links := 3
		for l := 0; l < links; l++ {
			u := rng.Intn(v)
			if rng.Intn(3) > 0 { // bias toward old pages: hubs emerge
				u = rng.Intn(1 + v/4)
			}
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
	}

	// The farm: densely interlinked pages [honestPages, n).
	for i := 0; i < farmPages; i++ {
		for l := 0; l < 6; l++ {
			a := honestPages + i
			b := honestPages + rng.Intn(farmPages)
			if a != b {
				g.AddEdge(a, b, 1)
			}
		}
	}
	// Thin boost layer from the farm into the honest web.
	for i := 0; i < boostLinks; i++ {
		g.AddEdge(honestPages+rng.Intn(farmPages), rng.Intn(honestPages), 1)
	}

	// Seed: a known spam page; trusted core: the oldest hub (page 0).
	spamSeed := honestPages
	trustedHub := 0
	g.SetSource(spamSeed)
	g.SetSink(trustedHub)

	side, cutCap, err := ffmr.MinCut(g)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ffmr.Compute(g, ffmr.WithVariant(ffmr.FF5), ffmr.WithNodes(4))
	if err != nil {
		log.Fatal(err)
	}
	if res.MaxFlow != cutCap {
		log.Fatalf("FF5 flow %d disagrees with min-cut %d", res.MaxFlow, cutCap)
	}

	var flagged, truePositives int
	for v := 0; v < n; v++ {
		if side[v] {
			flagged++
			if v >= honestPages {
				truePositives++
			}
		}
	}
	fmt.Printf("web graph: %d honest pages + %d farm pages, %d boost links\n",
		honestPages, farmPages, boostLinks)
	fmt.Printf("max flow spam-seed -> trusted hub: %d (%d MapReduce rounds)\n",
		res.MaxFlow, res.Rounds)
	fmt.Printf("pages flagged as farm: %d (%d actual farm pages among them)\n",
		flagged, truePositives)
	fmt.Printf("precision %.1f%%, recall %.1f%%\n",
		100*float64(truePositives)/float64(flagged),
		100*float64(truePositives)/float64(farmPages))
	if truePositives < farmPages*9/10 {
		log.Fatal("spam farm not isolated by the min cut")
	}
}
