// Community identification via maximum flow, after Flake, Lawrence and
// Giles ("Efficient identification of web communities", SIGKDD 2000) —
// one of the applications motivating the paper.
//
// The idea: a community is a vertex set with more edges inside than
// crossing its boundary, so the minimum cut between a seed member and
// the rest of the graph traces the community boundary. This example
// plants two dense communities joined by a sparse bridge, computes the
// max-flow/min-cut between seeds on either side, and checks that the cut
// recovers the planted membership.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ffmr"
)

const (
	communitySize = 150
	innerDegree   = 8 // expected intra-community edges per vertex
	bridges       = 6 // edges crossing between communities
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(7))

	// Plant two communities: vertices [0, communitySize) and
	// [communitySize, 2*communitySize).
	n := 2 * communitySize
	g := ffmr.NewGraph(n)
	addCommunity := func(lo int) {
		for v := lo; v < lo+communitySize; v++ {
			for d := 0; d < innerDegree/2; d++ {
				u := lo + rng.Intn(communitySize)
				if u != v {
					g.AddEdge(v, u, 1)
				}
			}
		}
	}
	addCommunity(0)
	addCommunity(communitySize)
	for i := 0; i < bridges; i++ {
		g.AddEdge(rng.Intn(communitySize), communitySize+rng.Intn(communitySize), 1)
	}

	// Seed vertices: one from each planted community.
	g.SetSource(0)
	g.SetSink(communitySize)

	// The minimum cut separates the communities; its capacity is the
	// number of bridge edges (possibly fewer if duplicates collapsed).
	side, cutCap, err := ffmr.MinCut(g)
	if err != nil {
		log.Fatal(err)
	}

	// Cross-check the flow value with the distributed FF5 algorithm.
	res, err := ffmr.Compute(g, ffmr.WithVariant(ffmr.FF5), ffmr.WithNodes(4))
	if err != nil {
		log.Fatal(err)
	}
	if res.MaxFlow != cutCap {
		log.Fatalf("FF5 flow %d disagrees with min-cut capacity %d", res.MaxFlow, cutCap)
	}

	var correct, communityA int
	for v := 0; v < n; v++ {
		inA := side[v]
		if inA {
			communityA++
		}
		if inA == (v < communitySize) {
			correct++
		}
	}
	fmt.Printf("planted 2 communities of %d vertices with %d bridge edges\n",
		communitySize, bridges)
	fmt.Printf("min cut capacity: %d (= FF5 max flow, %d MapReduce rounds)\n",
		cutCap, res.Rounds)
	fmt.Printf("community recovered around seed 0: %d vertices\n", communityA)
	fmt.Printf("membership accuracy: %.1f%%\n", 100*float64(correct)/float64(n))
	if correct < n*95/100 {
		log.Fatal("community recovery failed — planted structure not found")
	}
}
