// Quickstart: build a small flow network, compute its maximum flow with
// the FF5 MapReduce algorithm on a simulated cluster, and cross-check
// against the sequential Dinic baseline.
package main

import (
	"fmt"
	"log"

	"ffmr"
)

func main() {
	log.SetFlags(0)

	// The classic 6-vertex network from CLRS Figure 26.1 (max flow 23).
	g := ffmr.NewGraph(6)
	g.SetSource(0)
	g.SetSink(5)
	g.AddArc(0, 1, 16)
	g.AddArc(0, 2, 13)
	g.AddArc(1, 2, 10)
	g.AddArc(2, 1, 4)
	g.AddArc(1, 3, 12)
	g.AddArc(3, 2, 9)
	g.AddArc(2, 4, 14)
	g.AddArc(4, 3, 7)
	g.AddArc(3, 5, 20)
	g.AddArc(4, 5, 4)

	res, err := ffmr.Compute(g,
		ffmr.WithVariant(ffmr.FF5),
		ffmr.WithNodes(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FF5 max flow: %d (computed in %d MapReduce rounds)\n",
		res.MaxFlow, res.Rounds)

	seq, err := ffmr.ComputeSequential(g, ffmr.AlgoDinic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dinic agrees: %d\n", seq)

	// A larger, more interesting run: a small-world social graph with a
	// super source/sink workload, the construction the paper evaluates.
	social, err := ffmr.BarabasiAlbertGraph(5000, 4, 42)
	if err != nil {
		log.Fatal(err)
	}
	workload, err := social.AttachSuperSourceSink(8, 8, 43)
	if err != nil {
		log.Fatal(err)
	}
	res, err = ffmr.Compute(workload, ffmr.WithVariant(ffmr.FF5), ffmr.WithNodes(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsocial graph: %d vertices, %d edges\n",
		workload.NumVertices(), workload.NumEdges())
	fmt.Printf("max flow %d in %d rounds; graph grew from %d to %d bytes in the DFS\n",
		res.MaxFlow, res.Rounds, res.GraphBytes, res.MaxGraphBytes)
	for _, rs := range res.RoundStats {
		fmt.Printf("  round %d: %4d augmenting paths accepted, %8d intermediate records\n",
			rs.Round, rs.AcceptedPaths, rs.MapOutRecords)
	}
}
