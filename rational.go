package ffmr

import "fmt"

// Rational capacity support. The paper's experiments use unit
// capacities "for simplicity ... but our algorithm supports rational
// numbers for the edge capacities." Rational capacities reduce to
// integers by clearing denominators; the Graph tracks a common
// denominator and rescales transparently, so Compute runs on exact
// integer arithmetic and results can be read back as rationals.

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// maxDenominator bounds the common denominator so repeated rescaling
// cannot overflow capacities.
const maxDenominator = int64(1) << 30

// AddEdgeRational adds an undirected edge with capacity num/den in both
// directions. Existing capacities are rescaled to the new common
// denominator.
func (g *Graph) AddEdgeRational(u, v int, num, den int64) error {
	scaled, err := g.scale(num, den)
	if err != nil {
		return err
	}
	g.AddEdge(u, v, scaled)
	return nil
}

// AddArcRational adds a directed edge u -> v with capacity num/den.
func (g *Graph) AddArcRational(u, v int, num, den int64) error {
	scaled, err := g.scale(num, den)
	if err != nil {
		return err
	}
	g.AddArc(u, v, scaled)
	return nil
}

// scale converts num/den into integer capacity units at the graph's
// common denominator, enlarging the denominator (and rescaling all
// existing edges) if needed.
func (g *Graph) scale(num, den int64) (int64, error) {
	if den <= 0 {
		return 0, fmt.Errorf("ffmr: capacity denominator must be positive, got %d", den)
	}
	if num < 0 {
		return 0, fmt.Errorf("ffmr: capacity must be non-negative, got %d/%d", num, den)
	}
	if g.den == 0 {
		g.den = 1
	}
	// lcm(g.den, den)
	l := g.den / gcd(g.den, den) * den
	if l > maxDenominator {
		return 0, fmt.Errorf("ffmr: common capacity denominator %d exceeds limit %d", l, maxDenominator)
	}
	if l != g.den {
		factor := l / g.den
		for i := range g.in.Edges {
			g.in.Edges[i].Cap *= factor
		}
		g.den = l
	}
	return num * (g.den / den), nil
}

// CapacityDenominator returns the graph's common capacity denominator:
// all stored integer capacities and all computed flow values are in
// units of 1/CapacityDenominator.
func (g *Graph) CapacityDenominator() int64 {
	if g.den == 0 {
		return 1
	}
	return g.den
}

// FlowRational converts an integer flow value computed on this graph
// into a reduced rational (numerator, denominator).
func (g *Graph) FlowRational(flow int64) (num, den int64) {
	den = g.CapacityDenominator()
	if flow == 0 {
		return 0, 1
	}
	d := gcd(flow, den)
	return flow / d, den / d
}
