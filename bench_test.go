// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section V), one benchmark per artifact, plus
// micro-benchmarks for the performance-sensitive building blocks. Run
// with:
//
//	go test -bench=. -benchmem
//
// Macro-benchmarks execute a full multi-round MapReduce computation per
// iteration at a scaled-down size and report the paper's headline
// quantities (rounds, flow, shuffle bytes) as custom metrics; see
// EXPERIMENTS.md for paper-versus-measured comparisons.
package ffmr_test

import (
	"fmt"
	"net"
	"net/rpc"
	"testing"

	"ffmr"
	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/distmr"
	"ffmr/internal/experiments"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/maxflow"
	"ffmr/internal/rpcutil"
	"ffmr/internal/spill"
)

// benchScale sizes the macro-benchmarks: large enough that the FF1->FF5
// ordering and round behaviour show, small enough for -bench=. to finish
// in minutes.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Chain: []graphgen.FBSpec{
			{Name: "FB1", Vertices: 1_000},
			{Name: "FB2", Vertices: 2_500},
			{Name: "FB3", Vertices: 4_000},
			{Name: "FB4", Vertices: 6_500},
			{Name: "FB5", Vertices: 10_000},
			{Name: "FB6", Vertices: 16_000},
		},
		Attach:       4,
		Seed:         1,
		W:            8,
		MinDegree:    8,
		Nodes:        4,
		SlotsPerNode: 4,
		Realistic:    false,
	}
}

// BenchmarkGraphsTable regenerates the Section V graph table (vertices,
// edges, Size, Max Size per chain member).
func BenchmarkGraphsTable(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.GraphsTable(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.SizeBytes), "FB6-size-bytes")
			b.ReportMetric(float64(last.MaxSizeBytes), "FB6-maxsize-bytes")
		}
	}
}

// BenchmarkFig5MaxFlowValue regenerates Fig. 5: runtime and rounds versus
// max-flow value (w sweep on the largest graph, FF5). The paper's
// headline is rounds staying nearly constant over a 128x flow range.
func BenchmarkFig5MaxFlowValue(b *testing.B) {
	sc := benchScale()
	ws := []int{1, 4, 16, 64}
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig5(sc, ws)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first, last := points[0], points[len(points)-1]
			b.ReportMetric(float64(last.MaxFlow)/float64(first.MaxFlow), "flow-growth-x")
			b.ReportMetric(float64(last.Rounds)-float64(first.Rounds), "rounds-growth")
		}
	}
}

// BenchmarkFig6Variants regenerates Fig. 6: one sub-benchmark per
// algorithm on the FB1-scale graph, so relative per-variant cost (the
// paper's 5.4x FF1->FF5 on FB1) is read directly off the ns/op column,
// and allocation behaviour (the FF4 claim) off allocs/op.
func BenchmarkFig6Variants(b *testing.B) {
	sc := benchScale()
	chain, err := sc.BuildChain()
	if err != nil {
		b.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(chain[0], sc.W, sc.MinDegree, sc.Seed+100)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []core.Variant{core.FF1, core.FF2, core.FF3, core.FF4, core.FF5} {
		b.Run(variant.String(), func(b *testing.B) {
			var rounds, shuffle int64
			for i := 0; i < b.N; i++ {
				cluster := newBenchCluster(sc)
				res, err := core.Run(cluster, in, core.Options{Variant: variant})
				if err != nil {
					b.Fatal(err)
				}
				rounds = int64(res.Rounds)
				shuffle = 0
				for _, rs := range res.RoundStats {
					shuffle += rs.ShuffleBytes
				}
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(shuffle), "shuffle-bytes")
		})
	}
	b.Run("BFS", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			cluster := newBenchCluster(sc)
			res, err := core.RunBFS(cluster, in, 0, "")
			if err != nil {
				b.Fatal(err)
			}
			rounds = int64(res.Rounds)
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkTable1RoundStats regenerates Table I: a full FF5 run on the
// largest chain graph with per-round aug_proc and shuffle statistics.
func BenchmarkTable1RoundStats(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Table1(sc, sc.W)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var apaths, maxq int64
			for _, rs := range res.RoundStats {
				apaths += rs.APaths
				if rs.MaxQueue > maxq {
					maxq = rs.MaxQueue
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(apaths), "a-paths")
			b.ReportMetric(float64(maxq), "max-queue")
		}
	}
}

// BenchmarkFig7ShuffleBytes regenerates Fig. 7: total shuffle bytes per
// round for FF1/FF2/FF3/FF5; the custom metric is the total across
// rounds, whose strict decrease is the figure's claim.
func BenchmarkFig7ShuffleBytes(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		variants, _, err := experiments.Fig7(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, v := range variants {
				var total int64
				for _, bytes := range v.Rounds {
					total += bytes
				}
				b.ReportMetric(float64(total), v.Algo+"-bytes")
			}
		}
	}
}

// BenchmarkFig8Scalability regenerates Fig. 8: FF5 simulated runtime
// versus graph size at several cluster sizes plus the BFS lower bound.
func BenchmarkFig8Scalability(b *testing.B) {
	sc := benchScale()
	sc.Realistic = true
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig8(sc, []int{5, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				if p.Algo == "FF5" && p.Nodes == 20 {
					b.ReportMetric(p.SimTime.Seconds(), fmt.Sprintf("%s-20m-sec", p.Graph))
				}
			}
		}
	}
}

// BenchmarkAblationTechniques quantifies the Section III-B design
// choices (bi-directional search, multiple excess paths).
func BenchmarkAblationTechniques(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationTechniques(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			slugs := []string{"full", "no-bidir", "no-multipath", "neither"}
			for ri, r := range rows {
				if ri < len(slugs) {
					b.ReportMetric(float64(r.Rounds), slugs[ri]+"-rounds")
				}
			}
		}
	}
}

// BenchmarkAblationCombiner reproduces the paper's combiner footnote:
// the custom metric shows the (small) shuffle change a fragment combiner
// buys, and ns/op the CPU it costs.
func BenchmarkAblationCombiner(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationCombiner(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].Shuffle), "shuffle-plain")
			b.ReportMetric(float64(rows[1].Shuffle), "shuffle-combined")
		}
	}
}

// BenchmarkMRvsBSP runs the MapReduce FF5 implementation and the
// Pregel/BSP translation on the same workload (the paper's Section II-B
// conjecture), reporting rounds and data volume side by side.
func BenchmarkMRvsBSP(b *testing.B) {
	sc := benchScale()
	chain, err := sc.BuildChain()
	if err != nil {
		b.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(chain[0], sc.W, sc.MinDegree, sc.Seed+100)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MR-FF5", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := core.Run(newBenchCluster(sc), in, core.Options{Variant: core.FF5})
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("BSP", func(b *testing.B) {
		var steps int
		var bytes int64
		for i := 0; i < b.N; i++ {
			res, err := core.RunBSP(in, core.BSPOptions{Workers: sc.Nodes * sc.SlotsPerNode})
			if err != nil {
				b.Fatal(err)
			}
			steps = res.Supersteps
			bytes = res.MessageBytes
		}
		b.ReportMetric(float64(steps), "supersteps")
		b.ReportMetric(float64(bytes), "message-bytes")
	})
}

func newBenchCluster(sc experiments.Scale) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{Nodes: sc.Nodes, BlockSize: 1 << 20, Replication: 2})
	c := mapreduce.NewCluster(sc.Nodes, sc.SlotsPerNode, fs)
	c.Cost = mapreduce.ZeroCostModel()
	return c
}

// BenchmarkSequentialSolvers compares the classical in-memory algorithms
// of Section II-A on a small-world workload — context for how much the
// MR layer costs versus raw computation.
func BenchmarkSequentialSolvers(b *testing.B) {
	base, err := graphgen.BarabasiAlbert(20000, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 16, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	net, err := maxflow.FromInput(in)
	if err != nil {
		b.Fatal(err)
	}
	for _, solver := range maxflow.Solvers() {
		b.Run(solver.Name, func(b *testing.B) {
			var flow int64
			for i := 0; i < b.N; i++ {
				flow = solver.Run(net.Clone(), int(in.Source), int(in.Sink))
			}
			b.ReportMetric(float64(flow), "flow")
		})
	}
}

// BenchmarkVertexCodec measures the record codec, the per-record cost
// every mapper and reducer pays. The "reuse" variant is the FF4 path.
func BenchmarkVertexCodec(b *testing.B) {
	v := &graph.VertexValue{
		Su: []graph.ExcessPath{{Edges: []graph.PathEdge{
			{ID: 1, From: 0, To: 1, Cap: 1, Fwd: true},
			{ID: 2, From: 1, To: 2, Cap: 1, Fwd: true},
			{ID: 3, From: 2, To: 3, Cap: 1, Fwd: true},
		}}},
		Tu: []graph.ExcessPath{{Edges: []graph.PathEdge{
			{ID: 9, From: 3, To: 4, Cap: 1, Fwd: true},
		}}},
		Eu: []graph.Edge{
			{To: 1, ID: 1, Cap: 1, RevCap: 1, Fwd: true},
			{To: 2, ID: 4, Cap: 1, RevCap: 1, Fwd: true},
			{To: 3, ID: 5, Cap: 1, RevCap: 1, Fwd: false},
			{To: 4, ID: 6, Cap: 1, RevCap: 1, Fwd: true},
		},
	}
	enc := graph.EncodeValue(v)

	b.Run("encode-fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = graph.EncodeValue(v)
		}
	})
	b.Run("encode-reuse", func(b *testing.B) {
		buf := make([]byte, 0, len(enc))
		for i := 0; i < b.N; i++ {
			buf = graph.AppendValue(buf[:0], v)
		}
	})
	b.Run("decode-fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.DecodeValue(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-reuse", func(b *testing.B) {
		var reused graph.VertexValue
		for i := 0; i < b.N; i++ {
			reused.Reset()
			if err := graph.DecodeValueInto(enc, &reused); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAccumulator measures path acceptance, aug_proc's hot loop.
func BenchmarkAccumulator(b *testing.B) {
	paths := make([]graph.ExcessPath, 256)
	for i := range paths {
		for h := 0; h < 8; h++ {
			paths[i].Edges = append(paths[i].Edges, graph.PathEdge{
				ID: graph.EdgeID(i*8 + h), From: graph.VertexID(h),
				To: graph.VertexID(h + 1), Cap: 4, Fwd: true,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc core.Accumulator
		for p := range paths {
			acc.Accept(&paths[p], graph.CapInf)
		}
	}
}

// BenchmarkAugProcRPC measures the end-to-end cost of submitting
// candidate paths to the external accumulator over loopback TCP.
func BenchmarkAugProcRPC(b *testing.B) {
	srv, err := core.NewAugProcServer()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := core.DialAugProc(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	batch := make([]graph.ExcessPath, 16)
	for i := range batch {
		batch[i] = graph.ExcessPath{Edges: []graph.PathEdge{
			{ID: graph.EdgeID(i), From: 0, To: 1, Cap: 1, Fwd: true},
		}}
	}
	srv.BeginRound(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Submit(0, 0, 0, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	srv.EndRound()
}

// BenchmarkFacadeCompute exercises the public API end to end, the cost a
// downstream user sees.
func BenchmarkFacadeCompute(b *testing.B) {
	g, err := ffmr.BarabasiAlbertGraph(2000, 4, 5)
	if err != nil {
		b.Fatal(err)
	}
	workload, err := g.AttachSuperSourceSink(4, 8, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ffmr.Compute(workload, ffmr.WithVariant(ffmr.FF5))
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxFlow == 0 {
			b.Fatal("zero flow")
		}
	}
}

// BenchmarkDistributed compares the simulated engine with the distmr
// backend — three in-process workers on real TCP sockets — on the same
// FF5 computation (baseline: BENCH_dist.json). The delta is the true
// cost of the distributed runtime: RPC task dispatch, the network
// shuffle serving spill segments between workers, heartbeats, and
// winner-only result merging, none of which the simulated engine pays.
func BenchmarkDistributed(b *testing.B) {
	in, err := graphgen.WattsStrogatz(400, 6, 0.1, 61)
	if err != nil {
		b.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 5, 62)

	newCluster := func() *mapreduce.Cluster {
		fs := dfs.New(dfs.Config{Nodes: 4, BlockSize: 64 << 10, Replication: 2})
		c := mapreduce.NewCluster(4, 4, fs)
		c.Cost = mapreduce.ZeroCostModel()
		return c
	}

	run := func(b *testing.B, backend mapreduce.Backend) {
		var flow, rounds int64
		for i := 0; i < b.N; i++ {
			cluster := newCluster()
			cluster.Distributed = backend
			res, err := core.Run(cluster, in, core.Options{Variant: core.FF5})
			if err != nil {
				b.Fatal(err)
			}
			flow, rounds = res.MaxFlow, int64(res.Rounds)
		}
		b.ReportMetric(float64(flow), "flow")
		b.ReportMetric(float64(rounds), "rounds")
	}

	b.Run("simulated", func(b *testing.B) { run(b, nil) })
	b.Run("distributed-3workers", func(b *testing.B) {
		h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: 3})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		run(b, h.Master)
	})
}

// BenchmarkPortfolio measures the solver portfolio off the small-world
// regime: plain FFMR versus the core-reduced and push-relabel
// configurations the auto engine picks on a power-law graph with a
// thick peelable fringe and on a high-diameter grid. Every
// configuration is differential-checked inside experiments.Portfolio
// (all flows per instance must agree). Recorded in
// BENCH_portfolio.json; the headline: prflow beats plain FFMR on wall
// time on the grid, and the core reduction shrinks the shuffled volume
// on the power-law instance.
func BenchmarkPortfolio(b *testing.B) {
	sc := benchScale()
	// One chain entry sizes both instances: a 16,000-vertex power-law
	// graph and a 63x63 lattice (side = sqrt(n)/2).
	sc.Chain = []graphgen.FBSpec{{Name: "PL", Vertices: 16_000}}
	var last []experiments.PortfolioRow
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Portfolio(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		name := r.Graph + "/" + r.Config
		b.ReportMetric(float64(r.Rounds), name+"-rounds")
		b.ReportMetric(float64(r.WallTime.Milliseconds()), name+"-wall-ms")
		b.ReportMetric(float64(r.ShuffleBytes), name+"-shuffle-bytes")
	}
}

// BenchmarkDynamic compares incremental (warm-restart) max-flow against
// cold recomputation over randomized update batches of growing size, on
// the FB1-scale graph under the realistic cost model. The headline
// metrics: warm rounds and warm simulated time stay below cold for small
// batches, converging toward cold as the batch size grows (crossover
// documented in EXPERIMENTS.md, recorded in BENCH_dynamic.json).
func BenchmarkDynamic(b *testing.B) {
	for _, size := range []int{5, 20, 80, 200} {
		size := size
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			sc := benchScale()
			// Warm restarts pay at most one re-augmentation wave, so the
			// advantage needs a graph where a cold run pays several: FB5
			// is the smallest chain member where that holds.
			sc.Chain = sc.Chain[4:5]
			sc.Realistic = true
			var last []experiments.WarmColdRow
			for i := 0; i < b.N; i++ {
				rows, _, err := experiments.WarmVsCold(sc, []int{size}, 2)
				if err != nil {
					b.Fatal(err)
				}
				last = rows
			}
			var warmR, coldR, warmMS, coldMS float64
			for _, r := range last {
				warmR += float64(r.WarmRounds)
				coldR += float64(r.ColdRounds)
				warmMS += float64(r.WarmSim.Milliseconds())
				coldMS += float64(r.ColdSim.Milliseconds())
			}
			n := float64(len(last))
			b.ReportMetric(warmR/n, "warm-rounds")
			b.ReportMetric(coldR/n, "cold-rounds")
			b.ReportMetric(warmMS/n, "warm-sim-ms")
			b.ReportMetric(coldMS/n, "cold-sim-ms")
			b.ReportMetric(coldMS/warmMS, "speedup-x")
		})
	}
}

// BenchmarkWire measures the distributed backend's wire hot path: the
// hand-rolled frame encoders/decoders for task descriptors, results and
// completion-bearing heartbeats (run with -benchmem; the append paths
// into a reused buffer must report 0 allocs/op and 0 B/op), plus one
// end-to-end RPC echo over the rpcutil frame codec to price the full
// envelope including loopback TCP. BENCH_wire.json records the results.
func BenchmarkWire(b *testing.B) {
	segs := func(part, n int) []spill.Segment {
		out := make([]spill.Segment, n)
		for i := range out {
			out[i] = spill.Segment{
				Name: fmt.Sprintf("j9-m%d-a0-p%d-s%d", i, part, i), Partition: part,
				Records: 120, RawBytes: 4096, StoredBytes: 2048, Compressed: true, Node: i % 4,
			}
		}
		return out
	}
	task := &distmr.TaskDescriptor{
		JobSeq: 9, JobName: "bfs round 3", Kind: "ffmr/bfs", Params: make([]byte, 64),
		Phase: distmr.PhaseReduce, Task: 2, Attempt: 1, Assign: 5, Node: 2, Round: 3,
		NumReducers: 4, MemoryBudget: 1 << 30, Compress: true, MergeFanIn: 8,
		Sources: []distmr.MapSource{
			{MapTask: 0, Worker: 1, Addr: "127.0.0.1:7401", Segments: segs(2, 2)},
			{MapTask: 1, Worker: 2, Addr: "127.0.0.1:7402", Segments: segs(2, 2)},
			{MapTask: 2, Worker: 3, Addr: "127.0.0.1:7403", Segments: segs(2, 2)},
		},
	}
	res := &distmr.TaskResult{
		InRecs: 1200, OutRecs: 3400, RawBytes: 1 << 16, MaxFrame: 180, Spills: 1,
		Parts:    [][]spill.Segment{segs(0, 1), segs(1, 1), segs(2, 1), segs(3, 1)},
		DurNanos: 1234567,
	}
	hb := &distmr.Heartbeat{
		Worker: 2, Instance: 7, Seq: 40, Running: 2, StoreObjects: 12, StoreBytes: 1 << 20,
		TasksDone: 33, Prefetched: 9,
		Completions: []distmr.Completion{
			{JobSeq: 9, Phase: distmr.PhaseMap, Task: 1, Assign: 3, Result: distmr.EncodeResult(res)},
			{JobSeq: 9, Phase: distmr.PhaseMap, Task: 2, Assign: 4, Result: distmr.EncodeResult(res)},
		},
	}
	encTask, encHB := distmr.EncodeTask(task), distmr.EncodeHeartbeat(hb)
	encRes := distmr.EncodeResult(res)

	b.Run("task-encode", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, len(encTask))
		for i := 0; i < b.N; i++ {
			buf = distmr.AppendTask(buf[:0], task)
		}
		b.ReportMetric(float64(len(encTask)), "wire-bytes")
	})
	b.Run("task-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := distmr.DecodeTask(encTask); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("result-encode", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, len(encRes))
		for i := 0; i < b.N; i++ {
			buf = distmr.AppendResult(buf[:0], res)
		}
		b.ReportMetric(float64(len(encRes)), "wire-bytes")
	})
	b.Run("heartbeat-encode", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, len(encHB))
		for i := 0; i < b.N; i++ {
			buf = distmr.AppendHeartbeat(buf[:0], hb)
		}
		b.ReportMetric(float64(len(encHB)), "wire-bytes")
	})
	b.Run("heartbeat-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := distmr.DecodeHeartbeat(encHB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rpc-echo", func(b *testing.B) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		srv := rpc.NewServer()
		if err := srv.RegisterName("WireEcho", &wireEchoSvc{}); err != nil {
			b.Fatal(err)
		}
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go srv.ServeCodec(rpcutil.NewServerCodec(conn))
			}
		}()
		c, err := rpcutil.DialRPC(ln.Addr().String(), rpcutil.Policy{})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		args := &distmr.StartTaskArgs{Desc: encTask}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var rep distmr.FetchSegmentReply
			if err := c.Call("WireEcho.Echo", args, &rep); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The same echo over net/rpc's default gob codec: the before/after
	// A/B for the envelope tax the frame codec removed.
	b.Run("rpc-echo-gob", func(b *testing.B) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		srv := rpc.NewServer()
		if err := srv.RegisterName("WireEcho", &wireEchoSvc{}); err != nil {
			b.Fatal(err)
		}
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(conn)
			}
		}()
		c, err := rpc.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		args := &distmr.StartTaskArgs{Desc: encTask}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var rep distmr.FetchSegmentReply
			if err := c.Call("WireEcho.Echo", args, &rep); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// wireEchoSvc echoes a framed task descriptor back as a framed reply,
// for BenchmarkWire's end-to-end envelope measurement.
type wireEchoSvc struct{}

// Echo copies the request payload into the reply.
func (wireEchoSvc) Echo(args *distmr.StartTaskArgs, reply *distmr.FetchSegmentReply) error {
	reply.Data = args.Desc
	return nil
}
