package distmr

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ffmr/internal/trace"
)

func sampleSpanBatch() *SpanBatch {
	return &SpanBatch{
		Seq: 7,
		Spans: []trace.ShippedSpan{
			{
				ID:     3,
				Parent: 0,
				Cat:    "task",
				Name:   "reduce-00004",
				TID:    6,
				Start:  time.Unix(0, 1700000000123456789),
				Dur:    42 * time.Millisecond,
				Remote: trace.Context{Run: 1, Job: 9, Round: 3, Span: 11},
				Attrs: []trace.Attr{
					{Key: "worker", Int: 2},
					{Key: "phase", IsStr: true, Str: "reduce"},
				},
			},
			{
				ID:     4,
				Parent: 3,
				Cat:    "shuffle",
				Name:   "shuffle-fetch",
				TID:    6,
				Start:  time.Unix(0, 1700000000123956789),
				Dur:    500 * time.Microsecond,
				Remote: trace.Context{Run: 1, Job: 9, Round: 3, Span: 11},
				Attrs:  []trace.Attr{{Key: "bytes", Int: 65536}},
			},
		},
	}
}

func TestSpanBatchRoundTrip(t *testing.T) {
	for _, want := range []*SpanBatch{sampleSpanBatch(), {Seq: 1}, {}} {
		enc := EncodeSpanBatch(want)
		got, err := DecodeSpanBatch(enc)
		if err != nil {
			t.Fatalf("DecodeSpanBatch(seq %d): %v", want.Seq, err)
		}
		if re := EncodeSpanBatch(got); string(re) != string(enc) {
			t.Errorf("span batch seq %d does not re-encode canonically", want.Seq)
		}
		if len(want.Spans) > 0 && !reflect.DeepEqual(got, want) {
			t.Errorf("span batch round trip mismatch:\n got  %+v\n want %+v", got, want)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	for _, want := range []*trace.Context{
		{Run: 5, Job: 17, Round: 3, Span: 99},
		{},
		{Run: -1, Job: -2, Round: -3, Span: -4}, // varints are signed
	} {
		enc := AppendContext(nil, want)
		got, err := DecodeContext(enc)
		if err != nil {
			t.Fatalf("DecodeContext(%+v): %v", want, err)
		}
		if *got != *want {
			t.Errorf("context round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestHeartbeatTelemetryRoundTrip pins the telemetry fields added in wire
// version 4: clock samples, span batches and the absolute counter and
// histogram snapshots.
func TestHeartbeatTelemetryRoundTrip(t *testing.T) {
	want := &Heartbeat{
		Worker:       3,
		Instance:     12345,
		Seq:          88,
		Running:      1,
		TasksDone:    17,
		SentUnixNano: 1700000000987654321,
		RTTNanos:     250_000,
		SpanBatches:  []SpanBatch{*sampleSpanBatch(), {Seq: 8}},
		Counters: []MetricSample{
			{Name: "distmr tasks done", Value: 17},
			{Name: "spilled bytes", Value: 1 << 20},
		},
		Hists: []HistSample{
			{Name: HistTaskServiceNS, Count: 4, Sum: 4000, Buckets: []int64{0, 0, 1, 3}},
			{Name: HistShuffleFetchNS, Count: 1, Sum: 9},
		},
	}
	enc := EncodeHeartbeat(want)
	got, err := DecodeHeartbeat(enc)
	if err != nil {
		t.Fatalf("DecodeHeartbeat: %v", err)
	}
	if re := EncodeHeartbeat(got); string(re) != string(enc) {
		t.Error("telemetry heartbeat does not re-encode canonically")
	}
	if got.SentUnixNano != want.SentUnixNano || got.RTTNanos != want.RTTNanos {
		t.Errorf("clock sample: got (%d, %d), want (%d, %d)",
			got.SentUnixNano, got.RTTNanos, want.SentUnixNano, want.RTTNanos)
	}
	if !reflect.DeepEqual(got.SpanBatches[:1], want.SpanBatches[:1]) ||
		got.SpanBatches[1].Seq != 8 {
		t.Errorf("span batches mismatch:\n got  %+v\n want %+v", got.SpanBatches, want.SpanBatches)
	}
	if !reflect.DeepEqual(got.Counters, want.Counters) {
		t.Errorf("counters mismatch: got %+v, want %+v", got.Counters, want.Counters)
	}
	if !reflect.DeepEqual(got.Hists, want.Hists) {
		t.Errorf("hists mismatch: got %+v, want %+v", got.Hists, want.Hists)
	}
}

func TestSpanBatchRejectsCorruptInput(t *testing.T) {
	enc := EncodeSpanBatch(sampleSpanBatch())
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeSpanBatch(enc[:n]); err == nil {
			t.Fatalf("DecodeSpanBatch accepted a %d-byte truncation of %d bytes", n, len(enc))
		}
	}
	if _, err := DecodeSpanBatch(append(append([]byte(nil), enc...), 0)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing byte: got %v, want trailing-bytes error", err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] = wireVersion + 1
	if _, err := DecodeSpanBatch(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: got %v, want version error", err)
	}

	// An oversize count (a span count far beyond the remaining input)
	// must fail the bounds check instead of attempting the allocation.
	oversize := []byte{wireVersion, 1 /* seq */, 0xff, 0xff, 0xff, 0xff, 0x7f /* ~34G spans */}
	if _, err := DecodeSpanBatch(oversize); err == nil {
		t.Error("DecodeSpanBatch accepted an oversize span count")
	}

	ctx := AppendContext(nil, &trace.Context{Run: 1, Job: 2, Round: 3, Span: 4})
	for n := 0; n < len(ctx); n++ {
		if _, err := DecodeContext(ctx[:n]); err == nil {
			t.Fatalf("DecodeContext accepted a %d-byte truncation", n)
		}
	}
	if _, err := DecodeContext(append(append([]byte(nil), ctx...), 9)); err == nil {
		t.Error("DecodeContext accepted trailing bytes")
	}
	badCtx := append([]byte(nil), ctx...)
	badCtx[0] = wireVersion + 1
	if _, err := DecodeContext(badCtx); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("context bad version: got %v, want version error", err)
	}
}

// FuzzDecodeSpanBatch asserts the span-batch decoder never panics and
// that accepted input survives a stable re-encode (the same fixed-point
// property FuzzDecodeTask pins for task descriptors).
func FuzzDecodeSpanBatch(f *testing.F) {
	f.Add(EncodeSpanBatch(sampleSpanBatch()))
	f.Add(EncodeSpanBatch(&SpanBatch{Seq: 1}))
	f.Add([]byte{wireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sb, err := DecodeSpanBatch(data)
		if err != nil {
			return
		}
		enc := EncodeSpanBatch(sb)
		sb2, err := DecodeSpanBatch(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if re := EncodeSpanBatch(sb2); string(re) != string(enc) {
			t.Errorf("re-encode is not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}

// FuzzDecodeContext is the trace-context counterpart.
func FuzzDecodeContext(f *testing.F) {
	f.Add(AppendContext(nil, &trace.Context{Run: 5, Job: 17, Round: 3, Span: 99}))
	f.Add(AppendContext(nil, &trace.Context{}))
	f.Add([]byte{wireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeContext(data)
		if err != nil {
			return
		}
		enc := AppendContext(nil, c)
		c2, err := DecodeContext(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if re := AppendContext(nil, c2); string(re) != string(enc) {
			t.Errorf("re-encode is not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}
