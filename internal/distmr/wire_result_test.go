package distmr

import (
	"reflect"
	"strings"
	"testing"

	"ffmr/internal/spill"
)

// This file covers the wire-v3 payloads that moved off gob: task
// results, completion piggybacks, prefetch descriptors and winner
// manifests — round trips, canonical form, corruption rejection, the
// pooled-buffer aliasing contract, and the steady-state allocation
// budget the wire refactor exists to enforce.

func sampleResult() *TaskResult {
	return &TaskResult{
		InRecs:   100,
		OutRecs:  250,
		RawBytes: 4096,
		MaxFrame: 129,
		Spills:   3,
		Parts: [][]spill.Segment{
			{
				{Name: "j42-m0-a0-p0-s0", Partition: 0, Records: 10, RawBytes: 512, StoredBytes: 300, Compressed: true, Node: 1},
				{Name: "j42-m0-a0-p0-s1", Partition: 0, Records: 4, RawBytes: 128, StoredBytes: 128, Node: 1},
			},
			nil,
			{{Name: "j42-m0-a0-p2-s0", Partition: 2, Records: 6, RawBytes: 256, StoredBytes: 256, Node: 0}},
		},
		OutputData:    []byte("framed reduce output bytes"),
		OutBytes:      26,
		OutRecords:    2,
		Fetch:         896,
		Inter:         384,
		MergePasses:   1,
		MaxMergeFanIn: 3,
		MaxGroup:      77,
		LostMaps:      []int{1, 4},
		LostFrom:      []uint64{9, 12},
		Counters:      map[string]int64{"mapped": 100, "groups": 40, "a-paths": 7},
		DurNanos:      123456789,
	}
}

func TestTaskResultRoundTrip(t *testing.T) {
	cases := map[string]*TaskResult{
		"full":    sampleResult(),
		"failure": {Err: "mapreduce: injected disk failure", DurNanos: 42},
		"zero":    {},
	}
	for name, want := range cases {
		enc := EncodeResult(want)
		got, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("DecodeResult(%s): %v", name, err)
		}
		if re := EncodeResult(got); string(re) != string(enc) {
			t.Errorf("result %q does not re-encode canonically", name)
		}
		if name == "full" && !reflect.DeepEqual(got, want) {
			t.Errorf("result %q round trip mismatch:\n got  %+v\n want %+v", name, got, want)
		}
	}
}

// TestResultCountersCanonicalOrder pins the canonical-form rule: equal
// results encode to identical bytes regardless of map iteration order.
func TestResultCountersCanonicalOrder(t *testing.T) {
	r := &TaskResult{Counters: map[string]int64{"z": 1, "a": 2, "m": 3, "b": 4, "k": 5}}
	first := string(EncodeResult(r))
	for i := 0; i < 20; i++ {
		if got := string(EncodeResult(r)); got != first {
			t.Fatal("counter encoding depends on map iteration order")
		}
	}
}

// TestDecodeResultCopiesOutputData pins the pooled-buffer contract:
// the decoded result must not alias the input slice, because heartbeat
// buffers are returned to a sync.Pool right after decoding.
func TestDecodeResultCopiesOutputData(t *testing.T) {
	enc := EncodeResult(&TaskResult{OutputData: []byte("immutable")})
	r, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xff
	}
	if string(r.OutputData) != "immutable" {
		t.Errorf("OutputData aliases the input buffer: %q", r.OutputData)
	}
}

func TestPrefetchRoundTrip(t *testing.T) {
	want := &PrefetchDescriptor{
		JobSeq: 42,
		Sources: []MapSource{
			{MapTask: 3, Worker: 7, Addr: "127.0.0.1:4001", Segments: []spill.Segment{
				{Name: "j42-m3-a0-p1-s0", Partition: 1, Records: 5, RawBytes: 200, StoredBytes: 150, Compressed: true, Node: 2},
			}},
			{MapTask: 5, Worker: 8, Addr: "127.0.0.1:4002"},
		},
	}
	got, err := DecodePrefetch(EncodePrefetch(want))
	if err != nil {
		t.Fatalf("DecodePrefetch: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("prefetch round trip mismatch:\n got  %+v\n want %+v", got, want)
	}
}

func TestHeartbeatCompletionRoundTrip(t *testing.T) {
	want := &Heartbeat{
		Worker: 9, Instance: 77, Seq: 5, Running: 2,
		StoreObjects: 3, StoreBytes: 1 << 16, TasksDone: 11, Prefetched: 6,
		Completions: []Completion{
			{JobSeq: 42, Phase: PhaseMap, Task: 3, Assign: 4, Result: EncodeResult(sampleResult())},
			{JobSeq: 42, Phase: PhaseReduce, Task: 0, Assign: 9, Result: EncodeResult(&TaskResult{Err: "boom"})},
		},
	}
	got, err := DecodeHeartbeat(EncodeHeartbeat(want))
	if err != nil {
		t.Fatalf("DecodeHeartbeat: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("heartbeat+completions round trip mismatch:\n got  %+v\n want %+v", got, want)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	want := &taskManifest{Phase: PhaseReduce, Task: 12, Attempt: 2, Result: *sampleResult()}
	got, err := decodeManifest(encodeManifest(want))
	if err != nil {
		t.Fatalf("decodeManifest: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("manifest round trip mismatch:\n got  %+v\n want %+v", got, want)
	}
}

// TestResultAndPrefetchRejectCorruptInput mirrors the task/heartbeat
// corruption coverage for the v3 payloads.
func TestResultAndPrefetchRejectCorruptInput(t *testing.T) {
	res := EncodeResult(sampleResult())
	pre := EncodePrefetch(&PrefetchDescriptor{JobSeq: 1, Sources: []MapSource{{MapTask: 1, Worker: 2, Addr: "a"}}})
	man := encodeManifest(&taskManifest{Phase: PhaseMap, Task: 1, Attempt: 1, Result: TaskResult{InRecs: 5}})

	for name, c := range map[string]struct {
		enc    []byte
		decode func([]byte) error
	}{
		"result":   {res, func(b []byte) error { _, err := DecodeResult(b); return err }},
		"prefetch": {pre, func(b []byte) error { _, err := DecodePrefetch(b); return err }},
		"manifest": {man, func(b []byte) error { _, err := decodeManifest(b); return err }},
	} {
		for n := 0; n < len(c.enc); n++ {
			if err := c.decode(c.enc[:n]); err == nil {
				t.Fatalf("%s: accepted a %d-byte truncation of %d bytes", name, n, len(c.enc))
			}
		}
		if err := c.decode(append(append([]byte(nil), c.enc...), 0)); err == nil ||
			!strings.Contains(err.Error(), "trailing") {
			t.Errorf("%s trailing byte: got %v, want trailing-bytes error", name, err)
		}
		bad := append([]byte(nil), c.enc...)
		bad[0] = wireVersion + 1
		if err := c.decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("%s bad version: got %v, want version error", name, err)
		}
	}
}

// FuzzDecodeResult applies the fixed-point property to task results.
func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(sampleResult()))
	f.Add(EncodeResult(&TaskResult{}))
	f.Add([]byte{wireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			return
		}
		enc := EncodeResult(r)
		r2, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if re := EncodeResult(r2); string(re) != string(enc) {
			t.Errorf("re-encode is not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}

// FuzzDecodePrefetch applies the fixed-point property to prefetch
// descriptors.
func FuzzDecodePrefetch(f *testing.F) {
	f.Add(EncodePrefetch(&PrefetchDescriptor{JobSeq: 42, Sources: []MapSource{{MapTask: 1, Worker: 2, Addr: "127.0.0.1:4001"}}}))
	f.Add(EncodePrefetch(&PrefetchDescriptor{}))
	f.Add([]byte{wireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePrefetch(data)
		if err != nil {
			return
		}
		enc := EncodePrefetch(p)
		p2, err := DecodePrefetch(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if re := EncodePrefetch(p2); string(re) != string(enc) {
			t.Errorf("re-encode is not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}

// TestWireEncodeSteadyStateAllocs is the allocation-regression gate for
// the wire hot path: appending a task descriptor, a result, or a
// heartbeat with pre-encoded completions into a buffer with capacity
// must allocate nothing. (Counter maps are the one exception — sorting
// keys for canonical form allocates once per result, paid per task, not
// per record — so the gated result here carries none.)
func TestWireEncodeSteadyStateAllocs(t *testing.T) {
	task := sampleTask()
	res := sampleResult()
	res.Counters = nil
	hb := &Heartbeat{
		Worker: 1, Instance: 2, Seq: 3, Running: 1, TasksDone: 4, Prefetched: 5,
		Completions: []Completion{{JobSeq: 42, Phase: PhaseMap, Task: 1, Assign: 2, Result: EncodeResult(res)}},
	}
	buf := make([]byte, 0, 1<<16)
	for name, encode := range map[string]func(){
		"AppendTask":      func() { buf = AppendTask(buf[:0], task) },
		"AppendResult":    func() { buf = AppendResult(buf[:0], res) },
		"AppendHeartbeat": func() { buf = AppendHeartbeat(buf[:0], hb) },
	} {
		if allocs := testing.AllocsPerRun(200, encode); allocs > 0 {
			t.Errorf("%s: %.1f allocs/op on the steady-state path, want 0", name, allocs)
		}
	}
}
