package distmr

import (
	"fmt"
	"log/slog"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"ffmr/internal/dfs"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/rpcutil"
	"ffmr/internal/trace"
)

// Metric names the master publishes on the cluster tracer's registry.
const (
	// GaugeWorkersAlive tracks the live worker count.
	GaugeWorkersAlive = "distmr workers alive"
	// CounterWorkerDeaths counts workers declared dead (crash, transport
	// failure, heartbeat staleness or lease expiry).
	CounterWorkerDeaths = "distmr worker deaths"
	// CounterReassigns counts task reassignments after a worker death.
	CounterReassigns = "distmr reassignments"
	// CounterBackups counts speculative backup attempts launched.
	CounterBackups = "distmr speculative backups"
	// CounterLostMapRecoveries counts map tasks re-executed because their
	// outputs became unreachable.
	CounterLostMapRecoveries = "distmr lost map recoveries"
	// GaugeWorkersDraining tracks workers currently draining.
	GaugeWorkersDraining = "distmr workers draining"
	// CounterDrains counts drains completed (worker deregistered after
	// hand-off); CounterHandoffSegments counts spill segments handed off
	// through DFS so completed map tasks were not re-executed.
	CounterDrains          = "distmr drains completed"
	CounterHandoffSegments = "distmr handoff segments"
	// CounterRestoredTasks counts task winners rehydrated from
	// DFS-persisted job state after a master restart.
	CounterRestoredTasks = "distmr restored tasks"
	// CounterPrefetchPushes counts shuffle-prefetch hints pushed to
	// workers as map winners complete (the pipelined shuffle).
	CounterPrefetchPushes = "distmr prefetch pushes"
	// CounterCompletionBatches counts heartbeats that carried at least
	// one task completion; comparing it against total completions shows
	// how well the batching amortizes the per-completion RPC tax.
	CounterCompletionBatches = "distmr completion batches"

	// Latency histogram names (nanoseconds, DESIGN.md §14). The worker-
	// side ones are recorded on each worker's private registry and merged
	// into the cluster registry — under the same names — as absolute
	// snapshots shipped on heartbeats; the master-side ones are recorded
	// directly.
	//
	// HistTaskServiceNS is worker task service time (receipt to result);
	// HistShuffleFetchNS is one shuffle segment fetch (prefetch or reduce
	// path); HistHeartbeatRTTNS is the worker-measured heartbeat round
	// trip; HistStartTaskNS is the master-measured Worker.StartTask round
	// trip; HistQueueWaitNS is scheduler queue wait (enqueue to launch).
	HistTaskServiceNS  = "distmr task service ns"
	HistShuffleFetchNS = "distmr shuffle fetch ns"
	HistHeartbeatRTTNS = "distmr heartbeat rtt ns"
	HistStartTaskNS    = "distmr rpc start task ns"
	HistQueueWaitNS    = "distmr queue wait ns"
)

// Config parameterizes a Master. The zero value gets usable defaults.
type Config struct {
	// Addr is the listen address (default 127.0.0.1:0).
	Addr string
	// HeartbeatInterval is the cadence workers are told to beat at
	// (default 100ms); HeartbeatGrace is how many intervals of silence
	// mark a worker dead (default 30).
	HeartbeatInterval time.Duration
	HeartbeatGrace    int
	// LeaseTimeout bounds one task attempt's execution; an expired lease
	// marks the worker dead and reassigns the task (default 2m).
	LeaseTimeout time.Duration
	// SlotsPerWorker caps concurrent tasks per worker (default: the
	// cluster's SlotsPerNode).
	SlotsPerWorker int
	// SpeculativeFraction and SpeculativeFactor gate backup attempts: a
	// backup launches when at least Fraction of the phase's tasks are
	// done and a task has run longer than Factor times the median
	// completed duration (defaults 0.75 and 2.0).
	SpeculativeFraction float64
	SpeculativeFactor   float64
	// MaxAssigns caps how many times one task may be (re)assigned across
	// worker deaths before the job fails (default 10). Body failures are
	// capped separately by Faults.MaxAttempts, matching the simulated
	// engine.
	MaxAssigns int
	// WorkerWait is how long a job waits for a live worker before
	// failing (default 30s).
	WorkerWait time.Duration
	// DeadRetention is how long a dead or drained worker's registry entry
	// survives for /status and the dashboard before the janitor expires
	// it (default 10 heartbeat intervals). Without expiry the snapshot
	// would list dead workers until job end.
	DeadRetention time.Duration
	// DisablePrefetch turns off the pipelined shuffle: no prefetch hints
	// are pushed as map winners complete, and reduces fetch all their
	// segments on dispatch. Counters are identical either way (prefetch
	// only changes wall-clock overlap, DESIGN.md §13); the knob exists
	// for A/B measurement and as an escape hatch.
	DisablePrefetch bool
	// PersistState makes every job persist its task winners (manifests
	// plus map output segments) to the cluster DFS as they complete, and
	// rehydrate them at job start. A restarted master pointed at the same
	// DFS then resumes a job without re-executing completed tasks, and an
	// epoch counter keeps (task, exec) submission keys from colliding
	// across master generations. Off by default: it costs one extra copy
	// of each map output over the wire.
	PersistState bool
	// Tracer records master-side spans/gauges until a job installs the
	// cluster's tracer.
	Tracer *trace.Tracer
	// Obsv configures the master's observability surface: structured
	// logging, the admin HTTP server (/metrics, /healthz, /status,
	// /debug/pprof) and the flight recorder. The zero value disables all
	// of it at no cost.
	Obsv obsv.Options
}

func (c *Config) applyDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.HeartbeatGrace <= 0 {
		c.HeartbeatGrace = 30
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Minute
	}
	if c.SpeculativeFraction <= 0 {
		c.SpeculativeFraction = 0.75
	}
	if c.SpeculativeFactor <= 1 {
		c.SpeculativeFactor = 2.0
	}
	if c.MaxAssigns <= 0 {
		c.MaxAssigns = 10
	}
	if c.WorkerWait <= 0 {
		c.WorkerWait = 30 * time.Second
	}
	if c.DeadRetention <= 0 {
		c.DeadRetention = 10 * c.HeartbeatInterval
	}
}

// workerState is the master-side membership state machine:
//
//	joining → live → draining → drained → (expired)
//	             ↘︎      ↘︎ dead → (expired)
//
// "joining" is implicit (Register dials the worker back before the
// handle exists, so a registered worker is always reachable). Only live
// workers are schedulable; a draining worker finishes its running
// attempts and serves fetches but receives no new leases. Dead and
// drained handles linger for DeadRetention so /status and the dashboard
// can show the transition, then the janitor expires them.
type workerState uint8

const (
	stateLive workerState = iota
	stateDraining
	stateDead
	stateDrained
)

// String names the state as /status reports it.
func (s workerState) String() string {
	switch s {
	case stateLive:
		return "live"
	case stateDraining:
		return "draining"
	case stateDead:
		return "dead"
	default:
		return "drained"
	}
}

// workerHandle is the master's view of one registered worker. running is
// the master's own in-flight dispatch count (slot accounting); the hb*
// fields mirror the worker's last self-reported heartbeat and feed the
// /status view.
type workerHandle struct {
	id       uint64
	addr     string
	client   *rpc.Client
	lastBeat time.Time
	running  int
	state    workerState
	deadAt   time.Time // when the handle left live/draining (for expiry)

	hbRunning    int64
	hbTasksDone  int64
	hbStoreBytes int64
	hbPrefetched int64

	// Cached per-worker gauges, interned once per registry instead of a
	// fmt.Sprintf + registry lookup on every beat (the beat is the
	// steady-state hot path). gaugeReg remembers which registry the
	// cache belongs to; a job installing the cluster's registry
	// invalidates it. Guarded by the master's mu.
	gaugeReg *trace.Registry
	gRunning *trace.Gauge
	gStoreB  *trace.Gauge

	// Telemetry-shipping state (§14). Worker beats are synchronous (one
	// in flight per worker), but telMu still guards this block: a
	// re-registration hands the maps to the successor handle while a last
	// stale beat may be in the handler. lastSpanSeq dedups at-least-once
	// span batches; lastCounters/lastHists hold the worker's previous
	// absolute snapshots so only diffs merge into the registry; bestRTT
	// and clockOffset estimate the worker's wall-clock skew from the
	// lowest-RTT beat sample (offset = recv - (sent + rtt/2)).
	telMu        sync.Mutex
	lastSpanSeq  uint64
	lastCounters map[string]int64
	lastHists    map[string]trace.HistogramValue
	bestRTT      int64
	clockOffset  int64
}

// alive reports whether the worker still participates in the cluster
// (serving fetches and finishing leases); draining workers count.
func (w *workerHandle) alive() bool {
	return w.state == stateLive || w.state == stateDraining
}

// Master schedules jobs onto registered workers. It implements
// mapreduce.Backend, so assigning it to Cluster.Distributed routes every
// Cluster.Run through it.
type Master struct {
	cfg    Config
	ln     net.Listener
	log    *slog.Logger
	admin  *obsv.Admin
	flight *obsv.FlightRecorder
	// instance is this master instance's nonce, handed to workers at
	// registration and echoed in every heartbeat. Worker ids restart at 1
	// per instance, so after a master restart a stale worker's old id can
	// equal a re-registered worker's new one; the nonce check keeps the
	// stale worker on the Unknown path instead of refreshing the wrong
	// record.
	instance uint64

	mu        sync.Mutex
	workers   map[uint64]*workerHandle
	nextID    uint64
	jobSeq    uint64
	conns     map[net.Conn]struct{}
	fs        *dfs.FS
	reg       *trace.Registry
	shut      bool
	jobActive bool // a jobRun owns drain completion while true

	// statusMu guards the snapshot the running job publishes for /status.
	// It is separate from mu: the scheduler goroutine owns the job state
	// and only ever hands immutable snapshots across this lock, so the
	// admin server never reads scheduler internals.
	statusMu  sync.Mutex
	jobStatus *obsv.JobStatus
	jobIdle   float64 // running job's live idle-fraction estimate

	shutOnce sync.Once
	shutCh   chan struct{}

	// sinkMu guards the completion sink: the jobRun currently entitled to
	// task completions arriving on heartbeats. Setting the sink after the
	// job's pre-dispatch state (assignBase, task slices) is in place
	// creates the happens-before edge heartbeat handlers rely on.
	sinkMu sync.Mutex
	sink   *jobRun

	runMu sync.Mutex // serializes RunJob (the driver runs rounds in order)
}

// setSink installs (or, with nil, retires) the running job as the
// destination for heartbeat-carried task completions.
func (m *Master) setSink(jr *jobRun) {
	m.sinkMu.Lock()
	m.sink = jr
	m.sinkMu.Unlock()
}

func (m *Master) getSink() *jobRun {
	m.sinkMu.Lock()
	defer m.sinkMu.Unlock()
	return m.sink
}

// NewMaster starts a master listening for worker registrations.
func NewMaster(cfg Config) (*Master, error) {
	cfg.applyDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("distmr: master listen: %w", err)
	}
	var flight *obsv.FlightRecorder
	if cfg.Obsv.FlightDir != "" {
		flight = obsv.NewFlightRecorder("master", cfg.Obsv.FlightSize)
	}
	var next slog.Handler
	if cfg.Obsv.Logger != nil {
		next = cfg.Obsv.Logger.Handler()
	}
	// The instance nonce distinguishes master generations: heartbeats
	// carrying another generation's nonce are answered Unknown (so workers
	// re-register), and seeding jobSeq from it keeps job sequence numbers
	// — which key the workers' per-job code caches and prefix every spill
	// segment name — globally unique across generations. Without that, a
	// restarted master's counter would restart at 1 and its jobs would
	// collide with segments and cached code left behind by jobs of the
	// dead generation that were never cleaned up.
	nonce := uint64(time.Now().UnixNano())
	m := &Master{
		cfg:      cfg,
		ln:       ln,
		log:      slog.New(flight.Handler(next)).With("role", "master"),
		flight:   flight,
		instance: nonce,
		jobSeq:   nonce,
		workers:  make(map[uint64]*workerHandle),
		conns:    make(map[net.Conn]struct{}),
		reg:      cfg.Tracer.Registry(),
		shutCh:   make(chan struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", &masterService{m: m}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("distmr: master register service: %w", err)
	}
	if cfg.Obsv.AdminAddr != "" {
		admin, err := obsv.StartAdmin(obsv.AdminConfig{
			Addr:    cfg.Obsv.AdminAddr,
			Metrics: m.registry,
			Status:  m.Status,
			Flight:  flight,
			Logger:  m.log,
		})
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("distmr: master admin server: %w", err)
		}
		m.admin = admin
		m.log.Info("admin server listening", "addr", admin.Addr())
	}
	m.log.Info("master listening", "addr", ln.Addr().String())
	go m.accept(srv)
	go m.janitor()
	return m, nil
}

// janitor is the master's background membership sweep: it marks silent
// workers dead, completes idle drains (a running job completes its own,
// because hand-off needs the job's winner map), and expires dead or
// drained registry entries after DeadRetention so /status stops listing
// them. It runs for the master's whole life, not just during jobs.
func (m *Master) janitor() {
	t := time.NewTicker(m.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-m.shutCh:
			return
		case <-t.C:
			m.checkHeartbeats()
			m.completeIdleDrains()
			m.expireDead()
		}
	}
}

// AdminAddr returns the admin HTTP server's address, or "" when no admin
// server was configured.
func (m *Master) AdminAddr() string {
	if m.admin == nil {
		return ""
	}
	return m.admin.Addr()
}

// Addr returns the master's listen address for workers to register at.
func (m *Master) Addr() string { return m.ln.Addr().String() }

func (m *Master) accept(srv *rpc.Server) {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.shut {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		go func() {
			srv.ServeCodec(rpcutil.NewServerCodec(conn))
			m.mu.Lock()
			delete(m.conns, conn)
			m.mu.Unlock()
			conn.Close()
		}()
	}
}

// Shutdown stops the master: workers are told to exit (directly and via
// their next heartbeat), all connections close, and any running job
// fails promptly.
func (m *Master) Shutdown() {
	m.stopMaster(true)
}

// Crash kills the master the way a machine failure would: the listener,
// every connection and every worker client close, but no worker is told
// to exit and no goodbye travels. Workers keep heartbeating into the
// void until their miss budget runs out (or a new master at the same
// address answers Unknown and they re-register). The chaos supervisor
// uses this to exercise master-restart recovery against DFS-persisted
// job state.
func (m *Master) Crash() {
	m.stopMaster(false)
}

// stopMaster is the single teardown path; graceful additionally notifies
// workers.
func (m *Master) stopMaster(graceful bool) {
	m.shutOnce.Do(func() {
		reason := "shutdown"
		if !graceful {
			reason = "crash"
			m.log.Error("master crashing (injected)")
		} else {
			m.log.Info("master shutting down")
		}
		m.admin.Close()
		if m.flight != nil && m.cfg.Obsv.FlightDir != "" {
			if _, err := m.flight.Dump(m.cfg.Obsv.FlightDir, reason); err != nil {
				m.log.Warn("flight dump failed", "err", err)
			}
		}
		m.mu.Lock()
		m.shut = true
		workers := make([]*workerHandle, 0, len(m.workers))
		for _, w := range m.workers {
			if w.alive() {
				workers = append(workers, w)
			}
		}
		conns := make([]net.Conn, 0, len(m.conns))
		for c := range m.conns {
			conns = append(conns, c)
		}
		m.mu.Unlock()
		close(m.shutCh)
		for _, w := range workers {
			if graceful {
				// Best-effort: a dead worker's call just errors out.
				call := w.client.Go("Worker.Shutdown", &ShutdownArgs{}, &ShutdownReply{}, make(chan *rpc.Call, 1))
				select {
				case <-call.Done:
				case <-time.After(500 * time.Millisecond):
				}
			}
			w.client.Close()
		}
		m.ln.Close()
		for _, c := range conns {
			c.Close()
		}
	})
}

// registry returns the current trace registry (the cluster's once a job
// has run, the config's before). All registry methods are nil-safe.
func (m *Master) registry() *trace.Registry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg
}

// setJobStatus publishes (or, with nil, retires) the running job's status
// snapshot for the admin server, along with the scheduler's live idle-
// fraction estimate. Snapshots are immutable once handed over.
func (m *Master) setJobStatus(js *obsv.JobStatus, idle float64) {
	m.statusMu.Lock()
	m.jobStatus = js
	m.jobIdle = idle
	m.statusMu.Unlock()
}

// Status assembles the cluster view served at /status: every registered
// worker (heartbeat-reported load, liveness) plus the running job's
// latest scheduler snapshot.
func (m *Master) Status() *obsv.ClusterStatus {
	st := &obsv.ClusterStatus{Role: "master", Addr: m.Addr()}
	m.mu.Lock()
	ids := make([]uint64, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	hints := &obsv.ScalingHints{}
	var tasksDone int64
	for _, id := range ids {
		w := m.workers[id]
		switch w.state {
		case stateLive:
			st.WorkersAlive++
			hints.WorkersLive++
		case stateDraining:
			st.WorkersAlive++
			hints.WorkersDraining++
		}
		tasksDone += w.hbTasksDone
		st.Workers = append(st.Workers, obsv.WorkerStatus{
			ID:         w.id,
			Addr:       w.addr,
			Running:    w.hbRunning,
			TasksDone:  w.hbTasksDone,
			Prefetched: w.hbPrefetched,
			StoreBytes: w.hbStoreBytes,
			LastBeatMS: time.Since(w.lastBeat).Milliseconds(),
			Dead:       w.state == stateDead || w.state == stateDrained,
			State:      w.state.String(),
		})
	}
	reg := m.reg
	m.mu.Unlock()
	m.statusMu.Lock()
	st.Job = m.jobStatus
	hints.IdleFraction = m.jobIdle
	m.statusMu.Unlock()
	if st.Job != nil {
		hints.QueueDepth = st.Job.Queued
		hints.InFlight = st.Job.InFlight
	}
	// p95 scheduler queue wait: the under-provisioning half of the signal
	// (a deep queue AND growing waits mean the cluster wants workers).
	if hv, ok := reg.HistogramSnapshot()[HistQueueWaitNS]; ok && hv.Count > 0 {
		hints.QueueWaitP95NS = hv.Quantile(0.95)
	}
	// Straggler ratio: speculative backups launched per completed task, a
	// scale-up signal (stragglers mean the fleet is unevenly loaded). The
	// denominator is heartbeat-reported, so it slightly lags the registry.
	if backups := reg.Counter(CounterBackups).Value(); backups > 0 && tasksDone > 0 {
		hints.StragglerRatio = float64(backups) / float64(tasksDone)
	}
	st.Hints = hints
	return st
}

// LiveWorkers returns the number of registered, schedulable workers
// (draining workers are excluded: they accept no new leases).
func (m *Master) LiveWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.workers {
		if w.state == stateLive {
			n++
		}
	}
	return n
}

// WaitForWorkers blocks until at least n workers are live or the timeout
// elapses.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if m.LiveWorkers() >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("distmr: %d workers did not register within %v (have %d)", n, timeout, m.LiveWorkers())
		}
		select {
		case <-m.shutCh:
			return fmt.Errorf("distmr: master shut down")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// markDead declares a worker dead: its client closes (unblocking every
// in-flight lease with a transport error) and it receives no more work.
// A draining worker can die too — its hand-off then never happens and
// its completed maps are recovered by re-execution like any crash.
func (m *Master) markDead(w *workerHandle) {
	m.mu.Lock()
	already := w.state == stateDead || w.state == stateDrained
	if !already {
		w.state = stateDead
		w.deadAt = time.Now()
	}
	m.mu.Unlock()
	if already {
		return
	}
	w.client.Close()
	reg := m.registry()
	reg.Counter(CounterWorkerDeaths).Add(1)
	reg.Gauge(GaugeWorkersAlive).Set(int64(m.LiveWorkers()))
	m.log.Warn("worker declared dead", "worker", w.id, "addr", w.addr,
		"alive", m.LiveWorkers())
}

// workerAlive reports, under the registry lock, whether w still
// participates in the cluster. The scheduler's lease scan uses it so the
// read of w.state is properly synchronized with state transitions.
func (m *Master) workerAlive(w *workerHandle) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return w.alive()
}

// checkHeartbeats marks workers silent for longer than the grace period
// dead.
func (m *Master) checkHeartbeats() {
	limit := time.Duration(m.cfg.HeartbeatGrace) * m.cfg.HeartbeatInterval
	var stale []*workerHandle
	m.mu.Lock()
	for _, w := range m.workers {
		if w.alive() && time.Since(w.lastBeat) > limit {
			stale = append(stale, w)
		}
	}
	m.mu.Unlock()
	for _, w := range stale {
		m.markDead(w)
	}
}

// retireWorker moves a live worker to draining. The actual drain
// completion — hand-off, then deregistration — happens in the running
// job's checkDrains (or the janitor when no job is running).
func (m *Master) retireWorker(id uint64, reason string) error {
	m.mu.Lock()
	w := m.workers[id]
	if w == nil {
		m.mu.Unlock()
		return fmt.Errorf("distmr: retire: unknown worker %d", id)
	}
	if w.state != stateLive {
		st := w.state
		m.mu.Unlock()
		return fmt.Errorf("distmr: retire: worker %d is %s", id, st)
	}
	w.state = stateDraining
	m.mu.Unlock()
	reg := m.registry()
	reg.Gauge(GaugeWorkersAlive).Set(int64(m.LiveWorkers()))
	reg.Gauge(GaugeWorkersDraining).Set(int64(len(m.drainingWorkers())))
	m.log.Info("worker draining", "worker", id, "reason", reason,
		"alive", m.LiveWorkers())
	return nil
}

// drainingWorkers snapshots the handles currently draining.
func (m *Master) drainingWorkers() []*workerHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ws []*workerHandle
	for _, w := range m.workers {
		if w.state == stateDraining {
			ws = append(ws, w)
		}
	}
	return ws
}

// workerRunning returns the master's in-flight dispatch count for w.
func (m *Master) workerRunning(w *workerHandle) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return w.running
}

// completeDrain deregisters a drained worker: its next heartbeat is
// answered with Retired, telling it to exit cleanly. Only called once
// the worker has no running leases and its winning map output (if a job
// is running) has been handed off to DFS.
func (m *Master) completeDrain(w *workerHandle) {
	m.mu.Lock()
	if w.state != stateDraining {
		m.mu.Unlock()
		return
	}
	w.state = stateDrained
	w.deadAt = time.Now()
	m.mu.Unlock()
	w.client.Close()
	reg := m.registry()
	reg.Counter(CounterDrains).Add(1)
	reg.Gauge(GaugeWorkersDraining).Set(int64(len(m.drainingWorkers())))
	m.log.Info("worker drain complete", "worker", w.id, "addr", w.addr)
}

// completeIdleDrains finishes drains while no job is running: with no
// scheduler state there is nothing to hand off, so a lease-free draining
// worker deregisters immediately.
func (m *Master) completeIdleDrains() {
	m.mu.Lock()
	active := m.jobActive
	m.mu.Unlock()
	if active {
		return
	}
	for _, w := range m.drainingWorkers() {
		if m.workerRunning(w) == 0 {
			m.completeDrain(w)
		}
	}
}

// expireDead removes dead and drained workers from the registry after
// DeadRetention, so /status and the dashboard stop listing them. The
// scheduler holds its own handle pointers, so expiry never invalidates
// an in-flight lease's bookkeeping.
func (m *Master) expireDead() {
	m.mu.Lock()
	for id, w := range m.workers {
		if (w.state == stateDead || w.state == stateDrained) &&
			time.Since(w.deadAt) > m.cfg.DeadRetention {
			delete(m.workers, id)
			m.log.Debug("expired worker registry entry", "worker", id, "state", w.state.String())
		}
	}
	m.mu.Unlock()
}

// pickWorker returns the live worker with the most free slots, or nil.
// Draining, dead and drained workers are never picked.
func (m *Master) pickWorker(slots int, exclude *workerHandle) *workerHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *workerHandle
	ids := make([]uint64, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := m.workers[id]
		if w.state != stateLive || w == exclude || w.running >= slots {
			continue
		}
		if best == nil || w.running < best.running {
			best = w
		}
	}
	if best != nil {
		best.running++
	}
	return best
}

func (m *Master) release(w *workerHandle) {
	m.mu.Lock()
	w.running--
	m.mu.Unlock()
}

// pickWorkerPreferring is pickWorker with a placement hint: among the
// least-loaded eligible workers, the preferred one wins the tie, so
// reduce tasks land where their prefetched shuffle segments already
// sit. The hint never overrides load balance — a strictly less-loaded
// worker (a late joiner, say) still gets the task, which keeps elastic
// membership behavior identical with prefetch on or off.
func (m *Master) pickWorkerPreferring(slots int, exclude, prefer *workerHandle) *workerHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *workerHandle
	ids := make([]uint64, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := m.workers[id]
		if w.state != stateLive || w == exclude || w.running >= slots {
			continue
		}
		if best == nil || w.running < best.running {
			best = w
		}
	}
	if prefer != nil && prefer != exclude && prefer.state == stateLive &&
		prefer.running < slots && best != nil && prefer.running <= best.running {
		best = prefer
	}
	if best != nil {
		best.running++
	}
	return best
}

// nthLiveWorker deterministically maps an index onto the live worker set
// (sorted by id, wrapped modulo its size). The prefetch planner uses it
// to predict reduce placement: the mapping is stable while membership
// holds, and a wrong guess only costs the prefetched bytes.
func (m *Master) nthLiveWorker(n int) *workerHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]uint64, 0, len(m.workers))
	for id, w := range m.workers {
		if w.state == stateLive {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return m.workers[ids[n%len(ids)]]
}

// masterService is the RPC wrapper exposing the worker-facing API.
type masterService struct{ m *Master }

// Register adds a worker: the master dials it back for task dispatch
// before acknowledging, so a registered worker is always reachable. A
// worker joining mid-job becomes eligible for pending leases on the
// scheduler's next dispatch pass — no job-level coordination needed.
func (s *masterService) Register(args *RegisterArgs, reply *RegisterReply) error {
	m := s.m
	join, err := DecodeJoin(args.Data)
	if err != nil {
		return err
	}
	if join.Addr == "" {
		return fmt.Errorf("distmr: register without an address")
	}
	client, err := rpcutil.DialRPC(join.Addr, rpcutil.Policy{})
	if err != nil {
		return fmt.Errorf("distmr: dial back worker at %s: %w", join.Addr, err)
	}
	m.mu.Lock()
	if m.shut {
		m.mu.Unlock()
		client.Close()
		return fmt.Errorf("distmr: master is shutting down")
	}
	m.nextID++
	w := &workerHandle{id: m.nextID, addr: join.Addr, client: client, lastBeat: time.Now()}
	if old := m.workers[join.PrevWorker]; join.PrevWorker != 0 && old != nil {
		// The same worker PROCESS re-registering under a fresh id (the
		// master expired its old record): its absolute telemetry snapshots
		// continue from where they were, so the new handle inherits the old
		// one's last-seen state. Without the carry-over the first beat's
		// snapshot would re-merge totals the old handle already applied.
		old.telMu.Lock()
		w.lastCounters, w.lastHists = old.lastCounters, old.lastHists
		w.lastSpanSeq = old.lastSpanSeq
		w.bestRTT, w.clockOffset = old.bestRTT, old.clockOffset
		old.lastCounters, old.lastHists = nil, nil
		old.telMu.Unlock()
	}
	m.workers[w.id] = w
	m.mu.Unlock()
	go m.watchWorker(w)
	reply.Worker = w.id
	reply.Instance = m.instance
	reply.HeartbeatInterval = int64(m.cfg.HeartbeatInterval)
	m.registry().Gauge(GaugeWorkersAlive).Set(int64(m.LiveWorkers()))
	if join.PrevWorker != 0 {
		m.log.Info("worker re-registered", "worker", w.id, "was", join.PrevWorker,
			"addr", w.addr, "alive", m.LiveWorkers())
	} else {
		m.log.Info("worker registered", "worker", w.id, "addr", w.addr,
			"alive", m.LiveWorkers())
	}
	return nil
}

// watchWorker keeps one blocking Worker.Watch call pending against a
// registered worker for the handle's whole life. The call only ever
// returns when the worker dies or shuts down (or when the master closes
// the client itself), so a crash surfaces here promptly instead of
// waiting out the heartbeat grace period — the role the old blocking
// per-task RunTask call used to play.
func (m *Master) watchWorker(w *workerHandle) {
	w.client.Call("Worker.Watch", &WatchArgs{}, &WatchReply{}) //nolint:errcheck // any return means the worker is gone
	m.mu.Lock()
	shut := m.shut
	m.mu.Unlock()
	if shut {
		return // master teardown closed the client; not a worker death
	}
	m.markDead(w) // no-op if already dead, drained, or expired
}

// Heartbeat records a worker's liveness report, publishes its gauges,
// and — since wire version 3 — routes the completions riding on the
// beat to the running job's scheduler. The reply doubles as the
// master→worker control channel: Shutdown on master teardown, Retired
// when the worker's drain completed, Unknown when the master has no
// live record of the id (expired entry or a restarted master) so the
// worker re-registers.
func (s *masterService) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	m := s.m
	hb, err := DecodeHeartbeat(args.Data)
	if err != nil {
		return err
	}
	recv := time.Now()
	healthy := false
	var gRunning, gStoreB *trace.Gauge
	m.mu.Lock()
	w := m.workers[hb.Worker]
	switch {
	case w == nil || w.state == stateDead || hb.Instance != m.instance:
		reply.Unknown = true
	case w.state == stateDrained:
		reply.Retired = true
	default:
		healthy = true
		w.lastBeat = time.Now()
		w.hbRunning = hb.Running
		w.hbTasksDone = hb.TasksDone
		w.hbStoreBytes = hb.StoreBytes
		w.hbPrefetched = hb.Prefetched
		if w.gaugeReg != m.reg {
			w.gaugeReg = m.reg
			w.gRunning = m.reg.Gauge(fmt.Sprintf("distmr worker %d running", w.id))
			w.gStoreB = m.reg.Gauge(fmt.Sprintf("distmr worker %d store bytes", w.id))
		}
		gRunning, gStoreB = w.gRunning, w.gStoreB
	}
	shut := m.shut
	reg := m.reg
	m.mu.Unlock()
	reply.Shutdown = shut
	if !healthy {
		// Stale or unknown worker: its gauges are not refreshed and its
		// completions are deliberately dropped — any lease it held has
		// been (or will be) reassigned, and duplicates of already-settled
		// assignments would be discarded by the scheduler anyway.
		return nil
	}
	gRunning.Set(hb.Running)
	gStoreB.Set(hb.StoreBytes)
	// Import shipped telemetry BEFORE routing completions: a winning
	// attempt drains its spans before queueing its completion, so this
	// ordering guarantees the spans are stitched into the job tracer by
	// the time the scheduler consumes the completion — RunJob's return
	// always sees every winner's spans. Runs outside m.mu (the tracer and
	// registry carry their own locks).
	m.importTelemetry(w, hb, recv)
	if len(hb.Completions) > 0 {
		reg.Counter(CounterCompletionBatches).Add(1)
		// Deliver outside m.mu: the scheduler takes m.mu (pickWorker,
		// release) while draining events, so holding it here could
		// deadlock against a full events channel.
		if jr := m.getSink(); jr != nil {
			jr.acceptCompletions(w, hb.Completions)
		}
	}
	return nil
}

// importTelemetry merges one beat's shipped telemetry (§14): the clock
// offset estimate is refreshed from the lowest-RTT sample, counter and
// histogram snapshots are diffed against the worker's last-seen values
// and the deltas merged into the current registry, and span batches —
// deduplicated by their drain sequence — are stitched into the running
// job's tracer. Every step is idempotent under at-least-once beat
// delivery.
func (m *Master) importTelemetry(w *workerHandle, hb *Heartbeat, recv time.Time) {
	w.telMu.Lock()
	defer w.telMu.Unlock()
	if hb.SentUnixNano != 0 && (w.bestRTT == 0 || (hb.RTTNanos > 0 && hb.RTTNanos <= w.bestRTT)) {
		// The worker stamped the beat with its wall clock at send plus the
		// previous beat's measured round trip; assuming the send leg took
		// half the round trip, the offset maps worker wall time onto the
		// master's. The lowest-RTT sample bounds the error tightest, so
		// only those refresh the estimate.
		w.bestRTT = hb.RTTNanos
		w.clockOffset = recv.UnixNano() - (hb.SentUnixNano + hb.RTTNanos/2)
	}
	if len(hb.Counters) > 0 || len(hb.Hists) > 0 {
		reg := m.registry()
		if w.lastCounters == nil && len(hb.Counters) > 0 {
			w.lastCounters = make(map[string]int64, len(hb.Counters))
		}
		for i := range hb.Counters {
			c := &hb.Counters[i]
			if d := c.Value - w.lastCounters[c.Name]; d > 0 {
				reg.Counter(c.Name).Add(d)
			}
			w.lastCounters[c.Name] = c.Value
		}
		if w.lastHists == nil && len(hb.Hists) > 0 {
			w.lastHists = make(map[string]trace.HistogramValue, len(hb.Hists))
		}
		for i := range hb.Hists {
			h := &hb.Hists[i]
			cur := trace.HistogramValue{Count: h.Count, Sum: h.Sum, Buckets: h.Buckets}
			if d := cur.Sub(w.lastHists[h.Name]); d.Count > 0 {
				reg.Histogram(h.Name).Absorb(d)
			}
			w.lastHists[h.Name] = cur
		}
	}
	if len(hb.SpanBatches) == 0 {
		return
	}
	jr := m.getSink()
	for i := range hb.SpanBatches {
		sb := &hb.SpanBatches[i]
		if sb.Seq <= w.lastSpanSeq {
			continue // resent batch; already applied
		}
		w.lastSpanSeq = sb.Seq
		if jr != nil {
			jr.importSpans(sb.Spans, w.clockOffset)
		}
	}
}

// Retire starts a graceful drain for a worker (normally requested by the
// worker itself on SIGTERM or by an autoscaler).
func (s *masterService) Retire(args *RetireArgs, _ *RetireReply) error {
	r, err := DecodeRetire(args.Data)
	if err != nil {
		return err
	}
	return s.m.retireWorker(r.Worker, r.Reason)
}

// ReadFile serves a file from the running job's DFS to workers (side
// files, schimmy base partitions).
func (s *masterService) ReadFile(args *ReadFileArgs, reply *ReadFileReply) error {
	s.m.mu.Lock()
	fs := s.m.fs
	s.m.mu.Unlock()
	if fs == nil {
		return fmt.Errorf("distmr: no job is running")
	}
	data, err := fs.ReadFile(args.Name)
	if err != nil {
		return err
	}
	reply.Data = data
	return nil
}

// RunJob implements mapreduce.Backend: it executes one job across the
// registered workers and assembles a Result with the same statistics the
// simulated engine would report.
func (m *Master) RunJob(c *mapreduce.Cluster, job *mapreduce.Job) (*mapreduce.Result, error) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	if job.Spec == nil || job.Spec.Kind == "" {
		return nil, fmt.Errorf("distmr: job %q has no Spec; only spec-bearing jobs can run distributed", job.Name)
	}
	if job.NewReducer == nil {
		return nil, fmt.Errorf("distmr: job %q is map-only; the distributed backend requires a reduce phase", job.Name)
	}
	select {
	case <-m.shutCh:
		return nil, fmt.Errorf("distmr: master shut down")
	default:
	}

	m.mu.Lock()
	m.fs = c.FS
	m.jobSeq++
	seq := m.jobSeq
	m.jobActive = true
	if reg := c.Tracer.Registry(); reg != nil {
		m.reg = reg
	}
	m.mu.Unlock()

	// The job records into the cluster's tracer when the caller carries
	// one, else the master's own: shipped worker spans and master-side
	// dispatch spans must land in the same trace the registry deltas do,
	// or a harness that only traces the master would silently lose them.
	tracer := c.Tracer
	if tracer == nil {
		tracer = m.cfg.Tracer
	}
	jr := &jobRun{
		m:      m,
		c:      c,
		job:    job,
		seq:    seq,
		tracer: tracer,
		log:    m.log.With("job", job.Name, "round", job.Round, "seq", seq),
		events: make(chan event, 64),
		cancel: make(chan struct{}),
	}
	res, err := jr.run()
	m.setSink(nil)
	jr.close()
	m.mu.Lock()
	m.jobActive = false
	m.mu.Unlock()
	m.setJobStatus(nil, 0)
	m.cleanJob(seq)
	if err == nil && m.cfg.PersistState {
		// The job finished; its persisted recovery state (and any drain
		// hand-off segments, which live under the same prefix) is garbage.
		c.FS.DeletePrefix(statePrefix(job.Name))
	}
	return res, err
}

// cleanJob tells every live worker to retire the job's cached code and
// spill segments. The calls are fire-and-forget: worker job state is
// keyed by sequence number, so a CleanJob landing after the next job
// has started cannot touch that job's state, and a call lost to a
// broken connection just leaves garbage the worker's own death or
// restart reclaims. Waiting here would put one RTT per worker on the
// inter-job critical path, which FF drivers cross hundreds of times.
func (m *Master) cleanJob(seq uint64) {
	m.mu.Lock()
	workers := make([]*workerHandle, 0, len(m.workers))
	for _, w := range m.workers {
		if w.alive() {
			workers = append(workers, w)
		}
	}
	m.mu.Unlock()
	for _, w := range workers {
		w.client.Go("Worker.CleanJob", &CleanJobArgs{JobSeq: seq}, &CleanJobReply{}, make(chan *rpc.Call, 1))
	}
}
