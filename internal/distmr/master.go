package distmr

import (
	"fmt"
	"log/slog"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"ffmr/internal/dfs"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/rpcutil"
	"ffmr/internal/trace"
)

// Metric names the master publishes on the cluster tracer's registry.
const (
	// GaugeWorkersAlive tracks the live worker count.
	GaugeWorkersAlive = "distmr workers alive"
	// CounterWorkerDeaths counts workers declared dead (crash, transport
	// failure, heartbeat staleness or lease expiry).
	CounterWorkerDeaths = "distmr worker deaths"
	// CounterReassigns counts task reassignments after a worker death.
	CounterReassigns = "distmr reassignments"
	// CounterBackups counts speculative backup attempts launched.
	CounterBackups = "distmr speculative backups"
	// CounterLostMapRecoveries counts map tasks re-executed because their
	// outputs became unreachable.
	CounterLostMapRecoveries = "distmr lost map recoveries"
)

// Config parameterizes a Master. The zero value gets usable defaults.
type Config struct {
	// Addr is the listen address (default 127.0.0.1:0).
	Addr string
	// HeartbeatInterval is the cadence workers are told to beat at
	// (default 100ms); HeartbeatGrace is how many intervals of silence
	// mark a worker dead (default 30).
	HeartbeatInterval time.Duration
	HeartbeatGrace    int
	// LeaseTimeout bounds one task attempt's execution; an expired lease
	// marks the worker dead and reassigns the task (default 2m).
	LeaseTimeout time.Duration
	// SlotsPerWorker caps concurrent tasks per worker (default: the
	// cluster's SlotsPerNode).
	SlotsPerWorker int
	// SpeculativeFraction and SpeculativeFactor gate backup attempts: a
	// backup launches when at least Fraction of the phase's tasks are
	// done and a task has run longer than Factor times the median
	// completed duration (defaults 0.75 and 2.0).
	SpeculativeFraction float64
	SpeculativeFactor   float64
	// MaxAssigns caps how many times one task may be (re)assigned across
	// worker deaths before the job fails (default 10). Body failures are
	// capped separately by Faults.MaxAttempts, matching the simulated
	// engine.
	MaxAssigns int
	// WorkerWait is how long a job waits for a live worker before
	// failing (default 30s).
	WorkerWait time.Duration
	// Tracer records master-side spans/gauges until a job installs the
	// cluster's tracer.
	Tracer *trace.Tracer
	// Obsv configures the master's observability surface: structured
	// logging, the admin HTTP server (/metrics, /healthz, /status,
	// /debug/pprof) and the flight recorder. The zero value disables all
	// of it at no cost.
	Obsv obsv.Options
}

func (c *Config) applyDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.HeartbeatGrace <= 0 {
		c.HeartbeatGrace = 30
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Minute
	}
	if c.SpeculativeFraction <= 0 {
		c.SpeculativeFraction = 0.75
	}
	if c.SpeculativeFactor <= 1 {
		c.SpeculativeFactor = 2.0
	}
	if c.MaxAssigns <= 0 {
		c.MaxAssigns = 10
	}
	if c.WorkerWait <= 0 {
		c.WorkerWait = 30 * time.Second
	}
}

// workerHandle is the master's view of one registered worker. running is
// the master's own in-flight dispatch count (slot accounting); the hb*
// fields mirror the worker's last self-reported heartbeat and feed the
// /status view.
type workerHandle struct {
	id       uint64
	addr     string
	client   *rpc.Client
	lastBeat time.Time
	running  int
	dead     bool

	hbRunning    int64
	hbTasksDone  int64
	hbStoreBytes int64
}

// Master schedules jobs onto registered workers. It implements
// mapreduce.Backend, so assigning it to Cluster.Distributed routes every
// Cluster.Run through it.
type Master struct {
	cfg    Config
	ln     net.Listener
	log    *slog.Logger
	admin  *obsv.Admin
	flight *obsv.FlightRecorder

	mu      sync.Mutex
	workers map[uint64]*workerHandle
	nextID  uint64
	jobSeq  uint64
	conns   map[net.Conn]struct{}
	fs      *dfs.FS
	reg     *trace.Registry
	shut    bool

	// statusMu guards the snapshot the running job publishes for /status.
	// It is separate from mu: the scheduler goroutine owns the job state
	// and only ever hands immutable snapshots across this lock, so the
	// admin server never reads scheduler internals.
	statusMu  sync.Mutex
	jobStatus *obsv.JobStatus

	shutOnce sync.Once
	shutCh   chan struct{}

	runMu sync.Mutex // serializes RunJob (the driver runs rounds in order)
}

// NewMaster starts a master listening for worker registrations.
func NewMaster(cfg Config) (*Master, error) {
	cfg.applyDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("distmr: master listen: %w", err)
	}
	var flight *obsv.FlightRecorder
	if cfg.Obsv.FlightDir != "" {
		flight = obsv.NewFlightRecorder("master", cfg.Obsv.FlightSize)
	}
	var next slog.Handler
	if cfg.Obsv.Logger != nil {
		next = cfg.Obsv.Logger.Handler()
	}
	m := &Master{
		cfg:     cfg,
		ln:      ln,
		log:     slog.New(flight.Handler(next)).With("role", "master"),
		flight:  flight,
		workers: make(map[uint64]*workerHandle),
		conns:   make(map[net.Conn]struct{}),
		reg:     cfg.Tracer.Registry(),
		shutCh:  make(chan struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", &masterService{m: m}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("distmr: master register service: %w", err)
	}
	if cfg.Obsv.AdminAddr != "" {
		admin, err := obsv.StartAdmin(obsv.AdminConfig{
			Addr:    cfg.Obsv.AdminAddr,
			Metrics: m.registry,
			Status:  m.Status,
			Flight:  flight,
			Logger:  m.log,
		})
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("distmr: master admin server: %w", err)
		}
		m.admin = admin
		m.log.Info("admin server listening", "addr", admin.Addr())
	}
	m.log.Info("master listening", "addr", ln.Addr().String())
	go m.accept(srv)
	return m, nil
}

// AdminAddr returns the admin HTTP server's address, or "" when no admin
// server was configured.
func (m *Master) AdminAddr() string {
	if m.admin == nil {
		return ""
	}
	return m.admin.Addr()
}

// Addr returns the master's listen address for workers to register at.
func (m *Master) Addr() string { return m.ln.Addr().String() }

func (m *Master) accept(srv *rpc.Server) {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.shut {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		go func() {
			srv.ServeConn(conn)
			m.mu.Lock()
			delete(m.conns, conn)
			m.mu.Unlock()
			conn.Close()
		}()
	}
}

// Shutdown stops the master: workers are told to exit (directly and via
// their next heartbeat), all connections close, and any running job
// fails promptly.
func (m *Master) Shutdown() {
	m.shutOnce.Do(func() {
		m.log.Info("master shutting down")
		m.admin.Close()
		if m.flight != nil && m.cfg.Obsv.FlightDir != "" {
			if _, err := m.flight.Dump(m.cfg.Obsv.FlightDir, "shutdown"); err != nil {
				m.log.Warn("flight dump failed", "err", err)
			}
		}
		m.mu.Lock()
		m.shut = true
		workers := make([]*workerHandle, 0, len(m.workers))
		for _, w := range m.workers {
			if !w.dead {
				workers = append(workers, w)
			}
		}
		conns := make([]net.Conn, 0, len(m.conns))
		for c := range m.conns {
			conns = append(conns, c)
		}
		m.mu.Unlock()
		close(m.shutCh)
		for _, w := range workers {
			// Best-effort: a dead worker's call just errors out.
			call := w.client.Go("Worker.Shutdown", &ShutdownArgs{}, &ShutdownReply{}, make(chan *rpc.Call, 1))
			select {
			case <-call.Done:
			case <-time.After(500 * time.Millisecond):
			}
			w.client.Close()
		}
		m.ln.Close()
		for _, c := range conns {
			c.Close()
		}
	})
}

// registry returns the current trace registry (the cluster's once a job
// has run, the config's before). All registry methods are nil-safe.
func (m *Master) registry() *trace.Registry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg
}

// setJobStatus publishes (or, with nil, retires) the running job's status
// snapshot for the admin server. Snapshots are immutable once handed over.
func (m *Master) setJobStatus(js *obsv.JobStatus) {
	m.statusMu.Lock()
	m.jobStatus = js
	m.statusMu.Unlock()
}

// Status assembles the cluster view served at /status: every registered
// worker (heartbeat-reported load, liveness) plus the running job's
// latest scheduler snapshot.
func (m *Master) Status() *obsv.ClusterStatus {
	st := &obsv.ClusterStatus{Role: "master", Addr: m.Addr()}
	m.mu.Lock()
	ids := make([]uint64, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := m.workers[id]
		if !w.dead {
			st.WorkersAlive++
		}
		st.Workers = append(st.Workers, obsv.WorkerStatus{
			ID:         w.id,
			Addr:       w.addr,
			Running:    w.hbRunning,
			TasksDone:  w.hbTasksDone,
			StoreBytes: w.hbStoreBytes,
			LastBeatMS: time.Since(w.lastBeat).Milliseconds(),
			Dead:       w.dead,
		})
	}
	m.mu.Unlock()
	m.statusMu.Lock()
	st.Job = m.jobStatus
	m.statusMu.Unlock()
	return st
}

// LiveWorkers returns the number of registered, live workers.
func (m *Master) LiveWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.workers {
		if !w.dead {
			n++
		}
	}
	return n
}

// WaitForWorkers blocks until at least n workers are live or the timeout
// elapses.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if m.LiveWorkers() >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("distmr: %d workers did not register within %v (have %d)", n, timeout, m.LiveWorkers())
		}
		select {
		case <-m.shutCh:
			return fmt.Errorf("distmr: master shut down")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// markDead declares a worker dead: its client closes (unblocking every
// in-flight lease with a transport error) and it receives no more work.
func (m *Master) markDead(w *workerHandle) {
	m.mu.Lock()
	already := w.dead
	w.dead = true
	m.mu.Unlock()
	if already {
		return
	}
	w.client.Close()
	reg := m.registry()
	reg.Counter(CounterWorkerDeaths).Add(1)
	reg.Gauge(GaugeWorkersAlive).Set(int64(m.LiveWorkers()))
	m.log.Warn("worker declared dead", "worker", w.id, "addr", w.addr,
		"alive", m.LiveWorkers())
}

// checkHeartbeats marks workers silent for longer than the grace period
// dead.
func (m *Master) checkHeartbeats() {
	limit := time.Duration(m.cfg.HeartbeatGrace) * m.cfg.HeartbeatInterval
	var stale []*workerHandle
	m.mu.Lock()
	for _, w := range m.workers {
		if !w.dead && time.Since(w.lastBeat) > limit {
			stale = append(stale, w)
		}
	}
	m.mu.Unlock()
	for _, w := range stale {
		m.markDead(w)
	}
}

// pickWorker returns the live worker with the most free slots, or nil.
func (m *Master) pickWorker(slots int, exclude *workerHandle) *workerHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *workerHandle
	ids := make([]uint64, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := m.workers[id]
		if w.dead || w == exclude || w.running >= slots {
			continue
		}
		if best == nil || w.running < best.running {
			best = w
		}
	}
	if best != nil {
		best.running++
	}
	return best
}

func (m *Master) release(w *workerHandle) {
	m.mu.Lock()
	w.running--
	m.mu.Unlock()
}

// masterService is the RPC wrapper exposing the worker-facing API.
type masterService struct{ m *Master }

// Register adds a worker: the master dials it back for task dispatch
// before acknowledging, so a registered worker is always reachable.
func (s *masterService) Register(args *RegisterArgs, reply *RegisterReply) error {
	m := s.m
	if args.Addr == "" {
		return fmt.Errorf("distmr: register without an address")
	}
	client, err := rpcutil.DialRPC(args.Addr, rpcutil.Policy{})
	if err != nil {
		return fmt.Errorf("distmr: dial back worker at %s: %w", args.Addr, err)
	}
	m.mu.Lock()
	if m.shut {
		m.mu.Unlock()
		client.Close()
		return fmt.Errorf("distmr: master is shutting down")
	}
	m.nextID++
	w := &workerHandle{id: m.nextID, addr: args.Addr, client: client, lastBeat: time.Now()}
	m.workers[w.id] = w
	m.mu.Unlock()
	reply.Worker = w.id
	reply.HeartbeatInterval = int64(m.cfg.HeartbeatInterval)
	m.registry().Gauge(GaugeWorkersAlive).Set(int64(m.LiveWorkers()))
	m.log.Info("worker registered", "worker", w.id, "addr", w.addr,
		"alive", m.LiveWorkers())
	return nil
}

// Heartbeat records a worker's liveness report and publishes its gauges.
func (s *masterService) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	m := s.m
	hb, err := DecodeHeartbeat(args.Data)
	if err != nil {
		return err
	}
	m.mu.Lock()
	w := m.workers[hb.Worker]
	if w != nil && !w.dead {
		w.lastBeat = time.Now()
		w.hbRunning = hb.Running
		w.hbTasksDone = hb.TasksDone
		w.hbStoreBytes = hb.StoreBytes
	}
	shut := m.shut
	reg := m.reg
	m.mu.Unlock()
	reply.Shutdown = shut
	reg.Gauge(fmt.Sprintf("distmr worker %d running", hb.Worker)).Set(hb.Running)
	reg.Gauge(fmt.Sprintf("distmr worker %d store bytes", hb.Worker)).Set(hb.StoreBytes)
	return nil
}

// ReadFile serves a file from the running job's DFS to workers (side
// files, schimmy base partitions).
func (s *masterService) ReadFile(args *ReadFileArgs, reply *ReadFileReply) error {
	s.m.mu.Lock()
	fs := s.m.fs
	s.m.mu.Unlock()
	if fs == nil {
		return fmt.Errorf("distmr: no job is running")
	}
	data, err := fs.ReadFile(args.Name)
	if err != nil {
		return err
	}
	reply.Data = data
	return nil
}

// RunJob implements mapreduce.Backend: it executes one job across the
// registered workers and assembles a Result with the same statistics the
// simulated engine would report.
func (m *Master) RunJob(c *mapreduce.Cluster, job *mapreduce.Job) (*mapreduce.Result, error) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	if job.Spec == nil || job.Spec.Kind == "" {
		return nil, fmt.Errorf("distmr: job %q has no Spec; only spec-bearing jobs can run distributed", job.Name)
	}
	if job.NewReducer == nil {
		return nil, fmt.Errorf("distmr: job %q is map-only; the distributed backend requires a reduce phase", job.Name)
	}
	select {
	case <-m.shutCh:
		return nil, fmt.Errorf("distmr: master shut down")
	default:
	}

	m.mu.Lock()
	m.fs = c.FS
	m.jobSeq++
	seq := m.jobSeq
	if reg := c.Tracer.Registry(); reg != nil {
		m.reg = reg
	}
	m.mu.Unlock()

	jr := &jobRun{
		m:      m,
		c:      c,
		job:    job,
		seq:    seq,
		tracer: c.Tracer,
		log:    m.log.With("job", job.Name, "round", job.Round, "seq", seq),
		events: make(chan event, 64),
		cancel: make(chan struct{}),
	}
	res, err := jr.run()
	jr.close()
	m.setJobStatus(nil)
	m.cleanJob(seq)
	return res, err
}

// cleanJob tells every live worker to retire the job's cached code and
// spill segments.
func (m *Master) cleanJob(seq uint64) {
	m.mu.Lock()
	workers := make([]*workerHandle, 0, len(m.workers))
	for _, w := range m.workers {
		if !w.dead {
			workers = append(workers, w)
		}
	}
	m.mu.Unlock()
	for _, w := range workers {
		call := w.client.Go("Worker.CleanJob", &CleanJobArgs{JobSeq: seq}, &CleanJobReply{}, make(chan *rpc.Call, 1))
		select {
		case <-call.Done:
		case <-time.After(2 * time.Second):
		}
	}
}
