// Package distmr is the distributed MapReduce execution backend: a
// master that schedules the engine's jobs onto workers which are real
// processes (or in-process harness workers) speaking net/rpc over TCP,
// the way the paper's Hadoop deployment schedules map and reduce tasks
// onto tasktrackers. It provides worker registration with periodic
// heartbeats, task leases with timeout-based reassignment when a worker
// dies or goes silent, cross-worker speculative backup attempts for
// stragglers, and a network shuffle in which each worker serves its map
// output spill segments to reducers over the wire.
//
// The backend plugs in behind the engine via mapreduce.Cluster.Distributed
// and must reproduce the simulated engine's per-round statistics exactly:
// task placement (Split.Node, partition % Nodes), partitioning, spill
// segmentation and merge order all mirror the simulated paths, and
// counters are merged from winning attempts only, so crashes, retries
// and backup attempts leave no trace in the job's Result.
package distmr

import (
	"encoding/binary"
	"fmt"
	"math"

	"ffmr/internal/spill"
)

// Phase identifies which half of a job a task belongs to.
type Phase uint8

const (
	// PhaseMap is a map task over one input split.
	PhaseMap Phase = iota
	// PhaseReduce is a reduce task over one partition.
	PhaseReduce
)

// String names the phase as the engine does in errors and spans.
func (p Phase) String() string {
	if p == PhaseMap {
		return "map"
	}
	return "reduce"
}

// MapSource tells a reduce task where one map task's output for its
// partition lives: the worker serving the segments and the segment
// metadata, in spill order (the same order the simulated engine's
// partSegments produces, so merge statistics agree).
type MapSource struct {
	// MapTask is the producing map task's index, reported back in
	// TaskResult.LostMaps when the segments cannot be fetched.
	MapTask int
	// Worker and Addr identify the worker holding the segments; a reduce
	// running on that worker reads its local store instead of fetching.
	Worker uint64
	Addr   string
	// Prefix, when non-empty, says the segments no longer live on a
	// worker: they were handed off (drain) or rehydrated (master restart)
	// into the master's DFS under Prefix+Segment.Name, and the reducer
	// fetches them via Master.ReadFile. The segment metadata is unchanged
	// by a hand-off, so shuffle and merge statistics stay identical.
	Prefix string
	// Segments are this partition's segments from the winning attempt.
	Segments []spill.Segment
}

// TaskDescriptor is the master-to-worker task assignment, carried inside
// the RPC envelope in the custom wire format below (EncodeTask /
// DecodeTask). One descriptor fully determines a task's execution, so a
// reassigned or speculated attempt on another worker computes the
// identical result.
type TaskDescriptor struct {
	// JobSeq namespaces the job's state on workers (code cache, side file
	// cache, store prefixes); JobName feeds error text and injection
	// hashes, matching the simulated engine's coordinates.
	JobSeq  uint64
	JobName string
	// Kind and Params reconstruct the job's code via the worker-side kind
	// registry (closures cannot cross the process boundary).
	Kind   string
	Params []byte

	Phase Phase
	// Task is the task index; Attempt is the body-failure attempt number
	// (the simulated engine's coordinate, so injected failures replay
	// identically); Assign is the assignment sequence number, advancing on
	// every dispatch including reassignments and backups, which keys
	// store prefixes and worker-crash draws.
	Task    int
	Attempt int
	Assign  int
	// Node is the simulated cluster node this task is accounted to
	// (Split.Node for maps, partition % Nodes for reduces).
	Node  int
	Round int

	NumReducers  int
	MemoryBudget int64
	Compress     bool
	MergeFanIn   int

	// Fault-injection coordinates, mirrored from the cluster's Faults.
	Seed            int64
	DiskFailureRate float64
	CrashRate       float64

	// Reduce-side schimmy configuration; the worker fetches the base
	// partition from the master's file system.
	Schimmy     bool
	SchimmyBase string

	// SideFiles are fetched from the master once per job and cached.
	SideFiles []string

	// Split is the map task's input data (record-aligned, master-planned).
	Split []byte
	// Sources are the reduce task's shuffle inputs, in map-task order.
	Sources []MapSource
}

// Heartbeat is the periodic worker-to-master liveness report, carried in
// the custom wire format (EncodeHeartbeat / DecodeHeartbeat). The gauges
// feed the master's trace registry and the /status view; TasksDone
// piggybacks per-task progress on the beat, so the master's live status
// needs no extra RPC traffic.
type Heartbeat struct {
	Worker uint64
	// Instance echoes the master-instance nonce the worker registered
	// with. Master generations restart their worker-id counter, so after
	// a restart a stale worker's old id can collide with a re-registered
	// worker's new one; the nonce mismatch forces the stale worker onto
	// the Unknown → re-register path instead of silently impersonating.
	Instance     uint64
	Seq          uint64
	Running      int64
	StoreObjects int64
	StoreBytes   int64
	TasksDone    int64
}

// wireVersion 2 added MapSource.Prefix and the membership messages
// (JoinRequest, Retire, HandoffDescriptor).
const wireVersion = 2

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBytes appends a length-prefixed byte slice.
func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendSegment(b []byte, s *spill.Segment) []byte {
	b = appendString(b, s.Name)
	b = binary.AppendVarint(b, int64(s.Partition))
	b = binary.AppendVarint(b, s.Records)
	b = binary.AppendVarint(b, s.RawBytes)
	b = binary.AppendVarint(b, s.StoredBytes)
	b = appendBool(b, s.Compressed)
	b = binary.AppendVarint(b, int64(s.Node))
	return b
}

// EncodeTask serializes a task descriptor.
func EncodeTask(d *TaskDescriptor) []byte {
	b := make([]byte, 0, 64+len(d.Params)+len(d.Split))
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, d.JobSeq)
	b = appendString(b, d.JobName)
	b = appendString(b, d.Kind)
	b = appendBytes(b, d.Params)
	b = append(b, byte(d.Phase))
	b = binary.AppendVarint(b, int64(d.Task))
	b = binary.AppendVarint(b, int64(d.Attempt))
	b = binary.AppendVarint(b, int64(d.Assign))
	b = binary.AppendVarint(b, int64(d.Node))
	b = binary.AppendVarint(b, int64(d.Round))
	b = binary.AppendVarint(b, int64(d.NumReducers))
	b = binary.AppendVarint(b, d.MemoryBudget)
	b = appendBool(b, d.Compress)
	b = binary.AppendVarint(b, int64(d.MergeFanIn))
	b = binary.AppendVarint(b, d.Seed)
	b = appendF64(b, d.DiskFailureRate)
	b = appendF64(b, d.CrashRate)
	b = appendBool(b, d.Schimmy)
	b = appendString(b, d.SchimmyBase)
	b = binary.AppendUvarint(b, uint64(len(d.SideFiles)))
	for _, s := range d.SideFiles {
		b = appendString(b, s)
	}
	b = appendBytes(b, d.Split)
	b = binary.AppendUvarint(b, uint64(len(d.Sources)))
	for i := range d.Sources {
		src := &d.Sources[i]
		b = binary.AppendVarint(b, int64(src.MapTask))
		b = binary.AppendUvarint(b, src.Worker)
		b = appendString(b, src.Addr)
		b = appendString(b, src.Prefix)
		b = binary.AppendUvarint(b, uint64(len(src.Segments)))
		for j := range src.Segments {
			b = appendSegment(b, &src.Segments[j])
		}
	}
	return b
}

// EncodeHeartbeat serializes a heartbeat.
func EncodeHeartbeat(h *Heartbeat) []byte {
	b := make([]byte, 0, 32)
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, h.Worker)
	b = binary.AppendUvarint(b, h.Instance)
	b = binary.AppendUvarint(b, h.Seq)
	b = binary.AppendVarint(b, h.Running)
	b = binary.AppendVarint(b, h.StoreObjects)
	b = binary.AppendVarint(b, h.StoreBytes)
	b = binary.AppendVarint(b, h.TasksDone)
	return b
}

// decoder is a bounds-checked cursor over an encoded message. Every read
// after an error returns a zero value, so decode paths need one error
// check at the end; no input can make it panic or allocate more than the
// input's own length (all counts are validated against remaining bytes).
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("distmr: corrupt %s at offset %d", what, d.off)
	}
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail(what)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

// intv decodes a varint that must fit a non-negative int.
func (d *decoder) intv(what string) int {
	v := d.varint(what)
	if v < 0 || v > math.MaxInt32 {
		d.fail(what)
		return 0
	}
	return int(v)
}

func (d *decoder) bytes(what string) []byte {
	n := d.uvarint(what)
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return nil
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v
}

func (d *decoder) str(what string) string { return string(d.bytes(what)) }

func (d *decoder) boolean(what string) bool { return d.byte(what) != 0 }

func (d *decoder) f64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// count decodes a collection length, bounded by the remaining input (each
// element takes at least one byte), so corrupt input cannot force a huge
// allocation.
func (d *decoder) count(what string) int {
	n := d.uvarint(what)
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return 0
	}
	return int(n)
}

func (d *decoder) segment(s *spill.Segment) {
	s.Name = d.str("segment name")
	s.Partition = d.intv("segment partition")
	s.Records = d.varint("segment records")
	s.RawBytes = d.varint("segment raw bytes")
	s.StoredBytes = d.varint("segment stored bytes")
	s.Compressed = d.boolean("segment compressed")
	s.Node = int(d.varint("segment node"))
}

// DecodeTask parses an encoded task descriptor. It never panics on
// malformed input.
func DecodeTask(data []byte) (*TaskDescriptor, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown task wire version %d", v)
	}
	t := &TaskDescriptor{}
	t.JobSeq = d.uvarint("job seq")
	t.JobName = d.str("job name")
	t.Kind = d.str("kind")
	t.Params = d.bytes("params")
	phase := d.byte("phase")
	if d.err == nil && phase > byte(PhaseReduce) {
		return nil, fmt.Errorf("distmr: unknown phase %d", phase)
	}
	t.Phase = Phase(phase)
	t.Task = d.intv("task")
	t.Attempt = d.intv("attempt")
	t.Assign = d.intv("assign")
	t.Node = d.intv("node")
	t.Round = d.intv("round")
	t.NumReducers = d.intv("reducers")
	t.MemoryBudget = d.varint("memory budget")
	t.Compress = d.boolean("compress")
	t.MergeFanIn = d.intv("merge fan-in")
	t.Seed = d.varint("seed")
	t.DiskFailureRate = d.f64("disk failure rate")
	t.CrashRate = d.f64("crash rate")
	t.Schimmy = d.boolean("schimmy")
	t.SchimmyBase = d.str("schimmy base")
	if n := d.count("side files"); n > 0 {
		t.SideFiles = make([]string, n)
		for i := range t.SideFiles {
			t.SideFiles[i] = d.str("side file")
		}
	}
	t.Split = d.bytes("split")
	if n := d.count("sources"); n > 0 {
		t.Sources = make([]MapSource, n)
		for i := range t.Sources {
			src := &t.Sources[i]
			src.MapTask = d.intv("source map task")
			src.Worker = d.uvarint("source worker")
			src.Addr = d.str("source addr")
			src.Prefix = d.str("source prefix")
			if m := d.count("source segments"); m > 0 {
				src.Segments = make([]spill.Segment, m)
				for j := range src.Segments {
					d.segment(&src.Segments[j])
				}
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after task descriptor", len(data)-d.off)
	}
	return t, nil
}

// JoinRequest is a worker's membership announcement, carried inside
// RegisterArgs. A mid-job join makes the worker immediately eligible for
// pending leases and shuffle serving: the scheduler's next dispatch pass
// sees it in pickWorker.
type JoinRequest struct {
	// Addr is the worker's own listen address, which the master dials
	// back for task dispatch and which reducers dial for shuffle fetches.
	Addr string
	// Pid identifies the worker process (0 for in-process workers).
	Pid int
	// PrevWorker is the id this worker held before losing its identity
	// (the master restarted, or expired it during a partition); 0 on a
	// fresh join. The master logs the lineage but always assigns a new id
	// — stale leases keyed to the old id must not resurrect.
	PrevWorker uint64
}

// Retire asks the master to drain a worker: no new leases, running
// attempts finish, completed map output is handed off through DFS, and
// only then is the worker deregistered (told to exit via its next
// heartbeat).
type Retire struct {
	Worker uint64
	// Reason is free-form ("sigterm", "autoscaler", ...), for the log.
	Reason string
}

// HandoffDescriptor lists the spill segments a draining worker must
// surrender to the master before it may deregister, so its completed map
// tasks are not re-executed.
type HandoffDescriptor struct {
	JobSeq   uint64
	Segments []string
}

// EncodeJoin serializes a join request.
func EncodeJoin(j *JoinRequest) []byte {
	b := make([]byte, 0, 32+len(j.Addr))
	b = append(b, wireVersion)
	b = appendString(b, j.Addr)
	b = binary.AppendVarint(b, int64(j.Pid))
	b = binary.AppendUvarint(b, j.PrevWorker)
	return b
}

// DecodeJoin parses an encoded join request. It never panics on
// malformed input.
func DecodeJoin(data []byte) (*JoinRequest, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown join wire version %d", v)
	}
	j := &JoinRequest{}
	j.Addr = d.str("join addr")
	j.Pid = d.intv("join pid")
	j.PrevWorker = d.uvarint("join prev worker")
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after join request", len(data)-d.off)
	}
	return j, nil
}

// EncodeRetire serializes a retire request.
func EncodeRetire(r *Retire) []byte {
	b := make([]byte, 0, 16+len(r.Reason))
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, r.Worker)
	b = appendString(b, r.Reason)
	return b
}

// DecodeRetire parses an encoded retire request. It never panics on
// malformed input.
func DecodeRetire(data []byte) (*Retire, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown retire wire version %d", v)
	}
	r := &Retire{}
	r.Worker = d.uvarint("retire worker")
	r.Reason = d.str("retire reason")
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after retire request", len(data)-d.off)
	}
	return r, nil
}

// EncodeHandoff serializes a hand-off descriptor.
func EncodeHandoff(h *HandoffDescriptor) []byte {
	b := make([]byte, 0, 16)
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, h.JobSeq)
	b = binary.AppendUvarint(b, uint64(len(h.Segments)))
	for _, s := range h.Segments {
		b = appendString(b, s)
	}
	return b
}

// DecodeHandoff parses an encoded hand-off descriptor. It never panics
// on malformed input.
func DecodeHandoff(data []byte) (*HandoffDescriptor, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown handoff wire version %d", v)
	}
	h := &HandoffDescriptor{}
	h.JobSeq = d.uvarint("handoff job seq")
	if n := d.count("handoff segments"); n > 0 {
		h.Segments = make([]string, n)
		for i := range h.Segments {
			h.Segments[i] = d.str("handoff segment")
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after handoff descriptor", len(data)-d.off)
	}
	return h, nil
}

// DecodeHeartbeat parses an encoded heartbeat. It never panics on
// malformed input.
func DecodeHeartbeat(data []byte) (*Heartbeat, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown heartbeat wire version %d", v)
	}
	h := &Heartbeat{}
	h.Worker = d.uvarint("worker")
	h.Instance = d.uvarint("instance")
	h.Seq = d.uvarint("seq")
	h.Running = d.varint("running")
	h.StoreObjects = d.varint("store objects")
	h.StoreBytes = d.varint("store bytes")
	h.TasksDone = d.varint("tasks done")
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after heartbeat", len(data)-d.off)
	}
	return h, nil
}
