// Package distmr is the distributed MapReduce execution backend: a
// master that schedules the engine's jobs onto workers which are real
// processes (or in-process harness workers) speaking net/rpc over TCP,
// the way the paper's Hadoop deployment schedules map and reduce tasks
// onto tasktrackers. It provides worker registration with periodic
// heartbeats, task leases with timeout-based reassignment when a worker
// dies or goes silent, cross-worker speculative backup attempts for
// stragglers, and a network shuffle in which each worker serves its map
// output spill segments to reducers over the wire.
//
// The backend plugs in behind the engine via mapreduce.Cluster.Distributed
// and must reproduce the simulated engine's per-round statistics exactly:
// task placement (Split.Node, partition % Nodes), partitioning, spill
// segmentation and merge order all mirror the simulated paths, and
// counters are merged from winning attempts only, so crashes, retries
// and backup attempts leave no trace in the job's Result.
package distmr

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"ffmr/internal/spill"
	"ffmr/internal/trace"
)

// Phase identifies which half of a job a task belongs to.
type Phase uint8

const (
	// PhaseMap is a map task over one input split.
	PhaseMap Phase = iota
	// PhaseReduce is a reduce task over one partition.
	PhaseReduce
)

// String names the phase as the engine does in errors and spans.
func (p Phase) String() string {
	if p == PhaseMap {
		return "map"
	}
	return "reduce"
}

// MapSource tells a reduce task where one map task's output for its
// partition lives: the worker serving the segments and the segment
// metadata, in spill order (the same order the simulated engine's
// partSegments produces, so merge statistics agree).
type MapSource struct {
	// MapTask is the producing map task's index, reported back in
	// TaskResult.LostMaps when the segments cannot be fetched.
	MapTask int
	// Worker and Addr identify the worker holding the segments; a reduce
	// running on that worker reads its local store instead of fetching.
	Worker uint64
	Addr   string
	// Prefix, when non-empty, says the segments no longer live on a
	// worker: they were handed off (drain) or rehydrated (master restart)
	// into the master's DFS under Prefix+Segment.Name, and the reducer
	// fetches them via Master.ReadFile. The segment metadata is unchanged
	// by a hand-off, so shuffle and merge statistics stay identical.
	Prefix string
	// Segments are this partition's segments from the winning attempt.
	Segments []spill.Segment
}

// TaskDescriptor is the master-to-worker task assignment, carried inside
// the RPC envelope in the custom wire format below (EncodeTask /
// DecodeTask). One descriptor fully determines a task's execution, so a
// reassigned or speculated attempt on another worker computes the
// identical result.
type TaskDescriptor struct {
	// JobSeq namespaces the job's state on workers (code cache, side file
	// cache, store prefixes); JobName feeds error text and injection
	// hashes, matching the simulated engine's coordinates.
	JobSeq  uint64
	JobName string
	// Kind and Params reconstruct the job's code via the worker-side kind
	// registry (closures cannot cross the process boundary).
	Kind   string
	Params []byte

	Phase Phase
	// Task is the task index; Attempt is the body-failure attempt number
	// (the simulated engine's coordinate, so injected failures replay
	// identically); Assign is the assignment sequence number, advancing on
	// every dispatch including reassignments and backups, which keys
	// store prefixes and worker-crash draws.
	Task    int
	Attempt int
	Assign  int
	// Node is the simulated cluster node this task is accounted to
	// (Split.Node for maps, partition % Nodes for reduces).
	Node  int
	Round int

	NumReducers  int
	MemoryBudget int64
	Compress     bool
	MergeFanIn   int

	// Fault-injection coordinates, mirrored from the cluster's Faults.
	Seed            int64
	DiskFailureRate float64
	CrashRate       float64

	// Reduce-side schimmy configuration; the worker fetches the base
	// partition from the master's file system.
	Schimmy     bool
	SchimmyBase string

	// SideFiles are fetched from the master once per job and cached.
	SideFiles []string

	// Split is the map task's input data (record-aligned, master-planned).
	Split []byte
	// Sources are the reduce task's shuffle inputs, in map-task order.
	Sources []MapSource

	// Ctx is the master-trace position this task executes under: worker
	// task spans are tagged with it and stitched under Ctx.Span (the job
	// span) when shipped back. Zero when the master runs untraced.
	Ctx trace.Context
}

// Heartbeat is the periodic worker-to-master liveness report, carried in
// the custom wire format (EncodeHeartbeat / DecodeHeartbeat). The gauges
// feed the master's trace registry and the /status view; TasksDone
// piggybacks per-task progress on the beat, so the master's live status
// needs no extra RPC traffic. Since wire version 3 the beat is also the
// task-completion channel: finished attempts ride in Completions instead
// of each holding its own RPC open for the whole execution.
type Heartbeat struct {
	Worker uint64
	// Instance echoes the master-instance nonce the worker registered
	// with. Master generations restart their worker-id counter, so after
	// a restart a stale worker's old id can collide with a re-registered
	// worker's new one; the nonce mismatch forces the stale worker onto
	// the Unknown → re-register path instead of silently impersonating.
	Instance     uint64
	Seq          uint64
	Running      int64
	StoreObjects int64
	StoreBytes   int64
	TasksDone    int64
	// Prefetched is the cumulative count of shuffle segments this
	// worker's prefetcher has pulled ahead of reduce dispatch.
	Prefetched int64
	// Completions are task results finished since the last acknowledged
	// beat. The worker retains them across failed beats and resends, so
	// the master must treat them as at-least-once: stale entries (wrong
	// job, already-concluded assignment) are discarded on receipt.
	Completions []Completion

	// SentUnixNano is the worker's wall clock at send; RTTNanos is the
	// worker-measured round-trip of its previous successful beat.
	// Together they give the master one clock-offset sample per beat
	// (offset = recv - (sent + rtt/2)); the master keeps the sample with
	// the smallest RTT, whose midpoint error is tightest, and uses it to
	// place shipped span timestamps on its own clock (DESIGN.md §14).
	SentUnixNano int64
	RTTNanos     int64
	// SpanBatches carry drained trace spans under the same at-least-once
	// queue-until-acked discipline as Completions, deduplicated on the
	// master by (worker, batch Seq).
	SpanBatches []SpanBatch
	// Counters and Hists are absolute snapshots of the worker's registry
	// (sorted by name); the master merges value-minus-last-seen, which a
	// redelivered beat cannot double-count.
	Counters []MetricSample
	Hists    []HistSample
}

// Completion is one finished task attempt riding on a heartbeat. Result
// holds the wire-encoded TaskResult (EncodeResult); keeping it encoded
// inside the heartbeat lets the master discard stale completions on the
// JobSeq/assignment check without paying for a decode.
type Completion struct {
	JobSeq uint64
	Phase  Phase
	Task   int
	// Assign echoes TaskDescriptor.Assign, master-epoch offset included.
	Assign int
	Result []byte
}

// PrefetchDescriptor asks a worker to pull shuffle segments into its
// local store ahead of reduce dispatch, while the map phase is still
// running. It is advisory: the worker may drop it under load, and the
// reduce task's own fetch path skips segments that already arrived —
// so prefetch changes wall-clock overlap, never bytes or counters.
type PrefetchDescriptor struct {
	JobSeq uint64
	// Sources name the segments to pull, in the same MapSource shape a
	// reduce descriptor carries.
	Sources []MapSource
	// Ctx is the master-trace position (job span) background prefetch
	// spans are stitched under.
	Ctx trace.Context
}

// wireVersion 2 added MapSource.Prefix and the membership messages
// (JoinRequest, Retire, HandoffDescriptor). Version 3 moved task
// results and winner manifests off gob (EncodeResult / DecodeResult),
// added heartbeat completion piggybacks and the Prefetched gauge, and
// added PrefetchDescriptor. Version 4 added trace-context propagation
// (TaskDescriptor.Ctx, PrefetchDescriptor.Ctx) and telemetry shipping
// on heartbeats (SentUnixNano/RTTNanos clock samples, SpanBatches, and
// absolute Counter/Hist snapshots — wire_span.go, DESIGN.md §14).
// Decoders accept exactly the current version: master and workers ship
// from one binary (DESIGN.md §13's compatibility rule), so a mismatch
// means a stale process, and refusing it beats silently misreading
// frames.
const wireVersion = 4

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBytes appends a length-prefixed byte slice.
func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendSegment(b []byte, s *spill.Segment) []byte {
	b = appendString(b, s.Name)
	b = binary.AppendVarint(b, int64(s.Partition))
	b = binary.AppendVarint(b, s.Records)
	b = binary.AppendVarint(b, s.RawBytes)
	b = binary.AppendVarint(b, s.StoredBytes)
	b = appendBool(b, s.Compressed)
	b = binary.AppendVarint(b, int64(s.Node))
	return b
}

func appendSource(b []byte, src *MapSource) []byte {
	b = binary.AppendVarint(b, int64(src.MapTask))
	b = binary.AppendUvarint(b, src.Worker)
	b = appendString(b, src.Addr)
	b = appendString(b, src.Prefix)
	b = binary.AppendUvarint(b, uint64(len(src.Segments)))
	for j := range src.Segments {
		b = appendSegment(b, &src.Segments[j])
	}
	return b
}

// EncodeTask serializes a task descriptor into a fresh buffer. Hot paths
// use AppendTask with a pooled buffer instead.
func EncodeTask(d *TaskDescriptor) []byte {
	return AppendTask(make([]byte, 0, 64+len(d.Params)+len(d.Split)), d)
}

// AppendTask appends a wire-encoded task descriptor to b and returns the
// extended buffer (the binary.AppendUvarint convention, so callers can
// encode into pooled buffers without an allocation per message).
func AppendTask(b []byte, d *TaskDescriptor) []byte {
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, d.JobSeq)
	b = appendString(b, d.JobName)
	b = appendString(b, d.Kind)
	b = appendBytes(b, d.Params)
	b = append(b, byte(d.Phase))
	b = binary.AppendVarint(b, int64(d.Task))
	b = binary.AppendVarint(b, int64(d.Attempt))
	b = binary.AppendVarint(b, int64(d.Assign))
	b = binary.AppendVarint(b, int64(d.Node))
	b = binary.AppendVarint(b, int64(d.Round))
	b = binary.AppendVarint(b, int64(d.NumReducers))
	b = binary.AppendVarint(b, d.MemoryBudget)
	b = appendBool(b, d.Compress)
	b = binary.AppendVarint(b, int64(d.MergeFanIn))
	b = binary.AppendVarint(b, d.Seed)
	b = appendF64(b, d.DiskFailureRate)
	b = appendF64(b, d.CrashRate)
	b = appendBool(b, d.Schimmy)
	b = appendString(b, d.SchimmyBase)
	b = binary.AppendUvarint(b, uint64(len(d.SideFiles)))
	for _, s := range d.SideFiles {
		b = appendString(b, s)
	}
	b = appendBytes(b, d.Split)
	b = binary.AppendUvarint(b, uint64(len(d.Sources)))
	for i := range d.Sources {
		b = appendSource(b, &d.Sources[i])
	}
	b = appendCtx(b, &d.Ctx)
	return b
}

// EncodeHeartbeat serializes a heartbeat into a fresh buffer. Hot paths
// use AppendHeartbeat with a pooled buffer instead.
func EncodeHeartbeat(h *Heartbeat) []byte {
	return AppendHeartbeat(make([]byte, 0, 48), h)
}

// AppendHeartbeat appends a wire-encoded heartbeat, completion
// piggybacks included, to b and returns the extended buffer.
func AppendHeartbeat(b []byte, h *Heartbeat) []byte {
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, h.Worker)
	b = binary.AppendUvarint(b, h.Instance)
	b = binary.AppendUvarint(b, h.Seq)
	b = binary.AppendVarint(b, h.Running)
	b = binary.AppendVarint(b, h.StoreObjects)
	b = binary.AppendVarint(b, h.StoreBytes)
	b = binary.AppendVarint(b, h.TasksDone)
	b = binary.AppendVarint(b, h.Prefetched)
	b = binary.AppendUvarint(b, uint64(len(h.Completions)))
	for i := range h.Completions {
		c := &h.Completions[i]
		b = binary.AppendUvarint(b, c.JobSeq)
		b = append(b, byte(c.Phase))
		b = binary.AppendVarint(b, int64(c.Task))
		b = binary.AppendVarint(b, int64(c.Assign))
		b = appendBytes(b, c.Result)
	}
	b = binary.AppendVarint(b, h.SentUnixNano)
	b = binary.AppendVarint(b, h.RTTNanos)
	b = binary.AppendUvarint(b, uint64(len(h.SpanBatches)))
	for i := range h.SpanBatches {
		b = appendSpanBatchBody(b, &h.SpanBatches[i])
	}
	b = binary.AppendUvarint(b, uint64(len(h.Counters)))
	for i := range h.Counters {
		b = appendString(b, h.Counters[i].Name)
		b = binary.AppendVarint(b, h.Counters[i].Value)
	}
	b = binary.AppendUvarint(b, uint64(len(h.Hists)))
	for i := range h.Hists {
		hs := &h.Hists[i]
		b = appendString(b, hs.Name)
		b = binary.AppendVarint(b, hs.Count)
		b = binary.AppendVarint(b, hs.Sum)
		b = binary.AppendUvarint(b, uint64(len(hs.Buckets)))
		for _, n := range hs.Buckets {
			b = binary.AppendVarint(b, n)
		}
	}
	return b
}

// decoder is a bounds-checked cursor over an encoded message. Every read
// after an error returns a zero value, so decode paths need one error
// check at the end; no input can make it panic or allocate more than the
// input's own length (all counts are validated against remaining bytes).
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("distmr: corrupt %s at offset %d", what, d.off)
	}
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail(what)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

// intv decodes a varint that must fit a non-negative int.
func (d *decoder) intv(what string) int {
	v := d.varint(what)
	if v < 0 || v > math.MaxInt32 {
		d.fail(what)
		return 0
	}
	return int(v)
}

func (d *decoder) bytes(what string) []byte {
	n := d.uvarint(what)
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return nil
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v
}

func (d *decoder) str(what string) string { return string(d.bytes(what)) }

func (d *decoder) boolean(what string) bool { return d.byte(what) != 0 }

func (d *decoder) f64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// count decodes a collection length, bounded by the remaining input (each
// element takes at least one byte), so corrupt input cannot force a huge
// allocation.
func (d *decoder) count(what string) int {
	n := d.uvarint(what)
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return 0
	}
	return int(n)
}

func (d *decoder) segment(s *spill.Segment) {
	s.Name = d.str("segment name")
	s.Partition = d.intv("segment partition")
	s.Records = d.varint("segment records")
	s.RawBytes = d.varint("segment raw bytes")
	s.StoredBytes = d.varint("segment stored bytes")
	s.Compressed = d.boolean("segment compressed")
	s.Node = int(d.varint("segment node"))
}

// DecodeTask parses an encoded task descriptor. It never panics on
// malformed input.
func DecodeTask(data []byte) (*TaskDescriptor, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown task wire version %d", v)
	}
	t := &TaskDescriptor{}
	t.JobSeq = d.uvarint("job seq")
	t.JobName = d.str("job name")
	t.Kind = d.str("kind")
	t.Params = d.bytes("params")
	phase := d.byte("phase")
	if d.err == nil && phase > byte(PhaseReduce) {
		return nil, fmt.Errorf("distmr: unknown phase %d", phase)
	}
	t.Phase = Phase(phase)
	t.Task = d.intv("task")
	t.Attempt = d.intv("attempt")
	t.Assign = d.intv("assign")
	t.Node = d.intv("node")
	t.Round = d.intv("round")
	t.NumReducers = d.intv("reducers")
	t.MemoryBudget = d.varint("memory budget")
	t.Compress = d.boolean("compress")
	t.MergeFanIn = d.intv("merge fan-in")
	t.Seed = d.varint("seed")
	t.DiskFailureRate = d.f64("disk failure rate")
	t.CrashRate = d.f64("crash rate")
	t.Schimmy = d.boolean("schimmy")
	t.SchimmyBase = d.str("schimmy base")
	if n := d.count("side files"); n > 0 {
		t.SideFiles = make([]string, n)
		for i := range t.SideFiles {
			t.SideFiles[i] = d.str("side file")
		}
	}
	t.Split = d.bytes("split")
	if n := d.count("sources"); n > 0 {
		t.Sources = make([]MapSource, n)
		for i := range t.Sources {
			src := &t.Sources[i]
			src.MapTask = d.intv("source map task")
			src.Worker = d.uvarint("source worker")
			src.Addr = d.str("source addr")
			src.Prefix = d.str("source prefix")
			if m := d.count("source segments"); m > 0 {
				src.Segments = make([]spill.Segment, m)
				for j := range src.Segments {
					d.segment(&src.Segments[j])
				}
			}
		}
	}
	d.ctx(&t.Ctx)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after task descriptor", len(data)-d.off)
	}
	return t, nil
}

// JoinRequest is a worker's membership announcement, carried inside
// RegisterArgs. A mid-job join makes the worker immediately eligible for
// pending leases and shuffle serving: the scheduler's next dispatch pass
// sees it in pickWorker.
type JoinRequest struct {
	// Addr is the worker's own listen address, which the master dials
	// back for task dispatch and which reducers dial for shuffle fetches.
	Addr string
	// Pid identifies the worker process (0 for in-process workers).
	Pid int
	// PrevWorker is the id this worker held before losing its identity
	// (the master restarted, or expired it during a partition); 0 on a
	// fresh join. The master logs the lineage but always assigns a new id
	// — stale leases keyed to the old id must not resurrect.
	PrevWorker uint64
}

// Retire asks the master to drain a worker: no new leases, running
// attempts finish, completed map output is handed off through DFS, and
// only then is the worker deregistered (told to exit via its next
// heartbeat).
type Retire struct {
	Worker uint64
	// Reason is free-form ("sigterm", "autoscaler", ...), for the log.
	Reason string
}

// HandoffDescriptor lists the spill segments a draining worker must
// surrender to the master before it may deregister, so its completed map
// tasks are not re-executed.
type HandoffDescriptor struct {
	JobSeq   uint64
	Segments []string
}

// EncodeJoin serializes a join request.
func EncodeJoin(j *JoinRequest) []byte {
	b := make([]byte, 0, 32+len(j.Addr))
	b = append(b, wireVersion)
	b = appendString(b, j.Addr)
	b = binary.AppendVarint(b, int64(j.Pid))
	b = binary.AppendUvarint(b, j.PrevWorker)
	return b
}

// DecodeJoin parses an encoded join request. It never panics on
// malformed input.
func DecodeJoin(data []byte) (*JoinRequest, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown join wire version %d", v)
	}
	j := &JoinRequest{}
	j.Addr = d.str("join addr")
	j.Pid = d.intv("join pid")
	j.PrevWorker = d.uvarint("join prev worker")
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after join request", len(data)-d.off)
	}
	return j, nil
}

// EncodeRetire serializes a retire request.
func EncodeRetire(r *Retire) []byte {
	b := make([]byte, 0, 16+len(r.Reason))
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, r.Worker)
	b = appendString(b, r.Reason)
	return b
}

// DecodeRetire parses an encoded retire request. It never panics on
// malformed input.
func DecodeRetire(data []byte) (*Retire, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown retire wire version %d", v)
	}
	r := &Retire{}
	r.Worker = d.uvarint("retire worker")
	r.Reason = d.str("retire reason")
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after retire request", len(data)-d.off)
	}
	return r, nil
}

// EncodeHandoff serializes a hand-off descriptor.
func EncodeHandoff(h *HandoffDescriptor) []byte {
	b := make([]byte, 0, 16)
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, h.JobSeq)
	b = binary.AppendUvarint(b, uint64(len(h.Segments)))
	for _, s := range h.Segments {
		b = appendString(b, s)
	}
	return b
}

// DecodeHandoff parses an encoded hand-off descriptor. It never panics
// on malformed input.
func DecodeHandoff(data []byte) (*HandoffDescriptor, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown handoff wire version %d", v)
	}
	h := &HandoffDescriptor{}
	h.JobSeq = d.uvarint("handoff job seq")
	if n := d.count("handoff segments"); n > 0 {
		h.Segments = make([]string, n)
		for i := range h.Segments {
			h.Segments[i] = d.str("handoff segment")
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after handoff descriptor", len(data)-d.off)
	}
	return h, nil
}

// EncodeResult serializes a task result into a fresh buffer. Hot paths
// use AppendResult with a pooled buffer instead.
func EncodeResult(r *TaskResult) []byte {
	return AppendResult(make([]byte, 0, 128+len(r.OutputData)), r)
}

// AppendResult appends a wire-encoded task result to b and returns the
// extended buffer. Counters are emitted in sorted key order so equal
// results encode to identical bytes (the canonical-form invariant the
// fuzz targets check, DESIGN.md §13).
func AppendResult(b []byte, r *TaskResult) []byte {
	b = append(b, wireVersion)
	b = appendString(b, r.Err)
	b = binary.AppendVarint(b, r.InRecs)
	b = binary.AppendVarint(b, r.OutRecs)
	b = binary.AppendVarint(b, r.RawBytes)
	b = binary.AppendVarint(b, r.MaxFrame)
	b = binary.AppendVarint(b, r.Spills)
	b = binary.AppendUvarint(b, uint64(len(r.Parts)))
	for _, part := range r.Parts {
		b = binary.AppendUvarint(b, uint64(len(part)))
		for j := range part {
			b = appendSegment(b, &part[j])
		}
	}
	b = appendBytes(b, r.OutputData)
	b = binary.AppendVarint(b, r.OutBytes)
	b = binary.AppendVarint(b, r.OutRecords)
	b = binary.AppendVarint(b, r.Fetch)
	b = binary.AppendVarint(b, r.Inter)
	b = binary.AppendVarint(b, r.MergePasses)
	b = binary.AppendVarint(b, r.MaxMergeFanIn)
	b = binary.AppendVarint(b, r.MaxGroup)
	b = binary.AppendUvarint(b, uint64(len(r.LostMaps)))
	for _, m := range r.LostMaps {
		b = binary.AppendVarint(b, int64(m))
	}
	b = binary.AppendUvarint(b, uint64(len(r.LostFrom)))
	for _, w := range r.LostFrom {
		b = binary.AppendUvarint(b, w)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Counters)))
	if len(r.Counters) > 0 {
		keys := make([]string, 0, len(r.Counters))
		for k := range r.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendString(b, k)
			b = binary.AppendVarint(b, r.Counters[k])
		}
	}
	b = binary.AppendVarint(b, r.DurNanos)
	return b
}

// DecodeResult parses an encoded task result. It never panics on
// malformed input. Empty collections decode to nil (count 0 → nil map
// and nil slices), so decode∘encode is a fixed point on decoded values.
func DecodeResult(data []byte) (*TaskResult, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown result wire version %d", v)
	}
	r := &TaskResult{}
	r.Err = d.str("result err")
	r.InRecs = d.varint("in recs")
	r.OutRecs = d.varint("out recs")
	r.RawBytes = d.varint("raw bytes")
	r.MaxFrame = d.varint("max frame")
	r.Spills = d.varint("spills")
	if n := d.count("parts"); n > 0 {
		r.Parts = make([][]spill.Segment, n)
		for i := range r.Parts {
			if m := d.count("part segments"); m > 0 {
				r.Parts[i] = make([]spill.Segment, m)
				for j := range r.Parts[i] {
					d.segment(&r.Parts[i][j])
				}
			}
		}
	}
	if out := d.bytes("output data"); len(out) > 0 {
		r.OutputData = append([]byte(nil), out...)
	}
	r.OutBytes = d.varint("out bytes")
	r.OutRecords = d.varint("out records")
	r.Fetch = d.varint("fetch")
	r.Inter = d.varint("inter")
	r.MergePasses = d.varint("merge passes")
	r.MaxMergeFanIn = d.varint("max merge fan-in")
	r.MaxGroup = d.varint("max group")
	if n := d.count("lost maps"); n > 0 {
		r.LostMaps = make([]int, n)
		for i := range r.LostMaps {
			r.LostMaps[i] = d.intv("lost map")
		}
	}
	if n := d.count("lost from"); n > 0 {
		r.LostFrom = make([]uint64, n)
		for i := range r.LostFrom {
			r.LostFrom[i] = d.uvarint("lost from worker")
		}
	}
	if n := d.count("counters"); n > 0 {
		r.Counters = make(map[string]int64, n)
		for i := 0; i < n; i++ {
			k := d.str("counter key")
			r.Counters[k] = d.varint("counter value")
		}
	}
	r.DurNanos = d.varint("dur nanos")
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after task result", len(data)-d.off)
	}
	return r, nil
}

// EncodePrefetch serializes a prefetch descriptor into a fresh buffer.
// Hot paths use AppendPrefetch with a pooled buffer instead.
func EncodePrefetch(p *PrefetchDescriptor) []byte {
	return AppendPrefetch(make([]byte, 0, 64), p)
}

// AppendPrefetch appends a wire-encoded prefetch descriptor to b and
// returns the extended buffer.
func AppendPrefetch(b []byte, p *PrefetchDescriptor) []byte {
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, p.JobSeq)
	b = binary.AppendUvarint(b, uint64(len(p.Sources)))
	for i := range p.Sources {
		b = appendSource(b, &p.Sources[i])
	}
	b = appendCtx(b, &p.Ctx)
	return b
}

// DecodePrefetch parses an encoded prefetch descriptor. It never panics
// on malformed input.
func DecodePrefetch(data []byte) (*PrefetchDescriptor, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown prefetch wire version %d", v)
	}
	p := &PrefetchDescriptor{}
	p.JobSeq = d.uvarint("prefetch job seq")
	if n := d.count("prefetch sources"); n > 0 {
		p.Sources = make([]MapSource, n)
		for i := range p.Sources {
			src := &p.Sources[i]
			src.MapTask = d.intv("prefetch map task")
			src.Worker = d.uvarint("prefetch worker")
			src.Addr = d.str("prefetch addr")
			src.Prefix = d.str("prefetch prefix")
			if m := d.count("prefetch segments"); m > 0 {
				src.Segments = make([]spill.Segment, m)
				for j := range src.Segments {
					d.segment(&src.Segments[j])
				}
			}
		}
	}
	d.ctx(&p.Ctx)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after prefetch descriptor", len(data)-d.off)
	}
	return p, nil
}

// encodeManifest serializes a winner manifest for the job's DFS recovery
// state. Manifests are cold-path (one write per task winner), so the
// nested result is carried length-prefixed rather than pooled.
func encodeManifest(m *taskManifest) []byte {
	b := make([]byte, 0, 160)
	b = append(b, wireVersion)
	b = append(b, byte(m.Phase))
	b = binary.AppendVarint(b, int64(m.Task))
	b = binary.AppendVarint(b, int64(m.Attempt))
	b = appendBytes(b, EncodeResult(&m.Result))
	return b
}

// decodeManifest parses an encoded winner manifest. It never panics on
// malformed input.
func decodeManifest(data []byte) (*taskManifest, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown manifest wire version %d", v)
	}
	m := &taskManifest{}
	phase := d.byte("manifest phase")
	if d.err == nil && phase > byte(PhaseReduce) {
		return nil, fmt.Errorf("distmr: unknown manifest phase %d", phase)
	}
	m.Phase = Phase(phase)
	m.Task = d.intv("manifest task")
	m.Attempt = d.intv("manifest attempt")
	resBytes := d.bytes("manifest result")
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after manifest", len(data)-d.off)
	}
	res, err := DecodeResult(resBytes)
	if err != nil {
		return nil, err
	}
	m.Result = *res
	return m, nil
}

// DecodeHeartbeat parses an encoded heartbeat. It never panics on
// malformed input.
func DecodeHeartbeat(data []byte) (*Heartbeat, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown heartbeat wire version %d", v)
	}
	h := &Heartbeat{}
	h.Worker = d.uvarint("worker")
	h.Instance = d.uvarint("instance")
	h.Seq = d.uvarint("seq")
	h.Running = d.varint("running")
	h.StoreObjects = d.varint("store objects")
	h.StoreBytes = d.varint("store bytes")
	h.TasksDone = d.varint("tasks done")
	h.Prefetched = d.varint("prefetched")
	if n := d.count("completions"); n > 0 {
		h.Completions = make([]Completion, n)
		for i := range h.Completions {
			c := &h.Completions[i]
			c.JobSeq = d.uvarint("completion job seq")
			phase := d.byte("completion phase")
			if d.err == nil && phase > byte(PhaseReduce) {
				return nil, fmt.Errorf("distmr: unknown completion phase %d", phase)
			}
			c.Phase = Phase(phase)
			c.Task = d.intv("completion task")
			c.Assign = d.intv("completion assign")
			c.Result = d.bytes("completion result")
		}
	}
	h.SentUnixNano = d.varint("sent unix nano")
	h.RTTNanos = d.varint("rtt nanos")
	if n := d.count("span batches"); n > 0 {
		h.SpanBatches = make([]SpanBatch, n)
		for i := range h.SpanBatches {
			d.spanBatchBody(&h.SpanBatches[i])
		}
	}
	if n := d.count("metric samples"); n > 0 {
		h.Counters = make([]MetricSample, n)
		for i := range h.Counters {
			h.Counters[i].Name = d.str("metric name")
			h.Counters[i].Value = d.varint("metric value")
		}
	}
	if n := d.count("hist samples"); n > 0 {
		h.Hists = make([]HistSample, n)
		for i := range h.Hists {
			hs := &h.Hists[i]
			hs.Name = d.str("hist name")
			hs.Count = d.varint("hist count")
			hs.Sum = d.varint("hist sum")
			if m := d.count("hist buckets"); m > 0 {
				hs.Buckets = make([]int64, m)
				for j := range hs.Buckets {
					hs.Buckets[j] = d.varint("hist bucket")
				}
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after heartbeat", len(data)-d.off)
	}
	return h, nil
}
