package distmr

import (
	"sync/atomic"
	"time"
)

// AutoscaleConfig bounds the harness autoscaler.
type AutoscaleConfig struct {
	// Min and Max bound the number of live workers (defaults 1 and the
	// harness's configured worker count).
	Min int
	Max int
	// Interval is the hint-polling cadence (default 100ms).
	Interval time.Duration
	// QueuePerWorker is the queue depth per live worker above which the
	// autoscaler adds a worker (default 2).
	QueuePerWorker int
}

// Autoscaler watches the master's published scaling hints and grows or
// drains the harness's worker fleet in response: the same decision an
// external cluster supervisor would make from polling /status, executed
// in-process. One action per tick, so the fleet ramps rather than
// thundering.
type Autoscaler struct {
	h   *Harness
	cfg AutoscaleConfig

	scaleUps   atomic.Int64
	scaleDowns atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// StartAutoscaler begins autoscaling this harness. Stop it before Close.
func (h *Harness) StartAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	if cfg.Min <= 0 {
		cfg.Min = 1
	}
	if cfg.Max <= 0 {
		cfg.Max = h.cfg.Workers
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.QueuePerWorker <= 0 {
		cfg.QueuePerWorker = 2
	}
	a := &Autoscaler{
		h:    h,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go a.run()
	return a
}

// Stop halts the autoscaler and waits for its loop to exit.
func (a *Autoscaler) Stop() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
}

// ScaleUps returns how many workers the autoscaler has added.
func (a *Autoscaler) ScaleUps() int64 { return a.scaleUps.Load() }

// ScaleDowns returns how many drains the autoscaler has initiated.
func (a *Autoscaler) ScaleDowns() int64 { return a.scaleDowns.Load() }

func (a *Autoscaler) run() {
	defer close(a.done)
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
		}
		st := a.h.Master.Status()
		hints := st.Hints
		if hints == nil {
			continue
		}
		live := hints.WorkersLive
		switch {
		case hints.QueueDepth > a.cfg.QueuePerWorker*max(1, live) &&
			live+hints.WorkersDraining < a.cfg.Max:
			// Queue is deep for the fleet we have: add capacity. Draining
			// workers count against Max so a drain-then-add cycle cannot
			// overshoot.
			if _, err := a.h.AddWorker(); err == nil {
				a.scaleUps.Add(1)
			}
		case hints.QueueDepth == 0 && hints.InFlight == 0 && live > a.cfg.Min:
			// Idle with headroom: drain the youngest live worker. Drain,
			// not kill — its winning map output hands off through the DFS.
			if ws := a.h.liveWorkers(); len(ws) > 0 {
				ws[len(ws)-1].Drain()
				a.scaleDowns.Add(1)
			}
		}
	}
}
