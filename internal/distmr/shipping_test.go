package distmr

import (
	"bytes"
	"testing"
	"time"

	"ffmr/internal/leakcheck"
	"ffmr/internal/trace"
)

// TestSpanShippingStitchesWorkerSpans runs a job through the harness and
// asserts the master's trace ends up holding worker-recorded task and
// shuffle-fetch spans stitched under the master's job span — the whole
// DESIGN.md §14 pipeline over the real wire: worker tracer drain →
// at-least-once heartbeat batches → master dedup → clock-offset import.
// Worker registry histograms must land in the master registry the same
// way. Runs under -race in CI; leakcheck pins goroutine hygiene.
func TestSpanShippingStitchesWorkerSpans(t *testing.T) {
	defer leakcheck.Check(t)()

	tr := trace.New()
	h, err := StartHarness(HarnessConfig{Workers: 3, Tracer: tr})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()

	c := sumCluster(t, 3, 200)
	c.Distributed = h.Master
	if _, err := c.Run(sumJob(c.FS)); err != nil {
		t.Fatalf("distributed run: %v", err)
	}

	// RunJob waits for every winner's spans (telemetry is imported before
	// completions on each beat), but losing attempts' spans may trail on
	// the next beat — poll briefly for a settled export.
	var taskSpans, shuffleSpans, stitched int
	deadline := time.Now().Add(5 * time.Second)
	for {
		taskSpans, shuffleSpans, stitched = countStitched(t, tr)
		if (taskSpans > 0 && shuffleSpans > 0 && stitched == taskSpans+shuffleSpans) ||
			time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if taskSpans == 0 {
		t.Error("no worker-side task spans in the master trace")
	}
	if shuffleSpans == 0 {
		t.Error("no worker-side shuffle-fetch spans in the master trace")
	}
	if stitched != taskSpans+shuffleSpans {
		t.Errorf("%d of %d worker spans reach a job span via parents",
			stitched, taskSpans+shuffleSpans)
	}

	hists := tr.Registry().HistogramSnapshot()
	for _, name := range []string{HistTaskServiceNS, HistShuffleFetchNS, HistQueueWaitNS, HistStartTaskNS, HistHeartbeatRTTNS} {
		if hv := hists[name]; hv.Count == 0 {
			t.Errorf("histogram %q empty after a distributed run", name)
		}
	}
}

// countStitched exports the tracer and counts worker-side task and
// shuffle spans (those carrying a "worker" arg), plus how many of them
// reach a CatJob span by walking parent_span links.
func countStitched(t *testing.T, tr *trace.Tracer) (taskSpans, shuffleSpans, stitched int) {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[int64]*trace.ParsedEvent, len(events))
	for i := range events {
		if id, ok := events[i].Int("span"); ok {
			byID[id] = &events[i]
		}
	}
	reachesJob := func(e *trace.ParsedEvent) bool {
		for hops := 0; e != nil && hops < 16; hops++ {
			if e.Cat == trace.CatJob {
				return true
			}
			p, ok := e.Int("parent_span")
			if !ok {
				return false
			}
			e = byID[p]
		}
		return false
	}
	for i := range events {
		e := &events[i]
		if _, worker := e.Int("worker"); !worker {
			continue
		}
		switch e.Cat {
		case trace.CatTask:
			taskSpans++
		case trace.CatShuffle:
			shuffleSpans++
		default:
			continue
		}
		if reachesJob(e) {
			stitched++
		}
	}
	return taskSpans, shuffleSpans, stitched
}
