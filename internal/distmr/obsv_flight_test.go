package distmr

import (
	"strings"
	"testing"

	"ffmr/internal/leakcheck"
	"ffmr/internal/obsv"
)

// TestCrashedWorkerLeavesFlightDump is the flight-recorder acceptance
// test: a job runs with injected worker crashes and armed flight
// recorders, every crashed worker must leave a dump in the shared
// directory, and RenderPostmortem must produce a merged timeline that
// ends each worker's story with the cause of death.
func TestCrashedWorkerLeavesFlightDump(t *testing.T) {
	defer leakcheck.Check(t)()

	dir := t.TempDir()
	h, err := StartHarness(HarnessConfig{
		Workers:    3,
		Replace:    true,
		WorkerObsv: obsv.Options{FlightDir: dir},
	})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()

	distC := sumCluster(t, 3, 120)
	distC.Distributed = h.Master
	distC.Fault.WorkerCrashRate = 0.12
	distC.Fault.Seed = 7
	if _, err := distC.Run(sumJob(distC.FS)); err != nil {
		t.Fatalf("distributed run with crashes: %v", err)
	}

	// The crash draws are deterministic in (Seed, job, task, assign), so
	// this configuration always kills at least one worker. Wait for the
	// dead to finish dying: the dump is written on their teardown path.
	crashed := 0
	for _, w := range h.Workers() {
		if w.Crashed() {
			w.Wait()
			crashed++
		}
	}
	if crashed == 0 {
		t.Fatal("no worker died from injected crashes; the test exercised nothing")
	}

	dumps, err := obsv.ReadDumpDir(dir)
	if err != nil {
		t.Fatalf("ReadDumpDir: %v", err)
	}
	if len(dumps) != crashed {
		t.Fatalf("found %d flight dumps, want one per crashed worker (%d)", len(dumps), crashed)
	}
	for _, d := range dumps {
		if d.Header.Reason != "crash" {
			t.Errorf("dump %s has reason %q, want \"crash\"", d.Path, d.Header.Reason)
		}
		if !strings.HasPrefix(d.Header.Source, "worker-") {
			t.Errorf("dump %s has source %q, want a worker", d.Path, d.Header.Source)
		}
		if len(d.Events) == 0 {
			t.Errorf("dump %s holds no events", d.Path)
		}
	}

	var out strings.Builder
	if err := obsv.RenderPostmortem(&out, dumps); err != nil {
		t.Fatalf("RenderPostmortem: %v", err)
	}
	rendered := out.String()
	if !strings.Contains(rendered, "reason=crash") {
		t.Errorf("postmortem does not state the dump reason:\n%s", rendered)
	}
	if !strings.Contains(rendered, "injected worker crash") {
		t.Errorf("postmortem timeline is missing the cause of death:\n%s", rendered)
	}
	if !strings.Contains(rendered, "merged timeline:") {
		t.Errorf("postmortem has no merged timeline section:\n%s", rendered)
	}
}
