package distmr

import (
	"fmt"
	"log/slog"
	"net/rpc"
	"sort"
	"strconv"
	"strings"
	"time"

	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/rpcutil"
	"ffmr/internal/trace"
)

// event is one lease outcome delivered to the job's scheduler loop:
// either a completion routed off a heartbeat, or a StartTask dispatch
// that failed at the transport level (worker death on acceptance).
type event struct {
	ph     Phase
	task   int
	assign int
	w      *workerHandle
	res    *TaskResult // nil when the lease failed at the transport level
	err    error       // transport error (worker death on dispatch)
}

// dispatch is one in-flight lease: a task accepted by a worker via
// Worker.StartTask whose completion has not yet arrived on a heartbeat.
// The lease is bounded by the lease timeout and by the worker's life
// (checkLeases reclaims dispatches on dead workers).
type dispatch struct {
	w      *workerHandle
	backup bool
	start  time.Time
}

// taskState is the scheduler's view of one task. The two failure axes are
// kept apart exactly as the engine's semantics require: body failures
// (TaskResult.Err, injected FailureRate draws) advance attempt and count
// "task failures", capped by Faults.MaxAttempts; worker deaths (transport
// errors, expired leases) advance only the assignment sequence, capped by
// Config.MaxAssigns, and leave the counters untouched.
type taskState struct {
	ph   Phase
	task int
	node int

	attempt  int  // body-attempt number: the simulated engine's coordinate
	admitted bool // current attempt survived the injected-failure draws
	assigns  int  // dispatches so far, reassignments and backups included
	lastErr  error

	queued bool
	parked bool // reduce waiting for lost map outputs to be re-created
	done   bool
	// enqueuedAt is when the task last entered the run queue; launch
	// observes enqueue-to-dispatch into the queue-wait histogram.
	enqueuedAt time.Time

	winner  *TaskResult
	winnerW *workerHandle
	dur     time.Duration

	// handoff: the winning output lives in the master's DFS (drain
	// hand-off or restart rehydration), not on a worker. Reducers fetch
	// it via Master.ReadFile, and losing a worker never invalidates it.
	// persisted: PersistState copied the winner's segments and manifest
	// to DFS at completion, so a hand-off is a flag flip, not a copy.
	handoff   bool
	persisted bool

	outstanding map[int]*dispatch // assign -> in-flight lease
	specDone    bool              // a backup attempt has been launched
}

// jobRun executes one job. A single goroutine (run) owns all task state;
// lease goroutines communicate through the events channel only.
type jobRun struct {
	m      *Master
	c      *mapreduce.Cluster
	job    *mapreduce.Job
	seq    uint64
	tracer *trace.Tracer
	log    *slog.Logger
	events chan event
	cancel chan struct{}

	// jobSpan is the master-side span worker-shipped spans stitch under;
	// its id travels to workers in every descriptor's trace context.
	// started and busyNS (winning attempts' summed execution time) feed
	// the live idle-fraction scaling hint.
	jobSpan *trace.Span
	started time.Time
	busyNS  int64

	counters    *mapreduce.Counters // master-side: "task failures"
	maxAttempts int

	splits  []mapreduce.Split
	maps    []taskState
	reduces []taskState
	queue   []*taskState

	mapsDone    int
	reducesDone int
	reducesOn   bool // reduce phase opened (output prefix cleared)

	// assignBase offsets every wire Assign by the master generation's
	// epoch (PersistState only), so (task, exec) submission keys, worker
	// store prefixes and crash draws never collide with a previous
	// master's partial executions of the same job.
	assignBase int
	// segPrefix is where handed-off and persisted segments live in DFS.
	segPrefix string

	// prefetchPlan predicts, per reduce partition, the worker that will
	// likely run it, so map winners' segments can be pushed there while
	// the map phase is still running. A miss costs nothing but the
	// prefetched bytes: the reduce's own fetch path is authoritative.
	prefetchPlan []*workerHandle

	lastLive time.Time
}

// statePrefix is where a job persists its recovery state in the DFS:
// an epoch counter, per-task winner manifests, and the winners' map
// output segments. Keyed by job name (stable across master restarts).
func statePrefix(jobName string) string { return "distmr-state/" + jobName + "/" }

// taskManifest is the DFS record of one task winner (wire-encoded by
// encodeManifest), enough to rehydrate the scheduler's view of that task
// after a master restart.
type taskManifest struct {
	Phase   Phase
	Task    int
	Attempt int
	Result  TaskResult
}

// close ends the job run: every dispatch goroutine still in flight is
// released, and worker slots held by dispatches whose completions will
// never be consumed (the job failed, or finished with a late backup
// still out) are returned so the next job starts with clean slot
// accounting. The caller must have retired the completion sink first.
func (jr *jobRun) close() {
	close(jr.cancel)
	reclaim := func(tasks []taskState) {
		for i := range tasks {
			ts := &tasks[i]
			for assign, d := range ts.outstanding {
				delete(ts.outstanding, assign)
				jr.m.release(d.w)
			}
		}
	}
	reclaim(jr.maps)
	reclaim(jr.reduces)
}

func (jr *jobRun) run() (*mapreduce.Result, error) {
	job, c := jr.job, jr.c
	start := time.Now()
	jobSpan := jr.tracer.Start(trace.CatJob, job.Name, job.Parent)
	defer jobSpan.End()
	jr.jobSpan = jobSpan
	jr.started = start

	jr.counters = mapreduce.NewCounters()
	jr.maxAttempts = c.Fault.MaxAttempts
	if jr.maxAttempts < 1 {
		jr.maxAttempts = 1
	}

	res := &mapreduce.Result{}
	for _, in := range job.Inputs {
		ss, sz, err := c.PlanSplits(in)
		if err != nil {
			return nil, err
		}
		jr.splits = append(jr.splits, ss...)
		res.InputBytes += sz
	}
	res.MapTasks = len(jr.splits)
	res.ReduceTasks = job.NumReducers

	jr.segPrefix = statePrefix(job.Name) + "seg/"
	jr.maps = make([]taskState, len(jr.splits))
	for i := range jr.maps {
		jr.maps[i] = taskState{ph: PhaseMap, task: i, node: jr.splits[i].Node, outstanding: map[int]*dispatch{}}
	}
	jr.reduces = make([]taskState, job.NumReducers)
	for p := range jr.reduces {
		jr.reduces[p] = taskState{ph: PhaseReduce, task: p, node: p % c.Nodes, outstanding: map[int]*dispatch{}}
	}
	if jr.m.cfg.PersistState {
		jr.restoreState()
	}
	for i := range jr.maps {
		jr.enqueue(&jr.maps[i]) // enqueue skips restored (done) tasks
	}
	if jr.mapsDone == len(jr.maps) {
		jr.openReduce()
	}
	// Open the completion sink only now: the sinkMu handover orders every
	// write above (assignBase, task slices) before any heartbeat handler
	// routes a completion into this run. RunJob retires the sink before
	// close(), so no completion outlives the run's event loop.
	jr.m.setSink(jr)

	jr.log.Debug("job start", "maps", len(jr.maps), "reduces", len(jr.reduces))
	jr.lastLive = time.Now()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()

	for jr.reducesDone < len(jr.reduces) || !jr.reducesOn {
		if err := jr.dispatchReady(); err != nil {
			return nil, err
		}
		jr.publishStatus()
		select {
		case ev := <-jr.events:
			if err := jr.handle(ev); err != nil {
				return nil, err
			}
		case <-ticker.C:
			jr.m.checkHeartbeats()
			jr.checkLeases()
			jr.checkDrains()
			jr.checkSpeculation()
			if err := jr.checkLiveness(); err != nil {
				return nil, err
			}
		case <-jr.m.shutCh:
			return nil, fmt.Errorf("distmr: master shut down during job %q", job.Name)
		}
	}
	jr.publishStatus()

	// Assemble the Result from winning attempts only, in task order, so
	// every statistic matches the simulated engine's single-execution
	// accounting regardless of retries, crashes or backups along the way.
	mapDur := make([]time.Duration, len(jr.maps))
	for i := range jr.maps {
		r := jr.maps[i].winner
		mapDur[i] = jr.maps[i].dur
		res.MapInputRecords += r.InRecs
		res.MapOutputRecords += r.OutRecs
		res.MapOutputBytes += r.RawBytes
		if r.MaxFrame > res.MaxRecordBytes {
			res.MaxRecordBytes = r.MaxFrame
		}
		res.Spills += r.Spills
		res.SpilledBytes += r.RawBytes
	}
	reduceDur := make([]time.Duration, len(jr.reduces))
	reduceFetch := make([]int64, len(jr.reduces))
	for p := range jr.reduces {
		r := jr.reduces[p].winner
		reduceDur[p] = jr.reduces[p].dur
		reduceFetch[p] = r.Fetch
		res.ShuffleBytes += r.Fetch
		res.InterNodeShuffleBytes += r.Inter
		res.MergePasses += r.MergePasses
		if r.MaxMergeFanIn > res.MaxMergeFanIn {
			res.MaxMergeFanIn = r.MaxMergeFanIn
		}
		if r.MaxGroup > res.MaxGroupBytes {
			res.MaxGroupBytes = r.MaxGroup
		}
		res.ReduceOutputRecords += r.OutRecords
		res.OutputBytes += r.OutBytes
		if err := c.FS.WriteFile(mapreduce.PartName(job.OutputPrefix, p), r.OutputData); err != nil {
			return nil, err
		}
	}

	all := make(map[string]int64)
	addAll := func(m map[string]int64) {
		for k, v := range m {
			all[k] += v
		}
	}
	for i := range jr.maps {
		addAll(jr.maps[i].winner.Counters)
	}
	for p := range jr.reduces {
		addAll(jr.reduces[p].winner.Counters)
	}
	addAll(jr.counters.Snapshot())
	res.Counters = all

	// Workers always run the spill-backed shuffle (with a default budget)
	// for counter parity, so the merged stats are nonzero even when the
	// cluster itself is unbounded. Result promises "all zero on the
	// in-memory path", so only budgeted clusters report — and publish —
	// spill activity, exactly like the simulated engine.
	if c.MemoryBudget > 0 {
		c.PublishSpillMetrics(res, jobSpan)
	} else {
		res.Spills, res.SpilledBytes = 0, 0
		res.MergePasses, res.MaxMergeFanIn = 0, 0
	}

	res.WallTime = time.Since(start)
	res.SimTime = c.ModelSimTime(job, res, jr.splits, mapDur, reduceDur, reduceFetch)
	jobSpan.SetInt("map_tasks", int64(res.MapTasks))
	jobSpan.SetInt("reduce_tasks", int64(res.ReduceTasks))
	jobSpan.SetInt(trace.AttrMapOutRecords, res.MapOutputRecords)
	jobSpan.SetInt(trace.AttrShuffleBytes, res.ShuffleBytes)
	jobSpan.SetInt(trace.AttrOutputBytes, res.OutputBytes)
	jobSpan.SetInt("task_failures", all["task failures"])
	jobSpan.SetInt(trace.AttrSimTimeUS, res.SimTime.Microseconds())
	jr.log.Info("job done",
		"map_tasks", res.MapTasks, "reduce_tasks", res.ReduceTasks,
		"shuffle_bytes", res.ShuffleBytes, "output_bytes", res.OutputBytes,
		"task_failures", all["task failures"],
		"wall", res.WallTime, "sim", res.SimTime)
	return res, nil
}

// publishStatus hands the admin server an immutable snapshot of the
// scheduler's progress. Only the scheduler goroutine calls this, so
// reading the task states needs no lock; the handover itself goes
// through the master's statusMu.
func (jr *jobRun) publishStatus() {
	js := &obsv.JobStatus{
		Name:        jr.job.Name,
		Round:       jr.job.Round,
		Maps:        len(jr.maps),
		MapsDone:    jr.mapsDone,
		Reduces:     len(jr.reduces),
		ReducesDone: jr.reducesDone,
	}
	for i := range jr.maps {
		js.InFlight += len(jr.maps[i].outstanding)
		if jr.maps[i].queued {
			js.Queued++
		}
	}
	for p := range jr.reduces {
		js.InFlight += len(jr.reduces[p].outstanding)
		if jr.reduces[p].queued {
			js.Queued++
		}
		if jr.reduces[p].parked {
			js.Parked++
		}
	}
	// Live idle fraction: 1 - (winning execution time) / (live workers x
	// job elapsed), clamped. It under-counts busy time (running attempts
	// and losers are excluded), so it is an upper bound — the offline
	// analyzer computes the exact per-round figure from the stitched
	// trace; this is the cheap always-on scaling hint.
	idle := 0.0
	if live := jr.m.LiveWorkers(); live > 0 && !jr.started.IsZero() {
		if elapsed := time.Since(jr.started).Nanoseconds(); elapsed > 0 {
			idle = 1 - float64(jr.busyNS)/float64(int64(live)*elapsed)
			if idle < 0 {
				idle = 0
			}
			if idle > 1 {
				idle = 1
			}
		}
	}
	jr.m.setJobStatus(js, idle)
}

// openReduce transitions the job into its reduce phase: the output prefix
// is cleared (as the engine does between phases) and every reduce task
// becomes schedulable.
func (jr *jobRun) openReduce() {
	jr.reducesOn = true
	jr.c.FS.DeletePrefix(jr.job.OutputPrefix)
	for p := range jr.reduces {
		jr.enqueue(&jr.reduces[p])
	}
}

func (jr *jobRun) enqueue(ts *taskState) {
	if !ts.queued && !ts.done {
		ts.queued = true
		ts.enqueuedAt = time.Now()
		jr.queue = append(jr.queue, ts)
	}
}

func (jr *jobRun) slots() int {
	if jr.m.cfg.SlotsPerWorker > 0 {
		return jr.m.cfg.SlotsPerWorker
	}
	if jr.c.SlotsPerNode > 0 {
		return jr.c.SlotsPerNode
	}
	return 1
}

// dispatchReady hands queued tasks to workers until no eligible task
// remains or no worker has a free slot. A reduce is only eligible while
// every map task is done: its descriptor snapshots the map winners'
// segment locations, so launching one while a lost map is being re-run
// would silently merge without that map's output.
func (jr *jobRun) dispatchReady() error {
	for {
		var ts *taskState
		keep := jr.queue[:0]
		for i, t := range jr.queue {
			switch {
			case t.done:
				t.queued = false
			case ts == nil && (t.ph == PhaseMap || jr.mapsDone == len(jr.maps)):
				ts = t
			default:
				keep = append(keep, t)
			}
			if ts == t {
				keep = append(keep, jr.queue[i+1:]...)
				break
			}
		}
		jr.queue = keep
		if ts == nil {
			return nil
		}
		ts.queued = false
		if !ts.admitted {
			if err := jr.admit(ts); err != nil {
				return err
			}
		}
		if ts.assigns >= jr.m.cfg.MaxAssigns {
			return fmt.Errorf("distmr: %s %s task %d abandoned after %d assignments (worker deaths): %v",
				jr.job.Name, ts.ph, ts.task, ts.assigns, ts.lastErr)
		}
		var w *workerHandle
		if ts.ph == PhaseReduce && !jr.m.cfg.DisablePrefetch {
			// Prefer the prefetch-planned worker: its store likely already
			// holds this partition's segments, turning the fetch into a
			// local Has() hit instead of a cross-worker pull.
			w = jr.m.pickWorkerPreferring(jr.slots(), nil, jr.planWorker(ts.task))
		} else {
			w = jr.m.pickWorker(jr.slots(), nil)
		}
		if w == nil {
			jr.enqueue(ts)
			return nil // no capacity; the ticker retries
		}
		jr.launch(ts, w, false)
	}
}

// admit consumes the injected-failure draws for the task's next attempts,
// using the exact coordinates and counter the simulated engine's
// runAttempts uses, so a given Faults.Seed injects the same failures and
// reports the same "task failures" count on either backend.
func (jr *jobRun) admit(ts *taskState) error {
	rate := jr.c.Fault.FailureRate
	for {
		if ts.attempt >= jr.maxAttempts {
			return fmt.Errorf("mapreduce: %s %s task %d failed after %d attempts: %w",
				jr.job.Name, ts.ph, ts.task, jr.maxAttempts, ts.lastErr)
		}
		if rate > 0 && mapreduce.InjectHash(jr.c.Fault.Seed, jr.job.Name, ts.ph.String(), ts.task, ts.attempt) < rate {
			jr.counters.Add("task failures", 1)
			ts.lastErr = fmt.Errorf("mapreduce: %s %s task %d attempt %d: injected worker failure",
				jr.job.Name, ts.ph, ts.task, ts.attempt)
			ts.attempt++
			continue
		}
		ts.admitted = true
		return nil
	}
}

// launch starts one lease: the task descriptor is handed to the worker
// via the non-blocking Worker.StartTask, and the lease lives as an
// outstanding dispatch until its completion arrives on a heartbeat
// (routed through acceptCompletions) or checkLeases reclaims it. Only a
// failed StartTask posts an event from here — a prompt worker-death
// signal (the injected crash draw happens inside the accepting handler).
// The worker slot is held by the dispatch and released wherever the
// dispatch is consumed: handle, checkLeases, or close.
func (jr *jobRun) launch(ts *taskState, w *workerHandle, backup bool) {
	assign := ts.assigns
	ts.assigns++
	ts.outstanding[assign] = &dispatch{w: w, backup: backup, start: time.Now()}
	if backup {
		ts.specDone = true
		jr.m.registry().Counter(CounterBackups).Add(1)
		jr.log.Info("speculative backup launched",
			"phase", ts.ph.String(), "task", ts.task, "assign", assign, "worker", w.id)
	} else if !ts.enqueuedAt.IsZero() {
		// Queue wait: enqueue to dispatch. Backups never queued, and a
		// re-enqueue restamps, so each observation is one queue pass.
		jr.tracer.Registry().Histogram(HistQueueWaitNS).ObserveSince(ts.enqueuedAt)
		ts.enqueuedAt = time.Time{}
	}
	buf := rpcutil.GetBuf()
	*buf = AppendTask(*buf, jr.descriptor(ts, assign))
	args := &StartTaskArgs{Desc: *buf}
	ph, task := ts.ph, ts.task
	// The dispatch RPC gets its own master-side span and round-trip
	// histogram entry: against the worker-side task span it shows how
	// much of a wave is transport versus execution.
	rpcSpan := jr.tracer.Start(trace.CatRPC, fmt.Sprintf("start-task %s-%05d", ph, task), jr.jobSpan)
	rpcSpan.SetInt("to_worker", int64(w.id))
	rpcStart := time.Now()
	go func() {
		call := w.client.Go("Worker.StartTask", args, &StartTaskReply{}, make(chan *rpc.Call, 1))
		select {
		case <-call.Done:
			rpcutil.PutBuf(buf) // the transport wrote (or abandoned) the bytes
			jr.tracer.Registry().Histogram(HistStartTaskNS).ObserveSince(rpcStart)
			rpcSpan.End()
			if call.Error == nil {
				return // accepted; the result will ride a heartbeat
			}
			ev := event{ph: ph, task: task, assign: assign, w: w, err: call.Error}
			select {
			case jr.events <- ev:
			case <-jr.cancel:
			}
		case <-jr.cancel:
			// The codec may still reference buf; let the GC take it.
			rpcSpan.End()
		}
	}()
}

// acceptCompletions routes a heartbeat's completion batch into the
// scheduler's event loop. It runs on the heartbeat handler's goroutine
// (after the master's registry lock is released): stale entries — wrong
// job, out-of-range task, undecodable result — are dropped here, and
// already-settled assignments die in handle's outstanding lookup, so
// the at-least-once resend discipline worker-side needs no master-side
// acknowledgement protocol.
func (jr *jobRun) acceptCompletions(w *workerHandle, comps []Completion) {
	for i := range comps {
		c := &comps[i]
		if c.JobSeq != jr.seq {
			continue // a previous job (or master generation); settled long ago
		}
		switch c.Phase {
		case PhaseMap:
			if c.Task < 0 || c.Task >= len(jr.maps) {
				continue
			}
		case PhaseReduce:
			if c.Task < 0 || c.Task >= len(jr.reduces) {
				continue
			}
		default:
			continue
		}
		res, err := DecodeResult(c.Result)
		if err != nil {
			// Same-binary framing should never corrupt; drop the entry and
			// let the lease scan reassign if the worker really is wedged.
			jr.log.Warn("undecodable completion dropped",
				"worker", w.id, "phase", c.Phase.String(), "task", c.Task, "err", err)
			continue
		}
		ev := event{ph: c.Phase, task: c.Task, assign: c.Assign - jr.assignBase, w: w, res: res}
		select {
		case jr.events <- ev:
		case <-jr.cancel:
			return
		}
	}
}

// descriptor builds the wire task for one assignment. Everything a worker
// needs travels here, so any worker can execute any assignment of the
// task and produce the identical result.
func (jr *jobRun) descriptor(ts *taskState, assign int) *TaskDescriptor {
	c, job := jr.c, jr.job
	d := &TaskDescriptor{
		JobSeq:       jr.seq,
		JobName:      job.Name,
		Kind:         job.Spec.Kind,
		Params:       job.Spec.Params,
		Phase:        ts.ph,
		Task:         ts.task,
		Attempt:      ts.attempt,
		Assign:       jr.assignBase + assign,
		Node:         ts.node,
		Round:        job.Round,
		NumReducers:  job.NumReducers,
		MemoryBudget: c.MemoryBudget,
		Compress:     c.SpillCompress,
		MergeFanIn:   c.MergeFanIn,
		Seed:         c.Fault.Seed,
		CrashRate:    c.Fault.WorkerCrashRate,
		SideFiles:    job.SideFiles,
		Ctx:          jr.ctx(),
	}
	// The simulated engine only draws spill failures on its out-of-core
	// path; the distributed worker always spills, so the draw is gated on
	// the budget to keep the injected failure sets identical.
	if c.MemoryBudget > 0 {
		d.DiskFailureRate = c.Fault.DiskFailureRate
	}
	if ts.ph == PhaseMap {
		d.Split = jr.splits[ts.task].Data
	} else {
		d.Schimmy = job.Schimmy
		d.SchimmyBase = job.SchimmyBase
		d.Sources = jr.sources(ts.task)
	}
	return d
}

// ctx is the trace position every descriptor of this job carries (§14):
// worker-recorded root spans stitch under the job span named here.
func (jr *jobRun) ctx() trace.Context {
	return trace.Context{
		Run:   jr.job.Parent.ID(),
		Job:   int64(jr.seq),
		Round: int64(jr.job.Round),
		Span:  jr.jobSpan.ID(),
	}
}

// importSpans stitches one worker span batch into the job tracer. Spans
// arrive in id order with parents before children (Drain's contract), so
// one forward pass remaps worker-local parent ids; root spans attach
// under the master-side span their shipped context names. offset is the
// worker's estimated clock offset; spans from another job sequence (a
// late batch outliving its job) are dropped. Runs on the heartbeat
// handler's goroutine — the tracer carries its own lock.
func (jr *jobRun) importSpans(spans []trace.ShippedSpan, offset int64) {
	remap := make(map[int64]int64, len(spans))
	for i := range spans {
		sp := &spans[i]
		if sp.Remote.Job != int64(jr.seq) {
			continue
		}
		parent := sp.Remote.Span
		if sp.Parent != 0 {
			if p, ok := remap[sp.Parent]; ok {
				parent = p
			}
		}
		remap[sp.ID] = jr.tracer.Import(&trace.ImportedSpan{
			Parent: parent,
			Name:   sp.Name,
			Cat:    sp.Cat,
			TID:    sp.TID,
			Start:  time.Unix(0, sp.Start.UnixNano()+offset),
			Dur:    sp.Dur,
			Attrs:  sp.Attrs,
		})
	}
}

// sources lists, in map-task order, where a reduce partition's segments
// live right now — the same order the simulated engine's partSegments
// walks, so merge statistics agree.
func (jr *jobRun) sources(p int) []MapSource {
	srcs := make([]MapSource, 0, len(jr.maps))
	for i := range jr.maps {
		mt := &jr.maps[i]
		if mt.winner == nil || p >= len(mt.winner.Parts) {
			continue
		}
		segs := mt.winner.Parts[p]
		if len(segs) == 0 {
			continue
		}
		if mt.handoff {
			// The output was handed off (drain) or rehydrated (restart):
			// it is served from DFS, with metadata untouched, so fetch and
			// inter-node accounting stay byte-identical.
			srcs = append(srcs, MapSource{MapTask: i, Prefix: jr.segPrefix, Segments: segs})
		} else {
			srcs = append(srcs, MapSource{MapTask: i, Worker: mt.winnerW.id, Addr: mt.winnerW.addr, Segments: segs})
		}
	}
	return srcs
}

// handle processes one lease outcome. Duplicate completions (a worker's
// at-least-once resend, or a completion racing the lease scan) die on
// the outstanding lookup: the first consumer deleted the dispatch, so
// the duplicate finds nothing and is dropped without effect.
func (jr *jobRun) handle(ev event) error {
	var ts *taskState
	if ev.ph == PhaseMap {
		ts = &jr.maps[ev.task]
	} else {
		ts = &jr.reduces[ev.task]
	}
	d := ts.outstanding[ev.assign]
	if d == nil {
		return nil // retired dispatch (task already concluded, or a resend)
	}
	delete(ts.outstanding, ev.assign)
	jr.m.release(d.w)

	if ev.err != nil {
		// Transport failure on dispatch: the worker is gone. The task is
		// reassigned on a fresh assignment without consuming a body
		// attempt — a worker death is not a task failure.
		jr.m.markDead(ev.w)
		jr.leaseFailed(ts, d, ev.assign, ev.err)
		return nil
	}

	res := ev.res
	if ts.done {
		return nil // a late backup lost the race; its result is discarded
	}
	if res.Err != "" {
		if d.backup {
			// Only the primary chain consumes attempts and counters, so
			// duplicated deterministic failures are not double-counted.
			ts.specDone = false
			return nil
		}
		jr.counters.Add("task failures", 1)
		ts.lastErr = fmt.Errorf("mapreduce: %s", res.Err)
		jr.log.Warn("task attempt failed",
			"phase", ts.ph.String(), "task", ts.task, "attempt", ts.attempt,
			"worker", ev.w.id, "err", res.Err)
		ts.attempt++
		ts.admitted = false
		jr.enqueue(ts)
		return nil
	}
	if len(res.LostMaps) > 0 {
		// The shuffle fetch failed: those map outputs died with their
		// worker. Park the reduce, re-run the maps, re-dispatch when the
		// outputs exist again.
		jr.log.Warn("shuffle fetch lost map outputs",
			"reduce", ts.task, "worker", ev.w.id, "lost_maps", len(res.LostMaps))
		ts.parked = true
		for i, mt := range res.LostMaps {
			var from uint64
			if i < len(res.LostFrom) {
				from = res.LostFrom[i]
			}
			jr.invalidateMap(mt, from)
		}
		if jr.mapsDone == len(jr.maps) {
			// Every lost map was already re-run by the time this report
			// arrived; the reduce can go straight back out.
			jr.unpark()
		}
		return nil
	}

	ts.done = true
	ts.parked = false
	ts.winner = res
	ts.winnerW = ev.w
	ts.dur = time.Duration(res.DurNanos)
	jr.busyNS += res.DurNanos
	if jr.m.cfg.PersistState {
		jr.persistWinner(ts)
	}
	if ev.ph == PhaseMap {
		jr.mapsDone++
		jr.pushPrefetch(ts)
		if jr.mapsDone == len(jr.maps) {
			if !jr.reducesOn {
				jr.openReduce()
			} else {
				jr.unpark()
			}
		}
	} else {
		jr.reducesDone++
	}
	return nil
}

// leaseFailed concludes a dispatch that died with its worker (StartTask
// transport error, lease expiry, or the worker dying mid-execution).
// The dispatch has already been removed and its slot released; this
// handles the task-level consequences: backups just clear the
// speculation latch, primaries reassign without consuming an attempt.
func (jr *jobRun) leaseFailed(ts *taskState, d *dispatch, assign int, err error) {
	if ts.done {
		return
	}
	ts.lastErr = err
	if d.backup {
		ts.specDone = false
		return
	}
	jr.m.registry().Counter(CounterReassigns).Add(1)
	jr.log.Warn("lease failed, reassigning",
		"phase", ts.ph.String(), "task", ts.task, "assign", assign,
		"worker", d.w.id, "err", err)
	jr.enqueue(ts)
}

// checkLeases reclaims outstanding dispatches whose worker has died (the
// watch or heartbeat machinery marked it) or whose lease timed out. This
// replaces the old per-dispatch timer goroutine: with completions
// arriving on heartbeats instead of per-task calls, worker death no
// longer errors an in-flight RPC per task, so the scan is where those
// leases come back.
func (jr *jobRun) checkLeases() {
	now := time.Now()
	scan := func(tasks []taskState) {
		for i := range tasks {
			ts := &tasks[i]
			for assign, d := range ts.outstanding {
				alive := jr.m.workerAlive(d.w)
				expired := now.Sub(d.start) > jr.m.cfg.LeaseTimeout
				if alive && !expired {
					continue
				}
				delete(ts.outstanding, assign)
				jr.m.release(d.w)
				var err error
				if !alive {
					err = fmt.Errorf("distmr: worker %d died holding the lease", d.w.id)
				} else {
					err = fmt.Errorf("distmr: lease expired after %v", jr.m.cfg.LeaseTimeout)
					jr.m.markDead(d.w)
				}
				jr.leaseFailed(ts, d, assign, err)
			}
		}
	}
	scan(jr.maps)
	scan(jr.reduces)
}

// planWorker predicts (and pins) the worker that will run reduce p, for
// prefetch targeting. The pin is revisited when the planned worker dies.
func (jr *jobRun) planWorker(p int) *workerHandle {
	if jr.prefetchPlan == nil {
		jr.prefetchPlan = make([]*workerHandle, len(jr.reduces))
	}
	if w := jr.prefetchPlan[p]; w != nil && jr.m.workerAlive(w) {
		return w
	}
	jr.prefetchPlan[p] = jr.m.nthLiveWorker(p)
	return jr.prefetchPlan[p]
}

// pushPrefetch hints the planned reducer workers about a freshly won map
// task's segments, so they pull shuffle data while the map phase is
// still running. Purely advisory: errors and drops are ignored, and the
// reduce fetch path re-verifies every segment — counters cannot change.
func (jr *jobRun) pushPrefetch(mt *taskState) {
	if jr.m.cfg.DisablePrefetch || mt.handoff || mt.winnerW == nil {
		return
	}
	byWorker := make(map[*workerHandle][]MapSource)
	for p := range jr.reduces {
		if jr.reduces[p].done || p >= len(mt.winner.Parts) {
			continue
		}
		segs := mt.winner.Parts[p]
		if len(segs) == 0 {
			continue
		}
		w := jr.planWorker(p)
		if w == nil || w == mt.winnerW {
			continue // no live target, or the data is already local there
		}
		byWorker[w] = append(byWorker[w], MapSource{
			MapTask: mt.task, Worker: mt.winnerW.id, Addr: mt.winnerW.addr, Segments: segs,
		})
	}
	for w, srcs := range byWorker {
		buf := rpcutil.GetBuf()
		*buf = AppendPrefetch(*buf, &PrefetchDescriptor{JobSeq: jr.seq, Ctx: jr.ctx(), Sources: srcs})
		jr.m.registry().Counter(CounterPrefetchPushes).Add(1)
		go func(w *workerHandle, buf *[]byte) {
			call := w.client.Go("Worker.Prefetch", &PrefetchArgs{Desc: *buf}, &PrefetchReply{}, make(chan *rpc.Call, 1))
			select {
			case <-call.Done: // advisory: the error, if any, is ignored
				rpcutil.PutBuf(buf)
			case <-jr.cancel:
			}
		}(w, buf)
	}
}

// invalidateMap returns a completed map task to the queue because its
// winning output is unreachable. from is the worker the failed fetch
// targeted: if the task's current winner lives elsewhere (it was already
// re-run after that worker died), the output the next dispatch will be
// pointed at is fine and nothing is invalidated — otherwise every
// straggling reduce that fetched from the dead worker would re-run the
// map once more, burning an assignment each time.
func (jr *jobRun) invalidateMap(mt int, from uint64) {
	if mt < 0 || mt >= len(jr.maps) {
		return
	}
	ts := &jr.maps[mt]
	if !ts.done {
		return // already being re-run
	}
	if ts.handoff {
		return // output lives in DFS; no worker death can lose it
	}
	if ts.persisted {
		// The winner's segments are already in DFS (PersistState copies
		// them at completion): repoint the reduce at them instead of
		// re-executing the map — the drain invariant, applied to a crash.
		ts.handoff = true
		jr.m.registry().Counter(CounterHandoffSegments).Add(1)
		jr.log.Info("lost map served from persisted state", "map", mt, "worker", from)
		return
	}
	if ts.winnerW != nil && ts.winnerW.id != from {
		return // winner already moved to another worker
	}
	ts.done = false
	ts.winner = nil
	ts.winnerW = nil
	jr.mapsDone--
	jr.m.registry().Counter(CounterLostMapRecoveries).Add(1)
	jr.log.Warn("re-running map with lost outputs", "map", mt, "worker", from)
	jr.enqueue(ts)
}

// checkDrains completes graceful drains while the job runs. A draining
// worker receives no new leases (pickWorker skips it); once its running
// attempts have finished, every winning map output still living on it is
// handed off through DFS, its tasks' sources are repointed, and only
// then is the worker deregistered. Completed map tasks are never
// re-executed by a drain — that is the invariant the attempt counters in
// the drain tests pin down.
func (jr *jobRun) checkDrains() {
	for _, w := range jr.m.drainingWorkers() {
		if jr.m.workerRunning(w) > 0 {
			continue // running attempts finish first
		}
		if !jr.handoffWorker(w) {
			continue
		}
		jr.m.completeDrain(w)
	}
}

// handoffWorker pulls every winning map segment still living on w into
// the job's DFS state prefix and flips those tasks to hand-off serving.
// Returns false when the hand-off could not complete this tick (the
// worker died mid-drain — normal crash recovery re-executes instead, or
// a transient DFS error — retried next tick).
func (jr *jobRun) handoffWorker(w *workerHandle) bool {
	var tasks []*taskState
	var names []string
	for i := range jr.maps {
		ts := &jr.maps[i]
		if !ts.done || ts.winnerW != w || ts.handoff {
			continue
		}
		tasks = append(tasks, ts)
		if ts.persisted {
			continue // segments already copied to DFS at completion
		}
		for _, segs := range ts.winner.Parts {
			for j := range segs {
				names = append(names, segs[j].Name)
			}
		}
	}
	if len(names) > 0 {
		args := &HandoffArgs{Desc: EncodeHandoff(&HandoffDescriptor{JobSeq: jr.seq, Segments: names})}
		reply := &HandoffReply{}
		if err := w.client.Call("Worker.Handoff", args, reply); err != nil {
			jr.log.Warn("drain hand-off failed; treating worker as dead", "worker", w.id, "err", err)
			jr.m.markDead(w)
			return false
		}
		if len(reply.Data) != len(names) {
			jr.log.Warn("drain hand-off returned short data; treating worker as dead",
				"worker", w.id, "want", len(names), "got", len(reply.Data))
			jr.m.markDead(w)
			return false
		}
		for i, name := range names {
			if err := jr.c.FS.WriteFile(jr.segPrefix+name, reply.Data[i]); err != nil {
				jr.log.Warn("drain hand-off DFS write failed; will retry", "worker", w.id, "err", err)
				return false
			}
		}
		jr.m.registry().Counter(CounterHandoffSegments).Add(int64(len(names)))
	}
	for _, ts := range tasks {
		ts.handoff = true
	}
	if len(tasks) > 0 {
		jr.log.Info("drain hand-off complete", "worker", w.id,
			"maps", len(tasks), "segments", len(names))
	}
	return true
}

// persistWinner writes a completed task's winner to DFS (PersistState):
// for maps, the output segments are first pulled from the winning worker
// into the state prefix; then a manifest records the winner. The
// manifest is written last, so a crash mid-persist leaves at worst
// orphaned segment files, never a manifest pointing at missing data. A
// failed persist is logged and skipped — the task simply is not
// restorable, and a restarted master re-executes it.
func (jr *jobRun) persistWinner(ts *taskState) {
	if ts.ph == PhaseMap {
		var names []string
		for _, segs := range ts.winner.Parts {
			for j := range segs {
				names = append(names, segs[j].Name)
			}
		}
		if len(names) > 0 {
			args := &HandoffArgs{Desc: EncodeHandoff(&HandoffDescriptor{JobSeq: jr.seq, Segments: names})}
			reply := &HandoffReply{}
			if err := ts.winnerW.client.Call("Worker.Handoff", args, reply); err != nil || len(reply.Data) != len(names) {
				jr.log.Warn("winner persist: segment pull failed", "phase", ts.ph.String(),
					"task", ts.task, "worker", ts.winnerW.id, "err", err)
				return
			}
			for i, name := range names {
				if err := jr.c.FS.WriteFile(jr.segPrefix+name, reply.Data[i]); err != nil {
					jr.log.Warn("winner persist: DFS write failed", "task", ts.task, "err", err)
					return
				}
			}
		}
	}
	man := taskManifest{Phase: ts.ph, Task: ts.task, Attempt: ts.attempt, Result: *ts.winner}
	name := fmt.Sprintf("%stask/%s-%05d", statePrefix(jr.job.Name), ts.ph, ts.task)
	if err := jr.c.FS.WriteFile(name, encodeManifest(&man)); err != nil {
		jr.log.Warn("winner persist: manifest write failed", "task", ts.task, "err", err)
		return
	}
	ts.persisted = true
}

// restoreState rehydrates the scheduler from DFS-persisted job state
// (PersistState): completed tasks become winners again — maps served
// from the state prefix via hand-off, reduces with their output data —
// and their failed body attempts are re-counted so "task failures"
// matches a single uninterrupted run. It also advances the job's epoch,
// offsetting every new Assign so (task, exec) submission keys from the
// previous master generation can never collide with this one's —
// aug_proc's DeterministicAccept dedup then keeps exactly one complete
// execution per reduce, exactly as DESIGN.md §7 requires.
func (jr *jobRun) restoreState() {
	fs := jr.c.FS
	prefix := statePrefix(jr.job.Name)
	epoch := 0
	if data, err := fs.ReadFile(prefix + "epoch"); err == nil {
		if n, err := strconv.Atoi(strings.TrimSpace(string(data))); err == nil && n > 0 {
			epoch = n
		}
	}
	jr.assignBase = epoch * jr.m.cfg.MaxAssigns
	if err := fs.WriteFile(prefix+"epoch", []byte(strconv.Itoa(epoch+1))); err != nil {
		jr.log.Warn("state restore: epoch write failed", "err", err)
	}
	restored := 0
	for _, name := range fs.List(prefix + "task/") {
		data, err := fs.ReadFile(name)
		if err != nil {
			continue
		}
		man, err := decodeManifest(data)
		if err != nil {
			jr.log.Warn("state restore: corrupt manifest skipped", "name", name, "err", err)
			continue
		}
		var ts *taskState
		switch {
		case man.Phase == PhaseMap && man.Task >= 0 && man.Task < len(jr.maps):
			ts = &jr.maps[man.Task]
		case man.Phase == PhaseReduce && man.Task >= 0 && man.Task < len(jr.reduces):
			ts = &jr.reduces[man.Task]
		default:
			jr.log.Warn("state restore: manifest out of range skipped", "name", name)
			continue
		}
		if ts.done {
			continue
		}
		res := man.Result
		ts.done = true
		ts.winner = &res
		ts.attempt = man.Attempt
		ts.handoff = true
		ts.persisted = true
		ts.dur = time.Duration(res.DurNanos)
		if man.Phase == PhaseMap {
			jr.mapsDone++
		} else {
			jr.reducesDone++
		}
		// The previous generation's master counted these failed body
		// attempts into counters that died with it; re-count them here so
		// the job's "task failures" matches an uninterrupted run.
		if man.Attempt > 0 {
			jr.counters.Add("task failures", int64(man.Attempt))
		}
		restored++
	}
	if restored > 0 {
		jr.m.registry().Counter(CounterRestoredTasks).Add(int64(restored))
		jr.log.Info("scheduler state rehydrated from DFS", "epoch", epoch,
			"restored", restored, "maps_done", jr.mapsDone, "reduces_done", jr.reducesDone)
	}
}

// unpark re-dispatches reduces that were waiting for lost map outputs.
func (jr *jobRun) unpark() {
	for p := range jr.reduces {
		ts := &jr.reduces[p]
		if ts.parked && !ts.done {
			ts.parked = false
			jr.enqueue(ts)
		}
	}
}

// checkSpeculation launches cross-worker backup attempts for stragglers.
// Map tasks are always eligible when the job opted in; reduce tasks only
// when re-execution is side-effect free (no job service to double-submit
// to, no schimmy partition alignment to double-write).
func (jr *jobRun) checkSpeculation() {
	if !jr.job.Speculative {
		return
	}
	jr.spec(jr.maps, jr.mapsDone)
	// Reduce backups additionally wait for every map to be done: a
	// backup's descriptor snapshots map winners, so launching one while a
	// lost map re-runs would merge an incomplete segment set.
	if jr.job.Service == nil && !jr.job.Schimmy && jr.mapsDone == len(jr.maps) {
		jr.spec(jr.reduces, jr.reducesDone)
	}
}

func (jr *jobRun) spec(tasks []taskState, done int) {
	n := len(tasks)
	if n == 0 || done == 0 || float64(done) < jr.m.cfg.SpeculativeFraction*float64(n) {
		return
	}
	durs := make([]time.Duration, 0, done)
	for i := range tasks {
		if tasks[i].done {
			durs = append(durs, tasks[i].dur)
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	median := durs[len(durs)/2]
	threshold := time.Duration(jr.m.cfg.SpeculativeFactor * float64(median))
	if threshold <= 0 {
		return
	}
	for i := range tasks {
		ts := &tasks[i]
		if ts.done || ts.parked || ts.specDone || len(ts.outstanding) != 1 {
			continue
		}
		var cur *dispatch
		for _, d := range ts.outstanding {
			cur = d
		}
		if cur.backup || time.Since(cur.start) <= threshold {
			continue
		}
		if ts.assigns >= jr.m.cfg.MaxAssigns {
			continue
		}
		w := jr.m.pickWorker(jr.slots(), cur.w)
		if w == nil {
			return // no spare capacity for backups right now
		}
		jr.launch(ts, w, true)
	}
}

// checkLiveness fails the job if work is pending but no worker has been
// alive for the configured wait.
func (jr *jobRun) checkLiveness() error {
	if jr.m.LiveWorkers() > 0 {
		jr.lastLive = time.Now()
		return nil
	}
	if len(jr.queue) > 0 && time.Since(jr.lastLive) > jr.m.cfg.WorkerWait {
		return fmt.Errorf("distmr: job %q: no live workers for %v", jr.job.Name, jr.m.cfg.WorkerWait)
	}
	return nil
}
