package distmr

import (
	"reflect"
	"strings"
	"testing"

	"ffmr/internal/spill"
)

func sampleTask() *TaskDescriptor {
	return &TaskDescriptor{
		JobSeq:  42,
		JobName: "ff-round-3",
		Kind:    "core/ff-round",
		Params:  []byte{0x01, 0x02, 0x00, 0xff},
		Phase:   PhaseReduce,
		Task:    7,
		Attempt: 1,
		Assign:  4,
		Node:    2,
		Round:   3,

		NumReducers:  6,
		MemoryBudget: 1 << 10,
		Compress:     true,
		MergeFanIn:   2,

		Seed:            -99,
		DiskFailureRate: 0.001,
		CrashRate:       0.02,

		Schimmy:     true,
		SchimmyBase: "ff/round-2/",
		SideFiles:   []string{"ff/deltas-3", "ff/meta"},
		Split:       []byte("record-aligned split bytes"),
		Sources: []MapSource{
			{MapTask: 0, Worker: 3, Addr: "127.0.0.1:4001", Segments: []spill.Segment{
				{Name: "j42-m0-a0-p1-s0", Partition: 1, Records: 10, RawBytes: 512, StoredBytes: 300, Compressed: true, Node: 1},
				{Name: "j42-m0-a0-p1-s1", Partition: 1, Records: 4, RawBytes: 128, StoredBytes: 128, Node: 1},
			}},
			{MapTask: 1, Worker: 5, Addr: "127.0.0.1:4002"},
			{MapTask: 2, Prefix: "distmr-state/ff-round-3/seg/", Segments: []spill.Segment{
				{Name: "j42-m2-a1-p1-s0", Partition: 1, Records: 6, RawBytes: 256, StoredBytes: 256, Node: 0},
			}},
		},
	}
}

func TestTaskDescriptorRoundTrip(t *testing.T) {
	cases := []*TaskDescriptor{
		sampleTask(),
		{JobName: "minimal", Kind: "k", Phase: PhaseMap}, // all-zero optionals
	}
	for _, want := range cases {
		enc := EncodeTask(want)
		got, err := DecodeTask(enc)
		if err != nil {
			t.Fatalf("DecodeTask(%q): %v", want.JobName, err)
		}
		// Canonical-bytes equality sidesteps nil-vs-empty slice noise;
		// DeepEqual on the fully populated sample pins field fidelity.
		if re := EncodeTask(got); string(re) != string(enc) {
			t.Errorf("task %q does not re-encode canonically", want.JobName)
		}
		if want.JobSeq != 0 && !reflect.DeepEqual(got, want) {
			t.Errorf("task %q round trip mismatch:\n got  %+v\n want %+v", want.JobName, got, want)
		}
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	want := &Heartbeat{Worker: 9, Instance: 1700000000123456789, Seq: 1234, Running: 3, StoreObjects: 77, StoreBytes: 1 << 20}
	got, err := DecodeHeartbeat(EncodeHeartbeat(want))
	if err != nil {
		t.Fatalf("DecodeHeartbeat: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("heartbeat round trip mismatch:\n got  %+v\n want %+v", got, want)
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	enc := EncodeTask(sampleTask())

	// Every truncation must fail cleanly, never panic.
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeTask(enc[:n]); err == nil {
			t.Fatalf("DecodeTask accepted a %d-byte truncation of a %d-byte descriptor", n, len(enc))
		}
	}

	if _, err := DecodeTask(append(append([]byte(nil), enc...), 0)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing byte: got %v, want trailing-bytes error", err)
	}

	bad := append([]byte(nil), enc...)
	bad[0] = wireVersion + 1
	if _, err := DecodeTask(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: got %v, want version error", err)
	}

	hb := EncodeHeartbeat(&Heartbeat{Worker: 1, Seq: 2})
	for n := 0; n < len(hb); n++ {
		if _, err := DecodeHeartbeat(hb[:n]); err == nil {
			t.Fatalf("DecodeHeartbeat accepted a %d-byte truncation", n)
		}
	}
	if _, err := DecodeHeartbeat(append(append([]byte(nil), hb...), 7)); err == nil {
		t.Error("DecodeHeartbeat accepted trailing bytes")
	}
}

// TestMembershipMessageRoundTrips covers the join/retire/hand-off wire
// messages added for elastic membership.
func TestMembershipMessageRoundTrips(t *testing.T) {
	join := &JoinRequest{Addr: "127.0.0.1:5001", Pid: 4242, PrevWorker: 17}
	if got, err := DecodeJoin(EncodeJoin(join)); err != nil || !reflect.DeepEqual(got, join) {
		t.Errorf("join round trip: got %+v, %v; want %+v", got, err, join)
	}
	joinZero := &JoinRequest{}
	if got, err := DecodeJoin(EncodeJoin(joinZero)); err != nil || !reflect.DeepEqual(got, joinZero) {
		t.Errorf("zero join round trip: got %+v, %v", got, err)
	}

	retire := &Retire{Worker: 9, Reason: "autoscaler scale-down"}
	if got, err := DecodeRetire(EncodeRetire(retire)); err != nil || !reflect.DeepEqual(got, retire) {
		t.Errorf("retire round trip: got %+v, %v; want %+v", got, err, retire)
	}

	handoff := &HandoffDescriptor{JobSeq: 42, Segments: []string{"j42-m0-a0-p1-s0", "j42-m0-a0-p2-s0"}}
	if got, err := DecodeHandoff(EncodeHandoff(handoff)); err != nil || !reflect.DeepEqual(got, handoff) {
		t.Errorf("handoff round trip: got %+v, %v; want %+v", got, err, handoff)
	}
	empty := &HandoffDescriptor{JobSeq: 1}
	if got, err := DecodeHandoff(EncodeHandoff(empty)); err != nil {
		t.Errorf("empty handoff round trip: %v", err)
	} else if got.JobSeq != 1 || len(got.Segments) != 0 {
		t.Errorf("empty handoff round trip: got %+v", got)
	}
}

// TestMembershipMessagesRejectCorruptInput mirrors the task/heartbeat
// corruption coverage for the membership messages.
func TestMembershipMessagesRejectCorruptInput(t *testing.T) {
	join := EncodeJoin(&JoinRequest{Addr: "127.0.0.1:5001", Pid: 1, PrevWorker: 2})
	retire := EncodeRetire(&Retire{Worker: 3, Reason: "r"})
	handoff := EncodeHandoff(&HandoffDescriptor{JobSeq: 4, Segments: []string{"s"}})

	for name, c := range map[string]struct {
		enc    []byte
		decode func([]byte) error
	}{
		"join":    {join, func(b []byte) error { _, err := DecodeJoin(b); return err }},
		"retire":  {retire, func(b []byte) error { _, err := DecodeRetire(b); return err }},
		"handoff": {handoff, func(b []byte) error { _, err := DecodeHandoff(b); return err }},
	} {
		for n := 0; n < len(c.enc); n++ {
			if err := c.decode(c.enc[:n]); err == nil {
				t.Fatalf("%s: accepted a %d-byte truncation of %d bytes", name, n, len(c.enc))
			}
		}
		if err := c.decode(append(append([]byte(nil), c.enc...), 0)); err == nil ||
			!strings.Contains(err.Error(), "trailing") {
			t.Errorf("%s trailing byte: got %v, want trailing-bytes error", name, err)
		}
		bad := append([]byte(nil), c.enc...)
		bad[0] = wireVersion + 1
		if err := c.decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("%s bad version: got %v, want version error", name, err)
		}
	}
}

// FuzzDecodeTask asserts the task-descriptor decoder never panics, and
// that any descriptor it accepts survives a stable re-encode: the
// encoder's output must itself decode, and that decode must re-encode
// byte-identically. (Accepted input may differ from the re-encode —
// non-minimal varints and nonzero boolean bytes decode fine — but the
// encoder's own form is a fixed point.)
func FuzzDecodeTask(f *testing.F) {
	f.Add(EncodeTask(sampleTask()))
	f.Add(EncodeTask(&TaskDescriptor{JobName: "m", Kind: "k"}))
	f.Add([]byte{wireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeTask(data)
		if err != nil {
			return
		}
		enc := EncodeTask(d)
		d2, err := DecodeTask(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if re := EncodeTask(d2); string(re) != string(enc) {
			t.Errorf("re-encode is not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}

// FuzzDecodeHeartbeat is the heartbeat-side counterpart.
func FuzzDecodeHeartbeat(f *testing.F) {
	f.Add(EncodeHeartbeat(&Heartbeat{Worker: 3, Seq: 8, Running: 1, StoreObjects: 2, StoreBytes: 99}))
	f.Add([]byte{wireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeartbeat(data)
		if err != nil {
			return
		}
		enc := EncodeHeartbeat(h)
		h2, err := DecodeHeartbeat(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if re := EncodeHeartbeat(h2); string(re) != string(enc) {
			t.Errorf("re-encode is not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}

// FuzzDecodeJoin applies the fixed-point property to the join request.
func FuzzDecodeJoin(f *testing.F) {
	f.Add(EncodeJoin(&JoinRequest{Addr: "127.0.0.1:5001", Pid: 4242, PrevWorker: 17}))
	f.Add(EncodeJoin(&JoinRequest{}))
	f.Add([]byte{wireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeJoin(data)
		if err != nil {
			return
		}
		enc := EncodeJoin(j)
		j2, err := DecodeJoin(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if re := EncodeJoin(j2); string(re) != string(enc) {
			t.Errorf("re-encode is not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}

// FuzzDecodeRetire applies the fixed-point property to the retire request.
func FuzzDecodeRetire(f *testing.F) {
	f.Add(EncodeRetire(&Retire{Worker: 9, Reason: "scale-down"}))
	f.Add(EncodeRetire(&Retire{}))
	f.Add([]byte{wireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRetire(data)
		if err != nil {
			return
		}
		enc := EncodeRetire(r)
		r2, err := DecodeRetire(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if re := EncodeRetire(r2); string(re) != string(enc) {
			t.Errorf("re-encode is not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}

// FuzzDecodeHandoff applies the fixed-point property to the hand-off
// descriptor.
func FuzzDecodeHandoff(f *testing.F) {
	f.Add(EncodeHandoff(&HandoffDescriptor{JobSeq: 42, Segments: []string{"j42-m0-a0-p1-s0", "j42-m0-a0-p2-s0"}}))
	f.Add(EncodeHandoff(&HandoffDescriptor{}))
	f.Add([]byte{wireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHandoff(data)
		if err != nil {
			return
		}
		enc := EncodeHandoff(h)
		h2, err := DecodeHandoff(enc)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if re := EncodeHandoff(h2); string(re) != string(enc) {
			t.Errorf("re-encode is not a fixed point:\n enc %x\n re  %x", enc, re)
		}
	})
}
