package distmr

import (
	"fmt"
	"sort"
	"sync"

	"ffmr/internal/mapreduce"
)

// JobCode is a worker-side reconstruction of a job's executable parts.
// A kind factory builds one per (worker, job) from the JobSpec params the
// master ships; workers cache it for the job's lifetime and call Close
// when the master retires the job.
type JobCode struct {
	// NewMapper creates one mapper per map task attempt (required).
	NewMapper func() mapreduce.Mapper
	// NewReducer creates one reducer per reduce task attempt (required —
	// the distributed backend does not run map-only jobs).
	NewReducer func() mapreduce.Reducer
	// NewCombiner, if non-nil, pre-aggregates map output per key.
	NewCombiner func() mapreduce.Combiner
	// Service is exposed to tasks via TaskContext.Service — typically a
	// live client dialed to a job-scoped service (aug_proc, the FF1
	// collector) whose address travelled in the params.
	Service any
	// Close releases the code's resources (service connections) when the
	// job is cleaned or the worker shuts down. May be nil.
	Close func() error
}

// KindFunc builds a job's code from its spec params.
type KindFunc func(params []byte) (*JobCode, error)

var (
	kindMu sync.RWMutex
	kinds  = make(map[string]KindFunc)
)

// RegisterKind installs a worker-side factory for a job kind, typically
// from an init function of the package defining the job's mappers and
// reducers (every binary that links the jobs — master, worker, tests —
// registers the same kinds). Registering a duplicate name panics.
func RegisterKind(name string, f KindFunc) {
	if name == "" || f == nil {
		panic("distmr: RegisterKind with empty name or nil factory")
	}
	kindMu.Lock()
	defer kindMu.Unlock()
	if _, dup := kinds[name]; dup {
		panic(fmt.Sprintf("distmr: kind %q registered twice", name))
	}
	kinds[name] = f
}

// Kinds returns the registered kind names, sorted (diagnostics).
func Kinds() []string {
	kindMu.RLock()
	defer kindMu.RUnlock()
	names := make([]string, 0, len(kinds))
	for name := range kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func lookupKind(name string) (KindFunc, error) {
	kindMu.RLock()
	f, ok := kinds[name]
	kindMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("distmr: job kind %q is not registered in this binary (have %v)", name, Kinds())
	}
	return f, nil
}
