package distmr

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/rpc"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ffmr/internal/dfs"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/rpcutil"
	"ffmr/internal/spill"
	"ffmr/internal/trace"
)

// defaultMapBudget bounds a map task's shuffle buffer when the cluster
// runs without an explicit MemoryBudget: large enough that small jobs
// spill exactly once at close (a single sorted segment per partition),
// which keeps the network shuffle uniform without changing statistics
// the simulated in-memory path reports.
const defaultMapBudget = 1 << 30

// WorkerConfig configures a worker.
type WorkerConfig struct {
	// MasterAddr is the master's RPC address (required).
	MasterAddr string
	// ListenAddr is the worker's own listen address (default 127.0.0.1:0).
	ListenAddr string
	// Store holds map output spill segments; it is the worker's local
	// disk in Hadoop terms. Default: an in-memory store. Worker processes
	// should use spill.NewDiskRunStore.
	Store spill.RunStore
	// OnDeath is invoked (once, on its own goroutine) when the worker
	// dies from injected WorkerCrashRate — the harness uses it to start a
	// replacement, the way a cluster re-provisions a dead tasktracker.
	OnDeath func(w *Worker)
	// HeartbeatMisses is how many consecutive heartbeat failures the
	// worker tolerates before concluding the master is gone and exiting
	// (default 20).
	HeartbeatMisses int
	// PrefetchDepth is how many shuffle segments the worker pulls
	// concurrently when the master hints upcoming reduce inputs
	// (Worker.Prefetch), and also bounds the reduce path's own parallel
	// fetch fan-out. Default 4. Prefetch overlaps shuffle I/O with the
	// still-running map phase; it never changes bytes or counters
	// (DESIGN.md §13).
	PrefetchDepth int
	// CompletionBatchWindow is how long a finished task waits for
	// siblings before forcing a heartbeat, so one beat carries a batch of
	// completions instead of each completion paying its own RPC. The
	// default (zero or negative) sends immediately: the beat snapshots
	// every completion queued at send time, which already batches tasks
	// that finish together, and measured waves turn over faster without
	// the added wait. A positive window is worth trying when task counts
	// per wave are much larger than worker count.
	CompletionBatchWindow time.Duration
	// DialPolicy configures all of the worker's outbound dials.
	DialPolicy rpcutil.Policy
	// Obsv configures the worker's observability surface. FlightDir arms
	// the per-worker flight recorder: a bounded ring of recent log events
	// that is flushed there when the worker dies from an injected crash,
	// for cmd/ffmr -postmortem to render. AdminAddr starts a per-worker
	// admin HTTP server. The zero value disables all of it at no cost.
	Obsv obsv.Options
}

// Worker executes tasks for a master and serves its map output segments
// to other workers. Create with StartWorker; it registers itself and
// heartbeats until Close, a master shutdown, or an injected crash.
type Worker struct {
	cfg WorkerConfig
	id  atomic.Uint64 // master-assigned; changes on re-registration
	// instance is the master-instance nonce from the last registration,
	// echoed in every heartbeat so a restarted master can tell this
	// worker's stale id from a re-registered worker's fresh one.
	instance atomic.Uint64
	ln       net.Listener
	// master is the client to the master, swapped by the heartbeat loop
	// when it redials after the master restarts.
	master  atomic.Pointer[rpc.Client]
	hbEvery time.Duration
	log     *slog.Logger
	flight  *obsv.FlightRecorder
	admin   *obsv.Admin
	// tracer is the worker's private tracer: task, spill and shuffle
	// spans are recorded here with their remote trace.Context attached,
	// drained in complete subtrees, and shipped to the master on
	// heartbeats (DESIGN.md §14). Its registry also backs the worker
	// admin server's /metrics and carries the worker-side histograms.
	tracer *trace.Tracer

	running    atomic.Int64
	tasksDone  atomic.Int64
	prefetched atomic.Int64
	dead       atomic.Bool
	crashed    atomic.Bool
	draining   atomic.Bool
	// taskDelay is injected slow-node latency (nanoseconds) applied to
	// every task attempt before it executes; chaos schedules use it to
	// manufacture stragglers for the speculation machinery.
	taskDelay atomic.Int64

	closeOnce sync.Once
	stop      chan struct{} // closed on death; stops the heartbeat loop
	done      chan struct{} // closed when the worker is fully down

	// compMu guards the completion queue. Finished attempts park their
	// wire-encoded result here and kick the heartbeat loop; the queue is
	// drained only after a beat the master acknowledged, so completions
	// survive failed beats (at-least-once, deduplicated master-side).
	compMu   sync.Mutex
	comps    []pendingComp
	compKick chan struct{} // cap 1; wakes the heartbeat loop early

	// spanMu guards the drained-but-unacknowledged span batches. Each
	// batch carries a strictly increasing Seq assigned at drain time; the
	// queue drops its sent prefix only after a beat the master
	// acknowledged, so batches survive failed beats exactly like
	// completions (at-least-once, deduplicated master-side by Seq).
	spanMu       sync.Mutex
	spanBatches  []SpanBatch
	spanBatchSeq uint64

	// prefetchCh feeds the prefetch workers. Hints are advisory: the
	// channel is bounded and enqueue drops on overflow rather than
	// blocking the RPC handler.
	prefetchCh chan *PrefetchDescriptor

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	jobs    map[uint64]*workerJob
	fetchCl map[string]*rpc.Client
	// segFlights is the in-flight segment fetch singleflight: prefetch
	// and the reduce fetch path never pull the same segment twice
	// concurrently, and a segment already in the store is never refetched.
	segFlights map[string]chan struct{}
	// cleaned remembers recently retired job seqs so a slow prefetch hint
	// cannot recreate segments CleanJob just removed.
	cleaned []uint64
}

// pendingComp is one finished attempt waiting to ride a heartbeat. buf
// is the pooled wire-encoded TaskResult; it is returned to the pool only
// after a successful beat (the master has the bytes).
type pendingComp struct {
	jobSeq uint64
	ph     Phase
	task   int
	assign int
	buf    *[]byte
}

// workerJob is a worker's cached per-job state: the reconstructed code
// and the broadcast side files, built once on first task receipt.
type workerJob struct {
	once sync.Once
	err  error
	code *JobCode
	side map[string][]byte
}

// workerService is the RPC wrapper so only intended methods are served.
type workerService struct{ w *Worker }

// StartWorker launches a worker: it listens, registers with the master,
// and starts heartbeating.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.MasterAddr == "" {
		return nil, fmt.Errorf("distmr: worker needs a master address")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Store == nil {
		cfg.Store = spill.NewMemRunStore()
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 20
	}
	if cfg.PrefetchDepth <= 0 {
		cfg.PrefetchDepth = 4
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("distmr: worker listen: %w", err)
	}
	var flight *obsv.FlightRecorder
	if cfg.Obsv.FlightDir != "" {
		flight = obsv.NewFlightRecorder("worker", cfg.Obsv.FlightSize)
	}
	var next slog.Handler
	if cfg.Obsv.Logger != nil {
		next = cfg.Obsv.Logger.Handler()
	}
	w := &Worker{
		cfg:        cfg,
		ln:         ln,
		log:        slog.New(flight.Handler(next)).With("role", "worker"),
		flight:     flight,
		tracer:     trace.New(),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		compKick:   make(chan struct{}, 1),
		prefetchCh: make(chan *PrefetchDescriptor, 256),
		conns:      make(map[net.Conn]struct{}),
		jobs:       make(map[uint64]*workerJob),
		fetchCl:    make(map[string]*rpc.Client),
		segFlights: make(map[string]chan struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &workerService{w: w}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("distmr: worker register service: %w", err)
	}

	master, err := rpcutil.DialRPC(cfg.MasterAddr, cfg.DialPolicy)
	if err != nil {
		w.die(false)
		return nil, err
	}
	w.master.Store(master)
	if err := w.register(0); err != nil {
		w.die(false)
		return nil, err
	}
	if w.hbEvery <= 0 {
		w.hbEvery = 100 * time.Millisecond
	}
	w.log = w.log.With("worker", w.id.Load())
	w.flight.SetSource(fmt.Sprintf("worker-%d", w.id.Load()))
	if cfg.Obsv.AdminAddr != "" {
		admin, err := obsv.StartAdmin(obsv.AdminConfig{
			Addr:    cfg.Obsv.AdminAddr,
			Metrics: func() *trace.Registry { return w.tracer.Registry() },
			Status:  w.Status,
			Flight:  flight,
			Logger:  w.log,
		})
		if err != nil {
			w.die(false)
			return nil, fmt.Errorf("distmr: worker admin server: %w", err)
		}
		w.admin = admin
		w.log.Info("admin server listening", "addr", admin.Addr())
	}
	w.log.Info("registered with master", "addr", ln.Addr().String(), "master", cfg.MasterAddr)
	// Serve RPCs only now that registration filled in id/master/hbEvery:
	// the master may dispatch a task the moment Register returns, and a
	// handler must never observe a half-initialized worker. The master's
	// dial-back during Register only needs the listen backlog, not the
	// accept loop, so the ordering is safe.
	go w.accept(srv)
	go w.heartbeatLoop()
	for i := 0; i < cfg.PrefetchDepth; i++ {
		go w.prefetchLoop()
	}
	return w, nil
}

// register announces the worker to the master and adopts the assigned
// identity. prev is the worker's previous id when re-registering after
// the master forgot it (expiry, or a master restart); 0 on first join.
func (w *Worker) register(prev uint64) error {
	args := &RegisterArgs{Data: EncodeJoin(&JoinRequest{
		Addr:       w.ln.Addr().String(),
		Pid:        os.Getpid(),
		PrevWorker: prev,
	})}
	var reply RegisterReply
	if err := w.master.Load().Call("Master.Register", args, &reply); err != nil {
		return fmt.Errorf("distmr: register with master: %w", err)
	}
	w.id.Store(reply.Worker)
	if old := w.instance.Swap(reply.Instance); old != 0 && old != reply.Instance {
		// A new master generation: jobs of the dead generation will never
		// send CleanJob, so their cached code would linger forever. Their
		// job sequence numbers can never be reused (each generation seeds
		// the counter from its instance nonce), so dropping every cached
		// entry is safe — tasks of the new generation rebuild on receipt.
		w.mu.Lock()
		w.jobs = make(map[uint64]*workerJob)
		w.mu.Unlock()
	}
	if hb := time.Duration(reply.HeartbeatInterval); hb > 0 {
		w.hbEvery = hb
	}
	return nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// ID returns the master-assigned worker id.
func (w *Worker) ID() uint64 { return w.id.Load() }

// TasksDone returns how many task attempts this worker has completed.
func (w *Worker) TasksDone() int64 { return w.tasksDone.Load() }

// Draining reports whether a drain has been requested on this worker.
func (w *Worker) Draining() bool { return w.draining.Load() }

// SetTaskDelay injects slow-node latency: every subsequent task attempt
// sleeps d before executing, making this worker a straggler without
// changing any task outcome. Zero removes the delay.
func (w *Worker) SetTaskDelay(d time.Duration) { w.taskDelay.Store(int64(d)) }

// Kill terminates the worker the way an injected crash does: flight
// recorder dumped, OnDeath fired, no goodbye to the master. Chaos
// schedules use it to fell a specific worker at a specific moment.
func (w *Worker) Kill() { w.die(true) }

// Drain asks the master to retire this worker gracefully: no new leases
// are granted, running attempts finish, and completed map output is
// handed off through the DFS before the master tells the worker (via a
// heartbeat reply) that it may exit. Idempotent.
func (w *Worker) Drain() {
	if w.dead.Load() || !w.draining.CompareAndSwap(false, true) {
		return
	}
	w.log.Info("drain requested")
	args := &RetireArgs{Data: EncodeRetire(&Retire{Worker: w.id.Load(), Reason: "worker-requested"})}
	if err := w.master.Load().Call("Master.Retire", args, &RetireReply{}); err != nil {
		w.log.Warn("drain request failed", "err", err)
	}
}

// Crashed reports whether the worker died from injected WorkerCrashRate.
func (w *Worker) Crashed() bool { return w.crashed.Load() }

// Dead reports whether the worker is down, whatever the cause.
func (w *Worker) Dead() bool { return w.dead.Load() }

// AdminAddr returns the worker's admin HTTP address, or "" when no admin
// server was configured.
func (w *Worker) AdminAddr() string {
	if w.admin == nil {
		return ""
	}
	return w.admin.Addr()
}

// Status is this worker's self-view, served at its own /status endpoint.
func (w *Worker) Status() *obsv.ClusterStatus {
	st := &obsv.ClusterStatus{Role: "worker", Addr: w.Addr()}
	ws := obsv.WorkerStatus{
		ID:         w.id.Load(),
		Addr:       w.Addr(),
		Running:    w.running.Load(),
		TasksDone:  w.tasksDone.Load(),
		Prefetched: w.prefetched.Load(),
		StoreBytes: w.cfg.Store.Bytes(),
		Dead:       w.dead.Load(),
	}
	switch {
	case ws.Dead:
		ws.State = "dead"
	case w.draining.Load():
		ws.State = "draining"
	default:
		ws.State = "live"
	}
	if !ws.Dead {
		st.WorkersAlive = 1
	}
	st.Workers = []obsv.WorkerStatus{ws}
	return st
}

// Wait blocks until the worker is down (Close, master shutdown, or an
// injected crash).
func (w *Worker) Wait() { <-w.done }

// Close stops the worker: heartbeats end, the listener and every open
// connection close, cached shuffle clients and job services are released.
func (w *Worker) Close() error {
	w.die(false)
	return nil
}

// die is the single teardown path. crash marks an injected death, which
// additionally fires OnDeath; in both cases every held resource closes
// so leak checks stay clean.
func (w *Worker) die(crash bool) {
	w.closeOnce.Do(func() {
		w.dead.Store(true)
		if crash {
			w.crashed.Store(true)
			// The crash note lands in the ring before the dump, so the
			// rendered timeline ends with the cause of death.
			w.log.Error("injected worker crash",
				"running", w.running.Load(), "tasks_done", w.tasksDone.Load())
			if w.flight != nil && w.cfg.Obsv.FlightDir != "" {
				if path, err := w.flight.Dump(w.cfg.Obsv.FlightDir, "crash"); err != nil {
					w.log.Warn("flight dump failed", "err", err)
				} else {
					w.log.Info("flight recorder dumped", "path", path)
				}
			}
		} else {
			w.log.Debug("worker shutting down")
		}
		w.admin.Close()
		close(w.stop)
		w.ln.Close()

		w.mu.Lock()
		for conn := range w.conns {
			conn.Close()
		}
		w.conns = map[net.Conn]struct{}{}
		for _, c := range w.fetchCl {
			c.Close()
		}
		w.fetchCl = map[string]*rpc.Client{}
		jobs := w.jobs
		w.jobs = map[uint64]*workerJob{}
		w.mu.Unlock()

		for _, j := range jobs {
			if j.code != nil && j.code.Close != nil {
				j.code.Close() //nolint:errcheck // best-effort service teardown
			}
		}
		if c := w.master.Load(); c != nil {
			c.Close()
		}
		// The store is wiped even on a crash: a dead tasktracker's local
		// disk is unreachable either way, and the listener is already
		// closed so no fetch can observe the difference.
		w.cfg.Store.Close() //nolint:errcheck // store teardown
		if crash && w.cfg.OnDeath != nil {
			go w.cfg.OnDeath(w)
		}
		close(w.done)
	})
}

func (w *Worker) accept(srv *rpc.Server) {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.mu.Lock()
		if w.dead.Load() {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		go func() {
			srv.ServeCodec(rpcutil.NewServerCodec(conn))
			w.mu.Lock()
			delete(w.conns, conn)
			w.mu.Unlock()
			conn.Close()
		}()
	}
}

// queueCompletion parks a finished attempt's wire-encoded result on the
// completion queue and wakes the heartbeat loop, which batches every
// completion accumulated by then onto one beat.
func (w *Worker) queueCompletion(desc *TaskDescriptor, res *TaskResult) {
	buf := rpcutil.GetBuf()
	*buf = AppendResult(*buf, res)
	w.compMu.Lock()
	w.comps = append(w.comps, pendingComp{
		jobSeq: desc.JobSeq,
		ph:     desc.Phase,
		task:   desc.Task,
		assign: desc.Assign,
		buf:    buf,
	})
	w.compMu.Unlock()
	select {
	case w.compKick <- struct{}{}:
	default: // a kick is already pending; the next beat carries us too
	}
}

// drainSpans moves every complete span subtree out of the worker's
// tracer into a sequenced batch on the shipping queue. Called when a
// task attempt concludes — before its completion is queued, so the
// attempt's spans ride the same (or an earlier) beat — and on every
// beat, to pick up spans that end outside task attempts, like prefetch
// fetches.
func (w *Worker) drainSpans() {
	spans := w.tracer.Drain()
	if len(spans) == 0 {
		return
	}
	w.spanMu.Lock()
	w.spanBatchSeq++
	w.spanBatches = append(w.spanBatches, SpanBatch{Seq: w.spanBatchSeq, Spans: spans})
	w.spanMu.Unlock()
}

// telemetrySamples snapshots the worker registry's counters and
// histograms as absolute values for one beat. The master diffs each
// against its last-seen snapshot for this worker before merging, so a
// beat resent after a lost acknowledgement merges nothing twice
// (DESIGN.md §14). Sorted for deterministic wire bytes.
func (w *Worker) telemetrySamples() ([]MetricSample, []HistSample) {
	reg := w.tracer.Registry()
	cs := reg.CounterSnapshot()
	var counters []MetricSample
	if len(cs) > 0 {
		counters = make([]MetricSample, 0, len(cs))
		for name, v := range cs {
			counters = append(counters, MetricSample{Name: name, Value: v})
		}
		sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	}
	hs := reg.HistogramSnapshot()
	var hists []HistSample
	if len(hs) > 0 {
		hists = make([]HistSample, 0, len(hs))
		for name, hv := range hs {
			hists = append(hists, HistSample{Name: name, Count: hv.Count, Sum: hv.Sum, Buckets: hv.Buckets})
		}
		sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	}
	return counters, hists
}

func (w *Worker) heartbeatLoop() {
	// Staggered start so a fleet of workers does not beat in lock-step.
	timer := time.NewTimer(rpcutil.Jitter(w.hbEvery))
	defer timer.Stop()
	var seq uint64
	misses := 0
	var lastRTT int64 // previous successful beat's measured round-trip
	var hb Heartbeat  // reused across beats so the steady state allocates nothing
	rttHist := w.tracer.Registry().Histogram(HistHeartbeatRTTNS)
	for {
		select {
		case <-w.stop:
			return
		case <-timer.C:
		case <-w.compKick:
			// A task finished: beat early so its completion lands now, but
			// first give siblings a short window to join the batch (one
			// beat per task wave instead of one per task).
			if win := w.cfg.CompletionBatchWindow; win > 0 {
				select {
				case <-w.stop:
					return
				case <-time.After(win):
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		seq++
		// Snapshot the pending completions; they stay queued until the
		// master acknowledges the beat, so a lost beat resends them
		// (at-least-once — the master discards entries it already settled).
		// The completion snapshot comes first: an attempt drains its spans
		// before queueing its completion, so a snapshot taken in this order
		// never carries a completion whose spans are not also aboard.
		w.compMu.Lock()
		pending := w.comps[:len(w.comps):len(w.comps)]
		w.compMu.Unlock()
		w.drainSpans() // pick up spans that ended since the last beat
		w.spanMu.Lock()
		batches := w.spanBatches[:len(w.spanBatches):len(w.spanBatches)]
		w.spanMu.Unlock()
		counters, hists := w.telemetrySamples()
		hb = Heartbeat{
			Worker:       w.id.Load(),
			Instance:     w.instance.Load(),
			Seq:          seq,
			Running:      w.running.Load(),
			StoreObjects: int64(w.cfg.Store.Objects()),
			StoreBytes:   w.cfg.Store.Bytes(),
			TasksDone:    w.tasksDone.Load(),
			Prefetched:   w.prefetched.Load(),
			Completions:  hb.Completions[:0],
			SentUnixNano: time.Now().UnixNano(),
			RTTNanos:     lastRTT,
			SpanBatches:  batches,
			Counters:     counters,
			Hists:        hists,
		}
		for i := range pending {
			pc := &pending[i]
			hb.Completions = append(hb.Completions, Completion{
				JobSeq: pc.jobSeq,
				Phase:  pc.ph,
				Task:   pc.task,
				Assign: pc.assign,
				Result: *pc.buf,
			})
		}
		hbBuf := rpcutil.GetBuf()
		*hbBuf = AppendHeartbeat(*hbBuf, &hb)
		var reply HeartbeatReply
		t0 := time.Now()
		err := w.master.Load().Call("Master.Heartbeat", &HeartbeatArgs{Data: *hbBuf}, &reply)
		rpcutil.PutBuf(hbBuf)
		if err == nil {
			// The measured round-trip rides the NEXT beat: the master pairs
			// it with that beat's send timestamp to estimate this worker's
			// clock offset (midpoint model, DESIGN.md §14).
			lastRTT = time.Since(t0).Nanoseconds()
			rttHist.Observe(lastRTT)
		}
		if err == nil && len(pending) > 0 {
			// The master has the batch (consumed it, or deliberately
			// discarded stale entries — either way resending is pointless).
			// Drop the sent prefix; later completions queued during the
			// call stay for the next beat.
			w.compMu.Lock()
			w.comps = w.comps[len(pending):]
			w.compMu.Unlock()
			for i := range pending {
				rpcutil.PutBuf(pending[i].buf)
			}
		}
		if err == nil && len(batches) > 0 {
			// Same ack discipline for span batches: the sent prefix is done,
			// batches drained during the call wait for the next beat.
			w.spanMu.Lock()
			w.spanBatches = w.spanBatches[len(batches):]
			w.spanMu.Unlock()
		}
		if err != nil {
			misses++
			if misses >= w.cfg.HeartbeatMisses {
				w.die(false)
				return
			}
			// The client may be permanently shut (master crashed, its conns
			// closed). Redial fast; a restarted master on the same address
			// will answer the next beat with Unknown and we re-register.
			if c, derr := rpcutil.DialRPC(w.cfg.MasterAddr, rpcutil.Policy{
				Attempts: 1, DialTimeout: time.Second,
			}); derr == nil {
				if old := w.master.Swap(c); old != nil {
					old.Close()
				}
				w.log.Debug("redialed master", "misses", misses)
			}
		} else {
			misses = 0
			switch {
			case reply.Shutdown:
				w.die(false)
				return
			case reply.Retired:
				// Drain complete: the master holds (or handed off) all our
				// winning output, so exiting loses nothing.
				w.log.Info("drain complete, exiting")
				w.die(false)
				return
			case reply.Unknown:
				// The master has no record of us — it expired us or it
				// restarted. A draining worker just exits (its drain intent
				// died with the old record); otherwise rejoin under a fresh
				// identity so queued work can land here again.
				if w.draining.Load() {
					w.log.Info("master forgot draining worker, exiting")
					w.die(false)
					return
				}
				prev := w.id.Load()
				if rerr := w.register(prev); rerr != nil {
					misses++
					if misses >= w.cfg.HeartbeatMisses {
						w.die(false)
						return
					}
				} else {
					w.log.Info("re-registered with master", "was", prev, "now", w.id.Load())
				}
			}
		}
		timer.Reset(w.hbEvery)
	}
}

// readMasterFile fetches a file from the master's DFS. Reads are
// idempotent, so call failures are retried with a fresh dial for a
// bounded window: the cached master client goes stale when the master
// restarts, and waiting for the heartbeat loop's redial would burn the
// running attempt on what is only a transient gap.
func (w *Worker) readMasterFile(name string) ([]byte, error) {
	var lastErr error
	for deadline := time.Now().Add(3 * time.Second); ; {
		var reply ReadFileReply
		err := w.master.Load().Call("Master.ReadFile", &ReadFileArgs{Name: name}, &reply)
		if err == nil {
			return reply.Data, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			break
		}
		if c, derr := rpcutil.DialRPC(w.cfg.MasterAddr, rpcutil.Policy{
			Attempts: 1, DialTimeout: time.Second,
		}); derr == nil {
			if old := w.master.Swap(c); old != nil {
				old.Close()
			}
		}
		select {
		case <-w.stop:
			return nil, fmt.Errorf("distmr: read %q from master: %w", name, lastErr)
		case <-time.After(50 * time.Millisecond):
		}
	}
	return nil, fmt.Errorf("distmr: read %q from master: %w", name, lastErr)
}

// jobState returns the cached per-job code and side files, building them
// on first use.
func (w *Worker) jobState(desc *TaskDescriptor) (*workerJob, error) {
	w.mu.Lock()
	j := w.jobs[desc.JobSeq]
	if j == nil {
		j = &workerJob{}
		w.jobs[desc.JobSeq] = j
	}
	w.mu.Unlock()
	j.once.Do(func() {
		factory, err := lookupKind(desc.Kind)
		if err != nil {
			j.err = err
			return
		}
		code, err := factory(desc.Params)
		if err != nil {
			j.err = fmt.Errorf("distmr: build job kind %q: %w", desc.Kind, err)
			return
		}
		side := make(map[string][]byte, len(desc.SideFiles))
		for _, name := range desc.SideFiles {
			data, err := w.readMasterFile(name)
			if err != nil {
				if code.Close != nil {
					code.Close() //nolint:errcheck // factory teardown on error
				}
				j.err = err
				return
			}
			side[name] = data
		}
		// A service that understands trace contexts (the aug_proc client)
		// gets the job's context stamped on it so its RPCs carry the
		// run/job/round identity for cross-process stitching.
		if tc, ok := code.Service.(interface{ SetTraceContext(trace.Context) }); ok {
			tc.SetTraceContext(desc.Ctx)
		}
		j.code = code
		j.side = side
	})
	return j, j.err
}

// fetchClient returns a cached shuffle connection to another worker. The
// dial fast-fails (two attempts) rather than using the registration
// policy: a fetch from a dead worker is recoverable — the reduce reports
// the lost maps and the master re-runs them — so retrying a refused
// connection at length only delays that recovery.
func (w *Worker) fetchClient(addr string) (*rpc.Client, error) {
	w.mu.Lock()
	c := w.fetchCl[addr]
	w.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := rpcutil.DialRPC(addr, rpcutil.Policy{Attempts: 2, BaseDelay: 10 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	if prev := w.fetchCl[addr]; prev != nil {
		w.mu.Unlock()
		c.Close()
		return prev, nil
	}
	w.fetchCl[addr] = c
	w.mu.Unlock()
	return c, nil
}

func (w *Worker) dropFetchClient(addr string) {
	w.mu.Lock()
	if c := w.fetchCl[addr]; c != nil {
		delete(w.fetchCl, addr)
		c.Close()
	}
	w.mu.Unlock()
}

// StartTask accepts one task attempt and executes it asynchronously:
// the call returns on acceptance, and the result later rides a
// heartbeat as a Completion. An RPC-level failure here (worker death on
// the crash draw) still surfaces promptly to the master, which
// reassigns without consuming an attempt.
func (s *workerService) StartTask(args *StartTaskArgs, _ *StartTaskReply) error {
	w := s.w
	if w.dead.Load() {
		return fmt.Errorf("distmr: worker %d is dead", w.id.Load())
	}
	desc, err := DecodeTask(args.Desc)
	if err != nil {
		return err
	}
	// Debug-level, but always captured by the flight recorder's tee: the
	// crash dump below then ends with the task the worker was handed.
	w.log.Debug("task received",
		"job", desc.JobName, "phase", desc.Phase.String(),
		"task", desc.Task, "attempt", desc.Attempt, "assign", desc.Assign)
	// Injected worker crash, drawn synchronously at task receipt — before
	// any side effect — so a crashed attempt has submitted nothing to job
	// services and re-execution preserves exactly-once semantics. The
	// draw is keyed by the assignment sequence, so the reassigned attempt
	// draws fresh; staying in the handler keeps the death a prompt
	// transport error on this very call.
	if desc.CrashRate > 0 &&
		mapreduce.InjectHash(desc.Seed, desc.JobName, desc.Phase.String()+"-crash", desc.Task, desc.Assign) < desc.CrashRate {
		w.die(true)
		return fmt.Errorf("distmr: worker %d crashed", w.id.Load())
	}
	w.running.Add(1)
	go w.execute(desc)
	return nil
}

// execute runs one accepted task attempt to completion and queues its
// result for the next heartbeat.
func (w *Worker) execute(desc *TaskDescriptor) {
	defer w.running.Add(-1)
	// Injected slow-node latency, applied after the crash draw so the
	// fault coordinates are unchanged: the attempt runs late but runs the
	// same. Interruptible by death so a killed straggler's goroutine exits.
	if d := time.Duration(w.taskDelay.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-w.stop:
			return
		}
	}
	if w.dead.Load() {
		return
	}
	j, err := w.jobState(desc)
	if err != nil {
		w.queueCompletion(desc, &TaskResult{Err: err.Error()})
		return
	}
	sp := w.tracer.Start(trace.CatTask, fmt.Sprintf("%s-%05d", desc.Phase, desc.Task), nil)
	sp.SetRemote(desc.Ctx)
	sp.SetInt("task", int64(desc.Task))
	sp.SetInt("assign", int64(desc.Assign))
	sp.SetInt("node", int64(desc.Node))
	sp.SetInt("worker", int64(w.id.Load()))
	sp.SetStr("phase", desc.Phase.String())
	sp.SetTID(int64(desc.Node) + 2)

	t0 := time.Now()
	var res *TaskResult
	if desc.Phase == PhaseMap {
		res = w.runMap(desc, j, sp)
	} else {
		res = w.runReduce(desc, j, sp)
	}
	res.DurNanos = time.Since(t0).Nanoseconds()
	w.tracer.Registry().Histogram(HistTaskServiceNS).Observe(res.DurNanos)
	if res.Err != "" {
		sp.SetStr("error", res.Err)
		w.log.Warn("task failed",
			"job", desc.JobName, "phase", desc.Phase.String(),
			"task", desc.Task, "attempt", desc.Attempt, "err", res.Err)
	} else if len(res.LostMaps) == 0 {
		w.tasksDone.Add(1)
	}
	// End and drain before queueing the completion: the beat that carries
	// the completion (or an earlier one) then also carries this attempt's
	// spans, and the master imports spans before routing completions — so
	// by the time RunJob returns, every winner's spans are stitched.
	sp.End()
	w.drainSpans()
	w.queueCompletion(desc, res)
}

// Watch blocks until the worker dies or shuts down: the master keeps one
// Watch call pending per worker, so a crash surfaces as that call
// erroring out — the prompt failure signal the old per-task blocking
// lease provided, without holding an RPC open per running attempt.
func (s *workerService) Watch(_ *WatchArgs, _ *WatchReply) error {
	<-s.w.stop
	return nil
}

// Prefetch receives an advisory shuffle-prefetch hint. It never fails:
// under load the hint is dropped and the reduce path fetches on demand.
func (s *workerService) Prefetch(args *PrefetchArgs, _ *PrefetchReply) error {
	w := s.w
	if w.dead.Load() || w.draining.Load() {
		return nil
	}
	p, err := DecodePrefetch(args.Desc)
	if err != nil {
		return err
	}
	select {
	case w.prefetchCh <- p:
	default:
		w.log.Debug("prefetch hint dropped, queue full", "job", p.JobSeq)
	}
	return nil
}

// prefetchLoop pulls hinted shuffle segments into the local store ahead
// of reduce dispatch. PrefetchDepth loops run concurrently; the
// singleflight in ensureSegment keeps them (and the reduce fetch path)
// from duplicating work. Failures are silently dropped — the reduce
// task's own fetch retries and reports lost maps authoritatively.
func (w *Worker) prefetchLoop() {
	for {
		var p *PrefetchDescriptor
		select {
		case <-w.stop:
			return
		case p = <-w.prefetchCh:
		}
		if w.jobCleaned(p.JobSeq) {
			continue
		}
		for i := range p.Sources {
			src := &p.Sources[i]
			if src.Prefix == "" && src.Worker == w.id.Load() {
				continue // local map output: already in the store
			}
			for s := range src.Segments {
				if w.dead.Load() || w.jobCleaned(p.JobSeq) {
					break
				}
				fetched, err := w.ensureSegment(src, &src.Segments[s], p.Ctx)
				if err != nil {
					break // source unreachable; stop hammering it
				}
				if fetched {
					w.prefetched.Add(1)
				}
			}
		}
	}
}

// jobCleaned reports whether CleanJob already retired this job, so late
// prefetch hints cannot recreate removed segments.
func (w *Worker) jobCleaned(jobSeq uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, seq := range w.cleaned {
		if seq == jobSeq {
			return true
		}
	}
	return false
}

// ensureSegment makes one shuffle segment present in the local store,
// fetching it if needed. Concurrent callers for the same segment
// coalesce onto one fetch (singleflight); a segment already stored is
// never refetched, so prefetch and the reduce path stay idempotent.
// ctx is the job's trace position, so the fetch span stitches under the
// master's job span. Returns whether this call performed the fetch.
func (w *Worker) ensureSegment(src *MapSource, seg *spill.Segment, ctx trace.Context) (bool, error) {
	for {
		w.mu.Lock()
		if w.cfg.Store.Has(seg.Name) {
			w.mu.Unlock()
			return false, nil
		}
		if ch := w.segFlights[seg.Name]; ch != nil {
			w.mu.Unlock()
			select {
			case <-ch:
			case <-w.stop:
				return false, fmt.Errorf("distmr: worker %d is dead", w.id.Load())
			}
			continue // re-check: the other flight may have failed
		}
		ch := make(chan struct{})
		w.segFlights[seg.Name] = ch
		w.mu.Unlock()
		err := w.fetchSegmentData(src, seg, ctx)
		w.mu.Lock()
		delete(w.segFlights, seg.Name)
		w.mu.Unlock()
		close(ch)
		return err == nil, err
	}
}

// fetchSegmentData pulls one segment's stored bytes — from the owning
// worker, or from the master's DFS for handed-off sources — into the
// local store under its original name. Every fetch records a shuffle
// span (stitched under the master's job span via ctx) and lands in the
// shuffle-fetch latency histogram, error paths included.
func (w *Worker) fetchSegmentData(src *MapSource, seg *spill.Segment, ctx trace.Context) error {
	sp := w.tracer.Start(trace.CatShuffle, "shuffle-fetch", nil)
	sp.SetRemote(ctx)
	sp.SetInt("worker", int64(w.id.Load()))
	sp.SetStr("segment", seg.Name)
	sp.SetInt("bytes", seg.RawBytes)
	t0 := time.Now()
	defer func() {
		w.tracer.Registry().Histogram(HistShuffleFetchNS).ObserveSince(t0)
		sp.End()
	}()
	var data []byte
	if src.Prefix != "" {
		d, err := w.readMasterFile(src.Prefix + seg.Name)
		if err != nil {
			return err
		}
		data = d
	} else {
		client, err := w.fetchClient(src.Addr)
		if err != nil {
			return err
		}
		var reply FetchSegmentReply
		if err := client.Call("Worker.FetchSegment", &FetchSegmentArgs{Name: seg.Name}, &reply); err != nil {
			w.dropFetchClient(src.Addr)
			return err
		}
		data = reply.Data
	}
	wc, err := w.cfg.Store.Create(seg.Name)
	if err != nil {
		return err
	}
	if _, err := wc.Write(data); err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}

// runMap executes one map attempt over its split, spilling sorted output
// to the local store — always the spill path, so the segments exist to
// be served to reducers and the statistics match the simulated engine's
// out-of-core shuffle byte for byte.
func (w *Worker) runMap(desc *TaskDescriptor, j *workerJob, sp *trace.Span) *TaskResult {
	res := &TaskResult{}
	counters := mapreduce.NewCounters()
	budget := desc.MemoryBudget
	if budget <= 0 {
		budget = defaultMapBudget
	}
	cfg := spill.Config{
		Partitions:   desc.NumReducers,
		MemoryBudget: budget,
		Store:        w.cfg.Store,
		NamePrefix:   fmt.Sprintf("j%05d/map-%05d/a%d/", desc.JobSeq, desc.Task, desc.Assign),
		Node:         desc.Node,
		Compress:     desc.Compress,
		Tracer:       w.tracer,
		Parent:       sp,
	}
	if j.code.NewCombiner != nil {
		combiner := j.code.NewCombiner()
		cfg.Combine = combiner.Combine
		cfg.OnCombine = func(in, out int64) {
			counters.Add("combine input records", in)
			counters.Add("combine output records", out)
		}
	}
	if desc.DiskFailureRate > 0 {
		cfg.FailSpill = func(idx int) error {
			// Same coordinates as the simulated engine, so a given seed
			// injects the same disk failures on either backend.
			if mapreduce.InjectHash(desc.Seed, desc.JobName, "spill", desc.Task, desc.Attempt<<16|idx) < desc.DiskFailureRate {
				return fmt.Errorf("injected disk write failure")
			}
			return nil
		}
	}
	sw, err := spill.NewWriter(cfg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	var emitErr error
	var outRecs int64
	emit := func(key, value []byte) {
		if emitErr != nil {
			return
		}
		p := mapreduce.Partition(key, desc.NumReducers)
		if err := sw.Add(p, key, value); err != nil {
			emitErr = err
			return
		}
		outRecs++
	}
	ctx := mapreduce.NewTaskContext(desc.Round, desc.Task, desc.Assign, desc.Node, counters, j.side, j.code.Service, emit)
	mapper := j.code.NewMapper()
	r := dfs.NewRecordReader(desc.Split)
	var inRecs int64
	for emitErr == nil {
		key, value, ok, err := r.Next()
		if err != nil {
			emitErr = err
			break
		}
		if !ok {
			break
		}
		inRecs++
		if err := mapper.Map(ctx, key, value); err != nil {
			emitErr = err
			break
		}
	}
	if emitErr != nil {
		sw.Abort()
		res.Err = emitErr.Error()
		return res
	}
	out, err := sw.Close()
	if err != nil {
		sw.Abort()
		res.Err = err.Error()
		return res
	}
	res.InRecs = inRecs
	res.OutRecs = outRecs
	res.RawBytes = out.RawBytes
	res.MaxFrame = out.MaxFrame
	res.Spills = out.Spills
	res.Parts = out.Parts
	res.Counters = counters.Snapshot()
	sp.SetInt("spills", out.Spills)
	sp.SetInt("records_out", outRecs)
	return res
}

// runReduce executes one reduce attempt: make this partition's segments
// present in the local store (fetched in parallel, coalescing with any
// prefetch already in flight or complete), k-way merge them, and stream
// the groups through the reducer. Unfetchable segments abort before the
// reducer runs (so job services see no partial submissions) and are
// reported as lost map outputs for the master to recover.
func (w *Worker) runReduce(desc *TaskDescriptor, j *workerJob, sp *trace.Span) *TaskResult {
	res := &TaskResult{}
	// Fetch sources concurrently (bounded by PrefetchDepth) but assemble
	// results in source order below, so segment order — and with it merge
	// statistics — is independent of fetch timing.
	errs := make([]error, len(desc.Sources))
	sem := make(chan struct{}, w.cfg.PrefetchDepth)
	var wg sync.WaitGroup
	for i := range desc.Sources {
		src := &desc.Sources[i]
		if len(src.Segments) == 0 || (src.Prefix == "" && src.Worker == w.id.Load()) {
			continue // nothing to fetch: empty, or local map output
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, src *MapSource) {
			defer func() { <-sem; wg.Done() }()
			for s := range src.Segments {
				if _, err := w.ensureSegment(src, &src.Segments[s], desc.Ctx); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, src)
	}
	wg.Wait()
	var segs []spill.Segment
	for i := range desc.Sources {
		src := &desc.Sources[i]
		if len(src.Segments) == 0 {
			continue
		}
		if errs[i] != nil {
			res.LostMaps = append(res.LostMaps, src.MapTask)
			res.LostFrom = append(res.LostFrom, src.Worker)
			continue
		}
		segs = append(segs, src.Segments...)
	}
	if len(res.LostMaps) > 0 {
		return res
	}
	// Shuffle statistics come from segment metadata for every segment,
	// whether it arrived via prefetch, this attempt's fetch, or was local
	// all along — so pipelining changes wall-clock overlap, never counters.
	for _, seg := range segs {
		res.Fetch += seg.RawBytes
		if seg.Node != desc.Node {
			res.Inter += seg.RawBytes
		}
	}

	var base []mapreduce.Rec
	if desc.Schimmy {
		data, err := w.readMasterFile(fmt.Sprintf("%spart-%05d", desc.SchimmyBase, desc.Task))
		if err != nil {
			res.Err = err.Error()
			return res
		}
		base, err = mapreduce.ReadBaseRecords(data)
		if err != nil {
			res.Err = err.Error()
			return res
		}
	}

	var stream mapreduce.RecIter = func() ([]byte, []byte, bool, error) {
		return nil, nil, false, nil
	}
	if len(segs) > 0 {
		it, mstats, err := spill.Merge(w.cfg.Store, segs, spill.MergeOptions{
			FanIn:     desc.MergeFanIn,
			Compress:  desc.Compress,
			TmpPrefix: fmt.Sprintf("j%05d/reduce-%05d/a%d/", desc.JobSeq, desc.Task, desc.Assign),
			Tracer:    w.tracer,
			Parent:    sp,
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		defer it.Close()
		stream = it.Next
		res.MergePasses = mstats.Passes
		res.MaxMergeFanIn = mstats.MaxFanIn
		sp.SetInt("merge_passes", mstats.Passes)
	}

	counters := mapreduce.NewCounters()
	var out dfs.RecordWriter
	ctx := mapreduce.NewTaskContext(desc.Round, desc.Task, desc.Assign, desc.Node, counters, j.side, j.code.Service,
		func(key, value []byte) { out.Append(key, value) })
	reducer := j.code.NewReducer()
	maxGroup, err := mapreduce.ReduceGroups(ctx, reducer, base, stream)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.MaxGroup = maxGroup
	res.OutputData = out.Bytes()
	res.OutRecords = int64(out.Records())
	res.OutBytes = int64(out.Len())
	res.Counters = counters.Snapshot()
	return res
}

// FetchSegment serves one locally stored spill segment to a fetching
// reducer (the network shuffle).
func (s *workerService) FetchSegment(args *FetchSegmentArgs, reply *FetchSegmentReply) error {
	if s.w.dead.Load() {
		return fmt.Errorf("distmr: worker %d is dead", s.w.id.Load())
	}
	rc, err := s.w.cfg.Store.Open(args.Name)
	if err != nil {
		return err
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return err
	}
	reply.Data = data
	return nil
}

// Handoff serves the stored bytes of the listed segments to the master,
// which copies them into the job's DFS so this worker's winning map
// output survives its departure (graceful drain, winner persistence).
func (s *workerService) Handoff(args *HandoffArgs, reply *HandoffReply) error {
	w := s.w
	if w.dead.Load() {
		return fmt.Errorf("distmr: worker %d is dead", w.id.Load())
	}
	desc, err := DecodeHandoff(args.Desc)
	if err != nil {
		return err
	}
	reply.Data = make([][]byte, 0, len(desc.Segments))
	for _, name := range desc.Segments {
		rc, err := w.cfg.Store.Open(name)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return err
		}
		reply.Data = append(reply.Data, data)
	}
	w.log.Debug("handed off segments", "job", desc.JobSeq, "segments", len(desc.Segments))
	return nil
}

// CleanJob retires a job: close its service connections and delete its
// spill segments (local map outputs and fetched shuffle data).
func (s *workerService) CleanJob(args *CleanJobArgs, _ *CleanJobReply) error {
	w := s.w
	w.mu.Lock()
	j := w.jobs[args.JobSeq]
	delete(w.jobs, args.JobSeq)
	// Remember the retirement (bounded ring) so a straggling prefetch
	// hint cannot recreate segments the RemovePrefix below deletes.
	w.cleaned = append(w.cleaned, args.JobSeq)
	if len(w.cleaned) > 8 {
		w.cleaned = w.cleaned[len(w.cleaned)-8:]
	}
	w.mu.Unlock()
	if j != nil {
		// An attempt the master abandoned (reassigned lease, late backup)
		// can still be building this entry. Once.Do blocks until any
		// in-flight build finishes — and marks a never-built entry retired
		// — so reading j.code below is ordered after the build.
		j.once.Do(func() { j.err = fmt.Errorf("distmr: job %d retired", args.JobSeq) })
		if j.code != nil && j.code.Close != nil {
			j.code.Close() //nolint:errcheck // best-effort service teardown
		}
	}
	w.cfg.Store.RemovePrefix(fmt.Sprintf("j%05d/", args.JobSeq))
	return nil
}

// Shutdown asks the worker to exit (used by the master's teardown; the
// heartbeat reply carries the same signal for workers mid-beat).
func (s *workerService) Shutdown(_ *ShutdownArgs, _ *ShutdownReply) error {
	w := s.w
	go func() {
		// Give the reply a moment to flush before the connection closes.
		time.Sleep(20 * time.Millisecond)
		w.die(false)
	}()
	return nil
}
