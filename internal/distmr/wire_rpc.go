package distmr

// Frame-codec implementations (rpcutil.Message) for every RPC arg and
// reply type in proto.go, so no distmr call ever pays the gob fallback.
// Most envelopes carry a single pre-encoded payload or a scalar or two;
// the frames mirror the struct fields in order, with no per-message
// version byte — the connection stream (rpcutil frame codec) and the
// inner payloads (wireVersion) are versioned already, and an envelope
// cannot change without one of those changing too.
//
// DecodeFrame inputs are pooled codec buffers, recycled as soon as the
// call returns: every retained byte slice is copied out.

import (
	"encoding/binary"
	"fmt"

	"ffmr/internal/rpcutil"
)

// finish returns the decoder's error, rejecting trailing bytes, and is
// shared by every envelope DecodeFrame.
func (d *decoder) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("distmr: %d trailing bytes after %s", len(d.b)-d.off, what)
	}
	return nil
}

// copyBytes decodes a length-prefixed byte field into a fresh slice
// (nil for empty), detached from the codec's pooled buffer.
func (d *decoder) copyBytes(what string) []byte {
	p := d.bytes(what)
	if len(p) == 0 {
		return nil
	}
	return append([]byte(nil), p...)
}

// Compile-time check that every proto envelope speaks the frame codec.
var (
	_ rpcutil.Message = (*RegisterArgs)(nil)
	_ rpcutil.Message = (*RegisterReply)(nil)
	_ rpcutil.Message = (*HeartbeatArgs)(nil)
	_ rpcutil.Message = (*HeartbeatReply)(nil)
	_ rpcutil.Message = (*RetireArgs)(nil)
	_ rpcutil.Message = (*RetireReply)(nil)
	_ rpcutil.Message = (*HandoffArgs)(nil)
	_ rpcutil.Message = (*HandoffReply)(nil)
	_ rpcutil.Message = (*ReadFileArgs)(nil)
	_ rpcutil.Message = (*ReadFileReply)(nil)
	_ rpcutil.Message = (*StartTaskArgs)(nil)
	_ rpcutil.Message = (*StartTaskReply)(nil)
	_ rpcutil.Message = (*PrefetchArgs)(nil)
	_ rpcutil.Message = (*PrefetchReply)(nil)
	_ rpcutil.Message = (*WatchArgs)(nil)
	_ rpcutil.Message = (*WatchReply)(nil)
	_ rpcutil.Message = (*FetchSegmentArgs)(nil)
	_ rpcutil.Message = (*FetchSegmentReply)(nil)
	_ rpcutil.Message = (*CleanJobArgs)(nil)
	_ rpcutil.Message = (*CleanJobReply)(nil)
	_ rpcutil.Message = (*ShutdownArgs)(nil)
	_ rpcutil.Message = (*ShutdownReply)(nil)
)

// AppendFrame implements rpcutil.Message.
func (a *RegisterArgs) AppendFrame(b []byte) []byte { return appendBytes(b, a.Data) }

// DecodeFrame implements rpcutil.Message.
func (a *RegisterArgs) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	a.Data = d.copyBytes("register data")
	return d.finish("register args")
}

// AppendFrame implements rpcutil.Message.
func (r *RegisterReply) AppendFrame(b []byte) []byte {
	b = binary.AppendUvarint(b, r.Worker)
	b = binary.AppendUvarint(b, r.Instance)
	return binary.AppendVarint(b, r.HeartbeatInterval)
}

// DecodeFrame implements rpcutil.Message.
func (r *RegisterReply) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	r.Worker = d.uvarint("register worker")
	r.Instance = d.uvarint("register instance")
	r.HeartbeatInterval = d.varint("register heartbeat interval")
	return d.finish("register reply")
}

// AppendFrame implements rpcutil.Message.
func (a *HeartbeatArgs) AppendFrame(b []byte) []byte { return appendBytes(b, a.Data) }

// DecodeFrame implements rpcutil.Message.
func (a *HeartbeatArgs) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	a.Data = d.copyBytes("heartbeat data")
	return d.finish("heartbeat args")
}

// AppendFrame implements rpcutil.Message.
func (r *HeartbeatReply) AppendFrame(b []byte) []byte {
	b = appendBool(b, r.Shutdown)
	b = appendBool(b, r.Unknown)
	return appendBool(b, r.Retired)
}

// DecodeFrame implements rpcutil.Message.
func (r *HeartbeatReply) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	r.Shutdown = d.boolean("heartbeat shutdown")
	r.Unknown = d.boolean("heartbeat unknown")
	r.Retired = d.boolean("heartbeat retired")
	return d.finish("heartbeat reply")
}

// AppendFrame implements rpcutil.Message.
func (a *RetireArgs) AppendFrame(b []byte) []byte { return appendBytes(b, a.Data) }

// DecodeFrame implements rpcutil.Message.
func (a *RetireArgs) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	a.Data = d.copyBytes("retire data")
	return d.finish("retire args")
}

// AppendFrame implements rpcutil.Message.
func (a *HandoffArgs) AppendFrame(b []byte) []byte { return appendBytes(b, a.Desc) }

// DecodeFrame implements rpcutil.Message.
func (a *HandoffArgs) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	a.Desc = d.copyBytes("handoff desc")
	return d.finish("handoff args")
}

// AppendFrame implements rpcutil.Message.
func (r *HandoffReply) AppendFrame(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(r.Data)))
	for _, p := range r.Data {
		b = appendBytes(b, p)
	}
	return b
}

// DecodeFrame implements rpcutil.Message.
func (r *HandoffReply) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	if n := d.count("handoff segments"); n > 0 {
		r.Data = make([][]byte, n)
		for i := range r.Data {
			r.Data[i] = d.copyBytes("handoff segment")
		}
	}
	return d.finish("handoff reply")
}

// AppendFrame implements rpcutil.Message.
func (a *ReadFileArgs) AppendFrame(b []byte) []byte { return appendString(b, a.Name) }

// DecodeFrame implements rpcutil.Message.
func (a *ReadFileArgs) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	a.Name = d.str("read file name")
	return d.finish("read file args")
}

// AppendFrame implements rpcutil.Message.
func (r *ReadFileReply) AppendFrame(b []byte) []byte { return appendBytes(b, r.Data) }

// DecodeFrame implements rpcutil.Message.
func (r *ReadFileReply) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	r.Data = d.copyBytes("read file data")
	return d.finish("read file reply")
}

// AppendFrame implements rpcutil.Message.
func (a *StartTaskArgs) AppendFrame(b []byte) []byte { return appendBytes(b, a.Desc) }

// DecodeFrame implements rpcutil.Message.
func (a *StartTaskArgs) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	a.Desc = d.copyBytes("start task desc")
	return d.finish("start task args")
}

// AppendFrame implements rpcutil.Message.
func (a *PrefetchArgs) AppendFrame(b []byte) []byte { return appendBytes(b, a.Desc) }

// DecodeFrame implements rpcutil.Message.
func (a *PrefetchArgs) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	a.Desc = d.copyBytes("prefetch desc")
	return d.finish("prefetch args")
}

// AppendFrame implements rpcutil.Message.
func (a *FetchSegmentArgs) AppendFrame(b []byte) []byte { return appendString(b, a.Name) }

// DecodeFrame implements rpcutil.Message.
func (a *FetchSegmentArgs) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	a.Name = d.str("fetch segment name")
	return d.finish("fetch segment args")
}

// AppendFrame implements rpcutil.Message.
func (r *FetchSegmentReply) AppendFrame(b []byte) []byte { return appendBytes(b, r.Data) }

// DecodeFrame implements rpcutil.Message.
func (r *FetchSegmentReply) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	r.Data = d.copyBytes("fetch segment data")
	return d.finish("fetch segment reply")
}

// AppendFrame implements rpcutil.Message.
func (a *CleanJobArgs) AppendFrame(b []byte) []byte { return binary.AppendUvarint(b, a.JobSeq) }

// DecodeFrame implements rpcutil.Message.
func (a *CleanJobArgs) DecodeFrame(b []byte) error {
	d := &decoder{b: b}
	a.JobSeq = d.uvarint("clean job seq")
	return d.finish("clean job args")
}

// emptyFrame is the shared implementation for the empty reply/arg
// structs: a zero-byte body that must stay zero bytes.
func emptyFrame(b []byte, what string) error {
	if len(b) != 0 {
		return fmt.Errorf("distmr: %d trailing bytes after %s", len(b), what)
	}
	return nil
}

// AppendFrame implements rpcutil.Message.
func (*RetireReply) AppendFrame(b []byte) []byte { return b }

// DecodeFrame implements rpcutil.Message.
func (*RetireReply) DecodeFrame(b []byte) error { return emptyFrame(b, "retire reply") }

// AppendFrame implements rpcutil.Message.
func (*StartTaskReply) AppendFrame(b []byte) []byte { return b }

// DecodeFrame implements rpcutil.Message.
func (*StartTaskReply) DecodeFrame(b []byte) error { return emptyFrame(b, "start task reply") }

// AppendFrame implements rpcutil.Message.
func (*PrefetchReply) AppendFrame(b []byte) []byte { return b }

// DecodeFrame implements rpcutil.Message.
func (*PrefetchReply) DecodeFrame(b []byte) error { return emptyFrame(b, "prefetch reply") }

// AppendFrame implements rpcutil.Message.
func (*WatchArgs) AppendFrame(b []byte) []byte { return b }

// DecodeFrame implements rpcutil.Message.
func (*WatchArgs) DecodeFrame(b []byte) error { return emptyFrame(b, "watch args") }

// AppendFrame implements rpcutil.Message.
func (*WatchReply) AppendFrame(b []byte) []byte { return b }

// DecodeFrame implements rpcutil.Message.
func (*WatchReply) DecodeFrame(b []byte) error { return emptyFrame(b, "watch reply") }

// AppendFrame implements rpcutil.Message.
func (*CleanJobReply) AppendFrame(b []byte) []byte { return b }

// DecodeFrame implements rpcutil.Message.
func (*CleanJobReply) DecodeFrame(b []byte) error { return emptyFrame(b, "clean job reply") }

// AppendFrame implements rpcutil.Message.
func (*ShutdownArgs) AppendFrame(b []byte) []byte { return b }

// DecodeFrame implements rpcutil.Message.
func (*ShutdownArgs) DecodeFrame(b []byte) error { return emptyFrame(b, "shutdown args") }

// AppendFrame implements rpcutil.Message.
func (*ShutdownReply) AppendFrame(b []byte) []byte { return b }

// DecodeFrame implements rpcutil.Message.
func (*ShutdownReply) DecodeFrame(b []byte) error { return emptyFrame(b, "shutdown reply") }
