package distmr

import "ffmr/internal/spill"

// This file defines the RPC envelopes exchanged between master and
// workers. Every payload — task descriptors, heartbeats, task results,
// prefetch hints — travels pre-encoded in the custom wire format
// (wire.go, spec in DESIGN.md §13) inside these thin []byte envelopes,
// and the envelopes themselves frame onto the wire via rpcutil's frame
// codec (wire_rpc.go holds the Message implementations), so the codec
// tax on the task hot path is the cost of the hand-rolled framing —
// no reflection-driven gob anywhere on the steady-state path.

// RegisterArgs carries one wire-encoded JoinRequest.
type RegisterArgs struct {
	Data []byte
}

// RegisterReply assigns the worker its identity and cadence.
type RegisterReply struct {
	Worker uint64
	// Instance identifies this master instance; the worker echoes it in
	// every heartbeat so a restarted master (fresh instance, fresh id
	// counter) can tell stale workers from re-registered ones.
	Instance          uint64
	HeartbeatInterval int64 // nanoseconds
}

// HeartbeatArgs carries one wire-encoded Heartbeat.
type HeartbeatArgs struct {
	Data []byte
}

// HeartbeatReply is the master's response; Shutdown tells the worker to
// exit (the master is shutting down). Unknown means the master has no
// live record of this worker id (it was expired, or the master
// restarted): the worker should re-register for a fresh identity.
// Retired means the worker's drain completed — its outputs are handed
// off — and it may now exit cleanly.
type HeartbeatReply struct {
	Shutdown bool
	Unknown  bool
	Retired  bool
}

// RetireArgs carries one wire-encoded Retire request.
type RetireArgs struct {
	Data []byte
}

// RetireReply is empty.
type RetireReply struct{}

// HandoffArgs carries one wire-encoded HandoffDescriptor, asking a
// draining worker for the stored bytes of the listed segments.
type HandoffArgs struct {
	Desc []byte
}

// HandoffReply returns the stored (possibly compressed) bytes of each
// requested segment, in descriptor order.
type HandoffReply struct {
	Data [][]byte
}

// ReadFileArgs asks the master for a file from the job's DFS (side
// files, schimmy base partitions).
type ReadFileArgs struct {
	Name string
}

// ReadFileReply returns the file contents.
type ReadFileReply struct {
	Data []byte
}

// StartTaskArgs carries one wire-encoded TaskDescriptor. The call
// returns as soon as the worker has accepted (or crashed on) the task;
// the result arrives later as a Completion riding a heartbeat, so one
// worker can run many attempts without holding an RPC open per task.
type StartTaskArgs struct {
	Desc []byte
}

// StartTaskReply is empty: acceptance is the reply. An RPC-level error
// means the worker died before accepting (the master reassigns without
// consuming an attempt); task body failures travel in the eventual
// completion's TaskResult.Err and consume Fault.MaxAttempts.
type StartTaskReply struct{}

// PrefetchArgs carries one wire-encoded PrefetchDescriptor, hinting a
// worker to pull shuffle segments ahead of reduce dispatch.
type PrefetchArgs struct {
	Desc []byte
}

// PrefetchReply is empty; the hint is advisory and never fails.
type PrefetchReply struct{}

// WatchArgs subscribes the master to a worker's death: the call blocks
// until the worker exits, so a crash surfaces to the master as the
// pending call erroring out — the prompt-failure signal the old
// blocking RunTask lease provided, without pinning a call per task.
type WatchArgs struct{}

// WatchReply is empty; Watch only ever returns when the worker dies or
// shuts down.
type WatchReply struct{}

// TaskResult is what a completed task attempt reports. Only the winning
// attempt's result is merged into the job's statistics, so retried and
// speculated attempts leave no trace.
type TaskResult struct {
	// Err is a task body failure (consumes an attempt); empty on success.
	Err string

	// Map-side statistics, mirroring the simulated engine's mapTaskStats:
	// InRecs input records, OutRecs pre-combine emissions, RawBytes the
	// framed output size, MaxFrame the largest framed record.
	InRecs   int64
	OutRecs  int64
	RawBytes int64
	MaxFrame int64
	Spills   int64
	// Parts holds the map output segment metadata per partition; the
	// segments live in the worker's local store until the job is cleaned.
	Parts [][]spill.Segment

	// Reduce-side results.
	OutputData []byte // the output partition's record file
	OutBytes   int64
	OutRecords int64
	Fetch      int64 // shuffle bytes fetched (raw)
	Inter      int64 // subset fetched across simulated node boundaries
	MergePasses   int64
	MaxMergeFanIn int64
	MaxGroup      int64
	// LostMaps lists map tasks whose segments could not be fetched; the
	// master re-runs them and re-dispatches this reduce. Not a failure.
	// LostFrom holds, per entry, the worker ID the failed fetch targeted,
	// so the master only invalidates a map whose winning output still
	// lives on that worker — a map already re-run elsewhere is left alone.
	LostMaps []int
	LostFrom []uint64

	// Counters is the attempt's user counter snapshot.
	Counters map[string]int64
	// DurNanos is the attempt's measured execution time, feeding the
	// cost model exactly as the simulated engine's measured durations do.
	DurNanos int64
}

// FetchSegmentArgs asks a worker for one spill segment's stored bytes.
type FetchSegmentArgs struct {
	Name string
}

// FetchSegmentReply returns the segment's stored (possibly compressed)
// bytes.
type FetchSegmentReply struct {
	Data []byte
}

// CleanJobArgs retires a job on a worker: its code is closed and its
// store prefix removed.
type CleanJobArgs struct {
	JobSeq uint64
}

// CleanJobReply is empty.
type CleanJobReply struct{}

// ShutdownArgs asks a worker to exit.
type ShutdownArgs struct{}

// ShutdownReply is empty.
type ShutdownReply struct{}
