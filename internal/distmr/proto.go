package distmr

import "ffmr/internal/spill"

// This file defines the RPC envelopes exchanged between master and
// workers. Task descriptors and heartbeats travel pre-encoded in the
// custom wire format (wire.go) inside these envelopes; results and
// bookkeeping use net/rpc's native gob encoding.

// RegisterArgs carries one wire-encoded JoinRequest.
type RegisterArgs struct {
	Data []byte
}

// RegisterReply assigns the worker its identity and cadence.
type RegisterReply struct {
	Worker uint64
	// Instance identifies this master instance; the worker echoes it in
	// every heartbeat so a restarted master (fresh instance, fresh id
	// counter) can tell stale workers from re-registered ones.
	Instance          uint64
	HeartbeatInterval int64 // nanoseconds
}

// HeartbeatArgs carries one wire-encoded Heartbeat.
type HeartbeatArgs struct {
	Data []byte
}

// HeartbeatReply is the master's response; Shutdown tells the worker to
// exit (the master is shutting down). Unknown means the master has no
// live record of this worker id (it was expired, or the master
// restarted): the worker should re-register for a fresh identity.
// Retired means the worker's drain completed — its outputs are handed
// off — and it may now exit cleanly.
type HeartbeatReply struct {
	Shutdown bool
	Unknown  bool
	Retired  bool
}

// RetireArgs carries one wire-encoded Retire request.
type RetireArgs struct {
	Data []byte
}

// RetireReply is empty.
type RetireReply struct{}

// HandoffArgs carries one wire-encoded HandoffDescriptor, asking a
// draining worker for the stored bytes of the listed segments.
type HandoffArgs struct {
	Desc []byte
}

// HandoffReply returns the stored (possibly compressed) bytes of each
// requested segment, in descriptor order.
type HandoffReply struct {
	Data [][]byte
}

// ReadFileArgs asks the master for a file from the job's DFS (side
// files, schimmy base partitions).
type ReadFileArgs struct {
	Name string
}

// ReadFileReply returns the file contents.
type ReadFileReply struct {
	Data []byte
}

// RunTaskArgs carries one wire-encoded TaskDescriptor.
type RunTaskArgs struct {
	Desc []byte
}

// RunTaskReply carries the task's result. RPC-level errors mean the
// worker died (the master reassigns without consuming an attempt); task
// body failures travel in TaskResult.Err and consume Fault.MaxAttempts.
type RunTaskReply struct {
	Result TaskResult
}

// TaskResult is what a completed task attempt reports. Only the winning
// attempt's result is merged into the job's statistics, so retried and
// speculated attempts leave no trace.
type TaskResult struct {
	// Err is a task body failure (consumes an attempt); empty on success.
	Err string

	// Map-side statistics, mirroring the simulated engine's mapTaskStats:
	// InRecs input records, OutRecs pre-combine emissions, RawBytes the
	// framed output size, MaxFrame the largest framed record.
	InRecs   int64
	OutRecs  int64
	RawBytes int64
	MaxFrame int64
	Spills   int64
	// Parts holds the map output segment metadata per partition; the
	// segments live in the worker's local store until the job is cleaned.
	Parts [][]spill.Segment

	// Reduce-side results.
	OutputData []byte // the output partition's record file
	OutBytes   int64
	OutRecords int64
	Fetch      int64 // shuffle bytes fetched (raw)
	Inter      int64 // subset fetched across simulated node boundaries
	MergePasses   int64
	MaxMergeFanIn int64
	MaxGroup      int64
	// LostMaps lists map tasks whose segments could not be fetched; the
	// master re-runs them and re-dispatches this reduce. Not a failure.
	// LostFrom holds, per entry, the worker ID the failed fetch targeted,
	// so the master only invalidates a map whose winning output still
	// lives on that worker — a map already re-run elsewhere is left alone.
	LostMaps []int
	LostFrom []uint64

	// Counters is the attempt's user counter snapshot.
	Counters map[string]int64
	// DurNanos is the attempt's measured execution time, feeding the
	// cost model exactly as the simulated engine's measured durations do.
	DurNanos int64
}

// FetchSegmentArgs asks a worker for one spill segment's stored bytes.
type FetchSegmentArgs struct {
	Name string
}

// FetchSegmentReply returns the segment's stored (possibly compressed)
// bytes.
type FetchSegmentReply struct {
	Data []byte
}

// CleanJobArgs retires a job on a worker: its code is closed and its
// store prefix removed.
type CleanJobArgs struct {
	JobSeq uint64
}

// CleanJobReply is empty.
type CleanJobReply struct{}

// ShutdownArgs asks a worker to exit.
type ShutdownArgs struct{}

// ShutdownReply is empty.
type ShutdownReply struct{}
