package distmr

import (
	"testing"
	"time"

	"ffmr/internal/leakcheck"
	"ffmr/internal/mapreduce"
	"ffmr/internal/trace"
)

// The tests in this file pin the elastic-membership behavior: a worker
// joining mid-job takes work immediately, a graceful drain hands its
// winning map output off through the DFS and re-executes nothing, while
// a crash at the same point forces re-execution, and the autoscaler
// grows and shrinks the fleet from the master's published hints.

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sumOutcome carries an async job's result.
type sumOutcome struct {
	res *mapreduce.Result
	err error
}

// runSumAsync starts the distributed job on its own goroutine and
// returns a channel carrying its outcome.
func runSumAsync(c *mapreduce.Cluster) chan sumOutcome {
	done := make(chan sumOutcome, 1)
	go func() {
		res, err := c.Run(sumJob(c.FS))
		done <- sumOutcome{res: res, err: err}
	}()
	return done
}

// TestJoinMidJobTakesWork starts a one-worker cluster on a job that is
// slow enough to still be mapping when a second worker registers. The
// late joiner must execute task attempts, appear live on /status, and
// the output and counters must still match the simulated engine.
func TestJoinMidJobTakesWork(t *testing.T) {
	defer leakcheck.Check(t)()

	const files, perFile = 8, 100
	simC := sumCluster(t, files, perFile)
	simRes, err := simC.Run(sumJob(simC.FS))
	if err != nil {
		t.Fatalf("simulated run: %v", err)
	}

	h, err := StartHarness(HarnessConfig{Workers: 1, Tracer: trace.New()})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()
	// Slow the founding worker down so the job is still running when the
	// second worker joins.
	h.Workers()[0].SetTaskDelay(10 * time.Millisecond)

	distC := sumCluster(t, files, perFile)
	distC.Distributed = h.Master
	done := runSumAsync(distC)

	// Join once the job is demonstrably underway.
	waitFor(t, 5*time.Second, "first task to finish", func() bool {
		return h.Workers()[0].TasksDone() >= 1
	})
	joiner, err := h.AddWorker()
	if err != nil {
		t.Fatalf("AddWorker: %v", err)
	}
	waitFor(t, 5*time.Second, "joiner to register", func() bool {
		return h.Master.LiveWorkers() == 2
	})
	st := h.Master.Status()
	found := false
	for _, ws := range st.Workers {
		if ws.ID == joiner.ID() {
			found = true
			if ws.State != "live" {
				t.Errorf("joiner state on /status = %q, want live", ws.State)
			}
		}
	}
	if !found {
		t.Error("joiner missing from /status worker list")
	}

	out := <-done
	if out.err != nil {
		t.Fatalf("distributed run: %v", out.err)
	}
	if n := joiner.TasksDone(); n < 1 {
		t.Errorf("late joiner executed %d task attempts, want >= 1", n)
	}
	if !equalTotals(readTotals(t, simC.FS), readTotals(t, distC.FS)) {
		t.Error("output diverges from the simulated engine after mid-job join")
	}
	if simRes.Counters["mapped"] != out.res.Counters["mapped"] ||
		simRes.Counters["groups"] != out.res.Counters["groups"] {
		t.Errorf("counters diverge after mid-job join: simulated %v, distributed %v",
			simRes.Counters, out.res.Counters)
	}
}

// drainPoint runs the sum job against a fresh 3-worker harness, waits
// until worker 0 has completed at least two tasks mid-job, applies act
// to it, and returns the harness plus the job error.
func drainPoint(t *testing.T, act func(w *Worker)) (*Harness, *mapreduce.Cluster, error) {
	t.Helper()
	const files, perFile = 12, 80
	// One slot per worker plus a uniform slow-down stretches the map
	// phase to many waves, so the drain (or crash) lands mid-job with
	// the victim holding winning map output that reducers still need —
	// the hand-off (or recovery) must happen while the job runs, not be
	// mooted by the job finishing first.
	h, err := StartHarness(HarnessConfig{
		Workers: 3,
		Tracer:  trace.New(),
		Master:  Config{SlotsPerWorker: 1},
	})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	for _, w := range h.Workers() {
		w.SetTaskDelay(15 * time.Millisecond)
	}
	victim := h.Workers()[0]

	distC := sumCluster(t, files, perFile)
	distC.Distributed = h.Master
	done := runSumAsync(distC)

	waitFor(t, 10*time.Second, "victim to win tasks", func() bool {
		return victim.TasksDone() >= 2
	})
	act(victim)
	out := <-done
	return h, distC, out.err
}

// TestGracefulDrainHandsOffWithoutReexecution is the drain invariant:
// retiring a worker that holds winning map output must hand that output
// off through the DFS and re-execute zero completed maps — the lost-map
// recovery and reassignment counters stay at zero — and the drained
// worker must exit once the master retires it.
func TestGracefulDrainHandsOffWithoutReexecution(t *testing.T) {
	defer leakcheck.Check(t)()

	const files, perFile = 12, 80
	simC := sumCluster(t, files, perFile)
	simRes, err := simC.Run(sumJob(simC.FS))
	if err != nil {
		t.Fatalf("simulated run: %v", err)
	}

	h, distC, runErr := drainPoint(t, func(w *Worker) { w.Drain() })
	defer h.Close()
	if runErr != nil {
		t.Fatalf("distributed run with drain: %v", runErr)
	}

	reg := h.Master.registry()
	if n := reg.Counter(CounterLostMapRecoveries).Value(); n != 0 {
		t.Errorf("drain re-executed %d completed maps, want 0", n)
	}
	if n := reg.Counter(CounterReassigns).Value(); n != 0 {
		t.Errorf("drain caused %d reassignments, want 0", n)
	}
	if n := reg.Counter(CounterHandoffSegments).Value(); n == 0 {
		t.Error("no segments were handed off; the drain exercised nothing")
	}
	if n := reg.Counter(CounterDrains).Value(); n != 1 {
		t.Errorf("drains completed = %d, want 1", n)
	}

	// The drained worker is told to exit via its next heartbeat.
	victim := h.Workers()[0]
	waitFor(t, 5*time.Second, "drained worker to exit", victim.Dead)

	distRes, err := distC.Run(sumJob(distC.FS)) // second job on the shrunk fleet still works
	if err != nil {
		t.Fatalf("follow-up job after drain: %v", err)
	}
	if simRes.Counters["mapped"] != distRes.Counters["mapped"] {
		t.Errorf("counters diverge after drain: simulated %v, distributed %v",
			simRes.Counters, distRes.Counters)
	}
	if !equalTotals(readTotals(t, simC.FS), readTotals(t, distC.FS)) {
		t.Error("output diverges from the simulated engine after graceful drain")
	}
}

// TestCrashAtSamePointReexecutes is the control for the drain invariant:
// killing the worker at the same point loses its winning map output, so
// the scheduler must re-execute those maps (lost-map recoveries > 0).
func TestCrashAtSamePointReexecutes(t *testing.T) {
	defer leakcheck.Check(t)()

	const files, perFile = 12, 80
	simC := sumCluster(t, files, perFile)
	if _, err := simC.Run(sumJob(simC.FS)); err != nil {
		t.Fatalf("simulated run: %v", err)
	}

	h, distC, runErr := drainPoint(t, func(w *Worker) { w.Kill() })
	defer h.Close()
	if runErr != nil {
		t.Fatalf("distributed run with crash: %v", runErr)
	}

	reg := h.Master.registry()
	recovered := reg.Counter(CounterLostMapRecoveries).Value()
	reassigned := reg.Counter(CounterReassigns).Value()
	if recovered == 0 && reassigned == 0 {
		t.Error("crash triggered neither lost-map recovery nor reassignment; the control proves nothing")
	}
	if !equalTotals(readTotals(t, simC.FS), readTotals(t, distC.FS)) {
		t.Error("output diverges from the simulated engine after crash recovery")
	}
}

// TestDeadWorkerExpiresFromStatus pins the registry-expiry fix: a
// crashed worker is listed as dead on /status only until DeadRetention
// passes, then the janitor removes it entirely.
func TestDeadWorkerExpiresFromStatus(t *testing.T) {
	defer leakcheck.Check(t)()

	h, err := StartHarness(HarnessConfig{
		Workers: 2,
		Master: Config{
			HeartbeatInterval: 10 * time.Millisecond,
			DeadRetention:     50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()

	victim := h.Workers()[0]
	victimID := victim.ID()
	victim.Kill()

	// First the master notices the death (missed heartbeats mark it
	// dead), then the janitor expires the registry entry.
	waitFor(t, 5*time.Second, "death to be noticed", func() bool {
		return h.Master.LiveWorkers() == 1
	})
	waitFor(t, 5*time.Second, "dead worker to expire from /status", func() bool {
		for _, ws := range h.Master.Status().Workers {
			if ws.ID == victimID {
				return false
			}
		}
		return true
	})
}

// TestAutoscalerGrowsAndShrinks runs a deep queue through a one-worker
// cluster with the autoscaler on: it must add workers from the
// queue-depth hint, then drain back to Min once the cluster idles.
func TestAutoscalerGrowsAndShrinks(t *testing.T) {
	defer leakcheck.Check(t)()

	const files, perFile = 12, 60
	simC := sumCluster(t, files, perFile)
	if _, err := simC.Run(sumJob(simC.FS)); err != nil {
		t.Fatalf("simulated run: %v", err)
	}

	h, err := StartHarness(HarnessConfig{Workers: 1, Tracer: trace.New()})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()
	h.Workers()[0].SetTaskDelay(10 * time.Millisecond)

	as := h.StartAutoscaler(AutoscaleConfig{
		Min:            1,
		Max:            3,
		Interval:       15 * time.Millisecond,
		QueuePerWorker: 1,
	})
	defer as.Stop()

	distC := sumCluster(t, files, perFile)
	distC.Distributed = h.Master
	if out := <-runSumAsync(distC); out.err != nil {
		t.Fatalf("distributed run under autoscaler: %v", out.err)
	}

	if as.ScaleUps() == 0 {
		t.Error("autoscaler never scaled up despite a deep queue")
	}
	// Idle now: the autoscaler drains back to Min.
	waitFor(t, 10*time.Second, "scale-down to Min", func() bool {
		return as.ScaleDowns() >= 1 && h.Master.LiveWorkers() == 1
	})
	as.Stop()

	if !equalTotals(readTotals(t, simC.FS), readTotals(t, distC.FS)) {
		t.Error("output diverges from the simulated engine under autoscaling")
	}
}
