package distmr

import (
	"fmt"
	"sync"
	"time"

	"ffmr/internal/obsv"
	"ffmr/internal/spill"
	"ffmr/internal/trace"
)

// HarnessConfig configures an in-process cluster: a master plus N workers
// on real TCP sockets inside one process. Tests and the differential
// harness use it to exercise the full wire protocol without spawning
// processes.
type HarnessConfig struct {
	// Workers is how many workers to start (default 3).
	Workers int
	// Replace restarts a fresh worker whenever one dies from injected
	// WorkerCrashRate, the way a cluster re-provisions dead tasktrackers;
	// jobs with crash injection can then always finish.
	Replace bool
	// Master overrides the master configuration. Leave Master.Addr empty
	// for an ephemeral loopback port; set it to also accept external
	// worker processes on a known address.
	Master Config
	// Tracer is handed to the master. Workers own private tracers whose
	// spans and histograms ship back on heartbeats (DESIGN.md §14), so
	// the master's trace ends up showing both sides either way.
	Tracer *trace.Tracer
	// NewStore builds each worker's segment store (default in-memory).
	NewStore func() spill.RunStore
	// WorkerObsv is handed to every worker (replacements included). Use
	// an ephemeral AdminAddr like "127.0.0.1:0" — each worker binds its
	// own port. Master observability is configured via Master.Obsv.
	WorkerObsv obsv.Options
}

// Harness is a running in-process master/worker cluster.
type Harness struct {
	Master *Master

	cfg HarnessConfig

	mu      sync.Mutex
	workers []*Worker
	closed  bool
}

// StartHarness boots a master and its workers, returning once every
// worker has registered.
func StartHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	mcfg := cfg.Master
	if mcfg.Tracer == nil {
		mcfg.Tracer = cfg.Tracer
	}
	m, err := NewMaster(mcfg)
	if err != nil {
		return nil, err
	}
	h := &Harness{Master: m, cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		if _, err := h.startWorker(); err != nil {
			h.Close()
			return nil, err
		}
	}
	if err := m.WaitForWorkers(cfg.Workers, 10*time.Second); err != nil {
		h.Close()
		return nil, err
	}
	return h, nil
}

func (h *Harness) startWorker() (*Worker, error) {
	wcfg := WorkerConfig{
		MasterAddr: h.Master.Addr(),
		Obsv:       h.cfg.WorkerObsv,
	}
	if h.cfg.NewStore != nil {
		wcfg.Store = h.cfg.NewStore()
	}
	if h.cfg.Replace {
		wcfg.OnDeath = func(*Worker) { h.replaceWorker() }
	}
	w, err := StartWorker(wcfg)
	if err != nil {
		return nil, fmt.Errorf("distmr: harness worker: %w", err)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		w.Close()
		return nil, fmt.Errorf("distmr: harness closed")
	}
	h.workers = append(h.workers, w)
	h.mu.Unlock()
	return w, nil
}

// replaceWorker spawns a substitute for a crashed worker. Failures are
// dropped: if the master is shutting down there is nothing to replace
// for, and a running job will fail its no-live-worker wait instead.
func (h *Harness) replaceWorker() {
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return
	}
	h.startWorker() //nolint:errcheck // best-effort re-provisioning
}

// AddWorker starts one additional worker mid-flight — an elastic
// scale-up. The new worker registers with the master and is immediately
// eligible for pending leases and shuffle serving.
func (h *Harness) AddWorker() (*Worker, error) {
	return h.startWorker()
}

// Workers returns the currently tracked workers (dead ones included until
// Close prunes them).
func (h *Harness) Workers() []*Worker {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Worker(nil), h.workers...)
}

// liveWorkers returns tracked workers that are neither dead nor draining.
func (h *Harness) liveWorkers() []*Worker {
	h.mu.Lock()
	defer h.mu.Unlock()
	var live []*Worker
	for _, w := range h.workers {
		if !w.dead.Load() && !w.draining.Load() {
			live = append(live, w)
		}
	}
	return live
}

// Close shuts the cluster down: master first (so workers stop receiving
// work), then every worker, waiting for each to fully exit so leak checks
// are clean.
func (h *Harness) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	workers := h.workers
	h.workers = nil
	h.mu.Unlock()

	h.Master.Shutdown()
	for _, w := range workers {
		w.Close()
	}
	for _, w := range workers {
		w.Wait()
	}
}
