package distmr

import (
	"encoding/binary"
	"fmt"
	"time"

	"ffmr/internal/trace"
)

// Wire encoding for the telemetry-shipping payloads that ride heartbeats
// since wire version 4: drained trace spans (SpanBatch), and absolute
// counter/histogram snapshots of the worker's registry. DESIGN.md §14
// specifies the protocol; the framing follows the §13 conventions
// (version byte on standalone frames, uvarint counts bounded by the
// remaining input, canonical field order).

// SpanBatch is one drain of a worker's tracer, shipped at-least-once on
// heartbeats until a beat is acknowledged. Seq is assigned at drain time
// and is strictly increasing per worker process, so the master can
// discard re-delivered batches by sequence alone: a batch is applied
// exactly once even when the acknowledgement of the beat that carried it
// was lost.
type SpanBatch struct {
	Seq   uint64
	Spans []trace.ShippedSpan
}

// MetricSample is one worker registry counter's absolute value. Shipping
// absolute values (the master applies value - lastSeen) keeps the merge
// idempotent under at-least-once beat delivery, where shipping deltas
// would double-count on a resend.
type MetricSample struct {
	Name  string
	Value int64
}

// HistSample is one worker registry histogram's absolute snapshot, same
// absolute-value discipline as MetricSample. Buckets may be trimmed of
// trailing zeros.
type HistSample struct {
	Name    string
	Count   int64
	Sum     int64
	Buckets []int64
}

func appendShippedSpan(b []byte, s *trace.ShippedSpan) []byte {
	b = binary.AppendVarint(b, s.ID)
	b = binary.AppendVarint(b, s.Parent)
	b = appendString(b, s.Cat)
	b = appendString(b, s.Name)
	b = binary.AppendVarint(b, s.TID)
	b = binary.AppendVarint(b, s.Start.UnixNano())
	b = binary.AppendVarint(b, int64(s.Dur))
	b = binary.AppendVarint(b, s.Remote.Run)
	b = binary.AppendVarint(b, s.Remote.Job)
	b = binary.AppendVarint(b, s.Remote.Round)
	b = binary.AppendVarint(b, s.Remote.Span)
	b = binary.AppendUvarint(b, uint64(len(s.Attrs)))
	for i := range s.Attrs {
		a := &s.Attrs[i]
		b = appendString(b, a.Key)
		b = appendBool(b, a.IsStr)
		if a.IsStr {
			b = appendString(b, a.Str)
		} else {
			b = binary.AppendVarint(b, a.Int)
		}
	}
	return b
}

func (d *decoder) shippedSpan(s *trace.ShippedSpan) {
	s.ID = d.varint("span id")
	s.Parent = d.varint("span parent")
	s.Cat = d.str("span cat")
	s.Name = d.str("span name")
	s.TID = d.varint("span tid")
	s.Start = time.Unix(0, d.varint("span start"))
	s.Dur = time.Duration(d.varint("span dur"))
	s.Remote.Run = d.varint("span ctx run")
	s.Remote.Job = d.varint("span ctx job")
	s.Remote.Round = d.varint("span ctx round")
	s.Remote.Span = d.varint("span ctx span")
	if n := d.count("span attrs"); n > 0 {
		s.Attrs = make([]trace.Attr, n)
		for i := range s.Attrs {
			a := &s.Attrs[i]
			a.Key = d.str("attr key")
			a.IsStr = d.boolean("attr kind")
			if a.IsStr {
				a.Str = d.str("attr str")
			} else {
				a.Int = d.varint("attr int")
			}
		}
	}
}

func appendSpanBatchBody(b []byte, sb *SpanBatch) []byte {
	b = binary.AppendUvarint(b, sb.Seq)
	b = binary.AppendUvarint(b, uint64(len(sb.Spans)))
	for i := range sb.Spans {
		b = appendShippedSpan(b, &sb.Spans[i])
	}
	return b
}

func (d *decoder) spanBatchBody(sb *SpanBatch) {
	sb.Seq = d.uvarint("span batch seq")
	if n := d.count("span batch spans"); n > 0 {
		sb.Spans = make([]trace.ShippedSpan, n)
		for i := range sb.Spans {
			d.shippedSpan(&sb.Spans[i])
		}
	}
}

// AppendSpanBatch appends a standalone wire-encoded span batch to b.
func AppendSpanBatch(b []byte, sb *SpanBatch) []byte {
	b = append(b, wireVersion)
	return appendSpanBatchBody(b, sb)
}

// EncodeSpanBatch serializes a span batch into a fresh buffer.
func EncodeSpanBatch(sb *SpanBatch) []byte {
	return AppendSpanBatch(make([]byte, 0, 64), sb)
}

// DecodeSpanBatch parses a standalone encoded span batch. It never
// panics on malformed input.
func DecodeSpanBatch(data []byte) (*SpanBatch, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown span batch wire version %d", v)
	}
	sb := &SpanBatch{}
	d.spanBatchBody(sb)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after span batch", len(data)-d.off)
	}
	return sb, nil
}

// appendCtx appends a trace context (four varints, §14 frame order).
func appendCtx(b []byte, c *trace.Context) []byte {
	b = binary.AppendVarint(b, c.Run)
	b = binary.AppendVarint(b, c.Job)
	b = binary.AppendVarint(b, c.Round)
	b = binary.AppendVarint(b, c.Span)
	return b
}

func (d *decoder) ctx(c *trace.Context) {
	c.Run = d.varint("ctx run")
	c.Job = d.varint("ctx job")
	c.Round = d.varint("ctx round")
	c.Span = d.varint("ctx span")
}

// AppendContext appends a standalone wire-encoded trace context frame.
func AppendContext(b []byte, c *trace.Context) []byte {
	b = append(b, wireVersion)
	return appendCtx(b, c)
}

// DecodeContext parses a standalone encoded trace context frame. It
// never panics on malformed input.
func DecodeContext(data []byte) (*trace.Context, error) {
	d := &decoder{b: data}
	if v := d.byte("version"); d.err == nil && v != wireVersion {
		return nil, fmt.Errorf("distmr: unknown context wire version %d", v)
	}
	c := &trace.Context{}
	d.ctx(c)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("distmr: %d trailing bytes after context", len(data)-d.off)
	}
	return c, nil
}
