package distmr

import (
	"fmt"
	"strconv"
	"testing"

	"ffmr/internal/dfs"
	"ffmr/internal/leakcheck"
	"ffmr/internal/mapreduce"
	"ffmr/internal/trace"
)

// The tests in this file run a self-contained word-count job through the
// in-process harness, so the distributed runtime is exercised without
// depending on internal/core (which registers the FFMR kinds and has its
// own backend differential tests).

type sumMapper struct{}

func (sumMapper) Map(ctx *mapreduce.TaskContext, key, value []byte) error {
	ctx.Inc("mapped", 1)
	ctx.Emit(key, value)
	return nil
}

type sumReducer struct{}

func (sumReducer) Reduce(ctx *mapreduce.TaskContext, key, master []byte, values *mapreduce.Values) error {
	var total int64
	for {
		v := values.Next()
		if v == nil {
			break
		}
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return err
		}
		total += n
	}
	ctx.Inc("groups", 1)
	ctx.Emit(key, []byte(strconv.FormatInt(total, 10)))
	return nil
}

func init() {
	RegisterKind("distmr-test/sum", func([]byte) (*JobCode, error) {
		return &JobCode{
			NewMapper:  func() mapreduce.Mapper { return sumMapper{} },
			NewReducer: func() mapreduce.Reducer { return sumReducer{} },
		}, nil
	})
}

// sumCluster builds a cluster whose FS holds `files` input files of
// `perFile` records each: keys cycle word-0..word-9, every value is "1".
func sumCluster(t *testing.T, files, perFile int) *mapreduce.Cluster {
	t.Helper()
	fs := dfs.New(dfs.Config{Nodes: 3, BlockSize: 4 << 10, Replication: 2})
	c := mapreduce.NewCluster(3, 4, fs)
	c.Cost = mapreduce.ZeroCostModel()
	for f := 0; f < files; f++ {
		var w dfs.RecordWriter
		for i := 0; i < perFile; i++ {
			w.Append([]byte(fmt.Sprintf("word-%d", i%10)), []byte("1"))
		}
		if err := fs.WriteFile(fmt.Sprintf("in/part-%05d", f), w.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func sumJob(fs *dfs.FS) *mapreduce.Job {
	return &mapreduce.Job{
		Name:         "sum",
		Inputs:       fs.List("in/"),
		OutputPrefix: "out/",
		NumReducers:  4,
		NewMapper:    func() mapreduce.Mapper { return sumMapper{} },
		NewReducer:   func() mapreduce.Reducer { return sumReducer{} },
		Spec:         &mapreduce.JobSpec{Kind: "distmr-test/sum"},
	}
}

// readTotals parses the job's output partitions into a word->count map.
func readTotals(t *testing.T, fs *dfs.FS) map[string]int64 {
	t.Helper()
	totals := make(map[string]int64)
	for _, name := range fs.List("out/") {
		data, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		r := dfs.NewRecordReader(data)
		for {
			key, value, ok, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n, err := strconv.ParseInt(string(value), 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			totals[string(key)] += n
		}
	}
	return totals
}

// TestHarnessRunsJob runs the job on the simulated engine and on a
// three-worker harness and requires identical output, counters and
// record statistics.
func TestHarnessRunsJob(t *testing.T) {
	defer leakcheck.Check(t)()

	const files, perFile = 3, 200
	simC := sumCluster(t, files, perFile)
	simRes, err := simC.Run(sumJob(simC.FS))
	if err != nil {
		t.Fatalf("simulated run: %v", err)
	}

	h, err := StartHarness(HarnessConfig{Workers: 3, Tracer: trace.New()})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()
	if n := h.Master.LiveWorkers(); n != 3 {
		t.Fatalf("live workers = %d, want 3", n)
	}

	distC := sumCluster(t, files, perFile)
	distC.Distributed = h.Master
	distRes, err := distC.Run(sumJob(distC.FS))
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}

	want := readTotals(t, simC.FS)
	got := readTotals(t, distC.FS)
	for w, n := range want {
		if n != int64(files*perFile/10) {
			t.Fatalf("simulated total for %q = %d, want %d", w, n, files*perFile/10)
		}
		if got[w] != n {
			t.Errorf("distributed total for %q = %d, want %d", w, got[w], n)
		}
	}

	if simRes.Counters["mapped"] != distRes.Counters["mapped"] ||
		simRes.Counters["groups"] != distRes.Counters["groups"] {
		t.Errorf("counters diverge: simulated %v, distributed %v", simRes.Counters, distRes.Counters)
	}
	if simRes.MapTasks != distRes.MapTasks || simRes.ReduceTasks != distRes.ReduceTasks {
		t.Errorf("task counts diverge: simulated %d/%d, distributed %d/%d",
			simRes.MapTasks, simRes.ReduceTasks, distRes.MapTasks, distRes.ReduceTasks)
	}
	if simRes.MapInputRecords != distRes.MapInputRecords ||
		simRes.MapOutputRecords != distRes.MapOutputRecords ||
		simRes.ReduceOutputRecords != distRes.ReduceOutputRecords {
		t.Errorf("record counts diverge:\n simulated   %+v\n distributed %+v", simRes, distRes)
	}
}

// TestWorkerCrashReassignment injects worker crashes at a rate that is
// certain to kill workers mid-job and requires the job to still finish
// with the simulated engine's exact output and counters, with crashed
// workers replaced by the harness.
func TestWorkerCrashReassignment(t *testing.T) {
	defer leakcheck.Check(t)()

	const files, perFile = 3, 120
	simC := sumCluster(t, files, perFile)
	simRes, err := simC.Run(sumJob(simC.FS))
	if err != nil {
		t.Fatalf("simulated run: %v", err)
	}

	h, err := StartHarness(HarnessConfig{Workers: 3, Replace: true})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()

	distC := sumCluster(t, files, perFile)
	distC.Distributed = h.Master
	distC.Fault.WorkerCrashRate = 0.12
	distC.Fault.Seed = 7
	distRes, err := distC.Run(sumJob(distC.FS))
	if err != nil {
		t.Fatalf("distributed run with crashes: %v", err)
	}

	crashed := 0
	for _, w := range h.Workers() {
		if w.Crashed() {
			crashed++
		}
	}
	// The crash draws are deterministic in (Seed, job, task, assign), so
	// with rate 0.12 this configuration always kills at least one worker.
	if crashed == 0 {
		t.Error("no worker died from injected crashes; the test exercised nothing")
	}

	if !equalTotals(readTotals(t, simC.FS), readTotals(t, distC.FS)) {
		t.Error("output diverges from the simulated engine after crash recovery")
	}
	if simRes.Counters["mapped"] != distRes.Counters["mapped"] ||
		simRes.Counters["groups"] != distRes.Counters["groups"] {
		t.Errorf("counters diverge after crash recovery: simulated %v, distributed %v",
			simRes.Counters, distRes.Counters)
	}
}

func equalTotals(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestHarnessCloseLeavesNoGoroutines pins the subsystem's shutdown: a
// harness that registered workers, ran nothing, and closed must wind
// down every master and worker goroutine.
func TestHarnessCloseLeavesNoGoroutines(t *testing.T) {
	defer leakcheck.Check(t)()
	h, err := StartHarness(HarnessConfig{Workers: 4, Tracer: trace.New()})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	if err := h.Master.WaitForWorkers(4, 0); err != nil {
		t.Fatalf("WaitForWorkers: %v", err)
	}
	h.Close()
	h.Close() // idempotent
}
