package pregel

import (
	"encoding/binary"
	"fmt"
	"testing"

	"ffmr/internal/graph"
)

// ssspProgram computes single-source shortest paths on an unweighted
// graph — the canonical Pregel example. Vertex value: 8-byte distance
// (max = unreached) followed by neighbour IDs.
type ssspProgram struct{ source graph.VertexID }

func encodeSSSP(dist uint64, nbrs []graph.VertexID) []byte {
	out := binary.BigEndian.AppendUint64(nil, dist)
	for _, n := range nbrs {
		out = binary.BigEndian.AppendUint32(out, uint32(n))
	}
	return out
}

func decodeSSSP(b []byte) (uint64, []graph.VertexID) {
	dist := binary.BigEndian.Uint64(b)
	var nbrs []graph.VertexID
	for off := 8; off+4 <= len(b); off += 4 {
		nbrs = append(nbrs, graph.VertexID(binary.BigEndian.Uint32(b[off:])))
	}
	return dist, nbrs
}

const unreached = ^uint64(0)

func (p *ssspProgram) Compute(ctx *Context, v *Vertex, messages [][]byte) error {
	dist, nbrs := decodeSSSP(v.Value)
	best := dist
	if ctx.Superstep() == 0 && v.ID == p.source {
		best = 0
	}
	for _, m := range messages {
		if d := binary.BigEndian.Uint64(m); d < best {
			best = d
		}
	}
	if best < dist || (ctx.Superstep() == 0 && best == 0 && dist != 0) {
		v.Value = encodeSSSP(best, nbrs)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], best+1)
		for _, n := range nbrs {
			ctx.SendTo(n, buf[:])
		}
		ctx.Aggregate("updated", 1)
	}
	ctx.VoteToHalt()
	return nil
}

// buildSSSP creates vertices for a path-plus-shortcut graph.
func buildSSSP(t *testing.T, edges [][2]graph.VertexID, n int) []*Vertex {
	t.Helper()
	adj := make([][]graph.VertexID, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	var vertices []*Vertex
	for i := 0; i < n; i++ {
		vertices = append(vertices, &Vertex{
			ID:    graph.VertexID(i),
			Value: encodeSSSP(unreached, adj[i]),
		})
	}
	return vertices
}

func TestSSSP(t *testing.T) {
	// 0-1-2-3-4 path plus shortcut 0-3.
	edges := [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 3}}
	vertices := buildSSSP(t, edges, 5)
	engine, err := NewEngine(Config{Workers: 3}, vertices)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := engine.Run(&ssspProgram{source: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := map[graph.VertexID]uint64{0: 0, 1: 1, 2: 2, 3: 1, 4: 2}
	for id, wd := range want {
		d, _ := decodeSSSP(engine.Vertex(id).Value)
		if d != wd {
			t.Errorf("dist[%d] = %d, want %d", id, d, wd)
		}
	}
	if stats.Supersteps < 3 {
		t.Errorf("supersteps = %d, want >= 3", stats.Supersteps)
	}
	if stats.Messages == 0 || stats.MessageBytes == 0 {
		t.Error("no message accounting")
	}
}

func TestHaltedVertexReactivatedByMessage(t *testing.T) {
	// A long path: far vertices halt early and must be woken as the
	// frontier arrives.
	const n = 50
	var edges [][2]graph.VertexID
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]graph.VertexID{graph.VertexID(i), graph.VertexID(i + 1)})
	}
	vertices := buildSSSP(t, edges, n)
	engine, err := NewEngine(Config{Workers: 4}, vertices)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(&ssspProgram{source: 0}); err != nil {
		t.Fatal(err)
	}
	d, _ := decodeSSSP(engine.Vertex(n - 1).Value)
	if d != n-1 {
		t.Errorf("end of chain dist = %d, want %d", d, n-1)
	}
}

func TestAggregatorsVisibleNextSuperstep(t *testing.T) {
	vertices := []*Vertex{{ID: 0}, {ID: 1}}
	prog := programFunc(func(ctx *Context, v *Vertex, messages [][]byte) error {
		switch ctx.Superstep() {
		case 0:
			ctx.Aggregate("x", int64(v.ID)+1) // total 3
			if got := ctx.Aggregated("x"); got != 0 {
				return fmt.Errorf("superstep 0 sees aggregate %d", got)
			}
		case 1:
			if got := ctx.Aggregated("x"); got != 3 {
				return fmt.Errorf("superstep 1 sees aggregate %d, want 3", got)
			}
			ctx.VoteToHalt()
		}
		return nil
	})
	engine, err := NewEngine(Config{Workers: 2}, vertices)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(prog); err != nil {
		t.Fatal(err)
	}
}

// programFunc adapts a function to Program.
type programFunc func(ctx *Context, v *Vertex, messages [][]byte) error

func (f programFunc) Compute(ctx *Context, v *Vertex, messages [][]byte) error {
	return f(ctx, v, messages)
}

func TestMasterComputeAndGlobal(t *testing.T) {
	vertices := []*Vertex{{ID: 0}, {ID: 1}, {ID: 2}}
	master := func(superstep int, collected [][]byte, aggregates map[string]int64) ([]byte, error) {
		var sum int
		for _, item := range collected {
			sum += int(item[0])
		}
		return []byte{byte(sum)}, nil
	}
	prog := programFunc(func(ctx *Context, v *Vertex, messages [][]byte) error {
		switch ctx.Superstep() {
		case 0:
			ctx.Collect([]byte{byte(v.ID) + 1}) // 1+2+3 = 6
		case 1:
			g := ctx.Global()
			if len(g) != 1 || g[0] != 6 {
				return fmt.Errorf("global = %v, want [6]", g)
			}
			ctx.VoteToHalt()
		}
		return nil
	})
	engine, err := NewEngine(Config{Workers: 2, Master: master}, vertices)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(prog); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateVertexRejected(t *testing.T) {
	_, err := NewEngine(Config{}, []*Vertex{{ID: 1}, {ID: 1}})
	if err == nil {
		t.Fatal("duplicate vertex accepted")
	}
}

func TestComputeErrorPropagates(t *testing.T) {
	engine, err := NewEngine(Config{}, []*Vertex{{ID: 0}})
	if err != nil {
		t.Fatal(err)
	}
	prog := programFunc(func(ctx *Context, v *Vertex, messages [][]byte) error {
		return fmt.Errorf("vertex exploded")
	})
	if _, err := engine.Run(prog); err == nil {
		t.Fatal("error swallowed")
	}
}

func TestMaxSuperstepsGuard(t *testing.T) {
	engine, err := NewEngine(Config{MaxSupersteps: 5}, []*Vertex{{ID: 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Never halts.
	prog := programFunc(func(ctx *Context, v *Vertex, messages [][]byte) error { return nil })
	if _, err := engine.Run(prog); err == nil {
		t.Fatal("non-converging program did not error")
	}
}

func TestActiveVertexProfile(t *testing.T) {
	vertices := buildSSSP(t, [][2]graph.VertexID{{0, 1}, {1, 2}}, 3)
	engine, err := NewEngine(Config{Workers: 2}, vertices)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := engine.Run(&ssspProgram{source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.ActiveVertices) != stats.Supersteps {
		t.Errorf("profile length %d != supersteps %d", len(stats.ActiveVertices), stats.Supersteps)
	}
	if stats.ActiveVertices[0] != 3 {
		t.Errorf("superstep 0 active = %d, want 3 (all start active)", stats.ActiveVertices[0])
	}
}
