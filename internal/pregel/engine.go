package pregel

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"ffmr/internal/graph"
	"ffmr/internal/trace"
)

// Vertex is one vertex's engine-side state.
type Vertex struct {
	ID graph.VertexID
	// Value is the vertex's opaque state, owned by the user program.
	Value []byte
	// halted marks a vertex that voted to halt and has no pending
	// messages.
	halted bool
}

// Context is handed to Program.Compute for one vertex in one superstep.
type Context struct {
	superstep int
	engine    *Engine
	worker    *worker
	vertex    *Vertex
	halt      bool
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// SendTo sends a message to another vertex, delivered next superstep.
// The engine copies msg; callers may reuse the buffer.
func (c *Context) SendTo(dst graph.VertexID, msg []byte) {
	c.worker.send(dst, msg)
}

// VoteToHalt deactivates the vertex until a message arrives for it.
func (c *Context) VoteToHalt() { c.halt = true }

// Aggregate adds delta to a named int64 sum aggregator; the aggregated
// value becomes visible through Aggregated in the next superstep.
func (c *Context) Aggregate(name string, delta int64) {
	c.worker.aggregates[name] += delta
}

// Aggregated returns a named aggregator's value from the previous
// superstep (0 if never aggregated).
func (c *Context) Aggregated(name string) int64 { return c.engine.prevAggregates[name] }

// Collect submits an opaque item to the master collector, processed by
// the MasterCompute hook after this superstep.
func (c *Context) Collect(item []byte) {
	c.worker.collected = append(c.worker.collected, append([]byte(nil), item...))
}

// Global returns the side data published by the previous superstep's
// MasterCompute (nil in superstep 0).
func (c *Context) Global() []byte { return c.engine.global }

// Stats summarizes one engine run.
type Stats struct {
	// Supersteps executed (the BSP analogue of MR rounds).
	Supersteps int
	// Messages and MessageBytes count all vertex-to-vertex traffic, the
	// analogue of the MR shuffle volume.
	Messages     int64
	MessageBytes int64
	// ActiveVertices per superstep (parallelism profile).
	ActiveVertices []int64
	WallTime       time.Duration
}

// Config parameterizes an engine.
type Config struct {
	// Workers is the number of partitions executed concurrently
	// (defaults to 8).
	Workers int
	// MaxSupersteps aborts a non-converging computation (default 10000).
	MaxSupersteps int
	// Master is the optional between-superstep hook.
	Master MasterCompute
	// Tracer, if non-nil, records one span per superstep annotated with
	// active-vertex and message-volume counts. TraceParent optionally
	// nests the superstep spans under a caller-owned span.
	Tracer      *trace.Tracer
	TraceParent *trace.Span
}

// worker owns a partition of vertices and its outgoing message buffers.
type worker struct {
	vertices   []*Vertex
	outbox     [][]msg // per destination worker
	aggregates map[string]int64
	collected  [][]byte
	msgCount   int64
	msgBytes   int64
}

type msg struct {
	dst  graph.VertexID
	data []byte
}

func (w *worker) send(dst graph.VertexID, data []byte) {
	p := int(dst) % len(w.outbox)
	w.outbox[p] = append(w.outbox[p], msg{dst: dst, data: append([]byte(nil), data...)})
	w.msgCount++
	w.msgBytes += int64(len(data))
}

// Engine executes a Program over a vertex set.
type Engine struct {
	cfg     Config
	workers []*worker
	index   map[graph.VertexID]*Vertex

	prevAggregates map[string]int64
	global         []byte
}

// NewEngine creates an engine over the given vertices. Vertex IDs must
// be unique.
func NewEngine(cfg Config, vertices []*Vertex) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 10000
	}
	e := &Engine{
		cfg:            cfg,
		index:          make(map[graph.VertexID]*Vertex, len(vertices)),
		prevAggregates: map[string]int64{},
	}
	e.workers = make([]*worker, cfg.Workers)
	for i := range e.workers {
		e.workers[i] = &worker{aggregates: map[string]int64{}}
	}
	for _, v := range vertices {
		if _, dup := e.index[v.ID]; dup {
			return nil, fmt.Errorf("pregel: duplicate vertex %d", v.ID)
		}
		e.index[v.ID] = v
		w := e.workers[int(v.ID)%cfg.Workers]
		w.vertices = append(w.vertices, v)
	}
	for _, w := range e.workers {
		sort.Slice(w.vertices, func(i, j int) bool { return w.vertices[i].ID < w.vertices[j].ID })
	}
	return e, nil
}

// Vertex returns a vertex by ID (nil if absent). Intended for reading
// results after Run.
func (e *Engine) Vertex(id graph.VertexID) *Vertex { return e.index[id] }

// Run executes the program until quiescence and returns run statistics.
func (e *Engine) Run(program Program) (*Stats, error) {
	start := time.Now()
	stats := &Stats{}

	// inbox[w] holds the messages for worker w's vertices this superstep.
	inboxes := make([][]msg, len(e.workers))

	for superstep := 0; superstep < e.cfg.MaxSupersteps; superstep++ {
		stepSpan := e.cfg.Tracer.Start(trace.CatRound, fmt.Sprintf("superstep-%05d", superstep), e.cfg.TraceParent)
		stepSpan.SetInt(trace.AttrRound, int64(superstep))

		// Deliver: group each worker's inbox by destination vertex.
		delivered := make([]map[graph.VertexID][][]byte, len(e.workers))
		for wi, inbox := range inboxes {
			m := make(map[graph.VertexID][][]byte)
			// Sort for deterministic per-vertex message order regardless
			// of sender scheduling.
			sort.Slice(inbox, func(i, j int) bool {
				if inbox[i].dst != inbox[j].dst {
					return inbox[i].dst < inbox[j].dst
				}
				return bytes.Compare(inbox[i].data, inbox[j].data) < 0
			})
			for _, msg := range inbox {
				m[msg.dst] = append(m[msg.dst], msg.data)
			}
			delivered[wi] = m
		}

		var active int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make(chan error, len(e.workers))
		for wi, w := range e.workers {
			wg.Add(1)
			go func(wi int, w *worker) {
				defer wg.Done()
				w.outbox = make([][]msg, len(e.workers))
				var myActive int64
				for _, v := range w.vertices {
					msgs := delivered[wi][v.ID]
					if len(msgs) > 0 {
						v.halted = false
					}
					if v.halted {
						continue
					}
					myActive++
					ctx := &Context{superstep: superstep, engine: e, worker: w, vertex: v}
					if err := program.Compute(ctx, v, msgs); err != nil {
						errs <- fmt.Errorf("pregel: superstep %d vertex %d: %w", superstep, v.ID, err)
						return
					}
					if ctx.halt {
						v.halted = true
					}
				}
				mu.Lock()
				active += myActive
				mu.Unlock()
			}(wi, w)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			stepSpan.SetStr("error", err.Error())
			stepSpan.End()
			return nil, err
		}

		stats.Supersteps = superstep + 1
		stats.ActiveVertices = append(stats.ActiveVertices, active)

		// Barrier bookkeeping: aggregates, collector, message routing.
		aggregates := map[string]int64{}
		var collected [][]byte
		var pending int64
		var stepMsgs, stepMsgBytes int64
		for _, w := range e.workers {
			for name, v := range w.aggregates {
				aggregates[name] += v
			}
			w.aggregates = map[string]int64{}
			collected = append(collected, w.collected...)
			w.collected = nil
			stepMsgs += w.msgCount
			stepMsgBytes += w.msgBytes
			w.msgCount, w.msgBytes = 0, 0
		}
		stats.Messages += stepMsgs
		stats.MessageBytes += stepMsgBytes
		// Deterministic master input order.
		sort.Slice(collected, func(i, j int) bool { return bytes.Compare(collected[i], collected[j]) < 0 })
		e.prevAggregates = aggregates

		if e.cfg.Master != nil {
			global, err := e.cfg.Master(superstep, collected, aggregates)
			if err != nil {
				err = fmt.Errorf("pregel: master compute at superstep %d: %w", superstep, err)
				stepSpan.SetStr("error", err.Error())
				stepSpan.End()
				return nil, err
			}
			e.global = global
		}

		next := make([][]msg, len(e.workers))
		for _, w := range e.workers {
			for p, out := range w.outbox {
				next[p] = append(next[p], out...)
				pending += int64(len(out))
			}
			w.outbox = nil
		}
		inboxes = next

		stepSpan.SetInt(trace.AttrActiveVertices, active)
		stepSpan.SetInt("messages", stepMsgs)
		stepSpan.SetInt("message_bytes", stepMsgBytes)
		stepSpan.SetInt("pending", pending)
		stepSpan.End()

		if active == 0 && pending == 0 {
			stats.WallTime = time.Since(start)
			return stats, nil
		}
		if pending == 0 && allHalted(e.workers) {
			stats.WallTime = time.Since(start)
			return stats, nil
		}
	}
	return nil, fmt.Errorf("pregel: no convergence within %d supersteps", e.cfg.MaxSupersteps)
}

func allHalted(workers []*worker) bool {
	for _, w := range workers {
		for _, v := range w.vertices {
			if !v.halted {
				return false
			}
		}
	}
	return true
}
