// Package pregel implements a bulk-synchronous-parallel vertex-centric
// graph engine in the style of Google's Pregel (Malewicz et al., which
// the paper cites as the emerging alternative to MapReduce for graphs,
// conjecturing that "the ideas presented in this paper also translate to
// Pregel"). The core package uses it to host the BSP translation of the
// FFMR algorithm so that conjecture can be tested empirically.
//
// The model: computation proceeds in supersteps. In each superstep every
// active vertex receives the messages sent to it in the previous
// superstep, runs the user Program, may mutate its value, send messages,
// and vote to halt. A halted vertex is reactivated by an incoming
// message. The run ends when every vertex has halted and no messages are
// in flight.
//
// Two extensions mirror what the FFMR algorithms need:
//
//   - int64 sum aggregators (Pregel's aggregators), readable by all
//     vertices in the next superstep — used for movement counters;
//   - a master collector: vertices submit opaque byte items during a
//     superstep and a MasterCompute hook runs between supersteps over
//     the collected items, publishing global side data for the next
//     superstep — the BSP analogue of the paper's aug_proc process.
package pregel

// Program is the vertex-centric computation executed each superstep.
type Program interface {
	// Compute runs for one active vertex in one superstep.
	Compute(ctx *Context, v *Vertex, messages [][]byte) error
}

// MasterCompute runs once between supersteps on the collected items and
// the superstep's aggregator values; the returned bytes become the
// global side data visible to every vertex in the next superstep
// (Context.Global).
type MasterCompute func(superstep int, collected [][]byte, aggregates map[string]int64) ([]byte, error)
