package stats

import (
	"ffmr/internal/trace"
)

// RoundTable renders per-round trace summaries in the shape of the
// paper's Table I: one row per MapReduce round with the accepted
// augmenting paths, aug_proc queue high-water mark, map output volume,
// shuffle volume and active-vertex count. The rows come straight from
// the tracer's round spans (trace.RoundSummariesUnder), so the table is
// a pure view over the same instrumentation that the trace exporters
// serialize — there is no second bookkeeping path to drift.
func RoundTable(title string, rounds []trace.RoundSummary) *Table {
	t := NewTable(title,
		"R", "A-Paths", "MaxQ", "Map Out", "Shuffle(KB)", "Active", "Runtime")
	for _, r := range rounds {
		t.AddRow(
			r.Round,
			FormatCount(r.APaths),
			FormatCount(r.MaxQueue),
			FormatCount(r.MapOutRecords),
			FormatCount(r.ShuffleBytes/1024),
			FormatCount(r.ActiveVertices),
			FormatDuration(r.SimTime),
		)
	}
	return t
}
