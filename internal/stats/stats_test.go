package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "Col1", "LongColumn2")
	tbl.AddRow("a", 123)
	tbl.AddRow("longer-cell", "x")
	out := tbl.String()
	if !strings.Contains(out, "Title") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2
		if len(lines) != 5 {
			t.Fatalf("got %d lines:\n%s", len(lines), out)
		}
	}
	// Columns must be aligned: header and rows share the separator offset.
	var headerLine string
	for _, l := range lines {
		if strings.Contains(l, "Col1") {
			headerLine = l
		}
	}
	if headerLine == "" {
		t.Fatal("header missing")
	}
	if !strings.Contains(out, "longer-cell") || !strings.Contains(out, "123") {
		t.Error("cells missing")
	}
}

func TestFigureRendering(t *testing.T) {
	fig := NewFigure("My Figure", "x", "y")
	a := fig.AddSeries("alpha")
	b := fig.AddSeries("beta")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 1.5)
	out := fig.String()
	for _, want := range []string{"My Figure", "alpha", "beta", "10", "1.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// Missing point for beta at x=2 renders as empty, not a crash.
	if !strings.Contains(out, "20") {
		t.Error("second x row missing")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{6 << 20, "6.00 MiB"},
		{3 << 30, "3.00 GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{291134017, "291,134,017"},
		{-12345, "-12,345"},
	}
	for _, c := range cases {
		if got := FormatCount(c.in); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{90 * time.Second, "1:30"},
		{time.Hour + 36*time.Minute + 37*time.Second, "1:36:37"},
		{250 * time.Millisecond, "250ms"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.AddRow("x,with,commas", 1)
	tbl.AddRow("y", 2)
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n\"x,with,commas\",1\ny,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFigureCSV(t *testing.T) {
	fig := NewFigure("F", "x", "y")
	a := fig.AddSeries("s1")
	b := fig.AddSeries("s2")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(2, 0.5)
	var sb strings.Builder
	if err := fig.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "x,s1,s2\n1,10,\n2,20,0.5\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != "5.00x" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(time.Second, 0); got != "n/a" {
		t.Errorf("Speedup by zero = %q", got)
	}
}
