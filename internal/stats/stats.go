// Package stats renders the experiment harness's tables and figure series
// in plain text, mirroring the shape of the paper's Table I and Figures
// 5-8 so reproduced results can be compared against the published ones at
// a glance.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of a figure: x/y points in order.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes, rendered as aligned columns —
// one row per x value, one column per series — which is the most useful
// text form for comparing curve shapes against the paper.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, attaches and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as a table of x values versus series values.
func (f *Figure) String() string {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel), headers...)

	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []any{trimFloat(x)}
		for _, s := range f.Series {
			val := ""
			for i := range s.X {
				if s.X[i] == x {
					val = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, val)
		}
		t.AddRow(row...)
	}
	return t.String()
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// FormatBytes renders a byte count with binary-prefix units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// FormatCount renders large counts with thousands separators, as the
// paper's tables do (e.g. "291,134,017").
func FormatCount(n int64) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// FormatDuration renders a duration like the paper's runtime column
// (h:mm:ss for long runs, compact units otherwise).
func FormatDuration(d time.Duration) string {
	if d >= time.Minute {
		d = d.Round(time.Second)
		h := d / time.Hour
		m := (d % time.Hour) / time.Minute
		s := (d % time.Minute) / time.Second
		if h > 0 {
			return fmt.Sprintf("%d:%02d:%02d", h, m, s)
		}
		return fmt.Sprintf("%d:%02d", m, s)
	}
	return d.Round(time.Millisecond).String()
}

// Speedup formats a ratio like the paper's "~5.43x faster" comparisons.
func Speedup(base, improved time.Duration) string {
	if improved <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(improved))
}
