package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// CSV writes the table as RFC 4180 CSV, one header row followed by the
// data rows, so experiment outputs can be fed into external plotting
// tools.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV writes the figure as CSV: an x column followed by one column per
// series, one row per distinct x value in first-seen order. Missing
// points render as empty cells.
func (f *Figure) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{sanitizeCSVName(f.XLabel)}
	for _, s := range f.Series {
		header = append(header, sanitizeCSVName(s.Name))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i := range s.X {
				if s.X[i] == x {
					cell = fmt.Sprintf("%g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func sanitizeCSVName(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return "value"
	}
	return s
}
