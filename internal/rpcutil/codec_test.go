package rpcutil

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"testing"
)

// FramedPayload is a Message-implementing arg/reply for codec tests.
type FramedPayload struct {
	N    int64
	Data []byte
}

func (p *FramedPayload) AppendFrame(b []byte) []byte {
	b = binary.AppendVarint(b, p.N)
	b = binary.AppendUvarint(b, uint64(len(p.Data)))
	return append(b, p.Data...)
}

func (p *FramedPayload) DecodeFrame(b []byte) error {
	v, n := binary.Varint(b)
	if n <= 0 {
		return fmt.Errorf("corrupt FramedPayload n")
	}
	b = b[n:]
	m, w := binary.Uvarint(b)
	if w <= 0 || m != uint64(len(b)-w) {
		return fmt.Errorf("corrupt FramedPayload data")
	}
	p.N = v
	p.Data = append([]byte(nil), b[w:]...)
	return nil
}

// GobPayload has no Message implementation, so it rides the per-message
// gob fallback.
type GobPayload struct {
	Name  string
	Pairs map[string]int64
}

type codecSvc struct {
	mu   sync.Mutex
	seen [][]byte
}

// Echo doubles N and echoes Data through a framed reply.
func (s *codecSvc) Echo(args *FramedPayload, reply *FramedPayload) error {
	s.mu.Lock()
	s.seen = append(s.seen, args.Data)
	s.mu.Unlock()
	reply.N = args.N * 2
	reply.Data = args.Data
	return nil
}

// Gob echoes a gob-fallback body.
func (s *codecSvc) Gob(args *GobPayload, reply *GobPayload) error {
	reply.Name = args.Name + "!"
	reply.Pairs = args.Pairs
	return nil
}

// Fail always errors, covering the response error-string path.
func (s *codecSvc) Fail(args *FramedPayload, _ *FramedPayload) error {
	return fmt.Errorf("intentional failure for %d", args.N)
}

func startCodecServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := rpc.NewServer()
	if err := srv.RegisterName("Codec", &codecSvc{}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeCodec(NewServerCodec(conn))
		}
	}()
	return ln.Addr().String()
}

// TestFrameCodecRoundTrip drives framed bodies, gob-fallback bodies and
// error replies over one connection, interleaved and concurrently, the
// way a worker connection mixes heartbeats with fetches.
func TestFrameCodecRoundTrip(t *testing.T) {
	addr := startCodecServer(t)
	c, err := DialRPC(addr, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arg := &FramedPayload{N: int64(i), Data: []byte(strings.Repeat("x", i))}
			var rep FramedPayload
			if err := c.Call("Codec.Echo", arg, &rep); err != nil {
				t.Errorf("Echo(%d): %v", i, err)
				return
			}
			if rep.N != int64(i)*2 || string(rep.Data) != string(arg.Data) {
				t.Errorf("Echo(%d): got (%d, %q)", i, rep.N, rep.Data)
			}
		}(i)
	}
	wg.Wait()

	var grep GobPayload
	if err := c.Call("Codec.Gob", &GobPayload{Name: "fallback", Pairs: map[string]int64{"a": 1}}, &grep); err != nil {
		t.Fatalf("Gob: %v", err)
	}
	if grep.Name != "fallback!" || grep.Pairs["a"] != 1 {
		t.Errorf("Gob round trip: %+v", grep)
	}

	err = c.Call("Codec.Fail", &FramedPayload{N: 7}, &FramedPayload{})
	if err == nil || !strings.Contains(err.Error(), "intentional failure for 7") {
		t.Errorf("Fail: got %v, want the service error", err)
	}

	// The connection survives an error reply: later calls still work.
	var rep FramedPayload
	if err := c.Call("Codec.Echo", &FramedPayload{N: 5}, &rep); err != nil || rep.N != 10 {
		t.Errorf("Echo after Fail: %d, %v", rep.N, err)
	}
}

// TestFrameCodecVersionMismatch pins the same-binary rule: a peer
// speaking a different stream version is rejected on the first read, not
// misparsed.
func TestFrameCodecVersionMismatch(t *testing.T) {
	addr := startCodecServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Handshake a bad version followed by a plausible header; the server
	// must drop the connection without replying.
	if _, err := conn.Write([]byte{frameCodecVersion + 1, 0x01}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("server answered %d bytes on a version-mismatched stream", n)
	}
}

// TestFrameCodecRejectsOversizedBody pins the allocation bound: a length
// prefix beyond maxFrameBytes fails the read instead of allocating.
func TestFrameCodecRejectsOversizedBody(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		b := []byte{frameCodecVersion}
		b = binary.AppendUvarint(b, 1) // seq
		b = binary.AppendUvarint(b, 4)
		b = append(b, "Bad."...)
		b = binary.AppendUvarint(b, 0) // empty error
		b = append(b, tagFramed)
		b = binary.AppendUvarint(b, maxFrameBytes+1)
		conn.Write(b)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	codec := NewClientCodec(conn)
	defer codec.Close()
	var resp rpc.Response
	if err := codec.ReadResponseHeader(&resp); err != nil {
		t.Fatalf("header: %v", err)
	}
	if err := codec.ReadResponseBody(nil); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized body: got %v, want length-limit error", err)
	}
}
