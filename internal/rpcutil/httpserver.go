package rpcutil

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"
)

// This file is the HTTP-server harness shared by every HTTP surface in
// the repo: the obsv admin servers (master, workers, CLI) and the flow
// service's API server. They all need the same skeleton — bind a
// listener so the bound address is known before any request can be
// missed, serve with a header-read timeout, and tear down with a short
// graceful drain followed by a hard close so no goroutine or connection
// outlives the owner (the leak checks depend on that). Duplicating that
// skeleton is how servers drift; it lives here once.

// HTTPConfig configures one HTTP server. Handler is the only required
// field.
type HTTPConfig struct {
	// Addr is the listen address (default 127.0.0.1:0, an ephemeral
	// loopback port).
	Addr string
	// Handler serves every request (typically an *http.ServeMux; never
	// http.DefaultServeMux, which other packages can pollute).
	Handler http.Handler
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request header (default 5s) — slow-loris protection for servers
	// that outlive any single job.
	ReadHeaderTimeout time.Duration
	// ShutdownGrace is how long Close waits for in-flight requests
	// before hard-closing connections (default 1s).
	ShutdownGrace time.Duration
	// Logger logs serve errors (nil: silent).
	Logger *slog.Logger
}

// HTTPServer is a running HTTP server. Create with ServeHTTP; Close
// shuts it down and releases every connection. All methods are nil-safe.
type HTTPServer struct {
	ln    net.Listener
	srv   *http.Server
	log   *slog.Logger
	grace time.Duration
}

// ServeHTTP binds the address and serves cfg.Handler on it. The listener
// is bound synchronously, so Addr is valid as soon as the call returns.
func ServeHTTP(cfg HTTPConfig) (*HTTPServer, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("rpcutil: http server without a handler")
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcutil: http listen %s: %w", addr, err)
	}
	s := &HTTPServer{
		ln:    ln,
		srv:   &http.Server{Handler: cfg.Handler, ReadHeaderTimeout: cfg.ReadHeaderTimeout},
		log:   orLog(cfg.Logger),
		grace: cfg.ShutdownGrace,
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Warn("http server exited", "addr", ln.Addr().String(), "err", err)
		}
	}()
	return s, nil
}

// Addr returns the server's bound address (for curl and tests).
func (s *HTTPServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL ("http://host:port").
func (s *HTTPServer) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close shuts the server down: a graceful drain bounded by
// ShutdownGrace for in-flight requests, then a hard close so nothing
// outlives the owner.
func (s *HTTPServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.grace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	s.srv.Close()
	return err
}
