package rpcutil

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"ffmr/internal/leakcheck"
)

func TestHTTPServerServesAndCloses(t *testing.T) {
	defer leakcheck.Check(t)()
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "pong")
	})
	s, err := ServeHTTP(HTTPConfig{Handler: mux})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(s.URL() + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "pong\n" {
		t.Fatalf("GET /ping = %d %q", resp.StatusCode, body)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The port must actually be released: a second server can bind it.
	if _, err := http.Get(s.URL() + "/ping"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestHTTPServerNilSafe(t *testing.T) {
	var s *HTTPServer
	if s.Addr() != "" || s.URL() != "" || s.Close() != nil {
		t.Fatal("nil HTTPServer methods must be no-ops")
	}
}

func TestHTTPServerRequiresHandler(t *testing.T) {
	if _, err := ServeHTTP(HTTPConfig{}); err == nil {
		t.Fatal("expected an error for a handler-less server")
	}
}

func TestHTTPServerShutdownGrace(t *testing.T) {
	defer leakcheck.Check(t)()
	block := make(chan struct{})
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-block
		fmt.Fprintln(w, "done")
	})
	s, err := ServeHTTP(HTTPConfig{Handler: mux, ShutdownGrace: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	go http.Get(s.URL() + "/slow") //nolint:errcheck // the handler is force-closed
	<-started
	// Close must return despite the stuck handler (grace expires, hard
	// close follows), not hang forever.
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an in-flight request")
	}
	close(block)
}
