package rpcutil

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestDialSucceedsImmediately(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		if c, err := ln.Accept(); err == nil {
			c.Close()
		}
	}()
	conn, err := Dial(ln.Addr().String(), Policy{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	conn.Close()
}

// TestDialRetriesUntilListenerAppears is the startup race the package
// exists for: the first attempts fail, then the listener binds, and the
// dial must succeed without surfacing the transient failures.
func TestDialRetriesUntilListenerAppears(t *testing.T) {
	// Reserve a port, then free it so the first dial attempts fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	go func() {
		time.Sleep(30 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial error path still passes
		}
		defer ln2.Close()
		if c, err := ln2.Accept(); err == nil {
			c.Close()
		}
	}()

	conn, err := Dial(addr, Policy{Attempts: 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	if err != nil {
		t.Skipf("port was not re-bindable on this host: %v", err)
	}
	conn.Close()
}

func TestDialExhaustsAttempts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here now

	start := time.Now()
	_, err = Dial(addr, Policy{Attempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 5 * time.Millisecond})
	if err == nil {
		t.Fatal("Dial succeeded against a closed port")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("error does not report the attempt count: %v", err)
	}
	// Fast-fail policies must actually fail fast (the shuffle fetcher
	// relies on this to keep crash recovery off the slow path).
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("2-attempt dial took %v", d)
	}
}

func TestJitterBounds(t *testing.T) {
	if Jitter(0) != 0 || Jitter(-time.Second) != 0 {
		t.Error("non-positive bounds must return 0")
	}
	for i := 0; i < 1000; i++ {
		if d := Jitter(50 * time.Millisecond); d < 0 || d >= 50*time.Millisecond {
			t.Fatalf("Jitter out of [0, 50ms): %v", d)
		}
	}
}

func TestBackoffCapsAtMaxDelay(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	p.applyDefaults()
	for i := 0; i < 10; i++ {
		// backoff adds up to half the step as jitter.
		if d := p.backoff(i); d > p.MaxDelay+p.MaxDelay/2 {
			t.Fatalf("backoff(%d) = %v exceeds cap %v", i, d, p.MaxDelay+p.MaxDelay/2)
		}
	}
}
