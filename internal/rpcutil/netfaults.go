package rpcutil

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// NetFaults injects network partitions into every connection dialed
// through this package. Faults are keyed by target address: partitioning
// an address blackholes traffic *toward* it — new dials fail and
// established connections to it error on their next read or write — while
// the victim's own outbound connections keep working unless their targets
// are partitioned too. That asymmetry is deliberate: it reproduces the
// one-way partitions (a worker that can heartbeat out but cannot be
// reached) that symmetric kill-based fault injection cannot express.
//
// Install with InstallNetFaults; a nil installation (the default) costs
// one atomic load per dial and nothing per byte.
type NetFaults struct {
	mu      sync.Mutex
	blocked map[string]struct{}
}

// NewNetFaults returns an empty fault set.
func NewNetFaults() *NetFaults {
	return &NetFaults{blocked: make(map[string]struct{})}
}

// Partition blackholes all traffic toward addr.
func (f *NetFaults) Partition(addr string) {
	f.mu.Lock()
	f.blocked[addr] = struct{}{}
	f.mu.Unlock()
}

// Heal removes the partition toward addr.
func (f *NetFaults) Heal(addr string) {
	f.mu.Lock()
	delete(f.blocked, addr)
	f.mu.Unlock()
}

// HealAll removes every partition.
func (f *NetFaults) HealAll() {
	f.mu.Lock()
	f.blocked = make(map[string]struct{})
	f.mu.Unlock()
}

// Partitioned reports whether traffic toward addr is blackholed. Safe on
// a nil receiver (reports false), so callers can hold the installed
// pointer without a nil check.
func (f *NetFaults) Partitioned(addr string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	_, ok := f.blocked[addr]
	f.mu.Unlock()
	return ok
}

// netFaults is the process-wide installation; nil means no injection.
var netFaults atomic.Pointer[NetFaults]

// InstallNetFaults makes f the process-wide fault set consulted by Dial
// and by every connection it has wrapped. It returns a restore function
// that reinstates the previous installation; tests defer it so fault
// state cannot leak across test boundaries.
func InstallNetFaults(f *NetFaults) (restore func()) {
	prev := netFaults.Swap(f)
	return func() { netFaults.Store(prev) }
}

// faultConn wraps a dialed connection and errors it out (closing the
// underlying conn so any blocked peer goroutine unsticks) as soon as its
// target address is partitioned.
type faultConn struct {
	net.Conn
	addr string
}

func (c *faultConn) check() error {
	if netFaults.Load().Partitioned(c.addr) {
		c.Conn.Close()
		return fmt.Errorf("rpcutil: injected partition toward %s", c.addr)
	}
	return nil
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.check(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.check(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}
