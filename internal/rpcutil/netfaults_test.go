package rpcutil

import (
	"net"
	"strings"
	"testing"
	"time"
)

// echoListener accepts connections and echoes bytes back until closed.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						c.Close()
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()
	return ln
}

func TestNetFaultsBlockNewDials(t *testing.T) {
	ln := echoListener(t)
	defer ln.Close()
	addr := ln.Addr().String()

	f := NewNetFaults()
	defer InstallNetFaults(f)()

	f.Partition(addr)
	_, err := Dial(addr, Policy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	if err == nil {
		t.Fatal("Dial succeeded through a partition")
	}
	if !strings.Contains(err.Error(), "injected partition") {
		t.Errorf("error does not name the partition: %v", err)
	}

	f.Heal(addr)
	conn, err := Dial(addr, Policy{Attempts: 2, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatalf("Dial after heal: %v", err)
	}
	conn.Close()
}

func TestNetFaultsErrorEstablishedConns(t *testing.T) {
	ln := echoListener(t)
	defer ln.Close()
	addr := ln.Addr().String()

	f := NewNetFaults()
	defer InstallNetFaults(f)()

	conn, err := Dial(addr, Policy{Attempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Healthy round-trip first.
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatalf("write before partition: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read before partition: %v", err)
	}

	f.Partition(addr)
	if _, err := conn.Write([]byte("ping")); err == nil {
		t.Fatal("write succeeded through a partition")
	}
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded through a partition")
	}
}

func TestNetFaultsOneWay(t *testing.T) {
	lnA := echoListener(t)
	defer lnA.Close()
	lnB := echoListener(t)
	defer lnB.Close()

	f := NewNetFaults()
	defer InstallNetFaults(f)()

	// Partition toward A only: B stays reachable.
	f.Partition(lnA.Addr().String())
	if _, err := Dial(lnA.Addr().String(), Policy{Attempts: 1}); err == nil {
		t.Fatal("dial toward partitioned A succeeded")
	}
	conn, err := Dial(lnB.Addr().String(), Policy{Attempts: 2})
	if err != nil {
		t.Fatalf("dial toward healthy B failed: %v", err)
	}
	conn.Close()

	f.HealAll()
	conn, err = Dial(lnA.Addr().String(), Policy{Attempts: 2})
	if err != nil {
		t.Fatalf("dial toward A after HealAll: %v", err)
	}
	conn.Close()
}

func TestNetFaultsNilSafe(t *testing.T) {
	var f *NetFaults
	if f.Partitioned("anywhere") {
		t.Error("nil NetFaults reported a partition")
	}
	// With nothing installed, Dial must return an unwrapped conn and
	// behave exactly as before.
	ln := echoListener(t)
	defer ln.Close()
	conn, err := Dial(ln.Addr().String(), Policy{Attempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := conn.(*faultConn); ok {
		t.Error("conn wrapped although no faults are installed")
	}
	conn.Close()
}

func TestInstallNetFaultsRestores(t *testing.T) {
	f1 := NewNetFaults()
	restore1 := InstallNetFaults(f1)
	f2 := NewNetFaults()
	restore2 := InstallNetFaults(f2)
	if netFaults.Load() != f2 {
		t.Fatal("second install not active")
	}
	restore2()
	if netFaults.Load() != f1 {
		t.Fatal("restore did not reinstate previous installation")
	}
	restore1()
	if netFaults.Load() != nil {
		t.Fatal("restore did not clear installation")
	}
}
