package rpcutil

// The frame codec: a drop-in replacement for net/rpc's default gob
// codec that moves the RPC envelope itself onto length-prefixed varint
// frames (DESIGN.md §13). The payloads inside the envelopes were
// already hand-framed bytes; profiling showed the remaining codec tax
// was gob's reflection and per-connection type negotiation on the
// envelope structs, paid twice per call on every dispatch, heartbeat
// and shuffle fetch. Arg/reply types that implement Message encode
// themselves; anything else falls back to a self-contained per-message
// gob stream, so cold-path structs (drain handoffs, FF1 sink deltas)
// need no hand-written framing.
//
// Stream layout: each side writes one version byte before its first
// message, then back-to-back messages.
//
//	request  = seq uvarint, method lenBytes, body
//	response = seq uvarint, method lenBytes, error lenBytes, body
//	body     = tag byte ('f' framed | 'g' gob), payload lenBytes
//	lenBytes = len uvarint, len bytes
//
// Like the payload codecs, a decoder accepts exactly its own version:
// master, workers and aug_proc are deployed from one build (DESIGN.md
// §13), so a mismatch is a deployment bug to surface, not a case to
// bridge.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net/rpc"
)

// Message is implemented by RPC arg/reply structs that frame themselves
// on the wire instead of riding the gob fallback. DecodeFrame receives
// exactly the encoded bytes produced by AppendFrame; the slice is a
// pooled buffer that is recycled when the call returns, so
// implementations must copy anything they retain.
type Message interface {
	AppendFrame(b []byte) []byte
	DecodeFrame(b []byte) error
}

// frameCodecVersion is the connection-stream version. Bump it on any
// change to the envelope layout above; payload formats version
// themselves separately (distmr's wireVersion).
const frameCodecVersion byte = 1

const (
	tagFramed byte = 'f'
	tagGob    byte = 'g'
)

// maxFrameBytes bounds a single body or string read, so a corrupt or
// hostile length prefix cannot force an arbitrary allocation.
const maxFrameBytes = 1 << 30

// frameCodec is the transport half shared by both codec roles. net/rpc
// serializes writes (client request mutex, server sending mutex) and
// reads from a single goroutine per connection, so the codec itself
// needs no locking.
type frameCodec struct {
	conn    io.Closer
	r       *bufio.Reader
	w       *bufio.Writer
	sentVer bool
	gotVer  bool
	// names interns method strings: a connection carries a handful of
	// distinct methods over thousands of messages, so decoding each
	// occurrence to a fresh string would be pure garbage.
	names map[string]string
}

func newFrameCodec(conn io.ReadWriteCloser) frameCodec {
	return frameCodec{
		conn:  conn,
		r:     bufio.NewReaderSize(conn, 16<<10),
		w:     bufio.NewWriterSize(conn, 16<<10),
		names: make(map[string]string, 8),
	}
}

// send writes one complete message — header, body tag, body — and
// flushes. Responses carry an error string; requests do not (hasErr).
func (c *frameCodec) send(seq uint64, method, errStr string, hasErr bool, body any) error {
	buf := GetBuf()
	defer PutBuf(buf)
	b := (*buf)[:0]
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(method)))
	b = append(b, method...)
	if hasErr {
		b = binary.AppendUvarint(b, uint64(len(errStr)))
		b = append(b, errStr...)
	}
	switch m := body.(type) {
	case Message:
		bb := GetBuf()
		enc := m.AppendFrame((*bb)[:0])
		b = append(b, tagFramed)
		b = binary.AppendUvarint(b, uint64(len(enc)))
		b = append(b, enc...)
		*bb = enc[:0]
		PutBuf(bb)
	default:
		var gb bytes.Buffer
		if err := gob.NewEncoder(&gb).Encode(body); err != nil {
			return fmt.Errorf("rpcutil: encode %s body: %w", method, err)
		}
		b = append(b, tagGob)
		b = binary.AppendUvarint(b, uint64(gb.Len()))
		b = append(b, gb.Bytes()...)
	}
	*buf = b[:0]
	if !c.sentVer {
		if err := c.w.WriteByte(frameCodecVersion); err != nil {
			return err
		}
		c.sentVer = true
	}
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	return c.w.Flush()
}

// checkVersion consumes the peer's version byte before the first read.
func (c *frameCodec) checkVersion() error {
	if c.gotVer {
		return nil
	}
	v, err := c.r.ReadByte()
	if err != nil {
		return err
	}
	if v != frameCodecVersion {
		return fmt.Errorf("rpcutil: peer speaks frame-codec version %d, this binary speaks %d", v, frameCodecVersion)
	}
	c.gotVer = true
	return nil
}

func (c *frameCodec) readLen(what string) (int, error) {
	n, err := binary.ReadUvarint(c.r)
	if err != nil {
		return 0, err
	}
	if n > maxFrameBytes {
		return 0, fmt.Errorf("rpcutil: %s length %d exceeds limit", what, n)
	}
	return int(n), nil
}

// readString reads a length-prefixed string, interning repeats.
func (c *frameCodec) readString(what string) (string, error) {
	n, err := c.readLen(what)
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	buf := GetBuf()
	defer PutBuf(buf)
	p := *buf
	if cap(p) < n {
		p = make([]byte, n)
		*buf = p[:0]
	}
	p = p[:n]
	if _, err := io.ReadFull(c.r, p); err != nil {
		return "", err
	}
	if s, ok := c.names[string(p)]; ok {
		return s, nil
	}
	s := string(p)
	c.names[s] = s
	return s, nil
}

// readBody reads one tagged body and decodes it into body; a nil body
// discards the frame (net/rpc's convention for unwanted bodies).
func (c *frameCodec) readBody(body any) error {
	tag, err := c.r.ReadByte()
	if err != nil {
		return err
	}
	n, err := c.readLen("body")
	if err != nil {
		return err
	}
	if body == nil {
		_, err := c.r.Discard(n)
		return err
	}
	buf := GetBuf()
	defer PutBuf(buf)
	p := *buf
	if cap(p) < n {
		p = make([]byte, n)
		*buf = p[:0]
	}
	p = p[:n]
	if _, err := io.ReadFull(c.r, p); err != nil {
		return err
	}
	switch m := body.(type) {
	case Message:
		if tag != tagFramed {
			return fmt.Errorf("rpcutil: %T expects a framed body, peer sent tag %q", body, tag)
		}
		return m.DecodeFrame(p)
	default:
		if tag != tagGob {
			return fmt.Errorf("rpcutil: %T expects a gob body, peer sent tag %q", body, tag)
		}
		return gob.NewDecoder(bytes.NewReader(p)).Decode(body)
	}
}

func (c *frameCodec) Close() error { return c.conn.Close() }

type clientCodec struct{ frameCodec }

// NewClientCodec wraps conn in the frame codec's client half. The
// server side must serve with NewServerCodec; DialRPC pairs them.
func NewClientCodec(conn io.ReadWriteCloser) rpc.ClientCodec {
	return &clientCodec{newFrameCodec(conn)}
}

func (c *clientCodec) WriteRequest(r *rpc.Request, body any) error {
	return c.send(r.Seq, r.ServiceMethod, "", false, body)
}

func (c *clientCodec) ReadResponseHeader(r *rpc.Response) error {
	if err := c.checkVersion(); err != nil {
		return err
	}
	seq, err := binary.ReadUvarint(c.r)
	if err != nil {
		return err
	}
	r.Seq = seq
	if r.ServiceMethod, err = c.readString("method"); err != nil {
		return err
	}
	r.Error, err = c.readString("error")
	return err
}

func (c *clientCodec) ReadResponseBody(body any) error { return c.readBody(body) }

type serverCodec struct{ frameCodec }

// NewServerCodec wraps conn in the frame codec's server half, for
// rpc.Server.ServeCodec.
func NewServerCodec(conn io.ReadWriteCloser) rpc.ServerCodec {
	return &serverCodec{newFrameCodec(conn)}
}

func (c *serverCodec) ReadRequestHeader(r *rpc.Request) error {
	if err := c.checkVersion(); err != nil {
		return err
	}
	seq, err := binary.ReadUvarint(c.r)
	if err != nil {
		return err
	}
	r.Seq = seq
	r.ServiceMethod, err = c.readString("method")
	return err
}

func (c *serverCodec) ReadRequestBody(body any) error { return c.readBody(body) }

func (c *serverCodec) WriteResponse(r *rpc.Response, body any) error {
	return c.send(r.Seq, r.ServiceMethod, r.Error, true, body)
}
