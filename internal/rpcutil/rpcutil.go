// Package rpcutil provides the transport plumbing shared by every TCP
// endpoint in the repo, three pieces:
//
// Dialing (Dial, DialRPC, Policy): the bounded retry with exponential
// backoff and jitter used by the aug_proc client, the distributed
// master/worker clients, and the worker-to-worker shuffle fetchers. A
// single dial attempt against a service that is still binding its
// listener (worker processes racing the master at startup, or a
// loopback accept queue momentarily full) fails spuriously; the fix is
// the same everywhere, so it lives here once. The netfaults hooks
// inject partitions into every dial and established connection, which
// is how the chaos suite severs links without touching the kernel.
//
// Serving (ServeHTTP, HTTPConfig): the HTTP harness behind the obsv
// admin servers (master and worker /metrics, /status, /healthz, pprof)
// and the flow service's JSON API — listener binding, connection
// tracking and graceful shutdown in one place. RPC endpoints use
// net/rpc directly; only the HTTP surfaces share this harness.
//
// Buffers (GetBuf, PutBuf): the message-buffer pool behind the
// hand-rolled wire codecs (DESIGN.md §13). Encoders append into pooled
// buffers and return them once the transport has consumed the bytes,
// so the steady-state task hot path allocates nothing per message.
package rpcutil

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// nopLogger mirrors obsv.Nop without importing obsv: rpcutil sits below
// the observability layer (obsv's admin server is built on this
// package's HTTP harness), so the dependency must point obsv → rpcutil.
var nopLogger = slog.New(nopHandler{})

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// orLog returns l, or the shared no-op logger when l is nil.
func orLog(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}

// Policy bounds a retried dial. The zero value is completed by
// applyDefaults; DefaultPolicy returns the completed defaults.
type Policy struct {
	// Attempts is the maximum number of dial attempts (default 5).
	Attempts int
	// BaseDelay is the sleep after the first failed attempt; each
	// subsequent failure doubles it up to MaxDelay (defaults 20ms/500ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// DialTimeout bounds each individual connection attempt (default 2s).
	DialTimeout time.Duration
	// Logger receives a warning per failed attempt that will be retried
	// (nil: silent). Expected startup races thus leave a visible record
	// instead of being swallowed by the eventual success.
	Logger *slog.Logger
}

func (p *Policy) applyDefaults() {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 20 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = 2 * time.Second
	}
}

// DefaultPolicy returns the defaults used when no policy is given.
func DefaultPolicy() Policy {
	var p Policy
	p.applyDefaults()
	return p
}

// jitter is the shared randomness behind backoff jitter. Determinism is
// not wanted here: two workers backing off after colliding should not
// stay in lock-step.
var (
	jitterMu sync.Mutex
	jitterRN = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Jitter returns a uniformly random duration in [0, d). It is exported
// for callers that add spacing outside a dial (heartbeat staggering).
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return time.Duration(jitterRN.Int63n(int64(d)))
}

// backoff returns the sleep before retry attempt i (0-based), with up to
// half the step added as jitter.
func (p *Policy) backoff(i int) time.Duration {
	d := p.BaseDelay
	for ; i > 0 && d < p.MaxDelay; i-- {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d + Jitter(d/2)
}

// Dial connects to a TCP address with retry/backoff/jitter.
func Dial(addr string, policy Policy) (net.Conn, error) {
	policy.applyDefaults()
	log := orLog(policy.Logger)
	faults := netFaults.Load()
	var lastErr error
	for attempt := 0; attempt < policy.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(policy.backoff(attempt - 1))
		}
		// Injected partition: fails like a dead host, and is re-checked
		// each attempt so a partition that heals mid-dial recovers.
		if faults.Partitioned(addr) {
			lastErr = fmt.Errorf("rpcutil: injected partition toward %s", addr)
			continue
		}
		conn, err := net.DialTimeout("tcp", addr, policy.DialTimeout)
		if err == nil {
			if faults != nil {
				return &faultConn{Conn: conn, addr: addr}, nil
			}
			return conn, nil
		}
		lastErr = err
		if attempt < policy.Attempts-1 {
			log.Warn("dial failed, retrying",
				"addr", addr, "attempt", attempt+1, "of", policy.Attempts, "err", err)
		}
	}
	return nil, fmt.Errorf("rpcutil: dial %s failed after %d attempts: %w",
		addr, policy.Attempts, lastErr)
}

// DialRPC connects a net/rpc client to a TCP address with
// retry/backoff/jitter. The connection speaks the frame codec
// (codec.go), so the server side must serve with NewServerCodec.
func DialRPC(addr string, policy Policy) (*rpc.Client, error) {
	conn, err := Dial(addr, policy)
	if err != nil {
		return nil, err
	}
	return rpc.NewClientWithCodec(NewClientCodec(conn)), nil
}
