// Package rpcutil provides the dial policy shared by every TCP client in
// the repo: the aug_proc client, the distributed master/worker clients,
// and the worker-to-worker shuffle fetchers. A single dial attempt
// against a service that is still binding its listener (worker processes
// racing the master at startup, or a loopback accept queue momentarily
// full) fails spuriously; the fix everywhere is the same bounded
// retry with exponential backoff and jitter, so it lives here once.
package rpcutil

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"time"

	"ffmr/internal/obsv"
)

// Policy bounds a retried dial. The zero value is completed by
// applyDefaults; DefaultPolicy returns the completed defaults.
type Policy struct {
	// Attempts is the maximum number of dial attempts (default 5).
	Attempts int
	// BaseDelay is the sleep after the first failed attempt; each
	// subsequent failure doubles it up to MaxDelay (defaults 20ms/500ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// DialTimeout bounds each individual connection attempt (default 2s).
	DialTimeout time.Duration
	// Logger receives a warning per failed attempt that will be retried
	// (nil: silent). Expected startup races thus leave a visible record
	// instead of being swallowed by the eventual success.
	Logger *slog.Logger
}

func (p *Policy) applyDefaults() {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 20 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = 2 * time.Second
	}
}

// DefaultPolicy returns the defaults used when no policy is given.
func DefaultPolicy() Policy {
	var p Policy
	p.applyDefaults()
	return p
}

// jitter is the shared randomness behind backoff jitter. Determinism is
// not wanted here: two workers backing off after colliding should not
// stay in lock-step.
var (
	jitterMu sync.Mutex
	jitterRN = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Jitter returns a uniformly random duration in [0, d). It is exported
// for callers that add spacing outside a dial (heartbeat staggering).
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return time.Duration(jitterRN.Int63n(int64(d)))
}

// backoff returns the sleep before retry attempt i (0-based), with up to
// half the step added as jitter.
func (p *Policy) backoff(i int) time.Duration {
	d := p.BaseDelay
	for ; i > 0 && d < p.MaxDelay; i-- {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d + Jitter(d/2)
}

// Dial connects to a TCP address with retry/backoff/jitter.
func Dial(addr string, policy Policy) (net.Conn, error) {
	policy.applyDefaults()
	log := obsv.Or(policy.Logger)
	faults := netFaults.Load()
	var lastErr error
	for attempt := 0; attempt < policy.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(policy.backoff(attempt - 1))
		}
		// Injected partition: fails like a dead host, and is re-checked
		// each attempt so a partition that heals mid-dial recovers.
		if faults.Partitioned(addr) {
			lastErr = fmt.Errorf("rpcutil: injected partition toward %s", addr)
			continue
		}
		conn, err := net.DialTimeout("tcp", addr, policy.DialTimeout)
		if err == nil {
			if faults != nil {
				return &faultConn{Conn: conn, addr: addr}, nil
			}
			return conn, nil
		}
		lastErr = err
		if attempt < policy.Attempts-1 {
			log.Warn("dial failed, retrying",
				"addr", addr, "attempt", attempt+1, "of", policy.Attempts, "err", err)
		}
	}
	return nil, fmt.Errorf("rpcutil: dial %s failed after %d attempts: %w",
		addr, policy.Attempts, lastErr)
}

// DialRPC connects a net/rpc client to a TCP address with
// retry/backoff/jitter.
func DialRPC(addr string, policy Policy) (*rpc.Client, error) {
	conn, err := Dial(addr, policy)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn), nil
}
