package rpcutil

import "sync"

// This file is the shared message-buffer pool behind every hand-rolled
// wire codec in the repo (DESIGN.md §13). Encoding a task descriptor,
// heartbeat or task result into a fresh []byte per message made the
// distributed backend's steady-state hot path allocate on every RPC; the
// pool recycles those buffers so the encode path amortizes to zero
// allocations. Buffers are handed out as *[]byte (the sync.Pool idiom
// that avoids an allocation per Put), keep whatever capacity their
// previous use grew them to, and are truncated by the caller with
// (*buf)[:0] before appending.

// bufPool recycles wire-encode buffers. The New hint matches a typical
// task descriptor; large results grow their buffer once and keep the
// capacity for the next message of that size class.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// GetBuf returns a pooled byte buffer for wire encoding. The slice has
// length zero and non-zero capacity; append to it and hand the encoded
// message to the transport, then return it with PutBuf once the
// transport no longer references it (for net/rpc, after the Call
// completes).
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer obtained from GetBuf to the pool. The caller
// must not touch the slice afterwards. Oversized buffers (beyond 1 MiB)
// are dropped instead of pooled so one huge reduce output does not pin
// its footprint forever.
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) > 1<<20 {
		return
	}
	bufPool.Put(b)
}
