package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
)

// This file implements the multi-round MapReduce breadth-first search the
// paper uses both to estimate graph diameter (Section V-A1) and as the
// lower-bound baseline for rounds and runtime in Fig. 6 and Fig. 8 ("we
// highlight that our FFMR algorithm is comparable in terms of number of
// rounds performed and only a constant factor slower than the BFS
// algorithm in MR").

// bfsValue is a BFS vertex record: the distance from the source (-1 when
// unvisited) plus the adjacency list. Fragments carry only a proposed
// distance.
type bfsValue struct {
	master    bool
	dist      int64
	neighbors []graph.VertexID
}

func encodeBFS(dst []byte, v *bfsValue) []byte {
	if v.master {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendVarint(dst, v.dist)
	if v.master {
		dst = binary.AppendUvarint(dst, uint64(len(v.neighbors)))
		for _, n := range v.neighbors {
			dst = binary.AppendUvarint(dst, uint64(n))
		}
	}
	return dst
}

func decodeBFS(data []byte, v *bfsValue) error {
	if len(data) < 1 {
		return fmt.Errorf("core: empty bfs value")
	}
	v.master = data[0] != 0
	off := 1
	d, n := binary.Varint(data[off:])
	if n <= 0 {
		return fmt.Errorf("core: corrupt bfs dist")
	}
	off += n
	v.dist = d
	v.neighbors = v.neighbors[:0]
	if !v.master {
		return nil
	}
	cnt, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return fmt.Errorf("core: corrupt bfs neighbor count")
	}
	off += n
	for i := uint64(0); i < cnt; i++ {
		nb, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return fmt.Errorf("core: corrupt bfs neighbor")
		}
		off += n
		v.neighbors = append(v.neighbors, graph.VertexID(nb))
	}
	return nil
}

// bfsConvertMapper emits each endpoint of every raw edge to the other.
type bfsConvertMapper struct{}

func (bfsConvertMapper) Map(ctx *mapreduce.TaskContext, key, value []byte) error {
	e, err := decodeInputEdge(value)
	if err != nil {
		return err
	}
	var buf [10]byte
	ctx.Emit(graph.KeyBytes(e.U), binary.AppendUvarint(buf[:0], uint64(e.V)))
	ctx.Emit(graph.KeyBytes(e.V), binary.AppendUvarint(buf[:0], uint64(e.U)))
	return nil
}

type bfsConvertReducer struct {
	source graph.VertexID
}

func (r *bfsConvertReducer) Reduce(ctx *mapreduce.TaskContext, key, _ []byte, values *mapreduce.Values) error {
	u, err := graph.DecodeKey(key)
	if err != nil {
		return err
	}
	v := bfsValue{master: true, dist: -1}
	if u == r.source {
		v.dist = 0
	}
	seen := make(map[graph.VertexID]bool)
	for {
		vb := values.Next()
		if vb == nil {
			break
		}
		nb, n := binary.Uvarint(vb)
		if n <= 0 {
			return fmt.Errorf("core: corrupt bfs neighbor fragment")
		}
		if !seen[graph.VertexID(nb)] {
			seen[graph.VertexID(nb)] = true
			v.neighbors = append(v.neighbors, graph.VertexID(nb))
		}
	}
	sort.Slice(v.neighbors, func(i, j int) bool { return v.neighbors[i] < v.neighbors[j] })
	ctx.Emit(key, encodeBFS(nil, &v))
	return nil
}

// bfsMapper expands the current frontier: vertices whose distance equals
// round-1 propose distance round to every neighbour.
type bfsMapper struct{ round int64 }

func (m *bfsMapper) Map(ctx *mapreduce.TaskContext, key, value []byte) error {
	var v bfsValue
	if err := decodeBFS(value, &v); err != nil {
		return err
	}
	if v.dist == m.round-1 {
		frag := bfsValue{dist: m.round}
		enc := encodeBFS(nil, &frag)
		for _, nb := range v.neighbors {
			ctx.Emit(graph.KeyBytes(nb), enc)
		}
	}
	ctx.Emit(key, value)
	return nil
}

type bfsReducer struct{}

func (bfsReducer) Reduce(ctx *mapreduce.TaskContext, key, _ []byte, values *mapreduce.Values) error {
	var master bfsValue
	var proposed int64 = -1
	var haveMaster bool
	var v bfsValue
	for {
		vb := values.Next()
		if vb == nil {
			break
		}
		if err := decodeBFS(vb, &v); err != nil {
			return err
		}
		if v.master {
			master = v
			master.neighbors = append([]graph.VertexID(nil), v.neighbors...)
			haveMaster = true
		} else if proposed < 0 || v.dist < proposed {
			proposed = v.dist
		}
	}
	if !haveMaster {
		return fmt.Errorf("core: bfs vertex lost its master record")
	}
	if master.dist < 0 && proposed >= 0 {
		master.dist = proposed
		ctx.Inc("frontier", 1)
	}
	ctx.Emit(key, encodeBFS(nil, &master))
	return nil
}

// BFSResult reports a multi-round MR BFS run.
type BFSResult struct {
	// Rounds is the number of expansion rounds executed (excluding the
	// conversion round #0); it equals the eccentricity of the source
	// within its component, plus one final empty round that detects
	// termination.
	Rounds int
	// SinkDist is the source-to-sink distance, or -1 if unreachable.
	SinkDist int
	// Visited is the number of vertices reached.
	Visited int64
	// RoundStats has one entry per round, index 0 being round #0.
	RoundStats []RoundStat

	TotalSimTime  time.Duration
	TotalWallTime time.Duration
}

// RunBFS executes a multi-round MapReduce BFS from in.Source, the
// baseline the paper compares FFMR against.
func RunBFS(cluster *mapreduce.Cluster, in *graph.Input, reducers int, pathPrefix string) (*BFSResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if reducers <= 0 {
		reducers = cluster.Nodes * cluster.SlotsPerNode
		if reducers > 64 {
			reducers = 64
		}
	}
	if pathPrefix == "" {
		pathPrefix = "bfs/"
	}
	fs := cluster.FS
	fs.DeletePrefix(pathPrefix)
	inputs, err := WriteInput(fs, pathPrefix, in, cluster.Nodes*2)
	if err != nil {
		return nil, err
	}

	result := &BFSResult{SinkDist: -1}
	job0 := &mapreduce.Job{
		Name:         "bfs-round-0-convert",
		Round:        0,
		Inputs:       inputs,
		OutputPrefix: roundPrefix(pathPrefix, 0),
		NumReducers:  reducers,
		NewMapper:    func() mapreduce.Mapper { return bfsConvertMapper{} },
		NewReducer:   func() mapreduce.Reducer { return &bfsConvertReducer{source: in.Source} },
		Spec:         &mapreduce.JobSpec{Kind: KindBFSConvert, Params: mustEncodeParams(&bfsConvertParams{Source: in.Source})},
	}
	res0, err := cluster.Run(job0)
	if err != nil {
		return nil, err
	}
	result.RoundStats = append(result.RoundStats, jobStat(0, res0, AugProcStats{}))
	result.Visited = 1

	maxRounds := in.NumVertices + 1
	for round := 1; round <= maxRounds; round++ {
		r := round
		job := &mapreduce.Job{
			Name:         fmt.Sprintf("bfs-round-%d", round),
			Round:        round,
			Inputs:       fs.List(roundPrefix(pathPrefix, round-1)),
			OutputPrefix: roundPrefix(pathPrefix, round),
			NumReducers:  reducers,
			NewMapper:    func() mapreduce.Mapper { return &bfsMapper{round: int64(r)} },
			NewReducer:   func() mapreduce.Reducer { return bfsReducer{} },
			Spec:         &mapreduce.JobSpec{Kind: KindBFSRound, Params: mustEncodeParams(&bfsRoundParams{Round: int64(r)})},
		}
		res, err := cluster.Run(job)
		if err != nil {
			return nil, err
		}
		result.RoundStats = append(result.RoundStats, jobStat(round, res, AugProcStats{}))
		result.Rounds = round
		frontier := res.Counter("frontier")
		result.Visited += frontier
		if round >= 2 {
			fs.DeletePrefix(roundPrefix(pathPrefix, round-2))
		}
		if frontier == 0 {
			break
		}
	}

	// Recover the sink distance from the final records.
	verts := fs.List(roundPrefix(pathPrefix, result.Rounds))
	sinkKey := graph.KeyBytes(in.Sink)
	for _, name := range verts {
		data, err := fs.ReadFile(name)
		if err != nil {
			return nil, err
		}
		if d, ok, err := findBFSDist(data, sinkKey); err != nil {
			return nil, err
		} else if ok {
			result.SinkDist = int(d)
			break
		}
	}

	for i := range result.RoundStats {
		result.TotalSimTime += result.RoundStats[i].SimTime
		result.TotalWallTime += result.RoundStats[i].WallTime
	}
	return result, nil
}

// BFSDistances reads the per-vertex hop distances a completed RunBFS
// left under pathPrefix (res must be that run's result). Vertices the
// search never reached carry -1; vertices absent from the input edge
// list have no record and are absent from the map. Consumers: the
// prflow engine seeds push-relabel heights from a sink-rooted MR-BFS,
// and the portfolio prober runs the double-sweep diameter estimate.
func BFSDistances(fsys interface {
	List(prefix string) []string
	ReadFile(name string) ([]byte, error)
}, pathPrefix string, res *BFSResult) (map[graph.VertexID]int64, error) {
	out := make(map[graph.VertexID]int64)
	for _, name := range fsys.List(roundPrefix(pathPrefix, res.Rounds)) {
		data, err := fsys.ReadFile(name)
		if err != nil {
			return nil, err
		}
		r := dfs.NewRecordReader(data)
		for {
			k, v, ok, err := r.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			u, err := graph.DecodeKey(k)
			if err != nil {
				return nil, err
			}
			var bv bfsValue
			if err := decodeBFS(v, &bv); err != nil {
				return nil, err
			}
			out[u] = bv.dist
		}
	}
	return out, nil
}

func findBFSDist(fileData, key []byte) (int64, bool, error) {
	r := dfs.NewRecordReader(fileData)
	for {
		k, v, ok, err := r.Next()
		if err != nil {
			return 0, false, err
		}
		if !ok {
			return 0, false, nil
		}
		if string(k) == string(key) {
			var bv bfsValue
			if err := decodeBFS(v, &bv); err != nil {
				return 0, false, err
			}
			return bv.dist, true, nil
		}
	}
}
