package core

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"ffmr/internal/distmr"
	"ffmr/internal/graphgen"
	"ffmr/internal/leakcheck"
	"ffmr/internal/obsv"
	"ffmr/internal/trace"
)

// TestDistributedMetricsEndpointParity is the tentpole acceptance test
// for the live observability layer: a full FF5 run on the distributed
// backend with the master's admin server enabled, then a real HTTP
// scrape of /metrics whose end-of-run totals must equal the
// trace.Registry the run published into — every counter, exactly.
// /healthz and /status are exercised on the same live master.
func TestDistributedMetricsEndpointParity(t *testing.T) {
	defer leakcheck.Check(t)()

	in, err := graphgen.WattsStrogatz(160, 6, 0.1, 41)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 5, 42)

	tr := trace.New()
	// The harness is closed by an explicit defer (not t.Cleanup) so it
	// runs before the leak check above it.
	h, err := distmr.StartHarness(distmr.HarnessConfig{
		Workers: 3,
		Tracer:  tr,
		Master:  distmr.Config{Obsv: obsv.Options{AdminAddr: "127.0.0.1:0"}},
	})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()
	addr := h.Master.AdminAddr()
	if addr == "" {
		t.Fatal("master has no admin address despite AdminAddr being set")
	}
	defer http.DefaultClient.CloseIdleConnections()

	distC := testCluster(3)
	distC.Distributed = h.Master
	res, err := Run(distC, in, Options{Variant: FF5, Tracer: tr})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if res.MaxFlow <= 0 {
		t.Fatalf("max flow = %d, want > 0 (the run must do real work)", res.MaxFlow)
	}

	if resp, err := http.Get("http://" + addr + "/healthz"); err != nil {
		t.Fatalf("GET /healthz: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/healthz = %d, want 200", resp.StatusCode)
		}
	}

	// A short run can outpace the 100ms heartbeat cadence, so poll until
	// the piggybacked task counts have reached the master.
	var st obsv.ClusterStatus
	var tasksDone int64
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/status")
		if err != nil {
			t.Fatalf("GET /status: %v", err)
		}
		st = obsv.ClusterStatus{}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("/status unparseable: %v", err)
		}
		tasksDone = 0
		for _, w := range st.Workers {
			tasksDone += w.TasksDone
		}
		if tasksDone > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Role != "master" || st.WorkersAlive != 3 || len(st.Workers) != 3 {
		t.Errorf("/status = role %q, %d alive, %d workers; want master/3/3",
			st.Role, st.WorkersAlive, len(st.Workers))
	}
	if tasksDone == 0 {
		t.Error("/status reports zero heartbeat-piggybacked tasks done after a full run")
	}

	// The parity assertion: /metrics is scraped over real HTTP until two
	// consecutive scrapes agree (worker telemetry — counters, histograms,
	// span batches — keeps landing on heartbeats for a short tail after
	// the run returns), then the registry is snapshotted; the Prometheus
	// totals must match the snapshot for every counter and every
	// histogram's _count/_sum.
	scrape := func() map[string]int64 {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		parsed, err := obsv.ParseMetrics(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("/metrics unparseable: %v", err)
		}
		return parsed
	}
	// The heartbeat-RTT histogram gains a sample on every beat forever,
	// so it can never quiesce; it is excluded from the equality loop and
	// checked with bounds below.
	rttPrefix := obsv.MetricName(distmr.HistHeartbeatRTTNS)
	settled := func(a, b map[string]int64) bool {
		for k, v := range b {
			if strings.HasPrefix(k, rttPrefix) {
				continue
			}
			if av, ok := a[k]; !ok || av != v {
				return false
			}
		}
		return len(a) >= len(b)
	}
	parsed := scrape()
	for quiet := time.Now().Add(5 * time.Second); time.Now().Before(quiet); {
		time.Sleep(150 * time.Millisecond) // > the heartbeat cadence
		next := scrape()
		done := settled(parsed, next) && settled(next, parsed)
		parsed = next
		if done {
			break
		}
	}

	snap := tr.Registry().CounterSnapshot()
	if len(snap) == 0 {
		t.Fatal("registry holds no counters after a distributed run")
	}
	for name, want := range snap {
		key := obsv.MetricName(name) + "_total"
		if got, ok := parsed[key]; !ok {
			t.Errorf("counter %q (%s) missing from /metrics", name, key)
		} else if got != want {
			t.Errorf("%s = %d, registry says %d", key, got, want)
		}
	}

	// Histogram parity: every registry histogram's _count and _sum must
	// appear in the exposition with the exact registry values. The
	// worker-side service-time histogram must be populated — that is the
	// span/telemetry shipping path working over the real wire.
	hists := tr.Registry().HistogramSnapshot()
	if hv, ok := hists[distmr.HistTaskServiceNS]; !ok || hv.Count == 0 {
		t.Errorf("histogram %q not shipped from workers (count %d)",
			distmr.HistTaskServiceNS, hv.Count)
	}
	for name, hv := range hists {
		mn := obsv.MetricName(name)
		if name == distmr.HistHeartbeatRTTNS {
			// Still advancing with every beat: the scrape preceded the
			// snapshot, so scraped ≤ registry, and both must be populated.
			if got := parsed[mn+"_count"]; got == 0 || got > hv.Count {
				t.Errorf("%s_count = %d, want in (0, %d]", mn, got, hv.Count)
			}
			continue
		}
		if got, ok := parsed[mn+"_count"]; !ok || got != hv.Count {
			t.Errorf("%s_count = %d (present %v), registry says %d", mn, got, ok, hv.Count)
		}
		if got, ok := parsed[mn+"_sum"]; !ok || got != hv.Sum {
			t.Errorf("%s_sum = %d (present %v), registry says %d", mn, got, ok, hv.Sum)
		}
	}

	// Spot-check the live driver metrics the run loop publishes.
	if got := parsed[obsv.MetricName(trace.CounterFFRounds)+"_total"]; got != int64(res.Rounds) {
		t.Errorf("ffmr rounds counter = %d, want %d", got, res.Rounds)
	}
	if got := parsed[obsv.MetricName(trace.GaugeFFMaxFlow)]; got != res.MaxFlow {
		t.Errorf("max-flow gauge = %d, want %d", got, res.MaxFlow)
	}
}
