package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"ffmr/internal/distmr"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
	"ffmr/internal/rpcutil"
)

// This file makes the core jobs runnable on the distributed backend
// (internal/distmr). Closures cannot cross a process boundary, so every
// job carries a Spec: a registered kind name plus gob-encoded parameters
// from which a worker — in this process or another — reconstructs the
// job's mappers, reducers, combiner and service connection. Any binary
// that links this package (the driver, cmd/ffmr-worker, tests) registers
// the same kinds at init.

// Job kind names registered with the distributed backend.
const (
	KindFFConvert  = "ffmr/convert"
	KindFFRound    = "ffmr/round"
	KindBFSConvert = "bfs/convert"
	KindBFSRound   = "bfs/round"
)

type ffConvertParams struct {
	Source        graph.VertexID
	Sink          graph.VertexID
	Bidirectional bool
	SentTracking  bool
}

type ffRoundParams struct {
	Variant     Variant
	K           int
	Source      graph.VertexID
	Sink        graph.VertexID
	DeltasFile  string
	UseCombiner bool
	// ServiceAddr is the round's acceptance service: the aug_proc server
	// for FF2+, the driver's FF1 collector server otherwise.
	ServiceAddr string
}

type bfsConvertParams struct {
	Source graph.VertexID
}

type bfsRoundParams struct {
	Round int64
}

// mustEncodeParams gob-encodes a params struct. Encoding our own concrete
// structs with exported scalar fields cannot fail.
func mustEncodeParams(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("core: encode job params: %v", err))
	}
	return buf.Bytes()
}

func decodeParams(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("core: decode job params: %w", err)
	}
	return nil
}

func init() {
	distmr.RegisterKind(KindFFConvert, func(params []byte) (*distmr.JobCode, error) {
		var p ffConvertParams
		if err := decodeParams(params, &p); err != nil {
			return nil, err
		}
		return &distmr.JobCode{
			NewMapper: func() mapreduce.Mapper { return convertMapper{} },
			NewReducer: func() mapreduce.Reducer {
				return &convertReducer{
					source:        p.Source,
					sink:          p.Sink,
					bidirectional: p.Bidirectional,
					sentTracking:  p.SentTracking,
				}
			},
		}, nil
	})

	distmr.RegisterKind(KindFFRound, func(params []byte) (*distmr.JobCode, error) {
		var p ffRoundParams
		if err := decodeParams(params, &p); err != nil {
			return nil, err
		}
		cfg := &runConfig{
			opts:       Options{Variant: p.Variant, K: p.K},
			feat:       p.Variant.features(),
			source:     p.Source,
			sink:       p.Sink,
			deltasFile: p.DeltasFile,
		}
		code := &distmr.JobCode{
			NewMapper:  func() mapreduce.Mapper { return newFFMapper(cfg) },
			NewReducer: func() mapreduce.Reducer { return newFFReducer(cfg) },
		}
		if p.UseCombiner {
			code.NewCombiner = newFFCombiner
		}
		if cfg.feat.augProc {
			client, err := DialAugProc(p.ServiceAddr)
			if err != nil {
				return nil, err
			}
			code.Service = client
			code.Close = client.Close
		} else {
			sink, err := dialFF1Sink(p.ServiceAddr)
			if err != nil {
				return nil, err
			}
			code.Service = sink
			code.Close = sink.Close
		}
		return code, nil
	})

	distmr.RegisterKind(KindBFSConvert, func(params []byte) (*distmr.JobCode, error) {
		var p bfsConvertParams
		if err := decodeParams(params, &p); err != nil {
			return nil, err
		}
		return &distmr.JobCode{
			NewMapper:  func() mapreduce.Mapper { return bfsConvertMapper{} },
			NewReducer: func() mapreduce.Reducer { return &bfsConvertReducer{source: p.Source} },
		}, nil
	})

	distmr.RegisterKind(KindBFSRound, func(params []byte) (*distmr.JobCode, error) {
		var p bfsRoundParams
		if err := decodeParams(params, &p); err != nil {
			return nil, err
		}
		return &distmr.JobCode{
			NewMapper:  func() mapreduce.Mapper { return &bfsMapper{round: p.Round} },
			NewReducer: func() mapreduce.Reducer { return bfsReducer{} },
		}, nil
	})
}

// FF1AddArgs carries the FF1 sink reducer's round outcome — the accepted
// flow deltas and acceptance statistics — to the driver's collector.
type FF1AddArgs struct {
	Deltas map[graph.EdgeID]int64
	Stats  AugProcStats
}

// FF1AddReply is the empty acknowledgement.
type FF1AddReply struct{}

// ff1CollectorServer exposes the driver's per-round ff1Collector over
// TCP so FF1 sink reducers running on distributed workers can publish
// their acceptance outcome, the way FF2+ reducers reach aug_proc. One
// server lives for the whole run; the driver points it at each round's
// fresh collector.
type ff1CollectorServer struct {
	ln net.Listener

	mu  sync.Mutex
	col *ff1Collector
}

type ff1SinkService struct{ s *ff1CollectorServer }

// Add publishes a round outcome into the current collector. The
// collector's replace semantics make the call idempotent, so retried or
// speculated sink reducers cannot double-count.
func (svc *ff1SinkService) Add(args *FF1AddArgs, _ *FF1AddReply) error {
	svc.s.mu.Lock()
	col := svc.s.col
	svc.s.mu.Unlock()
	if col == nil {
		return fmt.Errorf("core: ff1 collector: no round is active")
	}
	return col.add(args.Deltas, args.Stats)
}

func newFF1CollectorServer() (*ff1CollectorServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: ff1 collector listen: %w", err)
	}
	s := &ff1CollectorServer{ln: ln}
	srv := rpc.NewServer()
	if err := srv.RegisterName("FF1Sink", &ff1SinkService{s: s}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("core: ff1 collector register: %w", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeCodec(rpcutil.NewServerCodec(conn))
		}
	}()
	return s, nil
}

func (s *ff1CollectorServer) Addr() string { return s.ln.Addr().String() }

func (s *ff1CollectorServer) setCollector(col *ff1Collector) {
	s.mu.Lock()
	s.col = col
	s.mu.Unlock()
}

func (s *ff1CollectorServer) Close() error { return s.ln.Close() }

// ff1RemoteSink is a worker's connection to the driver's collector
// server; it satisfies ff1Sink so the FF1 reducer code is backend
// agnostic.
type ff1RemoteSink struct{ c *rpc.Client }

func dialFF1Sink(addr string) (*ff1RemoteSink, error) {
	c, err := rpcutil.DialRPC(addr, rpcutil.Policy{})
	if err != nil {
		return nil, fmt.Errorf("core: ff1 collector dial: %w", err)
	}
	return &ff1RemoteSink{c: c}, nil
}

func (s *ff1RemoteSink) add(deltas map[graph.EdgeID]int64, st AugProcStats) error {
	return s.c.Call("FF1Sink.Add", &FF1AddArgs{Deltas: deltas, Stats: st}, &FF1AddReply{})
}

func (s *ff1RemoteSink) Close() error { return s.c.Close() }
