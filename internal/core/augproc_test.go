package core

import (
	"sync"
	"testing"

	"ffmr/internal/graph"
)

func newTestAugProc(t *testing.T) *AugProcServer {
	t.Helper()
	s, err := NewAugProcServer()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func simplePath(id graph.EdgeID, cap int64) graph.ExcessPath {
	return graph.ExcessPath{Edges: []graph.PathEdge{
		{ID: id, From: 0, To: 1, Cap: cap, Fwd: true},
	}}
}

func TestAugProcAcceptsOverRPC(t *testing.T) {
	s := newTestAugProc(t)
	s.BeginRound(0)
	c, err := DialAugProc(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Submit(0, 0, 0, []graph.ExcessPath{simplePath(1, 1), simplePath(2, 1)}); err != nil {
		t.Fatal(err)
	}
	st, deltas := s.EndRound()
	if st.Submitted != 2 || st.Accepted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalDelta != 2 {
		t.Fatalf("total delta = %d", st.TotalDelta)
	}
	if deltas[1] != 1 || deltas[2] != 1 {
		t.Fatalf("deltas = %v", deltas)
	}
}

func TestAugProcRejectsConflicts(t *testing.T) {
	s := newTestAugProc(t)
	s.BeginRound(0)
	c, err := DialAugProc(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two candidates over the same unit-capacity edge: only one wins.
	if err := c.Submit(0, 0, 0, []graph.ExcessPath{simplePath(7, 1), simplePath(7, 1)}); err != nil {
		t.Fatal(err)
	}
	st, _ := s.EndRound()
	if st.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", st.Accepted)
	}
}

func TestAugProcRoundIsolation(t *testing.T) {
	s := newTestAugProc(t)
	c, err := DialAugProc(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s.BeginRound(0)
	if err := c.Submit(0, 0, 0, []graph.ExcessPath{simplePath(1, 1)}); err != nil {
		t.Fatal(err)
	}
	st1, _ := s.EndRound()
	if st1.Accepted != 1 {
		t.Fatalf("round 1 accepted = %d", st1.Accepted)
	}

	// A new round must reset grants: the same edge is available again.
	s.BeginRound(0)
	if err := c.Submit(0, 0, 0, []graph.ExcessPath{simplePath(1, 1)}); err != nil {
		t.Fatal(err)
	}
	st2, _ := s.EndRound()
	if st2.Accepted != 1 {
		t.Fatalf("round 2 accepted = %d (grants leaked across rounds)", st2.Accepted)
	}
}

func TestAugProcConcurrentClients(t *testing.T) {
	s := newTestAugProc(t)
	s.BeginRound(0)

	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := DialAugProc(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				id := graph.EdgeID(ci*perClient + i)
				if err := c.Submit(0, 0, 0, []graph.ExcessPath{simplePath(id, 1)}); err != nil {
					errs <- err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	st, deltas := s.EndRound()
	if st.Submitted != clients*perClient {
		t.Fatalf("submitted = %d, want %d", st.Submitted, clients*perClient)
	}
	if st.Accepted != clients*perClient {
		t.Fatalf("accepted = %d, want %d (all edges disjoint)", st.Accepted, clients*perClient)
	}
	if len(deltas) != clients*perClient {
		t.Fatalf("deltas = %d entries", len(deltas))
	}
	if st.MaxQueue < 1 {
		t.Errorf("max queue = %d, want >= 1", st.MaxQueue)
	}
}

func TestAugProcEmptySubmit(t *testing.T) {
	s := newTestAugProc(t)
	s.BeginRound(0)
	c, err := DialAugProc(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Submit(0, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	st, _ := s.EndRound()
	if st.Submitted != 0 {
		t.Fatalf("empty submit counted: %+v", st)
	}
}

func TestAugProcDialFailure(t *testing.T) {
	if _, err := DialAugProc("127.0.0.1:1"); err == nil {
		t.Error("dialing a dead port succeeded")
	}
}
