package core

import (
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
)

// ffCombiner merges the vertex fragments a single map task emits toward
// the same destination vertex into one fragment, deduplicating excess
// paths by signature. Master vertex records pass through untouched so
// the reducer's master-first merge priority is preserved.
//
// This is the combiner the paper evaluated and rejected for FFMR: "as a
// rule of thumb, combiners are only cost-effective if the map output can
// be aggregated sufficiently, i.e. by 20-30%", and fragment streams
// rarely aggregate that much because most destinations receive one
// fragment per task. It is kept behind Options.UseCombiner so the
// finding can be reproduced (see the combiner ablation benchmark).
type ffCombiner struct {
	frag graph.VertexValue
}

func newFFCombiner() mapreduce.Combiner { return &ffCombiner{} }

// Combine implements mapreduce.Combiner.
func (c *ffCombiner) Combine(key []byte, values [][]byte) ([][]byte, error) {
	if len(values) <= 1 {
		return values, nil
	}
	var out [][]byte
	var merged graph.VertexValue
	seen := make(map[uint64]bool)
	for _, vb := range values {
		c.frag.Reset()
		if err := graph.DecodeValueInto(vb, &c.frag); err != nil {
			return nil, err
		}
		if c.frag.IsMaster() {
			out = append(out, vb)
			continue
		}
		for i := range c.frag.Su {
			if sig := c.frag.Su[i].Signature(); !seen[sig] {
				seen[sig] = true
				merged.Su = append(merged.Su, c.frag.Su[i].Clone())
			}
		}
		for i := range c.frag.Tu {
			// Source and sink paths share the signature space; offset the
			// sink side so a degenerate collision cannot drop a path kind.
			if sig := c.frag.Tu[i].Signature() ^ 0x9e3779b97f4a7c15; !seen[sig] {
				seen[sig] = true
				merged.Tu = append(merged.Tu, c.frag.Tu[i].Clone())
			}
		}
	}
	if len(merged.Su) > 0 || len(merged.Tu) > 0 {
		out = append(out, graph.EncodeValue(&merged))
	}
	return out, nil
}
