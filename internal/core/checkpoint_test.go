package core

import (
	"testing"

	"ffmr/internal/graphgen"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cp := &checkpoint{
		Variant: FF3, Reducers: 7, Round: 4, MaxFlow: 123, Converged: true,
		Stats: []RoundStat{
			{Round: 0, MapOutRecords: 10, OutputBytes: 999, SimTime: 5},
			{Round: 1, APaths: 3, FlowDelta: 3, ShuffleBytes: 4567, WallTime: 17},
		},
	}
	got, err := decodeCheckpoint(encodeCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Variant != cp.Variant || got.Reducers != cp.Reducers || got.Round != cp.Round ||
		got.MaxFlow != cp.MaxFlow || got.Converged != cp.Converged {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Stats) != 2 || got.Stats[1] != cp.Stats[1] {
		t.Fatalf("stats mismatch: %+v", got.Stats)
	}
	if _, err := decodeCheckpoint([]byte{0x07}); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := decodeCheckpoint(encodeCheckpoint(cp)[:5]); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

func TestResumeContinuesInterruptedRun(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(500, 4, 81)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 6, 82)
	if err != nil {
		t.Fatal(err)
	}
	want := dinicValue(t, in)

	// Reference: uninterrupted run.
	full, err := Run(testCluster(3), in, Options{Variant: FF5, Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if full.MaxFlow != want {
		t.Fatalf("reference run flow %d, want %d", full.MaxFlow, want)
	}

	// Interrupted run: stop after 2 rounds (MaxRounds exceeded -> error
	// with partial result), then resume on the SAME cluster/DFS.
	cluster := testCluster(3)
	opts := Options{Variant: FF5, Reducers: 4, MaxRounds: 2}
	if _, err := Run(cluster, in, opts); err == nil {
		t.Fatal("2-round run unexpectedly converged; pick a harder graph")
	}

	opts.MaxRounds = 0 // default
	opts.Resume = true
	res, err := Run(cluster, in, opts)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if res.MaxFlow != want {
		t.Fatalf("resumed run flow %d, want %d", res.MaxFlow, want)
	}
	if !res.Converged {
		t.Fatal("resumed run did not converge")
	}
	// Round stats must cover every round exactly once (0..Rounds).
	for i, rs := range res.RoundStats {
		if rs.Round != i {
			t.Fatalf("stats gap at index %d: round %d", i, rs.Round)
		}
	}
}

func TestResumeAfterConvergenceIsNoOp(t *testing.T) {
	in := pathGraph(4, 1)
	cluster := testCluster(2)
	opts := Options{Variant: FF2, Reducers: 2}
	first, err := Run(cluster, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	second, err := Run(cluster, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.MaxFlow != first.MaxFlow || second.Rounds != first.Rounds {
		t.Fatalf("no-op resume diverged: %+v vs %+v", second, first)
	}
}

func TestResumeRejectsMismatchedOptions(t *testing.T) {
	in := pathGraph(4, 1)
	cluster := testCluster(2)
	if _, err := Run(cluster, in, Options{Variant: FF2, Reducers: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cluster, in, Options{Variant: FF5, Reducers: 2, Resume: true}); err == nil {
		t.Fatal("variant mismatch accepted on resume")
	}
	if _, err := Run(cluster, in, Options{Variant: FF2, Reducers: 3, Resume: true}); err == nil {
		t.Fatal("reducer mismatch accepted on resume")
	}
}

func TestResumeWithoutCheckpointRunsFresh(t *testing.T) {
	in := pathGraph(4, 1)
	res, err := Run(testCluster(2), in, Options{Variant: FF1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != 1 {
		t.Fatalf("flow = %d", res.MaxFlow)
	}
}
