package core

import (
	"testing"

	"ffmr/internal/graphgen"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cp := &checkpoint{
		Variant: FF3, Reducers: 7, Round: 4, MaxFlow: 123, Converged: true,
		Stats: []RoundStat{
			{Round: 0, MapOutRecords: 10, OutputBytes: 999, SimTime: 5},
			{Round: 1, APaths: 3, FlowDelta: 3, ShuffleBytes: 4567, WallTime: 17},
		},
	}
	got, err := decodeCheckpoint(encodeCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Variant != cp.Variant || got.Reducers != cp.Reducers || got.Round != cp.Round ||
		got.MaxFlow != cp.MaxFlow || got.Converged != cp.Converged {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Stats) != 2 || got.Stats[1] != cp.Stats[1] {
		t.Fatalf("stats mismatch: %+v", got.Stats)
	}
	if _, err := decodeCheckpoint([]byte{0x07}); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := decodeCheckpoint(encodeCheckpoint(cp)[:5]); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

func TestResumeContinuesInterruptedRun(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(500, 4, 81)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 6, 82)
	if err != nil {
		t.Fatal(err)
	}
	want := dinicValue(t, in)

	// Reference: uninterrupted run.
	full, err := Run(testCluster(3), in, Options{Variant: FF5, Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if full.MaxFlow != want {
		t.Fatalf("reference run flow %d, want %d", full.MaxFlow, want)
	}

	// Interrupted run: stop after 2 rounds (MaxRounds exceeded -> error
	// with partial result), then resume on the SAME cluster/DFS.
	cluster := testCluster(3)
	opts := Options{Variant: FF5, Reducers: 4, MaxRounds: 2}
	if _, err := Run(cluster, in, opts); err == nil {
		t.Fatal("2-round run unexpectedly converged; pick a harder graph")
	}

	opts.MaxRounds = 0 // default
	opts.Resume = true
	res, err := Run(cluster, in, opts)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if res.MaxFlow != want {
		t.Fatalf("resumed run flow %d, want %d", res.MaxFlow, want)
	}
	if !res.Converged {
		t.Fatal("resumed run did not converge")
	}
	// Round stats must cover every round exactly once (0..Rounds).
	for i, rs := range res.RoundStats {
		if rs.Round != i {
			t.Fatalf("stats gap at index %d: round %d", i, rs.Round)
		}
	}
}

// normalizeStat blanks the fields that legitimately differ between two
// equivalent runs: MaxQueue depends on aug_proc consumer scheduling even
// with a single reducer, and the time fields on host load.
func normalizeStat(rs RoundStat) RoundStat {
	rs.MaxQueue = 0
	rs.SimTime = 0
	rs.WallTime = 0
	return rs
}

// TestResumeEquivalence is the checkpoint/resume equivalence check: a
// run interrupted at a mid-round checkpoint and resumed must report the
// same flow value, the same round count, AND identical per-round
// counters as a never-interrupted run — resuming may not replay, skip or
// alter any round. Reducers=1 makes the per-round counters deterministic
// (candidate submission order is fixed with a single reducer).
func TestResumeEquivalence(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(300, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Variant: FF5, Reducers: 1}

	full, err := Run(testCluster(3), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rounds < 4 {
		t.Fatalf("reference run took only %d rounds; pick a harder graph", full.Rounds)
	}

	// Interrupt mid-run at the checkpoint written after round 2, then
	// resume on the same cluster/DFS.
	cluster := testCluster(3)
	interrupted := opts
	interrupted.MaxRounds = 2
	if _, err := Run(cluster, in, interrupted); err == nil {
		t.Fatal("2-round run unexpectedly converged")
	}
	resumeOpts := opts
	resumeOpts.Resume = true
	res, err := Run(cluster, in, resumeOpts)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	if res.MaxFlow != full.MaxFlow {
		t.Errorf("resumed flow %d, uninterrupted %d", res.MaxFlow, full.MaxFlow)
	}
	if res.MaxFlow != dinicValue(t, in) {
		t.Errorf("resumed flow %d disagrees with Dinic %d", res.MaxFlow, dinicValue(t, in))
	}
	if res.Rounds != full.Rounds {
		t.Errorf("resumed rounds %d, uninterrupted %d", res.Rounds, full.Rounds)
	}
	if len(res.RoundStats) != len(full.RoundStats) {
		t.Fatalf("resumed has %d round stats, uninterrupted %d",
			len(res.RoundStats), len(full.RoundStats))
	}
	for i := range full.RoundStats {
		got, want := normalizeStat(res.RoundStats[i]), normalizeStat(full.RoundStats[i])
		if got != want {
			t.Errorf("round %d counters diverge after resume:\n resumed: %+v\n    full: %+v",
				full.RoundStats[i].Round, got, want)
		}
	}
}

func TestResumeAfterConvergenceIsNoOp(t *testing.T) {
	in := pathGraph(4, 1)
	cluster := testCluster(2)
	opts := Options{Variant: FF2, Reducers: 2}
	first, err := Run(cluster, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	second, err := Run(cluster, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.MaxFlow != first.MaxFlow || second.Rounds != first.Rounds {
		t.Fatalf("no-op resume diverged: %+v vs %+v", second, first)
	}
}

func TestResumeRejectsMismatchedOptions(t *testing.T) {
	in := pathGraph(4, 1)
	cluster := testCluster(2)
	if _, err := Run(cluster, in, Options{Variant: FF2, Reducers: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cluster, in, Options{Variant: FF5, Reducers: 2, Resume: true}); err == nil {
		t.Fatal("variant mismatch accepted on resume")
	}
	if _, err := Run(cluster, in, Options{Variant: FF2, Reducers: 3, Resume: true}); err == nil {
		t.Fatal("reducer mismatch accepted on resume")
	}
}

func TestResumeWithoutCheckpointRunsFresh(t *testing.T) {
	in := pathGraph(4, 1)
	res, err := Run(testCluster(2), in, Options{Variant: FF1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != 1 {
		t.Fatalf("flow = %d", res.MaxFlow)
	}
}
