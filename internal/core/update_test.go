package core

import (
	"testing"

	"ffmr/internal/graph"
)

func TestUpdateVertexAppliesDeltas(t *testing.T) {
	v := &graph.VertexValue{
		Eu: []graph.Edge{
			{To: 1, ID: 10, Cap: 5, RevCap: 5, Fwd: true},
			{To: 2, ID: 11, Cap: 5, RevCap: 5, Fwd: false},
		},
		Su: []graph.ExcessPath{{Edges: []graph.PathEdge{
			{ID: 10, From: 9, To: 0, Cap: 5, Fwd: true},
		}}},
	}
	deltas := map[graph.EdgeID]int64{10: 2, 11: 3}
	updateVertex(v, deltas)
	if v.Eu[0].Flow != 2 {
		t.Errorf("forward half flow = %d, want 2", v.Eu[0].Flow)
	}
	if v.Eu[1].Flow != -3 {
		t.Errorf("backward half flow = %d, want -3", v.Eu[1].Flow)
	}
	if v.Su[0].Edges[0].Flow != 2 {
		t.Errorf("path copy flow = %d, want 2", v.Su[0].Edges[0].Flow)
	}
}

func TestUpdateVertexDropsSaturatedPaths(t *testing.T) {
	mkPath := func(id graph.EdgeID) graph.ExcessPath {
		return graph.ExcessPath{Edges: []graph.PathEdge{
			{ID: id, From: 0, To: 1, Cap: 1, Fwd: true},
		}}
	}
	v := &graph.VertexValue{
		Eu: []graph.Edge{{To: 1, ID: 1, Cap: 1, RevCap: 1, Fwd: true}},
		Su: []graph.ExcessPath{mkPath(1), mkPath(2), mkPath(3)},
		Tu: []graph.ExcessPath{mkPath(2)},
	}
	dropped := updateVertex(v, map[graph.EdgeID]int64{2: 1})
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if len(v.Su) != 2 {
		t.Fatalf("Su has %d paths, want 2", len(v.Su))
	}
	for _, p := range v.Su {
		if p.Edges[0].ID == 2 {
			t.Error("saturated path survived")
		}
	}
	if len(v.Tu) != 0 {
		t.Error("saturated sink path survived")
	}
}

func TestUpdateVertexClearsStaleSentFlags(t *testing.T) {
	alive := graph.ExcessPath{Edges: []graph.PathEdge{
		{ID: 1, From: 0, To: 1, Cap: 5, Fwd: true},
	}}
	dying := graph.ExcessPath{Edges: []graph.PathEdge{
		{ID: 2, From: 0, To: 1, Cap: 1, Fwd: true},
	}}
	v := &graph.VertexValue{
		Eu: []graph.Edge{
			{To: 1, ID: 1, Cap: 5, RevCap: 5, Fwd: true},
			{To: 2, ID: 2, Cap: 1, RevCap: 1, Fwd: true},
		},
		Su:    []graph.ExcessPath{alive.Clone(), dying.Clone()},
		SentS: []uint64{alive.Signature(), dying.Signature()},
		SentT: []uint64{0, 0},
	}
	updateVertex(v, map[graph.EdgeID]int64{2: 1}) // saturates "dying"
	if v.SentS[0] != alive.Signature() {
		t.Error("live sent flag cleared")
	}
	if v.SentS[1] != 0 {
		t.Error("stale sent flag not cleared")
	}
}

func vertexForExtension() *graph.VertexValue {
	return &graph.VertexValue{
		Eu: []graph.Edge{
			{To: 2, ID: 20, Cap: 1, RevCap: 1, Fwd: true},
			{To: 3, ID: 21, Cap: 1, RevCap: 1, Fwd: true},
		},
		Su: []graph.ExcessPath{{Edges: []graph.PathEdge{
			{ID: 5, From: 0, To: 1, Cap: 1, Fwd: true},
		}}},
		Tu: []graph.ExcessPath{{Edges: []graph.PathEdge{
			{ID: 6, From: 1, To: 9, Cap: 1, Fwd: true},
		}}},
	}
}

func TestExtendVertexEmitsBothDirections(t *testing.T) {
	v := vertexForExtension()
	var frags []fragment
	cfg := &extendConfig{source: 0, sink: 9}
	extendVertex(1, v, cfg, func(f fragment) { frags = append(frags, f) })
	// Source path extends along both edges; sink path extends along both.
	if len(frags) != 4 {
		t.Fatalf("got %d fragments, want 4", len(frags))
	}
	var srcFrags, snkFrags int
	for _, f := range frags {
		switch {
		case len(f.Value.Su) == 1:
			srcFrags++
			p := f.Value.Su[0]
			if p.Tail() != f.To {
				t.Errorf("source extension tail = %d, fragment to %d", p.Tail(), f.To)
			}
		case len(f.Value.Tu) == 1:
			snkFrags++
			p := f.Value.Tu[0]
			if p.Head() != f.To {
				t.Errorf("sink extension head = %d, fragment to %d", p.Head(), f.To)
			}
		}
	}
	if srcFrags != 2 || snkFrags != 2 {
		t.Errorf("fragments: %d source, %d sink; want 2/2", srcFrags, snkFrags)
	}
}

func TestExtendVertexAvoidsCycles(t *testing.T) {
	v := vertexForExtension()
	// Give the source path a hop through vertex 2; extension to 2 must be
	// suppressed.
	v.Su[0].Edges = append(v.Su[0].Edges, graph.PathEdge{
		ID: 7, From: 2, To: 1, Cap: 1, Fwd: true,
	})
	var frags []fragment
	extendVertex(1, v, &extendConfig{source: 0, sink: 9}, func(f fragment) { frags = append(frags, f) })
	for _, f := range frags {
		if len(f.Value.Su) == 1 && f.To == 2 {
			t.Error("source path extended into a cycle")
		}
	}
}

func TestExtendVertexRespectsResidual(t *testing.T) {
	v := vertexForExtension()
	v.Eu[0].Flow = 1 // saturate edge 20 forward
	var frags []fragment
	extendVertex(1, v, &extendConfig{source: 0, sink: 9}, func(f fragment) { frags = append(frags, f) })
	for _, f := range frags {
		if len(f.Value.Su) == 1 && f.To == 2 {
			t.Error("source path extended over a saturated edge")
		}
	}
	// Sink extension to 2 uses the REVERSE residual (RevCap + Flow = 2),
	// so it must still happen.
	found := false
	for _, f := range frags {
		if len(f.Value.Tu) == 1 && f.To == 2 {
			found = true
		}
	}
	if !found {
		t.Error("sink extension suppressed despite reverse residual")
	}
}

func TestExtendVertexSentTrackingSuppressesResend(t *testing.T) {
	v := vertexForExtension()
	v.SentS = make([]uint64, len(v.Eu))
	v.SentT = make([]uint64, len(v.Eu))
	cfg := &extendConfig{source: 0, sink: 9, sentTracking: true}

	count := func() int {
		n := 0
		extendVertex(1, v, cfg, func(fragment) { n++ })
		return n
	}
	first := count()
	if first != 4 {
		t.Fatalf("first pass emitted %d, want 4", first)
	}
	if v.SentS[0] == 0 || v.SentS[1] == 0 || v.SentT[0] == 0 || v.SentT[1] == 0 {
		t.Fatal("sent flags not recorded")
	}
	// Second pass: everything already outstanding, nothing re-sent (the
	// FF5 claim: no redundant messages in subsequent rounds).
	if second := count(); second != 0 {
		t.Fatalf("second pass emitted %d, want 0", second)
	}
	// After the outstanding paths saturate, sends resume.
	v.Su[0].Edges[0].Flow = 1
	updateVertex(v, nil)
	if len(v.Su) != 0 {
		t.Fatal("saturated source path not dropped")
	}
	if v.SentS[0] != 0 || v.SentS[1] != 0 {
		t.Fatal("sent flags not cleared after saturation")
	}
}

func TestExtendVertexNilEmitOnlyUpdatesBookkeeping(t *testing.T) {
	v := vertexForExtension()
	v.SentS = make([]uint64, len(v.Eu))
	v.SentT = make([]uint64, len(v.Eu))
	cfg := &extendConfig{source: 0, sink: 9, sentTracking: true}
	extendVertex(1, v, cfg, nil) // the schimmy reducer's replay mode
	if v.SentS[0] == 0 || v.SentT[0] == 0 {
		t.Error("replay mode did not update sent flags")
	}
}

func TestGenerateCandidatesPairsAndFilters(t *testing.T) {
	v := &graph.VertexValue{
		Su: []graph.ExcessPath{
			{Edges: []graph.PathEdge{{ID: 1, From: 0, To: 5, Cap: 1, Fwd: true}}},
			{Edges: []graph.PathEdge{{ID: 2, From: 0, To: 5, Cap: 1, Fwd: true}}},
		},
		Tu: []graph.ExcessPath{
			{Edges: []graph.PathEdge{{ID: 3, From: 5, To: 9, Cap: 1, Fwd: true}}},
		},
	}
	var got []graph.ExcessPath
	generateCandidates(v, func(c graph.ExcessPath) { got = append(got, c) })
	// Two pairs both share sink edge 3 (capacity 1): the local
	// accumulator must reject the second.
	if len(got) != 1 {
		t.Fatalf("got %d candidates, want 1", len(got))
	}
	if got[0].Head() != 0 || got[0].Tail() != 9 {
		t.Errorf("candidate endpoints %d->%d", got[0].Head(), got[0].Tail())
	}
}

func TestGenerateCandidatesEmptySides(t *testing.T) {
	var called bool
	generateCandidates(&graph.VertexValue{
		Su: []graph.ExcessPath{{Edges: []graph.PathEdge{{ID: 1, Cap: 1, Fwd: true}}}},
	}, func(graph.ExcessPath) { called = true })
	if called {
		t.Error("candidate generated without sink paths")
	}
}

func TestPickSourceSkipsUnusable(t *testing.T) {
	saturated := graph.ExcessPath{Edges: []graph.PathEdge{
		{ID: 1, From: 0, To: 1, Cap: 1, Flow: 1, Fwd: true},
	}}
	through2 := graph.ExcessPath{Edges: []graph.PathEdge{
		{ID: 2, From: 0, To: 2, Cap: 1, Fwd: true},
		{ID: 3, From: 2, To: 1, Cap: 1, Fwd: true},
	}}
	ok := graph.ExcessPath{Edges: []graph.PathEdge{
		{ID: 4, From: 0, To: 1, Cap: 1, Fwd: true},
	}}
	su := []graph.ExcessPath{saturated, through2, ok}
	got := pickSource(1, su, 2)
	if got == nil {
		t.Fatal("no path picked")
	}
	if got.Edges[0].ID != 4 {
		t.Errorf("picked path with first edge %d, want 4", got.Edges[0].ID)
	}
	if p := pickSource(1, su[:2], 2); p != nil {
		t.Error("picked an unusable path")
	}
}
