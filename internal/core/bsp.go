package core

import (
	"fmt"
	"sync"
	"time"

	"ffmr/internal/graph"
	"ffmr/internal/pregel"
	"ffmr/internal/trace"
)

// This file is the BSP/Pregel translation of the FFMR algorithm, testing
// the paper's closing conjecture that "the ideas presented in this paper
// also translate to Pregel" (Section II-B). The mapping:
//
//	MR round                    -> BSP superstep
//	vertex record <Su, Tu, Eu>  -> vertex value (same codec)
//	vertex fragments (shuffle)  -> messages
//	aug_proc (FF2)              -> MasterCompute over collected candidates
//	AugmentedEdges side file    -> global side data
//	source/sink move counters   -> aggregators
//	schimmy (FF3)               -> unnecessary: vertex state persists
//	                               across supersteps by construction
//	FF5 sent flags              -> unchanged, suppress redundant messages
//
// The structural win Pregel promised is visible directly in the stats:
// the BSP version never moves master records, so its message volume sits
// far below the FF1/FF2 shuffle volume that the schimmy pattern (FF3)
// was invented to work around. It is not strictly below FF5's: message
// delivery lags the send by one superstep, so a BSP run takes a few more
// supersteps than the equivalent MR run takes rounds, and the extra
// steps carry extension traffic.

// bspGlobal is the global side data published by the master each
// superstep: a stop flag plus the round's accepted flow deltas.
func encodeBSPGlobal(stop bool, deltas map[graph.EdgeID]int64) []byte {
	out := make([]byte, 1, 1+8*len(deltas))
	if stop {
		out[0] = 1
	}
	return append(out, EncodeDeltas(deltas)...)
}

func decodeBSPGlobal(data []byte) (stop bool, deltas map[graph.EdgeID]int64, err error) {
	if len(data) == 0 {
		return false, nil, nil
	}
	deltas, err = DecodeDeltas(data[1:])
	return data[0] != 0, deltas, err
}

// bspMaster is the MasterCompute hook: it is the aug_proc of the BSP
// world, accepting candidate augmenting paths sequentially and deciding
// termination from the movement aggregators.
type bspMaster struct {
	mu            sync.Mutex
	maxFlow       int64
	accepted      int64
	quietStreak   int
	bidirectional bool
	perStep       []BSPStepStat
}

// BSPStepStat mirrors RoundStat for the BSP run.
type BSPStepStat struct {
	Superstep  int
	Candidates int64
	Accepted   int64
	FlowDelta  int64
	SourceMove int64
	SinkMove   int64
}

func (m *bspMaster) compute(superstep int, collected [][]byte, aggregates map[string]int64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var acc Accumulator
	var accepted, delta int64
	for _, item := range collected {
		p, err := graph.DecodePath(item)
		if err != nil {
			return nil, fmt.Errorf("core: bsp master: %w", err)
		}
		if d := acc.Accept(&p, graph.CapInf); d > 0 {
			accepted++
			delta += d
		}
	}
	m.maxFlow += delta
	m.accepted += accepted

	som := aggregates["source move"]
	sim := aggregates["sink move"]
	m.perStep = append(m.perStep, BSPStepStat{
		Superstep: superstep, Candidates: int64(len(collected)),
		Accepted: accepted, FlowDelta: delta, SourceMove: som, SinkMove: sim,
	})

	// Termination: the movement-counter rule (strict form), with a
	// two-superstep quiet streak because BSP message delivery lags one
	// superstep behind the send (a freshly sent extension can still
	// create movement after a quiet superstep).
	quiescent := som == 0 || sim == 0
	if !m.bidirectional {
		quiescent = som == 0
	}
	if superstep > 0 && quiescent && accepted == 0 {
		m.quietStreak++
	} else {
		m.quietStreak = 0
	}
	stop := m.quietStreak >= 2
	return encodeBSPGlobal(stop, acc.Deltas()), nil
}

// bspProgram is the per-vertex compute function.
type bspProgram struct {
	source, sink  graph.VertexID
	k             int
	sentTracking  bool
	bidirectional bool
}

// Compute implements pregel.Program. It fuses the MAP and REDUCE of the
// MR formulation: apply global deltas, merge incoming path fragments,
// report movement, submit candidates, extend paths.
func (p *bspProgram) Compute(ctx *pregel.Context, v *pregel.Vertex, messages [][]byte) error {
	stop, deltas, err := decodeBSPGlobal(ctx.Global())
	if err != nil {
		return err
	}
	if stop {
		ctx.VoteToHalt()
		return nil
	}
	val, err := graph.DecodeValue(v.Value)
	if err != nil {
		return err
	}
	updateVertex(val, deltas)

	// Merge incoming fragments exactly as the REDUCE function does.
	sm, tm := len(val.Su), len(val.Tu)
	isSink := v.ID == p.sink
	k := p.k
	if p.sentTracking && len(val.Eu) > 0 {
		k = len(val.Eu)
	}
	var as, at Accumulator
	seenS := make(map[uint64]bool, k)
	seenT := make(map[uint64]bool, k)
	for i := range val.Su {
		seenS[val.Su[i].Signature()] = true
	}
	for i := range val.Tu {
		seenT[val.Tu[i].Signature()] = true
	}

	var frag graph.VertexValue
	for _, mb := range messages {
		frag.Reset()
		if err := graph.DecodeValueInto(mb, &frag); err != nil {
			return err
		}
		// Messages were sent before the last barrier published its flow
		// deltas, so in-flight fragments are one delta set behind the
		// vertex state (unlike MR, where fragments and reducers live in
		// the same round). Bring them current and drop any that the
		// barrier's acceptances saturated — otherwise the sink would
		// accept stale candidates and overshoot the true maximum flow.
		updateVertex(&frag, deltas)
		for i := range frag.Su {
			se := &frag.Su[i]
			if isSink {
				// Arriving source paths at the sink are candidate
				// augmenting paths, submitted to the master collector.
				ctx.Collect(graph.EncodePath(se))
				continue
			}
			sig := se.Signature()
			if seenS[sig] || len(val.Su) >= k {
				continue
			}
			if se.Len() == 0 || as.Accept(se, 1) > 0 {
				seenS[sig] = true
				val.Su = append(val.Su, se.Clone())
			}
		}
		for i := range frag.Tu {
			te := &frag.Tu[i]
			sig := te.Signature()
			if seenT[sig] || len(val.Tu) >= k {
				continue
			}
			if te.Len() == 0 || at.Accept(te, 1) > 0 {
				seenT[sig] = true
				val.Tu = append(val.Tu, te.Clone())
			}
		}
	}

	if sm == 0 && len(val.Su) > 0 {
		ctx.Aggregate("source move", 1)
	}
	if tm == 0 && len(val.Tu) > 0 {
		ctx.Aggregate("sink move", 1)
	}

	// Candidate generation from the post-merge state (FF2 semantics).
	if !isSink {
		generateCandidates(val, func(cand graph.ExcessPath) {
			ctx.Collect(graph.EncodePath(&cand))
		})
	}

	// Extension with FF5 sent-flag suppression.
	extcfg := extendConfig{source: p.source, sink: p.sink, sentTracking: p.sentTracking}
	extendVertex(v.ID, val, &extcfg, func(f fragment) {
		ctx.SendTo(f.To, graph.EncodeValue(&f.Value))
	})

	v.Value = graph.EncodeValue(val)
	return nil
}

// BSPResult reports a BSP max-flow run.
type BSPResult struct {
	MaxFlow    int64
	Supersteps int
	// Messages and MessageBytes are the BSP analogue of the MR version's
	// intermediate records and shuffle bytes.
	Messages     int64
	MessageBytes int64
	Steps        []BSPStepStat
	WallTime     time.Duration
}

// BSPOptions configures RunBSP.
type BSPOptions struct {
	// K is the per-vertex excess-path limit when SentTracking is off
	// (default 4).
	K int
	// DisableSentTracking turns off FF5-style suppression of redundant
	// messages (on by default, as the BSP translation is of FF5).
	DisableSentTracking bool
	// DisableBidirectional turns off sink-side excess paths.
	DisableBidirectional bool
	// Workers is the number of concurrent partitions (default 8).
	Workers int
	// MaxSupersteps bounds the run (default 10000).
	MaxSupersteps int
	// Tracer, if non-nil, records a run span with one child span per
	// superstep (annotated with active-vertex and message-volume counts).
	Tracer *trace.Tracer
}

// RunBSP computes the maximum flow with the Pregel/BSP translation of
// the FFMR algorithm.
func RunBSP(in *graph.Input, opts BSPOptions) (*BSPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opts.K <= 0 {
		opts.K = 4
	}

	// Build vertex values directly (the BSP analogue of round #0).
	adj := make(map[graph.VertexID][]graph.Edge)
	for i, e := range in.Edges {
		revCap := e.Cap
		if e.Directed {
			revCap = 0
		}
		id := graph.EdgeID(i)
		adj[e.U] = append(adj[e.U], graph.Edge{To: e.V, ID: id, Cap: e.Cap, RevCap: revCap, Fwd: true})
		adj[e.V] = append(adj[e.V], graph.Edge{To: e.U, ID: id, Cap: revCap, RevCap: e.Cap, Fwd: false})
	}
	vertices := make([]*pregel.Vertex, 0, len(adj))
	for u, edges := range adj {
		val := &graph.VertexValue{Eu: edges}
		if u == in.Source {
			val.Su = []graph.ExcessPath{{}}
		}
		if u == in.Sink && !opts.DisableBidirectional {
			val.Tu = []graph.ExcessPath{{}}
		}
		if !opts.DisableSentTracking {
			val.SentS = make([]uint64, len(edges))
			val.SentT = make([]uint64, len(edges))
		}
		vertices = append(vertices, &pregel.Vertex{ID: u, Value: graph.EncodeValue(val)})
	}

	master := &bspMaster{bidirectional: !opts.DisableBidirectional}
	runSpan := opts.Tracer.Start(trace.CatRun, "ffmr-bsp", nil)
	runSpan.SetStr("variant", "BSP")
	defer func() {
		runSpan.SetInt("max_flow", master.maxFlow)
		runSpan.End()
	}()
	engine, err := pregel.NewEngine(pregel.Config{
		Workers:       opts.Workers,
		MaxSupersteps: opts.MaxSupersteps,
		Master:        master.compute,
		Tracer:        opts.Tracer,
		TraceParent:   runSpan,
	}, vertices)
	if err != nil {
		return nil, err
	}
	program := &bspProgram{
		source:        in.Source,
		sink:          in.Sink,
		k:             opts.K,
		sentTracking:  !opts.DisableSentTracking,
		bidirectional: !opts.DisableBidirectional,
	}
	stats, err := engine.Run(program)
	if err != nil {
		return nil, err
	}
	return &BSPResult{
		MaxFlow:      master.maxFlow,
		Supersteps:   stats.Supersteps,
		Messages:     stats.Messages,
		MessageBytes: stats.MessageBytes,
		Steps:        master.perStep,
		WallTime:     stats.WallTime,
	}, nil
}
