package core

import (
	"testing"

	"ffmr/internal/graph"
)

// hop builds a forward path edge with the given id, capacity and flow.
func hop(id graph.EdgeID, from, to graph.VertexID, cap, flow int64, fwd bool) graph.PathEdge {
	return graph.PathEdge{ID: id, From: from, To: to, Cap: cap, Flow: flow, Fwd: fwd}
}

func TestAccumulatorAcceptsDisjointPaths(t *testing.T) {
	var a Accumulator
	p1 := graph.ExcessPath{Edges: []graph.PathEdge{hop(1, 0, 1, 1, 0, true), hop(2, 1, 2, 1, 0, true)}}
	p2 := graph.ExcessPath{Edges: []graph.PathEdge{hop(3, 0, 3, 1, 0, true), hop(4, 3, 2, 1, 0, true)}}
	if d := a.Accept(&p1, graph.CapInf); d != 1 {
		t.Fatalf("p1 delta = %d, want 1", d)
	}
	if d := a.Accept(&p2, graph.CapInf); d != 1 {
		t.Fatalf("p2 delta = %d, want 1", d)
	}
}

func TestAccumulatorRejectsConflicts(t *testing.T) {
	var a Accumulator
	shared := hop(9, 1, 2, 1, 0, true)
	p1 := graph.ExcessPath{Edges: []graph.PathEdge{hop(1, 0, 1, 1, 0, true), shared}}
	p2 := graph.ExcessPath{Edges: []graph.PathEdge{hop(2, 0, 1, 1, 0, true), shared}}
	if d := a.Accept(&p1, graph.CapInf); d != 1 {
		t.Fatalf("p1 delta = %d", d)
	}
	if d := a.Accept(&p2, graph.CapInf); d != 0 {
		t.Fatalf("conflicting path accepted with delta %d", d)
	}
}

func TestAccumulatorPartialCapacitySharing(t *testing.T) {
	var a Accumulator
	shared := hop(9, 1, 2, 5, 0, true)
	p1 := graph.ExcessPath{Edges: []graph.PathEdge{hop(1, 0, 1, 3, 0, true), shared}}
	p2 := graph.ExcessPath{Edges: []graph.PathEdge{hop(2, 0, 1, 4, 0, true), shared}}
	if d := a.Accept(&p1, graph.CapInf); d != 3 {
		t.Fatalf("p1 delta = %d, want 3", d)
	}
	// 2 units of capacity remain on the shared edge.
	if d := a.Accept(&p2, graph.CapInf); d != 2 {
		t.Fatalf("p2 delta = %d, want 2", d)
	}
	if d := a.Accept(&p2, graph.CapInf); d != 0 {
		t.Fatalf("exhausted edge accepted with delta %d", d)
	}
}

func TestAccumulatorBottleneckComputation(t *testing.T) {
	var a Accumulator
	p := graph.ExcessPath{Edges: []graph.PathEdge{
		hop(1, 0, 1, 10, 0, true),
		hop(2, 1, 2, 4, 1, true), // residual 3: the bottleneck
		hop(3, 2, 3, 10, 0, true),
	}}
	if d := a.Feasible(&p); d != 3 {
		t.Fatalf("Feasible = %d, want 3", d)
	}
	if d := a.Accept(&p, graph.CapInf); d != 3 {
		t.Fatalf("Accept = %d, want 3", d)
	}
}

func TestAccumulatorLimit(t *testing.T) {
	var a Accumulator
	p := graph.ExcessPath{Edges: []graph.PathEdge{hop(1, 0, 1, 10, 0, true)}}
	if d := a.Accept(&p, 1); d != 1 {
		t.Fatalf("limited accept = %d, want 1", d)
	}
	// 9 units remain.
	if d := a.Accept(&p, graph.CapInf); d != 9 {
		t.Fatalf("second accept = %d, want 9", d)
	}
}

func TestAccumulatorOppositeDirectionsNetOut(t *testing.T) {
	// Using an edge backward frees capacity for a forward use: pushing
	// against granted flow cancels (residual-graph semantics).
	var a Accumulator
	fwd := graph.ExcessPath{Edges: []graph.PathEdge{hop(1, 0, 1, 1, 0, true)}}
	if d := a.Accept(&fwd, graph.CapInf); d != 1 {
		t.Fatalf("forward accept = %d", d)
	}
	// The edge is saturated forward by the grant, but a backward
	// traversal has residual 2: the original reverse capacity 1 plus the
	// 1 unit of granted forward flow it can cancel.
	bwd := graph.ExcessPath{Edges: []graph.PathEdge{hop(1, 1, 0, 1, 0, false)}}
	if d := a.Accept(&bwd, graph.CapInf); d != 2 {
		t.Fatalf("backward (cancelling) accept = %d, want 2", d)
	}
}

func TestAccumulatorNonSimplePathBothDirections(t *testing.T) {
	// A single walk that uses edge 5 forward and later backward nets to
	// zero on that edge; the walk's bottleneck comes from other hops.
	var a Accumulator
	p := graph.ExcessPath{Edges: []graph.PathEdge{
		hop(1, 0, 1, 2, 0, true),
		hop(5, 1, 2, 1, 1, true),  // saturated forward!
		hop(2, 2, 1, 2, 0, true),  // detour
		hop(5, 1, 2, 1, 1, false), // wait: this is 2->1 backward
		hop(3, 2, 3, 2, 0, true),
	}}
	// The forward hop of edge 5 has residual 0, but net use of edge 5 in
	// this walk is 0, so the walk is feasible with delta 2... except the
	// saturated hop has m = sign*net = 0, so it imposes no constraint.
	if d := a.Feasible(&p); d != 2 {
		t.Fatalf("net-zero edge constrained the walk: delta = %d, want 2", d)
	}
}

func TestAccumulatorRejectsEmptyPath(t *testing.T) {
	var a Accumulator
	var p graph.ExcessPath
	if d := a.Accept(&p, graph.CapInf); d != 0 {
		t.Fatalf("empty path accepted with delta %d", d)
	}
}

func TestAccumulatorStaleFlowRejected(t *testing.T) {
	// A path recorded when the edge still had residual must be rejected
	// if the path's own (updated) flow values show saturation.
	var a Accumulator
	p := graph.ExcessPath{Edges: []graph.PathEdge{hop(1, 0, 1, 3, 3, true)}}
	if d := a.Accept(&p, graph.CapInf); d != 0 {
		t.Fatalf("saturated path accepted with delta %d", d)
	}
}

func TestAccumulatorDeltasAndReset(t *testing.T) {
	var a Accumulator
	p := graph.ExcessPath{Edges: []graph.PathEdge{
		hop(1, 0, 1, 5, 0, true),
		hop(2, 1, 2, 5, 0, false), // backward traversal: canonical -delta
	}}
	if d := a.Accept(&p, graph.CapInf); d != 5 {
		t.Fatalf("accept = %d", d)
	}
	deltas := a.Deltas()
	if deltas[1] != 5 || deltas[2] != -5 {
		t.Fatalf("deltas = %v", deltas)
	}
	a.Reset()
	if a.Len() != 0 {
		t.Error("Reset left grants behind")
	}
}

func TestEncodeDecodeDeltas(t *testing.T) {
	in := map[graph.EdgeID]int64{3: 7, 1: -2, 100000: 1}
	out, err := DecodeDeltas(EncodeDeltas(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d deltas", len(out))
	}
	for id, d := range in {
		if out[id] != d {
			t.Errorf("delta[%d] = %d, want %d", id, out[id], d)
		}
	}
	// Empty table round trips to empty.
	if out, err := DecodeDeltas(EncodeDeltas(nil)); err != nil || len(out) != 0 {
		t.Errorf("empty table: %v %v", out, err)
	}
	// Deterministic encoding regardless of map order.
	a := EncodeDeltas(in)
	b := EncodeDeltas(in)
	if string(a) != string(b) {
		t.Error("delta encoding nondeterministic")
	}
	if _, err := DecodeDeltas([]byte{0x80}); err == nil {
		t.Error("corrupt delta file accepted")
	}
}

func TestEncodeDeltasSkipsZero(t *testing.T) {
	var a Accumulator
	p := graph.ExcessPath{Edges: []graph.PathEdge{hop(1, 0, 1, 5, 0, true)}}
	a.Accept(&p, graph.CapInf)
	q := graph.ExcessPath{Edges: []graph.PathEdge{hop(1, 1, 0, 5, -5, false)}}
	a.Accept(&q, 5)
	// Edge 1's grants cancel; Deltas must omit it.
	if d := a.Deltas(); len(d) != 0 {
		t.Errorf("cancelled grants survive: %v", d)
	}
}
