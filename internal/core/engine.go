package core

import (
	"fmt"
	"sort"
	"sync"

	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
)

// This file is the solver-portfolio seam: Options.Engine names a solver,
// and Run dispatches non-FFMR names through a registry that alternative
// engines (internal/prflow's synchronous parallel push-relabel,
// internal/portfolio's probing auto driver) populate from their package
// init functions. core itself never imports an engine package — the
// dependency points the other way — so the registry is how a solver
// plugs into every existing entry point (cmd/ffmr, the service, dynamic
// snapshots) without core knowing it exists.

// EngineFunc is an alternative solver with the same contract as Run: it
// computes the maximum flow of in on the given cluster and leaves the
// final residual state persisted in the cluster's DFS exactly as the
// FFMR driver would (see WriteEngineState). opts arrives with defaults
// applied and validated.
type EngineFunc func(cluster *mapreduce.Cluster, in *graph.Input, opts Options) (*Result, error)

var (
	engineMu sync.RWMutex
	engines  = map[string]EngineFunc{}
)

// RegisterEngine makes fn available as Options.Engine = name. The names
// "" and "ffmr" are reserved for the built-in driver. Registering a name
// twice panics: engines register from init functions, so a duplicate is
// a programming error, not a runtime condition.
func RegisterEngine(name string, fn EngineFunc) {
	if name == "" || name == "ffmr" {
		panic(fmt.Sprintf("core: engine name %q is reserved", name))
	}
	if fn == nil {
		panic("core: RegisterEngine with nil EngineFunc")
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engines[name]; dup {
		panic(fmt.Sprintf("core: engine %q registered twice", name))
	}
	engines[name] = fn
}

// EngineNames returns the registered engine names plus the built-in
// "ffmr", sorted — the values Options.Engine accepts in this process.
func EngineNames() []string {
	engineMu.RLock()
	names := make([]string, 0, len(engines)+1)
	for n := range engines {
		names = append(names, n)
	}
	engineMu.RUnlock()
	names = append(names, "ffmr")
	sort.Strings(names)
	return names
}

func lookupEngine(name string) EngineFunc {
	engineMu.RLock()
	defer engineMu.RUnlock()
	return engines[name]
}

// dispatchEngine routes Run to a registered engine when Options.Engine
// names one. The bool reports whether the call was handled.
func dispatchEngine(cluster *mapreduce.Cluster, in *graph.Input, opts Options) (*Result, bool, error) {
	if opts.Engine == "" || opts.Engine == "ffmr" {
		return nil, false, nil
	}
	fn := lookupEngine(opts.Engine)
	if fn == nil {
		return nil, true, fmt.Errorf("core: unknown engine %q (registered: %v; import ffmr/internal/portfolio to register prflow and auto)",
			opts.Engine, EngineNames())
	}
	if opts.Resume {
		return nil, true, fmt.Errorf("core: engine %q does not support Resume", opts.Engine)
	}
	res, err := fn(cluster, in, opts)
	return res, true, err
}
