package core

import (
	"testing"

	"ffmr/internal/graph"
	"ffmr/internal/leakcheck"
	"ffmr/internal/trace"
)

// TestAugProcShutdownLeavesNoGoroutines verifies that closing the
// aug_proc server stops its consumer and accept-loop goroutines even
// after live client traffic.
func TestAugProcShutdownLeavesNoGoroutines(t *testing.T) {
	defer leakcheck.Check(t)()
	srv, err := NewAugProcServer()
	if err != nil {
		t.Fatalf("NewAugProcServer: %v", err)
	}
	srv.SetTracer(trace.New())
	srv.BeginRound(0)
	client, err := DialAugProc(srv.Addr())
	if err != nil {
		t.Fatalf("DialAugProc: %v", err)
	}
	paths := []graph.ExcessPath{
		{Edges: []graph.PathEdge{{ID: 1, From: 0, To: 1, Flow: 1, Cap: 2, Fwd: true}}},
	}
	for i := 0; i < 10; i++ {
		if err := client.Submit(0, 0, 0, paths); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	st, _ := srv.EndRound()
	if st.Submitted != 10 {
		t.Fatalf("submitted = %d, want 10", st.Submitted)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
}

// TestDriverRunLeavesNoGoroutines runs a full traced FF2 computation
// (which starts and stops an aug_proc server, reducer RPC clients and
// the task worker pool) and asserts everything winds down.
func TestDriverRunLeavesNoGoroutines(t *testing.T) {
	defer leakcheck.Check(t)()
	cluster := testCluster(3)
	in := pathGraph(4, 2)
	res, err := Run(cluster, in, Options{Variant: FF2, Tracer: trace.New()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MaxFlow != 2 {
		t.Fatalf("max flow = %d, want 2", res.MaxFlow)
	}
}
