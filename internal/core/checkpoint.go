package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"ffmr/internal/dfs"
)

// Multi-round MR chains at the paper's scale run for hours; a failure in
// round 7 of 9 should not force recomputation from round 0. The driver
// therefore checkpoints its state to the DFS after every round: the last
// completed round, the flow accumulated so far, and the per-round
// statistics. Run with Options.Resume picks up from the checkpoint,
// reusing the retained round outputs and AugmentedEdges file.

const checkpointVersion = 1

type checkpoint struct {
	Variant   Variant
	Reducers  int
	Round     int // last completed round
	MaxFlow   int64
	Converged bool
	Stats     []RoundStat
}

func checkpointName(prefix string) string { return prefix + "checkpoint" }

func encodeCheckpoint(cp *checkpoint) []byte {
	buf := binary.AppendUvarint(nil, checkpointVersion)
	buf = binary.AppendVarint(buf, int64(cp.Variant))
	buf = binary.AppendVarint(buf, int64(cp.Reducers))
	buf = binary.AppendVarint(buf, int64(cp.Round))
	buf = binary.AppendVarint(buf, cp.MaxFlow)
	if cp.Converged {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(cp.Stats)))
	for _, s := range cp.Stats {
		for _, v := range []int64{
			int64(s.Round), s.APaths, s.Submitted, s.MaxQueue, s.FlowDelta,
			s.SourceMove, s.SinkMove, s.ActiveVertices, s.MapOutRecords,
			s.MapOutBytes, s.ShuffleBytes, s.MaxRecordBytes, s.MaxGroupBytes,
			s.OutputBytes, int64(s.SimTime), int64(s.WallTime),
		} {
			buf = binary.AppendVarint(buf, v)
		}
	}
	return buf
}

type cpDecoder struct {
	b   []byte
	off int
	err error
}

func (d *cpDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("core: truncated checkpoint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *cpDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("core: truncated checkpoint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *cpDecoder) boolByte() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.err = fmt.Errorf("core: truncated checkpoint at offset %d", d.off)
		return false
	}
	v := d.b[d.off] != 0
	d.off++
	return v
}

func decodeCheckpoint(data []byte) (*checkpoint, error) {
	d := cpDecoder{b: data}
	if v := d.uvarint(); d.err == nil && v != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", v, checkpointVersion)
	}
	cp := &checkpoint{
		Variant:  Variant(d.varint()),
		Reducers: int(d.varint()),
		Round:    int(d.varint()),
		MaxFlow:  d.varint(),
	}
	cp.Converged = d.boolByte()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(data)) {
		return nil, fmt.Errorf("core: implausible checkpoint stat count %d", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		var s RoundStat
		s.Round = int(d.varint())
		s.APaths = d.varint()
		s.Submitted = d.varint()
		s.MaxQueue = d.varint()
		s.FlowDelta = d.varint()
		s.SourceMove = d.varint()
		s.SinkMove = d.varint()
		s.ActiveVertices = d.varint()
		s.MapOutRecords = d.varint()
		s.MapOutBytes = d.varint()
		s.ShuffleBytes = d.varint()
		s.MaxRecordBytes = d.varint()
		s.MaxGroupBytes = d.varint()
		s.OutputBytes = d.varint()
		s.SimTime = time.Duration(d.varint())
		s.WallTime = time.Duration(d.varint())
		cp.Stats = append(cp.Stats, s)
	}
	if d.err != nil {
		return nil, d.err
	}
	return cp, nil
}

func writeCheckpoint(fs *dfs.FS, prefix string, cp *checkpoint) error {
	return fs.WriteFile(checkpointName(prefix), encodeCheckpoint(cp))
}

func readCheckpoint(fs *dfs.FS, prefix string) (*checkpoint, error) {
	data, err := fs.ReadFile(checkpointName(prefix))
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(data)
}
