package core

import (
	"fmt"

	"ffmr/internal/dfs"
	"ffmr/internal/graph"
)

// This file validates a finished run's final residual network against
// the flow-network axioms of Section II-A: capacity constraint, skew
// symmetry, and flow conservation. Validation reads the last round's
// vertex records from the DFS (requires Options.KeepIntermediate) and is
// used by the test suite as a whole-system invariant check; it is not on
// the data path.

// Validate checks the final residual network of a completed run.
//
// It verifies, for every vertex record:
//   - capacity constraint: flow <= capacity on every half-edge;
//   - skew symmetry: the two halves of every edge carry opposite flows;
//   - flow conservation: net flow out of every vertex other than the
//     source and sink is zero;
//   - flow value: net flow out of the source equals res.MaxFlow (only
//     when the run terminated strictly, so no accepted deltas are left
//     unapplied).
func Validate(fs *dfs.FS, in *graph.Input, opts Options, res *Result) error {
	opts.applyDefaults(1)
	prefix := roundPrefix(opts.PathPrefix, res.Rounds)
	verts, err := ReadVertices(fs, prefix)
	if err != nil {
		return fmt.Errorf("core: validate: %w", err)
	}
	if len(verts) == 0 {
		return fmt.Errorf("core: validate: no vertex records under %q (run with KeepIntermediate)", prefix)
	}

	// The final round's records predate the application of that round's
	// accepted deltas. Under strict termination the final round accepts
	// nothing, so the records are the fixed point; still apply the
	// outstanding delta file defensively if it exists.
	deltaFile := deltaName(opts.PathPrefix, res.Rounds+1)
	if fs.Exists(deltaFile) {
		data, err := fs.ReadFile(deltaFile)
		if err != nil {
			return err
		}
		deltas, err := DecodeDeltas(data)
		if err != nil {
			return err
		}
		for _, v := range verts {
			updateVertex(v, deltas)
		}
	}

	type halfSeen struct {
		flow int64
		n    int
	}
	edges := make(map[graph.EdgeID]halfSeen)
	netOut := make(map[graph.VertexID]int64, len(verts))

	for u, v := range verts {
		for i := range v.Eu {
			e := &v.Eu[i]
			if e.Flow > e.Cap {
				return fmt.Errorf("core: validate: vertex %d edge %d violates capacity: flow %d > cap %d",
					u, e.ID, e.Flow, e.Cap)
			}
			canonical := e.Flow
			if !e.Fwd {
				canonical = -canonical
			}
			hs := edges[e.ID]
			if hs.n == 1 && hs.flow != canonical {
				return fmt.Errorf("core: validate: edge %d violates skew symmetry: %d vs %d",
					e.ID, hs.flow, canonical)
			}
			hs.flow = canonical
			hs.n++
			edges[e.ID] = hs
			netOut[u] += e.Flow
		}
	}
	for id, hs := range edges {
		if hs.n != 2 {
			return fmt.Errorf("core: validate: edge %d has %d halves", id, hs.n)
		}
	}
	for u, out := range netOut {
		if u == in.Source || u == in.Sink {
			continue
		}
		if out != 0 {
			return fmt.Errorf("core: validate: vertex %d violates conservation by %d", u, out)
		}
	}
	if res.Converged && netOut[in.Source] != res.MaxFlow {
		return fmt.Errorf("core: validate: source net flow %d != reported max flow %d",
			netOut[in.Source], res.MaxFlow)
	}
	if res.Converged && netOut[in.Sink] != -res.MaxFlow {
		return fmt.Errorf("core: validate: sink net flow %d != -max flow %d",
			netOut[in.Sink], res.MaxFlow)
	}
	return nil
}

// CheckAssignment verifies that flows is a feasible s-t flow of the
// given value on in: flows[i] is the flow on in.Edges[i] in canonical
// (U -> V) orientation, negative for reverse flow on an undirected edge.
// It checks the same axioms as Validate — capacity in both directions,
// conservation at every vertex except source and sink, and net source
// outflow (and sink inflow) equal to value — but against an in-memory
// assignment instead of persisted records. Alternative engines and the
// prep reduction use it as their proof-carrying check: a flow that
// passes is feasible, and one whose value matches a known maximum is
// itself maximum.
func CheckAssignment(in *graph.Input, flows []int64, value int64) error {
	if len(flows) != len(in.Edges) {
		return fmt.Errorf("core: check: %d flows for %d edges", len(flows), len(in.Edges))
	}
	net := make(map[graph.VertexID]int64)
	for i := range in.Edges {
		e := &in.Edges[i]
		f := flows[i]
		rev := e.Cap
		if e.Directed {
			rev = 0
		}
		if f > e.Cap {
			return fmt.Errorf("core: check: edge %d flow %d exceeds capacity %d", i, f, e.Cap)
		}
		if -f > rev {
			return fmt.Errorf("core: check: edge %d reverse flow %d exceeds reverse capacity %d", i, -f, rev)
		}
		net[e.U] += f
		net[e.V] -= f
	}
	for u, out := range net {
		if u == in.Source || u == in.Sink {
			continue
		}
		if out != 0 {
			return fmt.Errorf("core: check: vertex %d violates conservation by %d", u, out)
		}
	}
	if net[in.Source] != value {
		return fmt.Errorf("core: check: source net flow %d != claimed value %d", net[in.Source], value)
	}
	if net[in.Sink] != -value {
		return fmt.Errorf("core: check: sink net flow %d != -value %d", net[in.Sink], value)
	}
	return nil
}
