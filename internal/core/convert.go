package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
)

// This file implements round #0 of the paper's driver: "we use the first
// round of MR to convert the input graph into our graph data structure,
// make the edges bi-directional and initialize the flow and capacity of
// each edge" (Section III-A). The raw input is an edge list stored in
// the DFS; round #0 is an ordinary MapReduce job whose mappers emit a
// half-edge to each endpoint and whose reducers assemble adjacency lists
// and seed the source and sink excess paths.

// encodeInputEdge serializes one raw edge-list record value.
func encodeInputEdge(dst []byte, e *graph.InputEdge) []byte {
	dst = binary.AppendUvarint(dst, uint64(e.U))
	dst = binary.AppendUvarint(dst, uint64(e.V))
	dst = binary.AppendVarint(dst, e.Cap)
	if e.Directed {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

func decodeInputEdge(data []byte) (graph.InputEdge, error) {
	var e graph.InputEdge
	off := 0
	u, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return e, fmt.Errorf("core: corrupt input edge")
	}
	off += n
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return e, fmt.Errorf("core: corrupt input edge")
	}
	off += n
	c, n := binary.Varint(data[off:])
	if n <= 0 {
		return e, fmt.Errorf("core: corrupt input edge")
	}
	off += n
	if off >= len(data) {
		return e, fmt.Errorf("core: corrupt input edge")
	}
	e.U, e.V, e.Cap, e.Directed = graph.VertexID(u), graph.VertexID(v), c, data[off] != 0
	return e, nil
}

// WriteInput stores a raw edge list in the DFS as numbered chunk files
// under prefix+"input/", returning the file names. The edge index within
// the whole list is the record key and becomes the edge's EdgeID, so IDs
// are stable regardless of chunking.
func WriteInput(fs *dfs.FS, prefix string, in *graph.Input, chunks int) ([]string, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks > len(in.Edges) && len(in.Edges) > 0 {
		chunks = len(in.Edges)
	}
	per := (len(in.Edges) + chunks - 1) / chunks
	var names []string
	var buf []byte
	for c := 0; c < chunks; c++ {
		lo, hi := c*per, (c+1)*per
		if lo >= len(in.Edges) && c > 0 {
			break
		}
		if hi > len(in.Edges) {
			hi = len(in.Edges)
		}
		var w dfs.RecordWriter
		for i := lo; i < hi; i++ {
			var key [4]byte
			binary.BigEndian.PutUint32(key[:], uint32(i))
			buf = encodeInputEdge(buf[:0], &in.Edges[i])
			w.Append(key[:], buf)
		}
		name := fmt.Sprintf("%sinput/edges-%05d", prefix, c)
		if err := fs.WriteFile(name, w.Bytes()); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// convertMapper emits, for each raw edge record, one half-edge fragment
// to each endpoint. The record key (the edge's position in the input
// list) becomes the EdgeID and the U->V orientation is canonical.
type convertMapper struct{}

func (convertMapper) Map(ctx *mapreduce.TaskContext, key, value []byte) error {
	idx, err := graph.DecodeKey(key)
	if err != nil {
		return err
	}
	e, err := decodeInputEdge(value)
	if err != nil {
		return err
	}
	revCap := e.Cap
	if e.Directed {
		revCap = 0
	}
	id := graph.EdgeID(idx)

	frag := graph.VertexValue{Eu: []graph.Edge{{
		To: e.V, ID: id, Cap: e.Cap, RevCap: revCap, Fwd: true,
	}}}
	ctx.Emit(graph.KeyBytes(e.U), graph.EncodeValue(&frag))

	frag.Eu[0] = graph.Edge{To: e.U, ID: id, Cap: revCap, RevCap: e.Cap, Fwd: false}
	ctx.Emit(graph.KeyBytes(e.V), graph.EncodeValue(&frag))
	return nil
}

// convertReducer assembles each vertex's adjacency list and seeds the
// excess paths: the source starts with one (empty) source excess path and
// the sink with one (empty) sink excess path, the starting points of the
// bi-directional search.
type convertReducer struct {
	source, sink  graph.VertexID
	bidirectional bool
	sentTracking  bool
}

func (r *convertReducer) Reduce(ctx *mapreduce.TaskContext, key, master []byte, values *mapreduce.Values) error {
	u, err := graph.DecodeKey(key)
	if err != nil {
		return err
	}
	var out graph.VertexValue
	var frag graph.VertexValue
	for {
		vb := values.Next()
		if vb == nil {
			break
		}
		frag.Reset()
		if err := graph.DecodeValueInto(vb, &frag); err != nil {
			return err
		}
		out.Eu = append(out.Eu, frag.Eu...)
	}
	sort.Slice(out.Eu, func(i, j int) bool {
		if out.Eu[i].To != out.Eu[j].To {
			return out.Eu[i].To < out.Eu[j].To
		}
		return out.Eu[i].ID < out.Eu[j].ID
	})
	if u == r.source {
		out.Su = []graph.ExcessPath{{}}
	}
	if u == r.sink && r.bidirectional {
		out.Tu = []graph.ExcessPath{{}}
	}
	if r.sentTracking {
		out.SentS = make([]uint64, len(out.Eu))
		out.SentT = make([]uint64, len(out.Eu))
	}
	ctx.Inc("vertices", 1)
	ctx.Inc("half edges", int64(len(out.Eu)))
	ctx.Emit(key, graph.EncodeValue(&out))
	return nil
}
