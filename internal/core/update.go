package core

import (
	"ffmr/internal/graph"
)

// This file holds the algorithmic heart of the MAP function (Fig. 3) as
// pure functions over a vertex value, shared between the mapper and — in
// schimmy mode — the reducer, which must recompute the master vertex's
// post-update state because the mapper no longer ships it through the
// shuffle. All functions are deterministic in (value, deltas), which is
// what makes that recomputation sound.

// updateVertex applies the previous round's AugmentedEdges deltas to
// every edge held by the vertex (adjacency plus every hop of every
// stored excess path, MAP lines 1-3), then removes saturated excess
// paths (line 4) and clears FF5 sent flags whose recorded path no longer
// exists. It returns the number of paths dropped.
func updateVertex(v *graph.VertexValue, deltas map[graph.EdgeID]int64) int {
	if len(deltas) > 0 {
		for i := range v.Eu {
			if d, ok := deltas[v.Eu[i].ID]; ok {
				v.Eu[i].ApplyDelta(d)
			}
		}
		for _, paths := range [][]graph.ExcessPath{v.Su, v.Tu} {
			for pi := range paths {
				for ei := range paths[pi].Edges {
					pe := &paths[pi].Edges[ei]
					if d, ok := deltas[pe.ID]; ok {
						pe.ApplyDelta(d)
					}
				}
			}
		}
	}

	dropped := 0
	v.Su, dropped = removeSaturated(v.Su, dropped)
	v.Tu, dropped = removeSaturated(v.Tu, dropped)

	// FF5 bookkeeping: a sent flag names a stored path by signature; once
	// that path is gone the extension it backed is dead, so the slot
	// reopens and the path can be replaced next extension pass.
	if len(v.SentS) > 0 {
		clearStaleSent(v.SentS, v.Su)
	}
	if len(v.SentT) > 0 {
		clearStaleSent(v.SentT, v.Tu)
	}
	return dropped
}

func removeSaturated(paths []graph.ExcessPath, dropped int) ([]graph.ExcessPath, int) {
	// Compact by swapping, not copying: the slice's backing array is
	// reused across decoded records (FF4), so every slot must keep
	// exclusive ownership of its Edges array. A copying compaction would
	// leave two slots aliasing one array and a later in-place decode
	// would corrupt a neighbouring path.
	k := 0
	for i := range paths {
		if paths[i].Saturated() {
			dropped++
			continue
		}
		if i != k {
			paths[k], paths[i] = paths[i], paths[k]
		}
		k++
	}
	return paths[:k], dropped
}

func clearStaleSent(sent []uint64, live []graph.ExcessPath) {
	for i, sig := range sent {
		if sig == 0 {
			continue
		}
		found := false
		for pi := range live {
			if live[pi].Signature() == sig {
				found = true
				break
			}
		}
		if !found {
			sent[i] = 0
		}
	}
}

// extendConfig carries the knobs extension depends on.
type extendConfig struct {
	source       graph.VertexID
	sink         graph.VertexID
	sentTracking bool // FF5
}

// fragment is one intermediate record produced by extension: a vertex
// fragment destined for vertex To.
type fragment struct {
	To    graph.VertexID
	Value graph.VertexValue
}

// pickSource returns the first stored source excess path that can be
// extended to vertex to without forming a cycle, per MAP line 11, or
// nil. u is the owning vertex.
func pickSource(u graph.VertexID, su []graph.ExcessPath, to graph.VertexID) *graph.ExcessPath {
	for i := range su {
		p := &su[i]
		if to == u || p.Contains(to) {
			continue
		}
		if p.Saturated() {
			continue
		}
		return p
	}
	return nil
}

// pickSink is the sink-side analogue of pickSource.
func pickSink(u graph.VertexID, tu []graph.ExcessPath, to graph.VertexID) *graph.ExcessPath {
	for i := range tu {
		p := &tu[i]
		if to == u || p.Contains(to) {
			continue
		}
		if p.Saturated() {
			continue
		}
		return p
	}
	return nil
}

// extendVertex computes the excess-path extensions a vertex performs this
// round (MAP lines 9-16): for every edge with forward residual capacity,
// one stored source excess path is extended to the neighbour; for every
// edge with reverse residual capacity, one sink excess path is extended.
// With FF5 sent-tracking it consults and updates the SentS/SentT arrays
// to suppress re-sends of extensions that are still outstanding (paper
// Section IV-D). The updated sent arrays live in v; emitted fragments go
// through emit (pass nil to compute only the bookkeeping, which is what
// the schimmy reducer does).
func extendVertex(u graph.VertexID, v *graph.VertexValue, cfg *extendConfig, emit func(fragment)) {
	if len(v.Su) > 0 {
		for i := range v.Eu {
			e := &v.Eu[i]
			if e.Residual() <= 0 {
				continue
			}
			if cfg.sentTracking && i < len(v.SentS) && v.SentS[i] != 0 {
				continue // an extension along this edge is still live
			}
			se := pickSource(u, v.Su, e.To)
			if se == nil {
				continue
			}
			if cfg.sentTracking && i < len(v.SentS) {
				v.SentS[i] = se.Signature()
			}
			if emit != nil {
				emit(fragment{To: e.To, Value: graph.VertexValue{
					Su: []graph.ExcessPath{se.ExtendSource(u, e)},
				}})
			}
		}
	}
	if len(v.Tu) > 0 {
		for i := range v.Eu {
			e := &v.Eu[i]
			if e.RevResidual() <= 0 {
				continue
			}
			if cfg.sentTracking && i < len(v.SentT) && v.SentT[i] != 0 {
				continue
			}
			te := pickSink(u, v.Tu, e.To)
			if te == nil {
				continue
			}
			if cfg.sentTracking && i < len(v.SentT) {
				v.SentT[i] = te.Signature()
			}
			if emit != nil {
				emit(fragment{To: e.To, Value: graph.VertexValue{
					Tu: []graph.ExcessPath{te.ExtendSink(u, e)},
				}})
			}
		}
	}
}

// generateCandidates concatenates every stored (source, sink) excess-path
// pair into candidate augmenting paths (MAP lines 5-8 in FF1; moved into
// the REDUCE function from FF2 on). A local accumulator filters
// candidates that already conflict from this vertex's local view; the
// final acceptance decision is made by the sink reducer (FF1) or
// aug_proc (FF2+).
func generateCandidates(v *graph.VertexValue, accept func(graph.ExcessPath)) {
	if len(v.Su) == 0 || len(v.Tu) == 0 {
		return
	}
	var local Accumulator
	for si := range v.Su {
		for ti := range v.Tu {
			cand := graph.Concat(&v.Su[si], &v.Tu[ti])
			if len(cand.Edges) == 0 {
				continue // both seeds empty: s adjacent to nothing, degenerate
			}
			if local.Accept(&cand, graph.CapInf) > 0 {
				accept(cand)
			}
		}
	}
}
