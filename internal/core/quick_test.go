package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/maxflow"
)

// randomInput builds a small random graph with random capacities and
// endpoints, suitable for quick properties.
func randomInput(rng *rand.Rand) *graph.Input {
	n := 6 + rng.Intn(14)
	m := n + rng.Intn(2*n)
	in, err := graphgen.ErdosRenyi(n, m, rng.Int63())
	if err != nil || len(in.Edges) == 0 {
		// Fall back to a path so the property function always has a
		// valid graph to check.
		return pathGraph(3, 1+rng.Int63n(5))
	}
	if rng.Intn(2) == 0 {
		graphgen.RandomCapacities(in, 1+rng.Int63n(8), rng.Int63())
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	return in
}

// TestQuickFFMREqualsDinic is the headline property: for arbitrary
// graphs, the distributed algorithm computes exactly the sequential
// oracle's max-flow value. One randomly chosen variant per case keeps
// the run fast while covering all five over the test corpus.
func TestQuickFFMREqualsDinic(t *testing.T) {
	if testing.Short() {
		t.Skip("quick property is slow")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		net, err := maxflow.FromInput(in)
		if err != nil {
			return false
		}
		want := maxflow.Dinic(net, int(in.Source), int(in.Sink))
		variant := allVariants()[rng.Intn(len(allVariants()))]
		res, err := Run(testCluster(2), in, Options{Variant: variant})
		if err != nil {
			t.Logf("seed %d variant %s: %v", seed, variant, err)
			return false
		}
		if res.MaxFlow != want {
			t.Logf("seed %d variant %s: got %d want %d", seed, variant, res.MaxFlow, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBSPEqualsDinic is the same property for the BSP translation.
func TestQuickBSPEqualsDinic(t *testing.T) {
	if testing.Short() {
		t.Skip("quick property is slow")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		net, err := maxflow.FromInput(in)
		if err != nil {
			return false
		}
		want := maxflow.Dinic(net, int(in.Source), int(in.Sink))
		res, err := RunBSP(in, BSPOptions{Workers: 1 + rng.Intn(8)})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.MaxFlow != want {
			t.Logf("seed %d: got %d want %d", seed, res.MaxFlow, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAccumulatorNeverOversubscribes: whatever mix of random paths
// is offered, the per-edge net grant stays within the edge's capacity in
// each direction.
func TestQuickAccumulatorNeverOversubscribes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const numEdges = 10
		capsFwd := make([]int64, numEdges)
		capsBwd := make([]int64, numEdges)
		flows := make([]int64, numEdges)
		for i := range capsFwd {
			capsFwd[i] = rng.Int63n(6)
			capsBwd[i] = rng.Int63n(6)
			// A consistent starting flow inside the envelope.
			if span := capsFwd[i] + capsBwd[i]; span > 0 {
				flows[i] = rng.Int63n(span+1) - capsBwd[i]
			}
		}
		var acc Accumulator
		for trial := 0; trial < 30; trial++ {
			// Build a random walk of 1-4 hops over the edge set.
			var p graph.ExcessPath
			hops := 1 + rng.Intn(4)
			for h := 0; h < hops; h++ {
				ei := rng.Intn(numEdges)
				fwd := rng.Intn(2) == 0
				pe := graph.PathEdge{
					ID:   graph.EdgeID(ei),
					From: graph.VertexID(h), To: graph.VertexID(h + 1),
				}
				if fwd {
					pe.Fwd, pe.Cap, pe.Flow = true, capsFwd[ei], flows[ei]
				} else {
					pe.Fwd, pe.Cap, pe.Flow = false, capsBwd[ei], -flows[ei]
				}
				p.Edges = append(p.Edges, pe)
			}
			acc.Accept(&p, graph.CapInf)
		}
		// Check the envelope: flow + grant within [-capBwd, capFwd].
		for id, d := range acc.Deltas() {
			after := flows[id] + d
			if after > capsFwd[id] || -after > capsBwd[id] {
				t.Logf("seed %d: edge %d flow %d + grant %d breaks [%d,%d]",
					seed, id, flows[id], d, -capsBwd[id], capsFwd[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUpdateVertexIdempotentOnEmptyDeltas: applying an empty delta
// table never changes a vertex (beyond dropping already-saturated
// paths, which is itself idempotent).
func TestQuickUpdateVertexIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := &graph.VertexValue{}
		for i := 0; i < rng.Intn(5); i++ {
			var p graph.ExcessPath
			for h := 0; h < 1+rng.Intn(4); h++ {
				p.Edges = append(p.Edges, graph.PathEdge{
					ID:   graph.EdgeID(rng.Intn(20)),
					From: graph.VertexID(h), To: graph.VertexID(h + 1),
					Cap: rng.Int63n(4), Flow: rng.Int63n(4), Fwd: rng.Intn(2) == 0,
				})
			}
			v.Su = append(v.Su, p)
		}
		updateVertex(v, nil)
		before := graph.EncodeValue(v)
		updateVertex(v, nil)
		after := graph.EncodeValue(v)
		return string(before) == string(after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
