package core

import (
	"math/rand"
	"testing"

	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
)

// TestFinalGraphInvariants runs every variant on a batch of random
// graphs with KeepIntermediate and validates the final residual network
// against the flow axioms — capacity, skew symmetry, conservation, and
// flow-value consistency. This is the whole-system invariant check.
func TestFinalGraphInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("invariant sweep is slow")
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		n := 20 + rng.Intn(40)
		in, err := graphgen.ErdosRenyi(n, n*3, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 1 {
			graphgen.RandomCapacities(in, 7, rng.Int63())
		}
		in.Source, in.Sink = graphgen.PickEndpoints(in)
		for _, variant := range allVariants() {
			cluster := testCluster(2)
			opts := Options{Variant: variant, KeepIntermediate: true}
			res, err := Run(cluster, in, opts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, variant, err)
			}
			if err := Validate(cluster.FS, in, opts, res); err != nil {
				t.Errorf("trial %d %s: %v", trial, variant, err)
			}
		}
	}
}

// TestValidateNeedsKeptIntermediate documents the KeepIntermediate
// requirement.
func TestValidateNeedsKeptIntermediate(t *testing.T) {
	in := pathGraph(3, 1)
	cluster := testCluster(2)
	opts := Options{Variant: FF5} // intermediate rounds deleted
	res, err := Run(cluster, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The final round's output is always retained, so validation still
	// works; only earlier rounds are cleaned. Validate must succeed.
	if err := Validate(cluster.FS, in, opts, res); err != nil {
		t.Fatalf("validate on final round: %v", err)
	}
}

// TestValidateDetectsCorruption corrupts a stored record and checks the
// validator notices.
func TestValidateDetectsCorruption(t *testing.T) {
	in := pathGraph(3, 2)
	cluster := testCluster(1)
	opts := Options{Variant: FF1, KeepIntermediate: true, Reducers: 1, PathPrefix: "ffmr/"}
	res, err := Run(cluster, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one half-edge's flow in the final round file: breaks skew
	// symmetry (and possibly conservation).
	prefix := roundPrefix(opts.PathPrefix, res.Rounds)
	names := cluster.FS.List(prefix)
	if len(names) == 0 {
		t.Fatal("no final round files")
	}
	verts, err := ReadVertices(cluster.FS, prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite all records with vertex 1's first edge flow bumped.
	v1 := verts[1]
	if v1 == nil || len(v1.Eu) == 0 {
		t.Fatal("vertex 1 missing")
	}
	v1.Eu[0].Flow++

	var w dfs.RecordWriter
	for u, v := range verts {
		w.Append(graph.KeyBytes(u), graph.EncodeValue(v))
	}
	for _, name := range names {
		cluster.FS.Delete(name)
	}
	if err := cluster.FS.WriteFile(prefix+"part-00000", w.Bytes()); err != nil {
		t.Fatal(err)
	}

	if err := Validate(cluster.FS, in, opts, res); err == nil {
		t.Fatal("validator accepted a corrupted graph")
	}
}
