package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ffmr/internal/dfs"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/trace"
)

// This file is the out-of-core shuffle acceptance harness: every FFMR
// variant runs the same graph twice — once with the unbounded in-memory
// shuffle and once with a memory budget small enough to force multiple
// spills per map task and multiple merge passes per reduce task — and
// the two runs must agree on the max-flow value and on every per-round
// Table I counter.

// spillBudget is deliberately tiny relative to per-task map output so
// every substantial map task spills repeatedly.
const spillBudget = 1 << 10

// budgetedCluster builds a cluster on the out-of-core shuffle path:
// small memory budget, disk spill dir, minimal merge fan-in (so segment
// counts above 2 need intermediate merge passes), and compression to
// exercise the DEFLATE stage.
func budgetedCluster(t *testing.T, nodes int) *mapreduce.Cluster {
	c := testCluster(nodes)
	c.MemoryBudget = spillBudget
	c.SpillDir = t.TempDir()
	c.SpillCompress = true
	c.MergeFanIn = 2
	return c
}

// comparableRounds strips the timing-dependent fields (which
// legitimately differ between runs) from per-round stats, leaving the
// record/byte counters. MaxQueue is the high-water mark of aug_proc's
// asynchronous submission queue — pure scheduling timing, different on
// every run even with identical configurations.
func comparableRounds(stats []RoundStat) []RoundStat {
	out := append([]RoundStat(nil), stats...)
	for i := range out {
		out[i].SimTime, out[i].WallTime, out[i].MaxQueue = 0, 0, 0
	}
	return out
}

func TestSpillDifferentialAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	tc := diffCase{name: "spill-ws220", seed: 21}
	in, err := graphgen.WattsStrogatz(220, 8, 0.1, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 5, tc.seed+1)
	want := oracleValue(t, tc, in)

	for _, variant := range allVariants() {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			t.Parallel()
			// DeterministicAccept pins aug_proc's acceptance order: the
			// paper's first-come-first-served policy makes per-round
			// A-Paths depend on goroutine scheduling (two identical
			// in-memory runs can disagree), which would drown out the
			// shuffle-path comparison this test exists for. FF1 has no
			// aug_proc and ignores the knob.
			baseRes, err := Run(testCluster(3), in, Options{Variant: variant, DeterministicAccept: true})
			if err != nil {
				t.Fatalf("in-memory run: %v", err)
			}
			tr := trace.New()
			budRes, err := Run(budgetedCluster(t, 3), in,
				Options{Variant: variant, DeterministicAccept: true, Tracer: tr})
			if err != nil {
				t.Fatalf("budgeted run: %v", err)
			}

			if baseRes.MaxFlow != want || budRes.MaxFlow != want {
				t.Errorf("max flow: in-memory %d, budgeted %d, oracles say %d",
					baseRes.MaxFlow, budRes.MaxFlow, want)
			}
			if baseRes.Rounds != budRes.Rounds {
				t.Errorf("rounds diverge: in-memory %d, budgeted %d", baseRes.Rounds, budRes.Rounds)
			}
			if !reflect.DeepEqual(comparableRounds(baseRes.RoundStats), comparableRounds(budRes.RoundStats)) {
				for i := range baseRes.RoundStats {
					if i >= len(budRes.RoundStats) {
						break
					}
					b, s := comparableRounds(baseRes.RoundStats)[i], comparableRounds(budRes.RoundStats)[i]
					if !reflect.DeepEqual(b, s) {
						t.Errorf("round %d counters diverge:\n in-memory %+v\n budgeted  %+v", i, b, s)
					}
				}
				t.Fatal("per-round counters diverge between shuffle paths")
			}

			// The budgeted run must actually have exercised the spill path.
			reg := tr.Registry()
			if v := reg.Counter(trace.CounterSpills).Value(); v == 0 {
				t.Error("no spills recorded by the budgeted run")
			}
			if v := reg.Counter(trace.CounterMergePasses).Value(); v < 2 {
				t.Errorf("merge passes = %d, want >= 2", v)
			}

			// Per-task depth, via the exported trace: with every record
			// smaller than the budget, any map attempt that wrote at least
			// two budgets of output must have spilled at least twice.
			for _, rs := range budRes.RoundStats {
				if rs.MaxRecordBytes >= spillBudget {
					t.Fatalf("round %d has a %d-byte record >= the %d-byte budget; "+
						"the multi-spill assertion below would be unsound",
						rs.Round, rs.MaxRecordBytes, spillBudget)
				}
			}
			var buf bytes.Buffer
			if err := tr.WriteChromeTrace(&buf); err != nil {
				t.Fatal(err)
			}
			evs, err := trace.ParseChromeTrace(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			multiSpillTasks, exportedSpills := 0, false
			for i := range evs {
				e := &evs[i]
				if e.Name == trace.CounterSpills {
					if v, ok := e.Int("value"); ok && v > 0 {
						exportedSpills = true
					}
				}
				if e.Cat != trace.CatTask || !strings.HasPrefix(e.Name, "map-") {
					continue
				}
				raw, ok := e.Int("raw_bytes")
				if !ok {
					continue // failed or in-memory attempt
				}
				spills, _ := e.Int("spills")
				if raw >= 2*spillBudget {
					if spills < 2 {
						t.Errorf("map attempt %q wrote %d raw bytes with only %d spills", e.Name, raw, spills)
					}
					multiSpillTasks++
				}
			}
			if multiSpillTasks < 2 {
				t.Errorf("only %d map attempts exceeded two budgets of output; "+
					"budget too large for the multi-spill acceptance check", multiSpillTasks)
			}
			if !exportedSpills {
				t.Error("exported trace shows no nonzero spill counter")
			}
		})
	}
}

// TestDeterministicAcceptReproducible pins the property the
// differential harness above relies on: with DeterministicAccept, two
// identical runs of an aug_proc variant produce identical per-round
// counters. (Without the knob this fails intermittently — aug_proc's
// FCFS acceptance order races across concurrent reduce tasks, so
// conflicting candidates resolve differently run to run.)
func TestDeterministicAcceptReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	tc := diffCase{name: "det-ws120", seed: 11}
	in, err := graphgen.WattsStrogatz(120, 6, 0.2, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 7, tc.seed+1)

	a, err := Run(testCluster(3), in, Options{Variant: FF2, DeterministicAccept: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCluster(3), in, Options{Variant: FF2, DeterministicAccept: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxFlow != b.MaxFlow {
		t.Errorf("max flow diverges between identical runs: %d vs %d", a.MaxFlow, b.MaxFlow)
	}
	if !reflect.DeepEqual(comparableRounds(a.RoundStats), comparableRounds(b.RoundStats)) {
		t.Errorf("per-round counters diverge between identical deterministic runs:\n a %+v\n b %+v",
			comparableRounds(a.RoundStats), comparableRounds(b.RoundStats))
	}
}

// TestSpillDifferentialDiskBackedDFS runs one variant end to end with
// BOTH subsystems on disk: spill runs for the shuffle and a DiskStore
// for the DFS blocks. Results must match the all-in-memory run.
func TestSpillDifferentialDiskBackedDFS(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	tc := diffCase{name: "spill-disk-ba60", seed: 31}
	in, err := graphgen.BarabasiAlbert(60, 3, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	want := oracleValue(t, tc, in)

	baseRes, err := Run(testCluster(3), in, Options{Variant: FF5, DeterministicAccept: true})
	if err != nil {
		t.Fatal(err)
	}

	store, err := dfs.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.NewWithStore(dfs.Config{Nodes: 3, BlockSize: 16 << 10, Replication: 2}, store)
	defer fs.Close()
	cluster := mapreduce.NewCluster(3, 4, fs)
	cluster.Cost = mapreduce.ZeroCostModel()
	cluster.MemoryBudget = spillBudget
	cluster.SpillDir = t.TempDir()
	cluster.MergeFanIn = 2

	diskRes, err := Run(cluster, in, Options{Variant: FF5, DeterministicAccept: true})
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.MaxFlow != want || diskRes.MaxFlow != want {
		t.Errorf("max flow: in-memory %d, disk-backed %d, oracles say %d",
			baseRes.MaxFlow, diskRes.MaxFlow, want)
	}
	if !reflect.DeepEqual(comparableRounds(baseRes.RoundStats), comparableRounds(diskRes.RoundStats)) {
		t.Error("per-round counters diverge between in-memory and fully disk-backed runs")
	}
}
