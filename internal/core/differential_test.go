package core

import (
	"fmt"
	"testing"

	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/maxflow"
)

// This file is the cross-variant differential harness: randomized
// small-world graphs from the generators, every FFMR variant plus the
// BSP translation, checked against two independent sequential oracles
// (Dinic and Push-Relabel). Every failure message carries the generator
// name and seed, so a red run is reproducible without extra logging.

// diffCase describes one randomized differential-test graph.
type diffCase struct {
	name  string
	seed  int64
	build func(seed int64) (*graph.Input, error)
}

// randomCaps scales capacities pseudo-randomly in [1, maxCap] so the
// max-flow value is not just a degree count.
func randomCaps(in *graph.Input, maxCap int64, seed int64) *graph.Input {
	graphgen.RandomCapacities(in, maxCap, seed)
	return in
}

func diffCases() []diffCase {
	return []diffCase{
		{"ws-n60", 11, func(seed int64) (*graph.Input, error) {
			in, err := graphgen.WattsStrogatz(60, 4, 0.2, seed)
			if err != nil {
				return nil, err
			}
			in.Source, in.Sink = graphgen.PickEndpoints(in)
			return in, nil
		}},
		{"ws-n80-caps", 12, func(seed int64) (*graph.Input, error) {
			in, err := graphgen.WattsStrogatz(80, 6, 0.1, seed)
			if err != nil {
				return nil, err
			}
			in.Source, in.Sink = graphgen.PickEndpoints(in)
			return randomCaps(in, 5, seed+1), nil
		}},
		{"ba-n50", 13, func(seed int64) (*graph.Input, error) {
			in, err := graphgen.BarabasiAlbert(50, 3, seed)
			if err != nil {
				return nil, err
			}
			in.Source, in.Sink = graphgen.PickEndpoints(in)
			return in, nil
		}},
		{"ba-n90-caps", 14, func(seed int64) (*graph.Input, error) {
			in, err := graphgen.BarabasiAlbert(90, 2, seed)
			if err != nil {
				return nil, err
			}
			in.Source, in.Sink = graphgen.PickEndpoints(in)
			return randomCaps(in, 7, seed+1), nil
		}},
		{"rmat-s6", 15, func(seed int64) (*graph.Input, error) {
			in, err := graphgen.RMAT(6, 4, seed)
			if err != nil {
				return nil, err
			}
			in.Source, in.Sink = graphgen.PickEndpoints(in)
			return in, nil
		}},
		{"ba-n120-super-st", 16, func(seed int64) (*graph.Input, error) {
			in, err := graphgen.BarabasiAlbert(120, 3, seed)
			if err != nil {
				return nil, err
			}
			return graphgen.AttachSuperSourceSink(in, 4, 4, seed+1)
		}},
	}
}

// oracleValue computes the ground-truth flow with both sequential
// solvers and fails the test if the oracles themselves disagree.
func oracleValue(t *testing.T, tc diffCase, in *graph.Input) int64 {
	t.Helper()
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatalf("[%s seed=%d] FromInput: %v", tc.name, tc.seed, err)
	}
	dinic := maxflow.Dinic(net, int(in.Source), int(in.Sink))
	net2, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatalf("[%s seed=%d] FromInput: %v", tc.name, tc.seed, err)
	}
	pr := maxflow.PushRelabel(net2, int(in.Source), int(in.Sink))
	if dinic != pr {
		t.Fatalf("[%s seed=%d] oracle disagreement: Dinic=%d PushRelabel=%d",
			tc.name, tc.seed, dinic, pr)
	}
	return dinic
}

// TestDifferentialVariantsAgainstOracles runs FF1..FF5 and the BSP
// translation on each randomized graph and asserts they all compute the
// oracle flow value.
func TestDifferentialVariantsAgainstOracles(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			in, err := tc.build(tc.seed)
			if err != nil {
				t.Fatalf("[%s seed=%d] build: %v", tc.name, tc.seed, err)
			}
			want := oracleValue(t, tc, in)

			for _, variant := range allVariants() {
				variant := variant
				t.Run(variant.String(), func(t *testing.T) {
					t.Parallel()
					cluster := testCluster(3)
					res, err := Run(cluster, in, Options{Variant: variant})
					if err != nil {
						t.Fatalf("[%s seed=%d] %s: %v", tc.name, tc.seed, variant, err)
					}
					if res.MaxFlow != want {
						t.Errorf("[%s seed=%d] %s max flow = %d, oracles say %d",
							tc.name, tc.seed, variant, res.MaxFlow, want)
					}
				})
			}
			t.Run("BSP", func(t *testing.T) {
				t.Parallel()
				res, err := RunBSP(in, BSPOptions{})
				if err != nil {
					t.Fatalf("[%s seed=%d] BSP: %v", tc.name, tc.seed, err)
				}
				if res.MaxFlow != want {
					t.Errorf("[%s seed=%d] BSP max flow = %d, oracles say %d",
						tc.name, tc.seed, res.MaxFlow, want)
				}
			})
		})
	}
}

// TestDifferentialSeedSweep drives one generator through a small seed
// sweep with the fastest (FF5) variant, widening randomized coverage
// beyond the fixed case list.
func TestDifferentialSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	for seed := int64(100); seed < 104; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			in, err := graphgen.WattsStrogatz(40, 4, 0.3, seed)
			if err != nil {
				t.Fatalf("[ws seed=%d] build: %v", seed, err)
			}
			graphgen.RandomCapacities(in, 4, seed+1)
			in.Source, in.Sink = graphgen.PickEndpoints(in)
			tc := diffCase{name: "ws-sweep", seed: seed}
			want := oracleValue(t, tc, in)
			cluster := testCluster(2)
			res, err := Run(cluster, in, Options{Variant: FF5})
			if err != nil {
				t.Fatalf("[ws-sweep seed=%d] FF5: %v", seed, err)
			}
			if res.MaxFlow != want {
				t.Errorf("[ws-sweep seed=%d] FF5 max flow = %d, oracles say %d",
					seed, res.MaxFlow, want)
			}
		})
	}
}
