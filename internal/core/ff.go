package core

import (
	"fmt"
	"sync"

	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
)

// runConfig is the immutable per-round configuration shared by all of a
// job's mapper and reducer instances.
type runConfig struct {
	opts       Options
	feat       features
	source     graph.VertexID
	sink       graph.VertexID
	deltasFile string
}

func (c *runConfig) pathLimit(v *graph.VertexValue) int {
	if c.feat.sentTracking {
		// FF5: k is the vertex's (in-)degree, guaranteeing a receiving
		// vertex always has room for an incoming extension.
		if k := len(v.Eu); k > 0 {
			return k
		}
		return 1
	}
	return c.opts.K
}

// ff1Sink receives the FF1 sink reducer's acceptance outcome. The
// simulated engine hands the reducer the driver's collector directly; on
// the distributed backend the worker holds an RPC connection to the
// driver's collector server instead. Both satisfy this interface, so the
// reducer code is backend agnostic.
type ff1Sink interface {
	add(deltas map[graph.EdgeID]int64, st AugProcStats) error
}

// ff1Collector stands in for aug_proc in FF1: the sink vertex's reducer
// performs the final acceptance itself and deposits the resulting
// AugmentedEdges table here for the driver to broadcast next round.
type ff1Collector struct {
	mu     sync.Mutex
	deltas map[graph.EdgeID]int64
	stats  AugProcStats
}

func newFF1Collector() *ff1Collector {
	return &ff1Collector{deltas: make(map[graph.EdgeID]int64)}
}

// add publishes the sink reducer's acceptance outcome. Exactly one
// reduce group (the sink vertex's) ever calls it, so the semantics are
// replace-not-accumulate: a retried reduce attempt (task fault
// tolerance) must not double-count its deltas.
func (c *ff1Collector) add(deltas map[graph.EdgeID]int64, st AugProcStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deltas = deltas
	c.stats = st
	return nil
}

func (c *ff1Collector) round() (AugProcStats, map[graph.EdgeID]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats, c.deltas
}

// deltaCache lazily parses the AugmentedEdges side file once per task.
type deltaCache struct {
	loaded bool
	deltas map[graph.EdgeID]int64
}

func (dc *deltaCache) get(ctx *mapreduce.TaskContext, file string) (map[graph.EdgeID]int64, error) {
	if dc.loaded {
		return dc.deltas, nil
	}
	data := ctx.SideFile(file)
	m, err := DecodeDeltas(data)
	if err != nil {
		return nil, err
	}
	dc.deltas = m
	dc.loaded = true
	return m, nil
}

// ffMapper implements the MAP function of Fig. 3 for all variants.
type ffMapper struct {
	cfg *runConfig
	dc  deltaCache

	// Reused buffers (FF4, Section IV-C). For earlier variants these are
	// left nil and fresh objects are allocated per record, reproducing
	// the allocation churn FF4 eliminates.
	val *graph.VertexValue
	buf []byte
}

func newFFMapper(cfg *runConfig) mapreduce.Mapper {
	m := &ffMapper{cfg: cfg}
	if cfg.feat.reuseObjects {
		m.val = new(graph.VertexValue)
		m.buf = make([]byte, 0, 256)
	}
	return m
}

func (m *ffMapper) Map(ctx *mapreduce.TaskContext, key, value []byte) error {
	u, err := graph.DecodeKey(key)
	if err != nil {
		return err
	}
	var val *graph.VertexValue
	if m.cfg.feat.reuseObjects {
		m.val.Reset()
		val = m.val
	} else {
		val = new(graph.VertexValue)
	}
	if err := graph.DecodeValueInto(value, val); err != nil {
		return err
	}
	if !val.IsMaster() {
		return fmt.Errorf("core: mapper got a non-master record for vertex %d", u)
	}

	deltas, err := m.dc.get(ctx, m.cfg.deltasFile)
	if err != nil {
		return err
	}

	// Update All Edge Flows (MAP lines 1-4).
	updateVertex(val, deltas)

	encode := func(v *graph.VertexValue) []byte {
		if m.cfg.feat.reuseObjects {
			m.buf = graph.AppendValue(m.buf[:0], v)
			return m.buf
		}
		return graph.EncodeValue(v)
	}

	// Generate Augmenting Paths (MAP lines 5-8). Only FF1 does this in
	// the map phase; FF2+ moved generation into the previous reduce.
	if !m.cfg.feat.augProc {
		sinkKey := graph.KeyBytes(m.cfg.sink)
		generateCandidates(val, func(cand graph.ExcessPath) {
			frag := graph.VertexValue{Su: []graph.ExcessPath{cand}}
			ctx.Emit(sinkKey, encode(&frag))
		})
	}

	// Extending Excess Paths (MAP lines 9-16).
	extcfg := extendConfig{
		source:       m.cfg.source,
		sink:         m.cfg.sink,
		sentTracking: m.cfg.feat.sentTracking,
	}
	extendVertex(u, val, &extcfg, func(f fragment) {
		ctx.Emit(graph.KeyBytes(f.To), encode(&f.Value))
	})

	// Emit the master vertex (MAP line 17) — suppressed by the schimmy
	// pattern from FF3 on.
	if !m.cfg.feat.schimmy {
		ctx.Emit(key, encode(val))
	}
	return nil
}

// ffReducer implements the REDUCE function of Fig. 4 for all variants.
type ffReducer struct {
	cfg *runConfig
	dc  deltaCache

	out  *graph.VertexValue
	frag *graph.VertexValue
	buf  []byte
}

func newFFReducer(cfg *runConfig) mapreduce.Reducer {
	r := &ffReducer{cfg: cfg, frag: new(graph.VertexValue)}
	if cfg.feat.reuseObjects {
		r.out = new(graph.VertexValue)
		r.buf = make([]byte, 0, 256)
	}
	return r
}

func (r *ffReducer) Reduce(ctx *mapreduce.TaskContext, key, master []byte, values *mapreduce.Values) error {
	u, err := graph.DecodeKey(key)
	if err != nil {
		return err
	}
	isSink := u == r.cfg.sink

	var out *graph.VertexValue
	if r.cfg.feat.reuseObjects {
		r.out.Reset()
		out = r.out
	} else {
		out = new(graph.VertexValue)
	}

	// Buffer the shuffled fragments. With schimmy the master arrives via
	// the base partition; otherwise it is one of the shuffled values,
	// distinguished by having edges (Fig. 4 line 4).
	var masterVal *graph.VertexValue
	var frags []*graph.VertexValue
	for {
		vb := values.Next()
		if vb == nil {
			break
		}
		v := new(graph.VertexValue)
		if err := graph.DecodeValueInto(vb, v); err != nil {
			return err
		}
		if v.IsMaster() {
			if masterVal != nil {
				return fmt.Errorf("core: vertex %d has two master records", u)
			}
			masterVal = v
			continue
		}
		frags = append(frags, v)
	}

	if r.cfg.feat.schimmy {
		if master == nil {
			return fmt.Errorf("core: vertex %d missing from schimmy base", u)
		}
		masterVal = new(graph.VertexValue)
		if err := graph.DecodeValueInto(master, masterVal); err != nil {
			return err
		}
		// Recompute the mapper's master-side state transition: apply the
		// round's deltas, drop saturated paths, and replay the extension
		// pass to reproduce the FF5 sent-flag updates. extendVertex is
		// deterministic in (value, deltas), so this reproduces exactly
		// what the mapper computed and did not ship.
		deltas, err := r.dc.get(ctx, r.cfg.deltasFile)
		if err != nil {
			return err
		}
		updateVertex(masterVal, deltas)
		extcfg := extendConfig{
			source:       r.cfg.source,
			sink:         r.cfg.sink,
			sentTracking: r.cfg.feat.sentTracking,
		}
		extendVertex(u, masterVal, &extcfg, nil)
	}
	if masterVal == nil {
		return fmt.Errorf("core: vertex %d received fragments but no master record", u)
	}

	out.Eu = append(out.Eu, masterVal.Eu...)
	out.SentS = append(out.SentS, masterVal.SentS...)
	out.SentT = append(out.SentT, masterVal.SentT...)

	k := r.cfg.pathLimit(masterVal)
	sm, tm := len(masterVal.Su), len(masterVal.Tu)

	var as, at Accumulator
	var ap Accumulator // FF1 sink-side final acceptance
	seenS := make(map[uint64]bool, k)
	seenT := make(map[uint64]bool, k)
	var candidates []graph.ExcessPath
	var ff1Stats AugProcStats

	mergeSource := func(se *graph.ExcessPath) {
		if isSink {
			// Fig. 4 line 6: at the sink every incoming source excess
			// path is a candidate augmenting path.
			if r.cfg.feat.augProc {
				candidates = append(candidates, se.Clone())
			} else {
				ff1Stats.Submitted++
				if d := ap.Accept(se, graph.CapInf); d > 0 {
					ff1Stats.Accepted++
					ff1Stats.TotalDelta += d
				}
			}
			return
		}
		sig := se.Signature()
		if seenS[sig] || len(out.Su) >= k {
			return
		}
		// The empty seed path at the source must always survive.
		if se.Len() == 0 || as.Accept(se, 1) > 0 {
			seenS[sig] = true
			out.Su = append(out.Su, se.Clone())
		}
	}
	mergeSink := func(te *graph.ExcessPath) {
		sig := te.Signature()
		if seenT[sig] || len(out.Tu) >= k {
			return
		}
		if te.Len() == 0 || at.Accept(te, 1) > 0 {
			seenT[sig] = true
			out.Tu = append(out.Tu, te.Clone())
		}
	}

	// The master's surviving paths merge first so established paths are
	// not evicted by new arrivals; fragments follow in the engine's
	// deterministic sorted order (Fig. 4 lines 3-9).
	for i := range masterVal.Su {
		mergeSource(&masterVal.Su[i])
	}
	for i := range masterVal.Tu {
		mergeSink(&masterVal.Tu[i])
	}
	baseS, baseT := len(out.Su), len(out.Tu)
	for _, f := range frags {
		for i := range f.Su {
			mergeSource(&f.Su[i])
		}
		for i := range f.Tu {
			mergeSink(&f.Tu[i])
		}
	}

	// Movement counters (Fig. 4 lines 10-11) drive termination.
	if sm == 0 && len(out.Su) > 0 {
		ctx.Inc("source move", 1)
	}
	if tm == 0 && len(out.Tu) > 0 {
		ctx.Inc("sink move", 1)
	}
	// Path-addition counters drive the warm-restart termination rule: a
	// warm start leaves most vertices already holding paths, so movement
	// counters (0 -> nonzero transitions) are blind to progress that only
	// grows existing path sets. A round in which no vertex adds any path
	// and nothing is accepted is a fixpoint.
	if d := len(out.Su) - baseS; d > 0 {
		ctx.Inc("source paths added", int64(d))
	}
	if d := len(out.Tu) - baseT; d > 0 {
		ctx.Inc("sink paths added", int64(d))
	}
	// Active vertices — the paper's available-parallelism measure
	// (Section III-B: "we want the number of active vertices ... to be
	// large compared to the available computing resources").
	if len(out.Su) > 0 || len(out.Tu) > 0 {
		ctx.Inc("active vertices", 1)
	}

	// FF2+: generate candidate augmenting paths here, from the post-merge
	// state, and send them to aug_proc over the persistent connection as
	// soon as they are found (Section IV-A).
	if r.cfg.feat.augProc {
		generateCandidates(out, func(cand graph.ExcessPath) {
			candidates = append(candidates, cand)
		})
		if len(candidates) > 0 {
			client, ok := ctx.Service().(*AugProcClient)
			if !ok {
				return fmt.Errorf("core: job service is not an aug_proc client")
			}
			if err := client.Submit(ctx.Round(), ctx.Task(), ctx.Exec(), candidates); err != nil {
				return err
			}
			ctx.Inc("candidates sent", int64(len(candidates)))
		}
	} else if isSink {
		// FF1: the sink reducer finalizes acceptance and publishes the
		// round's AugmentedEdges table (Fig. 4 lines 12-14).
		col, ok := ctx.Service().(ff1Sink)
		if !ok {
			return fmt.Errorf("core: job service is not an FF1 collector")
		}
		if err := col.add(ap.Deltas(), ff1Stats); err != nil {
			return err
		}
	}

	var enc []byte
	if r.cfg.feat.reuseObjects {
		r.buf = graph.AppendValue(r.buf[:0], out)
		enc = r.buf
	} else {
		enc = graph.EncodeValue(out)
	}
	ctx.Emit(key, enc)
	return nil
}
