package core

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ffmr/internal/distmr"
	"ffmr/internal/graphgen"
	"ffmr/internal/leakcheck"
	"ffmr/internal/mapreduce"
	"ffmr/internal/trace"
)

// This file is the distributed-backend acceptance harness: every FFMR
// variant (and MR-BFS) runs once on the simulated engine and once on the
// distmr backend — real TCP workers, network shuffle, task leases — and
// the two runs must agree on the max-flow value and on every per-round
// Table I counter. DeterministicAccept pins aug_proc's acceptance order
// for the same reason as in the spill harness.

// distHarness boots an in-process master/worker cluster and closes it
// when the test finishes.
func distHarness(t *testing.T, cfg distmr.HarnessConfig) *distmr.Harness {
	t.Helper()
	h, err := distmr.StartHarness(cfg)
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

// checkBackendParity fails the test unless the simulated and distributed
// runs agree on flow, round count and all comparable per-round counters.
func checkBackendParity(t *testing.T, want int64, simRes, distRes *Result) {
	t.Helper()
	if simRes.MaxFlow != want || distRes.MaxFlow != want {
		t.Errorf("max flow: simulated %d, distributed %d, oracles say %d",
			simRes.MaxFlow, distRes.MaxFlow, want)
	}
	if simRes.Rounds != distRes.Rounds {
		t.Errorf("rounds diverge: simulated %d, distributed %d", simRes.Rounds, distRes.Rounds)
	}
	if !reflect.DeepEqual(comparableRounds(simRes.RoundStats), comparableRounds(distRes.RoundStats)) {
		for i := range simRes.RoundStats {
			if i >= len(distRes.RoundStats) {
				break
			}
			s, d := comparableRounds(simRes.RoundStats)[i], comparableRounds(distRes.RoundStats)[i]
			if !reflect.DeepEqual(s, d) {
				t.Errorf("round %d counters diverge:\n simulated   %+v\n distributed %+v", i, s, d)
			}
		}
		t.Fatal("per-round counters diverge between backends")
	}
}

func TestDistributedDifferentialAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	tc := diffCase{name: "dist-ws160", seed: 41}
	in, err := graphgen.WattsStrogatz(160, 6, 0.1, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 5, tc.seed+1)
	want := oracleValue(t, tc, in)

	h := distHarness(t, distmr.HarnessConfig{Workers: 3, Tracer: trace.New()})
	for _, variant := range allVariants() {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			simRes, err := Run(testCluster(3), in, Options{Variant: variant, DeterministicAccept: true})
			if err != nil {
				t.Fatalf("simulated run: %v", err)
			}
			distC := testCluster(3)
			distC.Distributed = h.Master
			distRes, err := Run(distC, in, Options{Variant: variant, DeterministicAccept: true})
			if err != nil {
				t.Fatalf("distributed run: %v", err)
			}
			checkBackendParity(t, want, simRes, distRes)
		})
	}
}

// TestDistributedDifferentialSpill runs the distributed backend against
// a budgeted simulated run: both sides use the same MemoryBudget, so
// spill segmentation and merge statistics must line up across the
// network shuffle.
func TestDistributedDifferentialSpill(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	tc := diffCase{name: "dist-spill-ws120", seed: 43}
	in, err := graphgen.WattsStrogatz(120, 6, 0.15, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 4, tc.seed+1)
	want := oracleValue(t, tc, in)

	h := distHarness(t, distmr.HarnessConfig{Workers: 3})
	for _, variant := range []Variant{FF2, FF5} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			simTr := trace.New()
			simRes, err := Run(budgetedCluster(t, 3), in,
				Options{Variant: variant, DeterministicAccept: true, Tracer: simTr})
			if err != nil {
				t.Fatalf("budgeted simulated run: %v", err)
			}
			distC := testCluster(3)
			distC.MemoryBudget = spillBudget
			distC.SpillCompress = true
			distC.MergeFanIn = 2
			distC.Distributed = h.Master
			distTr := trace.New()
			distRes, err := Run(distC, in, Options{Variant: variant, DeterministicAccept: true, Tracer: distTr})
			if err != nil {
				t.Fatalf("distributed run: %v", err)
			}
			checkBackendParity(t, want, simRes, distRes)
			// Both backends publish out-of-core stats into their tracer's
			// registry; the totals must agree exactly, and must be real
			// spill activity (the budget is sized to force it).
			for _, name := range []string{trace.CounterSpills, trace.CounterSpilledBytes, trace.CounterMergePasses} {
				s := simTr.Registry().Counter(name).Value()
				d := distTr.Registry().Counter(name).Value()
				if s != d {
					t.Errorf("%s: simulated %d, distributed %d", name, s, d)
				}
				if s == 0 {
					t.Errorf("%s: simulated run reported zero (budget did not bind?)", name)
				}
			}
		})
	}
}

// TestDistributedDifferentialWorkerCrash injects worker crashes into the
// distributed run and compares it against a crash-free simulated run:
// reassignment, shuffle re-fetch and submission dedupe must leave no
// trace in the per-round counters.
func TestDistributedDifferentialWorkerCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	tc := diffCase{name: "dist-crash-ws140", seed: 47}
	in, err := graphgen.WattsStrogatz(140, 6, 0.1, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 5, tc.seed+1)
	want := oracleValue(t, tc, in)

	for _, variant := range []Variant{FF2, FF5} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			simRes, err := Run(testCluster(3), in, Options{Variant: variant, DeterministicAccept: true})
			if err != nil {
				t.Fatalf("simulated run: %v", err)
			}
			// A fresh replacing harness per variant keeps dead workers from
			// one variant's run out of the next one's scheduler.
			h := distHarness(t, distmr.HarnessConfig{Workers: 3, Replace: true})
			distC := testCluster(3)
			distC.Distributed = h.Master
			distC.Fault.WorkerCrashRate = 0.02
			distC.Fault.Seed = tc.seed
			distRes, err := Run(distC, in, Options{Variant: variant, DeterministicAccept: true})
			if err != nil {
				t.Fatalf("distributed run with crashes: %v", err)
			}
			crashed := 0
			for _, w := range h.Workers() {
				if w.Crashed() {
					crashed++
				}
			}
			t.Logf("injected crashes killed %d workers", crashed)
			checkBackendParity(t, want, simRes, distRes)
		})
	}
}

// TestDistributedPrefetchDifferential pins the pipelined-shuffle parity
// invariant: with reduce-side prefetch on (the default) or off, under
// injected worker crashes, every FF variant must reproduce the simulated
// engine's per-round Table I counters exactly. Prefetch may only change
// when shuffle bytes move, never how many are accounted — the fetch and
// inter-node counters are computed from segment metadata on the reduce
// path regardless of which transport actually landed the bytes.
func TestDistributedPrefetchDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	tc := diffCase{name: "dist-prefetch-ws130", seed: 61}
	in, err := graphgen.WattsStrogatz(130, 6, 0.1, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 5, tc.seed+1)
	want := oracleValue(t, tc, in)

	for _, variant := range allVariants() {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			simRes, err := Run(testCluster(3), in, Options{Variant: variant, DeterministicAccept: true})
			if err != nil {
				t.Fatalf("simulated run: %v", err)
			}
			for _, disable := range []bool{false, true} {
				name := "prefetch-on"
				if disable {
					name = "prefetch-off"
				}
				t.Run(name, func(t *testing.T) {
					h := distHarness(t, distmr.HarnessConfig{
						Workers: 3,
						Replace: true,
						Master:  distmr.Config{DisablePrefetch: disable},
					})
					distC := testCluster(3)
					distC.Distributed = h.Master
					distC.Fault.WorkerCrashRate = 0.02
					distC.Fault.Seed = tc.seed
					distRes, err := Run(distC, in, Options{Variant: variant, DeterministicAccept: true})
					if err != nil {
						t.Fatalf("distributed run: %v", err)
					}
					checkBackendParity(t, want, simRes, distRes)
					if !disable {
						var pre int64
						for _, ws := range h.Master.Status().Workers {
							pre += ws.Prefetched
						}
						if pre == 0 {
							t.Error("prefetch enabled but no worker reported a prefetched segment")
						}
					}
				})
			}
		})
	}
}

// TestDistributedBFSDifferential runs the MR-BFS preprocessing pass on
// both backends.
func TestDistributedBFSDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow; skipped with -short")
	}
	in, err := graphgen.WattsStrogatz(150, 6, 0.1, 53)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)

	simRes, err := RunBFS(testCluster(3), in, 4, "bfs/")
	if err != nil {
		t.Fatalf("simulated BFS: %v", err)
	}
	h := distHarness(t, distmr.HarnessConfig{Workers: 3})
	distC := testCluster(3)
	distC.Distributed = h.Master
	distRes, err := RunBFS(distC, in, 4, "bfs/")
	if err != nil {
		t.Fatalf("distributed BFS: %v", err)
	}

	if simRes.Rounds != distRes.Rounds || simRes.SinkDist != distRes.SinkDist ||
		simRes.Visited != distRes.Visited {
		t.Errorf("BFS results diverge: simulated rounds=%d dist=%d visited=%d, distributed rounds=%d dist=%d visited=%d",
			simRes.Rounds, simRes.SinkDist, simRes.Visited,
			distRes.Rounds, distRes.SinkDist, distRes.Visited)
	}
	if !reflect.DeepEqual(comparableRounds(simRes.RoundStats), comparableRounds(distRes.RoundStats)) {
		t.Error("per-round BFS counters diverge between backends")
	}
}

// TestDistributedRunLeavesNoGoroutines runs a full FF2 computation on
// the distributed backend and asserts that closing the harness winds
// down the master, the workers, and every per-job resource.
func TestDistributedRunLeavesNoGoroutines(t *testing.T) {
	defer leakcheck.Check(t)()
	h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: 3, Tracer: trace.New()})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	cluster := testCluster(3)
	cluster.Distributed = h.Master
	in := pathGraph(4, 2)
	res, err := Run(cluster, in, Options{Variant: FF2, Tracer: trace.New()})
	if err != nil {
		h.Close()
		t.Fatalf("Run: %v", err)
	}
	h.Close()
	if res.MaxFlow != 2 {
		t.Fatalf("max flow = %d, want 2", res.MaxFlow)
	}
}

// TestDistributedMultiProcessWorkers is the end-to-end smoke of the real
// deployment shape: it builds cmd/ffmr-worker, spawns three worker
// processes against a master in this process, and requires FF1 and FF5
// to match the simulated engine exactly across the process boundary.
func TestDistributedMultiProcessWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke is slow; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "ffmr-worker")
	build := exec.Command("go", "build", "-o", bin, "ffmr/cmd/ffmr-worker")
	build.Dir = "../.." // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ffmr-worker: %v\n%s", err, out)
	}

	m, err := distmr.NewMaster(distmr.Config{})
	if err != nil {
		t.Fatalf("NewMaster: %v", err)
	}
	defer m.Shutdown()

	var procs []*exec.Cmd
	for i := 0; i < 3; i++ {
		cmd := exec.Command(bin, "-master", m.Addr(), "-dir", filepath.Join(t.TempDir(), "store"))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		procs = append(procs, cmd)
	}
	defer func() {
		// Master shutdown tells workers (via heartbeat replies) to exit.
		m.Shutdown()
		for _, p := range procs {
			if err := p.Wait(); err != nil {
				t.Errorf("worker exit: %v", err)
			}
		}
	}()
	if err := m.WaitForWorkers(3, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	tc := diffCase{name: "dist-procs-ws100", seed: 59}
	in, err := graphgen.WattsStrogatz(100, 6, 0.15, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 4, tc.seed+1)
	want := oracleValue(t, tc, in)

	for _, variant := range []Variant{FF1, FF5} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			simRes, err := Run(testCluster(3), in, Options{Variant: variant, DeterministicAccept: true})
			if err != nil {
				t.Fatalf("simulated run: %v", err)
			}
			distC := testCluster(3)
			distC.Distributed = m
			distRes, err := Run(distC, in, Options{Variant: variant, DeterministicAccept: true})
			if err != nil {
				t.Fatalf("multi-process run: %v", err)
			}
			checkBackendParity(t, want, simRes, distRes)
		})
	}
}

var _ mapreduce.Backend = (*distmr.Master)(nil)
