// Package core implements the paper's contribution: the FFMR family of
// MapReduce-based Ford-Fulkerson maximum-flow algorithms (FF1 through
// FF5), the external stateful accumulator process aug_proc, the
// AugmentedEdges broadcast mechanism, the movement-counter termination
// rule, and the MR-BFS baseline.
package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ffmr/internal/graph"
)

// Accumulator greedily accepts non-conflicting excess/augmenting paths on
// a first-come-first-served basis (paper Section III-C). It tracks, per
// edge, the net canonical-orientation flow it has tentatively granted to
// accepted paths this round, and rejects any path whose acceptance would
// violate a capacity constraint given those grants.
//
// The zero value is an empty accumulator ready for use.
type Accumulator struct {
	pending map[graph.EdgeID]int64
}

func (a *Accumulator) grant(id graph.EdgeID) int64 {
	if a.pending == nil {
		return 0
	}
	return a.pending[id]
}

// Feasible returns the largest flow delta that could be pushed along p
// given the current grants, or 0 if the path conflicts. The computation
// handles non-simple paths (a concatenated augmenting path may traverse
// the same edge in both directions; such uses net out, as residual-graph
// semantics require).
func (a *Accumulator) Feasible(p *graph.ExcessPath) int64 {
	if len(p.Edges) == 0 {
		return 0
	}
	// Net canonical usage per edge within this path.
	netUse := make(map[graph.EdgeID]int64, len(p.Edges))
	for i := range p.Edges {
		if p.Edges[i].Fwd {
			netUse[p.Edges[i].ID]++
		} else {
			netUse[p.Edges[i].ID]--
		}
	}
	best := graph.CapInf
	for i := range p.Edges {
		pe := &p.Edges[i]
		sign := int64(1)
		if !pe.Fwd {
			sign = -1
		}
		// slack: residual in the traversal direction after previously
		// granted deltas. m: how much one unit of flow along the whole
		// path consumes of this hop's directional capacity.
		slack := pe.Cap - pe.Flow - sign*a.grant(pe.ID)
		m := sign * netUse[pe.ID]
		if m <= 0 {
			continue // net flow runs the other way; this hop only gains slack
		}
		if slack <= 0 {
			return 0
		}
		if d := slack / m; d < best {
			best = d
		}
	}
	if best <= 0 {
		return 0
	}
	return best
}

// Accept attempts to accept path p, returning the granted flow delta
// (0 means rejected). limit caps the granted delta; pass graph.CapInf for
// "as much as the path allows" (augmenting-path acceptance) or 1 for
// unit-granularity reservations (excess-path storage, where the stored
// paths only need to be mutually conflict-free).
func (a *Accumulator) Accept(p *graph.ExcessPath, limit int64) int64 {
	d := a.Feasible(p)
	if d <= 0 {
		return 0
	}
	if d > limit {
		d = limit
	}
	if a.pending == nil {
		a.pending = make(map[graph.EdgeID]int64)
	}
	for i := range p.Edges {
		if p.Edges[i].Fwd {
			a.pending[p.Edges[i].ID] += d
		} else {
			a.pending[p.Edges[i].ID] -= d
		}
	}
	return d
}

// Len returns the number of edges with outstanding grants.
func (a *Accumulator) Len() int { return len(a.pending) }

// Deltas returns the accumulated per-edge canonical flow deltas — the
// contents of the round's AugmentedEdges table.
func (a *Accumulator) Deltas() map[graph.EdgeID]int64 {
	out := make(map[graph.EdgeID]int64, len(a.pending))
	for id, d := range a.pending {
		if d != 0 {
			out[id] = d
		}
	}
	return out
}

// Reset clears all grants.
func (a *Accumulator) Reset() { a.pending = nil }

// EncodeDeltas serializes an AugmentedEdges table deterministically
// (sorted by edge ID) for distribution as a DFS side file, as the paper
// distributes "a list of the augmented edges and its delta flow" to all
// mappers of the next round.
func EncodeDeltas(deltas map[graph.EdgeID]int64) []byte {
	ids := make([]graph.EdgeID, 0, len(deltas))
	for id := range deltas {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, 6*len(ids))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendVarint(buf, deltas[id])
	}
	return buf
}

// DecodeDeltas parses an AugmentedEdges side file.
func DecodeDeltas(data []byte) (map[graph.EdgeID]int64, error) {
	out := make(map[graph.EdgeID]int64)
	off := 0
	for off < len(data) {
		id, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt AugmentedEdges id at offset %d", off)
		}
		off += n
		d, n := binary.Varint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt AugmentedEdges delta at offset %d", off)
		}
		off += n
		out[graph.EdgeID(id)] = d
	}
	return out, nil
}
