package core

import (
	"fmt"
	"log/slog"

	"ffmr/internal/trace"
)

// Variant selects which FFMR algorithm version to run. Each variant
// includes the optimizations of the previous ones, matching the paper's
// cumulative evaluation (Fig. 6).
type Variant int

const (
	// FF1 is the baseline parallel Ford-Fulkerson of Section III:
	// speculative incremental path finding, bi-directional search,
	// multiple excess paths, accumulator-based conflict resolution, and
	// augmenting-path acceptance at the sink vertex's reducer.
	FF1 Variant = iota + 1
	// FF2 adds the stateful aug_proc extension (Section IV-A): candidate
	// augmenting paths are generated in the REDUCE function and sent to
	// an external accumulator process over persistent connections instead
	// of being shuffled to the sink vertex.
	FF2
	// FF3 adds the schimmy design pattern (Section IV-B): master vertex
	// records are not re-emitted as intermediate records; reducers
	// merge-join against the previous round's partition-aligned output.
	FF3
	// FF4 adds object-instantiation elimination (Section IV-C): workers
	// decode into preallocated, reused buffers.
	FF4
	// FF5 adds redundant-message prevention (Section IV-D): the per-vertex
	// excess-path limit k becomes the vertex's in-degree and each vertex
	// remembers which excess path it extended along each edge, re-sending
	// only when the sent path saturates.
	FF5
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case FF1:
		return "FF1"
	case FF2:
		return "FF2"
	case FF3:
		return "FF3"
	case FF4:
		return "FF4"
	case FF5:
		return "FF5"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// features decomposes a variant into its optimization flags.
type features struct {
	augProc      bool // FF2+: external stateful accumulator
	schimmy      bool // FF3+: no master re-emission
	reuseObjects bool // FF4+: allocation-free decode/encode
	sentTracking bool // FF5: k = in-degree + sent-path bookkeeping
}

func (v Variant) features() features {
	return features{
		augProc:      v >= FF2,
		schimmy:      v >= FF3,
		reuseObjects: v >= FF4,
		sentTracking: v >= FF5,
	}
}

// TerminationMode selects the stopping rule of the multi-round driver.
type TerminationMode int

const (
	// TerminationStrict stops when a round sees no source-move, or no
	// sink-move, and additionally accepted no augmenting path. This is
	// the conservative extension of the paper's rule; it never stops in a
	// round that still made progress. It is the default.
	TerminationStrict TerminationMode = iota
	// TerminationPaper stops exactly per Fig. 2 of the paper: as soon as
	// the source-move or sink-move counter of a round is zero.
	TerminationPaper
)

// String describes the termination mode.
func (m TerminationMode) String() string {
	switch m {
	case TerminationStrict:
		return "strict"
	case TerminationPaper:
		return "paper"
	default:
		return fmt.Sprintf("TerminationMode(%d)", int(m))
	}
}

// Options configures an FFMR run. The zero value is completed by
// applyDefaults; use the ffmr facade package for a friendlier surface.
type Options struct {
	// Engine selects the solver. "" and "ffmr" run the paper's multi-round
	// MapReduce Ford-Fulkerson; any other value is resolved through
	// RegisterEngine ("prflow" — the synchronous parallel push-relabel
	// engine from internal/prflow — and "auto" — the instance-probing
	// portfolio driver from internal/portfolio; import those packages to
	// register them). Every engine persists the same final residual state
	// (round-NNNNN vertex records plus a pending-deltas file), so
	// Validate, dynamic snapshots and the service work with any of them.
	// Resume and checkpointing are FFMR-only.
	Engine string
	// Variant selects FF1..FF5 (default FF5).
	Variant Variant
	// K is the maximum number of source (and sink) excess paths stored
	// per vertex (default 4). FF5 ignores K and uses each vertex's
	// degree, per the paper's second redundancy-prevention strategy.
	K int
	// DisableBidirectional turns off sink-side excess paths
	// (Section III-B2). It is an ablation knob that reproduces the
	// paper's claim that bi-directional search halves the round count.
	DisableBidirectional bool
	// DisableMultiPaths forces K to 1, turning off the multiple
	// excess-path optimization of Section III-B3 (ablation knob).
	DisableMultiPaths bool
	// Termination selects the stopping rule (default TerminationStrict).
	Termination TerminationMode
	// MaxRounds aborts runs that fail to converge (default 1000).
	MaxRounds int
	// Reducers is the number of reduce tasks per round (default: cluster
	// worker slots, capped at 64).
	Reducers int
	// KeepIntermediate retains each round's output files in the DFS
	// instead of deleting round r-1 after round r succeeds. Needed when
	// inspecting per-round graph state; default false.
	KeepIntermediate bool
	// UseCombiner enables map-side fragment combining. The paper
	// evaluated combiners for FFMR and found them counterproductive
	// ("we do not use any combiners as we found worse performance");
	// this knob exists to reproduce that ablation.
	UseCombiner bool
	// Resume continues an interrupted run from the checkpoint the driver
	// writes to the DFS after every round, instead of starting over.
	// Variant and Reducers must match the checkpointed run.
	Resume bool
	// RoundCallback, if non-nil, is invoked after every completed round
	// with that round's statistics — live progress for long runs.
	RoundCallback func(RoundStat)
	// PathPrefix namespaces this run's DFS files (default "ffmr/").
	PathPrefix string
	// DeterministicAccept makes aug_proc (FF2+) accept candidate paths
	// in a canonical order at the end of each round instead of
	// first-come-first-served as reducers submit them. The paper's FCFS
	// policy overlaps acceptance with the reduce phase, but which
	// conflicting candidate wins then depends on scheduling, so two
	// identical runs can accept different path sets (same max flow,
	// different per-round A-Paths). Differential tests set this so
	// per-round counters are byte-for-byte reproducible. FF1 has no
	// aug_proc and is deterministic either way.
	DeterministicAccept bool
	// Tracer, if non-nil, records a run span with one child round span
	// per executed round, each annotated with the paper's Table I
	// metrics. The driver also installs the tracer on the cluster (job/
	// phase/task spans) and the aug_proc server (queue-depth gauge,
	// accept latency) for the duration of the run.
	Tracer *trace.Tracer
	// Log, if non-nil, receives structured per-round progress events. The
	// driver installs it on the cluster for job-level events too.
	Log *slog.Logger
}

// WithDefaults returns a copy of o with every unset field resolved
// exactly as Run resolves it for a cluster with the given number of
// worker slots. Callers that build jobs against a run's persisted state
// (internal/dynamic) use it to learn the effective Reducers count, which
// fixes the partition alignment of every output file.
func (o Options) WithDefaults(clusterSlots int) Options {
	o.applyDefaults(clusterSlots)
	return o
}

func (o *Options) applyDefaults(clusterSlots int) {
	if o.Variant == 0 {
		o.Variant = FF5
	}
	if o.K <= 0 {
		o.K = 4
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 1000
	}
	if o.Reducers <= 0 {
		o.Reducers = clusterSlots
		if o.Reducers > 64 {
			o.Reducers = 64
		}
		if o.Reducers < 1 {
			o.Reducers = 1
		}
	}
	if o.DisableMultiPaths {
		o.K = 1
	}
	if o.PathPrefix == "" {
		o.PathPrefix = "ffmr/"
	}
}

func (o *Options) validate() error {
	if o.Variant < FF1 || o.Variant > FF5 {
		return fmt.Errorf("core: unknown variant %d", o.Variant)
	}
	if o.Termination != TerminationStrict && o.Termination != TerminationPaper {
		return fmt.Errorf("core: unknown termination mode %d", o.Termination)
	}
	return nil
}
