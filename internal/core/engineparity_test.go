package core_test

// Differential engine-parity harness: every registered engine (the
// paper's FFMR driver, the prflow push-relabel engine, and the
// portfolio's auto driver) must compute the exact same max-flow value
// as the sequential Dinic and Push-Relabel oracles on every graph
// family, and must leave behind persisted state that passes
// core.Validate. One family additionally runs against the real-process
// distributed MapReduce backend. This lives in an external test
// package because the engines register themselves with core via
// import, which package core's own tests cannot do without a cycle.

import (
	"fmt"
	"testing"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/distmr"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/maxflow"
	"ffmr/internal/portfolio"
	_ "ffmr/internal/prflow"
)

func parityCluster(nodes int) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{Nodes: nodes, BlockSize: 16 << 10, Replication: 2})
	c := mapreduce.NewCluster(nodes, 4, fs)
	c.Cost = mapreduce.ZeroCostModel()
	return c
}

func attach(t *testing.T, base *graph.Input, err error, w, minDeg int, seed, capSeed int64) *graph.Input {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, w, minDeg, seed)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.RandomCapacities(in, 12, capSeed)
	return in
}

func parityFamilies(t *testing.T) map[string]*graph.Input {
	t.Helper()
	fams := map[string]*graph.Input{}

	// FB-style small-world crawl workload: the paper's own regime.
	base, err := graphgen.BarabasiAlbert(250, 4, 41)
	fams["fb-style"] = attach(t, base, err, 4, 4, 42, 43)

	// Scale-free with a heavy peelable fringe.
	base, err = graphgen.BarabasiAlbert(250, 2, 44)
	fams["power-law"] = attach(t, base, err, 3, 3, 45, 46)

	// High-diameter lattice; corner-to-corner.
	grid, err := graphgen.Grid(11, 11)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.RandomCapacities(grid, 8, 47)
	fams["grid"] = grid

	// Dense bipartite matching-like instance.
	bip, err := graphgen.DenseBipartite(18, 22, 0.35, 48)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.RandomCapacities(bip, 5, 49)
	fams["bipartite"] = bip
	return fams
}

func oracles(t *testing.T, in *graph.Input) int64 {
	t.Helper()
	net1, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatal(err)
	}
	dinic := maxflow.Dinic(net1, int(in.Source), int(in.Sink))
	net2, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatal(err)
	}
	pr := maxflow.PushRelabel(net2, int(in.Source), int(in.Sink))
	if dinic != pr {
		t.Fatalf("oracles disagree: Dinic %d, PushRelabel %d", dinic, pr)
	}
	return dinic
}

// TestEngineParity cross-checks every engine against both oracles on
// every family, on the simulated backend.
func TestEngineParity(t *testing.T) {
	for name, in := range parityFamilies(t) {
		name, in := name, in
		t.Run(name, func(t *testing.T) {
			want := oracles(t, in)
			for _, engine := range []string{"ffmr", "prflow", portfolio.EngineName} {
				engine := engine
				t.Run(engine, func(t *testing.T) {
					cluster := parityCluster(3)
					opts := core.Options{
						Engine:              engine,
						KeepIntermediate:    true,
						DeterministicAccept: true,
						PathPrefix:          fmt.Sprintf("parity/%s/%s/", name, engine),
					}
					res, err := core.Run(cluster, in, opts)
					if err != nil {
						t.Fatalf("%s on %s: %v", engine, name, err)
					}
					if res.MaxFlow != want {
						t.Fatalf("%s on %s: max flow %d, oracles %d", engine, name, res.MaxFlow, want)
					}
					if !res.Converged {
						t.Fatalf("%s on %s did not converge", engine, name)
					}
					resolved := opts.WithDefaults(cluster.Nodes * cluster.SlotsPerNode)
					if err := core.Validate(cluster.FS, in, resolved, res); err != nil {
						t.Fatalf("%s on %s: persisted state invalid: %v", engine, name, err)
					}
				})
			}
		})
	}
}

// TestEngineParityDistributed runs the power-law family's full engine
// portfolio against the real-process distributed backend and demands
// the same values as the simulated backend.
func TestEngineParityDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process harness in -short mode")
	}
	base, err := graphgen.BarabasiAlbert(150, 2, 51)
	in := attach(t, base, err, 3, 3, 52, 53)
	want := oracles(t, in)

	h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: 3})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()

	for _, engine := range []string{"ffmr", "prflow", portfolio.EngineName} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			cluster := parityCluster(3)
			cluster.Distributed = h.Master
			opts := core.Options{
				Engine:              engine,
				KeepIntermediate:    true,
				DeterministicAccept: true,
				PathPrefix:          fmt.Sprintf("dist/%s/", engine),
			}
			res, err := core.Run(cluster, in, opts)
			if err != nil {
				t.Fatalf("%s distributed: %v", engine, err)
			}
			if res.MaxFlow != want {
				t.Fatalf("%s distributed: max flow %d, oracles %d", engine, res.MaxFlow, want)
			}
		})
	}
}

// TestEngineRegistry covers the dispatch seams: unknown engines are
// rejected with the registered list, Resume is FFMR-only, and the
// registry reports what the imports registered.
func TestEngineRegistry(t *testing.T) {
	names := core.EngineNames()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, n := range []string{"ffmr", "prflow", "auto"} {
		if !got[n] {
			t.Fatalf("EngineNames() = %v, missing %q", names, n)
		}
	}

	cluster := parityCluster(2)
	in := &graph.Input{
		NumVertices: 2, Source: 0, Sink: 1,
		Edges: []graph.InputEdge{{U: 0, V: 1, Cap: 1}},
	}
	if _, err := core.Run(cluster, in, core.Options{Engine: "no-such-engine"}); err == nil {
		t.Fatal("expected error for unknown engine")
	}
	if _, err := core.Run(cluster, in, core.Options{Engine: "prflow", Resume: true}); err == nil {
		t.Fatal("expected error for Resume with a non-FFMR engine")
	}
}
