package core

import (
	"testing"
	"time"

	"ffmr/internal/chaos"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/trace"
)

// This file is the chaos acceptance harness: FFMR runs on the
// distributed backend while a seeded chaos schedule joins, drains,
// slows, partitions and restarts cluster components underneath it, and
// the result must still match the simulated engine byte for byte on the
// flow value and every comparable per-round counter. Parity here is the
// strongest statement the repo can make about the recovery machinery:
// reassignment, drain hand-off, shuffle re-fetch, master-restart resume
// and (task, exec) submission dedupe all leave zero trace in the
// counters, exactly as DESIGN.md §7 requires.

// chaosParityKinds are the injections used for parity runs. CrashWorker
// is left out: abrupt crashes are covered separately by
// TestDistributedDifferentialWorkerCrash with a replacing harness, and
// here they would only shrink the fleet the remaining seeds run on.
func chaosParityKinds() []chaos.EventKind {
	return []chaos.EventKind{
		chaos.JoinWorker, chaos.DrainWorker, chaos.SlowWorker,
		chaos.PartitionWorker, chaos.RestartMaster,
	}
}

// chaosRun executes one FFMR computation against a supervised cluster
// while the runner fires the schedule from another goroutine, and
// returns the result plus the applied-event log.
func chaosRun(t *testing.T, in *graph.Input, variant Variant, sched chaos.Schedule) (*Result, []string) {
	t.Helper()
	sup, err := chaos.StartSupervisor(chaos.SupervisorConfig{Workers: 3, Tracer: trace.New()})
	if err != nil {
		t.Fatalf("StartSupervisor: %v", err)
	}
	defer sup.Close()

	runner := chaos.NewRunner(sup, sched)
	runnerDone := make(chan []string, 1)
	go func() { runnerDone <- runner.Run() }()

	distC := testCluster(3)
	distC.Distributed = sup
	res, err := Run(distC, in, Options{Variant: variant, DeterministicAccept: true})
	applied := <-runnerDone
	if err != nil {
		t.Fatalf("distributed run under chaos: %v\napplied events:\n  %v", err, applied)
	}
	return res, applied
}

// TestChaosSeededDifferentialParity runs ten fixed chaos seeds, rotating
// through every FFMR variant, and requires distributed-vs-simulated
// parity under each schedule. The seeds are fixed so a failure is
// reproducible: re-run with the same seed and the runner fires the same
// events against the same fleet shape.
func TestChaosSeededDifferentialParity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential harness is slow; skipped with -short")
	}
	tc := diffCase{name: "chaos-ws120", seed: 61}
	in, err := graphgen.WattsStrogatz(120, 6, 0.1, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 5, tc.seed+1)
	want := oracleValue(t, tc, in)

	variants := allVariants()
	simRes := make(map[Variant]*Result, len(variants))
	for _, v := range variants {
		res, err := Run(testCluster(3), in, Options{Variant: v, DeterministicAccept: true})
		if err != nil {
			t.Fatalf("simulated %s run: %v", v, err)
		}
		simRes[v] = res
	}

	for i, seed := range []int64{101, 102, 103, 104, 105, 106, 107, 108, 109, 110} {
		variant := variants[i%len(variants)]
		sched := chaos.Generate(seed, chaos.Profile{
			Events:   5,
			Horizon:  800 * time.Millisecond,
			Kinds:    chaosParityKinds(),
			MaxSlot:  5,
			MaxDelay: 20 * time.Millisecond,
			MaxFor:   200 * time.Millisecond,
		})
		t.Run(variant.String(), func(t *testing.T) {
			distRes, applied := chaosRun(t, in, variant, sched)
			t.Logf("seed %d applied events:", seed)
			for _, line := range applied {
				t.Logf("  %s", line)
			}
			checkBackendParity(t, want, simRes[variant], distRes)
		})
	}
}

// TestChaosMasterRestartRecovery kills the master mid-computation (an
// explicit schedule, not a generated one, so the restart lands while
// rounds are in flight) and requires the job to complete against the
// replacement generations with full counter parity. Identical accepted
// counts per round are exactly the (task, exec) dedupe invariant of
// DESIGN.md §7: if a restarted master re-ran a completed reduce, or a
// retried round double-submitted to aug_proc, the accepted counters
// would diverge from the simulated run.
func TestChaosMasterRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential harness is slow; skipped with -short")
	}
	tc := diffCase{name: "chaos-restart-ws120", seed: 67}
	in, err := graphgen.WattsStrogatz(120, 6, 0.1, tc.seed)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	graphgen.RandomCapacities(in, 5, tc.seed+1)
	want := oracleValue(t, tc, in)

	simRes, err := Run(testCluster(3), in, Options{Variant: FF2, DeterministicAccept: true})
	if err != nil {
		t.Fatalf("simulated run: %v", err)
	}

	sched := chaos.Schedule{Events: []chaos.Event{
		{At: 150 * time.Millisecond, Kind: chaos.RestartMaster},
		{At: 450 * time.Millisecond, Kind: chaos.RestartMaster},
	}}
	sup, err := chaos.StartSupervisor(chaos.SupervisorConfig{Workers: 3, Tracer: trace.New()})
	if err != nil {
		t.Fatalf("StartSupervisor: %v", err)
	}
	defer sup.Close()

	runner := chaos.NewRunner(sup, sched)
	runnerDone := make(chan []string, 1)
	go func() { runnerDone <- runner.Run() }()

	distC := testCluster(3)
	distC.Distributed = sup
	distRes, err := Run(distC, in, Options{Variant: FF2, DeterministicAccept: true})
	applied := <-runnerDone
	if err != nil {
		t.Fatalf("distributed run across master restarts: %v\napplied events:\n  %v", err, applied)
	}
	if g := sup.Generation(); g < 2 {
		t.Errorf("master generation = %d, want >= 2 (restart never fired?)", g)
	}
	checkBackendParity(t, want, simRes, distRes)
}

var _ mapreduce.Backend = (*chaos.Supervisor)(nil)
