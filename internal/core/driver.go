package core

import (
	"fmt"
	"time"

	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/trace"
)

// RoundStat captures one round of execution. The fields correspond to
// the columns of the paper's Table I: accepted augmenting paths
// (A-Paths), the maximum aug_proc queue length (MaxQ), the number of
// intermediate records emitted by mappers (Map Out), the bytes shuffled
// between map and reduce (Shuffle), and the round's runtime.
type RoundStat struct {
	Round int

	// APaths is the number of augmenting paths accepted this round.
	APaths int64
	// Submitted is the number of candidate augmenting paths offered.
	Submitted int64
	// MaxQueue is the largest aug_proc queue length observed (0 for FF1
	// and for round 0).
	MaxQueue int64
	// FlowDelta is the flow value added by this round's accepted paths.
	FlowDelta int64

	SourceMove int64
	SinkMove   int64
	// ActiveVertices counts vertices holding at least one excess path at
	// the round's end — the paper's available-parallelism measure.
	ActiveVertices int64

	MapOutRecords  int64
	MapOutBytes    int64
	ShuffleBytes   int64
	MaxRecordBytes int64
	// MaxGroupBytes is the largest reduce group of the round — the
	// paper's "size of the biggest record": in FF1 the sink vertex's
	// group holds every candidate augmenting path.
	MaxGroupBytes int64
	OutputBytes   int64

	SimTime  time.Duration
	WallTime time.Duration
}

// Result is the outcome of an FFMR run.
type Result struct {
	Variant Variant
	// MaxFlow is the computed maximum flow value.
	MaxFlow int64
	// Rounds is the number of max-flow rounds executed, excluding the
	// round #0 graph conversion (matching how the paper counts rounds).
	Rounds int
	// Converged reports whether the termination rule fired before
	// Options.MaxRounds.
	Converged bool
	// RoundStats has one entry per executed round; index 0 is round #0.
	RoundStats []RoundStat

	TotalSimTime  time.Duration
	TotalWallTime time.Duration

	// InputGraphBytes is the converted graph's size in the DFS after
	// round #0 (the paper's "Size" column); MaxGraphBytes is the largest
	// per-round graph size observed (the "Max Size" column), which grows
	// as vertices accumulate excess paths.
	InputGraphBytes int64
	MaxGraphBytes   int64

	// RunSpan is the run's trace span when Options.Tracer was set (nil
	// otherwise). trace.RoundSummariesUnder(RunSpan) yields the same
	// per-round metrics as RoundStats — for rounds executed by this
	// invocation; rounds replayed from a resume checkpoint predate the
	// tracer and appear only in RoundStats.
	RunSpan *trace.Span
}

func roundPrefix(prefix string, round int) string {
	return fmt.Sprintf("%sround-%05d/", prefix, round)
}

func deltaName(prefix string, round int) string {
	return fmt.Sprintf("%sdeltas-%05d", prefix, round)
}

// Run executes the FFMR algorithm selected by opts on the given cluster,
// implementing the multi-round main program of Fig. 2. The input graph
// is written to the DFS, converted by round #0, and processed by
// max-flow rounds until the termination rule fires.
func Run(cluster *mapreduce.Cluster, in *graph.Input, opts Options) (*Result, error) {
	opts.applyDefaults(cluster.Nodes * cluster.SlotsPerNode)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if res, handled, err := dispatchEngine(cluster, in, opts); handled {
		return res, err
	}
	feat := opts.Variant.features()
	fs := cluster.FS
	prefix := opts.PathPrefix

	tr := opts.Tracer
	if tr != nil {
		// Job/phase/task spans of every round nest under this run.
		cluster.Tracer = tr
	}
	if opts.Log != nil {
		cluster.Log = opts.Log
	}
	log := obsv.Or(opts.Log).With("run", fmt.Sprintf("ffmr-%s", opts.Variant))
	log.Info("run start", "variant", opts.Variant.String(),
		"reducers", opts.Reducers, "max_rounds", opts.MaxRounds,
		"distributed", cluster.Distributed != nil)
	runSpan := tr.Start(trace.CatRun, fmt.Sprintf("ffmr-%s", opts.Variant), nil)
	runSpan.SetStr("variant", opts.Variant.String())
	result := &Result{Variant: opts.Variant, RunSpan: runSpan}
	defer func() {
		runSpan.SetInt("max_flow", result.MaxFlow)
		runSpan.SetInt("rounds", int64(result.Rounds))
		runSpan.End()
	}()

	startRound := 1

	if opts.Resume && fs.Exists(checkpointName(prefix)) {
		cp, err := readCheckpoint(fs, prefix)
		if err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		if cp.Variant != opts.Variant || cp.Reducers != opts.Reducers {
			return nil, fmt.Errorf("core: resume: checkpoint is %s with %d reducers, run is %s with %d",
				cp.Variant, cp.Reducers, opts.Variant, opts.Reducers)
		}
		result.MaxFlow = cp.MaxFlow
		result.Rounds = cp.Round
		result.RoundStats = cp.Stats
		result.Converged = cp.Converged
		for _, s := range cp.Stats {
			if s.Round == 0 {
				result.InputGraphBytes = s.OutputBytes
			}
			if s.OutputBytes > result.MaxGraphBytes {
				result.MaxGraphBytes = s.OutputBytes
			}
		}
		if cp.Converged {
			for i := range result.RoundStats {
				result.TotalSimTime += result.RoundStats[i].SimTime
				result.TotalWallTime += result.RoundStats[i].WallTime
			}
			return result, nil
		}
		startRound = cp.Round + 1
		if !fs.Exists(deltaName(prefix, startRound)) {
			return nil, fmt.Errorf("core: resume: AugmentedEdges file for round %d is missing", startRound)
		}
	} else {
		fs.DeletePrefix(prefix)

		inputs, err := WriteInput(fs, prefix, in, cluster.Nodes*2)
		if err != nil {
			return nil, err
		}

		// Round #0: convert the edge list into vertex records.
		round0Span := tr.Start(trace.CatRound, "round-00000", runSpan)
		job0 := &mapreduce.Job{
			Name:         "ffmr-round-0-convert",
			Round:        0,
			Inputs:       inputs,
			OutputPrefix: roundPrefix(prefix, 0),
			NumReducers:  opts.Reducers,
			Parent:       round0Span,
			NewMapper:    func() mapreduce.Mapper { return convertMapper{} },
			NewReducer: func() mapreduce.Reducer {
				return &convertReducer{
					source:        in.Source,
					sink:          in.Sink,
					bidirectional: !opts.DisableBidirectional,
					sentTracking:  feat.sentTracking,
				}
			},
			Spec: &mapreduce.JobSpec{Kind: KindFFConvert, Params: mustEncodeParams(&ffConvertParams{
				Source:        in.Source,
				Sink:          in.Sink,
				Bidirectional: !opts.DisableBidirectional,
				SentTracking:  feat.sentTracking,
			})},
		}
		res0, err := cluster.Run(job0)
		if err != nil {
			round0Span.End()
			return nil, err
		}
		stat0 := jobStat(0, res0, AugProcStats{})
		annotateRoundSpan(round0Span, stat0)
		round0Span.End()
		result.RoundStats = append(result.RoundStats, stat0)
		result.InputGraphBytes = res0.OutputBytes
		result.MaxGraphBytes = res0.OutputBytes

		// The first max-flow round sees an empty AugmentedEdges table.
		if err := fs.WriteFile(deltaName(prefix, 1), EncodeDeltas(nil)); err != nil {
			return nil, err
		}
		if err := writeCheckpoint(fs, prefix, &checkpoint{
			Variant: opts.Variant, Reducers: opts.Reducers, Round: 0,
			Stats: result.RoundStats,
		}); err != nil {
			return nil, err
		}
	}

	loop := &ffLoop{
		cluster: cluster, in: in, opts: opts, feat: feat,
		prefix: prefix, tr: tr, runSpan: runSpan, result: result,
	}
	if err := loop.run(startRound); err != nil {
		return nil, err
	}

	for i := range result.RoundStats {
		result.TotalSimTime += result.RoundStats[i].SimTime
		result.TotalWallTime += result.RoundStats[i].WallTime
	}
	if !result.Converged {
		return result, fmt.Errorf("core: %s did not converge within %d rounds", opts.Variant, opts.MaxRounds)
	}
	return result, nil
}

// ffLoop is the multi-round max-flow loop shared by the cold driver (Run)
// and the warm-restart driver (RunWarm). It owns the per-round job
// construction, acceptance collection, delta broadcasting, checkpointing
// and the termination rule; the two entry points differ only in how the
// round-0 state comes to exist and in which termination signal is sound.
type ffLoop struct {
	cluster *mapreduce.Cluster
	in      *graph.Input
	opts    Options
	feat    features
	prefix  string
	tr      *trace.Tracer
	runSpan *trace.Span
	result  *Result

	// warmBase, when non-empty, is the DFS prefix of the records consumed
	// by the first executed round instead of roundPrefix(prefix,
	// startRound-1): warm restarts read state produced outside the
	// round-NNNNN chain (by the dynamic-update apply/drain jobs).
	warmBase string
	// warm switches the termination rule to the warm-restart one; see
	// run. Cold runs must keep the paper's source/sink-move rule
	// byte-identical, so this is never inferred.
	warm bool
}

func (l *ffLoop) run(startRound int) error {
	opts, feat, prefix := l.opts, l.feat, l.prefix
	fs := l.cluster.FS
	result := l.result
	log := obsv.Or(opts.Log).With("run", fmt.Sprintf("ffmr-%s", opts.Variant))
	// Live progress gauges/counters: published to the tracer's registry
	// as each round completes, so /metrics and the watch dashboard track
	// the run in flight (nil-safe when no tracer is configured).
	reg := l.tr.Registry()

	var aug *AugProcServer
	if feat.augProc {
		var err error
		aug, err = NewAugProcServer()
		if err != nil {
			return err
		}
		aug.SetTracer(l.tr)
		aug.SetLogger(opts.Log)
		aug.SetDeterministic(opts.DeterministicAccept)
		defer aug.Close() //nolint:errcheck // shutdown of a loopback listener
	}

	// On a distributed backend the FF1 sink reducer runs on a worker, so
	// its acceptance outcome travels back over a collector server, the
	// FF1 counterpart of aug_proc.
	var ff1srv *ff1CollectorServer
	if l.cluster.Distributed != nil && !feat.augProc {
		var err error
		ff1srv, err = newFF1CollectorServer()
		if err != nil {
			return err
		}
		defer ff1srv.Close() //nolint:errcheck // shutdown of a loopback listener
	}

	for round := startRound; round <= opts.MaxRounds; round++ {
		roundSpan := l.tr.Start(trace.CatRound, fmt.Sprintf("round-%05d", round), l.runSpan)
		cfg := &runConfig{
			opts:       opts,
			feat:       feat,
			source:     l.in.Source,
			sink:       l.in.Sink,
			deltasFile: deltaName(prefix, round),
		}

		var service any
		var collector *ff1Collector
		var client *AugProcClient
		if feat.augProc {
			aug.BeginRound(round)
			c, err := DialAugProc(aug.Addr())
			if err != nil {
				roundSpan.End()
				return err
			}
			client = c
			service = client
		} else {
			collector = newFF1Collector()
			service = collector
			if ff1srv != nil {
				ff1srv.setCollector(collector)
			}
		}

		basePrefix := roundPrefix(prefix, round-1)
		if round == startRound && l.warmBase != "" {
			basePrefix = l.warmBase
		}
		job := &mapreduce.Job{
			Name:         fmt.Sprintf("ffmr-%s-round-%d", opts.Variant, round),
			Round:        round,
			Inputs:       fs.List(basePrefix),
			OutputPrefix: roundPrefix(prefix, round),
			NumReducers:  opts.Reducers,
			SideFiles:    []string{cfg.deltasFile},
			Schimmy:      feat.schimmy,
			SchimmyBase:  basePrefix,
			Service:      service,
			Parent:       roundSpan,
			NewMapper:    func() mapreduce.Mapper { return newFFMapper(cfg) },
			NewReducer:   func() mapreduce.Reducer { return newFFReducer(cfg) },
		}
		if opts.UseCombiner {
			job.NewCombiner = newFFCombiner
		}
		svcAddr := ""
		if feat.augProc {
			svcAddr = aug.Addr()
		} else if ff1srv != nil {
			svcAddr = ff1srv.Addr()
		}
		job.Spec = &mapreduce.JobSpec{Kind: KindFFRound, Params: mustEncodeParams(&ffRoundParams{
			Variant:     opts.Variant,
			K:           opts.K,
			Source:      l.in.Source,
			Sink:        l.in.Sink,
			DeltasFile:  cfg.deltasFile,
			UseCombiner: opts.UseCombiner,
			ServiceAddr: svcAddr,
		})}
		res, err := l.cluster.Run(job)
		if client != nil {
			client.Close() //nolint:errcheck // loopback connection teardown
		}
		if err != nil {
			roundSpan.End()
			return err
		}

		var st AugProcStats
		var deltas map[graph.EdgeID]int64
		if feat.augProc {
			st, deltas = aug.EndRound()
		} else {
			st, deltas = collector.round()
		}
		result.MaxFlow += st.TotalDelta
		result.Rounds = round

		if err := fs.WriteFile(deltaName(prefix, round+1), EncodeDeltas(deltas)); err != nil {
			roundSpan.End()
			return err
		}

		stat := jobStat(round, res, st)
		annotateRoundSpan(roundSpan, stat)
		roundSpan.End()
		result.RoundStats = append(result.RoundStats, stat)
		reg.Gauge(trace.GaugeFFRound).Set(int64(round))
		reg.Gauge(trace.GaugeFFMaxFlow).Set(result.MaxFlow)
		reg.Gauge(trace.GaugeFFActive).Set(stat.ActiveVertices)
		reg.Counter(trace.CounterFFAPaths).Add(stat.APaths)
		reg.Counter(trace.CounterFFSubmitted).Add(stat.Submitted)
		reg.Counter(trace.CounterFFRounds).Add(1)
		log.Info("round done", "round", round,
			"a_paths", stat.APaths, "flow_delta", stat.FlowDelta,
			"max_flow", result.MaxFlow, "active", stat.ActiveVertices,
			"shuffle_bytes", stat.ShuffleBytes, "sim", stat.SimTime)
		if opts.RoundCallback != nil {
			opts.RoundCallback(stat)
		}
		if res.OutputBytes > result.MaxGraphBytes {
			result.MaxGraphBytes = res.OutputBytes
		}

		if !opts.KeepIntermediate && round >= 2 {
			fs.DeletePrefix(roundPrefix(prefix, round-2))
			fs.Delete(deltaName(prefix, round-1))
		}

		if l.warm {
			// Warm termination. A warm restart starts from records already
			// holding excess paths, so the movement counters of Fig. 4 —
			// which fire only on a vertex's 0 -> nonzero path transition —
			// can read zero while extensions are still propagating through
			// vertices that merely *grew* their path sets. Stopping on them
			// would abandon in-flight augmentation. Instead the loop stops
			// at a fixpoint: no vertex added any excess path this round and
			// no augmenting path was accepted. The next round would then
			// see an empty AugmentedEdges table and byte-identical records,
			// so no future round can ever make progress.
			if res.Counter("source paths added")+res.Counter("sink paths added") == 0 &&
				st.Accepted == 0 {
				result.Converged = true
			}
		} else {
			// Termination (Fig. 2 line 10): stop once either search is
			// quiescent. The strict rule also requires the round to have
			// accepted nothing, so it never stops mid-progress and leaves no
			// unapplied flow deltas. With bi-directional search disabled the
			// sink never moves, so only the source counter is consulted.
			som := res.Counter("source move")
			sim := res.Counter("sink move")
			quiescent := som == 0 || sim == 0
			if opts.DisableBidirectional {
				quiescent = som == 0
			}
			switch opts.Termination {
			case TerminationPaper:
				if quiescent {
					result.Converged = true
				}
			case TerminationStrict:
				if quiescent && st.Accepted == 0 {
					result.Converged = true
				}
			}
		}
		if err := writeCheckpoint(fs, prefix, &checkpoint{
			Variant: opts.Variant, Reducers: opts.Reducers, Round: round,
			MaxFlow: result.MaxFlow, Converged: result.Converged,
			Stats: result.RoundStats,
		}); err != nil {
			return err
		}
		if result.Converged {
			break
		}
	}
	log.Info("run done", "max_flow", result.MaxFlow,
		"rounds", result.Rounds, "converged", result.Converged)
	return nil
}

// annotateRoundSpan writes a round's Table I metrics onto its trace
// span. The stats tables and the exported trace file are both derived
// from these values, so they can never disagree.
func annotateRoundSpan(sp *trace.Span, rs RoundStat) {
	sp.SetInt(trace.AttrRound, int64(rs.Round))
	sp.SetInt(trace.AttrAPaths, rs.APaths)
	sp.SetInt(trace.AttrSubmitted, rs.Submitted)
	sp.SetInt(trace.AttrMaxQueue, rs.MaxQueue)
	sp.SetInt(trace.AttrFlowDelta, rs.FlowDelta)
	sp.SetInt(trace.AttrSourceMove, rs.SourceMove)
	sp.SetInt(trace.AttrSinkMove, rs.SinkMove)
	sp.SetInt(trace.AttrActiveVertices, rs.ActiveVertices)
	sp.SetInt(trace.AttrMapOutRecords, rs.MapOutRecords)
	sp.SetInt(trace.AttrMapOutBytes, rs.MapOutBytes)
	sp.SetInt(trace.AttrShuffleBytes, rs.ShuffleBytes)
	sp.SetInt(trace.AttrMaxRecordBytes, rs.MaxRecordBytes)
	sp.SetInt(trace.AttrMaxGroupBytes, rs.MaxGroupBytes)
	sp.SetInt(trace.AttrOutputBytes, rs.OutputBytes)
	sp.SetInt(trace.AttrSimTimeUS, rs.SimTime.Microseconds())
}

func jobStat(round int, res *mapreduce.Result, st AugProcStats) RoundStat {
	return RoundStat{
		Round:          round,
		APaths:         st.Accepted,
		Submitted:      st.Submitted,
		MaxQueue:       st.MaxQueue,
		FlowDelta:      st.TotalDelta,
		SourceMove:     res.Counter("source move"),
		SinkMove:       res.Counter("sink move"),
		ActiveVertices: res.Counter("active vertices"),
		MapOutRecords:  res.MapOutputRecords,
		MapOutBytes:    res.MapOutputBytes,
		ShuffleBytes:   res.ShuffleBytes,
		MaxRecordBytes: res.MaxRecordBytes,
		MaxGroupBytes:  res.MaxGroupBytes,
		OutputBytes:    res.OutputBytes,
		SimTime:        res.SimTime,
		WallTime:       res.WallTime,
	}
}

// FinalGraphPrefix returns the DFS prefix of the last round's vertex
// records for a run configured with KeepIntermediate (used by tests and
// tools to inspect the final residual network).
func FinalGraphPrefix(opts Options, rounds int) string {
	prefix := opts.PathPrefix
	if prefix == "" {
		prefix = "ffmr/"
	}
	return roundPrefix(prefix, rounds)
}

// ReadVertices decodes every vertex record under a round prefix,
// returning a map from vertex ID to its value. Intended for validation
// and tooling, not for the data path.
func ReadVertices(fsys interface {
	List(prefix string) []string
	ReadFile(name string) ([]byte, error)
}, prefix string) (map[graph.VertexID]*graph.VertexValue, error) {
	out := make(map[graph.VertexID]*graph.VertexValue)
	for _, name := range fsys.List(prefix) {
		data, err := fsys.ReadFile(name)
		if err != nil {
			return nil, err
		}
		if err := decodeVertexFile(data, out); err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
	}
	return out, nil
}

func decodeVertexFile(data []byte, out map[graph.VertexID]*graph.VertexValue) error {
	r := dfs.NewRecordReader(data)
	for {
		key, value, ok, err := r.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		u, err := graph.DecodeKey(key)
		if err != nil {
			return err
		}
		v, err := graph.DecodeValue(value)
		if err != nil {
			return err
		}
		out[u] = v
	}
}
