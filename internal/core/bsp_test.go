package core

import (
	"math/rand"
	"testing"

	"ffmr/internal/graphgen"
	"ffmr/internal/maxflow"
)

func TestBSPPathGraph(t *testing.T) {
	res, err := RunBSP(pathGraph(5, 1), BSPOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != 1 {
		t.Fatalf("max flow = %d, want 1", res.MaxFlow)
	}
	if res.Supersteps < 3 {
		t.Errorf("supersteps = %d", res.Supersteps)
	}
}

func TestBSPMatchesDinicOnRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("random cross-check is slow")
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		n := 12 + rng.Intn(30)
		m := n + rng.Intn(3*n)
		in, err := graphgen.ErdosRenyi(n, m, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 1 {
			graphgen.RandomCapacities(in, 5, rng.Int63())
		}
		in.Source, in.Sink = graphgen.PickEndpoints(in)
		want := dinicValue(t, in)
		res, err := RunBSP(in, BSPOptions{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.MaxFlow != want {
			t.Fatalf("trial %d: BSP = %d, dinic = %d (n=%d m=%d)", trial, res.MaxFlow, want, n, m)
		}
	}
}

func TestBSPSmallWorldSuperSourceSink(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(800, 4, 91)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 6, 6, 92)
	if err != nil {
		t.Fatal(err)
	}
	want := dinicValue(t, in)
	res, err := RunBSP(in, BSPOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != want {
		t.Fatalf("BSP = %d, dinic = %d", res.MaxFlow, want)
	}
	t.Logf("BSP: flow=%d supersteps=%d messages=%d bytes=%d",
		res.MaxFlow, res.Supersteps, res.Messages, res.MessageBytes)
}

func TestBSPAblations(t *testing.T) {
	base, err := graphgen.WattsStrogatz(300, 4, 0.1, 93)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 3, 3, 94)
	if err != nil {
		t.Fatal(err)
	}
	want := dinicValue(t, in)
	for _, opts := range []BSPOptions{
		{DisableSentTracking: true},
		{DisableBidirectional: true},
		{DisableSentTracking: true, DisableBidirectional: true, K: 2},
	} {
		res, err := RunBSP(in, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if res.MaxFlow != want {
			t.Fatalf("%+v: BSP = %d, want %d", opts, res.MaxFlow, want)
		}
	}
}

// TestBSPMessageVolumeBelowFF1Shuffle checks the structural claim behind
// the paper's Pregel conjecture: because vertex state persists across
// supersteps, master records never travel, so the BSP translation moves
// far less data than FF1/FF2 (whose master re-shuffle is what the
// schimmy pattern was invented to avoid).
func TestBSPMessageVolumeBelowFF1Shuffle(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(600, 4, 95)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 6, 96)
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := RunBSP(in, BSPOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := Run(testCluster(4), in, Options{Variant: FF1})
	if err != nil {
		t.Fatal(err)
	}
	if bsp.MaxFlow != mr.MaxFlow {
		t.Fatalf("BSP flow %d != MR flow %d", bsp.MaxFlow, mr.MaxFlow)
	}
	var mrShuffle int64
	for _, rs := range mr.RoundStats {
		mrShuffle += rs.ShuffleBytes
	}
	if bsp.MessageBytes >= mrShuffle {
		t.Errorf("BSP moved %d bytes, MR FF1 shuffled %d; expected BSP below",
			bsp.MessageBytes, mrShuffle)
	}
	// Rounds/supersteps are of the same order: the BSP run pays a small
	// constant number of extra steps for message lag and termination.
	if bsp.Supersteps > mr.Rounds*3+4 {
		t.Errorf("BSP took %d supersteps, MR took %d rounds", bsp.Supersteps, mr.Rounds)
	}
}

func TestBSPDisconnected(t *testing.T) {
	in := pathGraph(2, 1)
	in.NumVertices = 5
	in.Sink = 4 // vertex 4 has no edges at all
	res, err := RunBSP(in, BSPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != 0 {
		t.Fatalf("flow to isolated sink = %d", res.MaxFlow)
	}
}

func TestBSPInvalidInput(t *testing.T) {
	in := pathGraph(2, 1)
	in.Source = 99
	if _, err := RunBSP(in, BSPOptions{}); err == nil {
		t.Fatal("invalid input accepted")
	}
}

// TestBSPAgainstEdmondsKarp is a second-oracle check on capacitated
// graphs.
func TestBSPAgainstEdmondsKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	in, err := graphgen.ErdosRenyi(40, 140, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	graphgen.RandomCapacities(in, 9, rng.Int63())
	in.Source, in.Sink = graphgen.PickEndpoints(in)
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatal(err)
	}
	want := maxflow.EdmondsKarp(net, int(in.Source), int(in.Sink))
	res, err := RunBSP(in, BSPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != want {
		t.Fatalf("BSP = %d, edmonds-karp = %d", res.MaxFlow, want)
	}
}
