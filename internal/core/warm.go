package core

import (
	"fmt"

	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
	"ffmr/internal/trace"
)

// This file is the warm-restart entry point of the driver, used by
// internal/dynamic: instead of writing the input graph and converting it
// in round #0, the run starts from partition-aligned vertex records that
// already hold flow, residual capacities and excess paths — the output of
// a previous run after the dynamic-update apply/drain jobs rewrote it.

// WarmStart configures RunWarm.
type WarmStart struct {
	// StatePrefix is the DFS prefix holding the starting vertex records.
	// The files must be partition-aligned with Options.Reducers (they are
	// when produced by a job with the same reducer count on the same
	// cluster), because schimmy rounds merge-join against them.
	StatePrefix string
	// BaseFlow is the flow value already committed in the records; the
	// run's MaxFlow accumulates on top of it.
	BaseFlow int64
}

// RunWarm resumes FFMR from pre-existing warm state rather than from the
// input graph. The records under warm.StatePrefix play the role of round
// #0 output; the first max-flow round reads them with an empty
// AugmentedEdges table and augmentation continues until the warm
// fixpoint rule fires (see ffLoop.run). The input graph is used only for
// its source/sink designation and is not re-written to the DFS.
//
// Unlike Run, the caller must pass the same explicit Reducers count the
// state was produced with (a zero value is resolved from the cluster,
// which is only correct when the state came from the same cluster
// shape), and Resume is not supported. Options.Engine is ignored: a
// warm restart always re-augments with FFMR, which is valid from any
// engine's persisted state because every engine writes the same
// partition-aligned residual records (see WriteEngineState).
func RunWarm(cluster *mapreduce.Cluster, in *graph.Input, opts Options, warm WarmStart) (*Result, error) {
	opts.applyDefaults(cluster.Nodes * cluster.SlotsPerNode)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opts.Resume {
		return nil, fmt.Errorf("core: warm restart cannot resume from a checkpoint")
	}
	if warm.StatePrefix == "" {
		return nil, fmt.Errorf("core: warm restart needs a state prefix")
	}
	fs := cluster.FS
	if len(fs.List(warm.StatePrefix)) == 0 {
		return nil, fmt.Errorf("core: warm state prefix %q holds no records", warm.StatePrefix)
	}
	feat := opts.Variant.features()
	prefix := opts.PathPrefix

	tr := opts.Tracer
	if tr != nil {
		cluster.Tracer = tr
	}
	runSpan := tr.Start(trace.CatRun, fmt.Sprintf("ffmr-%s-warm", opts.Variant), nil)
	runSpan.SetStr("variant", opts.Variant.String())
	runSpan.SetInt(trace.AttrWarm, 1)
	result := &Result{Variant: opts.Variant, MaxFlow: warm.BaseFlow, RunSpan: runSpan}
	defer func() {
		runSpan.SetInt("max_flow", result.MaxFlow)
		runSpan.SetInt("rounds", int64(result.Rounds))
		runSpan.End()
	}()

	// Warm round 1 sees an empty AugmentedEdges table: any cancellation
	// deltas from the repair phase were already folded into the state
	// records by the drain job.
	if err := fs.WriteFile(deltaName(prefix, 1), EncodeDeltas(nil)); err != nil {
		return nil, err
	}

	loop := &ffLoop{
		cluster: cluster, in: in, opts: opts, feat: feat,
		prefix: prefix, tr: tr, runSpan: runSpan, result: result,
		warmBase: warm.StatePrefix, warm: true,
	}
	if err := loop.run(1); err != nil {
		return nil, err
	}

	for i := range result.RoundStats {
		result.TotalSimTime += result.RoundStats[i].SimTime
		result.TotalWallTime += result.RoundStats[i].WallTime
	}
	if !result.Converged {
		return result, fmt.Errorf("core: warm %s did not converge within %d rounds", opts.Variant, opts.MaxRounds)
	}
	return result, nil
}

// PendingDeltasFile names the AugmentedEdges file a completed run left
// unapplied: the deltas of round `rounds` were written for round
// rounds+1, which never executed. Under TerminationStrict the file
// encodes an empty table; under TerminationPaper it can hold the final
// round's accepted flow, which any consumer of the persisted records
// (dynamic updates, validation tooling) must fold in.
func PendingDeltasFile(opts Options, rounds int) string {
	prefix := opts.PathPrefix
	if prefix == "" {
		prefix = "ffmr/"
	}
	return deltaName(prefix, rounds+1)
}

// ApplyAugmentedEdges applies an AugmentedEdges table to one vertex
// record — adjacency halves plus every hop copy inside stored excess
// paths — then prunes paths left without residual capacity, returning
// how many were dropped. It is the MAP-function state transition of
// Fig. 3 lines 1-4 exposed for out-of-band delta application: the
// dynamic-update drain job uses it to fold flow-cancellation deltas into
// persisted records between runs.
func ApplyAugmentedEdges(v *graph.VertexValue, deltas map[graph.EdgeID]int64) int {
	return updateVertex(v, deltas)
}
