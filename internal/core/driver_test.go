package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/maxflow"
)

// testCluster builds a small simulated cluster with a fast cost model.
func testCluster(nodes int) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{Nodes: nodes, BlockSize: 16 << 10, Replication: 2})
	c := mapreduce.NewCluster(nodes, 4, fs)
	c.Cost = mapreduce.ZeroCostModel()
	return c
}

// dinicValue computes the ground-truth max flow of an input graph.
func dinicValue(t *testing.T, in *graph.Input) int64 {
	t.Helper()
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatalf("FromInput: %v", err)
	}
	return maxflow.Dinic(net, int(in.Source), int(in.Sink))
}

// pathGraph builds s - v1 - ... - vk - t with the given capacity.
func pathGraph(hops int, cap int64) *graph.Input {
	in := &graph.Input{NumVertices: hops + 1, Source: 0, Sink: graph.VertexID(hops)}
	for i := 0; i < hops; i++ {
		in.Edges = append(in.Edges, graph.InputEdge{
			U: graph.VertexID(i), V: graph.VertexID(i + 1), Cap: cap,
		})
	}
	return in
}

func allVariants() []Variant { return []Variant{FF1, FF2, FF3, FF4, FF5} }

func TestRunPathGraph(t *testing.T) {
	for _, variant := range allVariants() {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			cluster := testCluster(3)
			in := pathGraph(4, 1)
			res, err := Run(cluster, in, Options{Variant: variant})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.MaxFlow != 1 {
				t.Fatalf("max flow = %d, want 1", res.MaxFlow)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
		})
	}
}

func TestRunDiamondGraph(t *testing.T) {
	// s has two disjoint length-2 routes to t plus a cross edge; classic
	// case where augmenting-path choice matters.
	in := &graph.Input{
		NumVertices: 4,
		Source:      0,
		Sink:        3,
		Edges: []graph.InputEdge{
			{U: 0, V: 1, Cap: 1}, {U: 0, V: 2, Cap: 1},
			{U: 1, V: 3, Cap: 1}, {U: 2, V: 3, Cap: 1},
			{U: 1, V: 2, Cap: 1},
		},
	}
	want := dinicValue(t, in)
	for _, variant := range allVariants() {
		t.Run(variant.String(), func(t *testing.T) {
			res, err := Run(testCluster(2), in, Options{Variant: variant})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.MaxFlow != want {
				t.Fatalf("max flow = %d, want %d", res.MaxFlow, want)
			}
		})
	}
}

func TestRunDisconnected(t *testing.T) {
	in := &graph.Input{
		NumVertices: 4,
		Source:      0,
		Sink:        3,
		Edges: []graph.InputEdge{
			{U: 0, V: 1, Cap: 5},
			{U: 2, V: 3, Cap: 5},
		},
	}
	for _, variant := range allVariants() {
		t.Run(variant.String(), func(t *testing.T) {
			res, err := Run(testCluster(2), in, Options{Variant: variant})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.MaxFlow != 0 {
				t.Fatalf("max flow = %d, want 0", res.MaxFlow)
			}
		})
	}
}

func TestRunMatchesDinicOnRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("random cross-check is slow")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 12 + rng.Intn(24)
		m := n + rng.Intn(3*n)
		in, err := graphgen.ErdosRenyi(n, m, rng.Int63())
		if err != nil {
			t.Fatalf("ErdosRenyi: %v", err)
		}
		if trial%2 == 1 {
			graphgen.RandomCapacities(in, 5, rng.Int63())
		}
		in.Source, in.Sink = graphgen.PickEndpoints(in)
		want := dinicValue(t, in)
		for _, variant := range allVariants() {
			t.Run(fmt.Sprintf("trial%d/%s", trial, variant), func(t *testing.T) {
				res, err := Run(testCluster(2), in, Options{Variant: variant})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if res.MaxFlow != want {
					t.Fatalf("max flow = %d, want %d (n=%d m=%d)", res.MaxFlow, want, n, len(in.Edges))
				}
			})
		}
	}
}

func TestRunSmallWorldSuperSourceSink(t *testing.T) {
	if testing.Short() {
		t.Skip("small-world run is slow")
	}
	base, err := graphgen.WattsStrogatz(300, 6, 0.1, 42)
	if err != nil {
		t.Fatalf("WattsStrogatz: %v", err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 5, 43)
	if err != nil {
		t.Fatalf("AttachSuperSourceSink: %v", err)
	}
	want := dinicValue(t, in)
	if want == 0 {
		t.Fatal("test graph has zero max flow; want positive")
	}
	for _, variant := range allVariants() {
		t.Run(variant.String(), func(t *testing.T) {
			res, err := Run(testCluster(4), in, Options{Variant: variant})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.MaxFlow != want {
				t.Fatalf("max flow = %d, want %d", res.MaxFlow, want)
			}
			t.Logf("%s: flow=%d rounds=%d", variant, res.MaxFlow, res.Rounds)
		})
	}
}

func TestRunWithCombinerMatches(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(400, 3, 51)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 4, 52)
	if err != nil {
		t.Fatalf("AttachSuperSourceSink: %v", err)
	}
	want := dinicValue(t, in)
	for _, variant := range allVariants() {
		t.Run(variant.String(), func(t *testing.T) {
			res, err := Run(testCluster(3), in, Options{Variant: variant, UseCombiner: true})
			if err != nil {
				t.Fatalf("Run with combiner: %v", err)
			}
			if res.MaxFlow != want {
				t.Fatalf("combiner changed the result: %d, want %d", res.MaxFlow, want)
			}
		})
	}
}

func TestRunUnderInjectedFaults(t *testing.T) {
	// The multi-round driver must survive worker crashes when the engine
	// retries task attempts, and still compute the exact max flow.
	base, err := graphgen.WattsStrogatz(200, 4, 0.1, 61)
	if err != nil {
		t.Fatalf("WattsStrogatz: %v", err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 3, 3, 62)
	if err != nil {
		t.Fatalf("AttachSuperSourceSink: %v", err)
	}
	want := dinicValue(t, in)
	for _, variant := range []Variant{FF1, FF3, FF5} {
		t.Run(variant.String(), func(t *testing.T) {
			cluster := testCluster(3)
			cluster.Fault = mapreduce.Faults{MaxAttempts: 12, FailureRate: 0.15, Seed: 63}
			res, err := Run(cluster, in, Options{Variant: variant})
			if err != nil {
				t.Fatalf("Run under faults: %v", err)
			}
			if res.MaxFlow != want {
				t.Fatalf("max flow = %d, want %d", res.MaxFlow, want)
			}
		})
	}
}

// TestFF2ShrinksBiggestRecord checks the first benefit the paper claims
// for aug_proc (Section IV-A): "it shrinks the size of the largest
// record, [which] can be extremely large as it contains all the
// augmenting path candidates". FF1 funnels every candidate through the
// sink vertex's record; FF2 routes them out-of-band.
func TestFF2ShrinksBiggestRecord(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(800, 4, 41)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 8, 6, 42)
	if err != nil {
		t.Fatalf("AttachSuperSourceSink: %v", err)
	}
	maxGroup := func(variant Variant) int64 {
		res, err := Run(testCluster(3), in, Options{Variant: variant})
		if err != nil {
			t.Fatalf("Run %s: %v", variant, err)
		}
		var max int64
		for _, rs := range res.RoundStats[1:] { // skip conversion round
			if rs.MaxGroupBytes > max {
				max = rs.MaxGroupBytes
			}
		}
		return max
	}
	ff1, ff2 := maxGroup(FF1), maxGroup(FF2)
	// FF1's sink group holds every shuffled candidate; FF2's biggest
	// group is an ordinary vertex. The gap should be substantial.
	if ff2*2 >= ff1 {
		t.Errorf("FF2 biggest reduce group %d not well below FF1's %d", ff2, ff1)
	}
}

// TestActiveVerticesProfile checks the paper's parallelism narrative:
// speculative execution plus bi-directional search keeps the number of
// active vertices growing over the early rounds.
func TestActiveVerticesProfile(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(600, 4, 43)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 6, 44)
	if err != nil {
		t.Fatalf("AttachSuperSourceSink: %v", err)
	}
	res, err := Run(testCluster(3), in, Options{Variant: FF5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var peak int64
	for _, rs := range res.RoundStats {
		if rs.ActiveVertices > peak {
			peak = rs.ActiveVertices
		}
	}
	if peak < int64(in.NumVertices)/2 {
		t.Errorf("peak active vertices %d below half the graph (%d); parallelism techniques ineffective",
			peak, in.NumVertices)
	}
	// Early rounds must grow the active set.
	if len(res.RoundStats) > 3 && res.RoundStats[2].ActiveVertices <= res.RoundStats[1].ActiveVertices {
		t.Errorf("active set not growing: round1=%d round2=%d",
			res.RoundStats[1].ActiveVertices, res.RoundStats[2].ActiveVertices)
	}
}

// TestPaperTerminationSweep empirically checks the paper's Fig. 2
// stopping rule across a batch of small-world workloads: it must always
// reach the true maximum flow (this is the paper's implicit soundness
// claim for the movement-counter heuristic on small-world graphs, which
// we document in EXPERIMENTS.md).
func TestPaperTerminationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("termination sweep is slow")
	}
	rng := rand.New(rand.NewSource(313))
	for trial := 0; trial < 6; trial++ {
		// Alternate generator families.
		var workload *graph.Input
		var err error
		switch trial % 3 {
		case 0:
			workload, err = graphgen.BarabasiAlbert(300+rng.Intn(300), 3, rng.Int63())
		case 1:
			workload, err = graphgen.WattsStrogatz(300+rng.Intn(300), 6, 0.15, rng.Int63())
		default:
			workload, err = graphgen.RMAT(9, 6, rng.Int63())
		}
		if err != nil {
			t.Fatal(err)
		}
		wl, err := graphgen.AttachSuperSourceSink(workload, 3, 4, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		want := dinicValue(t, wl)
		res, err := Run(testCluster(3), wl, Options{Variant: FF5, Termination: TerminationPaper})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.MaxFlow != want {
			t.Errorf("trial %d: paper termination reached %d, true max flow %d",
				trial, res.MaxFlow, want)
		}
	}
}

func TestRunPaperTermination(t *testing.T) {
	// The paper's Fig. 2 termination rule must agree with the strict rule
	// on the evaluation workloads (small-world graphs with super
	// source/sink), which is the paper's implicit correctness claim.
	base, err := graphgen.BarabasiAlbert(500, 4, 71)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 6, 72)
	if err != nil {
		t.Fatalf("AttachSuperSourceSink: %v", err)
	}
	want := dinicValue(t, in)
	res, err := Run(testCluster(3), in, Options{Variant: FF5, Termination: TerminationPaper})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MaxFlow != want {
		t.Fatalf("paper termination stopped early: flow %d, want %d", res.MaxFlow, want)
	}
	// The strict rule agrees on the value (round counts are sampled from
	// independent nondeterministic runs, so they are not compared).
	strict, err := Run(testCluster(3), in, Options{Variant: FF5})
	if err != nil {
		t.Fatalf("strict run: %v", err)
	}
	if strict.MaxFlow != want {
		t.Fatalf("strict run flow %d, want %d", strict.MaxFlow, want)
	}
}

func TestRoundCallback(t *testing.T) {
	in := pathGraph(4, 1)
	var rounds []int
	res, err := Run(testCluster(2), in, Options{
		Variant:       FF2,
		RoundCallback: func(rs RoundStat) { rounds = append(rounds, rs.Round) },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rounds) != res.Rounds {
		t.Fatalf("callback fired %d times for %d rounds", len(rounds), res.Rounds)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("callback order: %v", rounds)
		}
	}
}

// TestSoakLargeSmallWorld is a larger end-to-end run covering the MR and
// BSP engines on one 20K-vertex scale-free workload against the oracle.
func TestSoakLargeSmallWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	base, err := graphgen.BarabasiAlbert(20_000, 4, 1001)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 16, 8, 1002)
	if err != nil {
		t.Fatal(err)
	}
	want := dinicValue(t, in)
	if want < 100 {
		t.Fatalf("workload too easy: |f*| = %d", want)
	}
	mr, err := Run(testCluster(4), in, Options{Variant: FF5})
	if err != nil {
		t.Fatal(err)
	}
	if mr.MaxFlow != want {
		t.Fatalf("MR FF5 = %d, want %d", mr.MaxFlow, want)
	}
	bsp, err := RunBSP(in, BSPOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if bsp.MaxFlow != want {
		t.Fatalf("BSP = %d, want %d", bsp.MaxFlow, want)
	}
	t.Logf("soak: |f*|=%d, MR %d rounds, BSP %d supersteps", want, mr.Rounds, bsp.Supersteps)
}

func TestRunBFSBaseline(t *testing.T) {
	in := pathGraph(5, 1)
	res, err := RunBFS(testCluster(2), in, 0, "")
	if err != nil {
		t.Fatalf("RunBFS: %v", err)
	}
	if res.SinkDist != 5 {
		t.Fatalf("sink dist = %d, want 5", res.SinkDist)
	}
	if res.Visited != 6 {
		t.Fatalf("visited = %d, want 6", res.Visited)
	}
}
