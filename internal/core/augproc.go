package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log/slog"
	"net"
	"net/rpc"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ffmr/internal/graph"
	"ffmr/internal/obsv"
	"ffmr/internal/rpcutil"
	"ffmr/internal/trace"
)

// Metric names the aug_proc server registers on a tracer's registry.
const (
	// MetricAugQueueDepth is the queue-depth gauge; its high-water mark
	// is the paper's MaxQ.
	MetricAugQueueDepth = "augproc queue depth"
	// MetricAugAcceptNS accumulates nanoseconds the consumer spent
	// deciding acceptance, and MetricAugBatches the number of submitted
	// batches — their ratio is the mean accept latency per batch.
	MetricAugAcceptNS = "augproc accept ns"
	MetricAugBatches  = "augproc batches"
	// HistAugAcceptNS is the per-batch accept-latency histogram: the
	// distribution behind the MetricAugAcceptNS/MetricAugBatches mean.
	HistAugAcceptNS = "augproc accept latency ns"
)

// This file implements aug_proc, the FF2 "stateful extension for MR"
// (paper Section IV-A): an external process, reachable from every reducer
// over a persistent connection, that accepts candidate augmenting paths
// as they are found. Candidates are enqueued and acknowledged
// immediately so reducers are never delayed; a small pool of consumer
// goroutines drains the queue, decoding candidate batches in parallel
// outside the accumulator lock and serializing only the acceptance
// decision itself — the paper's single-consumer design kept FF2+ rounds
// gated on one goroutine's decode throughput. The paper implements the
// connection with Java RMI; this implementation uses net/rpc over TCP,
// which has the same persistent-connection, request/response semantics.

// SubmitArgs is the RPC request: a batch of wire-encoded candidate
// augmenting paths (graph.EncodePath format), tagged with the reduce
// task and execution id that produced it so deterministic mode can
// discard batches duplicated by task re-execution.
type SubmitArgs struct {
	// Round fences the submission to the round that produced it. A
	// reduce attempt orphaned by a master restart (its generation died,
	// but the worker keeps running it) can submit after the driver has
	// moved on — its candidates describe an older residual graph, and
	// accepting them into the current round would corrupt the flow.
	Round int
	Task  int
	Exec  int
	// Ctx is the submitting job's trace context (zero when the caller is
	// untraced, e.g. the in-process simulated engine). It identifies the
	// run/job/round that produced the batch for cross-process trace
	// stitching; Round above stays the authoritative staleness fence.
	Ctx   trace.Context
	Paths [][]byte
}

// SubmitReply is the (empty) RPC acknowledgement; Submit returns as soon
// as the batch is enqueued.
type SubmitReply struct{}

// AppendFrame implements rpcutil.Message: Submit is the hot RPC of
// every FF2+ round, so its envelope frames itself rather than riding
// the codec's gob fallback. DecodeFrame copies the path payloads out of
// the codec's pooled buffer.
func (a *SubmitArgs) AppendFrame(b []byte) []byte {
	b = binary.AppendVarint(b, int64(a.Round))
	b = binary.AppendVarint(b, int64(a.Task))
	b = binary.AppendVarint(b, int64(a.Exec))
	b = binary.AppendVarint(b, a.Ctx.Run)
	b = binary.AppendVarint(b, a.Ctx.Job)
	b = binary.AppendVarint(b, a.Ctx.Round)
	b = binary.AppendVarint(b, a.Ctx.Span)
	b = binary.AppendUvarint(b, uint64(len(a.Paths)))
	for _, p := range a.Paths {
		b = binary.AppendUvarint(b, uint64(len(p)))
		b = append(b, p...)
	}
	return b
}

// DecodeFrame implements rpcutil.Message.
func (a *SubmitArgs) DecodeFrame(b []byte) error {
	next := func(what string) (int64, error) {
		v, n := binary.Varint(b)
		if n <= 0 {
			return 0, fmt.Errorf("core: corrupt submit %s", what)
		}
		b = b[n:]
		return v, nil
	}
	var err error
	var v int64
	if v, err = next("round"); err != nil {
		return err
	}
	a.Round = int(v)
	if v, err = next("task"); err != nil {
		return err
	}
	a.Task = int(v)
	if v, err = next("exec"); err != nil {
		return err
	}
	a.Exec = int(v)
	if a.Ctx.Run, err = next("ctx run"); err != nil {
		return err
	}
	if a.Ctx.Job, err = next("ctx job"); err != nil {
		return err
	}
	if a.Ctx.Round, err = next("ctx round"); err != nil {
		return err
	}
	if a.Ctx.Span, err = next("ctx span"); err != nil {
		return err
	}
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)) {
		return fmt.Errorf("core: corrupt submit path count")
	}
	b = b[w:]
	a.Paths = nil
	if n > 0 {
		a.Paths = make([][]byte, n)
		for i := range a.Paths {
			m, w := binary.Uvarint(b)
			if w <= 0 || m > uint64(len(b)-w) {
				return fmt.Errorf("core: corrupt submit path %d", i)
			}
			b = b[w:]
			if m > 0 {
				a.Paths[i] = append([]byte(nil), b[:m]...)
			}
			b = b[m:]
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("core: %d trailing bytes after submit args", len(b))
	}
	return nil
}

// AppendFrame implements rpcutil.Message.
func (*SubmitReply) AppendFrame(b []byte) []byte { return b }

// DecodeFrame implements rpcutil.Message.
func (*SubmitReply) DecodeFrame(b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("core: %d trailing bytes after submit reply", len(b))
	}
	return nil
}

// AugProcStats reports one round of aug_proc activity: the columns
// "A-Paths" and "MaxQ" of the paper's Table I.
type AugProcStats struct {
	// Submitted counts candidate paths received.
	Submitted int64
	// Accepted counts candidates the accumulator accepted (A-Paths).
	Accepted int64
	// TotalDelta is the flow added by accepted paths this round.
	TotalDelta int64
	// MaxQueue is the maximum processing-queue length observed (MaxQ).
	MaxQueue int64
	// DecodeErrors counts malformed submissions (always 0 in practice).
	DecodeErrors int64
}

type augItem struct {
	task  int
	exec  int
	paths [][]byte
}

// pendingSub is one buffered deterministic-mode submission. Batches are
// kept apart per (task, exec) so EndRound can keep exactly one complete
// execution per reduce task: a task re-executed after a worker death or
// as a speculative backup submits its candidates again, and counting
// both copies would skew Submitted/Accepted relative to the simulated
// engine's single-execution accounting.
type pendingSub struct {
	task  int
	exec  int
	paths [][]byte
}

// AugProcServer is the aug_proc service. Create with NewAugProcServer,
// drive with BeginRound/EndRound around each MapReduce round, and Close
// when the computation finishes.
type AugProcServer struct {
	listener net.Listener
	queue    chan augItem
	done     chan struct{}

	queued atomic.Int64 // paths currently enqueued
	maxQ   atomic.Int64
	round  atomic.Int64 // current round; stale submissions are dropped
	stale  atomic.Int64 // paths dropped for a round mismatch (cumulative)

	// Trace instrumentation, installed by SetTracer (atomic pointers so
	// RPC goroutines and the consumer need no extra locking; the nil
	// defaults are valid no-op handles).
	qGauge     atomic.Pointer[trace.Gauge]
	acceptNS   atomic.Pointer[trace.Counter]
	batches    atomic.Pointer[trace.Counter]
	acceptHist atomic.Pointer[trace.Histogram]

	// log, installed by SetLogger, receives per-round accept summaries
	// (atomic for the same reason as the trace handles).
	log atomic.Pointer[slog.Logger]

	// drainMu/drainCond/inFlight form the drain barrier: Submit counts a
	// batch in before enqueueing it, a consumer counts it out after
	// deciding it, and drain waits for the count to reach zero. With
	// multiple consumers a flush token through the queue would only
	// prove one consumer passed it; the counter proves every batch
	// enqueued before the barrier has been fully decided.
	drainMu   sync.Mutex
	drainCond *sync.Cond
	inFlight  int

	mu      sync.Mutex
	acc     Accumulator
	stats   AugProcStats
	serving bool

	// Deterministic mode (SetDeterministic): candidates are collected
	// here during the round and accepted in canonical byte order at
	// EndRound, instead of first-come-first-served as they arrive.
	deterministic bool
	pending       []pendingSub
}

// SetDeterministic toggles deterministic acceptance. The default (off)
// is the paper's policy: the consumer accepts candidates in arrival
// order, overlapping acceptance with the reduce phase — but arrival
// order across concurrently running reducers depends on scheduling, so
// when candidates conflict, which one wins varies run to run (the max
// flow is unaffected; per-round A-Paths are). With deterministic mode
// on, candidates are buffered during the round and accepted in sorted
// encoded-path order at EndRound, making every per-round counter except
// the timing-dependent MaxQueue reproducible. Queue accounting is
// unchanged, so MaxQ measurements remain meaningful in both modes.
func (s *AugProcServer) SetDeterministic(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deterministic = on
}

// SetTracer installs trace instrumentation: a queue-depth gauge (whose
// high-water mark is the paper's MaxQ) and accept-latency counters on
// the tracer's registry. Passing a nil tracer leaves the server
// uninstrumented.
func (s *AugProcServer) SetTracer(t *trace.Tracer) {
	reg := t.Registry()
	if reg == nil {
		return
	}
	s.qGauge.Store(reg.Gauge(MetricAugQueueDepth))
	s.acceptNS.Store(reg.Counter(MetricAugAcceptNS))
	s.batches.Store(reg.Counter(MetricAugBatches))
	s.acceptHist.Store(reg.Histogram(HistAugAcceptNS))
}

// SetLogger installs a structured logger that receives one summary
// event per round at EndRound. A nil logger silences it.
func (s *AugProcServer) SetLogger(l *slog.Logger) {
	s.log.Store(obsv.Or(l))
}

// logger returns the installed logger (the shared no-op when none is).
func (s *AugProcServer) logger() *slog.Logger {
	if l := s.log.Load(); l != nil {
		return l
	}
	return obsv.Nop()
}

// RPC service wrapper type so only Submit is exported over the wire.
type augProcService struct{ s *AugProcServer }

// Submit enqueues a batch of candidate augmenting paths and returns
// immediately (paper: "inserts them to a processing queue and returns
// immediately to avoid delaying the reducer").
func (svc *augProcService) Submit(args *SubmitArgs, _ *SubmitReply) error {
	s := svc.s
	if args.Round != int(s.round.Load()) {
		// Stale execution from an earlier round (see SubmitArgs.Round):
		// acknowledge and drop. The submitter's result is not going to be
		// used either way.
		s.stale.Add(int64(len(args.Paths)))
		return nil
	}
	n := int64(len(args.Paths))
	q := s.queued.Add(n)
	for {
		m := s.maxQ.Load()
		if q <= m || s.maxQ.CompareAndSwap(m, q) {
			break
		}
	}
	s.qGauge.Load().Set(q)
	s.drainMu.Lock()
	s.inFlight++
	s.drainMu.Unlock()
	s.queue <- augItem{task: args.Task, exec: args.Exec, paths: args.Paths}
	return nil
}

// NewAugProcServer starts an aug_proc server on a loopback TCP port.
func NewAugProcServer() (*AugProcServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: aug_proc listen: %w", err)
	}
	s := &AugProcServer{
		listener: ln,
		queue:    make(chan augItem, 4096),
		done:     make(chan struct{}),
	}
	s.drainCond = sync.NewCond(&s.drainMu)
	srv := rpc.NewServer()
	if err := srv.RegisterName("AugProc", &augProcService{s: s}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("core: aug_proc register: %w", err)
	}
	for i := 0; i < augConsumers(); i++ {
		go s.consume()
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeCodec(rpcutil.NewServerCodec(conn))
		}
	}()
	s.serving = true
	return s, nil
}

// Addr returns the server's listen address for clients to dial.
func (s *AugProcServer) Addr() string { return s.listener.Addr().String() }

// augConsumers sizes the consumer pool. More than a few goroutines buys
// nothing: decode parallelizes, but acceptance itself is serialized on
// the accumulator lock.
func augConsumers() int {
	if n := runtime.GOMAXPROCS(0); n < 4 {
		return n
	}
	return 4
}

// consume is one accumulator worker: it drains the processing queue,
// decoding candidate batches outside the lock so consumers overlap, then
// serializes only the acceptance decision on s.mu — there are still no
// data races on the accumulator, but its lock hold time is the Accept
// loop alone, not decode plus Accept (the paper's single-consumer design,
// sharded). Acceptance remains first-come-first-served per batch; which
// conflicting candidate wins already varied run to run with one consumer
// (arrival order is scheduling-dependent), so sharding changes nothing
// deterministic mode does not already fix.
func (s *AugProcServer) consume() {
	for {
		select {
		case item := <-s.queue:
			t0 := time.Now()
			s.mu.Lock()
			if s.deterministic {
				// Mode flips mid-round are unsupported (SetDeterministic is
				// pre-round configuration), so checking under the same lock
				// the EndRound flush takes is sufficient.
				s.pending = append(s.pending, pendingSub{task: item.task, exec: item.exec, paths: item.paths})
				s.mu.Unlock()
			} else {
				s.mu.Unlock()
				decoded, errs := decodeBatch(item.paths)
				s.mu.Lock()
				s.stats.DecodeErrors += errs
				for i := range decoded {
					s.stats.Submitted++
					if d := s.acc.Accept(&decoded[i], graph.CapInf); d > 0 {
						s.stats.Accepted++
						s.stats.TotalDelta += d
					}
				}
				s.mu.Unlock()
			}
			dt := time.Since(t0).Nanoseconds()
			s.acceptNS.Load().Add(dt)
			s.acceptHist.Load().Observe(dt)
			s.batches.Load().Add(1)
			s.qGauge.Load().Set(s.queued.Add(-int64(len(item.paths))))
			s.drainMu.Lock()
			s.inFlight--
			if s.inFlight == 0 {
				s.drainCond.Broadcast()
			}
			s.drainMu.Unlock()
		case <-s.done:
			return
		}
	}
}

// decodeBatch decodes a batch of wire-encoded candidates, returning the
// survivors and the malformed count. Runs outside the accumulator lock.
func decodeBatch(paths [][]byte) ([]graph.ExcessPath, int64) {
	decoded := make([]graph.ExcessPath, 0, len(paths))
	var errs int64
	for _, pb := range paths {
		p, err := graph.DecodePath(pb)
		if err != nil {
			errs++
			continue
		}
		decoded = append(decoded, p)
	}
	return decoded, errs
}

// acceptLocked decodes a batch of wire-encoded candidates and runs them
// through the accumulator, updating round stats. Callers hold s.mu.
func (s *AugProcServer) acceptLocked(paths [][]byte) {
	for _, pb := range paths {
		p, err := graph.DecodePath(pb)
		if err != nil {
			s.stats.DecodeErrors++
			continue
		}
		s.stats.Submitted++
		if d := s.acc.Accept(&p, graph.CapInf); d > 0 {
			s.stats.Accepted++
			s.stats.TotalDelta += d
		}
	}
}

// BeginRound resets per-round state before a MapReduce round starts.
// The round number fences submissions: only batches tagged with it are
// accepted until the next BeginRound.
func (s *AugProcServer) BeginRound(round int) {
	s.round.Store(int64(round))
	s.drain()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acc.Reset()
	s.stats = AugProcStats{}
	s.pending = nil
	s.maxQ.Store(0)
}

// drain blocks until every batch enqueued so far has been decided.
func (s *AugProcServer) drain() {
	s.drainMu.Lock()
	for s.inFlight > 0 {
		s.drainCond.Wait()
	}
	s.drainMu.Unlock()
}

// EndRound waits for the queue to drain ("aug_proc finishes immediately
// after the last reducer") and returns the round's statistics and the
// accepted flow deltas for the next round's AugmentedEdges side file.
func (s *AugProcServer) EndRound() (AugProcStats, map[graph.EdgeID]int64) {
	s.drain()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deterministic {
		s.acceptLocked(dedupePending(s.pending))
		s.pending = nil
	}
	st := s.stats
	st.MaxQueue = s.maxQ.Load()
	s.logger().Debug("aug_proc round",
		"submitted", st.Submitted, "accepted", st.Accepted,
		"flow_delta", st.TotalDelta, "max_queue", st.MaxQueue,
		"stale_dropped_total", s.stale.Load())
	return st, s.acc.Deltas()
}

// dedupePending reduces the round's buffered submissions to one
// execution per reduce task and returns the surviving candidate paths
// in canonical byte order. Every complete execution of a task submits
// the identical candidate sequence (the reduce is deterministic in its
// sorted input), while an execution interrupted mid-task submits a
// prefix of it — so the execution with the most paths is complete
// whenever any is, and ties are broken toward the lowest exec id for
// reproducibility.
func dedupePending(pending []pendingSub) [][]byte {
	total := make(map[[2]int]int) // (task, exec) -> paths submitted
	for _, sub := range pending {
		total[[2]int{sub.task, sub.exec}] += len(sub.paths)
	}
	chosen := make(map[int]int) // task -> winning exec
	for key, n := range total {
		task, exec := key[0], key[1]
		cur, ok := chosen[task]
		if !ok || n > total[[2]int{task, cur}] || (n == total[[2]int{task, cur}] && exec < cur) {
			chosen[task] = exec
		}
	}
	var out [][]byte
	for _, sub := range pending {
		if chosen[sub.task] == sub.exec {
			out = append(out, sub.paths...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

// Close shuts the server down.
func (s *AugProcServer) Close() error {
	if !s.serving {
		return nil
	}
	s.serving = false
	close(s.done)
	return s.listener.Close()
}

// AugProcClient is a reducer's persistent connection to aug_proc.
// It is safe for concurrent use by multiple reducer tasks (net/rpc
// multiplexes calls over one connection).
type AugProcClient struct {
	c *rpc.Client

	// ctx is the job-level trace context stamped onto every Submit
	// (atomic: a distributed worker installs it via SetTraceContext from
	// a task-lease goroutine while reducers submit concurrently).
	ctx atomic.Pointer[trace.Context]
}

// SetTraceContext installs the trace context the client stamps onto
// every subsequent Submit. The distmr worker calls it with the leasing
// job's context when it builds the job's service; untraced callers (the
// simulated engine, the FF2 driver's local dial) leave it zero.
func (c *AugProcClient) SetTraceContext(ctx trace.Context) {
	c.ctx.Store(&ctx)
}

// DialAugProc connects to an aug_proc server, retrying transient dial
// failures with backoff (workers racing a just-started server).
func DialAugProc(addr string) (*AugProcClient, error) {
	c, err := rpcutil.DialRPC(addr, rpcutil.Policy{})
	if err != nil {
		return nil, fmt.Errorf("core: aug_proc dial: %w", err)
	}
	return &AugProcClient{c: c}, nil
}

// Submit sends candidate augmenting paths to aug_proc, tagged with the
// round, the submitting reduce task and its execution id
// (TaskContext.Exec). The round tag lets the server drop submissions
// from executions orphaned in an earlier round.
func (c *AugProcClient) Submit(round, task, exec int, paths []graph.ExcessPath) error {
	if len(paths) == 0 {
		return nil
	}
	args := &SubmitArgs{Round: round, Task: task, Exec: exec, Paths: make([][]byte, len(paths))}
	if ctx := c.ctx.Load(); ctx != nil {
		args.Ctx = *ctx
	}
	for i := range paths {
		args.Paths[i] = graph.EncodePath(&paths[i])
	}
	return c.c.Call("AugProc.Submit", args, &SubmitReply{})
}

// Close closes the connection.
func (c *AugProcClient) Close() error { return c.c.Close() }
