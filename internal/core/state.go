package core

import (
	"fmt"
	"sort"

	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
)

// This file lets alternative engines (internal/prflow, the portfolio's
// core-reduced runs) persist and read back the same on-DFS state the
// FFMR driver produces: canonical vertex records under a round-NNNNN
// prefix plus an AugmentedEdges pending-deltas file. Keeping the state
// shape identical is what makes Validate, dynamic.Solve/Apply snapshots
// and the service's query views engine-agnostic.

// WriteEngineState persists a per-edge flow assignment as the final
// state of a completed run: partition-aligned vertex record files under
// roundPrefix(opts.PathPrefix, rounds) and an empty pending-deltas file
// at PendingDeltasFile(opts, rounds) — exactly what the FFMR driver
// leaves behind after a strict-termination run. flows[i] is the flow on
// in.Edges[i] in canonical (U -> V) orientation.
//
// opts must have defaults resolved (Run resolves them before engine
// dispatch): Reducers fixes the partition alignment of the output files,
// which schimmy rounds and the dynamic-update pipeline rely on. Records
// carry the usual source/sink excess-path seeds and (for FF5) zeroed
// sent-flag arrays, so a later warm restart can re-augment from them.
func WriteEngineState(fs *dfs.FS, in *graph.Input, opts Options, rounds int, flows []int64) error {
	if opts.Reducers <= 0 {
		return fmt.Errorf("core: WriteEngineState needs resolved options (Reducers=%d)", opts.Reducers)
	}
	if len(flows) != len(in.Edges) {
		return fmt.Errorf("core: WriteEngineState: %d flows for %d edges", len(flows), len(in.Edges))
	}
	feat := opts.Variant.features()

	adj := make(map[graph.VertexID][]graph.Edge)
	for i := range in.Edges {
		e := &in.Edges[i]
		revCap := e.Cap
		if e.Directed {
			revCap = 0
		}
		id := graph.EdgeID(i)
		f := flows[i]
		adj[e.U] = append(adj[e.U], graph.Edge{To: e.V, ID: id, Flow: f, Cap: e.Cap, RevCap: revCap, Fwd: true})
		adj[e.V] = append(adj[e.V], graph.Edge{To: e.U, ID: id, Flow: -f, Cap: revCap, RevCap: e.Cap, Fwd: false})
	}

	// One writer per partition; vertices appended in key order so each
	// file is sorted like a reducer's output.
	ids := make([]graph.VertexID, 0, len(adj))
	for u := range adj {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	writers := make([]dfs.RecordWriter, opts.Reducers)
	for _, u := range ids {
		edges := adj[u]
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].To != edges[j].To {
				return edges[i].To < edges[j].To
			}
			return edges[i].ID < edges[j].ID
		})
		val := &graph.VertexValue{Eu: edges}
		if u == in.Source {
			val.Su = []graph.ExcessPath{{}}
		}
		if u == in.Sink && !opts.DisableBidirectional {
			val.Tu = []graph.ExcessPath{{}}
		}
		if feat.sentTracking {
			val.SentS = make([]uint64, len(edges))
			val.SentT = make([]uint64, len(edges))
		}
		key := graph.KeyBytes(u)
		writers[mapreduce.Partition(key, opts.Reducers)].Append(key, graph.EncodeValue(val))
	}

	prefix := roundPrefix(opts.PathPrefix, rounds)
	for p := range writers {
		name := fmt.Sprintf("%spart-%05d", prefix, p)
		if err := fs.WriteFile(name, writers[p].Bytes()); err != nil {
			return err
		}
	}
	return fs.WriteFile(deltaName(opts.PathPrefix, rounds+1), EncodeDeltas(nil))
}

// ExtractFlows reads a completed run's persisted residual state and
// returns the canonical per-edge flow assignment, applying the pending
// AugmentedEdges file first if one exists (it is empty after a strict
// run). It verifies that every input edge appears with exactly two
// skew-symmetric halves, so the result is trustworthy enough to feed
// prep.Uncontract or CheckAssignment.
func ExtractFlows(fs *dfs.FS, in *graph.Input, opts Options, res *Result) ([]int64, error) {
	opts.applyDefaults(1)
	verts, err := ReadVertices(fs, roundPrefix(opts.PathPrefix, res.Rounds))
	if err != nil {
		return nil, fmt.Errorf("core: extract flows: %w", err)
	}
	if len(verts) == 0 && len(in.Edges) > 0 {
		return nil, fmt.Errorf("core: extract flows: no vertex records under %q (run with KeepIntermediate)",
			roundPrefix(opts.PathPrefix, res.Rounds))
	}
	deltaFile := deltaName(opts.PathPrefix, res.Rounds+1)
	if fs.Exists(deltaFile) {
		data, err := fs.ReadFile(deltaFile)
		if err != nil {
			return nil, err
		}
		deltas, err := DecodeDeltas(data)
		if err != nil {
			return nil, err
		}
		for _, v := range verts {
			updateVertex(v, deltas)
		}
	}

	flows := make([]int64, len(in.Edges))
	halves := make([]int, len(in.Edges))
	for _, v := range verts {
		for i := range v.Eu {
			e := &v.Eu[i]
			if int(e.ID) >= len(flows) {
				return nil, fmt.Errorf("core: extract flows: edge %d out of range (m=%d)", e.ID, len(flows))
			}
			canonical := e.Flow
			if !e.Fwd {
				canonical = -canonical
			}
			if halves[e.ID] > 0 && flows[e.ID] != canonical {
				return nil, fmt.Errorf("core: extract flows: edge %d violates skew symmetry: %d vs %d",
					e.ID, flows[e.ID], canonical)
			}
			flows[e.ID] = canonical
			halves[e.ID]++
		}
	}
	for id, n := range halves {
		if n != 2 {
			return nil, fmt.Errorf("core: extract flows: edge %d has %d halves", id, n)
		}
	}
	return flows, nil
}
