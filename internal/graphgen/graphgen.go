// Package graphgen generates the graphs the evaluation runs on. The paper
// crawls Facebook subgraphs FB1..FB6 (21M..411M vertices); that data is
// proprietary, so this package provides synthetic small-world generators
// with the properties the algorithm exploits — low diameter and
// heavy-tailed degree — plus a crawl-subset chain emulating the paper's
// nested FBi ⊂ FBj construction, and the super source/sink attachment
// procedure of Section V-A1.
//
// Generators: Watts-Strogatz (small world by construction),
// Barabási-Albert preferential attachment (scale-free, low diameter),
// R-MAT/Graph500 Kronecker graphs, and Erdős-Rényi as a non-small-world
// control.
package graphgen

import (
	"fmt"
	"math/rand"

	"ffmr/internal/graph"
)

// WattsStrogatz generates an undirected Watts-Strogatz small-world graph:
// a ring lattice of n vertices each joined to its k nearest neighbours
// (k even), with each edge rewired with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) (*graph.Input, error) {
	if n < 4 || k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("graphgen: invalid watts-strogatz parameters n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graphgen: beta %f out of [0,1]", beta)
	}
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ u, v graph.VertexID }
	seen := make(map[pair]bool, n*k/2)
	addKey := func(u, v graph.VertexID) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return false
		}
		seen[pair{u, v}] = true
		return true
	}

	edges := make([]graph.InputEdge, 0, n*k/2)
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			u := graph.VertexID(i)
			v := graph.VertexID((i + j) % n)
			if beta > 0 && rng.Float64() < beta {
				// Rewire the far endpoint to a uniform random vertex,
				// avoiding self-loops and duplicates.
				for attempts := 0; attempts < 32; attempts++ {
					w := graph.VertexID(rng.Intn(n))
					if addKey(u, w) {
						edges = append(edges, graph.InputEdge{U: u, V: w, Cap: 1})
						v = u // mark handled
						break
					}
				}
				if v == u {
					continue
				}
			}
			if addKey(u, v) {
				edges = append(edges, graph.InputEdge{U: u, V: v, Cap: 1})
			}
		}
	}
	return &graph.Input{NumVertices: n, Edges: edges}, nil
}

// BarabasiAlbert generates an undirected scale-free graph by preferential
// attachment: each new vertex attaches to m existing vertices chosen with
// probability proportional to degree. The result has the heavy-tailed
// degree distribution and low diameter of social graphs.
func BarabasiAlbert(n, m int, seed int64) (*graph.Input, error) {
	if m < 1 || n <= m {
		return nil, fmt.Errorf("graphgen: invalid barabasi-albert parameters n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	// targets holds one entry per half-edge endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	targets := make([]graph.VertexID, 0, 2*n*m)
	edges := make([]graph.InputEdge, 0, n*m)

	// Seed clique over the first m+1 vertices.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			edges = append(edges, graph.InputEdge{U: graph.VertexID(i), V: graph.VertexID(j), Cap: 1})
			targets = append(targets, graph.VertexID(i), graph.VertexID(j))
		}
	}
	chosen := make(map[graph.VertexID]bool, m)
	picked := make([]graph.VertexID, 0, m)
	for v := m + 1; v < n; v++ {
		for k := range chosen {
			delete(chosen, k)
		}
		picked = picked[:0]
		for len(picked) < m {
			u := targets[rng.Intn(len(targets))]
			if int(u) != v && !chosen[u] {
				chosen[u] = true
				picked = append(picked, u)
			}
		}
		// Attach in pick order (not map order) so the generator is
		// deterministic for a given seed.
		for _, u := range picked {
			edges = append(edges, graph.InputEdge{U: u, V: graph.VertexID(v), Cap: 1})
			targets = append(targets, u, graph.VertexID(v))
		}
	}
	return &graph.Input{NumVertices: n, Edges: edges}, nil
}

// RMAT generates a Graph500-style Kronecker graph with 2^scale vertices
// and edgeFactor*2^scale undirected edges, using the standard partition
// probabilities (a=0.57, b=0.19, c=0.19, d=0.05). Self-loops and
// duplicate edges are dropped, as Graph500's construction kernel does.
func RMAT(scale, edgeFactor int, seed int64) (*graph.Input, error) {
	if scale < 2 || scale > 30 || edgeFactor < 1 {
		return nil, fmt.Errorf("graphgen: invalid rmat parameters scale=%d edgeFactor=%d", scale, edgeFactor)
	}
	const a, b, c = 0.57, 0.19, 0.19
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	target := edgeFactor * n

	type pair struct{ u, v graph.VertexID }
	seen := make(map[pair]bool, target)
	edges := make([]graph.InputEdge, 0, target)
	for attempts := 0; len(edges) < target && attempts < target*8; attempts++ {
		var u, v int
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: neither bit set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		p := pair{graph.VertexID(u), graph.VertexID(v)}
		if p.u > p.v {
			p.u, p.v = p.v, p.u
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		edges = append(edges, graph.InputEdge{U: p.u, V: p.v, Cap: 1})
	}
	return &graph.Input{NumVertices: n, Edges: edges}, nil
}

// ErdosRenyi generates a G(n, m) uniform random graph. Erdős-Rényi graphs
// have low clustering and, at low density, larger diameter than social
// graphs; the test suite uses them as the non-small-world control.
func ErdosRenyi(n, m int, seed int64) (*graph.Input, error) {
	if n < 2 || m < 1 {
		return nil, fmt.Errorf("graphgen: invalid erdos-renyi parameters n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ u, v graph.VertexID }
	seen := make(map[pair]bool, m)
	edges := make([]graph.InputEdge, 0, m)
	for attempts := 0; len(edges) < m && attempts < m*16; attempts++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		p := pair{u, v}
		if p.u > p.v {
			p.u, p.v = p.v, p.u
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		edges = append(edges, graph.InputEdge{U: p.u, V: p.v, Cap: 1})
	}
	return &graph.Input{NumVertices: n, Edges: edges}, nil
}

// Degrees returns the undirected degree of every vertex.
func Degrees(in *graph.Input) []int {
	deg := make([]int, in.NumVertices)
	for i := range in.Edges {
		deg[in.Edges[i].U]++
		deg[in.Edges[i].V]++
	}
	return deg
}

// RandomCapacities assigns each edge a capacity drawn uniformly from
// [1, maxCap], replacing the generators' unit capacities. The paper's
// experiments use unit capacities but the algorithm "supports rational
// numbers for the edge capacities"; integer-valued capacities exercise
// the same code paths (rationals reduce to integers by scaling).
func RandomCapacities(in *graph.Input, maxCap int64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range in.Edges {
		in.Edges[i].Cap = 1 + rng.Int63n(maxCap)
	}
}
