package graphgen

import (
	"math/rand"
	"testing"

	"ffmr/internal/graph"
	"ffmr/internal/maxflow"
)

func TestDecomposePreservesMaxFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 10; trial++ {
		in, err := BarabasiAlbert(200, 4, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			RandomCapacities(in, 6, rng.Int63())
		}
		in.Source, in.Sink = PickEndpoints(in)

		before, err := maxflow.FromInput(in)
		if err != nil {
			t.Fatal(err)
		}
		want := maxflow.Dinic(before, int(in.Source), int(in.Sink))

		dec, err := DecomposeHighDegree(in, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.Validate(); err != nil {
			t.Fatalf("decomposed graph invalid: %v", err)
		}
		after, err := maxflow.FromInput(dec)
		if err != nil {
			t.Fatal(err)
		}
		got := maxflow.Dinic(after, int(dec.Source), int(dec.Sink))
		if got != want {
			t.Fatalf("trial %d: flow %d after decomposition, want %d", trial, got, want)
		}
	}
}

func TestDecomposeBoundsDegrees(t *testing.T) {
	in, err := BarabasiAlbert(500, 5, 112)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = PickEndpoints(in)
	const maxDeg = 10
	dec, err := DecomposeHighDegree(in, maxDeg)
	if err != nil {
		t.Fatal(err)
	}
	deg := Degrees(dec)
	for v, d := range deg {
		if graph.VertexID(v) == dec.Source || graph.VertexID(v) == dec.Sink {
			continue // endpoints are exempt by design
		}
		if d > maxDeg {
			t.Fatalf("vertex %d has degree %d > %d after decomposition", v, d, maxDeg)
		}
	}
	if dec.NumVertices <= in.NumVertices {
		t.Error("decomposition added no clones on a scale-free graph")
	}
}

func TestDecomposeNoOpOnLowDegreeGraph(t *testing.T) {
	in, err := WattsStrogatz(100, 4, 0, 113)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = PickEndpoints(in)
	dec, err := DecomposeHighDegree(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumVertices != in.NumVertices || len(dec.Edges) != len(in.Edges) {
		t.Errorf("no-op decomposition changed the graph: %d/%d vertices, %d/%d edges",
			dec.NumVertices, in.NumVertices, len(dec.Edges), len(in.Edges))
	}
}

func TestDecomposeValidation(t *testing.T) {
	in, _ := WattsStrogatz(10, 2, 0, 1)
	in.Source, in.Sink = PickEndpoints(in)
	if _, err := DecomposeHighDegree(in, 1); err == nil {
		t.Error("maxDegree 1 accepted")
	}
	bad := &graph.Input{NumVertices: 0}
	if _, err := DecomposeHighDegree(bad, 5); err == nil {
		t.Error("invalid graph accepted")
	}
}
