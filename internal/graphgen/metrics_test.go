package graphgen

import (
	"testing"

	"ffmr/internal/graph"
)

func TestMeasureBasics(t *testing.T) {
	in, err := BarabasiAlbert(2000, 4, 101)
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(in, 8, 1)
	if m.Vertices != 2000 || m.Edges != len(in.Edges) {
		t.Errorf("counts: %+v", m)
	}
	wantAvg := 2 * float64(len(in.Edges)) / 2000
	if m.AverageDegree < wantAvg-0.01 || m.AverageDegree > wantAvg+0.01 {
		t.Errorf("average degree %f, want %f", m.AverageDegree, wantAvg)
	}
	if m.LargestComponent < 0.99 {
		t.Errorf("BA graph fragmented: %f", m.LargestComponent)
	}
	if m.EstimatedDiameter < 2 || m.EstimatedDiameter > 12 {
		t.Errorf("BA diameter estimate %d outside small-world band", m.EstimatedDiameter)
	}
}

// TestSmallWorldSignature verifies the Watts-Strogatz signature: the
// rewired ring has near-lattice clustering but near-random path length,
// while the Erdős-Rényi control has low clustering.
func TestSmallWorldSignature(t *testing.T) {
	lattice, err := WattsStrogatz(1000, 8, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	small, err := WattsStrogatz(1000, 8, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(1000, 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	mLat := Measure(lattice, 12, 1)
	mSW := Measure(small, 12, 1)
	mER := Measure(er, 12, 1)

	// Path length: small world far below the lattice.
	if mSW.AveragePathLength >= mLat.AveragePathLength/3 {
		t.Errorf("rewiring did not shorten paths: lattice %f, small-world %f",
			mLat.AveragePathLength, mSW.AveragePathLength)
	}
	// Clustering: small world far above the random control.
	if mSW.Clustering < 3*mER.Clustering {
		t.Errorf("small-world clustering %f not well above random %f",
			mSW.Clustering, mER.Clustering)
	}
}

// TestCrawlChainIsSmallWorld verifies the generated FB-chain graphs have
// the properties the algorithm exploits (the paper estimates D in 7..14
// for FB6; our scaled graphs should be at or below that).
func TestCrawlChainIsSmallWorld(t *testing.T) {
	chain, err := CrawlChain(TinyFBChain()[:3], 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range chain {
		m := Measure(in, 6, 1)
		if m.EstimatedDiameter > 14 {
			t.Errorf("chain[%d] diameter %d exceeds the paper's FB band", i, m.EstimatedDiameter)
		}
		if m.LargestComponent < 0.95 {
			t.Errorf("chain[%d] fragmented: %f", i, m.LargestComponent)
		}
	}
}

func TestMeasureDefaultsAndTiny(t *testing.T) {
	in := &graph.Input{
		NumVertices: 4,
		Edges: []graph.InputEdge{
			{U: 0, V: 1, Cap: 1}, {U: 1, V: 2, Cap: 1}, {U: 1, V: 3, Cap: 1},
		},
	}
	m := Measure(in, 0, 1) // samples default
	if m.Vertices != 4 {
		t.Errorf("vertices = %d", m.Vertices)
	}
	if m.EstimatedDiameter != 2 {
		t.Errorf("star-ish graph: diameter %d, want 2", m.EstimatedDiameter)
	}
	if m.MaxDegree != 3 {
		t.Errorf("max degree %d, want 3", m.MaxDegree)
	}
}
