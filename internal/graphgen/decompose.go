package graphgen

import (
	"fmt"

	"ffmr/internal/graph"
)

// DecomposeHighDegree implements the paper's Section V remark: "if a
// vertex has too many edges, without loss of generality, it can be
// decomposed into several vertices of smaller degree." Every vertex
// whose degree exceeds maxDegree is split into a chain of clones joined
// by infinite-capacity edges, with the original incident edges spread
// across the clones. The transformation preserves every s-t max-flow
// value: the infinite chain makes the clone set behave as one vertex
// for flow purposes (it cannot constrain any finite flow through it).
//
// The source and sink are never decomposed (their identity must remain
// a single vertex for the algorithm's seeds).
func DecomposeHighDegree(in *graph.Input, maxDegree int) (*graph.Input, error) {
	if maxDegree < 2 {
		return nil, fmt.Errorf("graphgen: maxDegree must be at least 2, got %d", maxDegree)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	deg := Degrees(in)

	// Assign clone IDs: vertex v with degree d needs ceil(d/maxDegree)
	// clones (at least 1); clone 0 keeps the original ID.
	next := graph.VertexID(in.NumVertices)
	clones := make(map[graph.VertexID][]graph.VertexID)
	out := &graph.Input{Source: in.Source, Sink: in.Sink}
	var chain []graph.InputEdge
	for v := 0; v < in.NumVertices; v++ {
		id := graph.VertexID(v)
		if deg[v] <= maxDegree || id == in.Source || id == in.Sink {
			continue
		}
		// Each clone carries up to maxDegree-2 original edges so that,
		// with its (up to) two chain edges, its total degree stays
		// within maxDegree.
		per := maxDegree - 2
		if per < 1 {
			per = 1
		}
		n := (deg[v] + per - 1) / per
		ids := make([]graph.VertexID, n)
		ids[0] = id
		for i := 1; i < n; i++ {
			ids[i] = next
			next++
			chain = append(chain, graph.InputEdge{
				U: ids[i-1], V: ids[i], Cap: graph.CapInf,
			})
		}
		clones[id] = ids
	}
	out.NumVertices = int(next)

	// Spread each vertex's incident edges round-robin over its clones.
	used := make(map[graph.VertexID]int, len(clones))
	pick := func(v graph.VertexID) graph.VertexID {
		ids, ok := clones[v]
		if !ok {
			return v
		}
		i := used[v]
		used[v]++
		return ids[i%len(ids)]
	}
	out.Edges = make([]graph.InputEdge, 0, len(in.Edges)+len(chain))
	for _, e := range in.Edges {
		out.Edges = append(out.Edges, graph.InputEdge{
			U: pick(e.U), V: pick(e.V), Cap: e.Cap, Directed: e.Directed,
		})
	}
	out.Edges = append(out.Edges, chain...)
	return out, nil
}
