package graphgen

import (
	"testing"

	"ffmr/internal/graph"
	"ffmr/internal/maxflow"
)

func TestGrid(t *testing.T) {
	in, err := Grid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Edges) != 2*8*7 {
		t.Fatalf("8x8 grid has %d edges, want %d", len(in.Edges), 2*8*7)
	}
	m := Measure(in, 16, 1)
	if m.EstimatedDiameter < 14 {
		t.Fatalf("8x8 grid diameter estimate %d, want >= 14", m.EstimatedDiameter)
	}
	if m.LargestComponent != 1.0 {
		t.Fatalf("grid should be connected, got component fraction %g", m.LargestComponent)
	}
	// Corner-to-corner unit-capacity max flow on a grid equals the
	// corner degree.
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxflow.Dinic(net, int(in.Source), int(in.Sink)); got != 2 {
		t.Fatalf("grid corner max flow = %d, want 2", got)
	}

	if _, err := Grid(1, 5); err == nil {
		t.Fatal("expected error for 1-row grid")
	}
}

func TestDenseBipartite(t *testing.T) {
	in, err := DenseBipartite(10, 12, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Edges) != 10+10*12+12 {
		t.Fatalf("complete bipartite edge count %d, want %d", len(in.Edges), 10+10*12+12)
	}
	// With p=1 and unit caps everywhere the value is min(left, right).
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxflow.Dinic(net, int(in.Source), int(in.Sink)); got != 10 {
		t.Fatalf("complete bipartite max flow = %d, want 10", got)
	}

	// Determinism across identical seeds, variation across seeds.
	a, _ := DenseBipartite(20, 20, 0.3, 7)
	b, _ := DenseBipartite(20, 20, 0.3, 7)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed produced different graphs")
	}

	if _, err := DenseBipartite(0, 5, 0.5, 1); err == nil {
		t.Fatal("expected error for empty side")
	}
	if _, err := DenseBipartite(5, 5, 0, 1); err == nil {
		t.Fatal("expected error for p=0")
	}
}

func TestPowerLawFit(t *testing.T) {
	// Scale-free: BA should fit a finite alpha in the usual range with
	// a heavy low-degree fringe.
	ba, err := BarabasiAlbert(4000, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	fitBA := PowerLawFit(ba)
	if fitBA.Alpha < 2 || fitBA.Alpha > 4 {
		t.Fatalf("BA alpha = %g, want in [2, 4]", fitBA.Alpha)
	}
	if fitBA.FracLowDegree < 0.25 {
		t.Fatalf("BA(m=2) low-degree fraction = %g, want >= 0.25", fitBA.FracLowDegree)
	}
	if fitBA.MaxDegree < 20 {
		t.Fatalf("BA should have hubs, max degree %d", fitBA.MaxDegree)
	}

	// Near-regular: a grid has almost no peelable fringe, which is the
	// signal the portfolio driver actually keys on.
	grid, err := Grid(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	fitGrid := PowerLawFit(grid)
	if fitGrid.FracLowDegree > 0.15 {
		t.Fatalf("grid low-degree fraction = %g, want small", fitGrid.FracLowDegree)
	}

	// Watts-Strogatz is small-world but not scale-free: no peelable
	// fringe either.
	ws, err := WattsStrogatz(2000, 4, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	fitWS := PowerLawFit(ws)
	if fitWS.FracLowDegree > 0.2 {
		t.Fatalf("WS low-degree fraction = %g, want small", fitWS.FracLowDegree)
	}

	empty := PowerLawFit(&graph.Input{NumVertices: 3})
	if empty.FracLowDegree != 1 {
		t.Fatalf("edgeless graph low-degree fraction = %g, want 1", empty.FracLowDegree)
	}
}
