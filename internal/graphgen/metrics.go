package graphgen

import (
	"math/rand"
	"sort"

	"ffmr/internal/graph"
)

// Small-world diagnostics. The paper's premise is that real graphs have
// small-world properties — low diameter ("the length of the shortest
// path between any two vertices is usually small") and robustness of
// that diameter as the residual graph changes. These metrics let tests
// and tools verify that generated graphs actually have the structure
// the algorithm exploits, and quantify the paper's estimate of D
// ("between 7 to 14 for FB6 using a MR-based BFS").

// Metrics summarizes a graph's small-world statistics.
type Metrics struct {
	Vertices      int
	Edges         int
	AverageDegree float64
	MaxDegree     int
	// EstimatedDiameter is the maximum BFS eccentricity over sampled
	// start vertices (a lower bound on the true diameter that converges
	// quickly on small-world graphs).
	EstimatedDiameter int
	// AveragePathLength is the mean shortest-path length over sampled
	// source vertices (Watts & Strogatz's L).
	AveragePathLength float64
	// Clustering is the mean local clustering coefficient over sampled
	// vertices (Watts & Strogatz's C).
	Clustering float64
	// LargestComponent is the fraction of vertices reachable from the
	// highest-degree vertex.
	LargestComponent float64
}

// adjacency builds an adjacency list, deduplicating parallel edges.
func adjacency(in *graph.Input) [][]graph.VertexID {
	adj := make([][]graph.VertexID, in.NumVertices)
	for i := range in.Edges {
		e := &in.Edges[i]
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for v := range adj {
		ns := adj[v]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		dedup := ns[:0]
		for i, n := range ns {
			if i == 0 || n != ns[i-1] {
				dedup = append(dedup, n)
			}
		}
		adj[v] = dedup
	}
	return adj
}

// bfsFrom computes hop distances from src; unreached vertices get -1.
func bfsFrom(adj [][]graph.VertexID, src graph.VertexID) []int32 {
	dist := make([]int32, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Measure computes small-world metrics, sampling the expensive parts
// (BFS eccentricities and local clustering) at the given sample count.
func Measure(in *graph.Input, samples int, seed int64) Metrics {
	if samples <= 0 {
		samples = 16
	}
	rng := rand.New(rand.NewSource(seed))
	adj := adjacency(in)
	deg := Degrees(in)

	m := Metrics{Vertices: in.NumVertices, Edges: len(in.Edges)}
	maxDegV := 0
	var degSum int
	for v, d := range deg {
		degSum += d
		if d > m.MaxDegree {
			m.MaxDegree = d
			maxDegV = v
		}
	}
	if in.NumVertices > 0 {
		m.AverageDegree = float64(degSum) / float64(in.NumVertices)
	}

	// Component coverage from the biggest hub.
	dist := bfsFrom(adj, graph.VertexID(maxDegV))
	reached := 0
	for _, d := range dist {
		if d >= 0 {
			reached++
		}
	}
	if in.NumVertices > 0 {
		m.LargestComponent = float64(reached) / float64(in.NumVertices)
	}

	// Sampled eccentricities and path lengths.
	var pathSum, pathCnt float64
	for s := 0; s < samples; s++ {
		src := graph.VertexID(rng.Intn(in.NumVertices))
		d := bfsFrom(adj, src)
		for _, x := range d {
			if x > 0 {
				pathSum += float64(x)
				pathCnt++
				if int(x) > m.EstimatedDiameter {
					m.EstimatedDiameter = int(x)
				}
			}
		}
	}
	if pathCnt > 0 {
		m.AveragePathLength = pathSum / pathCnt
	}

	// Sampled local clustering: fraction of a vertex's neighbour pairs
	// that are themselves connected.
	var cSum float64
	var cCnt int
	isNbr := func(a, b graph.VertexID) bool {
		ns := adj[a]
		i := sort.Search(len(ns), func(i int) bool { return ns[i] >= b })
		return i < len(ns) && ns[i] == b
	}
	for s := 0; s < samples*4; s++ {
		v := graph.VertexID(rng.Intn(in.NumVertices))
		ns := adj[v]
		if len(ns) < 2 {
			continue
		}
		links := 0
		pairs := 0
		// Cap the per-vertex work on hubs by sampling neighbour pairs.
		maxPairs := 64
		for p := 0; p < maxPairs; p++ {
			a := ns[rng.Intn(len(ns))]
			b := ns[rng.Intn(len(ns))]
			if a == b {
				continue
			}
			pairs++
			if isNbr(a, b) {
				links++
			}
		}
		if pairs > 0 {
			cSum += float64(links) / float64(pairs)
			cCnt++
		}
	}
	if cCnt > 0 {
		m.Clustering = cSum / float64(cCnt)
	}
	return m
}
