package graphgen

import (
	"fmt"
	"math/rand"

	"ffmr/internal/graph"
)

// This file generates randomized update batches for the dynamic-graph
// experiments (internal/dynamic). Batches mimic how a social-network
// crawl evolves between snapshots: new friendships appear preferentially
// near existing ones (insert endpoints are found by a short random walk,
// so batches inherit the graph's small-world locality), while existing
// edges churn through deletion and capacity changes.

// UpdateProfile configures GenerateUpdates: the relative weight of each
// operation kind and the shape of generated edges.
type UpdateProfile struct {
	// InsertWeight..DecreaseWeight set the op mix; an op with weight zero
	// is never generated. Weights need not sum to anything particular.
	InsertWeight   int
	DeleteWeight   int
	IncreaseWeight int
	DecreaseWeight int
	// MaxCap bounds the capacity of inserted edges and the amount added
	// by a capacity increase.
	MaxCap int64
	// WalkLen is the length of the random walk that picks an inserted
	// edge's far endpoint, starting from its near endpoint. Short walks
	// keep inserts local, matching triadic closure in social graphs.
	WalkLen int
	// AvoidST excludes the super source and sink from all updates: their
	// tap edges keep their (infinite) capacities and inserts never touch
	// s or t. Experiments set this so batches perturb the interior of the
	// network rather than the artificial attachment points.
	AvoidST bool
}

// DefaultUpdateProfile is an even op mix with local inserts.
func DefaultUpdateProfile() UpdateProfile {
	return UpdateProfile{
		InsertWeight:   1,
		DeleteWeight:   1,
		IncreaseWeight: 1,
		DecreaseWeight: 1,
		MaxCap:         50,
		WalkLen:        3,
		AvoidST:        true,
	}
}

// edgeState tracks one edge's evolving capacity while a batch is being
// generated, so later updates of the batch see earlier ones.
type edgeState struct {
	u, v     graph.VertexID
	cap      int64
	directed bool
}

// GenerateUpdates builds a randomized batch of n updates against in,
// reproducible from seed. Deletions and capacity changes only target
// edges that currently carry capacity (an edge deleted earlier in the
// batch is not re-targeted), and inserted edges always connect vertices
// that already have at least one edge — the invariant internal/dynamic
// requires, since only such vertices own a persisted record.
func GenerateUpdates(in *graph.Input, n int, p UpdateProfile, seed int64) ([]graph.Update, error) {
	if n < 0 {
		return nil, fmt.Errorf("graphgen: negative batch size %d", n)
	}
	total := p.InsertWeight + p.DeleteWeight + p.IncreaseWeight + p.DecreaseWeight
	if total <= 0 || p.InsertWeight < 0 || p.DeleteWeight < 0 || p.IncreaseWeight < 0 || p.DecreaseWeight < 0 {
		return nil, fmt.Errorf("graphgen: update profile needs non-negative weights with a positive sum")
	}
	if p.MaxCap <= 0 {
		return nil, fmt.Errorf("graphgen: update profile needs MaxCap > 0")
	}
	if p.WalkLen <= 0 {
		p.WalkLen = 1
	}

	rng := rand.New(rand.NewSource(seed))
	states := make([]edgeState, 0, len(in.Edges)+n)
	adj := make([][]graph.VertexID, in.NumVertices)
	for _, e := range in.Edges {
		states = append(states, edgeState{u: e.U, v: e.V, cap: e.Cap, directed: e.Directed})
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	avoid := func(v graph.VertexID) bool {
		return p.AvoidST && (v == in.Source || v == in.Sink)
	}

	// pickEdge draws a random edge satisfying ok, or reports failure
	// after a bounded number of draws (the graph may have run dry of
	// eligible edges for this op).
	pickEdge := func(ok func(*edgeState) bool) (graph.EdgeID, bool) {
		for try := 0; try < 64; try++ {
			id := graph.EdgeID(rng.Intn(len(states)))
			st := &states[id]
			if avoid(st.u) || avoid(st.v) || !ok(st) {
				continue
			}
			return id, true
		}
		return 0, false
	}

	// pickInsert finds a new edge's endpoints: a random vertex with a
	// record, then a short random walk to a nearby distinct vertex.
	pickInsert := func() (u, v graph.VertexID, ok bool) {
		for try := 0; try < 64; try++ {
			u = graph.VertexID(rng.Intn(in.NumVertices))
			if avoid(u) || len(adj[u]) == 0 {
				continue
			}
			v = u
			for step := 0; step < p.WalkLen; step++ {
				v = adj[v][rng.Intn(len(adj[v]))]
			}
			if v == u || avoid(v) {
				continue
			}
			return u, v, true
		}
		return 0, 0, false
	}

	batch := make([]graph.Update, 0, n)
	for len(batch) < n {
		generated := false
		// Retry across ops: if the drawn op finds no eligible target,
		// fall through to the next draw rather than failing the batch.
		for attempt := 0; attempt < 16 && !generated; attempt++ {
			r := rng.Intn(total)
			switch {
			case r < p.InsertWeight:
				u, v, ok := pickInsert()
				if !ok {
					continue
				}
				cap := 1 + rng.Int63n(p.MaxCap)
				batch = append(batch, graph.InsertEdge(u, v, cap, false))
				states = append(states, edgeState{u: u, v: v, cap: cap})
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
				generated = true
			case r < p.InsertWeight+p.DeleteWeight:
				id, ok := pickEdge(func(st *edgeState) bool { return st.cap > 0 })
				if !ok {
					continue
				}
				batch = append(batch, graph.DeleteEdge(id))
				states[id].cap = 0
				generated = true
			case r < p.InsertWeight+p.DeleteWeight+p.IncreaseWeight:
				id, ok := pickEdge(func(st *edgeState) bool { return st.cap > 0 })
				if !ok {
					continue
				}
				st := &states[id]
				st.cap += 1 + rng.Int63n(p.MaxCap)
				batch = append(batch, graph.SetCapacity(id, st.cap, st.directed))
				generated = true
			default:
				id, ok := pickEdge(func(st *edgeState) bool { return st.cap > 1 })
				if !ok {
					continue
				}
				st := &states[id]
				st.cap = 1 + rng.Int63n(st.cap-1)
				batch = append(batch, graph.SetCapacity(id, st.cap, st.directed))
				generated = true
			}
		}
		if !generated {
			return nil, fmt.Errorf("graphgen: no eligible update targets after %d of %d updates", len(batch), n)
		}
	}
	return batch, nil
}
