package graphgen

import (
	"fmt"
	"math/rand"
	"sort"

	"ffmr/internal/graph"
)

// FBSpec describes one graph of the crawl chain. The paper's FB1..FB6
// range from 21M vertices / 112M edges to 411M / 31B; the default chain
// below scales each by ~1000x so the whole chain fits in one process
// while preserving the relative growth between consecutive graphs.
type FBSpec struct {
	Name     string
	Vertices int
}

// DefaultFBChain mirrors the paper's FB1..FB6 vertex counts divided by
// 1000 (21M..411M becomes 21K..411K).
func DefaultFBChain() []FBSpec {
	return []FBSpec{
		{Name: "FB1", Vertices: 21_000},
		{Name: "FB2", Vertices: 73_000},
		{Name: "FB3", Vertices: 97_000},
		{Name: "FB4", Vertices: 151_000},
		{Name: "FB5", Vertices: 225_000},
		{Name: "FB6", Vertices: 411_000},
	}
}

// TinyFBChain is a fast chain for tests and quick benchmark runs.
func TinyFBChain() []FBSpec {
	return []FBSpec{
		{Name: "FB1", Vertices: 2_100},
		{Name: "FB2", Vertices: 7_300},
		{Name: "FB3", Vertices: 9_700},
		{Name: "FB4", Vertices: 15_100},
		{Name: "FB5", Vertices: 22_500},
		{Name: "FB6", Vertices: 41_100},
	}
}

// CrawlChain emulates the paper's construction of nested Facebook
// subgraphs: a master small-world graph is generated (Barabási-Albert,
// matching a social network's heavy-tailed degrees), vertices are visited
// in a randomized breadth-first crawl from a seed, and FBi is the induced
// subgraph on the first specs[i].Vertices crawled vertices. This yields
// FBi ⊂ FBj for i < j, exactly as the paper splits its crawl. Vertices
// of each subgraph are relabelled to a dense [0, n) range in crawl order,
// so a vertex keeps its ID across all chain members that contain it.
//
// attach is the Barabási-Albert attachment parameter for the master graph
// (the paper reports ~130 friends per user on average; attach is half the
// expected average degree).
func CrawlChain(specs []FBSpec, attach int, seed int64) ([]*graph.Input, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("graphgen: empty crawl chain spec")
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].Vertices <= specs[i-1].Vertices {
			return nil, fmt.Errorf("graphgen: crawl chain not increasing at %q", specs[i].Name)
		}
	}
	master, err := BarabasiAlbert(specs[len(specs)-1].Vertices, attach, seed)
	if err != nil {
		return nil, err
	}
	order, err := crawlOrder(master, seed+1)
	if err != nil {
		return nil, err
	}

	// rank[v] = position of vertex v in crawl order = its relabelled ID.
	rank := make([]int, master.NumVertices)
	for i, v := range order {
		rank[v] = i
	}

	// Sort edges by the later-crawled endpoint so each subgraph is a
	// prefix of the relabelled edge list.
	type redge struct{ u, v int }
	redges := make([]redge, 0, len(master.Edges))
	for i := range master.Edges {
		ru, rv := rank[master.Edges[i].U], rank[master.Edges[i].V]
		if ru > rv {
			ru, rv = rv, ru
		}
		redges = append(redges, redge{u: ru, v: rv})
	}
	sort.Slice(redges, func(i, j int) bool {
		if redges[i].v != redges[j].v {
			return redges[i].v < redges[j].v
		}
		return redges[i].u < redges[j].u
	})

	chain := make([]*graph.Input, len(specs))
	ei := 0
	edges := make([]graph.InputEdge, 0, len(redges))
	for si, spec := range specs {
		for ei < len(redges) && redges[ei].v < spec.Vertices {
			edges = append(edges, graph.InputEdge{
				U: graph.VertexID(redges[ei].u), V: graph.VertexID(redges[ei].v), Cap: 1,
			})
			ei++
		}
		sub := &graph.Input{
			NumVertices: spec.Vertices,
			Edges:       append([]graph.InputEdge(nil), edges...),
		}
		chain[si] = sub
	}
	return chain, nil
}

// crawlOrder returns all vertices in randomized-BFS crawl order starting
// from vertex 0, with unreached vertices (if any) appended afterwards.
func crawlOrder(in *graph.Input, seed int64) ([]graph.VertexID, error) {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]graph.VertexID, in.NumVertices)
	for i := range in.Edges {
		e := &in.Edges[i]
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	order := make([]graph.VertexID, 0, in.NumVertices)
	seen := make([]bool, in.NumVertices)
	queue := []graph.VertexID{0}
	seen[0] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		// Randomize neighbour visit order so the crawl frontier is not
		// biased by edge insertion order.
		nbrs := adj[u]
		rng.Shuffle(len(nbrs), func(i, j int) { nbrs[i], nbrs[j] = nbrs[j], nbrs[i] })
		for _, v := range nbrs {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	for v := 0; v < in.NumVertices; v++ {
		if !seen[v] {
			order = append(order, graph.VertexID(v))
		}
	}
	return order, nil
}

// AttachSuperSourceSink implements the paper's Section V-A1 workload
// construction: select w random vertices with at least minDegree edges
// and connect them to a new super source s, select another disjoint set
// of w vertices and connect them to a new super sink t, with infinite
// capacity on the new edges. The returned graph has two extra vertices;
// s and t are set on it.
func AttachSuperSourceSink(in *graph.Input, w, minDegree int, seed int64) (*graph.Input, error) {
	if w < 1 {
		return nil, fmt.Errorf("graphgen: w must be positive, got %d", w)
	}
	deg := Degrees(in)
	var eligible []graph.VertexID
	for v, d := range deg {
		if d >= minDegree {
			eligible = append(eligible, graph.VertexID(v))
		}
	}
	if len(eligible) < 2*w {
		return nil, fmt.Errorf("graphgen: only %d vertices with degree >= %d, need %d",
			len(eligible), minDegree, 2*w)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })

	s := graph.VertexID(in.NumVertices)
	t := graph.VertexID(in.NumVertices + 1)
	edges := make([]graph.InputEdge, 0, len(in.Edges)+2*w)
	edges = append(edges, in.Edges...)
	for _, v := range eligible[:w] {
		edges = append(edges, graph.InputEdge{U: s, V: v, Cap: graph.CapInf, Directed: true})
	}
	for _, v := range eligible[w : 2*w] {
		edges = append(edges, graph.InputEdge{U: v, V: t, Cap: graph.CapInf, Directed: true})
	}
	out := &graph.Input{
		NumVertices: in.NumVertices + 2,
		Edges:       edges,
		Source:      s,
		Sink:        t,
	}
	return out, nil
}

// PickEndpoints selects a source and sink for graphs without a super
// source/sink: the two highest-degree vertices that are not adjacent,
// falling back to the top two by degree.
func PickEndpoints(in *graph.Input) (s, t graph.VertexID) {
	deg := Degrees(in)
	best, second := -1, -1
	for v, d := range deg {
		switch {
		case best < 0 || d > deg[best]:
			second = best
			best = v
		case second < 0 || d > deg[second]:
			second = v
		}
	}
	if best < 0 {
		return 0, graph.VertexID(in.NumVertices - 1)
	}
	if second < 0 {
		second = (best + 1) % in.NumVertices
	}
	return graph.VertexID(best), graph.VertexID(second)
}
