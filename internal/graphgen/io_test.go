package graphgen

import (
	"bytes"
	"strings"
	"testing"

	"ffmr/internal/graph"
)

func TestEdgeListRoundTrip(t *testing.T) {
	in, err := BarabasiAlbert(200, 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = PickEndpoints(in)
	in.Edges = append(in.Edges, graph.InputEdge{U: 0, V: 5, Cap: 9, Directed: true})

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices != in.NumVertices || got.Source != in.Source || got.Sink != in.Sink {
		t.Fatalf("header mismatch: %d/%d/%d", got.NumVertices, got.Source, got.Sink)
	}
	if len(got.Edges) != len(in.Edges) {
		t.Fatalf("edge count %d, want %d", len(got.Edges), len(in.Edges))
	}
	for i := range in.Edges {
		if in.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, in.Edges[i], got.Edges[i])
		}
	}
}

func TestReadEdgeListSkipsCommentsAndBlank(t *testing.T) {
	src := `
# a comment
graph 3 0 2

0 1 5
# another comment
1 2 5 D
`
	in, err := ReadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Edges) != 2 {
		t.Fatalf("got %d edges", len(in.Edges))
	}
	if !in.Edges[1].Directed || in.Edges[0].Directed {
		t.Error("directed flags wrong")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no header", "0 1 5\n"},
		{"malformed header", "graph 3 0\n"},
		{"non-numeric header", "graph x 0 2\n"},
		{"malformed edge", "graph 3 0 2\n0 1\n"},
		{"non-numeric edge", "graph 3 0 2\n0 y 5\n"},
		{"bad flag", "graph 3 0 2\n0 1 5 X\n"},
		{"empty", ""},
		{"invalid graph", "graph 2 0 0\n"},
		{"self loop", "graph 3 0 2\n1 1 5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.src)); err == nil {
				t.Error("malformed input accepted")
			}
		})
	}
}
