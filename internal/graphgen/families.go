package graphgen

import (
	"fmt"
	"math"
	"math/rand"

	"ffmr/internal/graph"
)

// Non-small-world test families and a degree-distribution fit. The
// portfolio driver (internal/portfolio) probes instances for exactly
// the properties these generators control: Grid produces the
// high-diameter regime where FFMR's round count degrades, DenseBipartite
// the low-diameter/high-arc-count regime, and PowerLawFit quantifies the
// scale-free tail that makes the prep core reduction worthwhile.

// Grid generates a rows x cols 4-neighbour lattice with unit
// capacities, source at one corner (vertex 0) and sink at the opposite
// corner. Unlike the small-world generators it sets Source and Sink
// itself: attaching a super source/sink would destroy the property the
// family exists to provide, a diameter of rows+cols-2.
func Grid(rows, cols int) (*graph.Input, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("graphgen: invalid grid dimensions %dx%d", rows, cols)
	}
	n := rows * cols
	at := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	in := &graph.Input{NumVertices: n, Source: 0, Sink: graph.VertexID(n - 1)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				in.Edges = append(in.Edges, graph.InputEdge{U: at(r, c), V: at(r, c+1), Cap: 1})
			}
			if r+1 < rows {
				in.Edges = append(in.Edges, graph.InputEdge{U: at(r, c), V: at(r+1, c), Cap: 1})
			}
		}
	}
	return in, nil
}

// DenseBipartite generates a directed flow instance s -> L -> R -> t:
// left vertices 0..left-1, right vertices left..left+right-1, each
// left-right pair connected with probability p, and a dedicated source
// and sink wired to every left (respectively right) vertex. All edges
// are directed with unit capacity (use RandomCapacities to vary them).
// The family has diameter 3 but, at high p, far more arcs per vertex
// than a small-world graph — the regime where FFMR's per-round shuffle
// dominates.
func DenseBipartite(left, right int, p float64, seed int64) (*graph.Input, error) {
	if left < 1 || right < 1 || p <= 0 || p > 1 {
		return nil, fmt.Errorf("graphgen: invalid bipartite parameters left=%d right=%d p=%g", left, right, p)
	}
	rng := rand.New(rand.NewSource(seed))
	s := graph.VertexID(left + right)
	t := graph.VertexID(left + right + 1)
	in := &graph.Input{NumVertices: left + right + 2, Source: s, Sink: t}
	for l := 0; l < left; l++ {
		in.Edges = append(in.Edges, graph.InputEdge{U: s, V: graph.VertexID(l), Cap: 1, Directed: true})
	}
	for l := 0; l < left; l++ {
		for r := 0; r < right; r++ {
			if rng.Float64() < p {
				in.Edges = append(in.Edges, graph.InputEdge{
					U: graph.VertexID(l), V: graph.VertexID(left + r), Cap: 1, Directed: true,
				})
			}
		}
	}
	for r := 0; r < right; r++ {
		in.Edges = append(in.Edges, graph.InputEdge{U: graph.VertexID(left + r), V: t, Cap: 1, Directed: true})
	}
	return in, nil
}

// DegreeFit summarizes a graph's degree distribution for engine
// selection.
type DegreeFit struct {
	// Alpha is the continuous maximum-likelihood power-law exponent
	// fitted to degrees >= XMin (Clauset-Shalizi-Newman estimator);
	// scale-free graphs land in roughly [2, 3.5], while lattices and
	// near-regular graphs produce large values (a degenerate tail).
	Alpha float64
	// XMin is the fixed lower cutoff of the fitted tail.
	XMin int
	// TailFraction is the fraction of vertices with degree >= XMin.
	TailFraction float64
	// FracLowDegree is the fraction of vertices with degree <= 2 — the
	// vertices the prep core reduction can peel.
	FracLowDegree float64
	MaxDegree     int
	AvgDegree     float64
}

// PowerLawFit fits a power law to the degree distribution with the
// standard MLE alpha = 1 + n / sum(ln(d_i / (xmin - 1/2))) over
// degrees >= xmin. Isolated vertices are ignored for the average.
func PowerLawFit(in *graph.Input) DegreeFit {
	const xmin = 3
	fit := DegreeFit{Alpha: math.Inf(1), XMin: xmin}
	deg := Degrees(in)
	if len(deg) == 0 {
		return fit
	}
	var logSum float64
	var tail, low, degSum int
	for _, d := range deg {
		degSum += d
		if d > fit.MaxDegree {
			fit.MaxDegree = d
		}
		if d <= 2 {
			low++
		}
		if d >= xmin {
			tail++
			logSum += math.Log(float64(d) / (xmin - 0.5))
		}
	}
	fit.AvgDegree = float64(degSum) / float64(len(deg))
	fit.FracLowDegree = float64(low) / float64(len(deg))
	fit.TailFraction = float64(tail) / float64(len(deg))
	if tail > 0 && logSum > 0 {
		fit.Alpha = 1 + float64(tail)/logSum
	}
	return fit
}
