package graphgen

import (
	"math/rand"
	"sort"
	"testing"

	"ffmr/internal/graph"
)

// bfsDistances returns hop distances from src (-1 unreachable).
func bfsDistances(in *graph.Input, src graph.VertexID) []int {
	adj := make([][]graph.VertexID, in.NumVertices)
	for i := range in.Edges {
		e := &in.Edges[i]
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	dist := make([]int, in.NumVertices)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// noDuplicateEdges verifies an undirected edge appears at most once.
func noDuplicateEdges(t *testing.T, in *graph.Input) {
	t.Helper()
	seen := make(map[[2]graph.VertexID]bool, len(in.Edges))
	for _, e := range in.Edges {
		k := [2]graph.VertexID{e.U, e.V}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
	}
}

func TestWattsStrogatzBasics(t *testing.T) {
	in, err := WattsStrogatz(100, 6, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	in.Source, in.Sink = PickEndpoints(in)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	noDuplicateEdges(t, in)
	// The ring lattice gives n*k/2 edges; rewiring preserves the count
	// except for skipped duplicates.
	if len(in.Edges) < 250 || len(in.Edges) > 300 {
		t.Errorf("edge count %d outside expected band [250,300]", len(in.Edges))
	}
}

func TestWattsStrogatzSmallWorldProperty(t *testing.T) {
	// With rewiring the characteristic path length must be far below the
	// pure ring lattice's n/(2k).
	ring, err := WattsStrogatz(500, 4, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	small, err := WattsStrogatz(500, 4, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(in *graph.Input) float64 {
		d := bfsDistances(in, 0)
		sum, cnt := 0, 0
		for _, x := range d {
			if x > 0 {
				sum += x
				cnt++
			}
		}
		return float64(sum) / float64(cnt)
	}
	ringAvg, smallAvg := avg(ring), avg(small)
	if smallAvg >= ringAvg/2 {
		t.Errorf("rewiring did not shrink path length: ring %.1f, rewired %.1f", ringAvg, smallAvg)
	}
}

func TestWattsStrogatzParameterValidation(t *testing.T) {
	cases := []struct{ n, k int }{{3, 2}, {10, 3}, {10, 0}, {10, 10}}
	for _, c := range cases {
		if _, err := WattsStrogatz(c.n, c.k, 0.1, 1); err == nil {
			t.Errorf("n=%d k=%d accepted", c.n, c.k)
		}
	}
	if _, err := WattsStrogatz(10, 2, 1.5, 1); err == nil {
		t.Error("beta out of range accepted")
	}
}

func TestBarabasiAlbertDegreeDistribution(t *testing.T) {
	in, err := BarabasiAlbert(2000, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err == nil {
		// Validate requires source != sink which defaults 0/0; set them.
		in.Source, in.Sink = PickEndpoints(in)
	}
	noDuplicateEdges(t, in)
	deg := Degrees(in)
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	// Heavy tail: the max degree must greatly exceed the median (a hub
	// exists), and the minimum degree must be >= m for attached vertices.
	if deg[0] < 5*deg[len(deg)/2] {
		t.Errorf("no hub: max degree %d vs median %d", deg[0], deg[len(deg)/2])
	}
	// Connectivity: preferential attachment yields one component.
	d := bfsDistances(in, 0)
	for v, x := range d {
		if x < 0 {
			t.Fatalf("vertex %d unreachable", v)
		}
	}
}

func TestBarabasiAlbertLowDiameter(t *testing.T) {
	in, err := BarabasiAlbert(5000, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := bfsDistances(in, 0)
	max := 0
	for _, x := range d {
		if x > max {
			max = x
		}
	}
	// Scale-free graphs have diameter ~ log n / log log n; allow slack.
	if max > 10 {
		t.Errorf("eccentricity %d too large for a scale-free graph of 5000 vertices", max)
	}
}

func TestRMATProperties(t *testing.T) {
	in, err := RMAT(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	noDuplicateEdges(t, in)
	if in.NumVertices != 1024 {
		t.Errorf("n = %d, want 1024", in.NumVertices)
	}
	if len(in.Edges) < 1024*6 {
		t.Errorf("edge count %d below expectation", len(in.Edges))
	}
	deg := Degrees(in)
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	if deg[0] < 3*deg[len(deg)/4] {
		t.Errorf("R-MAT degree skew missing: max %d vs p75 %d", deg[0], deg[len(deg)/4])
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	in, err := ErdosRenyi(500, 1500, 6)
	if err != nil {
		t.Fatal(err)
	}
	noDuplicateEdges(t, in)
	if len(in.Edges) != 1500 {
		t.Errorf("edge count %d, want 1500", len(in.Edges))
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a, err := BarabasiAlbert(300, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(300, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("same seed diverged at edge %d", i)
		}
	}
	c, err := BarabasiAlbert(300, 3, 78)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Edges) == len(c.Edges)
	if same {
		identical := true
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestCrawlChainNesting(t *testing.T) {
	specs := []FBSpec{
		{Name: "A", Vertices: 500},
		{Name: "B", Vertices: 1200},
		{Name: "C", Vertices: 3000},
	}
	chain, err := CrawlChain(specs, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain length %d", len(chain))
	}
	for i, sub := range chain {
		if sub.NumVertices != specs[i].Vertices {
			t.Errorf("chain[%d] has %d vertices, want %d", i, sub.NumVertices, specs[i].Vertices)
		}
		for _, e := range sub.Edges {
			if int(e.U) >= sub.NumVertices || int(e.V) >= sub.NumVertices {
				t.Fatalf("chain[%d] edge out of range: %v", i, e)
			}
		}
	}
	// Nesting: every edge of chain[i] appears in chain[i+1].
	for i := 0; i < len(chain)-1; i++ {
		bigger := make(map[[2]graph.VertexID]bool, len(chain[i+1].Edges))
		for _, e := range chain[i+1].Edges {
			bigger[[2]graph.VertexID{e.U, e.V}] = true
		}
		for _, e := range chain[i].Edges {
			if !bigger[[2]graph.VertexID{e.U, e.V}] {
				t.Fatalf("edge %v of chain[%d] missing from chain[%d]", e, i, i+1)
			}
		}
	}
	// Edge growth should roughly track the paper's super-linear growth.
	if len(chain[2].Edges) <= len(chain[1].Edges) || len(chain[1].Edges) <= len(chain[0].Edges) {
		t.Error("edge counts not increasing along the chain")
	}
	// Crawled subgraphs must be connected at the small end.
	d := bfsDistances(chain[0], 0)
	unreachable := 0
	for _, x := range d {
		if x < 0 {
			unreachable++
		}
	}
	if unreachable > 0 {
		t.Errorf("%d unreachable vertices in the crawled subgraph", unreachable)
	}
}

func TestCrawlChainValidation(t *testing.T) {
	if _, err := CrawlChain(nil, 3, 1); err == nil {
		t.Error("empty spec accepted")
	}
	bad := []FBSpec{{Name: "A", Vertices: 100}, {Name: "B", Vertices: 100}}
	if _, err := CrawlChain(bad, 3, 1); err == nil {
		t.Error("non-increasing chain accepted")
	}
}

func TestAttachSuperSourceSink(t *testing.T) {
	base, err := BarabasiAlbert(500, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	in, err := AttachSuperSourceSink(base, 8, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumVertices != base.NumVertices+2 {
		t.Errorf("vertex count %d", in.NumVertices)
	}
	if len(in.Edges) != len(base.Edges)+16 {
		t.Errorf("edge count %d, want %d", len(in.Edges), len(base.Edges)+16)
	}
	var sTaps, tTaps int
	taps := make(map[graph.VertexID]int)
	for _, e := range in.Edges[len(base.Edges):] {
		if !e.Directed || e.Cap != graph.CapInf {
			t.Errorf("super edge not infinite directed: %+v", e)
		}
		if e.U == in.Source {
			sTaps++
			taps[e.V]++
		}
		if e.V == in.Sink {
			tTaps++
			taps[e.U]++
		}
	}
	if sTaps != 8 || tTaps != 8 {
		t.Errorf("tap counts %d/%d, want 8/8", sTaps, tTaps)
	}
	for v, n := range taps {
		if n > 1 {
			t.Errorf("vertex %d tapped twice (source and sink sets overlap)", v)
		}
	}
}

func TestAttachSuperSourceSinkInsufficientDegree(t *testing.T) {
	base := &graph.Input{NumVertices: 4, Edges: []graph.InputEdge{
		{U: 0, V: 1, Cap: 1}, {U: 2, V: 3, Cap: 1},
	}}
	if _, err := AttachSuperSourceSink(base, 3, 1, 1); err == nil {
		t.Error("insufficient eligible vertices accepted")
	}
	if _, err := AttachSuperSourceSink(base, 0, 1, 1); err == nil {
		t.Error("w=0 accepted")
	}
}

func TestPickEndpoints(t *testing.T) {
	in := &graph.Input{NumVertices: 5, Edges: []graph.InputEdge{
		{U: 0, V: 1, Cap: 1}, {U: 0, V: 2, Cap: 1}, {U: 0, V: 3, Cap: 1},
		{U: 4, V: 1, Cap: 1}, {U: 4, V: 2, Cap: 1},
	}}
	s, tt := PickEndpoints(in)
	deg := Degrees(in)
	if s != 0 {
		t.Errorf("source = %d, want 0 (highest degree)", s)
	}
	if s == tt || deg[tt] != 2 {
		t.Errorf("sink = %d (degree %d), want a distinct degree-2 vertex", tt, deg[tt])
	}
}

func TestRandomCapacities(t *testing.T) {
	in, err := ErdosRenyi(100, 300, 14)
	if err != nil {
		t.Fatal(err)
	}
	RandomCapacities(in, 10, 15)
	seen := make(map[int64]bool)
	for _, e := range in.Edges {
		if e.Cap < 1 || e.Cap > 10 {
			t.Fatalf("capacity %d out of [1,10]", e.Cap)
		}
		seen[e.Cap] = true
	}
	if len(seen) < 5 {
		t.Errorf("capacities not spread: %d distinct values", len(seen))
	}
}

func TestDegreesMatchManualCount(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	in, err := ErdosRenyi(50, 120, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	deg := Degrees(in)
	var total int
	for _, d := range deg {
		total += d
	}
	if total != 2*len(in.Edges) {
		t.Errorf("degree sum %d != 2*edges %d", total, 2*len(in.Edges))
	}
}
