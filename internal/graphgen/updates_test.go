package graphgen

import (
	"testing"

	"ffmr/internal/graph"
)

func TestGenerateUpdatesShape(t *testing.T) {
	in, err := WattsStrogatz(200, 6, 0.1, 7)
	if err != nil {
		t.Fatalf("WattsStrogatz: %v", err)
	}
	RandomCapacities(in, 20, 7)
	withST, err := AttachSuperSourceSink(in, 4, 3, 7)
	if err != nil {
		t.Fatalf("AttachSuperSourceSink: %v", err)
	}

	batch, err := GenerateUpdates(withST, 60, DefaultUpdateProfile(), 11)
	if err != nil {
		t.Fatalf("GenerateUpdates: %v", err)
	}
	if len(batch) != 60 {
		t.Fatalf("got %d updates, want 60", len(batch))
	}

	// The batch must apply cleanly, and with AvoidST no update may touch
	// the super source/sink or their tap edges.
	updated, err := graph.ApplyUpdates(withST, batch)
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	var ops [3]int
	for i, u := range batch {
		switch u.Op {
		case graph.UpdateInsert:
			ops[0]++
			if u.Edge.U == withST.Source || u.Edge.V == withST.Source ||
				u.Edge.U == withST.Sink || u.Edge.V == withST.Sink {
				t.Errorf("update %d inserts at super source/sink: %+v", i, u.Edge)
			}
		case graph.UpdateSetCap:
			if u.Cap == 0 {
				ops[1]++
			} else {
				ops[2]++
			}
			e := withST.Edges[u.ID]
			if e.U == withST.Source || e.V == withST.Source || e.U == withST.Sink || e.V == withST.Sink {
				t.Errorf("update %d targets a tap edge %d", i, u.ID)
			}
		}
	}
	for kind, n := range map[string]int{"inserts": ops[0], "deletes": ops[1], "cap changes": ops[2]} {
		if n == 0 {
			t.Errorf("even profile generated no %s in 60 updates", kind)
		}
	}

	// Inserted edges must connect vertices with existing records
	// (degree >= 1 pre-batch): guaranteed by construction since insert
	// endpoints are found by walking existing adjacency.
	deg := make([]int, withST.NumVertices)
	for _, e := range withST.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	for i := len(withST.Edges); i < len(updated.Edges); i++ {
		e := updated.Edges[i]
		if deg[e.U] == 0 || deg[e.V] == 0 {
			t.Errorf("inserted edge %d touches an isolated vertex: %+v", i, e)
		}
	}
}

func TestGenerateUpdatesDeterministic(t *testing.T) {
	in, err := BarabasiAlbert(150, 3, 5)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	RandomCapacities(in, 10, 5)
	a, err := GenerateUpdates(in, 40, DefaultUpdateProfile(), 3)
	if err != nil {
		t.Fatalf("GenerateUpdates: %v", err)
	}
	b, err := GenerateUpdates(in, 40, DefaultUpdateProfile(), 3)
	if err != nil {
		t.Fatalf("GenerateUpdates: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("update %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateUpdatesValidation(t *testing.T) {
	in, _ := WattsStrogatz(50, 4, 0.1, 1)
	if _, err := GenerateUpdates(in, -1, DefaultUpdateProfile(), 1); err == nil {
		t.Error("negative n: expected error")
	}
	if _, err := GenerateUpdates(in, 5, UpdateProfile{}, 1); err == nil {
		t.Error("zero-weight profile: expected error")
	}
	p := DefaultUpdateProfile()
	p.MaxCap = 0
	if _, err := GenerateUpdates(in, 5, p, 1); err == nil {
		t.Error("MaxCap 0: expected error")
	}
}
