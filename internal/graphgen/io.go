package graphgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ffmr/internal/graph"
)

// Text edge-list format used by the command-line tools:
//
//	# comment lines are skipped
//	graph <numVertices> <source> <sink>
//	<u> <v> <capacity> [D]
//
// The optional trailing D marks a directed edge. The format is meant for
// interchange with external crawls and for inspecting generated graphs.

// WriteEdgeList writes a graph in the text edge-list format.
func WriteEdgeList(w io.Writer, in *graph.Input) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ffmr edge list: %d vertices, %d edges\n", in.NumVertices, len(in.Edges))
	fmt.Fprintf(bw, "graph %d %d %d\n", in.NumVertices, in.Source, in.Sink)
	for i := range in.Edges {
		e := &in.Edges[i]
		if e.Directed {
			fmt.Fprintf(bw, "%d %d %d D\n", e.U, e.V, e.Cap)
		} else {
			fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.Cap)
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format.
func ReadEdgeList(r io.Reader) (*graph.Input, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	in := &graph.Input{}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "graph" {
			if len(fields) != 4 {
				return nil, fmt.Errorf("graphgen: line %d: malformed graph header", line)
			}
			n, err1 := strconv.Atoi(fields[1])
			s, err2 := strconv.ParseUint(fields[2], 10, 32)
			t, err3 := strconv.ParseUint(fields[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graphgen: line %d: malformed graph header", line)
			}
			in.NumVertices = n
			in.Source = graph.VertexID(s)
			in.Sink = graph.VertexID(t)
			sawHeader = true
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("graphgen: line %d: edge before graph header", line)
		}
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("graphgen: line %d: malformed edge", line)
		}
		u, err1 := strconv.ParseUint(fields[0], 10, 32)
		v, err2 := strconv.ParseUint(fields[1], 10, 32)
		c, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graphgen: line %d: malformed edge", line)
		}
		e := graph.InputEdge{U: graph.VertexID(u), V: graph.VertexID(v), Cap: c}
		if len(fields) == 4 {
			if fields[3] != "D" {
				return nil, fmt.Errorf("graphgen: line %d: unknown edge flag %q", line, fields[3])
			}
			e.Directed = true
		}
		in.Edges = append(in.Edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("graphgen: missing graph header")
	}
	return in, in.Validate()
}
