// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated cluster: the FB1..FB6 graph
// table, Fig. 5 (runtime and rounds versus max-flow value), Fig. 6
// (optimization effectiveness FF1..FF5 versus BFS), Table I (per-round
// statistics of FF5), Fig. 7 (shuffle bytes per round across variants)
// and Fig. 8 (runtime scalability with graph size and cluster size),
// plus ablations for the Section III design choices.
//
// Each experiment returns both raw rows (for programmatic assertions in
// tests and benchmarks) and a rendered table/figure for human comparison
// against the paper.
package experiments

import (
	"fmt"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/stats"
	"ffmr/internal/trace"
)

// Scale bundles the knobs that size an experiment run. The paper's
// graphs are three orders of magnitude larger than what fits in one
// process; Tiny and Default provide proportionally scaled-down chains.
type Scale struct {
	// Chain is the nested FB-graph chain specification.
	Chain []graphgen.FBSpec
	// Attach is the Barabási-Albert attachment count of the master graph
	// (half the expected average degree).
	Attach int
	// Seed drives all randomized generation.
	Seed int64
	// W is the default number of super source/sink taps (the paper's w).
	W int
	// MinDegree is the eligibility threshold for tap vertices (the paper
	// uses "at least 3000 edges" of a 5000 cap; scaled down here).
	MinDegree int
	// Nodes and SlotsPerNode size the simulated cluster.
	Nodes        int
	SlotsPerNode int
	// Realistic applies the Hadoop-like cost model so simulated runtimes
	// include per-round overhead and bandwidth charges, as the paper's
	// wall-clock numbers do.
	Realistic bool
	// MemoryBudget, when positive, runs every cluster on the out-of-core
	// shuffle path: map outputs above this many raw bytes spill sorted
	// runs to SpillDir and reducers k-way merge them back. Zero keeps the
	// unbounded in-memory shuffle.
	MemoryBudget int64
	// SpillDir is where spill segments live (default: system temp dir).
	SpillDir string
	// SpillCompress DEFLATE-compresses spill segments.
	SpillCompress bool
	// Tracer, if non-nil, is threaded through the experiment's FFMR runs
	// so their run/round/job/task spans accumulate in one trace (exported
	// with the CLI's -trace flag). Trace-derived experiments (Table1,
	// Fig7) create a private tracer when this is nil.
	Tracer *trace.Tracer
	// Distributed, if non-nil, runs every job on this distributed
	// master/worker backend instead of the simulated engine (the cost
	// model still prices simulated time from the measured task profile).
	Distributed mapreduce.Backend
}

// Tiny returns a fast configuration for tests and benchmarks: the
// paper's chain scaled down 10,000x.
func Tiny() Scale {
	return Scale{
		Chain:        graphgen.TinyFBChain(),
		Attach:       4,
		Seed:         1,
		W:            8,
		MinDegree:    8,
		Nodes:        4,
		SlotsPerNode: 4,
		Realistic:    true,
	}
}

// Default returns the paper's chain scaled down 1,000x (FB6' has 411K
// vertices and ~2M edges); a full experiment sweep takes minutes.
func Default() Scale {
	return Scale{
		Chain:        graphgen.DefaultFBChain(),
		Attach:       5,
		Seed:         1,
		W:            16,
		MinDegree:    10,
		Nodes:        20,
		SlotsPerNode: 8,
		Realistic:    true,
	}
}

// newCluster builds a fresh simulated cluster for one run.
func (sc *Scale) newCluster(nodes int) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{Nodes: nodes, BlockSize: 1 << 20, Replication: 2})
	c := mapreduce.NewCluster(nodes, sc.SlotsPerNode, fs)
	if sc.Realistic {
		cm := mapreduce.DefaultCostModel()
		// Scale the fixed overhead with the scale of the graphs: the
		// paper observes ~10-15 minutes minimum per round at 1000x our
		// default size; charge a proportional constant.
		cm.RoundOverhead = 2 * time.Second
		cm.TaskOverhead = 20 * time.Millisecond
		c.Cost = cm
	} else {
		c.Cost = mapreduce.ZeroCostModel()
	}
	c.MemoryBudget = sc.MemoryBudget
	c.SpillDir = sc.SpillDir
	c.SpillCompress = sc.SpillCompress
	c.Distributed = sc.Distributed
	return c
}

// BuildChain generates the nested graph chain.
func (sc *Scale) BuildChain() ([]*graph.Input, error) {
	return graphgen.CrawlChain(sc.Chain, sc.Attach, sc.Seed)
}

// withSuperST attaches w super source/sink taps to a chain member.
func (sc *Scale) withSuperST(in *graph.Input, w int) (*graph.Input, error) {
	return graphgen.AttachSuperSourceSink(in, w, sc.MinDegree, sc.Seed+100)
}

// GraphRow is one row of the paper's Section V graph table.
type GraphRow struct {
	Name     string
	Vertices int
	Edges    int
	// SizeBytes is the converted graph's DFS footprint ("Size"),
	// MaxSizeBytes the largest per-round footprint ("Max Size").
	SizeBytes    int64
	MaxSizeBytes int64
	MaxFlow      int64
	Rounds       int
	// Diameter is the sampled BFS eccentricity estimate, the analogue of
	// the paper's "we estimate the value of D is between 7 to 14 for FB6
	// using a MR-based BFS".
	Diameter int
}

// GraphsTable reproduces the graph table of Section V: for each chain
// member it reports vertex/edge counts and the stored size before and at
// the peak of an FF5 max-flow run.
func GraphsTable(sc Scale) ([]GraphRow, *stats.Table, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	rows := make([]GraphRow, 0, len(chain))
	for i, base := range chain {
		in, err := sc.withSuperST(base, sc.W)
		if err != nil {
			return nil, nil, err
		}
		cluster := sc.newCluster(sc.Nodes)
		res, err := core.Run(cluster, in, core.Options{Variant: core.FF5})
		if err != nil {
			return nil, nil, err
		}
		m := graphgen.Measure(base, 4, sc.Seed)
		rows = append(rows, GraphRow{
			Name:         sc.Chain[i].Name,
			Vertices:     base.NumVertices,
			Edges:        len(base.Edges),
			SizeBytes:    res.InputGraphBytes,
			MaxSizeBytes: res.MaxGraphBytes,
			MaxFlow:      res.MaxFlow,
			Rounds:       res.Rounds,
			Diameter:     m.EstimatedDiameter,
		})
	}
	t := stats.NewTable("Graph table (paper Section V)",
		"Graph", "Vertices", "Edges", "Size", "Max Size", "|f*|", "Rounds", "D")
	for _, r := range rows {
		t.AddRow(r.Name, stats.FormatCount(int64(r.Vertices)), stats.FormatCount(int64(r.Edges)),
			stats.FormatBytes(r.SizeBytes), stats.FormatBytes(r.MaxSizeBytes),
			stats.FormatCount(r.MaxFlow), r.Rounds, r.Diameter)
	}
	return rows, t, nil
}

// Fig5Point is one x position of Fig. 5.
type Fig5Point struct {
	W       int
	MaxFlow int64
	Rounds  int
	SimTime time.Duration
}

// Fig5 reproduces Fig. 5: runtime and number of rounds versus max-flow
// value on the largest chain graph, varying the number of super
// source/sink taps w. The paper's headline: rounds stay nearly constant
// as |f*| grows by 128x.
func Fig5(sc Scale, ws []int) ([]Fig5Point, *stats.Figure, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	largest := chain[len(chain)-1]
	var points []Fig5Point
	fig := stats.NewFigure("Fig 5: runtime and rounds vs max-flow value (FF5, largest graph)",
		"maxflow", "runtime seconds / rounds")
	timeSeries := fig.AddSeries("runtime_s")
	roundSeries := fig.AddSeries("rounds")
	for _, w := range ws {
		in, err := sc.withSuperST(largest, w)
		if err != nil {
			return nil, nil, err
		}
		cluster := sc.newCluster(sc.Nodes)
		res, err := core.Run(cluster, in, core.Options{Variant: core.FF5})
		if err != nil {
			return nil, nil, err
		}
		points = append(points, Fig5Point{
			W: w, MaxFlow: res.MaxFlow, Rounds: res.Rounds, SimTime: res.TotalSimTime,
		})
		timeSeries.Add(float64(res.MaxFlow), res.TotalSimTime.Seconds())
		roundSeries.Add(float64(res.MaxFlow), float64(res.Rounds))
	}
	return points, fig, nil
}

// Fig6Row is one bar of Fig. 6.
type Fig6Row struct {
	Graph    string
	Algo     string
	Rounds   int
	SimTime  time.Duration
	WallTime time.Duration
	MaxFlow  int64
}

// Fig6 reproduces Fig. 6: the cumulative effectiveness of the FF1..FF5
// optimizations on a small and a large graph, with MR-BFS as the lower
// bound. The paper reports FF5 ~5.4x faster than FF1 on FB1 and ~14.2x
// on FB4.
func Fig6(sc Scale) ([]Fig6Row, *stats.Table, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	graphs := []struct {
		name string
		in   *graph.Input
	}{
		{sc.Chain[0].Name, chain[0]},
	}
	if len(chain) >= 4 {
		graphs = append(graphs, struct {
			name string
			in   *graph.Input
		}{sc.Chain[3].Name, chain[3]})
	}

	var rows []Fig6Row
	for _, g := range graphs {
		in, err := sc.withSuperST(g.in, sc.W)
		if err != nil {
			return nil, nil, err
		}
		for _, variant := range []core.Variant{core.FF1, core.FF2, core.FF3, core.FF4, core.FF5} {
			cluster := sc.newCluster(sc.Nodes)
			res, err := core.Run(cluster, in, core.Options{Variant: variant})
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, Fig6Row{
				Graph: g.name, Algo: variant.String(), Rounds: res.Rounds,
				SimTime: res.TotalSimTime, WallTime: res.TotalWallTime, MaxFlow: res.MaxFlow,
			})
		}
		cluster := sc.newCluster(sc.Nodes)
		bfs, err := core.RunBFS(cluster, in, 0, "")
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Fig6Row{
			Graph: g.name, Algo: "BFS", Rounds: bfs.Rounds,
			SimTime: bfs.TotalSimTime, WallTime: bfs.TotalWallTime,
		})
	}

	t := stats.NewTable("Fig 6: MR optimization effectiveness (FF1..FF5 vs BFS)",
		"Graph", "Algo", "Rounds", "SimTime", "WallTime", "|f*|", "Speedup vs FF1")
	base := map[string]time.Duration{}
	for _, r := range rows {
		if r.Algo == "FF1" {
			base[r.Graph] = r.SimTime
		}
	}
	for _, r := range rows {
		speedup := ""
		if b, ok := base[r.Graph]; ok && r.Algo != "BFS" {
			speedup = stats.Speedup(b, r.SimTime)
		}
		t.AddRow(r.Graph, r.Algo, r.Rounds, stats.FormatDuration(r.SimTime),
			stats.FormatDuration(r.WallTime), stats.FormatCount(r.MaxFlow), speedup)
	}
	return rows, t, nil
}

// Table1 reproduces Table I: per-round Hadoop, aug_proc and runtime
// statistics of FF5 on the largest graph. The rendered rows come from
// the run's trace (round spans under Result.RunSpan), not from a second
// bookkeeping path, so a -trace export and the printed table can never
// disagree. A private tracer is created when sc.Tracer is nil.
func Table1(sc Scale, w int) (*core.Result, *stats.Table, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	in, err := sc.withSuperST(chain[len(chain)-1], w)
	if err != nil {
		return nil, nil, err
	}
	tr := sc.Tracer
	if tr == nil {
		tr = trace.New()
	}
	cluster := sc.newCluster(sc.Nodes)
	res, err := core.Run(cluster, in, core.Options{Variant: core.FF5, Tracer: tr})
	if err != nil {
		return nil, nil, err
	}
	t := stats.RoundTable(
		fmt.Sprintf("Table I: FF5 per-round statistics (largest graph, w=%d, |f*|=%d)", w, res.MaxFlow),
		trace.RoundSummariesUnder(res.RunSpan))
	return res, t, nil
}

// Fig7Variant holds one variant's per-round shuffle bytes.
type Fig7Variant struct {
	Algo   string
	Rounds []int64 // shuffle bytes per round, index = round
}

// Fig7 reproduces Fig. 7: total shuffle bytes per round for FF1, FF2,
// FF3 and FF5 (FF4 does not change shuffle volume, as the paper notes).
// Like Table1, the per-round values are read back from each run's trace
// spans rather than a parallel stats path.
func Fig7(sc Scale) ([]Fig7Variant, *stats.Figure, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	in, err := sc.withSuperST(chain[0], sc.W)
	if err != nil {
		return nil, nil, err
	}
	tr := sc.Tracer
	if tr == nil {
		tr = trace.New()
	}
	fig := stats.NewFigure("Fig 7: shuffle bytes per round", "round", "shuffle bytes")
	var out []Fig7Variant
	for _, variant := range []core.Variant{core.FF1, core.FF2, core.FF3, core.FF5} {
		cluster := sc.newCluster(sc.Nodes)
		res, err := core.Run(cluster, in, core.Options{Variant: variant, Tracer: tr})
		if err != nil {
			return nil, nil, err
		}
		v := Fig7Variant{Algo: variant.String()}
		s := fig.AddSeries(variant.String())
		for _, rs := range trace.RoundSummariesUnder(res.RunSpan) {
			v.Rounds = append(v.Rounds, rs.ShuffleBytes)
			s.Add(float64(rs.Round), float64(rs.ShuffleBytes))
		}
		out = append(out, v)
	}
	return out, fig, nil
}

// Fig8Point is one measurement of Fig. 8.
type Fig8Point struct {
	Graph   string
	Edges   int
	Nodes   int
	Algo    string
	Rounds  int
	MaxFlow int64
	SimTime time.Duration
	// ShuffleBytes is the run's total shuffle volume, a scale signal
	// that is much less sensitive to round-count jitter than time.
	ShuffleBytes int64
}

// Fig8 reproduces Fig. 8: FF5 runtime versus graph size for several
// cluster sizes, plus MR-BFS at the largest cluster as the lower bound.
// The paper's headline: near-linear runtime in |E| despite the quadratic
// worst case, attributed to the small-world property.
func Fig8(sc Scale, nodeCounts []int) ([]Fig8Point, *stats.Figure, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	fig := stats.NewFigure("Fig 8: runtime scalability with graph size",
		"edges", "runtime seconds")
	var points []Fig8Point
	series := make(map[int]*stats.Series, len(nodeCounts))
	for _, n := range nodeCounts {
		series[n] = fig.AddSeries(fmt.Sprintf("FF5(%dm)", n))
	}
	bfsSeries := fig.AddSeries(fmt.Sprintf("BFS(%dm)", nodeCounts[len(nodeCounts)-1]))

	for i, base := range chain {
		in, err := sc.withSuperST(base, sc.W)
		if err != nil {
			return nil, nil, err
		}
		for _, nodes := range nodeCounts {
			cluster := sc.newCluster(nodes)
			res, err := core.Run(cluster, in, core.Options{Variant: core.FF5})
			if err != nil {
				return nil, nil, err
			}
			var shuffle int64
			for _, rs := range res.RoundStats {
				shuffle += rs.ShuffleBytes
			}
			points = append(points, Fig8Point{
				Graph: sc.Chain[i].Name, Edges: len(base.Edges), Nodes: nodes,
				Algo: "FF5", Rounds: res.Rounds, MaxFlow: res.MaxFlow, SimTime: res.TotalSimTime,
				ShuffleBytes: shuffle,
			})
			series[nodes].Add(float64(len(base.Edges)), res.TotalSimTime.Seconds())
		}
		cluster := sc.newCluster(nodeCounts[len(nodeCounts)-1])
		bfs, err := core.RunBFS(cluster, in, 0, "")
		if err != nil {
			return nil, nil, err
		}
		points = append(points, Fig8Point{
			Graph: sc.Chain[i].Name, Edges: len(base.Edges), Nodes: nodeCounts[len(nodeCounts)-1],
			Algo: "BFS", Rounds: bfs.Rounds, SimTime: bfs.TotalSimTime,
		})
		bfsSeries.Add(float64(len(base.Edges)), bfs.TotalSimTime.Seconds())
	}
	return points, fig, nil
}

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Config  string
	Rounds  int
	MaxFlow int64
	SimTime time.Duration
	Shuffle int64
}

// AblationTechniques quantifies the Section III-B design choices on the
// smallest chain graph: bi-directional search (claimed to halve rounds)
// and multiple excess paths (claimed the largest round reduction).
func AblationTechniques(sc Scale) ([]AblationRow, *stats.Table, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	in, err := sc.withSuperST(chain[0], sc.W)
	if err != nil {
		return nil, nil, err
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"full (bidir + multipath k=4)", core.Options{Variant: core.FF2}},
		{"no bidirectional search", core.Options{Variant: core.FF2, DisableBidirectional: true}},
		{"no multiple paths (k=1)", core.Options{Variant: core.FF2, DisableMultiPaths: true}},
		{"neither", core.Options{Variant: core.FF2, DisableBidirectional: true, DisableMultiPaths: true}},
	}
	var rows []AblationRow
	t := stats.NewTable("Ablation: parallelization techniques (Section III-B)",
		"Config", "Rounds", "|f*|", "SimTime", "Shuffle")
	for _, cfg := range configs {
		cluster := sc.newCluster(sc.Nodes)
		res, err := core.Run(cluster, in, cfg.opts)
		if err != nil {
			return nil, nil, err
		}
		var shuffle int64
		for _, rs := range res.RoundStats {
			shuffle += rs.ShuffleBytes
		}
		rows = append(rows, AblationRow{
			Config: cfg.name, Rounds: res.Rounds, MaxFlow: res.MaxFlow,
			SimTime: res.TotalSimTime, Shuffle: shuffle,
		})
		t.AddRow(cfg.name, res.Rounds, stats.FormatCount(res.MaxFlow),
			stats.FormatDuration(res.TotalSimTime), stats.FormatBytes(shuffle))
	}
	return rows, t, nil
}

// MRBSPRow is one line of the MapReduce-versus-Pregel comparison.
type MRBSPRow struct {
	Engine    string
	Rounds    int
	MaxFlow   int64
	DataBytes int64 // shuffle bytes (MR) or message bytes (BSP)
	WallTime  time.Duration
	SimTime   time.Duration // zero for BSP (no cluster cost model)
}

// CompareMRBSP tests the paper's closing conjecture ("the ideas
// presented in this paper also translate to Pregel") by running the MR
// FF5 implementation and the BSP translation on the same workload. The
// expected shape: equal flow values, same-order round counts, and BSP
// data volume far below FF1's shuffle (master records never travel).
func CompareMRBSP(sc Scale) ([]MRBSPRow, *stats.Table, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	in, err := sc.withSuperST(chain[0], sc.W)
	if err != nil {
		return nil, nil, err
	}
	var rows []MRBSPRow
	for _, variant := range []core.Variant{core.FF1, core.FF5} {
		cluster := sc.newCluster(sc.Nodes)
		res, err := core.Run(cluster, in, core.Options{Variant: variant})
		if err != nil {
			return nil, nil, err
		}
		var shuffle int64
		for _, rs := range res.RoundStats {
			shuffle += rs.ShuffleBytes
		}
		rows = append(rows, MRBSPRow{
			Engine: "MR-" + variant.String(), Rounds: res.Rounds, MaxFlow: res.MaxFlow,
			DataBytes: shuffle, WallTime: res.TotalWallTime, SimTime: res.TotalSimTime,
		})
	}
	bsp, err := core.RunBSP(in, core.BSPOptions{Workers: sc.Nodes * sc.SlotsPerNode})
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, MRBSPRow{
		Engine: "BSP-FF", Rounds: bsp.Supersteps, MaxFlow: bsp.MaxFlow,
		DataBytes: bsp.MessageBytes, WallTime: bsp.WallTime,
	})

	t := stats.NewTable("MapReduce vs Pregel/BSP (Section II-B conjecture)",
		"Engine", "Rounds", "|f*|", "Data moved", "WallTime")
	for _, r := range rows {
		t.AddRow(r.Engine, r.Rounds, stats.FormatCount(r.MaxFlow),
			stats.FormatBytes(r.DataBytes), stats.FormatDuration(r.WallTime))
	}
	return rows, t, nil
}

// AblationCombiner reproduces the paper's Section IV-B footnote: "we do
// not use any combiners as we found worse performance. As a rule of
// thumb, combiners are only cost-effective if the map output can be
// aggregated sufficiently, i.e. by 20-30%." The sweep runs FF2 with and
// without the fragment combiner and reports shuffle volume and time.
func AblationCombiner(sc Scale) ([]AblationRow, *stats.Table, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	in, err := sc.withSuperST(chain[0], sc.W)
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	t := stats.NewTable("Ablation: map-side combiner (Section IV-B footnote)",
		"Config", "Rounds", "|f*|", "SimTime", "WallTime", "Shuffle")
	for _, useCombiner := range []bool{false, true} {
		name := "no combiner"
		if useCombiner {
			name = "fragment combiner"
		}
		cluster := sc.newCluster(sc.Nodes)
		res, err := core.Run(cluster, in, core.Options{Variant: core.FF2, UseCombiner: useCombiner})
		if err != nil {
			return nil, nil, err
		}
		var shuffle int64
		for _, rs := range res.RoundStats {
			shuffle += rs.ShuffleBytes
		}
		rows = append(rows, AblationRow{
			Config: name, Rounds: res.Rounds, MaxFlow: res.MaxFlow,
			SimTime: res.TotalSimTime, Shuffle: shuffle,
		})
		t.AddRow(name, res.Rounds, stats.FormatCount(res.MaxFlow),
			stats.FormatDuration(res.TotalSimTime), stats.FormatDuration(res.TotalWallTime),
			stats.FormatBytes(shuffle))
	}
	return rows, t, nil
}

// AblationK sweeps the per-vertex excess-path limit k (Section III-B3:
// "the larger the k, the less likely a vertex will become inactive ...
// however, the overhead ... also increases").
func AblationK(sc Scale, ks []int) ([]AblationRow, *stats.Table, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	in, err := sc.withSuperST(chain[0], sc.W)
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	t := stats.NewTable("Ablation: excess-path limit k", "k", "Rounds", "|f*|", "SimTime", "Shuffle")
	for _, k := range ks {
		cluster := sc.newCluster(sc.Nodes)
		res, err := core.Run(cluster, in, core.Options{Variant: core.FF2, K: k})
		if err != nil {
			return nil, nil, err
		}
		var shuffle int64
		for _, rs := range res.RoundStats {
			shuffle += rs.ShuffleBytes
		}
		rows = append(rows, AblationRow{
			Config: fmt.Sprintf("k=%d", k), Rounds: res.Rounds, MaxFlow: res.MaxFlow,
			SimTime: res.TotalSimTime, Shuffle: shuffle,
		})
		t.AddRow(k, res.Rounds, stats.FormatCount(res.MaxFlow),
			stats.FormatDuration(res.TotalSimTime), stats.FormatBytes(shuffle))
	}
	return rows, t, nil
}
