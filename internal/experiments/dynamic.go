package experiments

import (
	"fmt"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/dynamic"
	"ffmr/internal/graphgen"
	"ffmr/internal/stats"
)

// This file adds the dynamic-graph experiment: warm-restart incremental
// max-flow (internal/dynamic) versus a cold from-scratch recompute over
// the same update batches. The paper computes static flows only; this
// experiment quantifies when resuming from persisted state beats
// rerunning, and where the crossover lies as batches grow.

// WarmColdRow is one generation of the warm-versus-cold comparison: the
// same updated graph solved both ways.
type WarmColdRow struct {
	Graph     string
	BatchSize int
	Gen       int
	MaxFlow   int64
	// Violations and CancelledFlow describe the repair the batch forced.
	Violations    int
	CancelledFlow int64
	// Warm numbers come from dynamic.Apply; WarmSim charges the full
	// incremental pipeline (apply + drain jobs + warm rounds). Cold
	// numbers come from core.Run on the same updated graph.
	WarmRounds int
	ColdRounds int
	WarmSim    time.Duration
	ColdSim    time.Duration
}

// WarmVsCold applies gens randomized update batches of each given size
// to a chain graph and solves every updated graph twice: warm (resumed
// from the previous generation's persisted records) and cold (from
// scratch). The two flows must agree — a mismatch is an error, making
// every run of this experiment a differential test — and the returned
// rows carry the rounds/simulated-time comparison that EXPERIMENTS.md
// tabulates.
func WarmVsCold(sc Scale, batchSizes []int, gens int) ([]WarmColdRow, *stats.Table, error) {
	chain, err := sc.BuildChain()
	if err != nil {
		return nil, nil, err
	}
	name := sc.Chain[0].Name
	in, err := sc.withSuperST(chain[0], sc.W)
	if err != nil {
		return nil, nil, err
	}

	profile := graphgen.DefaultUpdateProfile()
	var rows []WarmColdRow
	for _, size := range batchSizes {
		cluster := sc.newCluster(sc.Nodes)
		snap, err := dynamic.Solve(cluster, in, core.Options{
			Variant: core.FF5, Tracer: sc.Tracer,
			PathPrefix: fmt.Sprintf("warmcold-%d/", size),
		})
		if err != nil {
			return nil, nil, err
		}
		for gen := 1; gen <= gens; gen++ {
			batch, err := graphgen.GenerateUpdates(snap.Input, size, profile, sc.Seed+int64(1000*size+gen))
			if err != nil {
				return nil, nil, err
			}
			out, err := dynamic.Apply(cluster, snap, batch)
			if err != nil {
				return nil, nil, err
			}
			coldRes, err := core.Run(sc.newCluster(sc.Nodes), out.Snapshot.Input,
				core.Options{Variant: core.FF5})
			if err != nil {
				return nil, nil, err
			}
			if coldRes.MaxFlow != out.Warm.MaxFlow {
				return nil, nil, fmt.Errorf(
					"experiments: warm/cold flows diverge on %s batch %d gen %d: warm %d, cold %d",
					name, size, gen, out.Warm.MaxFlow, coldRes.MaxFlow)
			}
			rows = append(rows, WarmColdRow{
				Graph: name, BatchSize: size, Gen: gen, MaxFlow: out.Warm.MaxFlow,
				Violations: out.Violations, CancelledFlow: out.CancelledFlow,
				WarmRounds: out.Warm.Rounds, ColdRounds: coldRes.Rounds,
				WarmSim: out.Warm.TotalSimTime + out.RepairSimTime, ColdSim: coldRes.TotalSimTime,
			})
			snap = out.Snapshot
		}
	}

	t := stats.NewTable("Warm restart vs cold recompute (FF5, "+name+")",
		"Batch", "Gen", "|f*|", "Violations", "Cancelled", "Warm Rounds", "Cold Rounds",
		"Warm SimTime", "Cold SimTime", "Speedup")
	for _, r := range rows {
		t.AddRow(r.BatchSize, r.Gen, stats.FormatCount(r.MaxFlow), r.Violations,
			stats.FormatCount(r.CancelledFlow), r.WarmRounds, r.ColdRounds,
			stats.FormatDuration(r.WarmSim), stats.FormatDuration(r.ColdSim),
			stats.Speedup(r.ColdSim, r.WarmSim))
	}
	return rows, t, nil
}
