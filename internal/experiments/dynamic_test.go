package experiments

import "testing"

func TestWarmVsColdShape(t *testing.T) {
	sc := micro()
	sc.Chain = sc.Chain[:1]
	rows, tbl, err := WarmVsCold(sc, []int{6, 12}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 batch sizes x 2 gens)", len(rows))
	}
	for _, r := range rows {
		if r.MaxFlow <= 0 {
			t.Errorf("batch %d gen %d: non-positive flow %d", r.BatchSize, r.Gen, r.MaxFlow)
		}
		if r.WarmRounds < 0 || r.ColdRounds <= 0 {
			t.Errorf("batch %d gen %d: bad round counts warm=%d cold=%d",
				r.BatchSize, r.Gen, r.WarmRounds, r.ColdRounds)
		}
		// WarmVsCold itself errors when warm and cold flows diverge, so
		// reaching here means every generation passed the differential.
	}
	if tbl == nil || tbl.String() == "" {
		t.Error("empty rendered table")
	}
}

// TestWarmBeatsColdOnSmallBatches pins the experiment's headline under
// the realistic cost model: for small batches the warm restart's rounds
// (and hence simulated time, which is dominated by per-round overhead)
// stay strictly below the cold recompute's.
func TestWarmBeatsColdOnSmallBatches(t *testing.T) {
	sc := micro()
	sc.Chain = sc.Chain[:1]
	sc.Realistic = true
	rows, _, err := WarmVsCold(sc, []int{4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.WarmRounds >= r.ColdRounds {
			t.Errorf("batch %d gen %d: warm rounds %d not below cold rounds %d",
				r.BatchSize, r.Gen, r.WarmRounds, r.ColdRounds)
		}
		if r.WarmSim >= r.ColdSim {
			t.Errorf("batch %d gen %d: warm sim %v not below cold sim %v",
				r.BatchSize, r.Gen, r.WarmSim, r.ColdSim)
		}
	}
}
