package experiments

import (
	"testing"
	"time"

	"ffmr/internal/graphgen"
	"ffmr/internal/maxflow"
)

// micro returns a very small scale for unit tests.
func micro() Scale {
	return Scale{
		Chain: []graphgen.FBSpec{
			{Name: "FB1", Vertices: 300},
			{Name: "FB2", Vertices: 700},
			{Name: "FB3", Vertices: 1000},
			{Name: "FB4", Vertices: 1500},
		},
		Attach:       3,
		Seed:         1,
		W:            4,
		MinDegree:    4,
		Nodes:        3,
		SlotsPerNode: 4,
		Realistic:    false,
	}
}

func TestGraphsTableShape(t *testing.T) {
	sc := micro()
	rows, tbl, err := GraphsTable(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sc.Chain) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Vertices <= rows[i-1].Vertices || rows[i].Edges <= rows[i-1].Edges {
			t.Errorf("row %d not larger than row %d", i, i-1)
		}
		if rows[i].SizeBytes <= rows[i-1].SizeBytes {
			t.Errorf("size not growing at row %d", i)
		}
	}
	for _, r := range rows {
		if r.MaxSizeBytes < r.SizeBytes {
			t.Errorf("%s: max size %d below size %d", r.Name, r.MaxSizeBytes, r.SizeBytes)
		}
		if r.MaxFlow <= 0 {
			t.Errorf("%s: zero max flow", r.Name)
		}
		// The paper: rounds are "consistent with" the diameter estimate,
		// with bi-directional search halving them. Allow generous slack
		// for saturation-induced re-exploration.
		if r.Diameter <= 0 {
			t.Errorf("%s: no diameter estimate", r.Name)
		}
		if r.Rounds > 2*r.Diameter+4 {
			t.Errorf("%s: %d rounds far exceeds diameter %d", r.Name, r.Rounds, r.Diameter)
		}
	}
	if tbl.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig5RoundsNearlyConstant(t *testing.T) {
	sc := micro()
	points, fig, err := Fig5(sc, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Max flow must grow with w...
	if points[2].MaxFlow <= points[0].MaxFlow {
		t.Errorf("maxflow did not grow with w: %v", points)
	}
	// ...while rounds stay nearly constant (the paper's headline). Allow
	// a factor of 2 at this micro scale.
	if points[2].Rounds > 2*points[0].Rounds+2 {
		t.Errorf("rounds exploded with flow value: %v", points)
	}
	if fig.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig6OrderingAndCorrectness(t *testing.T) {
	sc := micro()
	rows, tbl, err := Fig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	// 5 variants + BFS per graph, 2 graphs.
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	// All variants must agree on the flow value per graph.
	flows := map[string]int64{}
	for _, r := range rows {
		if r.Algo == "BFS" {
			continue
		}
		if prev, ok := flows[r.Graph]; ok && prev != r.MaxFlow {
			t.Errorf("%s: %s computed %d, earlier variant %d", r.Graph, r.Algo, r.MaxFlow, prev)
		}
		flows[r.Graph] = r.MaxFlow
	}
	if tbl.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTable1Shape(t *testing.T) {
	sc := micro()
	res, tbl, err := Table1(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Errorf("only %d rounds", res.Rounds)
	}
	var accepted int64
	for _, rs := range res.RoundStats {
		accepted += rs.APaths
	}
	if accepted == 0 {
		t.Error("no augmenting paths accepted")
	}
	if tbl.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig7ShuffleOrdering(t *testing.T) {
	sc := micro()
	variants, fig, err := Fig7(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 4 {
		t.Fatalf("got %d variants", len(variants))
	}
	total := map[string]int64{}
	for _, v := range variants {
		for _, b := range v.Rounds {
			total[v.Algo] += b
		}
	}
	// The paper's Fig. 7 ordering: each successive optimization shuffles
	// fewer bytes. FF2 < FF1 and FF3 < FF2 must hold structurally (paths
	// not shuffled to t; masters not re-shuffled); FF5 <= FF3 (no
	// redundant re-sends).
	if total["FF2"] >= total["FF1"] {
		t.Errorf("FF2 (%d) did not shuffle less than FF1 (%d)", total["FF2"], total["FF1"])
	}
	if total["FF3"] >= total["FF2"] {
		t.Errorf("FF3 (%d) did not shuffle less than FF2 (%d)", total["FF3"], total["FF2"])
	}
	// FF5's saving concentrates in late rounds; with acceptance-order
	// nondeterminism a run can draw an extra round, so allow 15% noise.
	if float64(total["FF5"]) > 1.15*float64(total["FF3"]) {
		t.Errorf("FF5 (%d) shuffled more than FF3 (%d)", total["FF5"], total["FF3"])
	}
	if fig.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig8ScalesWithGraphAndCluster(t *testing.T) {
	sc := micro()
	sc.Realistic = true // scalability claims are about modelled time
	points, fig, err := Fig8(sc, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	// For the largest graph, more nodes must not make a round slower.
	// (Total time can differ by a round or two because acceptance order
	// shifts with the reducer count, so compare per-round time.)
	var small, big time.Duration
	largest := sc.Chain[len(sc.Chain)-1].Name
	for _, p := range points {
		if p.Graph == largest && p.Algo == "FF5" {
			perRound := p.SimTime / time.Duration(p.Rounds+1)
			switch p.Nodes {
			case 2:
				small = perRound
			case 8:
				big = perRound
			}
		}
	}
	if small == 0 || big == 0 {
		t.Fatal("missing scalability points")
	}
	if float64(big) > 1.25*float64(small) {
		t.Errorf("per-round time at 8 nodes (%v) slower than at 2 nodes (%v)", big, small)
	}
	// Data volume must grow with graph size at a fixed cluster size
	// (time at this micro scale is dominated by fixed round overhead and
	// jitters with round counts; shuffle volume tracks size faithfully).
	var first, last int64
	for _, p := range points {
		if p.Algo != "FF5" || p.Nodes != 8 {
			continue
		}
		if p.Graph == sc.Chain[0].Name {
			first = p.ShuffleBytes
		}
		if p.Graph == largest {
			last = p.ShuffleBytes
		}
	}
	if last <= first {
		t.Errorf("largest graph shuffled %d bytes, smallest %d; expected growth", last, first)
	}
	if fig.String() == "" {
		t.Error("empty rendering")
	}
}

func TestAblationTechniques(t *testing.T) {
	rows, tbl, err := AblationTechniques(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// All configurations must agree on the flow value (they are all
	// correct algorithms, just differently parallel).
	for _, r := range rows[1:] {
		if r.MaxFlow != rows[0].MaxFlow {
			t.Errorf("%s computed %d, full config %d", r.Config, r.MaxFlow, rows[0].MaxFlow)
		}
	}
	// Bi-directional search must not increase rounds.
	if rows[0].Rounds > rows[1].Rounds {
		t.Errorf("bidirectional (%d rounds) worse than unidirectional (%d)",
			rows[0].Rounds, rows[1].Rounds)
	}
	if tbl.String() == "" {
		t.Error("empty rendering")
	}
}

func TestAblationK(t *testing.T) {
	rows, _, err := AblationK(micro(), []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[1:] {
		if r.MaxFlow != rows[0].MaxFlow {
			t.Errorf("%s computed %d, k=1 computed %d", r.Config, r.MaxFlow, rows[0].MaxFlow)
		}
	}
}

func TestAblationCombiner(t *testing.T) {
	rows, tbl, err := AblationCombiner(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].MaxFlow != rows[1].MaxFlow {
		t.Errorf("combiner changed the flow: %d vs %d", rows[0].MaxFlow, rows[1].MaxFlow)
	}
	// The paper's finding: fragment streams do not aggregate enough for a
	// combiner to pay off ("combiners are only cost-effective if the map
	// output can be aggregated ... by 20-30%"). Assert the aggregation is
	// indeed far below that threshold — shuffle changes by well under 20%
	// in either direction (round-count jitter can push it slightly up).
	// Round-count jitter (acceptance-order nondeterminism) moves total
	// shuffle by up to ~a round's worth in either direction, so the band
	// is wide; the paper's "not cost-effective" claim is the absence of a
	// multi-fold reduction, not a precise ratio.
	lo := rows[0].Shuffle * 50 / 100
	hi := rows[0].Shuffle * 150 / 100
	if rows[1].Shuffle < lo || rows[1].Shuffle > hi {
		t.Errorf("combiner moved shuffle outside the no-benefit band: %d vs %d",
			rows[1].Shuffle, rows[0].Shuffle)
	}
	if tbl.String() == "" {
		t.Error("empty rendering")
	}
}

func TestCompareMRBSP(t *testing.T) {
	rows, tbl, err := CompareMRBSP(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	flows := map[int64]bool{}
	var ff1Bytes, bspBytes int64
	for _, r := range rows {
		flows[r.MaxFlow] = true
		switch r.Engine {
		case "MR-FF1":
			ff1Bytes = r.DataBytes
		case "BSP-FF":
			bspBytes = r.DataBytes
		}
	}
	if len(flows) != 1 {
		t.Errorf("engines disagree on the flow value: %v", rows)
	}
	if bspBytes >= ff1Bytes {
		t.Errorf("BSP moved %d bytes, FF1 shuffled %d; want BSP far below", bspBytes, ff1Bytes)
	}
	if tbl.String() == "" {
		t.Error("empty rendering")
	}
}

// TestExperimentsAgainstDinic cross-checks a whole chain's FF5 flows
// against the sequential oracle.
func TestExperimentsAgainstDinic(t *testing.T) {
	sc := micro()
	chain, err := sc.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := GraphsTable(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, base := range chain {
		in, err := sc.withSuperST(base, sc.W)
		if err != nil {
			t.Fatal(err)
		}
		net, err := maxflow.FromInput(in)
		if err != nil {
			t.Fatal(err)
		}
		want := maxflow.Dinic(net, int(in.Source), int(in.Sink))
		if rows[i].MaxFlow != want {
			t.Errorf("%s: FF5 = %d, dinic = %d", rows[i].Name, rows[i].MaxFlow, want)
		}
	}
}
