package experiments

import (
	"testing"

	"ffmr/internal/graphgen"
)

func TestPortfolioShape(t *testing.T) {
	sc := micro()
	sc.Chain = sc.Chain[:1]
	rows, tbl, err := Portfolio(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (2 instances x 3 configurations)", len(rows))
	}
	flows := map[string]int64{}
	for _, r := range rows {
		if r.MaxFlow <= 0 {
			t.Errorf("%s/%s: non-positive flow %d", r.Graph, r.Config, r.MaxFlow)
		}
		if r.Rounds <= 0 {
			t.Errorf("%s/%s: non-positive rounds %d", r.Graph, r.Config, r.Rounds)
		}
		if prev, ok := flows[r.Graph]; ok && prev != r.MaxFlow {
			t.Errorf("%s: configurations disagree on flow (%d vs %d)", r.Graph, prev, r.MaxFlow)
		}
		flows[r.Graph] = r.MaxFlow
		// Portfolio itself errors when any configuration's flow diverges
		// or the uncontracted flow fails CheckAssignment, so reaching
		// here means every differential passed.
		if r.Config == "reduce+ffmr" && r.Note == "" {
			t.Errorf("%s: reduce row missing its peel note", r.Graph)
		}
		if r.Config == "prflow" && r.ShuffleBytes != 0 {
			t.Errorf("prflow row reports %d MR shuffle bytes, want 0", r.ShuffleBytes)
		}
	}
	if got, want := len(flows), 2; got != want {
		t.Fatalf("saw %d instances, want %d", got, want)
	}
	if tbl == nil || tbl.String() == "" {
		t.Error("empty rendered table")
	}
}

// TestPortfolioReductionWins pins the power-law headline: the core
// reduction must shrink the shuffled volume below plain FFMR's (the
// peeled fringe never reaches the DFS). The effect needs a fringe big
// enough to outweigh per-round fixed records, hence the larger scale
// than TestPortfolioShape.
func TestPortfolioReductionWins(t *testing.T) {
	sc := micro()
	sc.Chain = []graphgen.FBSpec{{Name: "PL", Vertices: 4000}}
	rows, _, err := Portfolio(sc)
	if err != nil {
		t.Fatal(err)
	}
	var plain, reduced int64 = -1, -1
	for _, r := range rows {
		if r.Graph != "power-law" {
			continue
		}
		switch r.Config {
		case "ffmr":
			plain = r.ShuffleBytes
		case "reduce+ffmr":
			reduced = r.ShuffleBytes
		}
	}
	if plain < 0 || reduced < 0 {
		t.Fatalf("missing power-law rows (plain %d, reduced %d)", plain, reduced)
	}
	if reduced >= plain {
		t.Errorf("core reduction did not shrink shuffle: reduced %d >= plain %d", reduced, plain)
	}
}
