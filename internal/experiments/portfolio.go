package experiments

import (
	"fmt"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/maxflow"
	"ffmr/internal/portfolio"
	"ffmr/internal/prep"
	"ffmr/internal/stats"
)

// This file adds the solver-portfolio experiment. The paper's FFMR
// algorithms are tuned for small-world graphs — low diameter, heavy
// hubs; this experiment measures what the portfolio buys outside that
// regime: the scale-free core reduction (internal/prep) on a
// power-law graph with a thick peelable fringe, and the synchronous
// push-relabel engine (internal/prflow) on a high-diameter lattice
// where FFMR's BFS-bounded round count degrades.

// PortfolioRow is one (instance, solver configuration) measurement.
type PortfolioRow struct {
	Graph  string
	Config string // "ffmr", "reduce+ffmr", "prflow" or "auto"
	// Instance shape as solved: the reduce row reports the core's sizes.
	Vertices int
	Edges    int
	MaxFlow  int64
	// Rounds counts MR rounds for FFMR-family rows and Pregel supersteps
	// for prflow rows (each superstep is one BSP barrier, the analogue of
	// an MR round's synchronization).
	Rounds       int
	SimTime      time.Duration
	WallTime     time.Duration
	ShuffleBytes int64
	Note         string
}

func shuffleTotal(res *core.Result) int64 {
	var total int64
	for _, rs := range res.RoundStats {
		total += rs.ShuffleBytes
	}
	return total
}

// Portfolio runs the two headline portfolio instances, solving each
// with plain FFMR, the specialized configuration (core-reduced FFMR on
// the power-law graph, prflow on the grid) and the auto engine, and
// demands value parity across every configuration — a mismatch is an
// error, making the experiment a differential test. The rows quantify
// the claim that `-engine auto` beats plain FFMR off the small-world
// regime.
func Portfolio(sc Scale) ([]PortfolioRow, *stats.Table, error) {
	var rows []PortfolioRow

	addRow := func(name, config string, in *graph.Input, res *core.Result, note string) {
		rows = append(rows, PortfolioRow{
			Graph: name, Config: config,
			Vertices: in.NumVertices, Edges: len(in.Edges),
			MaxFlow: res.MaxFlow, Rounds: res.Rounds,
			SimTime: res.TotalSimTime, WallTime: res.TotalWallTime,
			ShuffleBytes: shuffleTotal(res), Note: note,
		})
	}
	solve := func(in *graph.Input, engine string) (*core.Result, error) {
		return core.Run(sc.newCluster(sc.Nodes), in, core.Options{
			Variant: core.FF5, Engine: engine, Tracer: sc.Tracer,
		})
	}
	autoNote := func(in *graph.Input) string {
		p, err := portfolio.ProbeInstance(sc.newCluster(sc.Nodes), in, 0, "probe/", false)
		if err != nil {
			return ""
		}
		return portfolio.Choose(p).Reason
	}

	// Instance 1: a power-law graph with a heavy degree-<=2 fringe
	// (Barabási-Albert at attachment 2). The core reduction peels the
	// fringe into gadget edges before FFMR ever touches the DFS.
	base, err := graphgen.BarabasiAlbert(sc.Chain[0].Vertices, 2, sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	pl, err := graphgen.AttachSuperSourceSink(base, sc.W, sc.MinDegree, sc.Seed+100)
	if err != nil {
		return nil, nil, err
	}
	graphgen.RandomCapacities(pl, 20, sc.Seed+200)

	plain, err := solve(pl, "ffmr")
	if err != nil {
		return nil, nil, err
	}
	addRow("power-law", "ffmr", pl, plain, "")

	red, err := prep.Reduce(pl)
	if err != nil {
		return nil, nil, err
	}
	coreRes, err := solve(red.Core, "ffmr")
	if err != nil {
		return nil, nil, err
	}
	if coreRes.MaxFlow != plain.MaxFlow {
		return nil, nil, fmt.Errorf("experiments: core-reduced flow %d != plain FFMR flow %d",
			coreRes.MaxFlow, plain.MaxFlow)
	}
	// The reduction must also reconstruct a feasible full-graph flow.
	coreFlows, err := dinicFlowsOnCore(red)
	if err != nil {
		return nil, nil, err
	}
	full, err := red.Uncontract(coreFlows)
	if err != nil {
		return nil, nil, err
	}
	if err := core.CheckAssignment(pl, full, plain.MaxFlow); err != nil {
		return nil, nil, fmt.Errorf("experiments: uncontracted flow invalid: %w", err)
	}
	addRow("power-law", "reduce+ffmr", red.Core, coreRes,
		fmt.Sprintf("%.0f%% edges peeled", 100*red.Stats.EdgesRemovedFrac()))

	autoRes, err := solve(pl, portfolio.EngineName)
	if err != nil {
		return nil, nil, err
	}
	if autoRes.MaxFlow != plain.MaxFlow {
		return nil, nil, fmt.Errorf("experiments: auto flow %d != plain FFMR flow %d",
			autoRes.MaxFlow, plain.MaxFlow)
	}
	addRow("power-law", "auto", pl, autoRes, autoNote(pl))

	// Instance 2: a square lattice, corner to corner — the diameter is
	// Theta(side), so FFMR pays a BFS-depth-bound number of rounds while
	// prflow's push waves work on every frontier at once.
	side := isqrt(sc.Chain[0].Vertices) / 2
	if side < 8 {
		side = 8
	}
	grid, err := graphgen.Grid(side, side)
	if err != nil {
		return nil, nil, err
	}
	graphgen.RandomCapacities(grid, 16, sc.Seed+300)

	gridFF, err := solve(grid, "ffmr")
	if err != nil {
		return nil, nil, err
	}
	addRow("grid", "ffmr", grid, gridFF, "")

	gridPR, err := solve(grid, "prflow")
	if err != nil {
		return nil, nil, err
	}
	if gridPR.MaxFlow != gridFF.MaxFlow {
		return nil, nil, fmt.Errorf("experiments: prflow flow %d != FFMR flow %d on grid",
			gridPR.MaxFlow, gridFF.MaxFlow)
	}
	addRow("grid", "prflow", grid, gridPR, "rounds are Pregel supersteps")

	gridAuto, err := solve(grid, portfolio.EngineName)
	if err != nil {
		return nil, nil, err
	}
	if gridAuto.MaxFlow != gridFF.MaxFlow {
		return nil, nil, fmt.Errorf("experiments: auto flow %d != FFMR flow %d on grid",
			gridAuto.MaxFlow, gridFF.MaxFlow)
	}
	addRow("grid", "auto", grid, gridAuto, autoNote(grid))

	t := stats.NewTable("Solver portfolio off the small-world regime (FF5 baseline)",
		"Graph", "Config", "V", "E", "|f*|", "Rounds", "SimTime", "WallTime", "Shuffle", "Note")
	for _, r := range rows {
		t.AddRow(r.Graph, r.Config, stats.FormatCount(int64(r.Vertices)),
			stats.FormatCount(int64(r.Edges)), stats.FormatCount(r.MaxFlow), r.Rounds,
			stats.FormatDuration(r.SimTime), stats.FormatDuration(r.WallTime),
			stats.FormatBytes(r.ShuffleBytes), r.Note)
	}
	return rows, t, nil
}

// dinicFlowsOnCore extracts per-edge flows of the reduced core with the
// sequential solver; the experiment only needs them to exercise
// Uncontract against the full graph.
func dinicFlowsOnCore(red *prep.Reduction) ([]int64, error) {
	net, err := maxflow.FromInput(red.Core)
	if err != nil {
		return nil, err
	}
	maxflow.Dinic(net, int(red.Core.Source), int(red.Core.Sink))
	flows := make([]int64, len(red.Core.Edges))
	for i := range flows {
		flows[i] = net.Flow(2 * i)
	}
	return flows, nil
}

func isqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
