// Package prep implements a capacity-preserving low-degree core
// reduction for max-flow instances, after the core-decomposition
// preprocessing of Bläsius, Friedrich and Weyand ("Efficiently
// computing maximum flows in scale-free networks"). Scale-free graphs
// have a large periphery of degree-1 and degree-2 vertices that can
// never carry interesting flow structure: a degree-1 vertex (other
// than the source or sink) carries no flow at all by conservation, and
// a degree-2 vertex only relays flow between its two neighbours, which
// a single "gadget" edge of capacity min(c1, c2) models exactly.
//
// Reduce peels such vertices repeatedly (peeling can cascade — a
// gadget edge is itself peelable) and returns a smaller core instance
// over the same vertex ID space; peeled vertices simply become
// isolated. Uncontract lifts any feasible flow on the core back to a
// feasible flow of identical value on the original instance by
// replaying the peel operations in reverse. The lift is proof-carrying
// in the sense that callers can (and the portfolio driver does) verify
// the result with core.CheckAssignment: feasibility plus an unchanged
// value certifies the reduction end to end at run time.
//
// Only vertices with no incident directed edge are peeled; directed
// edges break the symmetric relay argument and are rare in this
// repository's inputs (the generators produce undirected graphs).
package prep

import (
	"fmt"

	"ffmr/internal/graph"
)

// Stats summarizes what a reduction removed.
type Stats struct {
	VerticesPeeled int
	OriginalEdges  int
	// CoreEdges counts the edges of the reduced instance, gadgets
	// included.
	CoreEdges int
	// Gadgets is the number of relay edges introduced for degree-2
	// peels.
	Gadgets int

	Deg0, Deg1, Deg2, TwoCycles int
}

// EdgesRemovedFrac is the fraction of the original edge count the
// reduction eliminated (gadget edges count against it). The portfolio
// driver uses it to decide whether the reduction pays for itself.
func (s Stats) EdgesRemovedFrac() float64 {
	if s.OriginalEdges == 0 {
		return 0
	}
	return 1 - float64(s.CoreEdges)/float64(s.OriginalEdges)
}

// workEdge is an edge of the working graph: the original edges at
// indices 0..m-1 in input order and orientation, then gadgets.
type workEdge struct {
	u, v     graph.VertexID
	cap      int64
	directed bool
	alive    bool
}

// op kinds, replayed in reverse by Uncontract.
const (
	opDeg1   = iota // kill a pendant edge; lifted flow is 0
	opDeg2          // replace a relay pair with a gadget
	op2Cycle        // kill a parallel pair to one neighbour; lifted flows are 0
)

type op struct {
	kind int
	// e1, e2 are work-edge indices (only e1 for opDeg1). For opDeg2,
	// e1 touches a, e2 touches b, and g is the gadget (a, b).
	e1, e2, g int
	v, a, b   graph.VertexID
}

// Reduction holds a reduced instance and everything needed to lift a
// core flow back to the original.
type Reduction struct {
	// Original is the input Reduce was given (aliased, not copied).
	Original *graph.Input
	// Core is the reduced instance over the same vertex ID space;
	// peeled vertices are isolated (no incident edges, no record).
	Core  *graph.Input
	Stats Stats

	work   []workEdge
	ops    []op
	workOf []int // Core.Edges index -> work index
}

// Reduce peels degree-0, degree-1 and degree-2 vertices (excluding the
// source, the sink, and any endpoint of a directed edge) until none
// remain, and returns the reduced instance plus the replay log needed
// to lift flows back.
func Reduce(in *graph.Input) (*Reduction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.NumVertices
	r := &Reduction{Original: in}
	r.Stats.OriginalEdges = len(in.Edges)

	work := make([]workEdge, len(in.Edges), len(in.Edges)+n)
	deg := make([]int, n)
	unpeelable := make([]bool, n)
	inc := make([][]int, n) // incidence lists of work-edge indices
	unpeelable[in.Source] = true
	unpeelable[in.Sink] = true
	for i := range in.Edges {
		e := &in.Edges[i]
		work[i] = workEdge{u: e.U, v: e.V, cap: e.Cap, directed: e.Directed, alive: true}
		deg[e.U]++
		deg[e.V]++
		inc[e.U] = append(inc[e.U], i)
		inc[e.V] = append(inc[e.V], i)
		if e.Directed {
			unpeelable[e.U] = true
			unpeelable[e.V] = true
		}
	}

	kill := func(i int) {
		work[i].alive = false
		deg[work[i].u]--
		deg[work[i].v]--
	}
	other := func(i int, v graph.VertexID) graph.VertexID {
		if work[i].u == v {
			return work[i].v
		}
		return work[i].u
	}

	peeled := make([]bool, n)
	queue := make([]graph.VertexID, 0, n)
	for v := 0; v < n; v++ {
		if deg[v] <= 2 {
			queue = append(queue, graph.VertexID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if peeled[v] || unpeelable[v] || deg[v] > 2 {
			continue
		}
		// Collect the live incident edges (lazy: the incidence list may
		// hold dead entries).
		live := live2(inc[v], work)
		switch len(live) {
		case 0:
			peeled[v] = true
			r.Stats.VerticesPeeled++
			r.Stats.Deg0++
		case 1:
			e := live[0]
			a := other(e, v)
			kill(e)
			peeled[v] = true
			r.ops = append(r.ops, op{kind: opDeg1, e1: e, v: v, a: a})
			r.Stats.VerticesPeeled++
			r.Stats.Deg1++
			if deg[a] <= 2 {
				queue = append(queue, a)
			}
		case 2:
			e1, e2 := live[0], live[1]
			a, b := other(e1, v), other(e2, v)
			if a == b {
				// A parallel pair v=a: any flow around it is a cycle
				// with zero net transfer, so both edges lift to zero.
				kill(e1)
				kill(e2)
				peeled[v] = true
				r.ops = append(r.ops, op{kind: op2Cycle, e1: e1, e2: e2, v: v, a: a})
				r.Stats.VerticesPeeled++
				r.Stats.TwoCycles++
				if deg[a] <= 2 {
					queue = append(queue, a)
				}
				continue
			}
			// Relay: a -- v -- b becomes a gadget a -- b with the
			// bottleneck capacity. The gadget is itself peelable later.
			capG := work[e1].cap
			if work[e2].cap < capG {
				capG = work[e2].cap
			}
			g := len(work)
			work = append(work, workEdge{u: a, v: b, cap: capG, alive: true})
			deg[a]++
			deg[b]++
			inc[a] = append(inc[a], g)
			inc[b] = append(inc[b], g)
			kill(e1)
			kill(e2)
			peeled[v] = true
			r.ops = append(r.ops, op{kind: opDeg2, e1: e1, e2: e2, g: g, v: v, a: a, b: b})
			r.Stats.VerticesPeeled++
			r.Stats.Deg2++
			r.Stats.Gadgets++
		}
	}

	core := &graph.Input{NumVertices: n, Source: in.Source, Sink: in.Sink}
	for i := range work {
		if !work[i].alive {
			continue
		}
		core.Edges = append(core.Edges, graph.InputEdge{
			U: work[i].u, V: work[i].v, Cap: work[i].cap, Directed: work[i].directed,
		})
		r.workOf = append(r.workOf, i)
	}
	r.work = work
	r.Core = core
	r.Stats.CoreEdges = len(core.Edges)
	return r, nil
}

// live2 returns up to three live edge indices (three is enough to know
// the vertex is not peelable).
func live2(indices []int, work []workEdge) []int {
	var out []int
	for _, i := range indices {
		if work[i].alive {
			out = append(out, i)
			if len(out) > 2 {
				break
			}
		}
	}
	return out
}

// Uncontract lifts a feasible flow on the core back to a flow on the
// original instance with the same value. coreFlows[j] is the flow on
// Core.Edges[j] in canonical (U -> V) orientation; the result uses the
// same convention over Original.Edges. The lift replays the peel log
// in reverse: a gadget's flow becomes the relay flow through the
// peeled vertex, pendant and parallel-pair edges lift to zero.
func (r *Reduction) Uncontract(coreFlows []int64) ([]int64, error) {
	if len(coreFlows) != len(r.Core.Edges) {
		return nil, fmt.Errorf("prep: uncontract: %d flows for %d core edges", len(coreFlows), len(r.Core.Edges))
	}
	flow := make([]int64, len(r.work))
	for j, w := range r.workOf {
		flow[w] = coreFlows[j]
	}
	for i := len(r.ops) - 1; i >= 0; i-- {
		o := &r.ops[i]
		switch o.kind {
		case opDeg1:
			flow[o.e1] = 0
		case op2Cycle:
			flow[o.e1] = 0
			flow[o.e2] = 0
		case opDeg2:
			// f is the gadget flow a -> b; route it a -> v -> b,
			// respecting each work edge's canonical orientation.
			f := flow[o.g]
			if r.work[o.g].u != o.a {
				f = -f
			}
			if r.work[o.e1].u == o.a {
				flow[o.e1] = f
			} else {
				flow[o.e1] = -f
			}
			if r.work[o.e1].cap < f || r.work[o.e1].cap < -f {
				return nil, fmt.Errorf("prep: uncontract: relay flow %d exceeds capacity %d on edge %d", f, r.work[o.e1].cap, o.e1)
			}
			if r.work[o.e2].u == o.v {
				flow[o.e2] = f
			} else {
				flow[o.e2] = -f
			}
			if r.work[o.e2].cap < f || r.work[o.e2].cap < -f {
				return nil, fmt.Errorf("prep: uncontract: relay flow %d exceeds capacity %d on edge %d", f, r.work[o.e2].cap, o.e2)
			}
		}
	}
	return flow[:len(r.Original.Edges)], nil
}
