package prep

import (
	"math/rand"
	"testing"

	"ffmr/internal/core"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/maxflow"
)

func dinicFlows(t *testing.T, in *graph.Input) (int64, []int64) {
	t.Helper()
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatal(err)
	}
	val := maxflow.Dinic(net, int(in.Source), int(in.Sink))
	flows := make([]int64, len(in.Edges))
	for i := range flows {
		flows[i] = net.Flow(2 * i)
	}
	return val, flows
}

// roundTrip reduces in, solves the core with the Dinic oracle, lifts
// the core flow back, and checks value preservation in both directions
// plus feasibility of the lifted flow.
func roundTrip(t *testing.T, in *graph.Input) *Reduction {
	t.Helper()
	wantVal, _ := dinicFlows(t, in)
	red, err := Reduce(in)
	if err != nil {
		t.Fatalf("reduce: %v", err)
	}
	if err := red.Core.Validate(); err != nil {
		t.Fatalf("core instance invalid: %v", err)
	}
	coreVal, coreFlows := dinicFlows(t, red.Core)
	if coreVal != wantVal {
		t.Fatalf("core max flow %d != original %d (stats %+v)", coreVal, wantVal, red.Stats)
	}
	lifted, err := red.Uncontract(coreFlows)
	if err != nil {
		t.Fatalf("uncontract: %v", err)
	}
	if err := core.CheckAssignment(in, lifted, coreVal); err != nil {
		t.Fatalf("lifted flow infeasible: %v (stats %+v)", err, red.Stats)
	}
	return red
}

// TestQuickCheck runs 1000 seeded random instances across the
// generator families through the full reduce / solve / lift cycle.
func TestQuickCheck(t *testing.T) {
	for seed := int64(0); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var base *graph.Input
		var err error
		switch seed % 4 {
		case 0:
			base, err = graphgen.BarabasiAlbert(20+rng.Intn(30), 1+rng.Intn(2), seed)
		case 1:
			base, err = graphgen.WattsStrogatz(20+rng.Intn(30), 4, 0.3, seed)
		case 2:
			base, err = graphgen.ErdosRenyi(15+rng.Intn(20), 20+rng.Intn(30), seed)
		case 3:
			// Sparse ER: lots of pendant and chain structure to peel.
			base, err = graphgen.ErdosRenyi(20+rng.Intn(30), 15+rng.Intn(15), seed)
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in, err := graphgen.AttachSuperSourceSink(base, 2, 2, seed+5000)
		if err != nil {
			// Very sparse instances may lack enough high-degree
			// attachment points; a thinner attachment still exercises
			// the reduction.
			in, err = graphgen.AttachSuperSourceSink(base, 1, 1, seed+5000)
			if err != nil {
				continue
			}
		}
		graphgen.RandomCapacities(in, int64(1+rng.Intn(20)), seed+9000)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: panic: %v", seed, r)
				}
			}()
			roundTrip(t, in)
		}()
		if t.Failed() {
			t.Fatalf("failing seed: %d", seed)
		}
	}
}

// TestAdversarialGadgets covers the tricky peel shapes directly:
// cascading chains, parallel 2-cycles, pendant trees, bottleneck
// gadgets, and directed edges blocking a peel.
func TestAdversarialGadgets(t *testing.T) {
	t.Run("chain-cascade", func(t *testing.T) {
		// s - v1 - v2 - v3 - v4 - t with decreasing caps: the whole
		// chain collapses into one gadget; bottleneck must survive.
		in := &graph.Input{
			NumVertices: 6, Source: 0, Sink: 5,
			Edges: []graph.InputEdge{
				{U: 0, V: 1, Cap: 9},
				{U: 1, V: 2, Cap: 7},
				{U: 2, V: 3, Cap: 3},
				{U: 3, V: 4, Cap: 8},
				{U: 4, V: 5, Cap: 6},
			},
		}
		red := roundTrip(t, in)
		if red.Stats.VerticesPeeled != 4 {
			t.Fatalf("peeled %d vertices, want 4", red.Stats.VerticesPeeled)
		}
		if len(red.Core.Edges) != 1 || red.Core.Edges[0].Cap != 3 {
			t.Fatalf("core should be one bottleneck edge of cap 3, got %+v", red.Core.Edges)
		}
	})
	t.Run("two-cycle", func(t *testing.T) {
		// v relays nothing: both its edges go to the same neighbour.
		in := &graph.Input{
			NumVertices: 4, Source: 0, Sink: 2,
			Edges: []graph.InputEdge{
				{U: 0, V: 1, Cap: 5},
				{U: 1, V: 2, Cap: 5},
				{U: 1, V: 3, Cap: 4},
				{U: 3, V: 1, Cap: 4},
			},
		}
		red := roundTrip(t, in)
		if red.Stats.TwoCycles != 1 {
			t.Fatalf("expected one 2-cycle peel, got %+v", red.Stats)
		}
	})
	t.Run("pendant-tree", func(t *testing.T) {
		// A tree hanging off the s-t path carries no flow and peels
		// away entirely.
		in := &graph.Input{
			NumVertices: 7, Source: 0, Sink: 1,
			Edges: []graph.InputEdge{
				{U: 0, V: 1, Cap: 5},
				{U: 1, V: 2, Cap: 3},
				{U: 2, V: 3, Cap: 2},
				{U: 2, V: 4, Cap: 2},
				{U: 4, V: 5, Cap: 1},
				{U: 4, V: 6, Cap: 1},
			},
		}
		red := roundTrip(t, in)
		if red.Stats.VerticesPeeled != 5 {
			t.Fatalf("peeled %d vertices, want 5 (whole tree), got %+v", red.Stats.VerticesPeeled, red.Stats)
		}
		if len(red.Core.Edges) != 1 {
			t.Fatalf("core should be the single s-t edge, got %+v", red.Core.Edges)
		}
	})
	t.Run("directed-blocks-peel", func(t *testing.T) {
		// v1 would be a degree-2 relay but one incident edge is
		// directed, so it must not be peeled.
		in := &graph.Input{
			NumVertices: 3, Source: 0, Sink: 2,
			Edges: []graph.InputEdge{
				{U: 0, V: 1, Cap: 5, Directed: true},
				{U: 1, V: 2, Cap: 3},
			},
		}
		red := roundTrip(t, in)
		if red.Stats.VerticesPeeled != 0 {
			t.Fatalf("directed endpoint was peeled: %+v", red.Stats)
		}
	})
	t.Run("gadget-on-gadget", func(t *testing.T) {
		// A long cycle through s and t: every interior vertex is
		// degree 2, so gadgets repeatedly replace gadgets.
		n := 12
		in := &graph.Input{NumVertices: n, Source: 0, Sink: graph.VertexID(n / 2)}
		for i := 0; i < n; i++ {
			in.Edges = append(in.Edges, graph.InputEdge{
				U: graph.VertexID(i), V: graph.VertexID((i + 1) % n), Cap: int64(2 + i%3),
			})
		}
		red := roundTrip(t, in)
		if red.Stats.VerticesPeeled != n-2 {
			t.Fatalf("peeled %d, want %d", red.Stats.VerticesPeeled, n-2)
		}
		if len(red.Core.Edges) != 2 {
			t.Fatalf("core should be two parallel s-t gadgets, got %d edges", len(red.Core.Edges))
		}
	})
	t.Run("zero-cap-gadget", func(t *testing.T) {
		in := &graph.Input{
			NumVertices: 4, Source: 0, Sink: 3,
			Edges: []graph.InputEdge{
				{U: 0, V: 1, Cap: 4},
				{U: 1, V: 3, Cap: 4},
				{U: 1, V: 2, Cap: 0},
				{U: 2, V: 3, Cap: 7},
			},
		}
		roundTrip(t, in)
	})
}

// TestScaleFreeRemoval documents the reduction's reason to exist: on a
// Barabási-Albert graph with m=2, a large fraction of vertices has
// degree exactly 2 and the edge count drops substantially.
func TestScaleFreeRemoval(t *testing.T) {
	base, err := graphgen.BarabasiAlbert(2000, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.RandomCapacities(in, 50, 9)
	red := roundTrip(t, in)
	frac := red.Stats.EdgesRemovedFrac()
	if frac < 0.10 {
		t.Fatalf("expected >=10%% edge removal on BA(m=2), got %.1f%% (stats %+v)", 100*frac, red.Stats)
	}
	t.Logf("BA(2000, m=2): peeled %d vertices, edges %d -> %d (%.1f%% removed)",
		red.Stats.VerticesPeeled, red.Stats.OriginalEdges, red.Stats.CoreEdges, 100*frac)
}
