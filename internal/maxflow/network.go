// Package maxflow provides sequential, memory-resident maximum-flow
// algorithms: the Ford-Fulkerson method with DFS, Edmonds-Karp (shortest
// augmenting paths), Dinic's blocking-flow algorithm, and FIFO
// Push-Relabel with the gap heuristic. The paper positions these as the
// classical algorithms that "require the entire graph to fit into
// memory"; here they serve as ground truth for every FFMR variant and as
// baselines for the benchmark harness.
package maxflow

import (
	"fmt"
	"math"

	"ffmr/internal/graph"
)

// Network is a compact residual network in forward-star representation.
// Arcs are stored in pairs: arc i and arc i^1 are each other's reverses,
// the classical trick that makes residual updates O(1).
type Network struct {
	n     int
	head  []int32 // head[v] = first arc index of v, -1 if none
	next  []int32 // next[a] = next arc of the same tail
	to    []int32 // to[a] = arc head vertex
	cap   []int64 // cap[a] = remaining capacity of arc a
	flow0 []int64 // original capacity (kept for flow extraction)
}

// NewNetwork creates an empty network with n vertices.
func NewNetwork(n int) *Network {
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return &Network{n: n, head: head}
}

// FromInput builds a residual network from a raw input graph, applying
// the same bi-directionalization as the paper's round #0: undirected
// edges get capacity c in both directions; directed edges get c forward
// and 0 backward.
func FromInput(in *graph.Input) (*Network, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	net := NewNetwork(in.NumVertices)
	for i := range in.Edges {
		e := &in.Edges[i]
		if e.Directed {
			net.AddEdge(int(e.U), int(e.V), e.Cap)
		} else {
			net.AddUndirectedEdge(int(e.U), int(e.V), e.Cap)
		}
	}
	return net, nil
}

// N returns the vertex count.
func (g *Network) N() int { return g.n }

// Arcs returns the number of directed arcs (including residual arcs).
func (g *Network) Arcs() int { return len(g.to) }

func (g *Network) addArc(u, v int, c int64) {
	g.to = append(g.to, int32(v))
	g.cap = append(g.cap, c)
	g.flow0 = append(g.flow0, c)
	g.next = append(g.next, g.head[u])
	g.head[u] = int32(len(g.to) - 1)
}

// AddEdge adds a directed edge u->v with capacity c (and the implicit
// zero-capacity residual arc v->u).
func (g *Network) AddEdge(u, v int, c int64) {
	g.addArc(u, v, c)
	g.addArc(v, u, 0)
}

// AddUndirectedEdge adds an edge with capacity c in both directions.
func (g *Network) AddUndirectedEdge(u, v int, c int64) {
	g.addArc(u, v, c)
	g.addArc(v, u, c)
}

// Clone returns an independent copy of the network, so multiple
// algorithms can run against the same initial capacities.
func (g *Network) Clone() *Network {
	c := &Network{
		n:     g.n,
		head:  append([]int32(nil), g.head...),
		next:  append([]int32(nil), g.next...),
		to:    append([]int32(nil), g.to...),
		cap:   append([]int64(nil), g.cap...),
		flow0: append([]int64(nil), g.flow0...),
	}
	return c
}

// Flow returns the current flow on arc a (original capacity minus
// remaining capacity); negative values indicate flow on the reverse arc.
func (g *Network) Flow(a int) int64 { return g.flow0[a] - g.cap[a] }

// OutFlow sums the net flow leaving vertex u over its original
// (positive-capacity) arcs. For the source after a max-flow run this is
// the flow value.
func (g *Network) OutFlow(u int) int64 {
	var sum int64
	for a := g.head[u]; a >= 0; a = g.next[a] {
		sum += g.Flow(int(a))
	}
	return sum
}

// CheckConservation verifies capacity and flow-conservation constraints,
// returning an error naming the first violated vertex or arc. s and t are
// exempt from conservation.
func (g *Network) CheckConservation(s, t int) error {
	for a := range g.to {
		if g.cap[a] < 0 {
			return fmt.Errorf("maxflow: arc %d over capacity by %d", a, -g.cap[a])
		}
	}
	excess := make([]int64, g.n)
	for u := 0; u < g.n; u++ {
		for a := g.head[u]; a >= 0; a = g.next[a] {
			excess[u] -= g.Flow(int(a))
		}
	}
	for u := 0; u < g.n; u++ {
		if u == s || u == t {
			continue
		}
		if excess[u] != 0 {
			return fmt.Errorf("maxflow: vertex %d violates conservation by %d", u, excess[u])
		}
	}
	return nil
}

// MinCut returns the source side of a minimum s-t cut of the current
// residual network (meaningful after running a max-flow algorithm): all
// vertices reachable from s through positive-residual arcs.
func (g *Network) MinCut(s int) []bool {
	seen := make([]bool, g.n)
	seen[s] = true
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for a := g.head[u]; a >= 0; a = g.next[a] {
			if g.cap[a] > 0 && !seen[g.to[a]] {
				seen[g.to[a]] = true
				queue = append(queue, g.to[a])
			}
		}
	}
	return seen
}

// CutCapacity sums the original capacity of arcs crossing from the given
// source side to its complement. By max-flow/min-cut duality this equals
// the maximum flow when side is a minimum cut.
func (g *Network) CutCapacity(side []bool) int64 {
	var sum int64
	for u := 0; u < g.n; u++ {
		if !side[u] {
			continue
		}
		for a := g.head[u]; a >= 0; a = g.next[a] {
			if !side[g.to[a]] {
				sum += g.flow0[a]
			}
		}
	}
	return sum
}

const inf = int64(math.MaxInt64)
