package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
)

// buildNet adds directed edges (u, v, cap) to a fresh network.
func buildNet(n int, edges [][3]int64) *Network {
	g := NewNetwork(n)
	for _, e := range edges {
		g.AddEdge(int(e[0]), int(e[1]), e[2])
	}
	return g
}

// knownCases are hand-checked flow networks.
func knownCases() []struct {
	name  string
	n     int
	edges [][3]int64
	s, t  int
	want  int64
} {
	return []struct {
		name  string
		n     int
		edges [][3]int64
		s, t  int
		want  int64
	}{
		{
			name: "single edge",
			n:    2, edges: [][3]int64{{0, 1, 7}}, s: 0, t: 1, want: 7,
		},
		{
			name: "two hop chain",
			n:    3, edges: [][3]int64{{0, 1, 5}, {1, 2, 3}}, s: 0, t: 2, want: 3,
		},
		{
			name: "parallel paths",
			n:    4, edges: [][3]int64{{0, 1, 2}, {1, 3, 2}, {0, 2, 3}, {2, 3, 3}},
			s: 0, t: 3, want: 5,
		},
		{
			name: "CLRS 26.1",
			n:    6,
			edges: [][3]int64{
				{0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4},
				{1, 3, 12}, {3, 2, 9}, {2, 4, 14}, {4, 3, 7},
				{3, 5, 20}, {4, 5, 4},
			},
			s: 0, t: 5, want: 23,
		},
		{
			name: "zig zag needing reverse arcs",
			n:    4,
			edges: [][3]int64{
				{0, 1, 1}, {0, 2, 1}, {1, 2, 1}, {1, 3, 1}, {2, 3, 1},
			},
			s: 0, t: 3, want: 2,
		},
		{
			name: "disconnected",
			n:    4, edges: [][3]int64{{0, 1, 5}, {2, 3, 5}}, s: 0, t: 3, want: 0,
		},
		{
			name: "sink unreachable via direction",
			n:    3, edges: [][3]int64{{1, 0, 4}, {2, 1, 4}}, s: 0, t: 2, want: 0,
		},
	}
}

func TestKnownFlows(t *testing.T) {
	for _, tc := range knownCases() {
		for _, solver := range Solvers() {
			t.Run(tc.name+"/"+solver.Name, func(t *testing.T) {
				g := buildNet(tc.n, tc.edges)
				if got := solver.Run(g, tc.s, tc.t); got != tc.want {
					t.Errorf("flow = %d, want %d", got, tc.want)
				}
			})
		}
	}
}

func TestSourceEqualsSink(t *testing.T) {
	for _, solver := range Solvers() {
		g := buildNet(2, [][3]int64{{0, 1, 5}})
		if got := solver.Run(g, 0, 0); got != 0 {
			t.Errorf("%s: s==t flow = %d, want 0", solver.Name, got)
		}
	}
}

// randomNetwork builds a random directed network plus the same network as
// an Input for FromInput testing.
func randomNetwork(rng *rand.Rand, n, m int) *Network {
	g := NewNetwork(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v, 1+rng.Int63n(20))
	}
	return g
}

// TestAlgorithmsAgree is the core cross-validation property: all four
// algorithms must compute identical flow values on arbitrary networks.
func TestAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(20)
		m := n + rng.Intn(4*n)
		g := randomNetwork(rng, n, m)
		s, tt := 0, n-1
		want := Dinic(g.Clone(), s, tt)
		for _, solver := range Solvers() {
			if got := solver.Run(g.Clone(), s, tt); got != want {
				t.Fatalf("trial %d: %s = %d, dinic = %d", trial, solver.Name, got, want)
			}
		}
	}
}

// TestMaxFlowMinCutDuality checks flow value == min-cut capacity.
func TestMaxFlowMinCutDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(16)
		g := randomNetwork(rng, n, n*3)
		s, tt := 0, n-1
		flow := Dinic(g, s, tt)
		side := g.MinCut(s)
		if side[tt] && flow > 0 {
			t.Fatalf("trial %d: sink on source side of the cut", trial)
		}
		if got := g.CutCapacity(side); got != flow {
			t.Fatalf("trial %d: cut capacity %d != flow %d", trial, got, flow)
		}
	}
}

func TestConservationAfterFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(12)
		g := randomNetwork(rng, n, n*3)
		s, tt := 0, n-1
		flow := Dinic(g, s, tt)
		if err := g.CheckConservation(s, tt); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out := g.OutFlow(s); out != flow {
			t.Fatalf("trial %d: source out-flow %d != flow %d", trial, out, flow)
		}
	}
}

func TestFromInputUndirectedVsDirected(t *testing.T) {
	// An undirected edge must carry capacity both ways; a directed one
	// must not admit reverse flow.
	und := &graph.Input{NumVertices: 2, Source: 1, Sink: 0,
		Edges: []graph.InputEdge{{U: 0, V: 1, Cap: 4}}}
	g, err := FromInput(und)
	if err != nil {
		t.Fatal(err)
	}
	if got := Dinic(g, 1, 0); got != 4 {
		t.Errorf("undirected reverse flow = %d, want 4", got)
	}

	dir := &graph.Input{NumVertices: 2, Source: 1, Sink: 0,
		Edges: []graph.InputEdge{{U: 0, V: 1, Cap: 4, Directed: true}}}
	g, err = FromInput(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := Dinic(g, 1, 0); got != 0 {
		t.Errorf("directed reverse flow = %d, want 0", got)
	}
}

func TestFromInputRejectsInvalid(t *testing.T) {
	bad := &graph.Input{NumVertices: 1}
	if _, err := FromInput(bad); err == nil {
		t.Error("invalid input accepted")
	}
}

func TestSuperSourceSinkFlowBounds(t *testing.T) {
	// With w taps of infinite capacity, max flow is bounded by the total
	// degree capacity of the tap sets; it must be positive on a connected
	// small-world graph.
	base, err := graphgen.WattsStrogatz(200, 6, 0.1, 21)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 3, 4, 22)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromInput(in)
	if err != nil {
		t.Fatal(err)
	}
	flow := Dinic(g, int(in.Source), int(in.Sink))
	if flow <= 0 {
		t.Fatal("zero flow through super source/sink on connected graph")
	}
	if flow >= graph.CapInf/2 {
		t.Fatal("flow absorbed infinite capacity; accounting broken")
	}
}

// TestQuickUnitCapacityFlowBounds: on unit-capacity graphs the flow is
// bounded by min(deg(s), deg(t)).
func TestQuickUnitCapacityFlowBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := NewNetwork(n)
		degS, degT := 0, 0
		s, tt := 0, n-1
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.AddUndirectedEdge(u, v, 1)
			if u == s || v == s {
				degS++
			}
			if u == tt || v == tt {
				degT++
			}
		}
		flow := Dinic(g, s, tt)
		bound := degS
		if degT < bound {
			bound = degT
		}
		return flow >= 0 && flow <= int64(bound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotonicity: adding an edge never decreases the max flow.
func TestQuickMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		var edges [][3]int64
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, [3]int64{int64(u), int64(v), 1 + rng.Int63n(9)})
		}
		before := Dinic(buildNet(n, edges), 0, n-1)
		u, v := rng.Intn(n-1), n-1
		edges = append(edges, [3]int64{int64(u), int64(v), 1 + rng.Int63n(9)})
		after := Dinic(buildNet(n, edges), 0, n-1)
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := buildNet(3, [][3]int64{{0, 1, 5}, {1, 2, 5}})
	c := g.Clone()
	if got := Dinic(c, 0, 2); got != 5 {
		t.Fatalf("clone flow = %d", got)
	}
	// The original must be untouched by the run on the clone.
	if got := Dinic(g, 0, 2); got != 5 {
		t.Fatalf("original corrupted by clone run: flow = %d", got)
	}
}

func TestNetworkAccessors(t *testing.T) {
	g := buildNet(3, [][3]int64{{0, 1, 5}, {1, 2, 3}})
	if g.N() != 3 {
		t.Errorf("N = %d", g.N())
	}
	if g.Arcs() != 4 { // each edge adds a residual arc
		t.Errorf("Arcs = %d, want 4", g.Arcs())
	}
	Dinic(g, 0, 2)
	if got := g.Flow(0); got != 3 {
		t.Errorf("flow on arc 0 = %d, want 3", got)
	}
}
