package maxflow

// This file implements the classical max-flow algorithms the paper
// discusses in Section II-A: the Ford-Fulkerson method (DFS augmenting
// paths), Edmonds-Karp (BFS shortest augmenting paths, O(VE^2)), Dinic's
// layered-network blocking flow (O(V^2 E)), and Goldberg-Tarjan FIFO
// Push-Relabel with the gap heuristic. All operate destructively on a
// Network's residual capacities; Clone first to preserve the input.

// FordFulkersonDFS runs the plain Ford-Fulkerson method, finding
// augmenting paths by depth-first search. Exponential in the worst case
// for adversarial capacities but a useful didactic baseline.
func FordFulkersonDFS(g *Network, s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	visited := make([]int32, g.n)
	epoch := int32(0)
	var dfs func(u int, limit int64) int64
	dfs = func(u int, limit int64) int64 {
		if u == t {
			return limit
		}
		visited[u] = epoch
		for a := g.head[u]; a >= 0; a = g.next[a] {
			v := int(g.to[a])
			if g.cap[a] <= 0 || visited[v] == epoch {
				continue
			}
			pushed := limit
			if g.cap[a] < pushed {
				pushed = g.cap[a]
			}
			if got := dfs(v, pushed); got > 0 {
				g.cap[a] -= got
				g.cap[a^1] += got
				return got
			}
		}
		return 0
	}
	for {
		epoch++
		got := dfs(s, inf)
		if got == 0 {
			return total
		}
		total += got
	}
}

// EdmondsKarp runs the Edmonds-Karp algorithm: Ford-Fulkerson with BFS
// shortest augmenting paths.
func EdmondsKarp(g *Network, s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	parentArc := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	for {
		for i := range parentArc {
			parentArc[i] = -1
		}
		parentArc[s] = -2
		queue = append(queue[:0], int32(s))
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for a := g.head[u]; a >= 0; a = g.next[a] {
				v := g.to[a]
				if g.cap[a] <= 0 || parentArc[v] != -1 {
					continue
				}
				parentArc[v] = a
				if int(v) == t {
					found = true
					break bfs
				}
				queue = append(queue, v)
			}
		}
		if !found {
			return total
		}
		// Find bottleneck then augment.
		bottleneck := inf
		for v := t; v != s; {
			a := parentArc[v]
			if g.cap[a] < bottleneck {
				bottleneck = g.cap[a]
			}
			v = int(g.to[a^1])
		}
		for v := t; v != s; {
			a := parentArc[v]
			g.cap[a] -= bottleneck
			g.cap[a^1] += bottleneck
			v = int(g.to[a^1])
		}
		total += bottleneck
	}
}

// Dinic runs Dinic's algorithm: repeated BFS layering plus DFS blocking
// flows. This is the primary ground-truth oracle used by the test suite.
func Dinic(g *Network, s, t int) int64 {
	if s == t {
		return 0
	}
	level := make([]int32, g.n)
	iter := make([]int32, g.n)
	queue := make([]int32, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for a := g.head[u]; a >= 0; a = g.next[a] {
				v := g.to[a]
				if g.cap[a] > 0 && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, limit int64) int64
	dfs = func(u int, limit int64) int64 {
		if u == t {
			return limit
		}
		for ; iter[u] >= 0; iter[u] = g.next[iter[u]] {
			a := iter[u]
			v := int(g.to[a])
			if g.cap[a] <= 0 || level[v] != level[u]+1 {
				continue
			}
			pushed := limit
			if g.cap[a] < pushed {
				pushed = g.cap[a]
			}
			if got := dfs(v, pushed); got > 0 {
				g.cap[a] -= got
				g.cap[a^1] += got
				return got
			}
		}
		return 0
	}

	var total int64
	for bfs() {
		copy(iter, g.head)
		for {
			got := dfs(s, inf)
			if got == 0 {
				break
			}
			total += got
		}
	}
	return total
}

// PushRelabel runs the Goldberg-Tarjan preflow-push algorithm with a FIFO
// active-vertex queue and the gap relabeling heuristic. The paper rejects
// Push-Relabel for MapReduce (low available parallelism, heuristic
// sensitivity) but it remains the fastest sequential baseline on many
// graph families, so the benchmark harness includes it.
func PushRelabel(g *Network, s, t int) int64 {
	if s == t {
		return 0
	}
	n := g.n
	excess := make([]int64, n)
	height := make([]int32, n)
	hcount := make([]int32, 2*n+1) // vertices per height, for gap heuristic
	active := make([]bool, n)
	queue := make([]int32, 0, n)
	iter := make([]int32, n)
	copy(iter, g.head)

	push := func(u int, a int32) {
		v := int(g.to[a])
		delta := excess[u]
		if g.cap[a] < delta {
			delta = g.cap[a]
		}
		g.cap[a] -= delta
		g.cap[a^1] += delta
		excess[u] -= delta
		excess[v] += delta
		if v != s && v != t && !active[v] && excess[v] > 0 {
			active[v] = true
			queue = append(queue, int32(v))
		}
	}

	height[s] = int32(n)
	hcount[0] = int32(n - 1)
	hcount[n] = 1
	for a := g.head[s]; a >= 0; a = g.next[a] {
		if g.cap[a] > 0 {
			excess[s] += g.cap[a]
			push(s, a)
		}
	}

	relabel := func(u int) {
		old := height[u]
		minH := int32(2 * n)
		for a := g.head[u]; a >= 0; a = g.next[a] {
			if g.cap[a] > 0 && height[g.to[a]]+1 < minH {
				minH = height[g.to[a]] + 1
			}
		}
		hcount[old]--
		if hcount[old] == 0 && old < int32(n) {
			// Gap heuristic: no vertex remains at height old, so every
			// vertex above it (below n) is disconnected from t; lift them
			// past n to retire them early.
			for v := 0; v < n; v++ {
				if v != s && height[v] > old && height[v] < int32(n) {
					hcount[height[v]]--
					height[v] = int32(n + 1)
					hcount[height[v]]++
				}
			}
		}
		if minH > int32(2*n) {
			minH = int32(2 * n)
		}
		height[u] = minH
		hcount[minH]++
		iter[u] = g.head[u]
	}

	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		active[u] = false
		for excess[u] > 0 {
			if iter[u] < 0 {
				relabel(u)
				if height[u] >= int32(2*n) {
					break
				}
				continue
			}
			a := iter[u]
			if g.cap[a] > 0 && height[u] == height[g.to[a]]+1 {
				push(u, a)
			} else {
				iter[u] = g.next[a]
			}
		}
		if excess[u] > 0 && height[u] < int32(2*n) && !active[u] {
			active[u] = true
			queue = append(queue, int32(u))
		}
	}
	return excess[t]
}

// CapacityScaling runs Ford-Fulkerson with capacity scaling: augmenting
// paths are sought with a residual-capacity threshold Delta that halves
// from the largest power of two at or below the maximum capacity, giving
// O(E^2 log U) — the classical weakly-polynomial improvement in the
// family the paper cites as [32]'s ancestry.
func CapacityScaling(g *Network, s, t int) int64 {
	if s == t {
		return 0
	}
	var maxCap int64
	for _, c := range g.cap {
		if c > maxCap {
			maxCap = c
		}
	}
	if maxCap == 0 {
		return 0
	}
	delta := int64(1)
	for delta*2 <= maxCap {
		delta *= 2
	}

	visited := make([]int32, g.n)
	epoch := int32(0)
	var dfs func(u int, limit, threshold int64) int64
	dfs = func(u int, limit, threshold int64) int64 {
		if u == t {
			return limit
		}
		visited[u] = epoch
		for a := g.head[u]; a >= 0; a = g.next[a] {
			v := int(g.to[a])
			if g.cap[a] < threshold || visited[v] == epoch {
				continue
			}
			pushed := limit
			if g.cap[a] < pushed {
				pushed = g.cap[a]
			}
			if got := dfs(v, pushed, threshold); got > 0 {
				g.cap[a] -= got
				g.cap[a^1] += got
				return got
			}
		}
		return 0
	}

	var total int64
	for delta >= 1 {
		for {
			epoch++
			got := dfs(s, inf, delta)
			if got == 0 {
				break
			}
			total += got
		}
		delta /= 2
	}
	return total
}

// Solver names a sequential algorithm for table-driven benchmarks.
type Solver struct {
	Name string
	Run  func(g *Network, s, t int) int64
}

// Solvers lists every sequential algorithm in this package.
func Solvers() []Solver {
	return []Solver{
		{Name: "ford-fulkerson-dfs", Run: FordFulkersonDFS},
		{Name: "edmonds-karp", Run: EdmondsKarp},
		{Name: "dinic", Run: Dinic},
		{Name: "push-relabel", Run: PushRelabel},
		{Name: "capacity-scaling", Run: CapacityScaling},
	}
}
