package prflow

import (
	"fmt"
	"testing"

	"ffmr/internal/core"
	"ffmr/internal/dfs"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/mapreduce"
	"ffmr/internal/maxflow"
)

func testCluster(nodes int) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{Nodes: nodes, BlockSize: 16 << 10, Replication: 2})
	c := mapreduce.NewCluster(nodes, 4, fs)
	c.Cost = mapreduce.ZeroCostModel()
	return c
}

func runBoth(t *testing.T, in *graph.Input) {
	t.Helper()
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatal(err)
	}
	want := maxflow.Dinic(net, int(in.Source), int(in.Sink))

	cluster := testCluster(3)
	opts := core.Options{Engine: EngineName, KeepIntermediate: true}
	res, err := core.Run(cluster, in, opts)
	if err != nil {
		t.Fatalf("prflow run: %v", err)
	}
	if res.MaxFlow != want {
		t.Fatalf("prflow max flow = %d, Dinic = %d", res.MaxFlow, want)
	}
	if !res.Converged {
		t.Fatalf("prflow did not converge")
	}
	// The persisted state must satisfy the same axioms as an FFMR run.
	resolved := opts.WithDefaults(cluster.Nodes * cluster.SlotsPerNode)
	if err := core.Validate(cluster.FS, in, resolved, res); err != nil {
		t.Fatalf("persisted state invalid: %v", err)
	}
	flows, err := core.ExtractFlows(cluster.FS, in, resolved, res)
	if err != nil {
		t.Fatalf("extract flows: %v", err)
	}
	if err := core.CheckAssignment(in, flows, res.MaxFlow); err != nil {
		t.Fatalf("reread assignment: %v", err)
	}
}

func TestTinyNetworks(t *testing.T) {
	cases := []struct {
		name string
		in   *graph.Input
	}{
		{"single-edge", &graph.Input{
			NumVertices: 2, Source: 0, Sink: 1,
			Edges: []graph.InputEdge{{U: 0, V: 1, Cap: 7}},
		}},
		{"clrs-directed", &graph.Input{
			// The classic CLRS Fig. 26 network; max flow 23.
			NumVertices: 6, Source: 0, Sink: 5,
			Edges: []graph.InputEdge{
				{U: 0, V: 1, Cap: 16, Directed: true},
				{U: 0, V: 2, Cap: 13, Directed: true},
				{U: 1, V: 2, Cap: 10, Directed: true},
				{U: 2, V: 1, Cap: 4, Directed: true},
				{U: 1, V: 3, Cap: 12, Directed: true},
				{U: 3, V: 2, Cap: 9, Directed: true},
				{U: 2, V: 4, Cap: 14, Directed: true},
				{U: 4, V: 3, Cap: 7, Directed: true},
				{U: 3, V: 5, Cap: 20, Directed: true},
				{U: 4, V: 5, Cap: 4, Directed: true},
			},
		}},
		{"undirected-diamond", &graph.Input{
			NumVertices: 4, Source: 0, Sink: 3,
			Edges: []graph.InputEdge{
				{U: 0, V: 1, Cap: 3},
				{U: 0, V: 2, Cap: 2},
				{U: 1, V: 3, Cap: 2},
				{U: 2, V: 3, Cap: 3},
				{U: 1, V: 2, Cap: 1},
			},
		}},
		{"disconnected-sink", &graph.Input{
			NumVertices: 4, Source: 0, Sink: 3,
			Edges: []graph.InputEdge{
				{U: 0, V: 1, Cap: 5},
				{U: 2, V: 3, Cap: 5},
			},
		}},
		{"parallel-edges", &graph.Input{
			NumVertices: 3, Source: 0, Sink: 2,
			Edges: []graph.InputEdge{
				{U: 0, V: 1, Cap: 2},
				{U: 0, V: 1, Cap: 3, Directed: true},
				{U: 1, V: 2, Cap: 4},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runBoth(t, tc.in) })
	}
}

func TestRandomFamilies(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("ws-%d", seed), func(t *testing.T) {
			base, err := graphgen.WattsStrogatz(60, 4, 0.2, seed)
			if err != nil {
				t.Fatal(err)
			}
			in, err := graphgen.AttachSuperSourceSink(base, 3, 3, seed+100)
			if err != nil {
				t.Fatal(err)
			}
			graphgen.RandomCapacities(in, 20, seed)
			runBoth(t, in)
		})
		t.Run(fmt.Sprintf("ba-%d", seed), func(t *testing.T) {
			base, err := graphgen.BarabasiAlbert(60, 2, seed)
			if err != nil {
				t.Fatal(err)
			}
			in, err := graphgen.AttachSuperSourceSink(base, 3, 3, seed+200)
			if err != nil {
				t.Fatal(err)
			}
			graphgen.RandomCapacities(in, 20, seed)
			runBoth(t, in)
		})
	}
}
