package prflow

import (
	"encoding/binary"
	"fmt"
	"math"

	"ffmr/internal/graph"
	"ffmr/internal/pregel"
)

// The superstep protocol. Supersteps alternate between two roles, with
// periodic global-relabeling interludes, all sequenced by the master
// (see master.go):
//
//	push:     every active vertex (excess > 0, not s or t) pushes along
//	          admissible edges (residual > 0, h(u) == h(neighbour)+1)
//	          and sends one flow message per push. Heights never change
//	          here, so the neighbour-height table every vertex carries
//	          is exact during every push decision.
//	update:   flow messages are applied (excess materializes at the
//	          receiver), then vertices with excess and no admissible
//	          edge relabel to 1 + min over residual neighbour heights
//	          and announce the new height. The total remaining excess is
//	          aggregated at this barrier — with no flow in flight, zero
//	          aggregate excess means the preflow is a flow and, by
//	          height validity, a maximum one.
//	bfs-init/bfs-wave/bfs-apply: the global-relabeling heuristic — a
//	          backward BFS from the sink through residual edges, run as
//	          message waves while flow is frozen; apply lifts every
//	          height to max(h, d_t) (unreached vertices to max(h, n))
//	          and re-announces all heights.
//	done:     every vertex votes to halt.
//
// The invariant carried across all of this is height validity:
// h(u) <= h(v) + 1 for every residual edge (u,v), with h(s) = n pinned
// and h(t) = 0. Pushes preserve it because they are exact (the new
// reverse edge (v,u) gets h(v) = h(u)-1); simultaneous relabels
// preserve it because every relabel uses exact start-of-barrier
// neighbour heights and heights only ever increase; the BFS lift
// preserves it because the pointwise max of two valid labelings is
// valid. Validity plus h(s) = n is what makes zero excess a proof of
// maximality: any residual s-t path would need n to fall to 0 in at
// most n-1 unit steps.

// Phases published by the master as the one-byte global side data; the
// value is the phase of the superstep about to run. Superstep 0 sees
// nil global data and runs as phasePush (the host seeds exact initial
// heights, so pushing immediately is safe).
const (
	phasePush byte = iota
	phaseUpdate
	phaseBFSInit
	phaseBFSWave
	phaseBFSApply
	phaseDone
)

// Aggregator names. All are summed per superstep by the pregel engine.
const (
	aggExcess   = "excess"      // total excess outside s,t (update barriers)
	aggActive   = "active"      // vertices holding excess (update barriers)
	aggPushes   = "pushes"      // push operations (push barriers)
	aggRelabels = "relabels"    // relabel operations (update barriers)
	aggSinkIn   = "sink inflow" // flow absorbed by t this superstep
	aggLabeled  = "bfs labeled" // vertices labeled this wave superstep
)

// Message tags.
const (
	tagFlow   byte = 'F' // edge ID + canonical-orientation delta
	tagHeight byte = 'H' // sender + new height
	tagBFS    byte = 'B' // sender + distance-to-sink label
)

func encodeFlowMsg(dst []byte, id graph.EdgeID, delta int64) []byte {
	dst = append(dst, tagFlow)
	dst = binary.AppendUvarint(dst, uint64(id))
	return binary.AppendVarint(dst, delta)
}

func encodeHeightMsg(dst []byte, sender graph.VertexID, height int64) []byte {
	dst = append(dst, tagHeight)
	dst = binary.AppendUvarint(dst, uint64(sender))
	return binary.AppendVarint(dst, height)
}

func encodeBFSMsg(dst []byte, sender graph.VertexID, dist int64) []byte {
	dst = append(dst, tagBFS)
	dst = binary.AppendUvarint(dst, uint64(sender))
	return binary.AppendVarint(dst, dist)
}

func decodeMsgBody(data []byte) (uint64, int64, error) {
	a, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, fmt.Errorf("prflow: corrupt message")
	}
	b, m := binary.Varint(data[n:])
	if m <= 0 {
		return 0, 0, fmt.Errorf("prflow: corrupt message")
	}
	return a, b, nil
}

// state is one vertex's push-relabel state: the classical height and
// excess, the adjacency with live flows (the residual network), the
// exact last-announced height of each edge's far endpoint, and the
// per-relabel-cycle BFS label.
type state struct {
	height int64
	excess int64
	dist   int64 // BFS wave label; -1 outside / before a wave
	edges  []graph.Edge
	nbrH   []int64 // parallel to edges
}

func encodeState(dst []byte, st *state) []byte {
	dst = binary.AppendVarint(dst, st.height)
	dst = binary.AppendVarint(dst, st.excess)
	dst = binary.AppendVarint(dst, st.dist)
	dst = binary.AppendUvarint(dst, uint64(len(st.edges)))
	for i := range st.edges {
		e := &st.edges[i]
		dst = binary.AppendUvarint(dst, uint64(e.To))
		dst = binary.AppendUvarint(dst, uint64(e.ID))
		dst = binary.AppendVarint(dst, e.Flow)
		dst = binary.AppendVarint(dst, e.Cap)
		dst = binary.AppendVarint(dst, e.RevCap)
		if e.Fwd {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.AppendVarint(dst, st.nbrH[i])
	}
	return dst
}

func decodeState(data []byte) (*state, error) {
	st := &state{}
	off := 0
	next := func() (int64, error) {
		v, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("prflow: corrupt vertex state")
		}
		off += n
		return v, nil
	}
	nextU := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("prflow: corrupt vertex state")
		}
		off += n
		return v, nil
	}
	var err error
	if st.height, err = next(); err != nil {
		return nil, err
	}
	if st.excess, err = next(); err != nil {
		return nil, err
	}
	if st.dist, err = next(); err != nil {
		return nil, err
	}
	cnt, err := nextU()
	if err != nil {
		return nil, err
	}
	st.edges = make([]graph.Edge, cnt)
	st.nbrH = make([]int64, cnt)
	for i := range st.edges {
		e := &st.edges[i]
		to, err := nextU()
		if err != nil {
			return nil, err
		}
		id, err := nextU()
		if err != nil {
			return nil, err
		}
		e.To, e.ID = graph.VertexID(to), graph.EdgeID(id)
		if e.Flow, err = next(); err != nil {
			return nil, err
		}
		if e.Cap, err = next(); err != nil {
			return nil, err
		}
		if e.RevCap, err = next(); err != nil {
			return nil, err
		}
		if off >= len(data) {
			return nil, fmt.Errorf("prflow: corrupt vertex state")
		}
		e.Fwd = data[off] != 0
		off++
		if st.nbrH[i], err = next(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// broadcast sends msg to every distinct neighbour. The adjacency is
// sorted by (To, ID), so parallel edges are adjacent and skipped.
func broadcast(ctx *pregel.Context, st *state, msg []byte) {
	for i := range st.edges {
		if i > 0 && st.edges[i].To == st.edges[i-1].To {
			continue
		}
		ctx.SendTo(st.edges[i].To, msg)
	}
}

// program is the per-vertex compute function.
type program struct {
	n            int64
	source, sink graph.VertexID
}

// Compute implements pregel.Program for one superstep of the protocol
// described at the top of this file.
func (p *program) Compute(ctx *pregel.Context, v *pregel.Vertex, messages [][]byte) error {
	phase := phasePush
	if g := ctx.Global(); len(g) > 0 {
		phase = g[0]
	}
	if phase == phaseDone {
		ctx.VoteToHalt()
		return nil
	}
	st, err := decodeState(v.Value)
	if err != nil {
		return err
	}

	// Message application is phase-independent: height announcements can
	// arrive in any phase (relabels announce into whatever superstep
	// follows), flow messages only ever arrive in update supersteps, and
	// BFS labels only during waves.
	var waveMsgs [][2]int64 // (sender, dist)
	var sinkInflow int64
	for _, m := range messages {
		if len(m) < 1 {
			return fmt.Errorf("prflow: empty message")
		}
		a, b, err := decodeMsgBody(m[1:])
		if err != nil {
			return err
		}
		switch m[0] {
		case tagHeight:
			sender, height := graph.VertexID(a), b
			for i := range st.edges {
				if st.edges[i].To == sender {
					st.nbrH[i] = height
				}
			}
		case tagFlow:
			id, delta := graph.EdgeID(a), b
			found := false
			for i := range st.edges {
				if st.edges[i].ID == id {
					st.edges[i].ApplyDelta(delta)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("prflow: vertex %d received flow for foreign edge %d", v.ID, id)
			}
			amt := delta
			if amt < 0 {
				amt = -amt
			}
			switch v.ID {
			case p.source:
				// Excess returning to the source leaves the system.
			case p.sink:
				sinkInflow += amt
			default:
				st.excess += amt
			}
		case tagBFS:
			waveMsgs = append(waveMsgs, [2]int64{int64(a), b})
		default:
			return fmt.Errorf("prflow: unknown message tag %q", m[0])
		}
	}

	switch phase {
	case phasePush:
		if st.excess > 0 && v.ID != p.source && v.ID != p.sink {
			var buf []byte
			for i := range st.edges {
				if st.excess == 0 {
					break
				}
				e := &st.edges[i]
				if e.Residual() <= 0 || st.height != st.nbrH[i]+1 {
					continue
				}
				amt := st.excess
				if r := e.Residual(); r < amt {
					amt = r
				}
				e.Flow += amt
				st.excess -= amt
				delta := amt
				if !e.Fwd {
					delta = -amt
				}
				buf = encodeFlowMsg(buf[:0], e.ID, delta)
				ctx.SendTo(e.To, buf)
				ctx.Aggregate(aggPushes, 1)
			}
		}

	case phaseUpdate:
		if st.excess > 0 && v.ID != p.source && v.ID != p.sink {
			admissible := false
			minH := int64(math.MaxInt64)
			for i := range st.edges {
				if st.edges[i].Residual() <= 0 {
					continue
				}
				if st.height == st.nbrH[i]+1 {
					admissible = true
					break
				}
				if st.nbrH[i] < minH {
					minH = st.nbrH[i]
				}
			}
			if !admissible && minH < int64(math.MaxInt64) {
				st.height = minH + 1
				ctx.Aggregate(aggRelabels, 1)
				broadcast(ctx, st, encodeHeightMsg(nil, v.ID, st.height))
			}
			ctx.Aggregate(aggExcess, st.excess)
			ctx.Aggregate(aggActive, 1)
		}
		if v.ID == p.sink && sinkInflow > 0 {
			ctx.Aggregate(aggSinkIn, sinkInflow)
		}

	case phaseBFSInit:
		st.dist = -1
		if v.ID == p.sink {
			st.dist = 0
			broadcast(ctx, st, encodeBFSMsg(nil, v.ID, 0))
		}

	case phaseBFSWave:
		if st.dist < 0 && len(waveMsgs) > 0 {
			best := int64(-1)
			for _, wm := range waveMsgs {
				sender, d := graph.VertexID(wm[0]), wm[1]
				for i := range st.edges {
					if st.edges[i].To == sender && st.edges[i].Residual() > 0 {
						if best < 0 || d < best {
							best = d
						}
						break
					}
				}
			}
			if best >= 0 {
				st.dist = best + 1
				ctx.Aggregate(aggLabeled, 1)
				broadcast(ctx, st, encodeBFSMsg(nil, v.ID, st.dist))
			}
		}

	case phaseBFSApply:
		if v.ID != p.source && v.ID != p.sink {
			d := st.dist
			if d < 0 {
				d = p.n
			}
			if d > st.height {
				st.height = d
			}
		}
		broadcast(ctx, st, encodeHeightMsg(nil, v.ID, st.height))

	default:
		return fmt.Errorf("prflow: unknown phase %d", phase)
	}

	v.Value = encodeState(v.Value[:0], st)
	return nil
}
