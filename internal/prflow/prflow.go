// Package prflow is a synchronous parallel push-relabel max-flow engine
// in the style of Baumstark, Blelloch and Shun ("Efficient
// Implementation of a Synchronous Parallel Push-Relabel Algorithm"),
// run over the repository's Pregel/BSP substrate instead of shared
// memory. It is the portfolio's alternative to the paper's FFMR
// algorithm for inputs FFMR handles poorly — high-diameter graphs,
// where FFMR's round count is bounded below by the source-sink
// distance, while push-relabel moves flow along many short admissible
// steps concurrently.
//
// Supersteps strictly alternate between push barriers (flow moves,
// heights frozen) and update barriers (flow lands, relabels happen,
// new heights are announced); a periodic global-relabeling BFS from
// the sink runs as message waves inside the same engine. See
// program.go for the protocol and its height-validity argument.
//
// The engine registers itself with the core driver under the name
// "prflow" (core.Options.Engine), seeds initial heights with the
// MR-BFS of internal/core, and persists the same final residual state
// as the FFMR driver via core.WriteEngineState, so validation, dynamic
// snapshots and the service query API are engine-agnostic.
package prflow

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/pregel"
	"ffmr/internal/trace"
)

// EngineName is the core.Options.Engine value this package registers.
const EngineName = "prflow"

// globalRelabelInterval is the number of push supersteps between
// global-relabeling BFS waves.
const globalRelabelInterval = 50

func init() {
	core.RegisterEngine(EngineName, Run)
}

// master sequences the phases between supersteps and records one
// RoundStat per superstep.
type master struct {
	mu sync.Mutex

	next      byte // phase of the superstep about to run
	pushSteps int  // push supersteps since the last global relabel

	stats    []core.RoundStat
	sinkFlow int64 // cumulative flow absorbed by the sink
	pushes   int64
	relabels int64

	callback func(core.RoundStat)
	reg      *trace.Registry
}

func (m *master) compute(superstep int, _ [][]byte, aggregates map[string]int64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	cur := m.next
	stat := core.RoundStat{Round: superstep}
	var next byte
	switch cur {
	case phasePush:
		m.pushSteps++
		m.pushes += aggregates[aggPushes]
		stat.Submitted = aggregates[aggPushes]
		next = phaseUpdate
	case phaseUpdate:
		m.relabels += aggregates[aggRelabels]
		m.sinkFlow += aggregates[aggSinkIn]
		stat.FlowDelta = aggregates[aggSinkIn]
		stat.ActiveVertices = aggregates[aggActive]
		switch {
		case aggregates[aggExcess] == 0:
			// No excess anywhere outside s and t at a barrier with no
			// flow in flight: the preflow is a maximum flow.
			next = phaseDone
		case m.pushSteps >= globalRelabelInterval:
			m.pushSteps = 0
			next = phaseBFSInit
		default:
			next = phasePush
		}
	case phaseBFSInit:
		next = phaseBFSWave
	case phaseBFSWave:
		if aggregates[aggLabeled] == 0 {
			next = phaseBFSApply
		} else {
			next = phaseBFSWave
		}
	case phaseBFSApply:
		next = phasePush
	case phaseDone:
		next = phaseDone
	default:
		return nil, fmt.Errorf("prflow: master in unknown phase %d", cur)
	}
	m.next = next
	m.stats = append(m.stats, stat)

	m.reg.Gauge(trace.GaugeFFRound).Set(int64(superstep))
	m.reg.Gauge(trace.GaugeFFMaxFlow).Set(m.sinkFlow)
	m.reg.Gauge(trace.GaugeFFActive).Set(stat.ActiveVertices)
	m.reg.Counter(trace.CounterFFRounds).Add(1)
	if m.callback != nil {
		m.callback(stat)
	}
	return []byte{next}, nil
}

// Run executes the push-relabel engine as a core.EngineFunc: same
// cluster, same input, same resolved Options, same Result shape and
// persisted final state as the FFMR driver. Only the initial-height
// BFS runs as MapReduce jobs; the main loop runs on the in-process
// Pregel engine (deterministic for a given input, so results are
// identical on the local and distributed backends).
func Run(cluster *mapreduce.Cluster, in *graph.Input, opts core.Options) (*core.Result, error) {
	fs := cluster.FS
	tr := opts.Tracer
	log := obsv.Or(opts.Log).With("run", EngineName)
	start := time.Now()

	fs.DeletePrefix(opts.PathPrefix)

	runSpan := tr.Start(trace.CatRun, EngineName, nil)
	runSpan.SetStr("variant", EngineName)

	n := int64(in.NumVertices)

	// Initial heights: hop distance to the sink via the MR-BFS baseline
	// (run with source and sink swapped; the BFS ignores direction).
	// Undirected hop distances satisfy |d(u)-d(v)| <= 1 across every
	// edge, hence every residual arc, so d_t is a valid labeling no
	// matter which arcs are currently residual. Unreached vertices can
	// never route flow to t and start at height n.
	bfsPrefix := opts.PathPrefix + "bfs-init/"
	bfsIn := &graph.Input{NumVertices: in.NumVertices, Edges: in.Edges, Source: in.Sink, Sink: in.Source}
	bres, err := core.RunBFS(cluster, bfsIn, opts.Reducers, bfsPrefix)
	if err != nil {
		runSpan.End()
		return nil, fmt.Errorf("prflow: initial-height bfs: %w", err)
	}
	dist, err := core.BFSDistances(fs, bfsPrefix, bres)
	if err != nil {
		runSpan.End()
		return nil, err
	}
	if !opts.KeepIntermediate {
		fs.DeletePrefix(bfsPrefix)
	}
	height := func(u graph.VertexID) int64 {
		switch u {
		case in.Source:
			return n
		case in.Sink:
			return 0
		}
		if d, ok := dist[u]; ok && d >= 0 {
			return d
		}
		return n
	}

	// Build vertex states. The source's out-edges are saturated up
	// front (the classical preflow initialization), placing the excess
	// directly at the neighbours.
	adj := make(map[graph.VertexID][]graph.Edge)
	excess := make(map[graph.VertexID]int64)
	for i := range in.Edges {
		e := &in.Edges[i]
		revCap := e.Cap
		if e.Directed {
			revCap = 0
		}
		var f int64
		switch in.Source {
		case e.U:
			f = e.Cap
			excess[e.V] += e.Cap
		case e.V:
			f = -revCap
			excess[e.U] += revCap
		}
		id := graph.EdgeID(i)
		adj[e.U] = append(adj[e.U], graph.Edge{To: e.V, ID: id, Flow: f, Cap: e.Cap, RevCap: revCap, Fwd: true})
		adj[e.V] = append(adj[e.V], graph.Edge{To: e.U, ID: id, Flow: -f, Cap: revCap, RevCap: e.Cap, Fwd: false})
	}
	vertices := make([]*pregel.Vertex, 0, len(adj))
	for u, edges := range adj {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].To != edges[j].To {
				return edges[i].To < edges[j].To
			}
			return edges[i].ID < edges[j].ID
		})
		st := &state{
			height: height(u),
			dist:   -1,
			edges:  edges,
			nbrH:   make([]int64, len(edges)),
		}
		if u != in.Source && u != in.Sink {
			st.excess = excess[u]
		}
		for i := range edges {
			st.nbrH[i] = height(edges[i].To)
		}
		vertices = append(vertices, &pregel.Vertex{ID: u, Value: encodeState(nil, st)})
	}

	maxSupersteps := 20000 + 200*in.NumVertices
	m := &master{
		next:     phasePush,
		callback: opts.RoundCallback,
		reg:      tr.Registry(),
	}
	engine, err := pregel.NewEngine(pregel.Config{
		MaxSupersteps: maxSupersteps,
		Master:        m.compute,
		Tracer:        tr,
		TraceParent:   runSpan,
	}, vertices)
	if err != nil {
		runSpan.End()
		return nil, err
	}
	program := &program{n: n, source: in.Source, sink: in.Sink}
	stats, err := engine.Run(program)
	if err != nil {
		runSpan.End()
		return nil, err
	}
	if m.next != phaseDone {
		runSpan.End()
		return nil, fmt.Errorf("prflow: no convergence within %d supersteps", maxSupersteps)
	}

	// Extract the canonical per-edge flows from the halted vertex
	// states, verifying skew symmetry between the two halves.
	flows := make([]int64, len(in.Edges))
	halves := make([]int, len(in.Edges))
	for u := range adj {
		st, err := decodeState(engine.Vertex(u).Value)
		if err != nil {
			runSpan.End()
			return nil, err
		}
		for i := range st.edges {
			e := &st.edges[i]
			canonical := e.Flow
			if !e.Fwd {
				canonical = -canonical
			}
			if halves[e.ID] > 0 && flows[e.ID] != canonical {
				runSpan.End()
				return nil, fmt.Errorf("prflow: edge %d violates skew symmetry: %d vs %d",
					e.ID, flows[e.ID], canonical)
			}
			flows[e.ID] = canonical
			halves[e.ID]++
		}
	}
	for id, cnt := range halves {
		if cnt != 2 {
			runSpan.End()
			return nil, fmt.Errorf("prflow: edge %d has %d halves", id, cnt)
		}
	}
	var value int64
	for i := range in.Edges {
		if in.Edges[i].U == in.Source {
			value += flows[i]
		}
		if in.Edges[i].V == in.Source {
			value -= flows[i]
		}
	}

	// Proof-carrying checks: the assignment is a feasible s-t flow of
	// the claimed value, and the residual graph admits no augmenting
	// path, so the value is maximum.
	if err := core.CheckAssignment(in, flows, value); err != nil {
		runSpan.End()
		return nil, fmt.Errorf("prflow: %w", err)
	}
	if residualReachable(in, flows) {
		runSpan.End()
		return nil, fmt.Errorf("prflow: internal error: residual augmenting path remains at value %d", value)
	}

	if err := core.WriteEngineState(fs, in, opts, stats.Supersteps, flows); err != nil {
		runSpan.End()
		return nil, err
	}

	res := &core.Result{
		Variant:       opts.Variant,
		MaxFlow:       value,
		Rounds:        stats.Supersteps,
		Converged:     true,
		RoundStats:    m.stats,
		TotalSimTime:  bres.TotalSimTime,
		TotalWallTime: time.Since(start),
		RunSpan:       runSpan,
	}
	for i := range m.stats {
		res.RoundStats[i].WallTime = stats.WallTime / time.Duration(len(m.stats))
	}
	log.Info("prflow done",
		"max_flow", value,
		"supersteps", stats.Supersteps,
		"pushes", m.pushes,
		"relabels", m.relabels,
		"messages", stats.Messages,
		"wall", time.Since(start))
	runSpan.SetInt("max_flow", value)
	runSpan.SetInt("supersteps", int64(stats.Supersteps))
	runSpan.End()
	return res, nil
}

// residualReachable reports whether the sink is reachable from the
// source in the residual graph induced by flows — true means the
// assignment is not maximum.
func residualReachable(in *graph.Input, flows []int64) bool {
	adj := make(map[graph.VertexID][]graph.VertexID)
	for i := range in.Edges {
		e := &in.Edges[i]
		rev := e.Cap
		if e.Directed {
			rev = 0
		}
		if e.Cap-flows[i] > 0 {
			adj[e.U] = append(adj[e.U], e.V)
		}
		if rev+flows[i] > 0 {
			adj[e.V] = append(adj[e.V], e.U)
		}
	}
	seen := map[graph.VertexID]bool{in.Source: true}
	queue := []graph.VertexID{in.Source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == in.Sink {
			return true
		}
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return false
}
