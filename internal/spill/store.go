package spill

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// RunStore is where spill runs and intermediate merge segments live. In
// a real Hadoop deployment this is the tasktracker's local disk (not
// HDFS); here it is pluggable so tests can run the full spill/merge
// machinery against memory while production runs write real files under
// a temp dir.
//
// Names are slash-separated paths, unique per task attempt, so a failed
// attempt's partial state can be discarded with RemovePrefix. All
// methods are safe for concurrent use; Create/Open of distinct names
// may proceed in parallel (map tasks spill concurrently).
type RunStore interface {
	// Create opens a named object for writing. The object becomes
	// readable once the returned writer is closed.
	Create(name string) (io.WriteCloser, error)
	// Open streams a previously created object.
	Open(name string) (io.ReadCloser, error)
	// Has reports whether a named object exists (created and committed).
	// The distributed shuffle uses it to skip refetching segments that a
	// prefetch already landed.
	Has(name string) bool
	// Remove deletes one object (missing names are not an error).
	Remove(name string) error
	// RemovePrefix deletes every object whose name starts with prefix
	// and returns the number removed (failed-attempt cleanup).
	RemovePrefix(prefix string) int
	// Bytes returns the total stored (on-disk, post-compression) bytes.
	Bytes() int64
	// Objects returns the number of live objects.
	Objects() int
	// Close releases the store, deleting everything it holds.
	Close() error
}

// MemRunStore is an in-memory RunStore for tests and for exercising the
// spill path without touching the host file system.
type MemRunStore struct {
	mu   sync.Mutex
	objs map[string][]byte
}

// NewMemRunStore creates an empty in-memory run store.
func NewMemRunStore() *MemRunStore {
	return &MemRunStore{objs: make(map[string][]byte)}
}

// memWriter buffers writes and commits the object on Close.
type memWriter struct {
	buf   bytes.Buffer
	store *MemRunStore
	name  string
}

func (w *memWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *memWriter) Close() error {
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	w.store.objs[w.name] = append([]byte(nil), w.buf.Bytes()...)
	return nil
}

// Create implements RunStore.
func (s *MemRunStore) Create(name string) (io.WriteCloser, error) {
	if name == "" {
		return nil, fmt.Errorf("spill: empty run name")
	}
	return &memWriter{store: s, name: name}, nil
}

// Open implements RunStore.
func (s *MemRunStore) Open(name string) (io.ReadCloser, error) {
	s.mu.Lock()
	data, ok := s.objs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("spill: run %q does not exist", name)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// Has implements RunStore.
func (s *MemRunStore) Has(name string) bool {
	s.mu.Lock()
	_, ok := s.objs[name]
	s.mu.Unlock()
	return ok
}

// Remove implements RunStore.
func (s *MemRunStore) Remove(name string) error {
	s.mu.Lock()
	delete(s.objs, name)
	s.mu.Unlock()
	return nil
}

// RemovePrefix implements RunStore.
func (s *MemRunStore) RemovePrefix(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name := range s.objs {
		if strings.HasPrefix(name, prefix) {
			delete(s.objs, name)
			n++
		}
	}
	return n
}

// Bytes implements RunStore.
func (s *MemRunStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, data := range s.objs {
		total += int64(len(data))
	}
	return total
}

// Objects implements RunStore.
func (s *MemRunStore) Objects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objs)
}

// Names returns the live object names, sorted (test helper).
func (s *MemRunStore) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.objs))
	for name := range s.objs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close implements RunStore.
func (s *MemRunStore) Close() error {
	s.mu.Lock()
	s.objs = make(map[string][]byte)
	s.mu.Unlock()
	return nil
}

// DiskRunStore writes runs as real files under a private directory,
// which Close removes. It is the production store: spilled bytes leave
// process memory.
type DiskRunStore struct {
	root string

	mu    sync.Mutex
	sizes map[string]int64
}

// NewDiskRunStore creates a store rooted at a fresh private directory
// under dir (the OS temp dir when dir is empty). dir is created if it
// does not exist yet.
func NewDiskRunStore(dir string) (*DiskRunStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("spill: create store dir: %w", err)
		}
	}
	root, err := os.MkdirTemp(dir, "ffmr-spill-*")
	if err != nil {
		return nil, fmt.Errorf("spill: create store dir: %w", err)
	}
	return &DiskRunStore{root: root, sizes: make(map[string]int64)}, nil
}

// Root returns the store's private directory.
func (s *DiskRunStore) Root() string { return s.root }

func (s *DiskRunStore) path(name string) string {
	return filepath.Join(s.root, filepath.FromSlash(name))
}

// diskWriter counts bytes and registers the object's size on Close.
type diskWriter struct {
	f     *os.File
	store *DiskRunStore
	name  string
	n     int64
}

func (w *diskWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.n += int64(n)
	return n, err
}

func (w *diskWriter) Close() error {
	err := w.f.Close()
	w.store.mu.Lock()
	w.store.sizes[w.name] = w.n
	w.store.mu.Unlock()
	return err
}

// Create implements RunStore.
func (s *DiskRunStore) Create(name string) (io.WriteCloser, error) {
	if name == "" {
		return nil, fmt.Errorf("spill: empty run name")
	}
	p := s.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	f, err := os.Create(p)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &diskWriter{f: f, store: s, name: name}, nil
}

// Open implements RunStore.
func (s *DiskRunStore) Open(name string) (io.ReadCloser, error) {
	f, err := os.Open(s.path(name))
	if err != nil {
		return nil, fmt.Errorf("spill: run %q: %w", name, err)
	}
	return f, nil
}

// Has implements RunStore. The sizes index is authoritative: a file
// still being written has no entry yet, so Has only reports committed
// objects, matching MemRunStore's close-to-commit semantics.
func (s *DiskRunStore) Has(name string) bool {
	s.mu.Lock()
	_, ok := s.sizes[name]
	s.mu.Unlock()
	return ok
}

// Remove implements RunStore.
func (s *DiskRunStore) Remove(name string) error {
	s.mu.Lock()
	delete(s.sizes, name)
	s.mu.Unlock()
	if err := os.Remove(s.path(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("spill: %w", err)
	}
	return nil
}

// RemovePrefix implements RunStore.
func (s *DiskRunStore) RemovePrefix(prefix string) int {
	s.mu.Lock()
	var victims []string
	for name := range s.sizes {
		if strings.HasPrefix(name, prefix) {
			victims = append(victims, name)
			delete(s.sizes, name)
		}
	}
	s.mu.Unlock()
	for _, name := range victims {
		os.Remove(s.path(name))
	}
	return len(victims)
}

// Bytes implements RunStore.
func (s *DiskRunStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, sz := range s.sizes {
		total += sz
	}
	return total
}

// Objects implements RunStore.
func (s *DiskRunStore) Objects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sizes)
}

// Close implements RunStore, removing the store directory and all runs.
func (s *DiskRunStore) Close() error {
	s.mu.Lock()
	s.sizes = make(map[string]int64)
	s.mu.Unlock()
	return os.RemoveAll(s.root)
}
