// Package spill is the out-of-core shuffle subsystem: Hadoop's external
// sort/merge, scaled down to this repo's emulated MapReduce runtime.
//
// A map task emits into a Writer with a bounded memory budget. When the
// buffered framed bytes reach the budget, the buffer is sorted per
// partition, the job's combiner (if any) is applied, and each
// partition's records are written as one framed, optionally
// DEFLATE-compressed spill segment to a RunStore — the tasktracker's
// local disk in Hadoop, a temp dir (DiskRunStore) or memory
// (MemRunStore) here. Reducers stream their partition through a k-way
// merge Iterator over all tasks' segments instead of materializing the
// partition in memory; when the segment count exceeds the merge fan-in,
// intermediate merge passes combine segments first, exactly as Hadoop's
// reduce-side merger bounds its open-file count.
//
// Record framing (format.go) is the canonical implementation shared
// with the DFS SequenceFile emulation, so on-disk bytes and shuffle
// counter accounting cannot diverge.
package spill

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"ffmr/internal/trace"
)

// DefaultMergeFanIn bounds how many segments one merge pass reads
// (Hadoop's io.sort.factor, default 10 there).
const DefaultMergeFanIn = 16

// Segment is one sorted run of framed records for a single partition,
// stored in a RunStore.
type Segment struct {
	// Name is the store object holding the segment.
	Name string
	// Partition is the reduce partition the records hash to.
	Partition int
	// Records is the number of framed records in the segment.
	Records int64
	// RawBytes is the framed (uncompressed) payload size — the bytes the
	// shuffle accounts for, matching the in-memory path's framedSize sums.
	RawBytes int64
	// StoredBytes is the size in the store (smaller when compressed).
	StoredBytes int64
	// Compressed reports whether the stored bytes are DEFLATE-compressed.
	Compressed bool
	// Node is the simulated cluster node of the producing map task, used
	// for inter-node shuffle accounting (-1 for merged segments, which
	// mix producers; accounting happens before merging).
	Node int
}

// Output is the result of one map task attempt's spilled output.
type Output struct {
	// Node is the producing task's simulated node.
	Node int
	// Parts holds each partition's segments in spill order.
	Parts [][]Segment
	// Spills is the number of spill events (sort+write cycles).
	Spills int64
	// RawBytes and StoredBytes total the segments' sizes.
	RawBytes    int64
	StoredBytes int64
	// Records is the number of records written (post-combine).
	Records int64
	// MaxFrame is the largest single framed record written.
	MaxFrame int64
}

// Config parameterizes a Writer.
type Config struct {
	// Partitions is the number of reduce partitions (required).
	Partitions int
	// MemoryBudget is the framed-byte threshold that triggers a spill
	// (required, > 0).
	MemoryBudget int64
	// Store receives the spill segments (required).
	Store RunStore
	// NamePrefix namespaces this task attempt's segments in the store,
	// e.g. "job/map-00003/a0/". Abort removes everything under it.
	NamePrefix string
	// Node is the producing task's simulated node.
	Node int
	// Compress DEFLATE-compresses stored segments.
	Compress bool
	// Combine, if non-nil, is applied per spill to each key's values
	// (Hadoop runs the combiner on every spill, so a multi-spill task
	// combines each buffer independently). The key and value slices alias
	// the writer's internal buffer and are recycled after the spill:
	// combiners must not retain them past the call.
	Combine func(key []byte, values [][]byte) ([][]byte, error)
	// OnCombine, if non-nil, observes each combine application's input
	// and output record counts (for the engine's combine counters).
	OnCombine func(in, out int64)
	// FailSpill, if non-nil, is consulted before writing spill #i; a
	// non-nil error aborts the task attempt (fault injection).
	FailSpill func(spill int) error
	// Tracer and Parent, if set, record one span per spill under the
	// producing task attempt's span.
	Tracer *trace.Tracer
	Parent *trace.Span
}

// rec is one buffered record.
type rec struct{ key, value []byte }

// arenaChunkSize is the bump allocator's chunk granularity. 64KiB keeps
// chunks comfortably reusable through sync.Pool while amortizing the
// per-chunk bookkeeping over thousands of typical records.
const arenaChunkSize = 64 << 10

var arenaPool = sync.Pool{New: func() any {
	b := make([]byte, 0, arenaChunkSize)
	return &b
}}

// arena is a bump allocator for buffered record bytes. Every Add used to
// copy its key and value into two fresh heap slices — two allocations
// per record on the map hot path; the arena copies them into pooled
// chunks instead, so a steady-state Add allocates nothing. Record slices
// alias arena memory and die together at reset, which is only called
// once nothing references them (after a spill consumed the buffer).
type arena struct {
	chunks []*[]byte
}

// copyIn copies b into the arena and returns the full-capacity-clamped
// copy, so later appends to the returned slice can never clobber a
// neighboring record.
func (a *arena) copyIn(b []byte) []byte {
	n := len(a.chunks)
	if n == 0 || cap(*a.chunks[n-1])-len(*a.chunks[n-1]) < len(b) {
		var c *[]byte
		if len(b) > arenaChunkSize {
			// Oversize record: a dedicated exact-cap chunk, never pooled.
			nc := make([]byte, 0, len(b))
			c = &nc
		} else {
			c = arenaPool.Get().(*[]byte)
		}
		a.chunks = append(a.chunks, c)
		n = len(a.chunks)
	}
	c := a.chunks[n-1]
	start := len(*c)
	*c = append(*c, b...)
	return (*c)[start:len(*c):len(*c)]
}

// reset returns regular chunks to the pool and drops oversize ones. The
// caller must have dropped every slice copyIn handed out.
func (a *arena) reset() {
	for _, c := range a.chunks {
		if cap(*c) == arenaChunkSize {
			*c = (*c)[:0]
			arenaPool.Put(c)
		}
	}
	a.chunks = a.chunks[:0]
}

// sortRecs orders records by (key, value), the engine's shuffle order.
func sortRecs(recs []rec) {
	sort.Slice(recs, func(i, j int) bool {
		if cmp := bytes.Compare(recs[i].key, recs[j].key); cmp != 0 {
			return cmp < 0
		}
		return bytes.Compare(recs[i].value, recs[j].value) < 0
	})
}

// Writer is the map side of the out-of-core shuffle: a bounded
// in-memory buffer that spills sorted runs to the store. Not safe for
// concurrent use; each map task attempt owns one Writer.
type Writer struct {
	cfg      Config
	parts    [][]rec
	buf      arena
	buffered int64
	spillIdx int
	out      Output
	err      error
	closed   bool
	scratch  []byte
}

// NewWriter creates a Writer for one map task attempt.
func NewWriter(cfg Config) (*Writer, error) {
	if cfg.Partitions <= 0 {
		return nil, fmt.Errorf("spill: writer needs at least one partition")
	}
	if cfg.MemoryBudget <= 0 {
		return nil, fmt.Errorf("spill: writer needs a positive memory budget")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("spill: writer needs a run store")
	}
	return &Writer{
		cfg:   cfg,
		parts: make([][]rec, cfg.Partitions),
		out:   Output{Node: cfg.Node, Parts: make([][]Segment, cfg.Partitions)},
	}, nil
}

// Add buffers one record for a partition, spilling when the buffered
// framed bytes reach the memory budget. Key and value are copied.
func (w *Writer) Add(partition int, key, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("spill: Add after Close")
	}
	if partition < 0 || partition >= len(w.parts) {
		return w.fail(fmt.Errorf("spill: partition %d out of range [0,%d)", partition, len(w.parts)))
	}
	k := w.buf.copyIn(key)
	v := w.buf.copyIn(value)
	w.parts[partition] = append(w.parts[partition], rec{key: k, value: v})
	w.buffered += FramedSize(k, v)
	if w.buffered >= w.cfg.MemoryBudget {
		return w.spill()
	}
	return nil
}

// fail poisons the writer with its first error.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// spill sorts, combines and writes the current buffer as one segment
// per non-empty partition.
func (w *Writer) spill() error {
	idx := w.spillIdx
	w.spillIdx++
	if w.cfg.FailSpill != nil {
		if err := w.cfg.FailSpill(idx); err != nil {
			return w.fail(fmt.Errorf("spill %d: %w", idx, err))
		}
	}
	sp := w.cfg.Tracer.Start(trace.CatSpill, fmt.Sprintf("spill-%03d", idx), w.cfg.Parent)
	var spillRecs, spillRaw int64
	for p := range w.parts {
		recs := w.parts[p]
		if len(recs) == 0 {
			continue
		}
		sortRecs(recs)
		if w.cfg.Combine != nil {
			combined, err := w.combine(recs)
			if err != nil {
				sp.End()
				return w.fail(err)
			}
			recs = combined
		}
		name := fmt.Sprintf("%sspill-%05d/p-%05d", w.cfg.NamePrefix, idx, p)
		seg, err := writeSegment(w.cfg.Store, name, p, w.cfg.Node, w.cfg.Compress, recs, &w.scratch)
		if err != nil {
			sp.End()
			return w.fail(err)
		}
		w.out.Parts[p] = append(w.out.Parts[p], seg)
		w.out.RawBytes += seg.RawBytes
		w.out.StoredBytes += seg.StoredBytes
		w.out.Records += seg.Records
		spillRecs += seg.Records
		spillRaw += seg.RawBytes
		for i := range recs {
			if sz := FramedSize(recs[i].key, recs[i].value); sz > w.out.MaxFrame {
				w.out.MaxFrame = sz
			}
		}
		w.parts[p] = w.parts[p][:0]
	}
	w.buffered = 0
	// Every buffered record has been written out (or combined away), so
	// nothing aliases arena memory anymore; recycle the chunks. Failure
	// paths skip this — the poisoned writer just lets the GC collect them.
	w.buf.reset()
	w.out.Spills++
	sp.SetInt("records", spillRecs)
	sp.SetInt("raw_bytes", spillRaw)
	sp.End()
	return nil
}

// combine applies the configured combiner to each key group of a sorted
// buffer, returning the replacement records.
func (w *Writer) combine(recs []rec) ([]rec, error) {
	combined := make([]rec, 0, len(recs))
	var inRecs, outRecs int64
	for i := 0; i < len(recs); {
		j := i
		for j < len(recs) && bytes.Equal(recs[j].key, recs[i].key) {
			j++
		}
		group := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			group = append(group, recs[k].value)
		}
		inRecs += int64(len(group))
		out, err := w.cfg.Combine(recs[i].key, group)
		if err != nil {
			return nil, err
		}
		outRecs += int64(len(out))
		for _, v := range out {
			combined = append(combined, rec{key: recs[i].key, value: v})
		}
		i = j
	}
	// Combiner output order within a key is implementation-defined;
	// restore shuffle order so segments stay internally sorted.
	sortRecs(combined)
	if w.cfg.OnCombine != nil {
		w.cfg.OnCombine(inRecs, outRecs)
	}
	return combined, nil
}

// Close flushes any buffered records as a final spill and returns the
// task attempt's spilled output. The Writer is unusable afterwards.
func (w *Writer) Close() (*Output, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.closed {
		return nil, fmt.Errorf("spill: double Close")
	}
	w.closed = true
	if w.buffered > 0 {
		if err := w.spill(); err != nil {
			return nil, err
		}
	}
	return &w.out, nil
}

// Abort discards everything this writer put in the store (a failed task
// attempt's partial spill state, which Hadoop likewise deletes before
// retrying the task).
func (w *Writer) Abort() {
	w.cfg.Store.RemovePrefix(w.cfg.NamePrefix)
}

// writeSegment encodes sorted records as one framed (optionally
// compressed) store object and returns its metadata.
func writeSegment(store RunStore, name string, partition, node int, compress bool, recs []rec, scratch *[]byte) (Segment, error) {
	sw, err := newSegmentWriter(store, name, partition, node, compress)
	if err != nil {
		return Segment{}, err
	}
	for i := range recs {
		if err := sw.append(recs[i].key, recs[i].value, scratch); err != nil {
			sw.abort()
			return Segment{}, err
		}
	}
	return sw.close()
}
