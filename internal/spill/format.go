package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the single canonical implementation of the repo's record
// framing. The DFS SequenceFile emulation (dfs.RecordWriter/RecordReader)
// and the MapReduce engine's shuffle accounting both delegate here, so
// the bytes written to disk, the bytes counted by the shuffle, and the
// bytes spilled by this package cannot diverge.
//
// A frame is a length-prefixed <key, value> byte-string pair:
//
//	uvarint keyLen | key bytes | uvarint valueLen | value bytes
//
// Frames are self-contained: a reader streams records without knowing
// the payload schema.

// AppendFrame appends one framed record to buf and returns the extended
// slice (append-style API, like binary.AppendUvarint).
func AppendFrame(buf, key, value []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	buf = append(buf, value...)
	return buf
}

// FramedSize is the exact encoded size of one record's frame — the
// number of bytes AppendFrame would add.
func FramedSize(key, value []byte) int64 {
	return int64(UvarintLen(uint64(len(key))) + len(key) + UvarintLen(uint64(len(value))) + len(value))
}

// UvarintLen is the encoded size of x as a uvarint.
func UvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// ReadFrame decodes the frame starting at data[off:], returning the key
// and value (aliasing data) plus the offset of the next frame.
func ReadFrame(data []byte, off int) (key, value []byte, next int, err error) {
	key, next, err = readChunk(data, off)
	if err != nil {
		return nil, nil, 0, err
	}
	value, next, err = readChunk(data, next)
	if err != nil {
		return nil, nil, 0, err
	}
	return key, value, next, nil
}

func readChunk(data []byte, off int) ([]byte, int, error) {
	n, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("corrupt record length at offset %d", off)
	}
	off += sz
	if uint64(len(data)-off) < n {
		return nil, 0, fmt.Errorf("truncated record at offset %d (want %d bytes, have %d)",
			off, n, len(data)-off)
	}
	return data[off : off+int(n)], off + int(n), nil
}

// ReadStreamFrame decodes one frame from a buffered stream. It returns
// io.EOF (untouched) at a clean end of stream; a frame cut off mid-way
// reports io.ErrUnexpectedEOF. The returned slices are freshly
// allocated and remain valid after subsequent reads.
func ReadStreamFrame(br *bufio.Reader) (key, value []byte, err error) {
	key, err = readStreamChunk(br, true)
	if err != nil {
		return nil, nil, err
	}
	value, err = readStreamChunk(br, false)
	if err != nil {
		return nil, nil, err
	}
	return key, value, nil
}

func readStreamChunk(br *bufio.Reader, first bool) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF && first {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	return buf, nil
}
