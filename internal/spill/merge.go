package spill

import (
	"bufio"
	"bytes"
	"compress/flate"
	"container/heap"
	"fmt"
	"io"
	"sort"

	"ffmr/internal/trace"
)

// segmentWriter streams framed records into one store object through an
// optional DEFLATE stage, tracking raw and stored byte counts.
type segmentWriter struct {
	store RunStore
	obj   io.WriteCloser
	cw    *countWriter
	fw    *flate.Writer
	bw    *bufio.Writer
	seg   Segment
}

// countWriter counts the bytes reaching the store object.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func newSegmentWriter(store RunStore, name string, partition, node int, compress bool) (*segmentWriter, error) {
	obj, err := store.Create(name)
	if err != nil {
		return nil, err
	}
	sw := &segmentWriter{
		store: store,
		obj:   obj,
		cw:    &countWriter{w: obj},
		seg:   Segment{Name: name, Partition: partition, Node: node, Compressed: compress},
	}
	var top io.Writer = sw.cw
	if compress {
		fw, err := flate.NewWriter(sw.cw, flate.BestSpeed)
		if err != nil {
			obj.Close()
			return nil, fmt.Errorf("spill: %w", err)
		}
		sw.fw = fw
		top = fw
	}
	sw.bw = bufio.NewWriter(top)
	return sw, nil
}

// append frames one record onto the segment. scratch is a reusable
// encode buffer owned by the caller.
func (sw *segmentWriter) append(key, value []byte, scratch *[]byte) error {
	*scratch = AppendFrame((*scratch)[:0], key, value)
	if _, err := sw.bw.Write(*scratch); err != nil {
		return fmt.Errorf("spill: write segment %q: %w", sw.seg.Name, err)
	}
	sw.seg.Records++
	sw.seg.RawBytes += int64(len(*scratch))
	return nil
}

// close flushes all stages and returns the finished segment metadata.
func (sw *segmentWriter) close() (Segment, error) {
	if err := sw.bw.Flush(); err != nil {
		sw.obj.Close()
		return Segment{}, fmt.Errorf("spill: flush segment %q: %w", sw.seg.Name, err)
	}
	if sw.fw != nil {
		if err := sw.fw.Close(); err != nil {
			sw.obj.Close()
			return Segment{}, fmt.Errorf("spill: compress segment %q: %w", sw.seg.Name, err)
		}
	}
	if err := sw.obj.Close(); err != nil {
		return Segment{}, fmt.Errorf("spill: close segment %q: %w", sw.seg.Name, err)
	}
	sw.seg.StoredBytes = sw.cw.n
	return sw.seg, nil
}

// abort closes the underlying object without finishing the segment.
func (sw *segmentWriter) abort() {
	sw.obj.Close()
	sw.store.Remove(sw.seg.Name)
}

// segStream reads one segment's sorted records, holding the head record
// for the merge heap.
type segStream struct {
	rc    io.ReadCloser
	fr    io.ReadCloser // flate stage, nil when uncompressed
	br    *bufio.Reader
	key   []byte
	value []byte
	done  bool
	order int // stream index, tie-break for determinism
}

func openSegStream(store RunStore, seg Segment, order int) (*segStream, error) {
	rc, err := store.Open(seg.Name)
	if err != nil {
		return nil, err
	}
	st := &segStream{rc: rc, order: order}
	if seg.Compressed {
		st.fr = flate.NewReader(bufio.NewReader(rc))
		st.br = bufio.NewReader(st.fr)
	} else {
		st.br = bufio.NewReader(rc)
	}
	return st, nil
}

// advance loads the next record into the stream head. ok is false at
// end of segment.
func (st *segStream) advance() (ok bool, err error) {
	key, value, err := ReadStreamFrame(st.br)
	if err == io.EOF {
		st.done = true
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("spill: read segment: %w", err)
	}
	st.key, st.value = key, value
	return true, nil
}

func (st *segStream) close() error {
	if st.fr != nil {
		st.fr.Close()
	}
	return st.rc.Close()
}

// mergeHeap orders streams by their head record (key, value), ties by
// stream index.
type mergeHeap []*segStream

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if cmp := bytes.Compare(h[i].key, h[j].key); cmp != 0 {
		return cmp < 0
	}
	if cmp := bytes.Compare(h[i].value, h[j].value); cmp != 0 {
		return cmp < 0
	}
	return h[i].order < h[j].order
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*segStream)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	st := old[n-1]
	*h = old[:n-1]
	return st
}

// MergeOptions parameterizes a reduce-side merge.
type MergeOptions struct {
	// FanIn bounds how many segments one pass reads (default
	// DefaultMergeFanIn). When more segments exist, intermediate passes
	// merge the smallest FanIn segments into one until the remainder
	// fits a single streaming pass, as Hadoop's reduce merger does.
	FanIn int
	// Compress DEFLATE-compresses intermediate merged segments.
	Compress bool
	// TmpPrefix namespaces intermediate segments in the store, unique
	// per reduce task attempt. Iterator.Close removes them.
	TmpPrefix string
	// Tracer and Parent, if set, record one span per merge pass under
	// the reduce task attempt's span.
	Tracer *trace.Tracer
	Parent *trace.Span
}

// MergeStats describes the work a merge performed.
type MergeStats struct {
	// Passes counts merge passes, including the final streaming pass.
	Passes int64
	// Segments is the number of input segments merged across passes.
	Segments int64
	// MaxFanIn is the largest number of segments any single pass read.
	MaxFanIn int64
}

// Iterator streams the merged, sorted record sequence of one partition.
type Iterator struct {
	store RunStore
	h     mergeHeap
	tmp   []string
	key   []byte
	value []byte
}

// Merge prepares a sorted stream over segs (each internally sorted).
// Intermediate passes run eagerly here; the returned Iterator performs
// the final streaming pass. Callers must Close the Iterator.
func Merge(store RunStore, segs []Segment, opts MergeOptions) (*Iterator, MergeStats, error) {
	fanIn := opts.FanIn
	if fanIn <= 0 {
		fanIn = DefaultMergeFanIn
	}
	if fanIn < 2 {
		fanIn = 2
	}
	var stats MergeStats
	it := &Iterator{store: store}

	// Intermediate passes: repeatedly merge the FanIn smallest segments
	// into one until a single streaming pass can take the rest.
	work := append([]Segment(nil), segs...)
	tmpIdx := 0
	for len(work) > fanIn {
		sort.Slice(work, func(i, j int) bool { return work[i].RawBytes < work[j].RawBytes })
		batch := work[:fanIn]
		rest := append([]Segment(nil), work[fanIn:]...)
		name := fmt.Sprintf("%smerge-%04d", opts.TmpPrefix, tmpIdx)
		tmpIdx++
		merged, err := mergePass(store, batch, name, opts)
		if err != nil {
			it.Close()
			return nil, stats, err
		}
		it.tmp = append(it.tmp, merged.Name)
		stats.Passes++
		stats.Segments += int64(len(batch))
		if int64(len(batch)) > stats.MaxFanIn {
			stats.MaxFanIn = int64(len(batch))
		}
		work = append(rest, merged)
	}

	// Final streaming pass feeds the reducer directly.
	if len(work) > 0 {
		stats.Passes++
		stats.Segments += int64(len(work))
		if int64(len(work)) > stats.MaxFanIn {
			stats.MaxFanIn = int64(len(work))
		}
	}
	for i, seg := range work {
		st, err := openSegStream(store, seg, i)
		if err != nil {
			it.Close()
			return nil, stats, err
		}
		ok, err := st.advance()
		if err != nil {
			st.close()
			it.Close()
			return nil, stats, err
		}
		if !ok {
			st.close()
			continue
		}
		it.h = append(it.h, st)
	}
	heap.Init(&it.h)
	return it, stats, nil
}

// mergePass merges a batch of segments into one new segment.
func mergePass(store RunStore, batch []Segment, name string, opts MergeOptions) (Segment, error) {
	sp := opts.Tracer.Start(trace.CatMerge, fmt.Sprintf("merge-pass-%d", len(batch)), opts.Parent)
	defer sp.End()
	part, node := -1, -1
	if len(batch) > 0 {
		part = batch[0].Partition
	}
	sub, _, err := Merge(store, batch, MergeOptions{FanIn: len(batch)})
	if err != nil {
		return Segment{}, err
	}
	defer sub.Close()
	sw, err := newSegmentWriter(store, name, part, node, opts.Compress)
	if err != nil {
		return Segment{}, err
	}
	var scratch []byte
	for {
		key, value, ok, err := sub.Next()
		if err != nil {
			sw.abort()
			return Segment{}, err
		}
		if !ok {
			break
		}
		if err := sw.append(key, value, &scratch); err != nil {
			sw.abort()
			return Segment{}, err
		}
	}
	seg, err := sw.close()
	if err != nil {
		return Segment{}, err
	}
	sp.SetInt("segments", int64(len(batch)))
	sp.SetInt("records", seg.Records)
	sp.SetInt("raw_bytes", seg.RawBytes)
	return seg, nil
}

// Next returns the next record in (key, value) order. The returned
// slices remain valid after subsequent calls. ok is false when the
// stream is exhausted.
func (it *Iterator) Next() (key, value []byte, ok bool, err error) {
	if len(it.h) == 0 {
		return nil, nil, false, nil
	}
	st := it.h[0]
	key, value = st.key, st.value
	more, err := st.advance()
	if err != nil {
		return nil, nil, false, err
	}
	if more {
		heap.Fix(&it.h, 0)
	} else {
		heap.Pop(&it.h)
		if err := st.close(); err != nil {
			return nil, nil, false, err
		}
	}
	return key, value, true, nil
}

// Close releases open streams and removes intermediate merge segments.
func (it *Iterator) Close() error {
	var firstErr error
	for _, st := range it.h {
		if err := st.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	it.h = nil
	for _, name := range it.tmp {
		if err := it.store.Remove(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	it.tmp = nil
	return firstErr
}
