package spill

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// TestFramedSizeMatchesEncoding is the canonical-codec contract: the
// accounted size of a record equals the length of its encoded frame,
// for keys and values spanning the uvarint length boundaries.
func TestFramedSizeMatchesEncoding(t *testing.T) {
	sizes := []int{0, 1, 2, 127, 128, 129, 300, 16383, 16384, 20000}
	for _, ks := range sizes {
		for _, vs := range sizes {
			key := bytes.Repeat([]byte{'k'}, ks)
			value := bytes.Repeat([]byte{'v'}, vs)
			frame := AppendFrame(nil, key, value)
			if got, want := FramedSize(key, value), int64(len(frame)); got != want {
				t.Errorf("FramedSize(len %d, len %d) = %d, encoded frame is %d bytes", ks, vs, got, want)
			}
		}
	}
}

func TestReadFrameRoundTrip(t *testing.T) {
	var buf []byte
	type kv struct{ k, v string }
	recs := []kv{{"a", "1"}, {"", ""}, {"key-two", "value with spaces"}, {"z", string(bytes.Repeat([]byte{0xff}, 200))}}
	for _, r := range recs {
		buf = AppendFrame(buf, []byte(r.k), []byte(r.v))
	}
	off := 0
	for i, r := range recs {
		key, value, next, err := ReadFrame(buf, off)
		if err != nil {
			t.Fatalf("ReadFrame record %d: %v", i, err)
		}
		if string(key) != r.k || string(value) != r.v {
			t.Fatalf("record %d = (%q, %q), want (%q, %q)", i, key, value, r.k, r.v)
		}
		off = next
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestReadFrameCorruption(t *testing.T) {
	frame := AppendFrame(nil, []byte("key"), []byte("value"))
	if _, _, _, err := ReadFrame(frame[:len(frame)-2], 0); err == nil {
		t.Error("truncated frame: want error, got nil")
	}
	if _, _, _, err := ReadFrame([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, 0); err == nil {
		t.Error("oversized length prefix: want error, got nil")
	}
}

// testRecords generates a deterministic, skewed record set.
func testRecords(n int) [][2][]byte {
	out := make([][2][]byte, 0, n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i%37))
		value := []byte(fmt.Sprintf("value-%05d-%s", i, bytes.Repeat([]byte{'x'}, i%23)))
		out = append(out, [2][]byte{key, value})
	}
	return out
}

// drain reads an iterator to exhaustion.
func drain(t *testing.T, it *Iterator) [][2][]byte {
	t.Helper()
	var out [][2][]byte
	for {
		key, value, ok, err := it.Next()
		if err != nil {
			t.Fatalf("merge Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, [2][]byte{append([]byte(nil), key...), append([]byte(nil), value...)})
	}
}

// sortedCopy returns the records in (key, value) order.
func sortedCopy(recs [][2][]byte) [][2][]byte {
	out := append([][2][]byte(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		if cmp := bytes.Compare(out[i][0], out[j][0]); cmp != 0 {
			return cmp < 0
		}
		return bytes.Compare(out[i][1], out[j][1]) < 0
	})
	return out
}

func equalRecs(a, b [][2][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i][0], b[i][0]) || !bytes.Equal(a[i][1], b[i][1]) {
			return false
		}
	}
	return true
}

// runSpillMerge pushes records through a Writer and merges partition 0,
// returning the merged stream and the writer/merge stats.
func runSpillMerge(t *testing.T, store RunStore, budget int64, fanIn int, compress bool, recs [][2][]byte) ([][2][]byte, *Output, MergeStats) {
	t.Helper()
	w, err := NewWriter(Config{
		Partitions:   1,
		MemoryBudget: budget,
		Store:        store,
		NamePrefix:   "t/map-0/a0/",
		Node:         3,
		Compress:     compress,
	})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.Add(0, r[0], r[1]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	out, err := w.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	it, stats, err := Merge(store, out.Parts[0], MergeOptions{FanIn: fanIn, Compress: compress, TmpPrefix: "t/reduce-0/a0/"})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	merged := drain(t, it)
	if err := it.Close(); err != nil {
		t.Fatalf("Iterator.Close: %v", err)
	}
	return merged, out, stats
}

func TestSpillAndMergeRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			store := NewMemRunStore()
			recs := testRecords(500)
			merged, out, stats := runSpillMerge(t, store, 1024, 4, compress, recs)

			if out.Spills < 2 {
				t.Errorf("spills = %d, want >= 2 (budget must force multiple spills)", out.Spills)
			}
			if got, want := out.Records, int64(len(recs)); got != want {
				t.Errorf("records written = %d, want %d", got, want)
			}
			var rawWant int64
			for _, r := range recs {
				rawWant += FramedSize(r[0], r[1])
			}
			if out.RawBytes != rawWant {
				t.Errorf("RawBytes = %d, want sum of FramedSize = %d", out.RawBytes, rawWant)
			}
			if compress {
				if out.StoredBytes >= out.RawBytes {
					t.Errorf("compressed StoredBytes = %d, want < RawBytes %d", out.StoredBytes, out.RawBytes)
				}
			} else if out.StoredBytes != out.RawBytes {
				t.Errorf("uncompressed StoredBytes = %d, want RawBytes %d", out.StoredBytes, out.RawBytes)
			}
			if !equalRecs(merged, sortedCopy(recs)) {
				t.Error("merged stream does not equal the sorted input record set")
			}
			if stats.Passes < 1 {
				t.Errorf("merge passes = %d, want >= 1", stats.Passes)
			}
		})
	}
}

func TestMultiPassMerge(t *testing.T) {
	store := NewMemRunStore()
	recs := testRecords(800)
	before := store.Objects()
	// Tiny budget: many segments; fan-in 2 forces intermediate passes.
	merged, out, stats := runSpillMerge(t, store, 256, 2, false, recs)
	if out.Spills < 5 {
		t.Fatalf("spills = %d, want >= 5 for a multi-pass merge test", out.Spills)
	}
	if stats.Passes < 2 {
		t.Errorf("merge passes = %d, want >= 2", stats.Passes)
	}
	if stats.MaxFanIn > 2 {
		t.Errorf("max fan-in = %d, want <= 2", stats.MaxFanIn)
	}
	if !equalRecs(merged, sortedCopy(recs)) {
		t.Error("multi-pass merged stream does not equal the sorted input record set")
	}
	// Iterator.Close removed the intermediate merge segments; only the
	// original spill segments remain.
	if got, want := store.Objects()-before, int(out.Spills); got != want {
		t.Errorf("store holds %d extra objects after Close, want %d (the spill segments)", got, want)
	}
}

func TestDiskStoreMatchesMemStore(t *testing.T) {
	recs := testRecords(400)
	memStore := NewMemRunStore()
	memMerged, memOut, _ := runSpillMerge(t, memStore, 512, 3, true, recs)

	diskStore, err := NewDiskRunStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDiskRunStore: %v", err)
	}
	defer diskStore.Close()
	diskMerged, diskOut, _ := runSpillMerge(t, diskStore, 512, 3, true, recs)

	if !equalRecs(memMerged, diskMerged) {
		t.Error("disk-backed merge differs from in-memory merge")
	}
	if memOut.RawBytes != diskOut.RawBytes || memOut.Spills != diskOut.Spills || memOut.Records != diskOut.Records {
		t.Errorf("output stats diverge: mem %+v disk %+v", memOut, diskOut)
	}
	if memStore.Bytes() != diskStore.Bytes() {
		t.Errorf("store byte accounting diverges: mem %d disk %d", memStore.Bytes(), diskStore.Bytes())
	}
}

func TestPerSpillCombiner(t *testing.T) {
	store := NewMemRunStore()
	var combineIn, combineOut int64
	w, err := NewWriter(Config{
		Partitions:   1,
		MemoryBudget: 512,
		Store:        store,
		NamePrefix:   "t/",
		Combine: func(key []byte, values [][]byte) ([][]byte, error) {
			// Keep only the first (smallest) value per key per spill.
			return values[:1], nil
		},
		OnCombine: func(in, out int64) { combineIn += in; combineOut += out },
	})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	// Three distinct keys: every spill's buffer holds multi-value groups,
	// so per-spill combining must shrink the output.
	recs := make([][2][]byte, 0, 300)
	for i := 0; i < 300; i++ {
		recs = append(recs, [2][]byte{
			[]byte(fmt.Sprintf("key-%d", i%3)),
			[]byte(fmt.Sprintf("value-%05d", i)),
		})
	}
	for _, r := range recs {
		if err := w.Add(0, r[0], r[1]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	out, err := w.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if combineIn != int64(len(recs)) {
		t.Errorf("combine input records = %d, want %d", combineIn, len(recs))
	}
	if combineOut != out.Records {
		t.Errorf("combine output records = %d, writer wrote %d", combineOut, out.Records)
	}
	// 37 distinct keys, combined once per spill: output is bounded by
	// keys-per-spill but must be far below the input count.
	if out.Records >= int64(len(recs)) {
		t.Errorf("combiner did not shrink output: %d records from %d inputs", out.Records, len(recs))
	}
	it, _, err := Merge(store, out.Parts[0], MergeOptions{})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	merged := drain(t, it)
	it.Close()
	if int64(len(merged)) != out.Records {
		t.Errorf("merged %d records, writer reported %d", len(merged), out.Records)
	}
}

func TestAbortRemovesPartialState(t *testing.T) {
	store := NewMemRunStore()
	w, err := NewWriter(Config{Partitions: 2, MemoryBudget: 128, Store: store, NamePrefix: "job/map-1/a0/"})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range testRecords(200) {
		if err := w.Add(0, r[0], r[1]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if store.Objects() == 0 {
		t.Fatal("expected spilled segments before Abort")
	}
	w.Abort()
	if n := store.Objects(); n != 0 {
		t.Errorf("store holds %d objects after Abort, want 0", n)
	}
}

func TestFailSpillPoisonsWriter(t *testing.T) {
	store := NewMemRunStore()
	w, err := NewWriter(Config{
		Partitions:   1,
		MemoryBudget: 64,
		Store:        store,
		NamePrefix:   "f/",
		FailSpill: func(spill int) error {
			if spill == 1 {
				return fmt.Errorf("injected disk failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	var sawErr error
	for _, r := range testRecords(200) {
		if err := w.Add(0, r[0], r[1]); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		t.Fatal("expected an injected spill failure")
	}
	if _, err := w.Close(); err == nil {
		t.Error("Close after failure: want error, got nil")
	}
	w.Abort()
	if n := store.Objects(); n != 0 {
		t.Errorf("store holds %d objects after failed attempt Abort, want 0", n)
	}
}

func TestMergeEmptyAndSingleSegment(t *testing.T) {
	store := NewMemRunStore()
	it, stats, err := Merge(store, nil, MergeOptions{})
	if err != nil {
		t.Fatalf("Merge(nil): %v", err)
	}
	if _, _, ok, _ := it.Next(); ok {
		t.Error("empty merge yielded a record")
	}
	it.Close()
	if stats.Passes != 0 {
		t.Errorf("empty merge passes = %d, want 0", stats.Passes)
	}

	recs := testRecords(50)
	merged, out, stats := runSpillMerge(t, store, 1<<30, 4, false, recs)
	if out.Spills != 1 {
		t.Fatalf("spills = %d, want exactly 1 under a huge budget", out.Spills)
	}
	if stats.Passes != 1 {
		t.Errorf("single-segment merge passes = %d, want 1", stats.Passes)
	}
	if !equalRecs(merged, sortedCopy(recs)) {
		t.Error("single-segment merge does not equal sorted input")
	}
}

// TestAddSteadyStateAllocs is the allocation-regression gate for the map
// hot path: buffering a record must not allocate per record. The arena
// amortizes key/value copies over pooled 64KiB chunks and the partition
// slices grow geometrically, so the measured rate is a small fraction of
// an allocation per Add; the old copy-per-record path measured 2+.
func TestAddSteadyStateAllocs(t *testing.T) {
	store := NewMemRunStore()
	w, err := NewWriter(Config{
		Partitions:   4,
		MemoryBudget: 1 << 30, // never spill during the measurement
		Store:        store,
		NamePrefix:   "t/alloc/a0/",
	})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	key := []byte("steady-state-key")
	value := []byte("steady-state-value-payload")
	p := 0
	allocs := testing.AllocsPerRun(20000, func() {
		if err := w.Add(p&3, key, value); err != nil {
			t.Fatal(err)
		}
		p++
	})
	if allocs > 0.1 {
		t.Errorf("Add: %.3f allocs/op on the steady-state path, want ~0", allocs)
	}
}

// TestArenaIsolatesRecords pins the arena's no-clobber contract: slices
// handed out by copyIn must tolerate appends without corrupting their
// neighbors, and spilled output must match what was added.
func TestArenaIsolatesRecords(t *testing.T) {
	var a arena
	first := a.copyIn([]byte("alpha"))
	second := a.copyIn([]byte("beta"))
	_ = append(first, 'X') // must reallocate, not overwrite "beta"
	if string(second) != "beta" {
		t.Fatalf("append through an arena slice clobbered the next record: %q", second)
	}
	big := a.copyIn(make([]byte, arenaChunkSize+1))
	if len(big) != arenaChunkSize+1 {
		t.Fatalf("oversize copyIn returned %d bytes", len(big))
	}
	a.reset()
}
