package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ffmr/internal/graph"
)

// This file is the service's HTTP/JSON wire surface. The write path is
// POST /v1/submit plus GET /v1/jobs/{id} for polling; the read path is
// GET /v1/query/* served straight from the resident generation views.
// Every query answer carries the handle's generation tag, so a client
// interleaving reads with updates can tell exactly which state answered.

// Job kinds accepted by /v1/submit.
const (
	KindSolve  = "solve"
	KindUpdate = "update"
)

// GraphSpec is the wire form of a flow network. Edges are
// [u, v, cap] or [u, v, cap, 1] rows; the fourth element marks the edge
// directed (absent or 0: undirected, the paper's default).
type GraphSpec struct {
	NumVertices int       `json:"num_vertices"`
	Source      int64     `json:"source"`
	Sink        int64     `json:"sink"`
	Edges       [][]int64 `json:"edges"`
}

func (g *GraphSpec) toInput() (*graph.Input, error) {
	in := &graph.Input{
		NumVertices: g.NumVertices,
		Source:      graph.VertexID(g.Source),
		Sink:        graph.VertexID(g.Sink),
		Edges:       make([]graph.InputEdge, 0, len(g.Edges)),
	}
	for i, row := range g.Edges {
		if len(row) != 3 && len(row) != 4 {
			return nil, fmt.Errorf("service: edge %d has %d elements, want [u,v,cap] or [u,v,cap,directed]", i, len(row))
		}
		e := graph.InputEdge{
			U:   graph.VertexID(row[0]),
			V:   graph.VertexID(row[1]),
			Cap: row[2],
		}
		if len(row) == 4 && row[3] != 0 {
			e.Directed = true
		}
		in.Edges = append(in.Edges, e)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// UpdateSpec is the wire form of one dynamic-graph update.
type UpdateSpec struct {
	// Op is "insert", "set-cap" or "delete".
	Op string `json:"op"`
	// U, V, Cap, Directed describe an inserted edge.
	U        int64 `json:"u,omitempty"`
	V        int64 `json:"v,omitempty"`
	Cap      int64 `json:"cap,omitempty"`
	Directed bool  `json:"directed,omitempty"`
	// ID targets an existing edge ("set-cap", "delete").
	ID int64 `json:"id,omitempty"`
}

func decodeUpdates(specs []UpdateSpec) ([]graph.Update, error) {
	batch := make([]graph.Update, 0, len(specs))
	for i, u := range specs {
		switch u.Op {
		case "insert":
			batch = append(batch, graph.InsertEdge(
				graph.VertexID(u.U), graph.VertexID(u.V), u.Cap, u.Directed))
		case "set-cap":
			batch = append(batch, graph.SetCapacity(graph.EdgeID(u.ID), u.Cap, u.Directed))
		case "delete":
			batch = append(batch, graph.DeleteEdge(graph.EdgeID(u.ID)))
		default:
			return nil, fmt.Errorf("service: update %d has unknown op %q", i, u.Op)
		}
	}
	return batch, nil
}

// SubmitRequest is the POST /v1/submit body.
type SubmitRequest struct {
	Tenant   string `json:"tenant"`
	Handle   string `json:"handle"`
	Priority int    `json:"priority,omitempty"`
	// Kind is "solve" (default) or "update".
	Kind string `json:"kind,omitempty"`
	// Graph is the solve payload; Variant optionally picks FF1..FF5
	// (0: the service default).
	Graph   *GraphSpec `json:"graph,omitempty"`
	Variant int        `json:"variant,omitempty"`
	// Engine picks the solver for a solve job: "ffmr", "prflow", or
	// "auto" (the instance-probing portfolio). Empty defaults to the
	// service's configured engine, or "auto" when none is configured.
	// Updates always warm-restart with FFMR regardless of the engine
	// that produced the base solve.
	Engine string `json:"engine,omitempty"`
	// Updates is the update payload.
	Updates []UpdateSpec `json:"updates,omitempty"`
}

// JobResult is a completed job's outcome.
type JobResult struct {
	Handle string `json:"handle"`
	// Gen is the store generation this job published.
	Gen  int64 `json:"gen"`
	Flow int64 `json:"flow"`
	// Rounds counts MR rounds the solve (or warm restart) ran.
	Rounds int `json:"rounds"`
	// Violations counts capacity violations an update batch repaired.
	Violations int `json:"violations,omitempty"`
}

// JobInfo is a job's API representation.
type JobInfo struct {
	ID       string     `json:"id"`
	Tenant   string     `json:"tenant"`
	Kind     string     `json:"kind"`
	Handle   string     `json:"handle"`
	Priority int        `json:"priority"`
	State    JobState   `json:"state"`
	Error    string     `json:"error,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	// QueueMS is time spent queued; RunMS time spent running (so far,
	// for a running job).
	QueueMS int64 `json:"queue_ms"`
	RunMS   int64 `json:"run_ms,omitempty"`
}

// FlowReply answers /v1/query/flow.
type FlowReply struct {
	Handle string `json:"handle"`
	Gen    int64  `json:"gen"`
	Flow   int64  `json:"flow"`
}

// CutReply answers /v1/query/cut. With a vertex it reports the vertex's
// cut side; without one it summarizes the minimum cut.
type CutReply struct {
	Handle string `json:"handle"`
	Gen    int64  `json:"gen"`
	Vertex *int64 `json:"vertex,omitempty"`
	// SourceSide reports whether Vertex lies on the cut's source side.
	SourceSide *bool `json:"source_side,omitempty"`
	// CutEdges/CutCapacity summarize the cut (vertex-less form). By the
	// max-flow min-cut theorem CutCapacity equals the flow value.
	CutEdges    int   `json:"cut_edges,omitempty"`
	CutCapacity int64 `json:"cut_capacity,omitempty"`
}

// ResidualReply answers /v1/query/residual for one edge.
type ResidualReply struct {
	Handle      string `json:"handle"`
	Gen         int64  `json:"gen"`
	Edge        int64  `json:"edge"`
	U           int64  `json:"u"`
	V           int64  `json:"v"`
	Cap         int64  `json:"cap"`
	Directed    bool   `json:"directed"`
	Flow        int64  `json:"flow"`
	ResidualFwd int64  `json:"residual_fwd"`
	ResidualRev int64  `json:"residual_rev"`
}

// apiError is the error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// apiMux wires the client API routes.
func (s *Service) apiMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/handles", s.handleHandles)
	mux.HandleFunc("/v1/query/flow", s.timedQuery(s.handleQueryFlow))
	mux.HandleFunc("/v1/query/cut", s.timedQuery(s.handleQueryCut))
	mux.HandleFunc("/v1/query/residual", s.timedQuery(s.handleQueryResidual))
	return mux
}

// timedQuery wraps a query handler with latency observation: every hit
// lands in the service-wide histogram, and hits whose handle resolves to
// an owner land in that tenant's histogram too (the percentiles /status
// reports per tenant). Measured around the whole handler, so view
// computation (e.g. a min-cut walk) is included, not just the lookup.
func (s *Service) timedQuery(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		d := time.Since(t0).Nanoseconds()
		reg := s.tracer.Registry()
		reg.Histogram(HistServiceQueryNS).Observe(d)
		if res := s.store.get(r.URL.Query().Get("handle")); res != nil {
			reg.Histogram(tenantQueryHist(res.tenant)).Observe(d)
		}
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad submit body: %w", err))
		return
	}
	j, err := s.submit(&req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Path[len("/v1/jobs/"):]
	j := s.lookupJob(id)
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

func (s *Service) handleHandles(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.store.status())
}

// latestView resolves a query's handle to its newest generation,
// answering 404 for handles the store doesn't serve yet.
func (s *Service) latestView(w http.ResponseWriter, r *http.Request) (*Generation, bool) {
	s.queries.Add(1)
	handle := r.URL.Query().Get("handle")
	res := s.store.get(handle)
	if res == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("service: unknown handle %q", handle))
		return nil, false
	}
	g := res.latest()
	if g == nil {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("service: handle %q has no solved generation yet", handle))
		return nil, false
	}
	return g, true
}

func (s *Service) handleQueryFlow(w http.ResponseWriter, r *http.Request) {
	g, ok := s.latestView(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, FlowReply{
		Handle: r.URL.Query().Get("handle"),
		Gen:    g.Gen,
		Flow:   g.View.FlowValue,
	})
}

func (s *Service) handleQueryCut(w http.ResponseWriter, r *http.Request) {
	g, ok := s.latestView(w, r)
	if !ok {
		return
	}
	reply := CutReply{Handle: r.URL.Query().Get("handle"), Gen: g.Gen}
	if vs := r.URL.Query().Get("vertex"); vs != "" {
		v, err := strconv.ParseInt(vs, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad vertex %q", vs))
			return
		}
		side, ok := g.View.SourceSide(graph.VertexID(v))
		if !ok {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("service: vertex %d out of range (n=%d)", v, g.View.NumVertices))
			return
		}
		reply.Vertex, reply.SourceSide = &v, &side
	} else {
		cut, cap := g.View.MinCut()
		reply.CutEdges, reply.CutCapacity = len(cut), cap
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Service) handleQueryResidual(w http.ResponseWriter, r *http.Request) {
	g, ok := s.latestView(w, r)
	if !ok {
		return
	}
	es := r.URL.Query().Get("edge")
	id, err := strconv.ParseInt(es, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad edge %q", es))
		return
	}
	e, ok2 := g.View.Edge(graph.EdgeID(id))
	if !ok2 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("service: edge %d out of range (m=%d)", id, g.View.NumEdges()))
		return
	}
	writeJSON(w, http.StatusOK, ResidualReply{
		Handle:      r.URL.Query().Get("handle"),
		Gen:         g.Gen,
		Edge:        id,
		U:           int64(e.U),
		V:           int64(e.V),
		Cap:         e.Cap,
		Directed:    e.Directed,
		Flow:        e.Flow,
		ResidualFwd: e.ResidualFwd,
		ResidualRev: e.ResidualRev,
	})
}
