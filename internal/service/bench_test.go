package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ffmr/internal/graphgen"
)

// BenchmarkServiceQuery measures read-path QPS: parallel clients
// querying flow value, cut membership and residual capacity against a
// resident FB5-scale snapshot (10,000-vertex Barabási–Albert body with
// super source/sink taps) while the scheduler sits idle. Queries are
// whole HTTP round trips against the real API server, so ns/op is
// end-to-end client latency; 1e9/ns_per_op is the QPS one benchmark
// process extracts. BENCH_service.json records the numbers.
func BenchmarkServiceQuery(b *testing.B) {
	base, err := graphgen.BarabasiAlbert(10_000, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 8, 8, 7)
	if err != nil {
		b.Fatal(err)
	}
	svc := startService(b, testCluster(4), Quotas{MaxConcurrent: 2})
	defer svc.Close()
	c := NewClient(svc.Addr())
	defer c.Close()

	ji, err := c.Submit(&SubmitRequest{Tenant: "bench", Handle: "fb5", Graph: graphSpec(in)})
	if err != nil {
		b.Fatal(err)
	}
	res, err := c.Wait(ji.ID, 10*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	if want := oracle(b, in); res.Flow != want {
		b.Fatalf("resident flow = %d, oracle says %d", res.Flow, want)
	}

	b.Run("flow", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			cl := NewClient(svc.Addr())
			defer cl.Close()
			for pb.Next() {
				fr, err := cl.Flow("fb5")
				if err != nil {
					b.Fatal(err)
				}
				if fr.Flow != res.Flow {
					b.Fatalf("flow = %d, want %d", fr.Flow, res.Flow)
				}
			}
		})
	})
	b.Run("cut-membership", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			cl := NewClient(svc.Addr())
			defer cl.Close()
			v := int64(0)
			for pb.Next() {
				if _, err := cl.CutSide("fb5", v%int64(in.NumVertices)); err != nil {
					b.Fatal(err)
				}
				v++
			}
		})
	})
	b.Run("residual", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			cl := NewClient(svc.Addr())
			defer cl.Close()
			e := int64(0)
			for pb.Next() {
				if _, err := cl.Residual("fb5", e%int64(len(in.Edges))); err != nil {
					b.Fatal(err)
				}
				e++
			}
		})
	})
}

// BenchmarkServiceSubmitLatency measures the write path: submit-to-
// result latency with 4 solve jobs in flight at once (4 tenants, 4
// scheduler slots, one shared cluster). One op is a full batch of 4
// concurrent jobs; the reported per-job metric is mean wall-clock from
// Submit to Wait returning.
func BenchmarkServiceSubmitLatency(b *testing.B) {
	svc := startService(b, testCluster(4), Quotas{MaxConcurrent: 4})
	defer svc.Close()
	c := NewClient(svc.Addr())
	defer c.Close()

	const fanout = 4
	var inputs []*GraphSpec
	for i := 0; i < fanout; i++ {
		inputs = append(inputs, graphSpec(smallWorld(b, 400, 3, int64(50+i))))
	}

	var totalJobNS int64
	var mu sync.Mutex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for t := 0; t < fanout; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				ji, err := c.Submit(&SubmitRequest{
					Tenant: fmt.Sprintf("tenant-%d", t),
					Handle: fmt.Sprintf("h-%d-%d", t, i),
					Graph:  inputs[t],
				})
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := c.Wait(ji.ID, 5*time.Minute); err != nil {
					b.Error(err)
					return
				}
				mu.Lock()
				totalJobNS += time.Since(start).Nanoseconds()
				mu.Unlock()
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(totalJobNS)/float64(b.N*fanout), "job-ns")
	}
}
