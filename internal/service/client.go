package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the Go client for a running flow service. It is a thin,
// dependency-free wrapper over the /v1 JSON API, safe for concurrent
// use; cmd/ffmr -submit and the benchmarks are its consumers.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a service at addr ("host:port" or a full URL).
func NewClient(addr string) *Client {
	base := addr
	if len(base) > 0 && base[0] != 'h' {
		base = "http://" + base
	}
	return &Client{base: base, http: &http.Client{
		Timeout: 2 * time.Minute,
		// A private transport, so Close tears down this client's
		// keep-alive connections without touching the process default.
		Transport: &http.Transport{},
	}}
}

// Close releases the client's idle keep-alive connections.
func (c *Client) Close() {
	c.http.CloseIdleConnections()
}

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("service client: %s %s: %s (HTTP %d)", method, path, ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("service client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit enqueues a job and returns its accepted record (state
// "queued" or already "running").
func (c *Client) Submit(req *SubmitRequest) (*JobInfo, error) {
	var ji JobInfo
	if err := c.do(http.MethodPost, "/v1/submit", req, &ji); err != nil {
		return nil, err
	}
	return &ji, nil
}

// Job fetches a job's current state.
func (c *Client) Job(id string) (*JobInfo, error) {
	var ji JobInfo
	if err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &ji); err != nil {
		return nil, err
	}
	return &ji, nil
}

// Wait polls until the job reaches a terminal state or the timeout
// elapses. A failed job returns its error; a done job its result.
func (c *Client) Wait(id string, timeout time.Duration) (*JobResult, error) {
	deadline := time.Now().Add(timeout)
	for {
		ji, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		switch ji.State {
		case JobDone:
			return ji.Result, nil
		case JobFailed:
			return nil, fmt.Errorf("service client: job %s failed: %s", id, ji.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("service client: job %s still %s after %v", id, ji.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Handles lists the resident snapshots the query API serves.
func (c *Client) Handles() ([]HandleInfo, error) {
	var hs []HandleInfo
	if err := c.do(http.MethodGet, "/v1/handles", nil, &hs); err != nil {
		return nil, err
	}
	return hs, nil
}

// HandleInfo mirrors obsv.HandleStatus on the client side (redeclared so
// client users don't need the obsv types).
type HandleInfo struct {
	Handle   string `json:"handle"`
	Tenant   string `json:"tenant"`
	Gen      int64  `json:"gen"`
	Flow     int64  `json:"flow"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

// Flow queries a handle's flow value at its latest generation.
func (c *Client) Flow(handle string) (*FlowReply, error) {
	var fr FlowReply
	if err := c.do(http.MethodGet, "/v1/query/flow?handle="+handle, nil, &fr); err != nil {
		return nil, err
	}
	return &fr, nil
}

// CutSide queries which side of the minimum cut a vertex lies on.
func (c *Client) CutSide(handle string, vertex int64) (*CutReply, error) {
	var cr CutReply
	path := "/v1/query/cut?handle=" + handle + "&vertex=" + strconv.FormatInt(vertex, 10)
	if err := c.do(http.MethodGet, path, nil, &cr); err != nil {
		return nil, err
	}
	return &cr, nil
}

// Cut queries the minimum cut summary (edge count and crossing
// capacity) at the handle's latest generation.
func (c *Client) Cut(handle string) (*CutReply, error) {
	var cr CutReply
	if err := c.do(http.MethodGet, "/v1/query/cut?handle="+handle, nil, &cr); err != nil {
		return nil, err
	}
	return &cr, nil
}

// Residual queries one edge's committed flow and residual capacities.
func (c *Client) Residual(handle string, edge int64) (*ResidualReply, error) {
	var rr ResidualReply
	path := "/v1/query/residual?handle=" + handle + "&edge=" + strconv.FormatInt(edge, 10)
	if err := c.do(http.MethodGet, path, nil, &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}
