package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ffmr/internal/dynamic"
	"ffmr/internal/obsv"
)

// This file is the resident snapshot store: the generation-tagged shelf
// of solved graphs the query API serves from. Each client-named handle
// owns a chain of generations; publishing a new one is a single atomic
// pointer swap, so readers load the latest generation lock-free and
// never observe a torn update or a generation moving backward. Writers
// (the base solve and every update job) serialize per handle on
// updateMu, which is what makes the store generation strictly monotonic.

// Generation is one immutable published state of a handle: the snapshot
// (the warm-restartable DFS residue) plus its materialized query view.
type Generation struct {
	// Gen is the store's generation tag, strictly increasing per handle
	// from 1. It counts publishes — including re-solves that reset the
	// underlying snapshot chain — so it is the tag query answers carry,
	// not the snapshot's own warm-generation counter.
	Gen  int64
	Snap *dynamic.Snapshot
	View *dynamic.View
}

// resident is one handle's slot in the store.
type resident struct {
	handle string
	tenant string

	// updateMu serializes the jobs that advance this handle (the base
	// solve, re-solves, and update batches): each reads the current
	// generation and publishes its successor under this lock, so chains
	// never fork. Queries never touch it.
	updateMu sync.Mutex

	// cur is the latest published generation, nil until the base solve
	// lands. Readers load it atomically and keep the pointer — the
	// Generation behind it is immutable forever.
	cur atomic.Pointer[Generation]
	gen atomic.Int64 // last published Gen
}

// latest returns the newest published generation, or nil before the
// base solve completes.
func (r *resident) latest() *Generation { return r.cur.Load() }

// publish installs the next generation and returns its tag plus the
// generation it superseded (nil for the first publish). Callers must
// hold updateMu.
func (r *resident) publish(snap *dynamic.Snapshot, view *dynamic.View) (int64, *Generation) {
	old := r.cur.Load()
	g := &Generation{Gen: r.gen.Add(1), Snap: snap, View: view}
	r.cur.Store(g)
	return g.Gen, old
}

// store maps handle → resident. The map itself only grows (handles are
// never deleted; a re-solve reuses the slot), guarded by a plain RWMutex
// that queries hold only for the map lookup.
type store struct {
	mu      sync.RWMutex
	handles map[string]*resident
}

func newStore() *store {
	return &store{handles: make(map[string]*resident)}
}

// get returns the handle's resident, or nil if it was never created.
func (st *store) get(handle string) *resident {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.handles[handle]
}

// ensure returns the handle's resident, creating it owned by tenant on
// first use. A handle is tenant-private for writes: a different tenant
// solving or updating it is an error (reads are unrestricted).
func (st *store) ensure(handle, tenant string) (*resident, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r := st.handles[handle]
	if r == nil {
		r = &resident{handle: handle, tenant: tenant}
		st.handles[handle] = r
		return r, nil
	}
	if r.tenant != tenant {
		return nil, fmt.Errorf("service: handle %q is owned by tenant %q", handle, r.tenant)
	}
	return r, nil
}

// owned returns the handle's resident, enforcing write ownership.
func (st *store) owned(handle, tenant string) (*resident, error) {
	r := st.get(handle)
	if r == nil {
		return nil, fmt.Errorf("service: unknown handle %q", handle)
	}
	if r.tenant != tenant {
		return nil, fmt.Errorf("service: handle %q is owned by tenant %q", handle, r.tenant)
	}
	return r, nil
}

// status lists the resident handles for /status, sorted by handle.
func (st *store) status() []obsv.HandleStatus {
	st.mu.RLock()
	residents := make([]*resident, 0, len(st.handles))
	for _, r := range st.handles {
		residents = append(residents, r)
	}
	st.mu.RUnlock()
	var out []obsv.HandleStatus
	for _, r := range residents {
		g := r.latest()
		if g == nil {
			continue // base solve still in flight
		}
		out = append(out, obsv.HandleStatus{
			Handle:   r.handle,
			Tenant:   r.tenant,
			Gen:      g.Gen,
			Flow:     g.View.FlowValue,
			Vertices: g.View.NumVertices,
			Edges:    g.View.NumEdges(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out
}
