package service

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"ffmr/internal/obsv"
	"ffmr/internal/trace"
)

// Per-tenant latency histogram names. The tenant ID rides in the metric
// name (the registry has no label dimension); obsv.MetricName sanitizes
// it for the Prometheus exposition, and /status reports the percentiles
// directly per tenant.
func tenantSubmitHist(tenant string) string { return "service submit latency ns tenant " + tenant }
func tenantQueryHist(tenant string) string  { return "service query latency ns tenant " + tenant }

// HistServiceQueryNS aggregates query-API latency across all tenants.
const HistServiceQueryNS = "service query latency ns"

// This file is the service's admission and dispatch layer. Jobs enter
// per-tenant queues (admission: a tenant whose queue is full is rejected
// immediately rather than buffered without bound), and a weighted
// fair-queueing dispatcher multiplexes them onto a bounded number of
// concurrent slots against the shared cluster. Fairness is the classic
// virtual-time scheme: each tenant carries a vtime that advances by
// 1/weight per dispatched job, the dispatcher always serves the eligible
// tenant with the lowest vtime, and a tenant returning from idle is
// caught up to the active minimum so it cannot cash in unbounded credit.
// Priority is deliberately intra-tenant only — a tenant can reorder its
// own work but cannot starve another tenant by shouting louder.

// Quotas bounds the scheduler. The zero value gets usable defaults.
type Quotas struct {
	// MaxConcurrent is the global bound on running jobs (default 2).
	// Each running job drives one multi-round FFMR/update pipeline
	// against the shared worker pool.
	MaxConcurrent int
	// MaxQueuedPerTenant is the admission bound: a submit that would
	// push a tenant's queue beyond it is rejected with ErrQueueFull
	// (default 64).
	MaxQueuedPerTenant int
	// MaxRunningPerTenant caps one tenant's running jobs (default
	// MaxConcurrent, i.e. a lone tenant may use every slot; set it lower
	// to reserve headroom for late-arriving tenants).
	MaxRunningPerTenant int
	// Weights maps tenant → fair-share weight (default 1.0): a tenant
	// with weight 2 receives twice the dispatch rate under contention.
	Weights map[string]float64
}

func (q *Quotas) applyDefaults() {
	if q.MaxConcurrent <= 0 {
		q.MaxConcurrent = 2
	}
	if q.MaxQueuedPerTenant <= 0 {
		q.MaxQueuedPerTenant = 64
	}
	if q.MaxRunningPerTenant <= 0 {
		q.MaxRunningPerTenant = q.MaxConcurrent
	}
}

func (q *Quotas) weight(tenant string) float64 {
	if w, ok := q.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1.0
}

// ErrQueueFull rejects a submit that exceeds the tenant's queue quota.
var ErrQueueFull = errors.New("service: tenant queue quota exceeded")

// ErrClosed rejects work submitted to (or queued in) a closing service.
var ErrClosed = errors.New("service: shutting down")

// JobState is a job's lifecycle position.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// job is one scheduled unit of work: a client submission bound to its
// run closure. The scheduler owns dispatch; the job's own mutex guards
// the fields the API reads while the job is in flight.
type job struct {
	id       string
	tenant   string
	kind     string
	handle   string
	priority int
	seq      uint64 // FIFO tiebreak within equal priority
	run      func() (*JobResult, error)

	mu       sync.Mutex
	state    JobState
	err      error
	result   *JobResult
	enqueued time.Time
	started  time.Time
	finished time.Time

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// info snapshots the job for the API.
func (j *job) info() *JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	ji := &JobInfo{
		ID:       j.id,
		Tenant:   j.tenant,
		Kind:     j.kind,
		Handle:   j.handle,
		Priority: j.priority,
		State:    j.state,
		Result:   j.result,
	}
	if j.err != nil {
		ji.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		ji.QueueMS = j.started.Sub(j.enqueued).Milliseconds()
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		ji.RunMS = end.Sub(j.started).Milliseconds()
	} else {
		ji.QueueMS = time.Since(j.enqueued).Milliseconds()
	}
	return ji
}

// tenantState is one tenant's queue and fair-share accounting.
type tenantState struct {
	id      string
	queue   []*job
	running int
	done    int
	failed  int
	vtime   float64
}

// pop removes and returns the tenant's next job: highest priority first,
// FIFO (lowest seq) within a priority.
func (t *tenantState) pop() *job {
	best := 0
	for i := 1; i < len(t.queue); i++ {
		j, b := t.queue[i], t.queue[best]
		if j.priority > b.priority || (j.priority == b.priority && j.seq < b.seq) {
			best = i
		}
	}
	j := t.queue[best]
	t.queue = append(t.queue[:best], t.queue[best+1:]...)
	return j
}

// scheduler multiplexes jobs from per-tenant queues onto MaxConcurrent
// slots. Dispatch is event-driven: every submit and every completion
// kicks the dispatcher inline, so there is no scheduler goroutine to
// leak and no polling latency.
type scheduler struct {
	q   Quotas
	log *slog.Logger
	reg *trace.Registry // latency histograms (nil: uninstrumented)

	mu      sync.Mutex
	tenants map[string]*tenantState
	global  int
	closed  bool
	wg      sync.WaitGroup
}

func newScheduler(q Quotas, log *slog.Logger, reg *trace.Registry) *scheduler {
	q.applyDefaults()
	return &scheduler{q: q, log: obsv.Or(log), reg: reg, tenants: make(map[string]*tenantState)}
}

// submit admits a job into its tenant's queue (or rejects it on quota)
// and dispatches as many runnable jobs as slots allow.
func (s *scheduler) submit(j *job) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	t := s.tenants[j.tenant]
	if t == nil {
		t = &tenantState{id: j.tenant}
		s.tenants[j.tenant] = t
	}
	if len(t.queue) >= s.q.MaxQueuedPerTenant {
		depth := len(t.queue)
		s.mu.Unlock()
		return fmt.Errorf("%w: tenant %q has %d queued (quota %d)",
			ErrQueueFull, j.tenant, depth, s.q.MaxQueuedPerTenant)
	}
	if len(t.queue) == 0 && t.running == 0 {
		// WFQ catch-up: a tenant returning from idle starts at the active
		// minimum instead of its stale (possibly far-past) vtime, so idle
		// time does not bank an unbounded dispatch burst.
		if mv, ok := s.minActiveVtimeLocked(); ok && t.vtime < mv {
			t.vtime = mv
		}
	}
	j.mu.Lock()
	j.state = JobQueued
	j.enqueued = time.Now()
	j.mu.Unlock()
	t.queue = append(t.queue, j)
	s.kickLocked()
	s.mu.Unlock()
	return nil
}

// minActiveVtimeLocked returns the lowest vtime among tenants with
// queued or running work.
func (s *scheduler) minActiveVtimeLocked() (float64, bool) {
	min, ok := 0.0, false
	for _, t := range s.tenants {
		if len(t.queue) == 0 && t.running == 0 {
			continue
		}
		if !ok || t.vtime < min {
			min, ok = t.vtime, true
		}
	}
	return min, ok
}

// pickTenantLocked selects the eligible tenant with the lowest vtime
// (ties break on tenant ID for determinism), or nil when nothing is
// dispatchable.
func (s *scheduler) pickTenantLocked() *tenantState {
	var best *tenantState
	for _, t := range s.tenants {
		if len(t.queue) == 0 || t.running >= s.q.MaxRunningPerTenant {
			continue
		}
		if best == nil || t.vtime < best.vtime ||
			(t.vtime == best.vtime && t.id < best.id) {
			best = t
		}
	}
	return best
}

// kickLocked dispatches until the global slots are full or nothing is
// eligible. Called with s.mu held, on every submit and completion.
func (s *scheduler) kickLocked() {
	for s.global < s.q.MaxConcurrent {
		t := s.pickTenantLocked()
		if t == nil {
			return
		}
		j := t.pop()
		t.running++
		s.global++
		t.vtime += 1.0 / s.q.weight(t.id)
		s.wg.Add(1)
		go s.exec(t, j)
	}
}

func (s *scheduler) exec(t *tenantState, j *job) {
	defer s.wg.Done()
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.log.Info("job dispatched", "job", j.id, "tenant", j.tenant,
		"kind", j.kind, "handle", j.handle, "priority", j.priority)

	res, err := j.run()

	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state, j.err = JobFailed, err
	} else {
		j.state, j.result = JobDone, res
	}
	dur := j.finished.Sub(j.started)
	e2e := j.finished.Sub(j.enqueued)
	j.mu.Unlock()
	close(j.done)
	// Submit-to-done latency, queue wait included — the figure a tenant
	// actually experiences, regardless of outcome.
	s.reg.Histogram(tenantSubmitHist(j.tenant)).Observe(e2e.Nanoseconds())
	if err != nil {
		s.log.Warn("job failed", "job", j.id, "tenant", j.tenant, "err", err, "dur", dur)
	} else {
		s.log.Info("job done", "job", j.id, "tenant", j.tenant,
			"handle", j.handle, "gen", res.Gen, "flow", res.Flow, "dur", dur)
	}

	s.mu.Lock()
	t.running--
	s.global--
	if err != nil {
		t.failed++
	} else {
		t.done++
	}
	s.kickLocked()
	s.mu.Unlock()
}

// close stops admission, fails every queued job, and waits for running
// jobs to finish (a mid-flight solve is left to complete: its DFS state
// is consistent and its tenant gets a result).
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	var orphans []*job
	for _, t := range s.tenants {
		orphans = append(orphans, t.queue...)
		t.queue = nil
	}
	s.mu.Unlock()
	for _, j := range orphans {
		j.mu.Lock()
		j.state, j.err, j.finished = JobFailed, ErrClosed, time.Now()
		j.mu.Unlock()
		close(j.done)
	}
	s.wg.Wait()
}

// status snapshots the scheduler for /status: service-wide totals plus
// the per-tenant breakdown, sorted by tenant ID.
func (s *scheduler) status() *obsv.ServiceStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &obsv.ServiceStatus{MaxConcurrent: s.q.MaxConcurrent}
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	hists := s.reg.HistogramSnapshot()
	for _, id := range ids {
		t := s.tenants[id]
		st.Queued += len(t.queue)
		st.Running += t.running
		st.Done += t.done
		st.Failed += t.failed
		ts := obsv.TenantStatus{
			Tenant:       id,
			Queued:       len(t.queue),
			Running:      t.running,
			Done:         t.done,
			Failed:       t.failed,
			QuotaQueued:  s.q.MaxQueuedPerTenant,
			QuotaRunning: s.q.MaxRunningPerTenant,
			VTime:        t.vtime,
		}
		if hv, ok := hists[tenantSubmitHist(id)]; ok && hv.Count > 0 {
			ts.SubmitP50NS = hv.Quantile(0.50)
			ts.SubmitP95NS = hv.Quantile(0.95)
			ts.SubmitP99NS = hv.Quantile(0.99)
		}
		if hv, ok := hists[tenantQueryHist(id)]; ok && hv.Count > 0 {
			ts.QueryP50NS = hv.Quantile(0.50)
			ts.QueryP95NS = hv.Quantile(0.95)
			ts.QueryP99NS = hv.Quantile(0.99)
		}
		st.Tenants = append(st.Tenants, ts)
	}
	return st
}
