package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ffmr/internal/dfs"
	"ffmr/internal/distmr"
	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
	"ffmr/internal/leakcheck"
	"ffmr/internal/mapreduce"
	"ffmr/internal/maxflow"
	"ffmr/internal/obsv"
	"ffmr/internal/trace"
)

func testCluster(nodes int) *mapreduce.Cluster {
	fs := dfs.New(dfs.Config{Nodes: nodes, BlockSize: 16 << 10, Replication: 2})
	c := mapreduce.NewCluster(nodes, 4, fs)
	c.Cost = mapreduce.ZeroCostModel()
	return c
}

func oracle(t testing.TB, in *graph.Input) int64 {
	t.Helper()
	net, err := maxflow.FromInput(in)
	if err != nil {
		t.Fatalf("FromInput: %v", err)
	}
	return maxflow.Dinic(net, int(in.Source), int(in.Sink))
}

// smallWorld builds an FB-style test graph: a Barabási–Albert body with
// a super source/sink tapped in, per the paper's evaluation setup.
func smallWorld(t testing.TB, n, m int, seed int64) *graph.Input {
	t.Helper()
	base, err := graphgen.BarabasiAlbert(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graphgen.AttachSuperSourceSink(base, 4, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func graphSpec(in *graph.Input) *GraphSpec {
	g := &GraphSpec{
		NumVertices: in.NumVertices,
		Source:      int64(in.Source),
		Sink:        int64(in.Sink),
	}
	for _, e := range in.Edges {
		row := []int64{int64(e.U), int64(e.V), e.Cap, 0}
		if e.Directed {
			row[3] = 1
		}
		g.Edges = append(g.Edges, row)
	}
	return g
}

// startService boots a service; callers must Close it before their
// deferred leak check fires.
func startService(t testing.TB, cluster *mapreduce.Cluster, q Quotas) *Service {
	t.Helper()
	svc, err := Start(Config{
		Cluster:   cluster,
		Quotas:    q,
		AdminAddr: "127.0.0.1:0",
		Tracer:    trace.New(),
		Seed:      1, // deterministic namespaces in tests
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return svc
}

// TestServiceAcceptance is the PR's acceptance scenario: one service,
// two tenants submitting concurrent FFMR jobs whose results must match
// the Dinic oracle, and generation-tagged queries served from resident
// snapshots while a third job is still solving.
func TestServiceAcceptance(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := startService(t, testCluster(3), Quotas{MaxConcurrent: 2})
	defer svc.Close()
	c := NewClient(svc.Addr())
	defer c.Close()

	inA := smallWorld(t, 200, 3, 11)
	inB := smallWorld(t, 250, 3, 22)
	wantA, wantB := oracle(t, inA), oracle(t, inB)

	// Two tenants submit concurrently.
	var wg sync.WaitGroup
	results := make(map[string]*JobResult)
	var mu sync.Mutex
	for _, tc := range []struct {
		tenant, handle string
		in             *graph.Input
	}{
		{"acme", "social-a", inA},
		{"bravo", "social-b", inB},
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ji, err := c.Submit(&SubmitRequest{
				Tenant: tc.tenant, Handle: tc.handle, Graph: graphSpec(tc.in),
			})
			if err != nil {
				t.Errorf("%s submit: %v", tc.tenant, err)
				return
			}
			res, err := c.Wait(ji.ID, time.Minute)
			if err != nil {
				t.Errorf("%s wait: %v", tc.tenant, err)
				return
			}
			mu.Lock()
			results[tc.handle] = res
			mu.Unlock()
		}()
	}
	wg.Wait()
	if results["social-a"] == nil || results["social-b"] == nil {
		t.Fatal("missing results")
	}
	if got := results["social-a"].Flow; got != wantA {
		t.Fatalf("tenant acme flow = %d, oracle says %d", got, wantA)
	}
	if got := results["social-b"].Flow; got != wantB {
		t.Fatalf("tenant bravo flow = %d, oracle says %d", got, wantB)
	}

	// Kick off a third, larger job and query the resident handles while
	// it solves: the read path must answer from the store, tagged with
	// the generation that answered, regardless of scheduler load.
	inC := smallWorld(t, 1500, 4, 33)
	ji, err := c.Submit(&SubmitRequest{Tenant: "acme", Handle: "social-c", Graph: graphSpec(inC)})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := c.Flow("social-a")
	if err != nil {
		t.Fatalf("mid-solve flow query: %v", err)
	}
	if fr.Gen != 1 || fr.Flow != wantA {
		t.Fatalf("mid-solve flow = %+v, want gen 1 flow %d", fr, wantA)
	}
	cs, err := c.CutSide("social-b", int64(inB.Source))
	if err != nil {
		t.Fatal(err)
	}
	if cs.Gen != 1 || cs.SourceSide == nil || !*cs.SourceSide {
		t.Fatalf("source cut side = %+v, want gen 1 source_side true", cs)
	}
	cut, err := c.Cut("social-b")
	if err != nil {
		t.Fatal(err)
	}
	if cut.CutCapacity != wantB {
		t.Fatalf("min-cut capacity %d != max flow %d", cut.CutCapacity, wantB)
	}
	rr, err := c.Residual("social-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rr.ResidualFwd != rr.Cap-rr.Flow {
		t.Fatalf("residual reply inconsistent: %+v", rr)
	}

	// The admin /status page must expose the scheduler and the handles.
	st := scrapeStatus(t, svc.AdminAddr())
	if st.Role != "service" || st.Service == nil {
		t.Fatalf("status role=%q service=%v", st.Role, st.Service)
	}
	if len(st.Service.Handles) < 2 {
		t.Fatalf("status lists %d handles, want >= 2", len(st.Service.Handles))
	}

	res, err := c.Wait(ji.ID, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle(t, inC); res.Flow != want {
		t.Fatalf("third job flow = %d, oracle says %d", res.Flow, want)
	}
}

func scrapeStatus(t testing.TB, addr string) *obsv.ClusterStatus {
	t.Helper()
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	hc := &http.Client{Transport: tr}
	resp, err := hc.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatalf("status scrape: %v", err)
	}
	defer resp.Body.Close()
	var st obsv.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return &st
}

// TestServiceUpdateJobs walks one handle through update generations via
// the API and checks queries reflect each new generation.
func TestServiceUpdateJobs(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := startService(t, testCluster(2), Quotas{})
	defer svc.Close()
	c := NewClient(svc.Addr())
	defer c.Close()

	// A 3-hop path of capacity 5: flow 5, every edge saturated.
	spec := &GraphSpec{
		NumVertices: 4, Source: 0, Sink: 3,
		Edges: [][]int64{{0, 1, 5}, {1, 2, 5}, {2, 3, 5}},
	}
	ji, err := c.Submit(&SubmitRequest{Tenant: "acme", Handle: "path", Graph: spec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(ji.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 || res.Gen != 1 {
		t.Fatalf("base solve = %+v, want flow 5 gen 1", res)
	}

	// Squeeze the middle edge to 2: a flow-breaking update the repair
	// pipeline must drain.
	ji, err = c.Submit(&SubmitRequest{
		Tenant: "acme", Handle: "path", Kind: KindUpdate,
		Updates: []UpdateSpec{{Op: "set-cap", ID: 1, Cap: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = c.Wait(ji.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || res.Gen != 2 || res.Violations != 1 {
		t.Fatalf("update result = %+v, want flow 2 gen 2 violations 1", res)
	}
	fr, err := c.Flow("path")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Gen != 2 || fr.Flow != 2 {
		t.Fatalf("post-update flow query = %+v, want gen 2 flow 2", fr)
	}
	rr, err := c.Residual("path", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Cap != 2 || rr.Flow != 2 || rr.ResidualFwd != 0 {
		t.Fatalf("squeezed edge residual = %+v, want cap 2 flow 2 residual 0", rr)
	}

	// A widening insert restores capacity; residual-monotone, no drain.
	ji, err = c.Submit(&SubmitRequest{
		Tenant: "acme", Handle: "path", Kind: KindUpdate,
		Updates: []UpdateSpec{{Op: "insert", U: 1, V: 2, Cap: 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = c.Wait(ji.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 || res.Gen != 3 {
		t.Fatalf("insert result = %+v, want flow 5 gen 3", res)
	}

	// Ownership: another tenant may read but not write the handle.
	if _, err := c.Flow("path"); err != nil {
		t.Fatalf("cross-tenant read refused: %v", err)
	}
	ji, err = c.Submit(&SubmitRequest{
		Tenant: "bravo", Handle: "path", Kind: KindUpdate,
		Updates: []UpdateSpec{{Op: "delete", ID: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = c.Wait(ji.ID, time.Minute); err == nil {
		t.Fatal("cross-tenant update succeeded, want ownership error")
	}
}

// TestServiceEngineSelection exercises the submit-time engine field:
// an explicit "prflow" solve must match the oracle, an unknown engine
// is rejected before queueing with the registered list, and an update
// against an engine-solved handle must warm-restart correctly from the
// persisted state (updates always re-augment with FFMR).
func TestServiceEngineSelection(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := startService(t, testCluster(2), Quotas{})
	defer svc.Close()
	c := NewClient(svc.Addr())
	defer c.Close()

	// Unknown engines bounce at submit time, naming the known set.
	_, err := c.Submit(&SubmitRequest{
		Tenant: "acme", Handle: "eng", Engine: "bogus",
		Graph: &GraphSpec{
			NumVertices: 2, Source: 0, Sink: 1,
			Edges: [][]int64{{0, 1, 1}},
		},
	})
	if err == nil {
		t.Fatal("submit with unknown engine succeeded, want rejection")
	}
	for _, name := range []string{"bogus", "ffmr", "prflow", "auto"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("rejection %q does not mention %q", err, name)
		}
	}

	// An explicit prflow solve returns the oracle value.
	in := smallWorld(t, 150, 3, 44)
	want := oracle(t, in)
	ji, err := c.Submit(&SubmitRequest{
		Tenant: "acme", Handle: "eng", Engine: "prflow", Graph: graphSpec(in),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(ji.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != want || res.Gen != 1 {
		t.Fatalf("prflow solve = %+v, want flow %d gen 1", res, want)
	}

	// A capacity squeeze on a prflow-solved handle: the warm-restart
	// update path must repair from the engine's persisted records.
	ji, err = c.Submit(&SubmitRequest{
		Tenant: "acme", Handle: "eng", Kind: KindUpdate,
		Updates: []UpdateSpec{{Op: "set-cap", ID: 0, Cap: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = c.Wait(ji.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	upd := *in
	upd.Edges = append([]graph.InputEdge(nil), in.Edges...)
	upd.Edges[0].Cap = 0
	if wantUpd := oracle(t, &upd); res.Flow != wantUpd || res.Gen != 2 {
		t.Fatalf("post-update result = %+v, want flow %d gen 2", res, wantUpd)
	}

	// The auto engine is equally reachable through the API.
	ji, err = c.Submit(&SubmitRequest{
		Tenant: "acme", Handle: "eng-auto", Engine: "auto", Graph: graphSpec(in),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res, err = c.Wait(ji.ID, time.Minute); err != nil {
		t.Fatal(err)
	} else if res.Flow != want {
		t.Fatalf("auto solve flow = %d, oracle says %d", res.Flow, want)
	}
}

// TestServiceQueryVsUpdateRace hammers the query path from concurrent
// readers while update jobs advance the handle through generations.
// Every answer must be internally consistent — the flow value matching
// the generation that tagged it — and each reader must observe
// generations monotonically. Run with -race this also proves the
// store's publish/load discipline.
func TestServiceQueryVsUpdateRace(t *testing.T) {
	defer leakcheck.Check(t)()
	svc := startService(t, testCluster(2), Quotas{MaxConcurrent: 2})
	defer svc.Close()
	c := NewClient(svc.Addr())
	defer c.Close()

	in := smallWorld(t, 200, 3, 77)
	// Precompute the ground truth per generation offline: gen 1 is the
	// base graph, each further generation applies one seeded batch.
	const gens = 3
	expect := map[int64]int64{1: oracle(t, in)}
	batches := make([][]UpdateSpec, 0, gens)
	profile := graphgen.DefaultUpdateProfile()
	cur := in
	for g := 2; g <= gens+1; g++ {
		batch, err := graphgen.GenerateUpdates(cur, 8, profile, int64(g)*31)
		if err != nil {
			t.Fatal(err)
		}
		next, err := graph.ApplyUpdates(cur, batch)
		if err != nil {
			t.Fatal(err)
		}
		expect[int64(g)] = oracle(t, next)
		batches = append(batches, updateSpecs(batch))
		cur = next
	}

	ji, err := c.Submit(&SubmitRequest{Tenant: "acme", Handle: "live", Graph: graphSpec(in)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ji.ID, time.Minute); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			lastGen := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				fr, err := c.Flow("live")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if fr.Gen < lastGen {
					t.Errorf("generation went backward: %d after %d", fr.Gen, lastGen)
					return
				}
				lastGen = fr.Gen
				if want, ok := expect[fr.Gen]; !ok || fr.Flow != want {
					t.Errorf("gen %d served flow %d, want %d", fr.Gen, fr.Flow, expect[fr.Gen])
					return
				}
			}
		}()
	}

	for i, batch := range batches {
		ji, err := c.Submit(&SubmitRequest{
			Tenant: "acme", Handle: "live", Kind: KindUpdate, Updates: batch,
		})
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		res, err := c.Wait(ji.ID, time.Minute)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if want := expect[res.Gen]; res.Flow != want {
			t.Fatalf("update %d published gen %d flow %d, oracle says %d", i, res.Gen, res.Flow, want)
		}
	}
	close(stop)
	readers.Wait()

	fr, err := c.Flow("live")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Gen != gens+1 || fr.Flow != expect[int64(gens+1)] {
		t.Fatalf("final state = %+v, want gen %d flow %d", fr, gens+1, expect[int64(gens+1)])
	}
}

func updateSpecs(batch []graph.Update) []UpdateSpec {
	specs := make([]UpdateSpec, 0, len(batch))
	for _, u := range batch {
		switch u.Op {
		case graph.UpdateInsert:
			specs = append(specs, UpdateSpec{
				Op: "insert", U: int64(u.Edge.U), V: int64(u.Edge.V),
				Cap: u.Edge.Cap, Directed: u.Edge.Directed,
			})
		case graph.UpdateSetCap:
			specs = append(specs, UpdateSpec{
				Op: "set-cap", ID: int64(u.ID), Cap: u.Cap, Directed: u.Directed,
			})
		}
	}
	return specs
}

// TestServiceOnDistributedBackend runs the same multiplexing against a
// real distmr master with in-process TCP workers: the shared pool the
// tentpole is about.
func TestServiceOnDistributedBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed harness in -short")
	}
	defer leakcheck.Check(t)()
	tr := trace.New()
	h, err := distmr.StartHarness(distmr.HarnessConfig{Workers: 3, Tracer: tr})
	if err != nil {
		t.Fatalf("StartHarness: %v", err)
	}
	defer h.Close()

	cluster := testCluster(3)
	cluster.Distributed = h.Master
	svc, err := Start(Config{
		Cluster:      cluster,
		Quotas:       Quotas{MaxConcurrent: 2},
		Tracer:       tr,
		MasterStatus: h.Master.Status,
		AdminAddr:    "127.0.0.1:0",
		Seed:         1,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer svc.Close()
	c := NewClient(svc.Addr())
	defer c.Close()

	inA := smallWorld(t, 150, 3, 5)
	inB := smallWorld(t, 180, 3, 6)
	var ids [2]string
	for i, tc := range []struct {
		tenant, handle string
		in             *graph.Input
	}{{"acme", "da", inA}, {"bravo", "db", inB}} {
		ji, err := c.Submit(&SubmitRequest{Tenant: tc.tenant, Handle: tc.handle, Graph: graphSpec(tc.in)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = ji.ID
	}
	for i, in := range []*graph.Input{inA, inB} {
		res, err := c.Wait(ids[i], 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle(t, in); res.Flow != want {
			t.Fatalf("job %d flow = %d, oracle says %d", i, res.Flow, want)
		}
	}
	// The merged status shows both the worker pool and the scheduler.
	st := scrapeStatus(t, svc.AdminAddr())
	if st.Service == nil || st.WorkersAlive != 3 {
		t.Fatalf("merged status: workers_alive=%d service=%v", st.WorkersAlive, st.Service)
	}
}
