// Package service implements the resident multi-tenant flow service: a
// long-lived process that owns one cluster (the simulated engine or a
// distmr master with its worker pool) and multiplexes many client jobs
// over it. The write path is a fair-share scheduler — per-tenant quota'd
// queues, weighted-fair dispatch, intra-tenant priority — that runs a
// bounded number of solve/update pipelines concurrently, each isolated
// under its own DFS namespace. The read path is a generation-tagged
// store of completed runs kept resident as dynamic.Snapshots with
// materialized query views: flow-value, min-cut-membership and
// residual-capacity queries are answered from immutable in-memory state
// and never touch the scheduler, so query latency is independent of
// whatever the write path is grinding through. Update jobs advance a
// handle by atomically swapping in the next generation; readers observe
// generations strictly monotonically.
package service

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ffmr/internal/core"
	"ffmr/internal/dynamic"
	"ffmr/internal/graph"
	"ffmr/internal/mapreduce"
	"ffmr/internal/obsv"
	"ffmr/internal/portfolio" // also registers the "prflow" and "auto" engines
	"ffmr/internal/rpcutil"
	"ffmr/internal/trace"
)

// Config configures a Service.
type Config struct {
	// Cluster is the shared execution substrate every job runs on. With
	// Cluster.Distributed set, jobs execute on the external worker pool;
	// otherwise on the in-process simulated engine. Required.
	Cluster *mapreduce.Cluster
	// Quotas bounds the scheduler (zero value: defaults).
	Quotas Quotas
	// Addr is the client API listen address (default 127.0.0.1:0).
	Addr string
	// AdminAddr, when non-empty, serves the obsv admin endpoints
	// (/metrics, /status, /healthz, pprof) on a second listener.
	AdminAddr string
	// DefaultOpts seeds every job's core options (variant, K,
	// termination, ...). Per-job fields — PathPrefix, Tracer, Log — are
	// overwritten by the service.
	DefaultOpts core.Options
	// MasterStatus, when non-nil, supplies the distributed master's
	// /status section so the service admin page shows workers and the
	// running MR job alongside the scheduler (typically
	// distmr.Master.Status).
	MasterStatus func() *obsv.ClusterStatus
	// Tracer records job spans and powers /metrics (nil: a private
	// tracer is created).
	Tracer *trace.Tracer
	// Logger receives service logs (nil: silent).
	Logger *slog.Logger
	// Seed seeds the job-sequence nonce. 0 derives one from the clock,
	// so DFS namespaces never collide across service restarts over a
	// persistent store (the same generation-nonce idea distmr uses for
	// spill segments).
	Seed uint64
}

// Service is a running flow service. Create with Start; Close shuts it
// down (stops admission, fails queued jobs, waits for running jobs,
// closes both HTTP servers).
type Service struct {
	cfg    Config
	log    *slog.Logger
	tracer *trace.Tracer
	sched  *scheduler
	store  *store
	api    *rpcutil.HTTPServer
	admin  *obsv.Admin

	// jobSeq numbers every submission; the hex value becomes both the
	// job ID and the job's private DFS namespace, so no two jobs — across
	// tenants, retries or restarts — ever share a prefix.
	jobSeq atomic.Uint64

	// queries counts query-API hits (the /metrics QPS numerator).
	queries *trace.Counter

	jobMu   sync.Mutex
	jobs    map[string]*job
	jobsLog []string // insertion order, for bounded retention
}

// maxJobRecords bounds the completed-job history the API can replay;
// older records are evicted FIFO (their DFS state is unaffected).
const maxJobRecords = 4096

// Start validates the config, binds the API (and admin, if configured)
// and returns the running service.
func Start(cfg Config) (*Service, error) {
	if cfg.Cluster == nil || cfg.Cluster.FS == nil {
		return nil, fmt.Errorf("service: Config.Cluster with an FS is required")
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.New()
	}
	s := &Service{
		cfg:    cfg,
		log:    obsv.Or(cfg.Logger),
		tracer: tracer,
		sched:  newScheduler(cfg.Quotas, cfg.Logger, tracer.Registry()),
		store:  newStore(),
		jobs:   make(map[string]*job),
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	s.jobSeq.Store(seed)
	s.queries = tracer.Registry().Counter("service queries")

	api, err := rpcutil.ServeHTTP(rpcutil.HTTPConfig{
		Addr:    cfg.Addr,
		Handler: s.apiMux(),
		Logger:  cfg.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("service: api server: %w", err)
	}
	s.api = api
	if cfg.AdminAddr != "" {
		admin, err := obsv.StartAdmin(obsv.AdminConfig{
			Addr:    cfg.AdminAddr,
			Metrics: tracer.Registry,
			Status:  s.Status,
			Logger:  cfg.Logger,
		})
		if err != nil {
			api.Close()
			return nil, err
		}
		s.admin = admin
	}
	s.log.Info("flow service up", "addr", s.Addr(), "admin", s.AdminAddr(),
		"max_concurrent", s.sched.q.MaxConcurrent)
	return s, nil
}

// Addr returns the client API address.
func (s *Service) Addr() string { return s.api.Addr() }

// URL returns the client API base URL.
func (s *Service) URL() string { return s.api.URL() }

// AdminAddr returns the admin address ("" if no admin was configured).
func (s *Service) AdminAddr() string { return s.admin.Addr() }

// Close drains and stops the service: admission closes first so the
// scheduler can empty, then the listeners go down.
func (s *Service) Close() error {
	s.sched.close()
	err := s.api.Close()
	if aerr := s.admin.Close(); err == nil {
		err = aerr
	}
	return err
}

// Status assembles the /status payload: the scheduler and store
// sections, merged over the master's view when one is attached.
func (s *Service) Status() *obsv.ClusterStatus {
	st := &obsv.ClusterStatus{}
	if s.cfg.MasterStatus != nil {
		if ms := s.cfg.MasterStatus(); ms != nil {
			*st = *ms
		}
	}
	st.Role = "service"
	svc := s.sched.status()
	svc.Handles = s.store.status()
	st.Service = svc
	return st
}

// jobCluster returns this job's private cluster handle: a shallow copy
// of the shared base. core.Run and dynamic.Apply install the job's
// tracer and logger on the cluster they are given, so concurrent jobs
// must not share the struct; the FS and Distributed backend pointers are
// shared and internally synchronized (the distmr master serializes jobs,
// so concurrent service jobs interleave at MR-job granularity).
func (s *Service) jobCluster() *mapreduce.Cluster {
	c := *s.cfg.Cluster
	return &c
}

// submit validates a request, registers the job and hands it to the
// scheduler. The returned job is already visible to the jobs API.
func (s *Service) submit(req *SubmitRequest) (*job, error) {
	if req.Tenant == "" {
		return nil, fmt.Errorf("service: tenant is required")
	}
	if req.Handle == "" {
		return nil, fmt.Errorf("service: handle is required")
	}
	seq := s.jobSeq.Add(1)
	j := &job{
		id:       fmt.Sprintf("j-%016x", seq),
		tenant:   req.Tenant,
		handle:   req.Handle,
		priority: req.Priority,
		seq:      seq,
		done:     make(chan struct{}),
	}
	switch req.Kind {
	case "", KindSolve:
		j.kind = KindSolve
		if req.Graph == nil {
			return nil, fmt.Errorf("service: solve job needs a graph")
		}
		in, err := req.Graph.toInput()
		if err != nil {
			return nil, err
		}
		if req.Engine != "" && !knownEngine(req.Engine) {
			return nil, fmt.Errorf("service: unknown engine %q (have %s)",
				req.Engine, strings.Join(core.EngineNames(), ", "))
		}
		variant, engine := req.Variant, req.Engine
		j.run = func() (*JobResult, error) {
			return s.runSolve(j, in, variant, engine, seq)
		}
	case KindUpdate:
		j.kind = KindUpdate
		batch, err := decodeUpdates(req.Updates)
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			return nil, fmt.Errorf("service: update job needs at least one update")
		}
		j.run = func() (*JobResult, error) {
			return s.runUpdate(j, batch)
		}
	default:
		return nil, fmt.Errorf("service: unknown job kind %q", req.Kind)
	}

	s.rememberJob(j)
	if err := s.sched.submit(j); err != nil {
		s.forgetJob(j.id)
		return nil, err
	}
	return j, nil
}

// runSolve is a solve job's body: cold-solve the graph under a fresh
// namespace, materialize the query view, publish generation n+1 of the
// handle (n=0 for a new handle), and retire the superseded chain's DFS
// state.
func knownEngine(name string) bool {
	for _, n := range core.EngineNames() {
		if n == name {
			return true
		}
	}
	return false
}

func (s *Service) runSolve(j *job, in *graph.Input, variant int, engine string, seq uint64) (*JobResult, error) {
	r, err := s.store.ensure(j.handle, j.tenant)
	if err != nil {
		return nil, err
	}
	// Chain advances for one handle are serialized; the scheduler slot
	// stays occupied while waiting, which only happens when a tenant
	// races jobs against its own handle.
	r.updateMu.Lock()
	defer r.updateMu.Unlock()

	opts := s.cfg.DefaultOpts
	if variant != 0 {
		opts.Variant = core.Variant(variant)
	}
	// Engine precedence: per-request, then service default, then the
	// instance-probing portfolio — every pipeline persists the same
	// state shape, so later updates warm-restart identically.
	if engine != "" {
		opts.Engine = engine
	} else if opts.Engine == "" {
		opts.Engine = portfolio.EngineName
	}
	opts.PathPrefix = fmt.Sprintf("svc/%s/%016x/", pathSafe(j.tenant), seq)
	opts.Tracer = s.tracer
	opts.Log = s.log.With("job", j.id)

	snap, err := dynamic.Solve(s.jobCluster(), in, opts)
	if err != nil {
		return nil, err
	}
	view, err := dynamic.BuildView(s.cfg.Cluster.FS, snap)
	if err != nil {
		return nil, err
	}
	gen, old := r.publish(snap, view)
	if old != nil {
		// The whole previous chain lived under its own root; nothing in
		// the new chain references it. Readers holding the old View are
		// unaffected — views are fully materialized in memory.
		s.cfg.Cluster.FS.DeletePrefix(old.Snap.Root)
	}
	return &JobResult{
		Handle: j.handle,
		Gen:    gen,
		Flow:   snap.Result.MaxFlow,
		Rounds: snap.Result.Rounds,
	}, nil
}

// runUpdate is an update job's body: apply the batch to the handle's
// latest snapshot, warm-restart, publish the next generation, and prune
// the superseded warm generation's DFS state.
func (s *Service) runUpdate(j *job, batch []graph.Update) (*JobResult, error) {
	r, err := s.store.owned(j.handle, j.tenant)
	if err != nil {
		return nil, err
	}
	r.updateMu.Lock()
	defer r.updateMu.Unlock()
	cur := r.latest()
	if cur == nil {
		return nil, fmt.Errorf("service: handle %q has no solved generation", j.handle)
	}

	cluster := s.jobCluster()
	// Apply reuses the snapshot's stored options; point its logger at
	// this job. The tracer is shared service-wide already.
	snap := *cur.Snap
	snap.Opts.Log = s.log.With("job", j.id)
	out, err := dynamic.Apply(cluster, &snap, batch)
	if err != nil {
		return nil, err
	}
	view, err := dynamic.BuildView(s.cfg.Cluster.FS, out.Snapshot)
	if err != nil {
		return nil, err
	}
	gen, old := r.publish(out.Snapshot, view)
	if old != nil && old.Snap.Gen > 0 {
		// A superseded warm generation's state lives wholly under its
		// warm-NNNN/ prefix and nothing reads it again; deleting it keeps
		// resident DFS growth bounded by one state per handle plus the
		// base chain. The base generation (Gen 0) is never pruned: its
		// prefix is the chain root the live warm prefixes nest under.
		s.cfg.Cluster.FS.DeletePrefix(old.Snap.Opts.PathPrefix)
	}
	return &JobResult{
		Handle:     j.handle,
		Gen:        gen,
		Flow:       out.Snapshot.Result.MaxFlow,
		Rounds:     out.Warm.Rounds,
		Violations: out.Violations,
	}, nil
}

// rememberJob registers a job for the jobs API, evicting the oldest
// record beyond the retention bound.
func (s *Service) rememberJob(j *job) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobs[j.id] = j
	s.jobsLog = append(s.jobsLog, j.id)
	for len(s.jobsLog) > maxJobRecords {
		delete(s.jobs, s.jobsLog[0])
		s.jobsLog = s.jobsLog[1:]
	}
}

func (s *Service) forgetJob(id string) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	delete(s.jobs, id)
	for i, v := range s.jobsLog {
		if v == id {
			s.jobsLog = append(s.jobsLog[:i], s.jobsLog[i+1:]...)
			break
		}
	}
}

func (s *Service) lookupJob(id string) *job {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return s.jobs[id]
}

// pathSafe maps a tenant ID onto the DFS path alphabet (lowercased
// alphanumerics and dashes) so tenant names can't escape or collide
// namespaces; uniqueness comes from the job sequence, not the name.
func pathSafe(tenant string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(tenant) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "tenant"
	}
	return b.String()
}
