package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ffmr/internal/leakcheck"
)

// gate blocks fake jobs until released, so tests control exactly when
// scheduler slots free up.
type gate struct {
	mu       sync.Mutex
	order    []string
	releases chan struct{}
}

func newGate() *gate { return &gate{releases: make(chan struct{}, 1024)} }

// fakeJob returns a job whose body records its dispatch order under the
// given label and then waits for one gate release.
func (g *gate) fakeJob(tenant, label string, priority int, seq uint64) *job {
	return &job{
		id:       label,
		tenant:   tenant,
		kind:     "fake",
		priority: priority,
		seq:      seq,
		done:     make(chan struct{}),
		run: func() (*JobResult, error) {
			g.mu.Lock()
			g.order = append(g.order, label)
			g.mu.Unlock()
			<-g.releases
			return &JobResult{}, nil
		},
	}
}

func (g *gate) release()   { g.releases <- struct{}{} }
func (g *gate) dispatched() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

// waitDispatched spins until n jobs have started running.
func (g *gate) waitDispatched(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(g.dispatched()) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d jobs dispatched, want %d", len(g.dispatched()), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitJob(t *testing.T, j *job) {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(5 * time.Second):
		t.Fatalf("job %s never finished", j.id)
	}
}

func TestSchedulerQueueQuota(t *testing.T) {
	defer leakcheck.Check(t)()
	g := newGate()
	s := newScheduler(Quotas{MaxConcurrent: 1, MaxQueuedPerTenant: 2}, nil, nil)

	var jobs []*job
	// One runs, two queue; the fourth must bounce off the quota.
	for i := 0; i < 3; i++ {
		j := g.fakeJob("acme", fmt.Sprintf("a%d", i), 0, uint64(i))
		if err := s.submit(j); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
		if i == 0 {
			g.waitDispatched(t, 1) // ensure a0 occupies the slot, not the queue
		}
	}
	err := s.submit(g.fakeJob("acme", "a3", 0, 3))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submit: got %v, want ErrQueueFull", err)
	}
	// Another tenant's quota is independent.
	b := g.fakeJob("bravo", "b0", 0, 10)
	if err := s.submit(b); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	for i := 0; i < 4; i++ {
		g.release()
	}
	for _, j := range jobs {
		waitJob(t, j)
	}
	waitJob(t, b)
	st := s.status()
	if st.Done != 4 || st.Failed != 0 {
		t.Errorf("done=%d failed=%d, want 4/0", st.Done, st.Failed)
	}
	s.close()
}

func TestSchedulerFairShareInterleaves(t *testing.T) {
	defer leakcheck.Check(t)()
	g := newGate()
	s := newScheduler(Quotas{MaxConcurrent: 1, MaxQueuedPerTenant: 100}, nil, nil)

	// Tenant A floods first; tenant B arrives after. With one slot and
	// equal weights, WFQ must alternate dispatches rather than draining
	// A's backlog first — B's idle catch-up keeps its vtime level with
	// A's, not behind it.
	hold := g.fakeJob("acme", "hold", 0, 0)
	if err := s.submit(hold); err != nil {
		t.Fatal(err)
	}
	g.waitDispatched(t, 1)
	var all []*job
	for i := 0; i < 4; i++ {
		j := g.fakeJob("acme", fmt.Sprintf("a%d", i), 0, uint64(i+1))
		if err := s.submit(j); err != nil {
			t.Fatal(err)
		}
		all = append(all, j)
	}
	for i := 0; i < 4; i++ {
		j := g.fakeJob("bravo", fmt.Sprintf("b%d", i), 0, uint64(i+10))
		if err := s.submit(j); err != nil {
			t.Fatal(err)
		}
		all = append(all, j)
	}
	for i := 0; i < 9; i++ {
		g.release()
	}
	waitJob(t, hold)
	for _, j := range all {
		waitJob(t, j)
	}
	order := g.dispatched()[1:] // drop the hold job
	// Check strict alternation: at every prefix the two tenants'
	// dispatch counts differ by at most one.
	na, nb := 0, 0
	for i, label := range order {
		if label[0] == 'a' {
			na++
		} else {
			nb++
		}
		if d := na - nb; d < -1 || d > 1 {
			t.Fatalf("unfair dispatch order %v: after %d dispatches acme=%d bravo=%d", order, i+1, na, nb)
		}
	}
	if na != 4 || nb != 4 {
		t.Fatalf("dispatched acme=%d bravo=%d, want 4/4 (order %v)", na, nb, order)
	}
	s.close()
}

func TestSchedulerWeightsSkewDispatch(t *testing.T) {
	defer leakcheck.Check(t)()
	g := newGate()
	s := newScheduler(Quotas{
		MaxConcurrent:      1,
		MaxQueuedPerTenant: 100,
		Weights:            map[string]float64{"heavy": 2},
	}, nil, nil)

	hold := g.fakeJob("heavy", "hold", 0, 0)
	if err := s.submit(hold); err != nil {
		t.Fatal(err)
	}
	g.waitDispatched(t, 1)
	var all []*job
	for i := 0; i < 6; i++ {
		j := g.fakeJob("heavy", fmt.Sprintf("h%d", i), 0, uint64(i+1))
		s.submit(j)
		all = append(all, j)
	}
	for i := 0; i < 3; i++ {
		j := g.fakeJob("light", fmt.Sprintf("l%d", i), 0, uint64(i+10))
		s.submit(j)
		all = append(all, j)
	}
	for i := 0; i < 10; i++ {
		g.release()
	}
	waitJob(t, hold)
	for _, j := range all {
		waitJob(t, j)
	}
	// Weight 2 vs 1: in the first 6 contested dispatches, heavy should
	// get about twice light's share (exact pattern depends on tie-breaks;
	// assert the ratio bound, not the sequence).
	order := g.dispatched()[1:]
	nh := 0
	for _, label := range order[:6] {
		if label[0] == 'h' {
			nh++
		}
	}
	if nh < 3 || nh > 5 {
		t.Fatalf("heavy got %d of first 6 dispatches (order %v), want ~4", nh, order)
	}
	s.close()
}

func TestSchedulerPriorityWithinTenant(t *testing.T) {
	defer leakcheck.Check(t)()
	g := newGate()
	s := newScheduler(Quotas{MaxConcurrent: 1, MaxQueuedPerTenant: 100}, nil, nil)

	hold := g.fakeJob("acme", "hold", 0, 0)
	s.submit(hold)
	g.waitDispatched(t, 1)
	low := g.fakeJob("acme", "low", 0, 1)
	mid := g.fakeJob("acme", "mid", 5, 2)
	high := g.fakeJob("acme", "high", 9, 3)
	for _, j := range []*job{low, mid, high} {
		if err := s.submit(j); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		g.release()
	}
	for _, j := range []*job{hold, low, mid, high} {
		waitJob(t, j)
	}
	want := []string{"hold", "high", "mid", "low"}
	got := g.dispatched()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
	s.close()
}

func TestSchedulerPerTenantRunningCap(t *testing.T) {
	defer leakcheck.Check(t)()
	g := newGate()
	s := newScheduler(Quotas{MaxConcurrent: 2, MaxQueuedPerTenant: 100, MaxRunningPerTenant: 1}, nil, nil)

	a0 := g.fakeJob("acme", "a0", 0, 0)
	a1 := g.fakeJob("acme", "a1", 0, 1)
	s.submit(a0)
	s.submit(a1)
	g.waitDispatched(t, 1)
	time.Sleep(10 * time.Millisecond)
	// A second slot is free, but acme is capped at one running job.
	if got := g.dispatched(); len(got) != 1 {
		t.Fatalf("dispatched %v, want only a0 (per-tenant cap)", got)
	}
	// A second tenant takes the free slot immediately.
	b0 := g.fakeJob("bravo", "b0", 0, 2)
	s.submit(b0)
	g.waitDispatched(t, 2)
	for i := 0; i < 3; i++ {
		g.release()
	}
	for _, j := range []*job{a0, a1, b0} {
		waitJob(t, j)
	}
	s.close()
}

func TestSchedulerCloseFailsQueued(t *testing.T) {
	defer leakcheck.Check(t)()
	g := newGate()
	s := newScheduler(Quotas{MaxConcurrent: 1, MaxQueuedPerTenant: 100}, nil, nil)

	running := g.fakeJob("acme", "running", 0, 0)
	queued := g.fakeJob("acme", "queued", 0, 1)
	s.submit(running)
	g.waitDispatched(t, 1)
	s.submit(queued)

	closed := make(chan struct{})
	go func() {
		s.close()
		close(closed)
	}()
	// The queued job fails promptly; the running one is allowed to
	// finish and close() waits for it.
	waitJob(t, queued)
	queued.mu.Lock()
	qerr := queued.err
	queued.mu.Unlock()
	if !errors.Is(qerr, ErrClosed) {
		t.Fatalf("queued job error = %v, want ErrClosed", qerr)
	}
	select {
	case <-closed:
		t.Fatal("close returned while a job was still running")
	case <-time.After(20 * time.Millisecond):
	}
	g.release()
	waitJob(t, running)
	<-closed
	if err := s.submit(g.fakeJob("acme", "late", 0, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
}
