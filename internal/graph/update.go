package graph

import "fmt"

// This file defines the dynamic-graph update model consumed by
// internal/dynamic: a batch of edge updates applied to a completed run's
// Input, from which both the warm-restart machinery and the from-scratch
// oracles derive the updated graph. Updates never renumber edges: an
// insert is assigned the next free EdgeID (its index in the updated edge
// list) and a delete only zeroes capacity, leaving the edge in place so
// EdgeIDs stored in persisted vertex records stay valid.

// UpdateOp identifies the kind of one edge update.
type UpdateOp uint8

const (
	// UpdateInsert adds a new edge between two existing vertices.
	UpdateInsert UpdateOp = iota + 1
	// UpdateSetCap replaces an existing edge's capacity, covering
	// capacity increases, decreases, and — with capacity zero — logical
	// deletion.
	UpdateSetCap
)

// String names the operation.
func (op UpdateOp) String() string {
	switch op {
	case UpdateInsert:
		return "insert"
	case UpdateSetCap:
		return "set-cap"
	default:
		return fmt.Sprintf("UpdateOp(%d)", uint8(op))
	}
}

// Update is one edge update. Exactly the fields relevant to Op are used:
// Edge for UpdateInsert; ID, Cap and Directed for UpdateSetCap. The
// capacity orientation mirrors InputEdge: an undirected update sets Cap
// in both directions, a directed one sets Cap forward (U->V as the edge
// was inserted) and zero backward.
type Update struct {
	Op UpdateOp

	// Edge is the inserted edge (UpdateInsert).
	Edge InputEdge

	// ID targets an existing edge (UpdateSetCap). Within one batch an
	// update may target an edge inserted by an earlier update of the same
	// batch.
	ID EdgeID
	// Cap is the new capacity; zero deletes the edge logically.
	Cap int64
	// Directed selects the updated edge's capacity orientation.
	Directed bool
}

// InsertEdge builds an insert update.
func InsertEdge(u, v VertexID, cap int64, directed bool) Update {
	return Update{Op: UpdateInsert, Edge: InputEdge{U: u, V: v, Cap: cap, Directed: directed}}
}

// SetCapacity builds a capacity-change update.
func SetCapacity(id EdgeID, cap int64, directed bool) Update {
	return Update{Op: UpdateSetCap, ID: id, Cap: cap, Directed: directed}
}

// DeleteEdge builds a logical-deletion update: the edge keeps its ID but
// carries no capacity in either direction.
func DeleteEdge(id EdgeID) Update {
	return Update{Op: UpdateSetCap, ID: id, Cap: 0}
}

// ApplyUpdates applies a batch of updates to in, returning a deep copy
// with the batch folded in; in itself is not modified. Updates apply in
// order, so later updates see earlier inserts. Inserted edges are
// appended, making EdgeID == index hold for the updated list exactly as
// WriteInput establishes it for a cold run.
func ApplyUpdates(in *Input, batch []Update) (*Input, error) {
	out := &Input{
		NumVertices: in.NumVertices,
		Edges:       make([]InputEdge, len(in.Edges), len(in.Edges)+len(batch)),
		Source:      in.Source,
		Sink:        in.Sink,
	}
	copy(out.Edges, in.Edges)
	for i := range batch {
		u := &batch[i]
		switch u.Op {
		case UpdateInsert:
			e := u.Edge
			if int(e.U) >= in.NumVertices || int(e.V) >= in.NumVertices {
				return nil, fmt.Errorf("graph: update %d inserts edge (%d,%d) out of range (n=%d)",
					i, e.U, e.V, in.NumVertices)
			}
			if e.U == e.V {
				return nil, fmt.Errorf("graph: update %d inserts a self-loop at %d", i, e.U)
			}
			if e.Cap < 0 {
				return nil, fmt.Errorf("graph: update %d inserts negative capacity %d", i, e.Cap)
			}
			out.Edges = append(out.Edges, e)
		case UpdateSetCap:
			if int(u.ID) >= len(out.Edges) {
				return nil, fmt.Errorf("graph: update %d targets unknown edge %d", i, u.ID)
			}
			if u.Cap < 0 {
				return nil, fmt.Errorf("graph: update %d sets negative capacity %d", i, u.Cap)
			}
			out.Edges[u.ID].Cap = u.Cap
			out.Edges[u.ID].Directed = u.Directed
		default:
			return nil, fmt.Errorf("graph: update %d has unknown op %d", i, u.Op)
		}
	}
	return out, nil
}
