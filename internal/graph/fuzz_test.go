package graph_test

import (
	"bytes"
	"testing"

	"ffmr/internal/graph"
	"ffmr/internal/graphgen"
)

// seedCorpus builds realistic wire records from generator output: the
// vertex values a round-0 conversion would produce for a small
// Barabási-Albert graph, plus standalone excess paths, so the fuzzer
// starts from well-formed encodings rather than random bytes.
func seedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	in, err := graphgen.BarabasiAlbert(24, 2, 7)
	if err != nil {
		tb.Fatalf("BarabasiAlbert: %v", err)
	}
	graphgen.RandomCapacities(in, 5, 8)
	in.Source, in.Sink = graphgen.PickEndpoints(in)

	adj := map[graph.VertexID][]graph.Edge{}
	for i, e := range in.Edges {
		id := graph.EdgeID(i)
		adj[e.U] = append(adj[e.U], graph.Edge{To: e.V, ID: id, Cap: e.Cap, RevCap: e.Cap, Fwd: true})
		adj[e.V] = append(adj[e.V], graph.Edge{To: e.U, ID: id, Cap: e.Cap, RevCap: e.Cap, Fwd: false})
	}
	var corpus [][]byte
	for u, edges := range adj {
		val := &graph.VertexValue{Eu: edges}
		if u == in.Source {
			val.Su = []graph.ExcessPath{{}}
		}
		if u == in.Sink {
			val.Tu = []graph.ExcessPath{{}}
		}
		val.SentS = make([]uint64, len(edges))
		val.SentT = make([]uint64, len(edges))
		corpus = append(corpus, graph.EncodeValue(val))
	}
	p := &graph.ExcessPath{Edges: []graph.PathEdge{
		{ID: 3, From: in.Source, To: 5, Flow: 1, Cap: 4, Fwd: true},
		{ID: 9, From: 5, To: in.Sink, Flow: 1, Cap: 2, Fwd: false},
	}}
	corpus = append(corpus, graph.EncodePath(p))
	corpus = append(corpus, graph.EncodePath(&graph.ExcessPath{}))
	return corpus
}

// FuzzVertexCodec checks the wire codec against arbitrary input: decoding
// must never panic, and any input that decodes successfully must
// round-trip to a stable canonical encoding (decode -> encode -> decode
// -> encode yields identical bytes, for both the vertex-value and the
// standalone-path record formats).
func FuzzVertexCodec(f *testing.F) {
	for _, data := range seedCorpus(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, err := graph.DecodeValue(data); err == nil {
			enc := graph.EncodeValue(v)
			v2, err := graph.DecodeValue(enc)
			if err != nil {
				t.Fatalf("re-decode of canonical value encoding failed: %v\ninput: %x", err, data)
			}
			if enc2 := graph.EncodeValue(v2); !bytes.Equal(enc, enc2) {
				t.Fatalf("value encoding not stable:\n first: %x\nsecond: %x\ninput: %x", enc, enc2, data)
			}
			// The reuse-path decode (FF4) must agree with the fresh one.
			var reuse graph.VertexValue
			if err := graph.DecodeValueInto(data, &reuse); err != nil {
				t.Fatalf("DecodeValueInto failed where DecodeValue succeeded: %v\ninput: %x", err, data)
			}
			if enc3 := graph.EncodeValue(&reuse); !bytes.Equal(enc, enc3) {
				t.Fatalf("DecodeValueInto disagrees with DecodeValue:\n fresh: %x\n reuse: %x\ninput: %x", enc, enc3, data)
			}
		}
		if p, err := graph.DecodePath(data); err == nil {
			enc := graph.EncodePath(&p)
			p2, err := graph.DecodePath(enc)
			if err != nil {
				t.Fatalf("re-decode of canonical path encoding failed: %v\ninput: %x", err, data)
			}
			if enc2 := graph.EncodePath(&p2); !bytes.Equal(enc, enc2) {
				t.Fatalf("path encoding not stable:\n first: %x\nsecond: %x\ninput: %x", enc, enc2, data)
			}
		}
	})
}
