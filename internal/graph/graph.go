// Package graph defines the flow-network data model used throughout the
// FFMR system: vertices identified by dense integer IDs, half-edges stored
// from each endpoint's perspective, and the excess-path structures of
// Halim, Yap and Wu (ICDCS 2011), Section III-C.
//
// The on-the-wire representation matches the paper's record model: a
// MapReduce record per vertex u with key = u and value = <Su, Tu, Eu>,
// where Su is the list of source excess paths (paths from the source s to
// u), Tu is the list of sink excess paths (paths from u to the sink t),
// and Eu is the adjacency list of u. Each edge is the tuple
// <ev, eid, ef, ec>: neighbour ID, edge ID, flow and capacity.
package graph

import (
	"fmt"
	"math"
)

// VertexID identifies a vertex. IDs are dense, starting at 0.
type VertexID uint32

// EdgeID identifies a logical edge. The two half-edges stored at the two
// endpoints of an edge share one EdgeID; the half marked Fwd is the
// canonical orientation used when broadcasting flow deltas.
type EdgeID uint32

// CapInf is the "infinite" capacity used for the edges that connect the
// super source and super sink to their tap vertices (paper Section V-A1).
// It is large enough that it can never be saturated by realistic flows but
// small enough that summing many of them cannot overflow int64.
const CapInf = int64(math.MaxInt64 / 1024)

// Edge is a half-edge stored at one endpoint. Flow and Cap are from this
// endpoint's perspective: Flow is the flow sent from the owning vertex to
// To, and Cap is the capacity in that direction. Skew symmetry holds
// between the two halves: the flow at the other endpoint is -Flow.
//
// The residual capacity in the owning-vertex -> To direction is Cap-Flow.
// A directed input edge u->v with capacity c is stored as Cap=c at u and
// Cap=0 at v, which yields the classical residual-graph semantics.
type Edge struct {
	To   VertexID
	ID   EdgeID
	Flow int64
	Cap  int64
	// RevCap is the capacity in the To -> owning-vertex direction (the
	// Cap stored on the mirror half-edge). The paper's experiments use
	// undirected unit-capacity edges where RevCap == Cap; carrying the
	// mirror capacity generalizes the MAP function's sink-path extension
	// test (-ef < ec, Fig. 3 line 14) to directed edges.
	RevCap int64
	// Fwd marks whether this half is the canonical orientation of ID.
	// Flow deltas broadcast through the AugmentedEdges table are expressed
	// in the canonical orientation; a half with Fwd=false applies -delta.
	Fwd bool
}

// Residual returns the residual capacity from the owning vertex to e.To.
func (e *Edge) Residual() int64 { return e.Cap - e.Flow }

// RevResidual returns the residual capacity from e.To back to the owning
// vertex: RevCap - (-Flow). This is the Fig. 3 line 14 test "-ef < ec"
// generalized to asymmetric capacities.
func (e *Edge) RevResidual() int64 { return e.RevCap + e.Flow }

// ApplyDelta applies a canonical-orientation flow delta to this half-edge.
func (e *Edge) ApplyDelta(delta int64) {
	if e.Fwd {
		e.Flow += delta
	} else {
		e.Flow -= delta
	}
}

// PathEdge is one hop of an excess path. From/To give the traversal
// direction; Flow and Cap are in the traversal direction, so the hop's
// residual capacity is Cap-Flow. Fwd records whether the traversal
// direction is the canonical orientation of ID, which lets mappers apply
// broadcast deltas to the path copy and lets the accumulator translate an
// accepted path into canonical-orientation deltas.
type PathEdge struct {
	ID   EdgeID
	From VertexID
	To   VertexID
	Flow int64
	Cap  int64
	Fwd  bool
}

// Residual returns the hop's residual capacity in the traversal direction.
func (pe *PathEdge) Residual() int64 { return pe.Cap - pe.Flow }

// ApplyDelta applies a canonical-orientation delta to this hop's flow.
func (pe *PathEdge) ApplyDelta(delta int64) {
	if pe.Fwd {
		pe.Flow += delta
	} else {
		pe.Flow -= delta
	}
}

// ExcessPath is a simple path in the residual network. For a source
// excess path of vertex u the hops run s -> ... -> u in order; for a sink
// excess path they run u -> ... -> t. An empty path is valid only at the
// source (as the seed source path) or sink (as the seed sink path).
type ExcessPath struct {
	Edges []PathEdge
}

// Len returns the number of hops.
func (p *ExcessPath) Len() int { return len(p.Edges) }

// Residual returns the bottleneck residual capacity of the path,
// accounting for an edge appearing multiple times (the same residual
// capacity must cover every use). An empty path has infinite residual.
func (p *ExcessPath) Residual() int64 {
	if len(p.Edges) == 0 {
		return CapInf
	}
	// Count uses per edge+direction so repeated hops are charged together.
	r := int64(math.MaxInt64)
	for i := range p.Edges {
		uses := int64(1)
		for j := range p.Edges {
			if j != i && p.Edges[j].ID == p.Edges[i].ID && p.Edges[j].Fwd == p.Edges[i].Fwd {
				uses++
			}
		}
		if v := p.Edges[i].Residual() / uses; v < r {
			r = v
		}
	}
	return r
}

// Saturated reports whether any hop of the path has no residual capacity.
func (p *ExcessPath) Saturated() bool {
	for i := range p.Edges {
		if p.Edges[i].Residual() <= 0 {
			return true
		}
	}
	return false
}

// Contains reports whether v appears as an endpoint of any hop.
func (p *ExcessPath) Contains(v VertexID) bool {
	for i := range p.Edges {
		if p.Edges[i].From == v || p.Edges[i].To == v {
			return true
		}
	}
	return false
}

// Head returns the first vertex of the path (s for source paths).
// It must not be called on an empty path.
func (p *ExcessPath) Head() VertexID { return p.Edges[0].From }

// Tail returns the last vertex of the path (t for sink paths).
// It must not be called on an empty path.
func (p *ExcessPath) Tail() VertexID { return p.Edges[len(p.Edges)-1].To }

// ExtendSource returns a copy of the source path p extended by one hop
// along e from vertex u (the current tail) to e.To.
func (p *ExcessPath) ExtendSource(u VertexID, e *Edge) ExcessPath {
	edges := make([]PathEdge, len(p.Edges)+1)
	copy(edges, p.Edges)
	edges[len(p.Edges)] = PathEdge{
		ID: e.ID, From: u, To: e.To, Flow: e.Flow, Cap: e.Cap, Fwd: e.Fwd,
	}
	return ExcessPath{Edges: edges}
}

// ExtendSink returns a copy of the sink path p extended by prefixing one
// hop from e.To to u (the current head), traversed against e's
// perspective. e is the half-edge stored at u pointing to e.To; the new
// hop runs e.To -> u, so its flow and capacity are the mirrored values
// (flow -e.Flow, capacity e.RevCap).
func (p *ExcessPath) ExtendSink(u VertexID, e *Edge) ExcessPath {
	edges := make([]PathEdge, len(p.Edges)+1)
	copy(edges[1:], p.Edges)
	edges[0] = PathEdge{
		ID: e.ID, From: e.To, To: u, Flow: -e.Flow, Cap: e.RevCap, Fwd: !e.Fwd,
	}
	return ExcessPath{Edges: edges}
}

// Concat joins a source path (s -> u) with a sink path (u -> t) into a
// candidate augmenting path (s -> t). The caller guarantees both paths
// belong to the same vertex u.
func Concat(src, snk *ExcessPath) ExcessPath {
	edges := make([]PathEdge, 0, len(src.Edges)+len(snk.Edges))
	edges = append(edges, src.Edges...)
	edges = append(edges, snk.Edges...)
	return ExcessPath{Edges: edges}
}

// Signature returns a stable hash of the path's hop sequence (edge IDs and
// directions). FF5 uses signatures as the "already sent" bookkeeping token
// and reducers use them for deterministic ordering and deduplication.
func (p *ExcessPath) Signature() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := range p.Edges {
		x := uint64(p.Edges[i].ID)<<1 | 1
		if !p.Edges[i].Fwd {
			x = uint64(p.Edges[i].ID) << 1
		}
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// Clone returns a deep copy of the path.
func (p *ExcessPath) Clone() ExcessPath {
	edges := make([]PathEdge, len(p.Edges))
	copy(edges, p.Edges)
	return ExcessPath{Edges: edges}
}

// String renders the path as "v0->v1->...->vn" for debugging.
func (p *ExcessPath) String() string {
	if len(p.Edges) == 0 {
		return "<empty>"
	}
	s := fmt.Sprintf("%d", p.Edges[0].From)
	for i := range p.Edges {
		s += fmt.Sprintf("->%d", p.Edges[i].To)
	}
	return s
}

// VertexValue is the value part of a vertex record: <Su, Tu, Eu> from the
// paper, plus the FF5 bookkeeping arrays. A record with no edges is a
// vertex fragment (an intermediate record emitted to another vertex); a
// record with edges is the master vertex record.
type VertexValue struct {
	Su []ExcessPath // source excess paths: s -> u
	Tu []ExcessPath // sink excess paths: u -> t
	Eu []Edge       // adjacency list

	// SentS[i] / SentT[i] hold the signature of the source/sink excess
	// path most recently extended along Eu[i] that is still believed
	// unsaturated; 0 means nothing outstanding. Used only by FF5 to
	// suppress redundant re-sends (paper Section IV-D, second strategy).
	SentS []uint64
	SentT []uint64
}

// IsMaster reports whether the record is a master vertex record.
func (v *VertexValue) IsMaster() bool { return len(v.Eu) > 0 }

// Reset clears the value for reuse, retaining allocated capacity. This is
// the FF4 "eliminate object instantiations" hook: decoding into a Reset
// value reuses its backing arrays.
func (v *VertexValue) Reset() {
	v.Su = v.Su[:0]
	v.Tu = v.Tu[:0]
	v.Eu = v.Eu[:0]
	v.SentS = v.SentS[:0]
	v.SentT = v.SentT[:0]
}

// InputEdge is one edge of a raw input graph, before round #0 converts the
// edge list into vertex records. Undirected edges get capacity Cap in both
// directions (the paper's round #0 "makes the edges bi-directional");
// directed edges get Cap forward and 0 backward.
type InputEdge struct {
	U, V     VertexID
	Cap      int64
	Directed bool
}

// Input is a raw graph: an edge list plus the designated source and sink.
type Input struct {
	NumVertices int
	Edges       []InputEdge
	Source      VertexID
	Sink        VertexID
}

// Validate checks structural sanity of the input.
func (in *Input) Validate() error {
	if in.NumVertices <= 0 {
		return fmt.Errorf("graph: input has %d vertices", in.NumVertices)
	}
	if int(in.Source) >= in.NumVertices {
		return fmt.Errorf("graph: source %d out of range (n=%d)", in.Source, in.NumVertices)
	}
	if int(in.Sink) >= in.NumVertices {
		return fmt.Errorf("graph: sink %d out of range (n=%d)", in.Sink, in.NumVertices)
	}
	if in.Source == in.Sink {
		return fmt.Errorf("graph: source and sink are both vertex %d", in.Source)
	}
	for i := range in.Edges {
		e := &in.Edges[i]
		if int(e.U) >= in.NumVertices || int(e.V) >= in.NumVertices {
			return fmt.Errorf("graph: edge %d (%d,%d) out of range (n=%d)", i, e.U, e.V, in.NumVertices)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop at %d", i, e.U)
		}
		if e.Cap < 0 {
			return fmt.Errorf("graph: edge %d has negative capacity %d", i, e.Cap)
		}
	}
	return nil
}
