package graph

import (
	"encoding/binary"
	"fmt"
)

// The binary codec gives vertex records a compact, deterministic wire
// format so the MapReduce engine's byte accounting (map-output bytes,
// shuffle bytes, DFS file sizes) measures what a real Hadoop deployment
// would move. Varints keep small IDs and unit capacities at 1 byte each,
// mirroring Hadoop's SequenceFile + Writable idiom.

// KeyBytes encodes a vertex ID as a 4-byte big-endian key so that byte-wise
// key ordering equals numeric ordering (the MR engine sorts keys
// lexicographically, as Hadoop does for BytesWritable).
func KeyBytes(v VertexID) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	return b[:]
}

// AppendKey appends the 4-byte key encoding of v to dst.
func AppendKey(dst []byte, v VertexID) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	return append(dst, b[:]...)
}

// DecodeKey decodes a 4-byte vertex key.
func DecodeKey(b []byte) (VertexID, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("graph: vertex key has %d bytes, want 4", len(b))
	}
	return VertexID(binary.BigEndian.Uint32(b)), nil
}

// MustDecodeKey decodes a 4-byte vertex key produced by KeyBytes. It is
// used on engine-internal paths where the key was produced by this
// package; malformed input indicates a bug, not bad user data.
func MustDecodeKey(b []byte) VertexID {
	v, err := DecodeKey(b)
	if err != nil {
		panic(err)
	}
	return v
}

func appendPathEdge(dst []byte, pe *PathEdge) []byte {
	dst = binary.AppendUvarint(dst, uint64(pe.ID))
	dst = binary.AppendUvarint(dst, uint64(pe.From))
	dst = binary.AppendUvarint(dst, uint64(pe.To))
	dst = binary.AppendVarint(dst, pe.Flow)
	dst = binary.AppendVarint(dst, pe.Cap)
	if pe.Fwd {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

func appendPath(dst []byte, p *ExcessPath) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.Edges)))
	for i := range p.Edges {
		dst = appendPathEdge(dst, &p.Edges[i])
	}
	return dst
}

func appendPaths(dst []byte, ps []ExcessPath) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ps)))
	for i := range ps {
		dst = appendPath(dst, &ps[i])
	}
	return dst
}

// AppendValue appends the wire encoding of v to dst and returns the
// extended slice. Encoding a value and decoding the result yields an
// equal value.
func AppendValue(dst []byte, v *VertexValue) []byte {
	dst = appendPaths(dst, v.Su)
	dst = appendPaths(dst, v.Tu)
	dst = binary.AppendUvarint(dst, uint64(len(v.Eu)))
	for i := range v.Eu {
		e := &v.Eu[i]
		dst = binary.AppendUvarint(dst, uint64(e.To))
		dst = binary.AppendUvarint(dst, uint64(e.ID))
		dst = binary.AppendVarint(dst, e.Flow)
		dst = binary.AppendVarint(dst, e.Cap)
		dst = binary.AppendVarint(dst, e.RevCap)
		if e.Fwd {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(v.SentS)))
	for _, s := range v.SentS {
		dst = binary.AppendUvarint(dst, s)
	}
	dst = binary.AppendUvarint(dst, uint64(len(v.SentT)))
	for _, s := range v.SentT {
		dst = binary.AppendUvarint(dst, s)
	}
	return dst
}

// EncodeValue returns the wire encoding of v in a fresh buffer.
func EncodeValue(v *VertexValue) []byte {
	return AppendValue(make([]byte, 0, 64), v)
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("graph: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return x
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("graph: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return x
}

func (d *decoder) boolByte() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.err = fmt.Errorf("graph: truncated bool at offset %d", d.off)
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

// maxCount bounds decoded list lengths against the remaining buffer so a
// corrupt length prefix cannot trigger a huge allocation.
func (d *decoder) count(perItemMin int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if remaining := len(d.b) - d.off; n > uint64(remaining/perItemMin)+1 {
		d.err = fmt.Errorf("graph: implausible count %d at offset %d", n, d.off)
		return 0
	}
	return int(n)
}

func (d *decoder) path(p *ExcessPath) {
	n := d.count(6)
	if d.err != nil {
		return
	}
	if cap(p.Edges) < n {
		p.Edges = make([]PathEdge, n)
	} else {
		p.Edges = p.Edges[:n]
	}
	for i := 0; i < n; i++ {
		pe := &p.Edges[i]
		pe.ID = EdgeID(d.uvarint())
		pe.From = VertexID(d.uvarint())
		pe.To = VertexID(d.uvarint())
		pe.Flow = d.varint()
		pe.Cap = d.varint()
		pe.Fwd = d.boolByte()
	}
}

func (d *decoder) paths(ps []ExcessPath) []ExcessPath {
	n := d.count(1)
	if d.err != nil {
		return ps[:0]
	}
	if cap(ps) < n {
		grown := make([]ExcessPath, n)
		copy(grown, ps[:cap(ps)])
		ps = grown
	} else {
		ps = ps[:n]
	}
	for i := 0; i < n; i++ {
		d.path(&ps[i])
	}
	return ps
}

// DecodeValueInto decodes data into v, reusing v's backing storage where
// possible (call v.Reset or rely on DecodeValueInto overwriting lengths).
// This is the allocation-free decode path used by FF4 and later variants.
func DecodeValueInto(data []byte, v *VertexValue) error {
	d := decoder{b: data}
	v.Su = d.paths(v.Su)
	v.Tu = d.paths(v.Tu)

	n := d.count(5)
	if d.err == nil {
		if cap(v.Eu) < n {
			v.Eu = make([]Edge, n)
		} else {
			v.Eu = v.Eu[:n]
		}
		for i := 0; i < n; i++ {
			e := &v.Eu[i]
			e.To = VertexID(d.uvarint())
			e.ID = EdgeID(d.uvarint())
			e.Flow = d.varint()
			e.Cap = d.varint()
			e.RevCap = d.varint()
			e.Fwd = d.boolByte()
		}
	}

	for _, dst := range []*[]uint64{&v.SentS, &v.SentT} {
		n := d.count(1)
		if d.err != nil {
			break
		}
		if cap(*dst) < n {
			*dst = make([]uint64, n)
		} else {
			*dst = (*dst)[:n]
		}
		for i := 0; i < n; i++ {
			(*dst)[i] = d.uvarint()
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(data) {
		return fmt.Errorf("graph: %d trailing bytes after vertex value", len(data)-d.off)
	}
	return nil
}

// DecodeValue decodes data into a freshly allocated VertexValue.
func DecodeValue(data []byte) (*VertexValue, error) {
	v := new(VertexValue)
	if err := DecodeValueInto(data, v); err != nil {
		return nil, err
	}
	return v, nil
}

// AppendPath appends the standalone wire encoding of an excess path to
// dst. The FF2+ aug_proc RPC protocol ships candidate augmenting paths in
// this format.
func AppendPath(dst []byte, p *ExcessPath) []byte { return appendPath(dst, p) }

// EncodePath returns the standalone wire encoding of p.
func EncodePath(p *ExcessPath) []byte { return appendPath(nil, p) }

// DecodePath decodes a standalone path produced by EncodePath.
func DecodePath(data []byte) (ExcessPath, error) {
	d := decoder{b: data}
	var p ExcessPath
	d.path(&p)
	if d.err != nil {
		return ExcessPath{}, d.err
	}
	if d.off != len(data) {
		return ExcessPath{}, fmt.Errorf("graph: %d trailing bytes after path", len(data)-d.off)
	}
	return p, nil
}
